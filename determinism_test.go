// Determinism regression: the whole point of the virtual-time methodology
// is that a run is a pure function of its configuration. Running the
// Fig. 5 and Fig. 6 batteries sequentially (jobs=1) and sharded across 8
// host workers must produce bit-identical latencies, throughputs, and
// per-cell trace event streams — host parallelism may only change
// wall-clock time, never a simulated result. Any divergence means
// wall-clock time, map-iteration order, ambient randomness, or shared
// mutable state leaked into the simulation (the ciderlint wallclock
// analyzer guards the static side of this same invariant). These tests
// run under -race in `make verify`, so cross-cell data races in the
// engine or the benchmarks themselves also fail here.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lmbench"
	"repro/internal/passmark"
	"repro/internal/trace"
)

// compareSessions asserts two session slices carry bit-identical event
// streams, cell by cell.
func compareSessions(t *testing.T, seq, par []*trace.Session) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("sessions: %d sequential vs %d parallel", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a == nil || b == nil {
			t.Fatalf("cell %d: missing session (seq=%v par=%v)", i, a != nil, b != nil)
		}
		if a.Label != b.Label {
			t.Fatalf("cell %d label %q vs %q", i, a.Label, b.Label)
		}
		ea, eb := a.Events(), b.Events()
		if len(ea) != len(eb) {
			t.Errorf("%s: %d events vs %d", a.Label, len(ea), len(eb))
			continue
		}
		diffs := 0
		for j := range ea {
			if ea[j] != eb[j] {
				if diffs == 0 {
					t.Errorf("%s: event %d diverged:\n  jobs=1: %+v\n  jobs=8: %+v", a.Label, j, ea[j], eb[j])
				}
				diffs++
			}
		}
		if diffs > 1 {
			t.Errorf("%s: %d events diverged in total", a.Label, diffs)
		}
	}
}

func TestFigure5Deterministic(t *testing.T) {
	tests := lmbench.AllTests()
	run := func(jobs int) (*lmbench.Report, []*trace.Session) {
		t.Helper()
		sessions := make([]*trace.Session, len(lmbench.Cells(tests)))
		rep, err := lmbench.RunFigure5Opts(tests, lmbench.Options{
			Jobs: jobs,
			OnSystem: func(cell lmbench.Cell, sys *core.System) {
				s := sys.EnableTrace()
				s.Label = cell.Config.Name + "/" + cell.Test.Name
				sessions[cell.Index] = s
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, sessions
	}
	seqRep, seqSess := run(1)
	parRep, parSess := run(8)

	// Bit-identical latencies and failure states, in both directions.
	for test, byCfg := range seqRep.Latency {
		for cfg, want := range byCfg {
			if got := parRep.Latency[test][cfg]; got != want {
				t.Errorf("%s/%s: jobs=8 latency %v != jobs=1 %v", test, cfg, got, want)
			}
			if seqRep.Failed[test][cfg] != parRep.Failed[test][cfg] {
				t.Errorf("%s/%s: failure state differs between jobs=1 and jobs=8", test, cfg)
			}
		}
	}
	if len(seqRep.Latency) != len(parRep.Latency) {
		t.Errorf("runs measured %d vs %d tests", len(seqRep.Latency), len(parRep.Latency))
	}

	compareSessions(t, seqSess, parSess)
}

func TestFigure6Deterministic(t *testing.T) {
	tests := passmark.AllTests()
	confs := passmark.Configurations()
	run := func(jobs int) (*passmark.Report, []*trace.Session) {
		t.Helper()
		sessions := make([]*trace.Session, len(confs))
		rep, err := passmark.RunFigure6Opts(tests, passmark.Options{
			Jobs: jobs,
			OnSystem: func(cell passmark.Cell, sys *core.System) {
				s := sys.EnableTrace()
				s.Label = cell.Config.Name
				sessions[cell.Index] = s
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, sessions
	}
	seqRep, seqSess := run(1)
	parRep, parSess := run(8)

	// Bit-identical throughput scores and error states.
	for test, byCfg := range seqRep.Score {
		for cfg, want := range byCfg {
			if got := parRep.Score[test][cfg]; got != want {
				t.Errorf("%s/%s: jobs=8 score %v != jobs=1 %v", test, cfg, got, want)
			}
			if (seqRep.Errors[test][cfg] == nil) != (parRep.Errors[test][cfg] == nil) {
				t.Errorf("%s/%s: error state differs between jobs=1 and jobs=8", test, cfg)
			}
		}
	}
	if len(seqRep.Score) != len(parRep.Score) {
		t.Errorf("runs measured %d vs %d tests", len(seqRep.Score), len(parRep.Score))
	}

	compareSessions(t, seqSess, parSess)
}
