// Determinism regression: the whole point of the virtual-time methodology
// is that a run is a pure function of its configuration. Running the
// Fig. 5 lmbench battery twice in the same process must produce
// bit-identical latencies and bit-identical trace event streams. Any
// divergence means wall-clock time, map-iteration order, or ambient
// randomness leaked into the simulation (the ciderlint wallclock analyzer
// guards the static side of this same invariant).
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lmbench"
	"repro/internal/trace"
)

func TestFigure5Deterministic(t *testing.T) {
	run := func() (*lmbench.Report, []*trace.Session) {
		t.Helper()
		var sessions []*trace.Session
		lmbench.OnSystem = func(sys *core.System) {
			sessions = append(sessions, sys.EnableTrace())
		}
		defer func() { lmbench.OnSystem = nil }()
		rep, err := lmbench.RunFigure5()
		if err != nil {
			t.Fatal(err)
		}
		return rep, sessions
	}
	rep1, sess1 := run()
	rep2, sess2 := run()

	// Bit-identical latencies and failure states, in both directions.
	for test, byCfg := range rep1.Latency {
		for cfg, want := range byCfg {
			if got := rep2.Latency[test][cfg]; got != want {
				t.Errorf("%s/%s: second run latency %v != first run %v", test, cfg, got, want)
			}
			if rep1.Failed[test][cfg] != rep2.Failed[test][cfg] {
				t.Errorf("%s/%s: failure state differs between runs", test, cfg)
			}
		}
	}
	if len(rep1.Latency) != len(rep2.Latency) {
		t.Errorf("runs measured %d vs %d tests", len(rep1.Latency), len(rep2.Latency))
	}

	// Bit-identical trace event streams, configuration by configuration.
	if len(sess1) != len(sess2) || len(sess1) != len(lmbench.Configurations()) {
		t.Fatalf("sessions: %d vs %d, want %d each", len(sess1), len(sess2), len(lmbench.Configurations()))
	}
	for i := range sess1 {
		a, b := sess1[i], sess2[i]
		if a.Label != b.Label {
			t.Fatalf("session %d label %q vs %q", i, a.Label, b.Label)
		}
		ea, eb := a.Events(), b.Events()
		if len(ea) != len(eb) {
			t.Errorf("%s: %d events vs %d", a.Label, len(ea), len(eb))
			continue
		}
		diffs := 0
		for j := range ea {
			if ea[j] != eb[j] {
				if diffs == 0 {
					t.Errorf("%s: event %d diverged:\n  first:  %+v\n  second: %+v", a.Label, j, ea[j], eb[j])
				}
				diffs++
			}
		}
		if diffs > 1 {
			t.Errorf("%s: %d events diverged in total", a.Label, diffs)
		}
	}
}
