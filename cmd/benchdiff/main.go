// Command benchdiff compares two BENCH_simwall.json documents written by
// simbench and fails (exit 1) when wall-clock performance regressed.
//
// Usage:
//
//	benchdiff [-threshold PCT] [-ratchet] OLD.json NEW.json
//
// The gate applies to the wall-clock metrics — the sequential and
// parallel battery wall times — because those are what a scheduler or
// memory-path regression moves. The throughput and microbenchmark rows
// are printed for context but do not fail the diff: they are derived
// from the same wall times, and double-gating one regression twice
// helps nobody. Default threshold: 10%.
//
// -ratchet additionally fails the diff unless ns/sim-syscall IMPROVED
// (strictly decreased) versus OLD. A perf-optimization PR runs with the
// ratchet against the committed snapshot so the claimed win is machine-
// checked, then commits the regenerated snapshot as the next floor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

// doc mirrors the simbench fields benchdiff reads; unknown fields in
// newer documents are ignored, so the two tools can evolve separately.
type doc struct {
	Schema             int     `json:"schema"`
	HostCPUs           int     `json:"host_cpus"`
	BatteryWallNSJobs1 int64   `json:"battery_wall_ns_jobs1"`
	BatteryWallNSJobsN int64   `json:"battery_wall_ns_jobsn"`
	ParallelSpeedup    float64 `json:"parallel_speedup"`
	NSPerSimSyscall    float64 `json:"ns_per_sim_syscall"`
	SchedEventsPerSec  float64 `json:"sched_events_per_sec"`
	SwitchNS           float64 `json:"switch_ns"`
}

func main() {
	threshold := flag.Float64("threshold", 10, "max allowed wall-clock regression, percent")
	ratchet := flag.Bool("ratchet", false, "fail unless ns/sim-syscall strictly improved vs OLD")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] [-ratchet] OLD.json NEW.json")
		os.Exit(2)
	}
	oldDoc, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newDoc, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	failed := false
	gate := func(name string, oldNS, newNS int64) {
		pct := delta(float64(oldNS), float64(newNS))
		mark := "ok"
		if pct > *threshold {
			mark = fmt.Sprintf("REGRESSION > %.0f%%", *threshold)
			failed = true
		}
		fmt.Printf("  %-24s %12v -> %12v  %+6.1f%%  %s\n",
			name, time.Duration(oldNS), time.Duration(newNS), pct, mark)
	}
	info := func(name, oldV, newV string, pct float64) {
		fmt.Printf("  %-24s %12s -> %12s  %+6.1f%%  (info)\n", name, oldV, newV, pct)
	}

	fmt.Printf("benchdiff: %s -> %s (threshold %.0f%%, host cpus %d -> %d)\n",
		flag.Arg(0), flag.Arg(1), *threshold, oldDoc.HostCPUs, newDoc.HostCPUs)
	gate("battery wall jobs=1", oldDoc.BatteryWallNSJobs1, newDoc.BatteryWallNSJobs1)
	gate("battery wall jobs=N", oldDoc.BatteryWallNSJobsN, newDoc.BatteryWallNSJobsN)
	if *ratchet {
		pct := delta(oldDoc.NSPerSimSyscall, newDoc.NSPerSimSyscall)
		mark := "ok (improved)"
		if !(newDoc.NSPerSimSyscall < oldDoc.NSPerSimSyscall) {
			mark = "RATCHET: not improved"
			failed = true
		}
		fmt.Printf("  %-24s %12s -> %12s  %+6.1f%%  %s\n", "ns/sim-syscall",
			fmt.Sprintf("%.0f", oldDoc.NSPerSimSyscall), fmt.Sprintf("%.0f", newDoc.NSPerSimSyscall),
			pct, mark)
	} else {
		info("ns/sim-syscall",
			fmt.Sprintf("%.0f", oldDoc.NSPerSimSyscall), fmt.Sprintf("%.0f", newDoc.NSPerSimSyscall),
			delta(oldDoc.NSPerSimSyscall, newDoc.NSPerSimSyscall))
	}
	info("sched events/sec",
		fmt.Sprintf("%.0f", oldDoc.SchedEventsPerSec), fmt.Sprintf("%.0f", newDoc.SchedEventsPerSec),
		delta(oldDoc.SchedEventsPerSec, newDoc.SchedEventsPerSec))
	info("switch ns",
		fmt.Sprintf("%.0f", oldDoc.SwitchNS), fmt.Sprintf("%.0f", newDoc.SwitchNS),
		delta(oldDoc.SwitchNS, newDoc.SwitchNS))
	info("parallel speedup",
		fmt.Sprintf("%.2fx", oldDoc.ParallelSpeedup), fmt.Sprintf("%.2fx", newDoc.ParallelSpeedup),
		delta(oldDoc.ParallelSpeedup, newDoc.ParallelSpeedup))

	if failed {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

// delta returns the percent change from oldV to newV (positive = grew).
func delta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return 100 * (newV/oldV - 1)
}

func load(path string) (*doc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d", path, d.Schema)
	}
	return &d, nil
}
