// Command cider boots a full Cider device and demonstrates the paper's
// headline capability end to end: iOS and Android apps running side by
// side on the same (simulated) Nexus 7 — the iOS app launched from the
// Android Launcher through CiderPress, receiving multi-touch input through
// the eventpump, rendering via diplomatic OpenGL ES, and talking to the
// copied iOS service daemons over duct-taped Mach IPC.
//
// Usage:
//
//	cider [--trace]        run the side-by-side demo; with --trace, attach
//	                       a ktrace session and dump it after the run
//	cider stats [--json] [--jobs N]
//	                       run the Fig. 5 syscall battery under tracing on
//	                       the android / cider-android / cider-ios
//	                       configurations (one host worker per
//	                       configuration, up to N) and print per-syscall
//	                       histograms plus the null-syscall overhead
//	                       decomposition; --json emits one machine-readable
//	                       document with both
//	cider soak [--jobs N] [--quick] [--full] [--schedule NAME] [--verify]
//	           [--explore N] [--artifact-dir DIR]
//	                       run the Fig. 5 battery (plus a dedicated Mach IPC
//	                       workload; --full adds Fig. 6) under the
//	                       deterministic fault-schedule matrix and check the
//	                       error-path invariants: identical digests at any
//	                       jobs level, leak-free kernels, no deadlocks;
//	                       --verify re-runs each schedule at jobs=1 and
//	                       jobs=N and compares digests; --explore N runs N
//	                       seeded perturbations of every ambiguous scheduler
//	                       decision per schedule (DPOR-lite) and writes a
//	                       minimized replay artifact per failure
//	cider replay [--smoke] <artifact.json>
//	                       re-execute a recorded soak/diffcheck cell from a
//	                       replay artifact, bit-identically and in
//	                       isolation, and assert digest equality against
//	                       the recorded run; --smoke records one cell,
//	                       replays it, and asserts round-trip digest
//	                       equality (the verify gate)
//	cider crashes          boot the service tree, crash two iOS apps with
//	                       fatal faults, and print the crash reports
//	                       crashreporterd wrote to /var/log/crashes plus
//	                       the exception/supervision counters
//	cider diffcheck [--seeds N] [--jobs N] [--corpus DIR] [--no-minimize]
//	                [--update-allowlist] [--explore N] [--artifact-dir DIR]
//	                       run the differential persona oracle: execute N
//	                       seeded programs under both personas and diff the
//	                       canonicalized results; unallowlisted divergences
//	                       are minimized and reported (exit nonzero) with a
//	                       replay artifact each, and --corpus writes each
//	                       diverging program's text to DIR;
//	                       --update-allowlist prints suggested allowlist
//	                       entries (the Why citation still has to be
//	                       written by hand — that is the policy);
//	                       --explore N re-runs every persona pair under N
//	                       perturbed schedules and writes a minimized
//	                       replay artifact per residual divergence
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/diffcheck"
	"repro/internal/input"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/lmbench"
	"repro/internal/prog"
	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/soak"
	"repro/internal/trace"
	"repro/internal/uikit"
)

func main() {
	var err error
	args := os.Args[1:]
	switch {
	case len(args) > 0 && args[0] == "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "emit one JSON document instead of text")
		jobs := fs.Int("jobs", 0, "max parallel host workers (<=0: GOMAXPROCS)")
		if err := fs.Parse(args[1:]); err != nil {
			os.Exit(2)
		}
		err = runStats(*asJSON, *jobs)
	case len(args) > 0 && args[0] == "soak":
		fs := flag.NewFlagSet("soak", flag.ExitOnError)
		jobs := fs.Int("jobs", 0, "max parallel host workers (<=0: GOMAXPROCS)")
		quick := fs.Bool("quick", false, "reduced lmbench battery (the verify smoke)")
		full := fs.Bool("full", false, "also run the Fig. 6 PassMark battery")
		schedule := fs.String("schedule", "", "run a single named schedule (default: whole matrix)")
		verify := fs.Bool("verify", false, "run each schedule at jobs=1 and jobs=N and compare digests")
		explore := fs.Int("explore", 0, "run N seeded schedule perturbations per schedule (DPOR-lite)")
		artifactDir := fs.String("artifact-dir", "", "directory for failure replay artifacts (default: temp dir)")
		if err := fs.Parse(args[1:]); err != nil {
			os.Exit(2)
		}
		if *explore > 0 {
			err = runSoakExplore(*jobs, *quick, *full, *schedule, *explore, *artifactDir)
		} else {
			err = runSoak(*jobs, *quick, *full, *schedule, *verify, *artifactDir)
		}
	case len(args) > 0 && args[0] == "replay":
		fs := flag.NewFlagSet("replay", flag.ExitOnError)
		smoke := fs.Bool("smoke", false, "record one cell, replay it, assert digest equality")
		if err := fs.Parse(args[1:]); err != nil {
			os.Exit(2)
		}
		if *smoke {
			err = runReplaySmoke()
		} else {
			if fs.NArg() != 1 {
				err = fmt.Errorf("replay: usage: cider replay [--smoke] <artifact.json>")
			} else {
				err = runReplay(fs.Arg(0))
			}
		}
	case len(args) > 0 && args[0] == "crashes":
		err = runCrashes()
	case len(args) > 0 && args[0] == "diffcheck":
		fs := flag.NewFlagSet("diffcheck", flag.ExitOnError)
		seeds := fs.Int("seeds", 200, "number of seeded programs to run")
		jobs := fs.Int("jobs", 0, "max parallel host workers (<=0: GOMAXPROCS)")
		corpus := fs.String("corpus", "", "directory to write diverging programs to")
		noMin := fs.Bool("no-minimize", false, "skip delta-debug minimization of divergences")
		suggest := fs.Bool("update-allowlist", false, "print suggested allowlist entries for residual divergences")
		explore := fs.Int("explore", 0, "run N perturbed schedules per persona pair (DPOR-lite)")
		artifactDir := fs.String("artifact-dir", "", "directory for replay artifacts (default: OS temp dir)")
		if err := fs.Parse(args[1:]); err != nil {
			os.Exit(2)
		}
		if *explore > 0 {
			err = runDiffcheckExplore(*seeds, *jobs, *explore, *artifactDir)
		} else {
			err = runDiffcheck(*seeds, *jobs, *corpus, !*noMin, *suggest, *artifactDir)
		}
	default:
		err = runDemo(hasFlag(args, "--trace"))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cider: %v\n", err)
		os.Exit(1)
	}
}

func hasFlag(args []string, flag string) bool {
	for _, a := range args {
		if a == flag {
			return true
		}
	}
	return false
}

func runDemo(traced bool) error {
	fmt.Println("== booting Cider on a simulated Nexus 7 (Android 4.2) ==")
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		return err
	}
	if traced {
		sys.EnableTrace()
	}
	fmt.Printf("  kernel: %s  device: %s\n", sys.Kernel.Profile(), sys.Kernel.Device().Name)
	fmt.Printf("  iOS base image: %d dylibs\n", len(core.IOSDylibs()))
	fmt.Printf("  GL diplomats generated: %d\n", len(sys.GLSpecs))

	if _, err := sys.BootServices(); err != nil {
		return err
	}
	fmt.Println("  launchd started (spawns configd, notifyd, syslogd)")

	// An ordinary Android app runs alongside.
	var androidRan bool
	if err := sys.InstallStaticAndroidBinary("/system/bin/androidapp", "androidapp", func(c *prog.Call) uint64 {
		androidRan = true
		return 0
	}); err != nil {
		return err
	}

	// The iOS app: renders, handles gestures, logs to syslogd.
	var taps int
	var frames int
	if err := sys.InstallIOSBinary("/Applications/Demo.app/Demo", "demo-app", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		lc := libsystem.Sys(th)
		return uikit.Main(th, uikit.Delegate{
			OnLaunch: func(app *uikit.App) {
				if port, err := services.WaitForService(lc, services.SyslogdName, 100); err == nil {
					services.Syslog(lc, port, "Demo[1]: launched on "+th.Kernel().Device().Name)
				}
				app.GL.Call("_glClearColor", 0, 0, 0, 1)
				app.GL.Call("_glClear", 0x4000)
				app.Present()
				frames = app.Frames
			},
			OnGesture: func(app *uikit.App, g input.Gesture) {
				if g.Kind == input.GestureTap {
					taps++
					app.GL.Call("_glClear", 0x4000)
					app.GL.Call("_glDrawArrays", 4, 0, 128)
					app.Present()
					frames = app.Frames
				}
			},
		})
	}); err != nil {
		return err
	}

	// Launch through CiderPress, as the Launcher shortcut would.
	if _, err := sys.LaunchIOSApp("/Applications/Demo.app/Demo"); err != nil {
		return err
	}
	if _, err := sys.Start("/system/bin/androidapp", nil); err != nil {
		return err
	}

	// A touch driver playing the user.
	if err := sys.InstallStaticAndroidBinary("/system/bin/user", "user", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Charge(80 * time.Millisecond)
		for i := 0; i < 3; i++ {
			sys.Input.Inject(th, input.Event{Type: input.TouchDown, X: 640, Y: 400})
			th.Charge(5 * time.Millisecond)
			sys.Input.Inject(th, input.Event{Type: input.TouchUp, X: 640, Y: 400})
			th.Charge(30 * time.Millisecond)
		}
		sys.Input.Inject(th, input.Event{Type: input.Lifecycle, Code: input.LifecycleStop})
		return 0
	}); err != nil {
		return err
	}
	if _, err := sys.Start("/system/bin/user", nil); err != nil {
		return err
	}

	if err := sys.Run(); err != nil {
		// On deadlock, dump the wait-graph snapshot: which procs were
		// parked, on what, and at which virtual time.
		var dl *sim.ErrDeadlock
		if errors.As(err, &dl) {
			fmt.Fprint(os.Stderr, dl.Report())
		}
		return err
	}

	fmt.Println("\n== session ==")
	fmt.Printf("  android app ran alongside:  %v\n", androidRan)
	fmt.Printf("  taps delivered to iOS app:  %d\n", taps)
	fmt.Printf("  frames presented:           %d\n", frames)
	fmt.Printf("  diplomatic calls:           %d\n", sys.Diplomat.Calls())
	sent, recvd := sys.IPC.Stats()
	fmt.Printf("  mach messages sent/recvd:   %d/%d\n", sent, recvd)
	fmt.Printf("  compositor frames / flips:  %d/%d\n", sys.Gfx.SF.Frames(), sys.FB.Flips())
	fmt.Printf("  CiderPress launches:        %d (exit status %d)\n",
		sys.CiderPress.Launches(), sys.CiderPress.LastStatus())
	fmt.Println("  syslog:")
	for _, line := range sys.Syslog.Lines() {
		fmt.Printf("    %s\n", line)
	}
	if n := sys.Syslog.Dropped(); n > 0 {
		fmt.Printf("    (%d earlier lines dropped by the ring)\n", n)
	}
	if sys.Trace.Enabled() {
		fmt.Println("\n== ktrace ==")
		fmt.Print(sys.Trace.Text())
	}
	return nil
}

// runCrashes demonstrates the crash-containment pipeline end to end on
// one simulated device: two iOS apps take fatal faults, the kernel
// translates them into Mach exceptions, crashreporterd (spawned and
// supervised by launchd) receives the host-level EXC_CRASH messages and
// writes deterministic reports into the VFS, which are then read back
// and printed together with the exception/supervision counters.
func runCrashes() error {
	fmt.Println("== crash containment: two iOS apps fault under a supervised service tree ==")
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		return err
	}
	sys.EnableTrace()
	if _, err := sys.BootServices(); err != nil {
		return err
	}

	// An app that takes a wild-pointer fault shortly after launch, and one
	// that aborts a little later. Both are iOS-persona, so the fatal
	// signal rides the Mach exception path, not the Linux one.
	crasher := func(after time.Duration, sig int) prog.Func {
		return func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			lc := libsystem.Sys(th)
			th.Charge(after)
			lc.Kill(lc.GetPID(), sig)
			return 0
		}
	}
	apps := []struct {
		path  string
		key   string
		after time.Duration
		sig   int
	}{
		{"/Applications/Faulty.app/Faulty", "faulty-app", 40 * time.Millisecond, 11 /* SIGSEGV */},
		{"/Applications/Abort.app/Abort", "abort-app", 120 * time.Millisecond, 6 /* SIGABRT */},
	}
	for _, a := range apps {
		if err := sys.InstallIOSBinary(a.path, a.key, nil, crasher(a.after, a.sig)); err != nil {
			return err
		}
		if _, err := sys.Start(a.path, nil); err != nil {
			return err
		}
	}
	// A bystander that outlives both crashes: the simulation ends when
	// the last ordinary process exits, so this gives crashreporterd the
	// virtual time to drain its queue.
	if err := sys.InstallStaticAndroidBinary("/system/bin/bystander", "bystander", func(c *prog.Call) uint64 {
		c.Ctx.(*kernel.Thread).Charge(300 * time.Millisecond)
		return 0
	}); err != nil {
		return err
	}
	if _, err := sys.Start("/system/bin/bystander", nil); err != nil {
		return err
	}

	if err := sys.Run(); err != nil {
		var dl *sim.ErrDeadlock
		if errors.As(err, &dl) {
			fmt.Fprint(os.Stderr, dl.Report())
		}
		return err
	}

	nodes, err := sys.IOSFS.ReadDir(services.CrashLogDir)
	if err != nil {
		return fmt.Errorf("reading %s: %w", services.CrashLogDir, err)
	}
	names := make([]string, 0, len(nodes))
	for _, n := range nodes {
		names = append(names, n.Name())
	}
	sort.Strings(names)
	fmt.Printf("\n== %d crash report(s) in %s ==\n", len(names), services.CrashLogDir)
	for _, name := range names {
		body, rerr := sys.IOSFS.ReadFile(services.CrashLogDir + "/" + name)
		if rerr != nil {
			return rerr
		}
		fmt.Printf("--- %s ---\n", name)
		for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
			fmt.Printf("    %s\n", line)
		}
	}
	fmt.Println("\n== counters ==")
	for _, c := range sys.Trace.Counters() {
		switch c.Name {
		case trace.CounterExcRaised, trace.CounterExcResumed, trace.CounterCrashReports,
			trace.CounterLaunchdCrashes, trace.CounterLaunchdRespawns, trace.CounterLaunchdThrottled:
			fmt.Printf("  %-18s %d\n", c.Name, c.Value)
		}
	}
	return nil
}

// runSoak drives the Fig. 5/6 batteries (plus the dedicated Mach IPC
// workload) under the fault-schedule matrix and reports the three
// invariants: deterministic digests, leak-free kernels, no deadlocks.
// Benchmark cells failing under injection is expected and reported as a
// count, not an error; a finding (leak or deadlock) exits nonzero.
func runSoak(jobs int, quick, full bool, schedule string, verify bool, artifactDir string) error {
	scheds := soak.Schedules()
	if schedule != "" {
		s, ok := soak.ScheduleByName(schedule)
		if !ok {
			return fmt.Errorf("soak: unknown schedule %q", schedule)
		}
		scheds = []soak.Schedule{s}
	}
	opts := soak.Options{Jobs: jobs, Full: full, ArtifactDir: artifactDir}
	if quick {
		opts.Tests = soak.QuickTests()
	}

	battery := "full lmbench"
	if quick {
		battery = "quick (syscall/comm/proc)"
	}
	if full {
		battery += " + passmark"
	}
	fmt.Printf("== soak: %d schedule(s), battery: %s ==\n", len(scheds), battery)
	fmt.Printf("%-14s %-18s %6s %7s %9s  %s\n", "schedule", "digest", "cells", "failed", "injected", "verdict")

	bad := false
	for _, s := range scheds {
		r := soak.RunSchedule(s, opts)
		verdict := "ok"
		if len(r.Findings) > 0 {
			verdict = fmt.Sprintf("%d FINDING(S)", len(r.Findings))
			bad = true
		}
		if verify {
			n := jobs
			if n <= 1 {
				n = 4
			}
			if err := soak.VerifyDeterminism(s, n, opts); err != nil {
				verdict += "  NONDETERMINISTIC"
				bad = true
			} else {
				verdict += fmt.Sprintf("  deterministic@jobs=%d", n)
			}
		}
		fmt.Printf("%-14s %016x %6d %7d %9d  %s\n",
			r.Schedule, r.Digest, r.Cells, r.FailedCells, r.Injected, verdict)
		if r.Counters[trace.CounterLaunchdCrashes]+r.Counters[trace.CounterExcRaised] > 0 {
			fmt.Printf("    supervision: crashes=%d respawns=%d throttled=%d exceptions=%d reports=%d\n",
				r.Counters[trace.CounterLaunchdCrashes], r.Counters[trace.CounterLaunchdRespawns],
				r.Counters[trace.CounterLaunchdThrottled], r.Counters[trace.CounterExcRaised],
				r.Counters[trace.CounterCrashReports])
		}
		for _, f := range r.Findings {
			fmt.Printf("    finding: %s\n", f)
		}
	}
	if bad {
		return fmt.Errorf("soak: invariant violations found")
	}
	return nil
}

// runSoakExplore drives the DPOR-lite schedule explorer: every soak
// cell re-runs under N seeded perturbations of the scheduler's
// ambiguous decisions, and any invariant violation arrives as a
// minimized replay artifact.
func runSoakExplore(jobs int, quick, full bool, schedule string, rounds int, artifactDir string) error {
	scheds := soak.Schedules()
	if schedule != "" {
		s, ok := soak.ScheduleByName(schedule)
		if !ok {
			return fmt.Errorf("soak: unknown schedule %q", schedule)
		}
		scheds = []soak.Schedule{s}
	}
	opts := soak.Options{Jobs: jobs, Full: full, ArtifactDir: artifactDir}
	if quick {
		opts.Tests = soak.QuickTests()
	}
	fmt.Printf("== soak explore: %d schedule(s) x %d perturbation seed(s) ==\n", len(scheds), rounds)
	fmt.Printf("%-14s %-18s %9s %10s %10s  %s\n",
		"schedule", "digest", "cell-runs", "decisions", "perturbed", "verdict")
	bad := false
	for _, s := range scheds {
		r := soak.Explore(s, opts, rounds)
		verdict := "ok"
		if len(r.Findings) > 0 {
			verdict = fmt.Sprintf("%d FINDING(S)", len(r.Findings))
			bad = true
		}
		fmt.Printf("%-14s %016x %9d %10d %10d  %s\n",
			r.Schedule, r.Digest, r.CellRuns, r.Decisions, r.Perturbed, verdict)
		for _, f := range r.Findings {
			fmt.Printf("    finding: %s\n", f)
		}
	}
	if bad {
		return fmt.Errorf("soak: explore found invariant violations")
	}
	return nil
}

// runReplay re-executes one recorded cell from an artifact file and
// asserts digest equality against the recorded run.
func runReplay(path string) error {
	a, err := replay.Load(path)
	if err != nil {
		return err
	}
	switch a.Kind {
	case replay.KindSoak:
		rep, rerr := soak.ReplayCell(a)
		if rerr != nil {
			return rerr
		}
		return reportReplay(a, rep.Digest, rep.DecisionCount, rep.Findings)
	case replay.KindDiffcheck:
		rep, rerr := diffcheck.ReplayArtifact(a)
		if rerr != nil {
			return rerr
		}
		return reportReplay(a, rep.Digest, rep.DecisionCount, rep.Findings)
	}
	return fmt.Errorf("replay: unknown artifact kind %q", a.Kind)
}

// reportReplay prints the replay outcome and fails on digest mismatch.
func reportReplay(a *replay.Artifact, digest, decisions uint64, findings []string) error {
	want, err := a.DigestValue()
	if err != nil {
		return err
	}
	label := a.Schedule
	if a.Kind == replay.KindDiffcheck {
		label = fmt.Sprintf("seed %#x", a.Seed)
	}
	ref := ""
	if a.Cell != nil {
		ref = " cell " + a.Cell.String()
	}
	fmt.Printf("== replay: %s %s%s ==\n", a.Kind, label, ref)
	fmt.Printf("  decisions: %d recorded, %d replayed (%d non-canonical)\n",
		a.DecisionCount, decisions, len(a.Decisions))
	for _, f := range findings {
		fmt.Printf("  finding: %s\n", f)
	}
	if digest != want {
		fmt.Printf("  digest: %016x, recorded %016x\n", digest, want)
		return fmt.Errorf("replay: digest mismatch: replayed %016x, recorded %016x", digest, want)
	}
	fmt.Printf("  digest: %016x == recorded (bit-identical)\n", digest)
	if a.DecisionCount != 0 && decisions != a.DecisionCount {
		return fmt.Errorf("replay: decision count diverged: replayed %d, recorded %d", decisions, a.DecisionCount)
	}
	return nil
}

// runReplaySmoke is the verify-gate round trip: record one soak cell,
// write the artifact through the encoder, reload it, replay the cell,
// and assert the digests match bit for bit. It exercises the same
// record/encode/decode/replay path a real failure repro uses.
func runReplaySmoke() error {
	s, ok := soak.ScheduleByName("eintr-storm")
	if !ok {
		return fmt.Errorf("replay: eintr-storm schedule missing")
	}
	cells := []replay.CellRef{
		{Bench: "mach"},
		{Bench: "lmbench", Config: lmbench.ConfigCiderIOS, Test: "null syscall"},
	}
	for _, ref := range cells {
		a, rec := soak.RecordCell(s, ref, nil, 0)
		dir, err := os.MkdirTemp("", "cider-replay-smoke")
		if err != nil {
			return err
		}
		path := dir + "/artifact.json"
		if err := a.WriteFile(path); err != nil {
			return err
		}
		b, err := replay.Load(path)
		if err != nil {
			return err
		}
		rep, err := soak.ReplayCell(b)
		if err != nil {
			return err
		}
		if rep.Digest != rec.Digest {
			return fmt.Errorf("replay smoke: %s: replayed %016x, recorded %016x",
				ref, rep.Digest, rec.Digest)
		}
		fmt.Printf("replay smoke: %s under %s: %d decisions, digest %016x == replayed (bit-identical)\n",
			ref, s.Name, rec.DecisionCount, rec.Digest)
		os.RemoveAll(dir)
	}
	return nil
}

// runDiffcheckExplore drives the persona oracle under DPOR-lite
// schedule exploration: every seed's persona pair re-runs under N
// perturbed schedules, and any residual divergence arrives as a
// minimized replay artifact.
func runDiffcheckExplore(seeds, jobs, rounds int, artifactDir string) error {
	fmt.Printf("== diffcheck explore: %d seeds x %d perturbation round(s) ==\n", seeds, rounds)
	rep, err := diffcheck.Explore(diffcheck.Options{Seeds: seeds, Jobs: jobs, ArtifactDir: artifactDir}, rounds)
	if err != nil {
		return err
	}
	fmt.Printf("pair-runs=%d decisions=%d perturbed=%d digest=%016x findings=%d\n",
		rep.PairRuns, rep.Decisions, rep.Perturbed, rep.Digest, len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Printf("  finding: %s\n", f)
	}
	return rep.Err()
}

// runDiffcheck drives the differential persona oracle and reports. A
// residual (unallowlisted) divergence exits nonzero; the allowlist hits
// are printed so a quiet run still shows the oracle exercised the
// deliberate deviations.
func runDiffcheck(seeds, jobs int, corpus string, minimize, suggest bool, artifactDir string) error {
	fmt.Printf("== diffcheck: %d seeded programs, Android vs iOS persona ==\n", seeds)
	rep, err := diffcheck.Run(diffcheck.Options{Seeds: seeds, Jobs: jobs, Minimize: minimize, ArtifactDir: artifactDir})
	if err != nil {
		return err
	}
	fmt.Print(rep.Text())
	if corpus != "" && len(rep.Divergences) > 0 {
		if err := os.MkdirAll(corpus, 0o755); err != nil {
			return err
		}
		for i, d := range rep.Divergences {
			body := fmt.Sprintf("# %s\n# sig: %s\n%s", d.Class, d.Sig, d.Program)
			if d.Minimized != "" {
				body += "# minimized\n" + d.Minimized
			}
			name := fmt.Sprintf("%s/div-%03d-seed-%x.txt", corpus, i, d.Seed)
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d diverging program(s) to %s\n", len(rep.Divergences), corpus)
	}
	if suggest && len(rep.Divergences) > 0 {
		fmt.Println("-- suggested allowlist entries (write the Why citation by hand) --")
		fmt.Print(rep.SuggestAllowlist())
	}
	if len(rep.Divergences) > 0 {
		return fmt.Errorf("diffcheck: %d unallowlisted divergence(s)", len(rep.Divergences))
	}
	return nil
}

// statsConfigs are the configurations whose syscall behaviour `cider
// stats` decomposes: the vanilla baseline plus both Cider personas
// (Fig. 5's 8.5% and 40% null-syscall columns).
func statsConfigs() []lmbench.Configuration {
	var out []lmbench.Configuration
	for _, conf := range lmbench.Configurations() {
		if conf.Name == lmbench.ConfigIPad {
			continue // real hardware in the paper; no trace hooks to compare
		}
		out = append(out, conf)
	}
	return out
}

// syscallTests filters the Fig. 5 battery down to the syscall group.
func syscallTests() []lmbench.Test {
	var out []lmbench.Test
	for _, t := range lmbench.AllTests() {
		if t.Group == "syscall" {
			out = append(out, t)
		}
	}
	return out
}

func runStats(asJSON bool, jobs int) error {
	type run struct {
		conf    lmbench.Configuration
		session *trace.Session
		null    time.Duration // null-syscall latency for the decomposition
	}
	confs := statsConfigs()
	tests := syscallTests()
	runs := make([]run, len(confs))

	// One cell per configuration: each boots its own System with its own
	// trace session, written only to runs[i], so the parallel run's
	// histograms are bit-identical to the sequential ones.
	if _, err := runner.Map(len(confs), jobs, func(i int) (struct{}, error) {
		conf := confs[i]
		var session *trace.Session
		results, err := lmbench.RunWith(conf, tests, func(sys *core.System) {
			session = sys.EnableTrace()
			session.Label = conf.Name
		})
		if err != nil {
			return struct{}{}, fmt.Errorf("%s: %w", conf.Name, err)
		}
		r := run{conf: conf, session: session}
		for _, res := range results {
			if res.Test == "null syscall" && !res.Failed {
				r.null = res.Latency
			}
		}
		runs[i] = r
		return struct{}{}, nil
	}); err != nil {
		return err
	}

	base := runs[0].null

	// The resource-governance counters: one bounded run of the
	// mem-pressure-storm and fd-exhaustion schedules, merged. These are
	// the `cider stats` jetsam numbers — how many kills per band, how
	// many pressure notifications, how many rlimit rejections — produced
	// by the same machinery the soak gate verifies.
	governance, err := soak.GovernanceCounters(jobs)
	if err != nil {
		return err
	}
	governanceKeys := func() []string {
		keys := make([]string, 0, len(governance))
		for k := range governance {
			switch {
			case strings.HasPrefix(k, "jetsam."),
				strings.HasPrefix(k, "pressure."),
				strings.HasPrefix(k, "rlimit."),
				k == trace.CounterLaunchdJetsam,
				k == trace.CounterLaunchdRespawns:
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		return keys
	}

	if asJSON {
		// One machine-scrapable document: per-config trace summaries plus
		// the null-syscall decomposition, so CI and the bench harness can
		// read counters without parsing text or stitching array elements.
		type statConfig struct {
			Config        string `json:"config"`
			NullSyscallNS int64  `json:"null_syscall_ns"`
			// NullOverheadPct is the paper's Fig. 5 decomposition: percent
			// added to the null syscall vs the baseline config (omitted
			// when either side failed).
			NullOverheadPct *float64       `json:"null_overhead_pct,omitempty"`
			Trace           *trace.Summary `json:"trace"`
		}
		doc := struct {
			Baseline string       `json:"baseline"`
			Configs  []statConfig `json:"configs"`
			// Governance carries the jetsam/pressure/rlimit counters from
			// one bounded resource-governance soak run.
			Governance map[string]uint64 `json:"governance"`
		}{Baseline: runs[0].conf.Name}
		doc.Governance = map[string]uint64{}
		for _, k := range governanceKeys() {
			doc.Governance[k] = governance[k]
		}
		for _, r := range runs {
			sc := statConfig{
				Config:        r.conf.Name,
				NullSyscallNS: r.null.Nanoseconds(),
				Trace:         r.session.Summarize(false),
			}
			if base > 0 && r.null > 0 {
				pct := 100 * (float64(r.null)/float64(base) - 1)
				sc.NullOverheadPct = &pct
			}
			doc.Configs = append(doc.Configs, sc)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	for _, r := range runs {
		fmt.Printf("==== %s ====\n", r.conf.Name)
		fmt.Print(r.session.Text())
		fmt.Println()
	}

	fmt.Println("==== resource governance (jetsam / pressure / rlimits) ====")
	for _, k := range governanceKeys() {
		fmt.Printf("  %-32s %d\n", k, governance[k])
	}
	fmt.Println()

	// The Fig. 5 decomposition: null-syscall overhead relative to vanilla
	// Android — the paper reports ~8.5% for the Android persona (one extra
	// persona check) and ~40% for the iOS persona (persona check + XNU
	// syscall translation + errno conversion).
	fmt.Println("==== null-syscall decomposition (Fig. 5) ====")
	for _, r := range runs {
		if r.null == 0 {
			fmt.Printf("  %-14s failed\n", r.conf.Name)
			continue
		}
		if base == 0 {
			base = r.null
		}
		overhead := 100 * (float64(r.null)/float64(base) - 1)
		fmt.Printf("  %-14s %8v  (+%.1f%% vs %s)\n",
			r.conf.Name, r.null, overhead, runs[0].conf.Name)
	}
	return nil
}
