// Command cider boots a full Cider device and demonstrates the paper's
// headline capability end to end: iOS and Android apps running side by
// side on the same (simulated) Nexus 7 — the iOS app launched from the
// Android Launcher through CiderPress, receiving multi-touch input through
// the eventpump, rendering via diplomatic OpenGL ES, and talking to the
// copied iOS service daemons over duct-taped Mach IPC.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/input"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
	"repro/internal/services"
	"repro/internal/uikit"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cider: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== booting Cider on a simulated Nexus 7 (Android 4.2) ==")
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		return err
	}
	fmt.Printf("  kernel: %s  device: %s\n", sys.Kernel.Profile(), sys.Kernel.Device().Name)
	fmt.Printf("  iOS base image: %d dylibs\n", len(core.IOSDylibs()))
	fmt.Printf("  GL diplomats generated: %d\n", len(sys.GLSpecs))

	if _, err := sys.BootServices(); err != nil {
		return err
	}
	fmt.Println("  launchd started (spawns configd, notifyd, syslogd)")

	// An ordinary Android app runs alongside.
	var androidRan bool
	if err := sys.InstallStaticAndroidBinary("/system/bin/androidapp", "androidapp", func(c *prog.Call) uint64 {
		androidRan = true
		return 0
	}); err != nil {
		return err
	}

	// The iOS app: renders, handles gestures, logs to syslogd.
	var taps int
	var frames int
	if err := sys.InstallIOSBinary("/Applications/Demo.app/Demo", "demo-app", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		lc := libsystem.Sys(th)
		return uikit.Main(th, uikit.Delegate{
			OnLaunch: func(app *uikit.App) {
				if port, err := services.WaitForService(lc, services.SyslogdName, 100); err == nil {
					services.Syslog(lc, port, "Demo[1]: launched on "+th.Kernel().Device().Name)
				}
				app.GL.Call("_glClearColor", 0, 0, 0, 1)
				app.GL.Call("_glClear", 0x4000)
				app.Present()
				frames = app.Frames
			},
			OnGesture: func(app *uikit.App, g input.Gesture) {
				if g.Kind == input.GestureTap {
					taps++
					app.GL.Call("_glClear", 0x4000)
					app.GL.Call("_glDrawArrays", 4, 0, 128)
					app.Present()
					frames = app.Frames
				}
			},
		})
	}); err != nil {
		return err
	}

	// Launch through CiderPress, as the Launcher shortcut would.
	if _, err := sys.LaunchIOSApp("/Applications/Demo.app/Demo"); err != nil {
		return err
	}
	if _, err := sys.Start("/system/bin/androidapp", nil); err != nil {
		return err
	}

	// A touch driver playing the user.
	if err := sys.InstallStaticAndroidBinary("/system/bin/user", "user", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Charge(80 * time.Millisecond)
		for i := 0; i < 3; i++ {
			sys.Input.Inject(th, input.Event{Type: input.TouchDown, X: 640, Y: 400})
			th.Charge(5 * time.Millisecond)
			sys.Input.Inject(th, input.Event{Type: input.TouchUp, X: 640, Y: 400})
			th.Charge(30 * time.Millisecond)
		}
		sys.Input.Inject(th, input.Event{Type: input.Lifecycle, Code: input.LifecycleStop})
		return 0
	}); err != nil {
		return err
	}
	if _, err := sys.Start("/system/bin/user", nil); err != nil {
		return err
	}

	if err := sys.Run(); err != nil {
		return err
	}

	fmt.Println("\n== session ==")
	fmt.Printf("  android app ran alongside:  %v\n", androidRan)
	fmt.Printf("  taps delivered to iOS app:  %d\n", taps)
	fmt.Printf("  frames presented:           %d\n", frames)
	fmt.Printf("  diplomatic calls:           %d\n", sys.Diplomat.Calls())
	sent, recvd := sys.IPC.Stats()
	fmt.Printf("  mach messages sent/recvd:   %d/%d\n", sent, recvd)
	fmt.Printf("  compositor frames / flips:  %d/%d\n", sys.Gfx.SF.Frames(), sys.FB.Flips())
	fmt.Printf("  CiderPress launches:        %d (exit status %d)\n",
		sys.CiderPress.Launches(), sys.CiderPress.LastStatus())
	fmt.Println("  syslog:")
	for _, line := range sys.Syslog.Lines {
		fmt.Printf("    %s\n", line)
	}
	return nil
}
