// Command ciderlint runs the simulator-invariant analysis suite over the
// module: wallclock, chargecheck, waketag, and tracepure (see
// internal/analysis and the "Simulation invariants" section of DESIGN.md).
//
// Usage:
//
//	ciderlint [-C dir] [patterns...]
//
// Patterns default to ./... . Exit status is 1 if any finding survives
// //lint:allow suppression, 2 on load/internal errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "module root to analyze")
	flag.Parse()

	prog, err := analysis.Load(analysis.LoadConfig{Dir: *dir}, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciderlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciderlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ciderlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
