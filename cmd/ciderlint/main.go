// Command ciderlint runs the simulator-invariant analysis suite over the
// module: the v1 passes (wallclock, chargecheck, waketag, tracepure) plus
// the v2 ABI-fidelity and concurrency passes (tablecomplete, xlatecheck,
// lockorder, hotalloc) — see internal/analysis and the "Static analysis"
// sections of DESIGN.md.
//
// Usage:
//
//	ciderlint [-C dir] [-json] [-timing] [patterns...]
//
// Patterns default to ./... . With -json, every diagnostic — suppressed
// ones included, with their allow status and reason — is emitted as one
// JSON object on stdout, followed by a summary object. With -timing,
// per-analyzer wall-clock totals go to stderr. Exit status is 1 if any
// finding survives //lint:allow suppression, 2 on load/internal errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

// jsonDiag is the -json wire shape for one diagnostic.
type jsonDiag struct {
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Analyzer    string `json:"analyzer"`
	Message     string `json:"message"`
	Allowed     bool   `json:"allowed"`
	AllowReason string `json:"allow_reason,omitempty"`
}

// jsonSummary trails the diagnostic stream so CI can assert on totals
// without re-counting.
type jsonSummary struct {
	Summary   bool             `json:"summary"`
	Findings  int              `json:"findings"`
	Allowed   int              `json:"allowed"`
	Analyzers int              `json:"analyzers"`
	TimingsMS map[string]int64 `json:"timings_ms,omitempty"`
}

func main() {
	dir := flag.String("C", ".", "module root to analyze")
	asJSON := flag.Bool("json", false, "emit diagnostics (and a trailing summary) as JSON objects")
	timing := flag.Bool("timing", false, "report per-analyzer wall-clock totals on stderr")
	flag.Parse()

	prog, err := analysis.Load(analysis.LoadConfig{Dir: *dir}, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciderlint:", err)
		os.Exit(2)
	}
	suite := analysis.All()
	res, err := analysis.RunAll(prog, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciderlint:", err)
		os.Exit(2)
	}

	findings, allowed := 0, 0
	for _, d := range res.Diags {
		if d.Allowed {
			allowed++
		} else {
			findings++
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range res.Diags {
			if err := enc.Encode(jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
				Allowed: d.Allowed, AllowReason: d.AllowReason,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "ciderlint:", err)
				os.Exit(2)
			}
		}
		sum := jsonSummary{Summary: true, Findings: findings, Allowed: allowed, Analyzers: len(suite)}
		if *timing {
			sum.TimingsMS = map[string]int64{}
			for _, tm := range res.Timings {
				sum.TimingsMS[tm.Name] = tm.Elapsed.Milliseconds()
			}
		}
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintln(os.Stderr, "ciderlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Findings() {
			fmt.Println(d)
		}
	}

	if *timing {
		for _, tm := range res.Timings {
			fmt.Fprintf(os.Stderr, "ciderlint: %-14s %8.1fms\n", tm.Name, float64(tm.Elapsed.Microseconds())/1000)
		}
	}

	fmt.Fprintf(os.Stderr, "ciderlint: %d finding(s), %d allowed, %d analyzers\n",
		findings, allowed, len(suite))
	if findings > 0 {
		os.Exit(1)
	}
}
