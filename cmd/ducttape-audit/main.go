// Command ducttape-audit links the duct-taped foreign kernel subsystems
// (Mach IPC, pthread support, I/O Kit) against the domestic kernel under
// the three-zone discipline of Section 4.2 and prints the link report:
// zone membership, automatic symbol-conflict remaps, and any unresolved
// foreign externals (the duct tape implementation work list).
package main

import (
	"fmt"
	"os"

	"repro/internal/ducttape"
	"repro/internal/iokit"
	"repro/internal/xnu"
)

func main() {
	fmt.Println("== XNU subsystems (Mach IPC, pthread support) ==")
	img, err := ducttape.Link(xnu.AllUnits())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ducttape-audit: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(img.Report())

	fmt.Println("\n== I/O Kit (driver framework + C++ runtime) ==")
	img, err = ducttape.Link(iokit.Units())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ducttape-audit: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(img.Report())
}
