// Command lmbench regenerates the paper's Figure 5: the lmbench 3.0
// microbenchmark latencies on all four system configurations (vanilla
// Android, Cider with Linux binaries, Cider with iOS binaries, iPad mini),
// normalized to vanilla Android.
//
// Usage:
//
//	lmbench [-group basic|syscall|proc|comm]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lmbench"
)

func main() {
	group := flag.String("group", "", "run only one Fig. 5 group (basic, syscall, proc, comm)")
	flag.Parse()

	tests := lmbench.AllTests()
	if *group != "" {
		var filtered []lmbench.Test
		for _, t := range tests {
			if t.Group == *group {
				filtered = append(filtered, t)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "lmbench: unknown group %q\n", *group)
			os.Exit(2)
		}
		tests = filtered
	}

	rep, err := lmbench.RunFigure5Tests(tests)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
}
