// Command lmbench regenerates the paper's Figure 5: the lmbench 3.0
// microbenchmark latencies on all four system configurations (vanilla
// Android, Cider with Linux binaries, Cider with iOS binaries, iPad mini),
// normalized to vanilla Android.
//
// Usage:
//
//	lmbench [-group basic|syscall|proc|comm] [-jobs N]
//
// The battery's (configuration, test) cells are sharded across up to N
// host workers (default: GOMAXPROCS); the results are bit-identical for
// every N, only wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lmbench"
)

func main() {
	group := flag.String("group", "", "run only one Fig. 5 group (basic, syscall, proc, comm)")
	jobs := flag.Int("jobs", 0, "max parallel host workers (<=0: GOMAXPROCS)")
	flag.Parse()

	tests := lmbench.AllTests()
	if *group != "" {
		var filtered []lmbench.Test
		for _, t := range tests {
			if t.Group == *group {
				filtered = append(filtered, t)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "lmbench: unknown group %q\n", *group)
			os.Exit(2)
		}
		tests = filtered
	}

	rep, err := lmbench.RunFigure5Opts(tests, lmbench.Options{Jobs: *jobs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
}
