// Command passmark regenerates the paper's Figure 6: the PassMark
// PerformanceTest app throughput on all four system configurations,
// normalized to vanilla Android. The Android app build is genuine DEX
// bytecode interpreted by the Dalvik VM; the iOS build is native code.
//
// Usage:
//
//	passmark [-group cpu|storage|memory|2d|3d] [-jobs N]
//
// Each configuration's battery is one parallel cell, sharded across up to
// N host workers (default: GOMAXPROCS); results are bit-identical for
// every N, only wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/passmark"
)

func main() {
	group := flag.String("group", "", "run only one Fig. 6 group (cpu, storage, memory, 2d, 3d)")
	jobs := flag.Int("jobs", 0, "max parallel host workers (<=0: GOMAXPROCS)")
	flag.Parse()

	tests := passmark.AllTests()
	if *group != "" {
		var filtered []passmark.Test
		for _, t := range tests {
			if t.Group == *group {
				filtered = append(filtered, t)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "passmark: unknown group %q\n", *group)
			os.Exit(2)
		}
		tests = filtered
	}

	rep, err := passmark.RunFigure6Opts(tests, passmark.Options{Jobs: *jobs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "passmark: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
}
