// Command simbench is the wall-clock benchmark harness: it measures how
// fast the host executes the simulation (as opposed to the simulated
// latencies the figures report, which are identical at any speed) and
// writes one machine-readable document, BENCH_simwall.json.
//
// Usage:
//
//	simbench [-iterations K] [-jobs N] [-out FILE]
//
// The harness runs the full Fig. 5 lmbench battery and the full Fig. 6
// PassMark battery at jobs=1 and jobs=N (default GOMAXPROCS), taking the
// best of K iterations (default 3) for each wall time. A separate traced
// jobs=1 pass counts simulated syscalls and scheduler events — the counts
// are deterministic, so dividing the untraced wall time by them yields
// the harness's headline metrics: host ns per simulated syscall and
// scheduler events per host second. A ping-pong microbenchmark isolates
// the per-context-switch cost and allocations of the run-token handoff.
//
// Compare two documents with benchdiff, which fails on wall-clock
// regressions (see cmd/benchdiff).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lmbench"
	"repro/internal/passmark"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Doc is the BENCH_simwall.json schema. All wall times are host
// nanoseconds; simulated time never appears here.
type Doc struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"go_version"`
	HostCPUs   int    `json:"host_cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Jobs       int    `json:"jobs"`
	Iterations int    `json:"iterations"`

	// Battery wall times: full Fig. 5 (88 cells) + Fig. 6 (4 cells),
	// best-of-K, sequential vs parallel.
	Fig5WallNSJobs1    int64 `json:"fig5_wall_ns_jobs1"`
	Fig5WallNSJobsN    int64 `json:"fig5_wall_ns_jobsn"`
	Fig6WallNSJobs1    int64 `json:"fig6_wall_ns_jobs1"`
	Fig6WallNSJobsN    int64 `json:"fig6_wall_ns_jobsn"`
	BatteryWallNSJobs1 int64 `json:"battery_wall_ns_jobs1"`
	BatteryWallNSJobsN int64 `json:"battery_wall_ns_jobsn"`
	// ParallelSpeedup is jobs1/jobsN battery wall. Bounded above by
	// HostCPUs: on a single-core host it cannot exceed ~1.0.
	ParallelSpeedup float64 `json:"parallel_speedup"`

	// Simulator throughput, from the jobs=1 Fig. 5 battery.
	SimSyscalls       uint64  `json:"sim_syscalls"`
	NSPerSimSyscall   float64 `json:"ns_per_sim_syscall"`
	SchedEvents       uint64  `json:"sched_events"`
	SchedEventsPerSec float64 `json:"sched_events_per_sec"`

	// Context-switch microbenchmark: two Procs bouncing park/wake.
	SwitchNS          float64 `json:"switch_ns"`
	SwitchAllocsPerOp int64   `json:"switch_allocs_per_round"`
}

func main() {
	iterations := flag.Int("iterations", 3, "wall-time iterations per point (best is kept)")
	jobs := flag.Int("jobs", 0, "parallel worker count for the jobsN points (<=0: GOMAXPROCS)")
	out := flag.String("out", "BENCH_simwall.json", "output file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurement run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the measurement run to this file")
	maxSwitchAllocs := flag.Int64("maxswitchallocs", -1, "fail when switch_allocs_per_round exceeds this (<0: no gate)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	doc, err := measure(*iterations, runner.Jobs(*jobs))
	if *memprofile != "" {
		// The alloc_space profile is what the burn-down methodology reads:
		// cumulative allocations over the whole measurement run, not the
		// (tiny) live heap at exit.
		f, perr := os.Create(*memprofile)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", perr)
			os.Exit(1)
		}
		runtime.GC()
		if perr := pprof.Lookup("allocs").WriteTo(f, 0); perr != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", perr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("simbench: fig5 %v (jobs=1) / %v (jobs=%d), fig6 %v / %v, speedup %.2fx on %d host cpu(s)\n",
		time.Duration(doc.Fig5WallNSJobs1), time.Duration(doc.Fig5WallNSJobsN), doc.Jobs,
		time.Duration(doc.Fig6WallNSJobs1), time.Duration(doc.Fig6WallNSJobsN),
		doc.ParallelSpeedup, doc.HostCPUs)
	fmt.Printf("simbench: %.0f ns/sim-syscall, %.0f sched events/sec, switch %.0f ns (%d allocs/round)\n",
		doc.NSPerSimSyscall, doc.SchedEventsPerSec, doc.SwitchNS, doc.SwitchAllocsPerOp)
	fmt.Printf("simbench: wrote %s\n", *out)
	if *maxSwitchAllocs >= 0 && doc.SwitchAllocsPerOp > *maxSwitchAllocs {
		// The context-switch round is the one path the fast-path work pins
		// at zero heap traffic; a new allocation there silently taxes every
		// simulated syscall, so the smoke gate fails loudly instead.
		fmt.Fprintf(os.Stderr, "simbench: switch_allocs_per_round = %d, want <= %d\n",
			doc.SwitchAllocsPerOp, *maxSwitchAllocs)
		os.Exit(1)
	}
}

func measure(iterations, jobs int) (*Doc, error) {
	doc := &Doc{
		Schema:     1,
		GoVersion:  runtime.Version(),
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Jobs:       jobs,
		Iterations: iterations,
	}

	fig5 := func(j int) error {
		_, err := lmbench.RunFigure5Opts(lmbench.AllTests(), lmbench.Options{Jobs: j})
		return err
	}
	fig6 := func(j int) error {
		_, err := passmark.RunFigure6Opts(passmark.AllTests(), passmark.Options{Jobs: j})
		return err
	}

	var err error
	if doc.Fig5WallNSJobs1, err = bestWall(iterations, 1, fig5); err != nil {
		return nil, fmt.Errorf("fig5 jobs=1: %w", err)
	}
	if doc.Fig5WallNSJobsN, err = bestWall(iterations, jobs, fig5); err != nil {
		return nil, fmt.Errorf("fig5 jobs=%d: %w", jobs, err)
	}
	if doc.Fig6WallNSJobs1, err = bestWall(iterations, 1, fig6); err != nil {
		return nil, fmt.Errorf("fig6 jobs=1: %w", err)
	}
	if doc.Fig6WallNSJobsN, err = bestWall(iterations, jobs, fig6); err != nil {
		return nil, fmt.Errorf("fig6 jobs=%d: %w", jobs, err)
	}
	doc.BatteryWallNSJobs1 = doc.Fig5WallNSJobs1 + doc.Fig6WallNSJobs1
	doc.BatteryWallNSJobsN = doc.Fig5WallNSJobsN + doc.Fig6WallNSJobsN
	if doc.BatteryWallNSJobsN > 0 {
		doc.ParallelSpeedup = float64(doc.BatteryWallNSJobs1) / float64(doc.BatteryWallNSJobsN)
	}

	// Traced pass: count simulated syscalls and scheduler events across
	// the Fig. 5 battery. Event counts are deterministic, so they pair
	// with the untraced wall times measured above.
	sessions := make([]*trace.Session, len(lmbench.Cells(lmbench.AllTests())))
	_, err = lmbench.RunFigure5Opts(lmbench.AllTests(), lmbench.Options{
		Jobs: jobs,
		OnSystem: func(cell lmbench.Cell, sys *core.System) {
			s := sys.EnableTrace()
			s.SetRingCapacity(1) // stats only; the event ring would dominate
			sessions[cell.Index] = s
		},
	})
	if err != nil {
		return nil, fmt.Errorf("traced fig5: %w", err)
	}
	for _, s := range sessions {
		if s == nil {
			continue
		}
		sum := s.Summarize(false)
		for _, sc := range sum.Syscalls {
			doc.SimSyscalls += sc.Hist.Count
		}
		for _, n := range sum.Sched {
			doc.SchedEvents += n
		}
	}
	if doc.SimSyscalls > 0 {
		doc.NSPerSimSyscall = float64(doc.Fig5WallNSJobs1) / float64(doc.SimSyscalls)
	}
	if doc.Fig5WallNSJobs1 > 0 {
		doc.SchedEventsPerSec = float64(doc.SchedEvents) / (float64(doc.Fig5WallNSJobs1) / 1e9)
	}

	doc.SwitchNS, doc.SwitchAllocsPerOp = switchBench()
	return doc, nil
}

// bestWall runs fn(jobs) iterations times and returns the best wall time.
func bestWall(iterations, jobs int, fn func(jobs int) error) (int64, error) {
	best := int64(-1)
	for i := 0; i < iterations; i++ {
		start := time.Now()
		if err := fn(jobs); err != nil {
			return 0, err
		}
		if ns := time.Since(start).Nanoseconds(); best < 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// switchBench measures one simulated context switch: two Procs bouncing
// park/wake, each round trip two full run-token handoffs (the same shape
// as internal/sim's BenchmarkPingPongHandoff). Allocations are per round
// trip, amortized over the rounds of one sim.
func switchBench() (nsPerSwitch float64, allocsPerRound int64) {
	const rounds = 1000
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := sim.New()
			var pa, pb *sim.Proc
			pa = s.Spawn("a", func(p *sim.Proc) {
				for j := 0; j < rounds; j++ {
					p.Advance(time.Microsecond)
					p.Wake(pb, sim.WakeNormal)
					//lint:allow waketag: closed benchmark pair: a is only ever woken normally by b
					p.Park("pong")
				}
				p.Wake(pb, sim.WakeInterrupted)
			})
			pb = s.Spawn("b", func(p *sim.Proc) {
				for {
					if p.Park("ping") == sim.WakeInterrupted {
						return
					}
					p.Advance(time.Microsecond)
					p.Wake(pa, sim.WakeNormal)
				}
			})
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return float64(res.NsPerOp()) / (2 * rounds), res.AllocsPerOp() / rounds
}
