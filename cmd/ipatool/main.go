// Command ipatool drives the App Store package pipeline of Section 6.1 on
// host files: build an encrypted .ipa the way the store ships one, decrypt
// it with a device key (the jailbroken-iPhone step), and inspect packages.
//
// Usage:
//
//	ipatool build   -name App -bundle com.x.app -key 0xSEED <out.ipa>
//	ipatool decrypt -key 0xSEED <in.ipa> <out.ipa>
//	ipatool info    <in.ipa>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ipa"
	"repro/internal/macho"
	"repro/internal/prog"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	name := fs.String("name", "SampleApp", "app bundle name")
	bundle := fs.String("bundle", "com.example.sample", "bundle identifier")
	keySeed := fs.Uint64("key", 0xC1DE0000, "device key seed")
	fs.Parse(os.Args[2:])
	key := ipa.DeviceKey{Seed: *keySeed}

	switch cmd {
	case "build":
		if fs.NArg() != 1 {
			usage()
		}
		bin, err := prog.MachOExecutable(*bundle, []string{"/usr/lib/libSystem.B.dylib"}, nil)
		check(err)
		enc, err := ipa.EncryptBinary(bin, key)
		check(err)
		pkg, err := ipa.Build(&ipa.App{
			Name: *name, BundleID: *bundle, Binary: enc,
			Assets: map[string][]byte{"Icon.png": []byte("ICON")},
		})
		check(err)
		check(os.WriteFile(fs.Arg(0), pkg, 0o644))
		fmt.Printf("built encrypted %s (%d bytes)\n", fs.Arg(0), len(pkg))
	case "decrypt":
		if fs.NArg() != 2 {
			usage()
		}
		in, err := os.ReadFile(fs.Arg(0))
		check(err)
		out, err := ipa.Decrypt(in, key)
		check(err)
		check(os.WriteFile(fs.Arg(1), out, 0o644))
		fmt.Printf("decrypted %s -> %s\n", fs.Arg(0), fs.Arg(1))
	case "info":
		if fs.NArg() != 1 {
			usage()
		}
		data, err := os.ReadFile(fs.Arg(0))
		check(err)
		app, err := ipa.Parse(data)
		check(err)
		fmt.Printf("name:    %s\nbundle:  %s\nbinary:  %d bytes\nassets:  %d\n",
			app.Name, app.BundleID, len(app.Binary), len(app.Assets))
		if mf, err := macho.Parse(app.Binary); err == nil {
			if mf.Encrypted() {
				fmt.Println("state:   FairPlay-encrypted (decrypt before installing on Cider)")
			} else {
				fmt.Println("state:   decrypted (installable on Cider)")
			}
		}
	default:
		usage()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipatool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ipatool build   -name App -bundle com.x.app -key 0xSEED <out.ipa>
  ipatool decrypt -key 0xSEED <in.ipa> <out.ipa>
  ipatool info    <in.ipa>`)
	os.Exit(2)
}
