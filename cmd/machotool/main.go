// Command machotool inspects Mach-O images — the otool/jtool of the
// simulated ecosystem. It prints the header, load commands, segments,
// dylib references and symbol table of a Mach-O file, and can generate a
// sample iOS app binary to play with.
//
// Usage:
//
//	machotool <file>          inspect a Mach-O image
//	machotool -sample <file>  write a sample iOS app binary
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/macho"
	"repro/internal/prog"
)

func main() {
	sample := flag.Bool("sample", false, "write a sample iOS app binary instead of inspecting")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: machotool [-sample] <file>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *sample {
		bin, err := prog.MachOExecutable("com.example.sample", []string{
			"/usr/lib/libSystem.B.dylib",
			"/System/Library/Frameworks/UIKit.framework/UIKit",
		}, []string{"_IOSurfaceCreate", "_glDrawArrays"})
		if err != nil {
			fmt.Fprintf(os.Stderr, "machotool: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, bin, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "machotool: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote sample Mach-O executable to %s (%d bytes)\n", path, len(bin))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "machotool: %v\n", err)
		os.Exit(1)
	}
	f, err := macho.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "machotool: %v\n", err)
		os.Exit(1)
	}
	dump(f)
}

func dump(f *macho.File) {
	typ := "?"
	switch f.FileType {
	case macho.TypeExecute:
		typ = "MH_EXECUTE"
	case macho.TypeDylib:
		typ = "MH_DYLIB"
	}
	fmt.Printf("Mach-O 32-bit  cputype %d (ARM) subtype %d  filetype %s  flags %#x\n",
		f.CPUType, f.CPUSubtype, typ, f.Flags)
	if f.DylibID != "" {
		fmt.Printf("LC_ID_DYLIB        %s\n", f.DylibID)
	}
	if f.Dylinker != "" {
		fmt.Printf("LC_LOAD_DYLINKER   %s\n", f.Dylinker)
	}
	if f.HasEntry {
		fmt.Printf("LC_MAIN            entryoff=%#x\n", f.EntryOffset)
	}
	if f.Encryption != nil {
		state := "decrypted"
		if f.Encryption.CryptID != 0 {
			state = "ENCRYPTED"
		}
		fmt.Printf("LC_ENCRYPTION_INFO cryptoff=%#x cryptsize=%#x cryptid=%d (%s)\n",
			f.Encryption.CryptOff, f.Encryption.CryptSize, f.Encryption.CryptID, state)
	}
	for _, seg := range f.Segments {
		fmt.Printf("LC_SEGMENT         %-16s vmaddr=%#x vmsize=%#x filesize=%#x prot=%d\n",
			seg.Name, seg.VMAddr, seg.VMSize, len(seg.Data), seg.Prot)
		for _, sec := range seg.Sections {
			fmt.Printf("    section        %-16s addr=%#x size=%#x\n", sec.Name, sec.Addr, sec.Size)
		}
	}
	for _, d := range f.Dylibs {
		fmt.Printf("LC_LOAD_DYLIB      %s\n", d)
	}
	if len(f.Symbols) > 0 {
		fmt.Printf("symbol table (%d entries):\n", len(f.Symbols))
		for _, s := range f.Symbols {
			kind := "local "
			if s.Exported() {
				kind = "export"
			} else if s.Undefined() {
				kind = "undef "
			}
			fmt.Printf("    %s  %#010x  %s\n", kind, s.Value, s.Name)
		}
	}
}
