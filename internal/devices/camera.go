package devices

import (
	"time"

	"repro/internal/graphics"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/prog"
	"repro/internal/sim"
)

// Camera is the Linux camera device (/dev/camera0): a sensor producing
// synthetic frames.
type Camera struct {
	// Width and Height are the sensor resolution.
	Width, Height int
	// exposure is the per-frame capture time.
	exposure time.Duration
	frames   uint64
}

// NewCamera creates a 1280x960 sensor (the Nexus 7's front camera class).
func NewCamera() *Camera {
	return &Camera{Width: 1280, Height: 960, exposure: 33 * time.Millisecond}
}

// Frames reports captured frames.
func (c *Camera) Frames() uint64 { return c.frames }

// DevName implements kernel.Device.
func (c *Camera) DevName() string { return "camera0" }

// Open implements kernel.Device.
func (c *Camera) Open(*kernel.Thread) (kernel.File, kernel.Errno) {
	return &cameraFile{dev: c}, kernel.OK
}

// Capture exposes one frame into dst (a pixel buffer), charging sensor
// exposure time. The synthetic image is a gradient stamped with the frame
// counter, so tests can verify real data moved.
func (c *Camera) Capture(t *kernel.Thread, dst []byte) {
	t.Charge(c.exposure)
	c.frames++
	for i := range dst {
		dst[i] = byte(i) ^ byte(c.frames)
	}
}

type cameraFile struct {
	dev *Camera
}

// CamIoctlCapture triggers a capture through the V4L2-style interface.
const CamIoctlCapture = 0x6801

func (f *cameraFile) Read(t *kernel.Thread, buf []byte) (int, kernel.Errno) {
	f.dev.Capture(t, buf)
	return len(buf), kernel.OK
}

func (f *cameraFile) Write(*kernel.Thread, []byte) (int, kernel.Errno) {
	return 0, kernel.EINVAL
}
func (f *cameraFile) Close(*kernel.Thread) kernel.Errno           { return kernel.OK }
func (f *cameraFile) Poll() kernel.PollMask                       { return kernel.PollIn }
func (f *cameraFile) PollQueues(kernel.PollMask) []*sim.WaitQueue { return nil }
func (f *cameraFile) Ioctl(t *kernel.Thread, req, arg uint64) (uint64, kernel.Errno) {
	if req == CamIoctlCapture {
		f.dev.frames++
		t.Charge(f.dev.exposure)
		return f.dev.frames, kernel.OK
	}
	return 0, kernel.ENOTTY
}

// CameraLibPath is the Android camera client library.
const CameraLibPath = "/system/lib/libcamera_client.so"

// CameraFunctions is libcamera_client's export list.
var CameraFunctions = []string{"camera_capture_to_buffer"}

// RegisterCameraLib publishes the domestic camera library: captures a
// frame from the sensor into a gralloc buffer — the native Android path
// iOS camera diplomats call into.
func RegisterCameraLib(reg *prog.Registry, cam *Camera, gr *graphics.Gralloc, cpu *hw.CPUModel) error {
	return reg.Register(prog.SymbolKey(CameraLibPath, "camera_capture_to_buffer"),
		func(c *prog.Call) uint64 {
			t, ok := c.Ctx.(*kernel.Thread)
			if !ok {
				return 0
			}
			buf, ok := gr.Get(c.Arg(0))
			if !ok {
				return ^uint64(0)
			}
			t.Charge(cpu.Cycles(26000)) // HAL pipeline setup
			cam.Capture(t, buf.Backing.Bytes())
			return cam.Frames()
		})
}

// iOS-facing entry points ------------------------------------------------

// CoreLocationPath is the iOS CoreLocation framework binary.
const CoreLocationPath = "/System/Library/Frameworks/CoreLocation.framework/CoreLocation"

// AVFoundationPath is the iOS AVFoundation framework binary.
const AVFoundationPath = "/System/Library/Frameworks/AVFoundation.framework/AVFoundation"

// CLExports is CoreLocation's exported surface (the subset modeled).
var CLExports = []string{"_CLLocationManagerGetFix"}

// AVExports is AVFoundation's camera surface (the subset modeled).
var AVExports = []string{"_AVCaptureStillImage"}

// KCLErrDenied mirrors kCLErrorDenied: location services unavailable. Apps
// with fallback paths (the paper's Yelp example) treat this as "current
// location unavailable" and continue.
const KCLErrDenied = ^uint64(0)

// KAVErrNoDevice mirrors AVErrorDeviceNotConnected: no camera. Apps that
// require the camera (the paper's Facetime example) cannot proceed.
const KAVErrNoDevice = ^uint64(0) - 1

// RegisterIOSStubs registers the paper-faithful (prototype) behaviour:
// CoreLocation reports no location services, AVFoundation no camera —
// "Cider will not currently run iOS apps that depend on such devices",
// while fallback-capable apps keep working (Section 6.4).
func RegisterIOSStubs(reg *prog.Registry) error {
	if err := reg.Register(prog.SymbolKey(CoreLocationPath, "_CLLocationManagerGetFix"),
		func(c *prog.Call) uint64 { return KCLErrDenied }); err != nil {
		return err
	}
	return reg.Register(prog.SymbolKey(AVFoundationPath, "_AVCaptureStillImage"),
		func(c *prog.Call) uint64 { return KAVErrNoDevice })
}

// Diplomat is the arbitration surface this package needs from
// internal/diplomat (kept as an interface to avoid the dependency for the
// stub-only configuration).
type Diplomat interface {
	Wrap(domesticKey string) prog.Func
}

// RegisterIOSDiplomats registers the Section 6.4 sketch implemented: the
// CoreLocation and AVFoundation entry points become diplomatic functions
// into the Android location/camera libraries.
func RegisterIOSDiplomats(reg *prog.Registry, eng Diplomat) error {
	if err := reg.Register(prog.SymbolKey(CoreLocationPath, "_CLLocationManagerGetFix"),
		eng.Wrap(prog.SymbolKey(LocationLibPath, "location_get_fix"))); err != nil {
		return err
	}
	return reg.Register(prog.SymbolKey(AVFoundationPath, "_AVCaptureStillImage"),
		eng.Wrap(prog.SymbolKey(CameraLibPath, "camera_capture_to_buffer")))
}

// RegisterIOSNative registers the iPad's own implementations: CoreLocation
// backed by the device's receiver, AVFoundation by its camera.
func RegisterIOSNative(reg *prog.Registry, gps *GPS, cam *Camera, gr *graphics.Gralloc, cpu *hw.CPUModel) error {
	if err := reg.Register(prog.SymbolKey(CoreLocationPath, "_CLLocationManagerGetFix"),
		func(c *prog.Call) uint64 {
			t, ok := c.Ctx.(*kernel.Thread)
			if !ok {
				return KCLErrDenied
			}
			t.Charge(cpu.Cycles(5200))
			if f := gps.Fix(); f.Valid {
				return f.Pack()
			}
			return KCLErrDenied
		}); err != nil {
		return err
	}
	return reg.Register(prog.SymbolKey(AVFoundationPath, "_AVCaptureStillImage"),
		func(c *prog.Call) uint64 {
			t, ok := c.Ctx.(*kernel.Thread)
			if !ok {
				return KAVErrNoDevice
			}
			buf, ok := gr.Get(c.Arg(0))
			if !ok {
				return KAVErrNoDevice
			}
			cam.Capture(t, buf.Backing.Bytes())
			return cam.Frames()
		})
}
