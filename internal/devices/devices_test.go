package devices_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/dyld"
	"repro/internal/kernel"
	"repro/internal/prog"
)

// yelpLike models the paper's Yelp example: asks for the location, falls
// back gracefully when services are unavailable, and keeps working.
func yelpLike(th *kernel.Thread, gotFix *devices.Fix, fellBack *bool) uint64 {
	fn, ok := dyld.ResolveSymbol(th, "_CLLocationManagerGetFix")
	if !ok {
		return 1
	}
	ret := fn(&prog.Call{Ctx: th})
	if ret == devices.KCLErrDenied {
		// "Yelp simply assumes the user's current location is unavailable,
		// and continues to function" (§6.4).
		*fellBack = true
		return 0
	}
	*gotFix = devices.UnpackFix(ret)
	return 0
}

func TestFixPackUnpackProperty(t *testing.T) {
	f := func(lat, lon int32) bool {
		if lat < -90_000_000 || lat > 90_000_000 || lon < -180_000_000 || lon > 180_000_000 {
			return true // out of the coordinate domain
		}
		in := devices.Fix{LatE6: lat, LonE6: lon, Valid: true}
		return devices.UnpackFix(in.Pack()) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixPackUnpack(t *testing.T) {
	f := devices.Fix{LatE6: 40_807_500, LonE6: -73_962_100, Valid: true} // Columbia
	got := devices.UnpackFix(f.Pack())
	if got != f {
		t.Fatalf("round trip: %+v != %+v", got, f)
	}
	if devices.UnpackFix(devices.Fix{}.Pack()).Valid {
		t.Fatal("invalid fix must stay invalid")
	}
}

func TestPrototypeCiderYelpFallback(t *testing.T) {
	// Paper-faithful configuration: no iOS location support.
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	sys.GPS.SetFix(40_807_500, -73_962_100) // the hardware has a fix...
	var fix devices.Fix
	var fellBack bool
	sys.InstallIOSBinary("/Applications/Yelp.app/Yelp", "yelp", nil, func(c *prog.Call) uint64 {
		return yelpLike(c.Ctx.(*kernel.Thread), &fix, &fellBack)
	})
	sys.Start("/Applications/Yelp.app/Yelp", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !fellBack {
		t.Fatal("prototype Cider must report location unavailable")
	}
	if fix.Valid {
		t.Fatal("no fix should reach the app")
	}
}

func TestExtendedCiderDeliversGPSFix(t *testing.T) {
	// The §6.4 sketch implemented: I/O Kit driver + diplomatic functions.
	sys, err := core.NewSystem(core.ConfigCider, core.Options{ExtendedDevices: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.GPS.SetFix(40_807_500, -73_962_100)
	var fix devices.Fix
	var fellBack bool
	sys.InstallIOSBinary("/Applications/Yelp.app/Yelp", "yelp", nil, func(c *prog.Call) uint64 {
		return yelpLike(c.Ctx.(*kernel.Thread), &fix, &fellBack)
	})
	sys.Start("/Applications/Yelp.app/Yelp", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if fellBack {
		t.Fatal("extended Cider should deliver a fix")
	}
	if !fix.Valid || fix.LatE6 != 40_807_500 || fix.LonE6 != -73_962_100 {
		t.Fatalf("fix = %+v", fix)
	}
	// The I/O Kit registry sees the GPS through the device-add bridge.
	var matched int
	sys2, _ := core.NewSystem(core.ConfigCider, core.Options{ExtendedDevices: true})
	sys2.InstallStaticAndroidBinary("/bin/probe", "probe", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		matched = len(sys2.IOKit.ServiceMatching(th, "AppleSmartGPS"))
		return 0
	})
	sys2.Start("/bin/probe", nil)
	if err := sys2.Run(); err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Fatalf("AppleSmartGPS matches = %d, want 1", matched)
	}
}

func TestIPadNativeLocation(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigIPad)
	if err != nil {
		t.Fatal(err)
	}
	sys.GPS.SetFix(37_331_700, -122_030_200)
	var fix devices.Fix
	var fellBack bool
	sys.InstallIOSBinary("/Applications/Maps.app/Maps", "maps", nil, func(c *prog.Call) uint64 {
		return yelpLike(c.Ctx.(*kernel.Thread), &fix, &fellBack)
	})
	sys.Start("/Applications/Maps.app/Maps", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if fellBack || !fix.Valid {
		t.Fatalf("iPad native location failed: fellBack=%v fix=%+v", fellBack, fix)
	}
}

// facetimeLike requires the camera, as the paper's Facetime example does.
func facetimeLike(th *kernel.Thread, frames *uint64) uint64 {
	fn, ok := dyld.ResolveSymbol(th, "_AVCaptureStillImage")
	if !ok {
		return 1
	}
	// Allocate a gralloc-backed surface through IOSurface for the frame.
	surf, ok := dyld.ResolveSymbol(th, "_IOSurfaceCreate")
	if !ok {
		return 1
	}
	bufID := surf(&prog.Call{Ctx: th, Args: []uint64{1280, 960, 4}})
	ret := fn(&prog.Call{Ctx: th, Args: []uint64{bufID}})
	if ret == devices.KAVErrNoDevice {
		return 2 // cannot run without a camera
	}
	*frames = ret
	return 0
}

func TestPrototypeCiderCameraAppFails(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	var frames uint64
	var status uint64
	sys.InstallIOSBinary("/Applications/FT.app/FT", "ft", nil, func(c *prog.Call) uint64 {
		status = facetimeLike(c.Ctx.(*kernel.Thread), &frames)
		return status
	})
	sys.Start("/Applications/FT.app/FT", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if status != 2 {
		t.Fatalf("status = %d, want 2 (camera unavailable on prototype Cider)", status)
	}
}

func TestExtendedCiderCameraCaptures(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider, core.Options{ExtendedDevices: true})
	if err != nil {
		t.Fatal(err)
	}
	var frames, status uint64
	sys.InstallIOSBinary("/Applications/FT.app/FT", "ft", nil, func(c *prog.Call) uint64 {
		status = facetimeLike(c.Ctx.(*kernel.Thread), &frames)
		return status
	})
	sys.Start("/Applications/FT.app/FT", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if status != 0 || frames != 1 {
		t.Fatalf("status=%d frames=%d", status, frames)
	}
	if sys.Camera.Frames() != 1 {
		t.Fatalf("camera frames = %d (capture must hit Android hardware)", sys.Camera.Frames())
	}
	// The captured bytes landed in the gralloc buffer.
	buf, ok := sys.Gfx.Gralloc.Get(1)
	if !ok {
		t.Fatal("no gralloc buffer")
	}
	nonzero := false
	for _, b := range buf.Backing.Bytes()[:64] {
		if b != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("frame data did not reach the buffer")
	}
}

func TestIPadNativeCamera(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigIPad)
	if err != nil {
		t.Fatal(err)
	}
	var frames, status uint64
	sys.InstallIOSBinary("/Applications/FT.app/FT", "ft", nil, func(c *prog.Call) uint64 {
		status = facetimeLike(c.Ctx.(*kernel.Thread), &frames)
		return status
	})
	sys.Start("/Applications/FT.app/FT", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if status != 0 || frames != 1 {
		t.Fatalf("status=%d frames=%d", status, frames)
	}
}

func TestGPSDeviceNodeIoctl(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	sys.GPS.SetFix(1_000_000, 2_000_000)
	var packed uint64
	sys.InstallStaticAndroidBinary("/bin/gpsread", "gpsread", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		fd := th.Syscall(kernel.SysOpen, &kernel.SyscallArgs{Path: "/dev/gps0"})
		ret := th.Syscall(kernel.SysIoctl, &kernel.SyscallArgs{I: [6]uint64{fd.R0, devices.GPSIoctlGetFix}})
		packed = ret.R0
		return 0
	})
	sys.Start("/bin/gpsread", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	fix := devices.UnpackFix(packed)
	if !fix.Valid || fix.LatE6 != 1_000_000 {
		t.Fatalf("fix = %+v", fix)
	}
}
