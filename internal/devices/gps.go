// Package devices implements the device-support sketch of Section 6.4.
// The paper's prototype supports no GPS or camera — "an app such as
// Facetime that requires use of the camera does not currently work with
// Cider", while apps with fallback paths (Yelp) keep running — but lays
// out how support would be built: "Devices with a simple interface, such
// as GPS, can be supported with I/O Kit drivers and diplomatic functions";
// for the camera, "by replacing these API entry points with diplomatic
// functions that interact with native Android hardware, it may be possible
// to provide camera support."
//
// This package implements both sketches: the Android-side hardware
// (GPS and camera devices, their HAL libraries) always exists on the
// Nexus 7; the iOS-facing CoreLocation/AVFoundation entry points are
// unsupported stubs in the paper-faithful configuration and diplomatic
// functions when core.Options.ExtendedDevices is set.
package devices

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hw"
	"repro/internal/iokit"
	"repro/internal/kernel"
	"repro/internal/prog"
	"repro/internal/sim"
)

// Fix is a GPS position.
type Fix struct {
	// LatE6 and LonE6 are degrees scaled by 1e6.
	LatE6, LonE6 int32
	// Valid marks an acquired fix.
	Valid bool
}

// Pack encodes the fix for register-style transport: bit 63 is validity,
// bits 32..62 carry latitude offset by +90° (31 bits), bits 0..31 carry
// longitude offset by +180° (32 bits). Both scaled ranges fit with room to
// spare (±90e6 / ±180e6).
func (f Fix) Pack() uint64 {
	if !f.Valid {
		return 0
	}
	lat := uint64(int64(f.LatE6) + 90_000_000)
	lon := uint64(int64(f.LonE6) + 180_000_000)
	return 1<<63 | lat<<32 | lon
}

// UnpackFix decodes a packed fix.
func UnpackFix(v uint64) Fix {
	if v&(1<<63) == 0 {
		return Fix{}
	}
	return Fix{
		LatE6: int32(int64((v>>32)&0x7FFF_FFFF) - 90_000_000),
		LonE6: int32(int64(v&0xFFFF_FFFF) - 180_000_000),
		Valid: true,
	}
}

// GPSIoctlGetFix is the Linux GPS driver's ioctl request code.
const GPSIoctlGetFix = 0x6701

// GPS is the Linux GPS device (/dev/gps0) — Android-side hardware.
type GPS struct {
	fix Fix
}

// NewGPS creates the device with no fix acquired.
func NewGPS() *GPS { return &GPS{} }

// SetFix programs the simulated receiver (the test's satellite).
func (g *GPS) SetFix(latE6, lonE6 int32) {
	g.fix = Fix{LatE6: latE6, LonE6: lonE6, Valid: true}
}

// Fix returns the current fix.
func (g *GPS) Fix() Fix { return g.fix }

// DevName implements kernel.Device.
func (g *GPS) DevName() string { return "gps0" }

// Open implements kernel.Device.
func (g *GPS) Open(*kernel.Thread) (kernel.File, kernel.Errno) {
	return &gpsFile{dev: g}, kernel.OK
}

type gpsFile struct {
	dev *GPS
}

func (f *gpsFile) Read(t *kernel.Thread, buf []byte) (int, kernel.Errno) {
	// NMEA-style: the packed fix as 8 bytes.
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, f.dev.fix.Pack())
	return copy(buf, b), kernel.OK
}

func (f *gpsFile) Write(t *kernel.Thread, buf []byte) (int, kernel.Errno) {
	return 0, kernel.EINVAL
}
func (f *gpsFile) Close(*kernel.Thread) kernel.Errno           { return kernel.OK }
func (f *gpsFile) Poll() kernel.PollMask                       { return kernel.PollIn }
func (f *gpsFile) PollQueues(kernel.PollMask) []*sim.WaitQueue { return nil }

func (f *gpsFile) Ioctl(t *kernel.Thread, req, arg uint64) (uint64, kernel.Errno) {
	if req == GPSIoctlGetFix {
		return f.dev.fix.Pack(), kernel.OK
	}
	return 0, kernel.ENOTTY
}

// IOKitGPSDriver is the I/O Kit driver class half of the paper's GPS
// sketch: a thin wrapper matching the Linux GPS device node, so iOS
// location libraries can discover and query the receiver through the
// I/O Kit registry exactly as they would on Apple hardware.
type IOKitGPSDriver struct {
	gps *GPS
}

// NewIOKitGPSDriver wraps the Linux GPS device.
func NewIOKitGPSDriver(g *GPS) *IOKitGPSDriver { return &IOKitGPSDriver{gps: g} }

// SelGPSGetFix is the driver's method selector.
const SelGPSGetFix uint32 = 1

// ClassName implements iokit.Driver.
func (d *IOKitGPSDriver) ClassName() string { return "AppleSmartGPS" }

// Matches implements iokit.Driver.
func (d *IOKitGPSDriver) Matches(e *iokit.RegistryEntry) bool {
	return e.Properties["LinuxDeviceNode"] == "/dev/gps0"
}

// Start implements iokit.Driver.
func (d *IOKitGPSDriver) Start(e *iokit.RegistryEntry) error {
	e.Properties["LocationCapable"] = "yes"
	return nil
}

// Call implements iokit.Driver.
func (d *IOKitGPSDriver) Call(t *kernel.Thread, selector uint32, args []uint64) ([]uint64, error) {
	if selector == SelGPSGetFix {
		return []uint64{d.gps.Fix().Pack()}, nil
	}
	return nil, errBadSelector
}

var errBadSelector = fmt.Errorf("devices: bad selector")

// LocationLibPath is the Android location HAL client library.
const LocationLibPath = "/system/lib/liblocation.so"

// LocationFunctions is liblocation's export list.
var LocationFunctions = []string{"location_get_fix"}

// RegisterLocationLib publishes the domestic location library: it reads
// the fix from the GPS device through the device framework, the way
// Android's location service sits on the GPS HAL.
func RegisterLocationLib(reg *prog.Registry, gps *GPS, cpu *hw.CPUModel) error {
	return reg.Register(prog.SymbolKey(LocationLibPath, "location_get_fix"),
		func(c *prog.Call) uint64 {
			t, ok := c.Ctx.(*kernel.Thread)
			if !ok {
				return 0
			}
			// HAL fix acquisition cost.
			t.Charge(cpu.Cycles(5200))
			return gps.Fix().Pack()
		})
}
