package libsystem

import (
	"repro/internal/kernel"
	"repro/internal/prog"
)

// ShKey is the registry key of the iOS shell program body (the Mach-O
// /bin/sh copied from an iOS device, in the paper's setup).
const ShKey = "ios-sh"

// RegisterSh installs the iOS shell: `sh -c <command>` — shell startup,
// then fork+exec of the command. Because the shell itself is an iOS binary,
// its fork pays the full atfork/page-table cost and its exec reruns dyld's
// library walk, which is what the fork+sh(ios) lmbench variant measures.
func RegisterSh(reg *prog.Registry) error {
	return reg.Register(ShKey, func(c *prog.Call) uint64 {
		t := c.Ctx.(*kernel.Thread)
		lc := Sys(t)
		argv := t.Task().Argv()
		// Shell initialization compute (option parsing, env setup).
		t.Charge(t.Kernel().Device().CPU.Cycles(2300000))
		if len(argv) < 2 || argv[0] != "-c" {
			return 2
		}
		cmd := argv[1]
		pid := lc.Fork(func(cc *C) {
			cc.Exec(cmd, nil)
			cc.Exit(127)
		})
		if pid < 0 {
			return 2
		}
		_, status, _ := lc.Wait(pid)
		return uint64(status)
	})
}
