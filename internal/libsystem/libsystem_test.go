package libsystem_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/persona"
	"repro/internal/prog"
	"repro/internal/xnu"
)

func onIOS(t *testing.T, body func(lc *libsystem.C)) {
	t.Helper()
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallIOSBinary("/bin/ls-t", "lst-"+t.Name(), nil, func(c *prog.Call) uint64 {
		body(libsystem.Sys(c.Ctx.(*kernel.Thread)))
		return 0
	})
	sys.Start("/bin/ls-t", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAtExitRunsLIFO(t *testing.T) {
	var order []int
	onIOS(t, func(lc *libsystem.C) {
		pid := lc.Fork(func(cc *libsystem.C) {
			st := libsystem.ForTask(cc.T.Task())
			st.AtExit(func(*kernel.Thread) { order = append(order, 1) })
			st.AtExit(func(*kernel.Thread) { order = append(order, 2) })
			cc.Exit(0)
		})
		lc.Wait(pid)
	})
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1] (LIFO)", order)
	}
}

func TestAtForkPhaseOrdering(t *testing.T) {
	var phases []string
	onIOS(t, func(lc *libsystem.C) {
		st := libsystem.ForTask(lc.T.Task())
		st.AtFork(
			func(*kernel.Thread) { phases = append(phases, "prepare-a") },
			func(*kernel.Thread) { phases = append(phases, "parent-a") },
			func(*kernel.Thread) { phases = append(phases, "child-a") },
		)
		st.AtFork(
			func(*kernel.Thread) { phases = append(phases, "prepare-b") },
			func(*kernel.Thread) { phases = append(phases, "parent-b") },
			func(*kernel.Thread) { phases = append(phases, "child-b") },
		)
		pid := lc.Fork(func(cc *libsystem.C) { cc.Exit(0) })
		lc.Wait(pid)
	})
	// POSIX: prepare handlers run in reverse registration order; parent
	// and child handlers in registration order.
	// With dyld's 115 handlers already registered, ours are the last two;
	// filter to them.
	var ours []string
	for _, p := range phases {
		ours = append(ours, p)
	}
	want := []string{"prepare-b", "prepare-a", "child-a", "child-b", "parent-a", "parent-b"}
	// Child handlers run before the parent resumes or after depending on
	// scheduling; assert set-wise ordering constraints instead:
	idx := map[string]int{}
	for i, p := range ours {
		idx[p] = i
	}
	if idx["prepare-b"] > idx["prepare-a"] {
		t.Fatalf("prepare order wrong: %v", ours)
	}
	if idx["parent-a"] > idx["parent-b"] {
		t.Fatalf("parent order wrong: %v", ours)
	}
	if idx["child-a"] > idx["child-b"] {
		t.Fatalf("child order wrong: %v", ours)
	}
	for _, w := range want {
		if _, ok := idx[w]; !ok {
			t.Fatalf("missing phase %s in %v", w, ours)
		}
	}
	// Prepare must precede everything else.
	if idx["prepare-a"] > idx["child-a"] || idx["prepare-a"] > idx["parent-a"] {
		t.Fatalf("prepare did not run first: %v", ours)
	}
}

func TestStateClonedAcrossFork(t *testing.T) {
	// A handler registered in the child must not appear in the parent.
	var parentAtexit int
	onIOS(t, func(lc *libsystem.C) {
		pid := lc.Fork(func(cc *libsystem.C) {
			libsystem.ForTask(cc.T.Task()).AtExit(func(*kernel.Thread) {})
			cc.Exit(0)
		})
		lc.Wait(pid)
		n, _, _, _ := libsystem.ForTask(lc.T.Task()).Counts()
		parentAtexit = n
	})
	// dyld registered exactly 115 (one per image); the child's extra one
	// must not leak back.
	if parentAtexit != 115 {
		t.Fatalf("parent atexit handlers = %d, want 115", parentAtexit)
	}
}

func TestErrnoInIOSTLS(t *testing.T) {
	var errno int
	onIOS(t, func(lc *libsystem.C) {
		lc.Open("/no/such/path")
		errno = lc.Errno()
	})
	if errno != int(kernel.ENOENT) {
		t.Fatalf("errno = %d, want ENOENT", errno)
	}
}

func TestPosixSpawnFromLibsystem(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	sys.InstallIOSBinary("/bin/spawned", "spawned-"+t.Name(), nil, func(c *prog.Call) uint64 {
		ran = true
		return 0
	})
	var status int
	sys.InstallIOSBinary("/bin/spawner", "spawner-"+t.Name(), nil, func(c *prog.Call) uint64 {
		lc := libsystem.Sys(c.Ctx.(*kernel.Thread))
		pid, errno := lc.PosixSpawn("/bin/spawned", nil)
		if errno != kernel.OK {
			return 1
		}
		_, status, _ = lc.Wait(pid)
		return 0
	})
	sys.Start("/bin/spawner", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || status != 0 {
		t.Fatalf("ran=%v status=%d", ran, status)
	}
}

// TestLibcSurface exercises the full wrapper surface directly.
func TestLibcSurface(t *testing.T) {
	onIOS(t, func(lc *libsystem.C) {
		// Files.
		fd, errno := lc.Creat("/tmp/ls.dat")
		if errno != kernel.OK {
			t.Errorf("creat: %v", errno)
			return
		}
		if n, _ := lc.Write(fd, []byte("hello")); n != 5 {
			t.Errorf("write = %d", n)
		}
		lc.Close(fd)
		fd, _ = lc.Open("/tmp/ls.dat")
		buf := make([]byte, 8)
		if n, _ := lc.Read(fd, buf); n != 5 || string(buf[:5]) != "hello" {
			t.Errorf("read = %d %q", n, buf[:5])
		}
		lc.Close(fd)
		if errno := lc.Unlink("/tmp/ls.dat"); errno != kernel.OK {
			t.Errorf("unlink: %v", errno)
		}
		// Pipes + select.
		r, w, _ := lc.Pipe()
		lc.Write(w, []byte("x"))
		res, errno := lc.Select(&kernel.SelectRequest{ReadFDs: []int{r}, Timeout: 0})
		if errno != kernel.OK || res.N() != 1 {
			t.Errorf("select: %v n=%d", errno, res.N())
		}
		// Sockets.
		a, b, errno := lc.Socketpair()
		if errno != kernel.OK {
			t.Errorf("socketpair: %v", errno)
		}
		lc.Write(a, []byte("ping"))
		n, _ := lc.Read(b, buf)
		if string(buf[:n]) != "ping" {
			t.Errorf("socket read %q", buf[:n])
		}
		// Ioctl on the framebuffer.
		fb, errno := lc.Open("/dev/fb0")
		if errno != kernel.OK {
			t.Errorf("open fb0: %v", errno)
		} else if v, _ := lc.Ioctl(fb, 0x4600, 0); v != 1280<<16|800 {
			t.Errorf("fb ioctl = %#x", v)
		}
		// Identity.
		if lc.GetPID() <= 0 || lc.GetPPID() != 0 {
			t.Errorf("pid/ppid = %d/%d", lc.GetPID(), lc.GetPPID())
		}
		// Persona round trip via the libc wrapper.
		prev := lc.SetPersona(persona.Android)
		if prev != persona.IOS {
			t.Errorf("prev persona = %v", prev)
		}
		lc.T.Syscall(kernel.SysSetPersona, &kernel.SyscallArgs{I: [6]uint64{uint64(persona.IOS)}})
	})
}

// TestPthreadWrappers drives the psynch-backed pthread surface.
func TestPthreadWrappers(t *testing.T) {
	onIOS(t, func(lc *libsystem.C) {
		const mu, cv, sem = 0x10, 0x20, 0x30
		if kr := lc.PthreadMutexLock(mu); kr != xnu.KernSuccess {
			t.Errorf("lock: %v", kr)
		}
		woken := false
		lc.T.SpawnThread("signaler", func(st *kernel.Thread) {
			slc := libsystem.Sys(st)
			st.Proc().Sleep(2 * time.Millisecond)
			slc.PthreadMutexLock(mu)
			woken = true
			slc.PthreadCondSignal(cv)
			slc.PthreadMutexUnlock(mu)
		})
		timedOut, kr := lc.PthreadCondWait(cv, mu, 0)
		if kr != xnu.KernSuccess || timedOut {
			t.Errorf("cvwait: %v timedOut=%v", kr, timedOut)
		}
		if !woken {
			t.Error("cvwait returned before signal")
		}
		lc.PthreadMutexUnlock(mu)
		if n := lc.PthreadCondBroadcast(cv); n != 0 {
			t.Errorf("broadcast woke %d, want 0", n)
		}
		// Semaphore traps.
		ps, _ := xnu.PsynchFromKernel(lc.T.Kernel())
		ps.SemInit(lc.T, sem, 1)
		if kr := lc.SemaphoreWait(sem); kr != xnu.KernSuccess {
			t.Errorf("semwait: %v", kr)
		}
		if kr := lc.SemaphoreSignal(sem); kr != xnu.KernSuccess {
			t.Errorf("semsignal: %v", kr)
		}
	})
}
