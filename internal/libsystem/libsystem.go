// Package libsystem is the simulated iOS user-space runtime: libSystem's
// syscall wrappers (trapping with XNU numbers through the XNU ABI), the
// user half of the pthread library (backed by the duct-taped psynch kernel
// support), Mach IPC convenience calls, and the per-process atfork/atexit
// handler machinery whose 115-library registration load explains the iOS
// fork/exit costs of Section 6.2.
package libsystem

import (
	"time"

	"repro/internal/abi"
	"repro/internal/kernel"
	"repro/internal/persona"
	"repro/internal/xnu"
)

// StateKey locates the runtime state in task user data.
const StateKey = "libsystem.state"

// Handler is a registered atfork/atexit callback.
type Handler func(t *kernel.Thread)

// State is libSystem's per-process runtime state. It lives in the process
// image, so fork clones it (UserDataCloner) and exec destroys it.
type State struct {
	atexit        []Handler
	atforkPrepare []Handler
	atforkParent  []Handler
	atforkChild   []Handler
}

// CloneUserData implements kernel.UserDataCloner.
func (s *State) CloneUserData() any {
	c := &State{}
	c.atexit = append(c.atexit, s.atexit...)
	c.atforkPrepare = append(c.atforkPrepare, s.atforkPrepare...)
	c.atforkParent = append(c.atforkParent, s.atforkParent...)
	c.atforkChild = append(c.atforkChild, s.atforkChild...)
	return c
}

// ForTask returns (creating if needed) the task's libSystem state.
func ForTask(tk *kernel.Task) *State {
	if v, ok := tk.UserData(StateKey); ok {
		return v.(*State)
	}
	s := &State{}
	tk.SetUserData(StateKey, s)
	return s
}

// AtExit registers an exit handler (runs LIFO, as atexit does).
func (s *State) AtExit(h Handler) { s.atexit = append(s.atexit, h) }

// AtFork registers a pthread_atfork triple; nil members are skipped.
func (s *State) AtFork(prepare, parent, child Handler) {
	if prepare != nil {
		s.atforkPrepare = append(s.atforkPrepare, prepare)
	}
	if parent != nil {
		s.atforkParent = append(s.atforkParent, parent)
	}
	if child != nil {
		s.atforkChild = append(s.atforkChild, child)
	}
}

// Counts reports (atexit, prepare, parent, child) handler counts.
func (s *State) Counts() (int, int, int, int) {
	return len(s.atexit), len(s.atforkPrepare), len(s.atforkParent), len(s.atforkChild)
}

// C is a thread's libSystem handle: the calling convention every simulated
// iOS program uses to reach the kernel.
type C struct {
	// T is the calling thread.
	T *kernel.Thread
}

// Sys wraps a thread in its libSystem interface.
func Sys(t *kernel.Thread) *C { return &C{T: t} }

func (c *C) state() *State { return ForTask(c.T.Task()) }

// Errno returns the thread's errno from the iOS TLS area, in BSD
// numbering — reading it exercises the persona TLS mechanics.
func (c *C) Errno() int { return c.T.Persona.TLS(persona.IOS).Errno }

// Exit runs the process's atexit handlers (the 115 dyld-registered
// per-library handlers on a real app) and then issues the XNU exit
// syscall. It does not return.
func (c *C) Exit(status int) {
	s := c.state()
	for i := len(s.atexit) - 1; i >= 0; i-- {
		s.atexit[i](c.T)
	}
	c.T.Syscall(abi.XNUExit, &kernel.SyscallArgs{I: [6]uint64{uint64(status)}})
}

// Fork is libSystem fork: run the pthread_atfork prepare handlers, trap,
// then run parent handlers (parent) or child handlers + body (child). The
// handler execution is the user-space share of the 14x iOS fork+exit cost.
func (c *C) Fork(child func(cc *C)) int {
	s := c.state()
	for i := len(s.atforkPrepare) - 1; i >= 0; i-- { // prepare runs LIFO
		s.atforkPrepare[i](c.T)
	}
	ret := c.T.Syscall(abi.XNUFork, &kernel.SyscallArgs{ChildFn: func(ct *kernel.Thread) {
		cs := ForTask(ct.Task())
		for _, h := range cs.atforkChild {
			h(ct)
		}
		child(Sys(ct))
	}})
	for _, h := range s.atforkParent {
		h(c.T)
	}
	if ret.Errno != kernel.OK {
		return -1
	}
	return int(ret.R0)
}

// Exec replaces the process image; returns only on failure.
func (c *C) Exec(path string, argv []string) kernel.Errno {
	return c.T.Syscall(abi.XNUExecve, &kernel.SyscallArgs{Path: path, Argv: argv}).Errno
}

// PosixSpawn starts path as a new process, returning its pid.
func (c *C) PosixSpawn(path string, argv []string) (int, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUPosixSpawn, &kernel.SyscallArgs{Path: path, Argv: argv})
	return int(ret.R0), ret.Errno
}

// Wait blocks for a child to exit, returning (pid, status).
func (c *C) Wait(pid int) (int, int, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUWait4, &kernel.SyscallArgs{I: [6]uint64{uint64(pid)}})
	return int(int64(ret.R0)), int(ret.R1), ret.Errno
}

// Open opens a path for reading/writing.
func (c *C) Open(path string) (int, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUOpen, &kernel.SyscallArgs{Path: path})
	return int(int64(ret.R0)), ret.Errno
}

// OpenFlags opens a path with XNU open(2) flag bits (an iOS binary passes
// XNU's numbering, e.g. O_CREAT = 0x200; the ABI table renumbers).
func (c *C) OpenFlags(path string, flags int) (int, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUOpen, &kernel.SyscallArgs{Path: path, I: [6]uint64{0, uint64(flags)}})
	return int(int64(ret.R0)), ret.Errno
}

// OpenCreate opens a path, creating it if absent (open with XNU O_CREAT).
func (c *C) OpenCreate(path string) (int, kernel.Errno) {
	return c.OpenFlags(path, abi.XNUOCreat)
}

// Dup duplicates a descriptor.
func (c *C) Dup(fd int) (int, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUDup, &kernel.SyscallArgs{I: [6]uint64{uint64(fd)}})
	return int(int64(ret.R0)), ret.Errno
}

// Creat creates (or truncates) a file.
func (c *C) Creat(path string) (int, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUCreat, &kernel.SyscallArgs{Path: path})
	return int(int64(ret.R0)), ret.Errno
}

// Close closes a descriptor.
func (c *C) Close(fd int) kernel.Errno {
	return c.T.Syscall(abi.XNUClose, &kernel.SyscallArgs{I: [6]uint64{uint64(fd)}}).Errno
}

// Read fills buf from fd.
func (c *C) Read(fd int, buf []byte) (int, kernel.Errno) {
	ret := c.T.Syscall(abi.XNURead, &kernel.SyscallArgs{I: [6]uint64{uint64(fd)}, Buf: buf})
	return int(ret.R0), ret.Errno
}

// Write sends buf to fd.
func (c *C) Write(fd int, buf []byte) (int, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUWrite, &kernel.SyscallArgs{I: [6]uint64{uint64(fd)}, Buf: buf})
	return int(ret.R0), ret.Errno
}

// Unlink removes a file.
func (c *C) Unlink(path string) kernel.Errno {
	return c.T.Syscall(abi.XNUUnlink, &kernel.SyscallArgs{Path: path}).Errno
}

// Pipe returns (readFD, writeFD).
func (c *C) Pipe() (int, int, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUPipe, nil)
	return int(ret.R0), int(ret.R1), ret.Errno
}

// Socketpair returns a connected AF_UNIX pair.
func (c *C) Socketpair() (int, int, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUSocketpair, nil)
	return int(ret.R0), int(ret.R1), ret.Errno
}

// Select waits for readiness.
func (c *C) Select(req *kernel.SelectRequest) (*kernel.SelectResult, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUSelect, &kernel.SyscallArgs{Select: req})
	return ret.Select, ret.Errno
}

// Ioctl issues a device control call.
func (c *C) Ioctl(fd int, req, arg uint64) (uint64, kernel.Errno) {
	ret := c.T.Syscall(abi.XNUIoctl, &kernel.SyscallArgs{I: [6]uint64{uint64(fd), req, arg}})
	return ret.R0, ret.Errno
}

// GetPID returns the process id.
func (c *C) GetPID() int { return int(c.T.Syscall(abi.XNUGetpid, nil).R0) }

// GetPPID returns the parent process id.
func (c *C) GetPPID() int { return int(c.T.Syscall(abi.XNUGetppid, nil).R0) }

// Kill sends sig (XNU numbering) to pid.
func (c *C) Kill(pid, sig int) kernel.Errno {
	return c.T.Syscall(abi.XNUKill, &kernel.SyscallArgs{I: [6]uint64{uint64(pid), uint64(sig)}}).Errno
}

// Sigaction installs a handler for sig (XNU numbering). The handler
// receives the XNU signal number.
func (c *C) Sigaction(sig int, h kernel.SignalHandler) kernel.Errno {
	var act *kernel.SigAction
	if h != nil {
		act = &kernel.SigAction{Handler: h}
	}
	return c.T.Syscall(abi.XNUSigaction, &kernel.SyscallArgs{I: [6]uint64{uint64(sig)}, Act: act}).Errno
}

// Getrlimit reads a resource limit. The resource number is XNU's (an iOS
// binary says RLIMIT_NOFILE = 8); the ABI table renumbers at the boundary.
func (c *C) Getrlimit(res int) (cur, max uint64, errno kernel.Errno) {
	ret := c.T.Syscall(abi.XNUGetrlimit, &kernel.SyscallArgs{I: [6]uint64{uint64(res)}})
	return ret.R0, ret.R1, ret.Errno
}

// Setrlimit sets a resource limit (XNU resource numbering).
func (c *C) Setrlimit(res int, cur, max uint64) kernel.Errno {
	return c.T.Syscall(abi.XNUSetrlimit, &kernel.SyscallArgs{I: [6]uint64{uint64(res), cur, max}}).Errno
}

// Memory-pressure dispatch source ------------------------------------

// XNU dispatch-source memorystatus flags
// (DISPATCH_MEMORYPRESSURE_WARN/CRITICAL): the vocabulary an iOS binary's
// pressure handler speaks.
const (
	DispatchMemoryPressureWarn     = 0x2
	DispatchMemoryPressureCritical = 0x4
)

// dispatchSourceCycles is the user-space cost of one dispatch-source
// event delivery (libdispatch source fire + block invoke).
const dispatchSourceCycles = 1300

// DispatchSourceMemoryPressure models
// dispatch_source_create(DISPATCH_SOURCE_TYPE_MEMORYPRESSURE): handler
// receives XNU mask flags when the kernel's memorystatus ladder crosses a
// watermark. Delivery is synchronous in the context of the thread that
// crossed the watermark (the shrinker convention), so handlers should
// only shed caches. The registration dies with the process.
func (c *C) DispatchSourceMemoryPressure(handler func(flags int)) {
	t := c.T
	cpu := t.Kernel().Device().CPU
	t.Kernel().Memorystatus().OnPressure(t.Task(), func(level kernel.PressureLevel) {
		t.Kernel().Sim().Current().Advance(cpu.Cycles(dispatchSourceCycles))
		flags := DispatchMemoryPressureWarn
		if level == kernel.PressureCritical {
			flags = DispatchMemoryPressureCritical
		}
		handler(flags)
	})
}

// SetPersona switches the calling thread's persona via Cider's syscall.
func (c *C) SetPersona(to persona.Kind) persona.Kind {
	ret := c.T.Syscall(abi.SetPersonaTrap, &kernel.SyscallArgs{I: [6]uint64{uint64(to)}})
	return persona.Kind(ret.R0)
}

// Mach IPC -----------------------------------------------------------

// MachReplyPort allocates a receive right (mach_reply_port trap).
func (c *C) MachReplyPort() xnu.PortName {
	return xnu.PortName(c.T.Syscall(abi.MachReplyPort, nil).R0)
}

// MachSend sends msg to the port named dest.
func (c *C) MachSend(dest xnu.PortName, msg *xnu.Message, timeout time.Duration) xnu.KernReturn {
	abi.SetCarrier(c.T, &abi.MsgCarrier{Msg: msg, Timeout: timeout})
	ret := c.T.Syscall(abi.MachMsgTrap, &kernel.SyscallArgs{I: [6]uint64{uint64(dest), abi.MachSendMsg}})
	return xnu.KernReturn(ret.R0)
}

// MachReceive receives from the port named recv.
func (c *C) MachReceive(recv xnu.PortName, timeout time.Duration) (*xnu.Message, xnu.KernReturn) {
	carrier := &abi.MsgCarrier{Timeout: timeout}
	abi.SetCarrier(c.T, carrier)
	ret := c.T.Syscall(abi.MachMsgTrap, &kernel.SyscallArgs{I: [6]uint64{uint64(recv), abi.MachRcvMsg}})
	return carrier.Result, xnu.KernReturn(ret.R0)
}

// pthreads ------------------------------------------------------------

// PthreadMutexLock locks the user mutex at uaddr (fast path elided: the
// simulation always takes the psynch kernel path, a conservative model).
func (c *C) PthreadMutexLock(uaddr uint64) xnu.KernReturn {
	return xnu.KernReturn(c.T.Syscall(abi.XNUPsynchMutexWait, &kernel.SyscallArgs{I: [6]uint64{uaddr}}).R0)
}

// PthreadMutexUnlock unlocks the user mutex at uaddr.
func (c *C) PthreadMutexUnlock(uaddr uint64) xnu.KernReturn {
	return xnu.KernReturn(c.T.Syscall(abi.XNUPsynchMutexDrop, &kernel.SyscallArgs{I: [6]uint64{uaddr}}).R0)
}

// PthreadCondWait waits on the condvar at cvaddr with the mutex at muaddr.
func (c *C) PthreadCondWait(cvaddr, muaddr uint64, timeout time.Duration) (timedOut bool, kr xnu.KernReturn) {
	ret := c.T.Syscall(abi.XNUPsynchCVWait, &kernel.SyscallArgs{I: [6]uint64{cvaddr, muaddr, uint64(timeout)}})
	return ret.R1 == 1, xnu.KernReturn(ret.R0)
}

// PthreadCondSignal wakes one condvar waiter.
func (c *C) PthreadCondSignal(cvaddr uint64) xnu.KernReturn {
	return xnu.KernReturn(c.T.Syscall(abi.XNUPsynchCVSignal, &kernel.SyscallArgs{I: [6]uint64{cvaddr}}).R0)
}

// PthreadCondBroadcast wakes all condvar waiters.
func (c *C) PthreadCondBroadcast(cvaddr uint64) int {
	return int(c.T.Syscall(abi.XNUPsynchCVBroad, &kernel.SyscallArgs{I: [6]uint64{cvaddr}}).R0)
}

// SemaphoreWait waits on the Mach semaphore at uaddr.
func (c *C) SemaphoreWait(uaddr uint64) xnu.KernReturn {
	return xnu.KernReturn(c.T.Syscall(abi.SemaphoreWaitTrap, &kernel.SyscallArgs{I: [6]uint64{uaddr}}).R0)
}

// SemaphoreSignal signals the Mach semaphore at uaddr.
func (c *C) SemaphoreSignal(uaddr uint64) xnu.KernReturn {
	return xnu.KernReturn(c.T.Syscall(abi.SemaphoreSignalTrap, &kernel.SyscallArgs{I: [6]uint64{uaddr}}).R0)
}

// I/O Kit ------------------------------------------------------------

// IOServiceGetMatchingService looks a registry entry up by class name via
// the I/O Kit MIG trap; returns the first entry's id and the match count.
func (c *C) IOServiceGetMatchingService(class string) (uint64, int) {
	ret := c.T.Syscall(abi.IOServiceMatchingTrap, &kernel.SyscallArgs{Path: class})
	return ret.R0, int(ret.R1)
}

// IOConnectCallMethod invokes a matched driver method (selector + scalar
// arguments) on a registry entry.
func (c *C) IOConnectCallMethod(entryID uint64, selector uint32, args ...uint64) (uint64, uint64, kernel.Errno) {
	a := &kernel.SyscallArgs{}
	a.I[0] = entryID
	a.I[1] = uint64(selector)
	for i, v := range args {
		if i+2 >= len(a.I) {
			break
		}
		a.I[i+2] = v
	}
	ret := c.T.Syscall(abi.IOConnectCallTrap, a)
	return ret.R0, ret.R1, ret.Errno
}
