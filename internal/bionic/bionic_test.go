package bionic_test

import (
	"testing"

	"repro/internal/bionic"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/persona"
	"repro/internal/prog"
)

func TestLinkerLoadsTransitiveDeps(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	var mapped []string
	// libgui.so pulls libc.so; libGLESv2.so pulls libc.so + libhardware.so.
	if err := sys.InstallAndroidBinary("/system/bin/app", "linker-app",
		[]string{"libgui.so", "libGLESv2.so"}, func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			for _, r := range th.Task().Mem().Regions() {
				mapped = append(mapped, r.Name)
			}
			return 0
		}); err != nil {
		t.Fatal(err)
	}
	sys.Start("/system/bin/app", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"/system/lib/libgui.so":      false,
		"/system/lib/libGLESv2.so":   false,
		"/system/lib/libc.so":        false,
		"/system/lib/libhardware.so": false,
	}
	for _, name := range mapped {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for lib, seen := range want {
		if !seen {
			t.Errorf("%s not mapped by the linker", lib)
		}
	}
}

func TestLinkerFailsOnMissingSO(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	sys.InstallAndroidBinary("/system/bin/broken", "broken-app",
		[]string{"libmissing.so"}, func(c *prog.Call) uint64 {
			ran = true
			return 0
		})
	var status int
	sys.InstallStaticAndroidBinary("/system/bin/driver", "linker-driver", func(c *prog.Call) uint64 {
		lc := bionic.Sys(c.Ctx.(*kernel.Thread))
		pid := lc.Fork(func(cc *bionic.C) {
			cc.Exec("/system/bin/broken", nil)
			cc.Exit(126)
		})
		_, status, _ = lc.Wait(pid)
		return 0
	})
	sys.Start("/system/bin/driver", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("binary with missing .so must not run")
	}
	if status != 255 {
		t.Fatalf("status = %d, want 255 (CANNOT LINK EXECUTABLE)", status)
	}
}

func TestErrnoInAndroidTLS(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	var errno int
	var kind persona.Kind
	sys.InstallStaticAndroidBinary("/bin/e", "errno-app", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		lc := bionic.Sys(th)
		lc.Open("/missing")
		errno = lc.Errno()
		kind = th.Persona.Current()
		return 0
	})
	sys.Start("/bin/e", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if errno != int(kernel.ENOENT) {
		t.Fatalf("errno = %d", errno)
	}
	if kind != persona.Android {
		t.Fatalf("persona = %v", kind)
	}
}

func TestShPropagatesFailureStatus(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	var status int
	sys.InstallStaticAndroidBinary("/bin/d", "sh-driver", func(c *prog.Call) uint64 {
		lc := bionic.Sys(c.Ctx.(*kernel.Thread))
		pid := lc.Fork(func(cc *bionic.C) {
			cc.Exec("/system/bin/sh", []string{"-c", "/bin/nonexistent"})
			cc.Exit(126)
		})
		_, status, _ = lc.Wait(pid)
		return 0
	})
	sys.Start("/bin/d", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if status != 127 {
		t.Fatalf("status = %d, want 127 (command not found)", status)
	}
}
