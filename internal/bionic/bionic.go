// Package bionic is the simulated Android user-space runtime: Bionic libc
// syscall wrappers (Linux ABI numbers), the /system/bin/linker dynamic
// loader for ELF shared objects, and a minimal /system/bin/sh used by the
// lmbench fork+sh measurements.
package bionic

import (
	"repro/internal/elfx"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/persona"
	"repro/internal/prog"
)

// LinkerKey is the registry key of /system/bin/linker.
const LinkerKey = "bionic-linker"

// ShKey is the registry key of the shell program body.
const ShKey = "bionic-sh"

// C is a thread's Bionic libc handle.
type C struct {
	// T is the calling thread.
	T *kernel.Thread
}

// Sys wraps a thread in its Bionic interface.
func Sys(t *kernel.Thread) *C { return &C{T: t} }

// Errno returns the thread's errno from the Android TLS area (Linux
// numbering).
func (c *C) Errno() int { return c.T.Persona.TLS(persona.Android).Errno }

// Exit terminates the process.
func (c *C) Exit(status int) {
	c.T.Syscall(kernel.SysExit, &kernel.SyscallArgs{I: [6]uint64{uint64(status)}})
}

// Fork forks; the child runs child.
func (c *C) Fork(child func(cc *C)) int {
	ret := c.T.Syscall(kernel.SysFork, &kernel.SyscallArgs{ChildFn: func(ct *kernel.Thread) {
		child(Sys(ct))
	}})
	if ret.Errno != kernel.OK {
		return -1
	}
	return int(ret.R0)
}

// Exec replaces the image; returns only on failure.
func (c *C) Exec(path string, argv []string) kernel.Errno {
	return c.T.Syscall(kernel.SysExecve, &kernel.SyscallArgs{Path: path, Argv: argv}).Errno
}

// Wait reaps a child.
func (c *C) Wait(pid int) (int, int, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysWait4, &kernel.SyscallArgs{I: [6]uint64{uint64(pid)}})
	return int(int64(ret.R0)), int(ret.R1), ret.Errno
}

// Open opens a file.
func (c *C) Open(path string) (int, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysOpen, &kernel.SyscallArgs{Path: path})
	return int(int64(ret.R0)), ret.Errno
}

// OpenFlags opens a file with Linux open(2) flag bits.
func (c *C) OpenFlags(path string, flags int) (int, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysOpen, &kernel.SyscallArgs{Path: path, I: [6]uint64{0, uint64(flags)}})
	return int(int64(ret.R0)), ret.Errno
}

// OpenCreate opens a file, creating it if absent (open with O_CREAT).
func (c *C) OpenCreate(path string) (int, kernel.Errno) {
	return c.OpenFlags(path, kernel.OCreat)
}

// Dup duplicates a descriptor.
func (c *C) Dup(fd int) (int, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysDup, &kernel.SyscallArgs{I: [6]uint64{uint64(fd)}})
	return int(int64(ret.R0)), ret.Errno
}

// Creat creates a file.
func (c *C) Creat(path string) (int, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysCreat, &kernel.SyscallArgs{Path: path})
	return int(int64(ret.R0)), ret.Errno
}

// Close closes a descriptor.
func (c *C) Close(fd int) kernel.Errno {
	return c.T.Syscall(kernel.SysClose, &kernel.SyscallArgs{I: [6]uint64{uint64(fd)}}).Errno
}

// Read fills buf.
func (c *C) Read(fd int, buf []byte) (int, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysRead, &kernel.SyscallArgs{I: [6]uint64{uint64(fd)}, Buf: buf})
	return int(ret.R0), ret.Errno
}

// Write sends buf.
func (c *C) Write(fd int, buf []byte) (int, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysWrite, &kernel.SyscallArgs{I: [6]uint64{uint64(fd)}, Buf: buf})
	return int(ret.R0), ret.Errno
}

// Unlink removes a file.
func (c *C) Unlink(path string) kernel.Errno {
	return c.T.Syscall(kernel.SysUnlink, &kernel.SyscallArgs{Path: path}).Errno
}

// Pipe returns (readFD, writeFD).
func (c *C) Pipe() (int, int, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysPipe, nil)
	return int(ret.R0), int(ret.R1), ret.Errno
}

// Socketpair returns a connected AF_UNIX pair.
func (c *C) Socketpair() (int, int, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysSocketpair, nil)
	return int(ret.R0), int(ret.R1), ret.Errno
}

// Select waits for readiness.
func (c *C) Select(req *kernel.SelectRequest) (*kernel.SelectResult, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysSelect, &kernel.SyscallArgs{Select: req})
	return ret.Select, ret.Errno
}

// Ioctl issues a device control call.
func (c *C) Ioctl(fd int, req, arg uint64) (uint64, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysIoctl, &kernel.SyscallArgs{I: [6]uint64{uint64(fd), req, arg}})
	return ret.R0, ret.Errno
}

// GetPID returns the process id.
func (c *C) GetPID() int { return int(c.T.Syscall(kernel.SysGetpid, nil).R0) }

// GetPPID returns the parent pid.
func (c *C) GetPPID() int { return int(c.T.Syscall(kernel.SysGetppid, nil).R0) }

// Kill sends sig (Linux numbering).
func (c *C) Kill(pid, sig int) kernel.Errno {
	return c.T.Syscall(kernel.SysKill, &kernel.SyscallArgs{I: [6]uint64{uint64(pid), uint64(sig)}}).Errno
}

// Sigaction installs a handler (Linux numbering).
func (c *C) Sigaction(sig int, h kernel.SignalHandler) kernel.Errno {
	var act *kernel.SigAction
	if h != nil {
		act = &kernel.SigAction{Handler: h}
	}
	return c.T.Syscall(kernel.SysRtSigaction, &kernel.SyscallArgs{I: [6]uint64{uint64(sig)}, Act: act}).Errno
}

// Getrlimit reads a resource limit (Linux resource numbering — the
// kernel's canonical domain, so no translation happens on this path).
func (c *C) Getrlimit(res int) (cur, max uint64, errno kernel.Errno) {
	ret := c.T.Syscall(kernel.SysGetrlimit, &kernel.SyscallArgs{I: [6]uint64{uint64(res)}})
	return ret.R0, ret.R1, ret.Errno
}

// Setrlimit sets a resource limit (Linux resource numbering).
func (c *C) Setrlimit(res int, cur, max uint64) kernel.Errno {
	return c.T.Syscall(kernel.SysSetrlimit, &kernel.SyscallArgs{I: [6]uint64{uint64(res), cur, max}}).Errno
}

// Android memory-pressure levels, as delivered to ComponentCallbacks2
// onTrimMemory / the lmkd pressure socket. The Linux analogue of XNU's
// dispatch-source flags: same kernel ladder, persona-appropriate
// vocabulary.
const (
	TrimMemoryRunningModerate = 5  // warn watermark crossed
	TrimMemoryRunningCritical = 15 // critical watermark crossed
)

// trimDeliveryCycles is the user-space cost of one onTrimMemory
// callback delivery (binder thread wakeup + dispatch).
const trimDeliveryCycles = 1500

// OnTrimMemory registers a pressure listener for the calling task,
// modelling ActivityManager memory-trim callbacks backed by the same
// kernel memorystatus ladder that feeds iOS dispatch sources. The handler
// runs in the context of the thread that crossed the watermark and should
// only shed caches. The registration dies with the process.
func (c *C) OnTrimMemory(handler func(level int)) {
	t := c.T
	cpu := t.Kernel().Device().CPU
	t.Kernel().Memorystatus().OnPressure(t.Task(), func(lv kernel.PressureLevel) {
		t.Kernel().Sim().Current().Advance(cpu.Cycles(trimDeliveryCycles))
		level := TrimMemoryRunningModerate
		if lv == kernel.PressureCritical {
			level = TrimMemoryRunningCritical
		}
		handler(level)
	})
}

// SetPersona switches persona (Cider kernels only).
func (c *C) SetPersona(to persona.Kind) (persona.Kind, kernel.Errno) {
	ret := c.T.Syscall(kernel.SysSetPersona, &kernel.SyscallArgs{I: [6]uint64{uint64(to)}})
	return persona.Kind(ret.R0), ret.Errno
}

// RegisterLinker installs the user-space dynamic linker program: it loads
// each DT_NEEDED shared object from /system/lib, maps it, binds exports,
// and then calls the program entry. Far fewer libraries than iOS's dyld
// walk — Android binaries stay cheap to exec.
func RegisterLinker(reg *prog.Registry) error {
	return reg.Register(LinkerKey, func(c *prog.Call) uint64 {
		t := c.Ctx.(*kernel.Thread)
		tk := t.Task()
		k := t.Kernel()
		cpu := k.Device().CPU
		var needed []string
		if v, ok := tk.UserData("linker.needed"); ok {
			needed = v.([]string)
		}
		entryKeyV, ok := tk.UserData("linker.entry")
		if !ok {
			return 255
		}
		loaded := map[string]bool{}
		work := append([]string(nil), needed...)
		for len(work) > 0 {
			so := work[0]
			work = work[1:]
			if loaded[so] {
				continue
			}
			loaded[so] = true
			path := "/system/lib/" + so
			node, err := k.Root().Lookup(path)
			if err != nil {
				return 255 // CANNOT LINK EXECUTABLE
			}
			t.Charge(k.Device().Storage.OpLatency)
			t.Charge(cpu.Cycles(26000)) // parse + relocate
			f, perr := elfx.Parse(node.Data())
			if perr != nil {
				return 255
			}
			for _, seg := range f.Segments {
				size := uint64(seg.MemSize)
				if size < uint64(len(seg.Data)) {
					size = uint64(len(seg.Data))
				}
				if size == 0 {
					continue
				}
				t.Charge(k.Costs().SegmentMap)
				if _, merr := tk.Mem().Map(0, size, mem.ProtRead|mem.ProtExec, path, false); merr != nil {
					return 255
				}
			}
			t.Charge(cpu.Cycles(1040 * float64(len(f.ExportedSymbols()))))
			work = append(work, f.Needed...)
		}
		entry, ok := k.Registry().Lookup(entryKeyV.(string))
		if !ok {
			return 255
		}
		return entry(&prog.Call{Ctx: t, Args: c.Args})
	})
}

// RegisterSh installs the shell program body: `sh -c <command>` style —
// charge shell startup, then fork+exec the command and propagate its
// status. Used by the lmbench fork+sh measurement.
func RegisterSh(reg *prog.Registry) error {
	return reg.Register(ShKey, func(c *prog.Call) uint64 {
		t := c.Ctx.(*kernel.Thread)
		lc := Sys(t)
		argv := t.Task().Argv()
		// Shell initialization: environment setup, option parsing, profile
		// handling — the bulk of a real sh's startup latency.
		t.Charge(t.Kernel().Device().CPU.Cycles(2300000)) // ~1.8 ms @1.3GHz
		if len(argv) < 2 || argv[0] != "-c" {
			return 2
		}
		cmd := argv[1]
		pid := lc.Fork(func(cc *C) {
			cc.Exec(cmd, nil)
			cc.Exit(127)
		})
		if pid < 0 {
			return 2
		}
		_, status, _ := lc.Wait(pid)
		return uint64(status)
	})
}
