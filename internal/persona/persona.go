// Package persona implements Cider's central abstraction: kernel-managed,
// per-thread execution personas (Section 4). A persona selects two things
// for a thread — which kernel ABI its traps use, and which thread-local
// storage (TLS) layout its user-space code sees. Personas are tracked per
// thread, inherited across fork/clone, and switched at runtime by the
// set_persona syscall, which is what makes diplomatic functions possible
// (Section 4.3).
package persona

import "fmt"

// Kind identifies an execution persona.
type Kind int

const (
	// Android is the domestic persona: Linux kernel ABI, Bionic TLS layout.
	Android Kind = iota
	// IOS is the foreign persona: XNU kernel ABI, Darwin TLS layout.
	IOS
	numKinds
)

// NumKinds is the number of personas the kernel provisions per thread.
const NumKinds = int(numKinds)

func (k Kind) String() string {
	switch k {
	case Android:
		return "android"
	case IOS:
		return "ios"
	}
	return fmt.Sprintf("persona(%d)", int(k))
}

// TLS is one persona's thread-local storage area. The two personas place
// per-thread state (errno, thread id) at different offsets in real life;
// the simulation keeps separate areas per persona and lets the ABI layer
// convert values between them after a persona switch (arbitration step 8).
type TLS struct {
	// Errno is the thread's last error number, in the persona's own errno
	// numbering (Linux numbers for Android, BSD numbers for iOS).
	Errno int
	// ThreadID is the persona-visible thread identifier.
	ThreadID uint64
	// Slots holds library-defined thread-local values (pthread keys).
	Slots map[string]uint64
}

// NewTLS creates an empty TLS area for a thread.
func NewTLS(tid uint64) *TLS {
	return &TLS{ThreadID: tid, Slots: make(map[string]uint64)}
}

// State is the kernel-side persona bookkeeping for one thread: the current
// persona plus a TLS area pointer for every persona the thread may execute
// in. Maintaining all areas at once is what lets a single thread call back
// and forth between foreign and domestic code (Section 4.3, component 2).
type State struct {
	current Kind
	tls     [numKinds]*TLS
	// switches counts set_persona invocations (diagnostics/benchmarks).
	switches uint64
}

// NewState creates persona state with the given initial persona; TLS areas
// for every persona are provisioned eagerly, as the Cider kernel does.
func NewState(initial Kind, tid uint64) *State {
	s := &State{current: initial}
	for k := Kind(0); k < numKinds; k++ {
		s.tls[k] = NewTLS(tid)
	}
	return s
}

// Current returns the thread's active persona.
func (s *State) Current() Kind { return s.current }

// TLS returns the TLS area for a persona (not necessarily the active one).
func (s *State) TLS(k Kind) *TLS { return s.tls[k] }

// CurrentTLS returns the active persona's TLS area — what the hardware TLS
// register points at.
func (s *State) CurrentTLS() *TLS { return s.tls[s.current] }

// Switch changes the active persona, returning the previous one. This is
// the kernel half of the set_persona syscall: after it returns, kernel
// traps and TLS accesses use the new persona's tables.
func (s *State) Switch(to Kind) Kind {
	prev := s.current
	s.current = to
	s.switches++
	return prev
}

// Switches reports how many persona switches the thread has performed.
func (s *State) Switches() uint64 { return s.switches }

// Clone duplicates persona state for fork/clone: the child inherits the
// parent's current persona and a copy of every TLS area.
func (s *State) Clone(tid uint64) *State {
	c := &State{current: s.current, switches: 0}
	for k := Kind(0); k < numKinds; k++ {
		src := s.tls[k]
		dst := NewTLS(tid)
		dst.Errno = src.Errno
		for key, v := range src.Slots {
			dst.Slots[key] = v
		}
		c.tls[k] = dst
	}
	return c
}
