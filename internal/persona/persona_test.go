package persona

import "testing"

func TestNewStateProvisionsAllTLS(t *testing.T) {
	s := NewState(Android, 42)
	if s.Current() != Android {
		t.Fatalf("current = %v", s.Current())
	}
	for k := Kind(0); int(k) < NumKinds; k++ {
		if s.TLS(k) == nil {
			t.Fatalf("no TLS for %v", k)
		}
		if s.TLS(k).ThreadID != 42 {
			t.Fatalf("tid = %d", s.TLS(k).ThreadID)
		}
	}
}

func TestSwitchChangesABIAndTLS(t *testing.T) {
	s := NewState(Android, 1)
	s.TLS(Android).Errno = 11 // Linux EAGAIN
	s.TLS(IOS).Errno = 35     // BSD EAGAIN
	if s.CurrentTLS().Errno != 11 {
		t.Fatal("android TLS not current")
	}
	prev := s.Switch(IOS)
	if prev != Android || s.Current() != IOS {
		t.Fatalf("switch: prev=%v cur=%v", prev, s.Current())
	}
	// After the switch, TLS accesses use the new persona's area — each
	// persona keeps its own errno numbering.
	if s.CurrentTLS().Errno != 35 {
		t.Fatal("iOS TLS not current after switch")
	}
	if s.Switches() != 1 {
		t.Fatalf("switches = %d", s.Switches())
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewState(IOS, 1)
	s.TLS(IOS).Errno = 9
	s.TLS(IOS).Slots["key"] = 7
	c := s.Clone(2)
	if c.Current() != IOS {
		t.Fatal("child persona not inherited")
	}
	if c.TLS(IOS).Errno != 9 || c.TLS(IOS).Slots["key"] != 7 {
		t.Fatal("TLS values not copied")
	}
	if c.TLS(IOS).ThreadID != 2 {
		t.Fatalf("child tid = %d", c.TLS(IOS).ThreadID)
	}
	// Mutating the child must not affect the parent.
	c.TLS(IOS).Errno = 1
	c.TLS(IOS).Slots["key"] = 8
	if s.TLS(IOS).Errno != 9 || s.TLS(IOS).Slots["key"] != 7 {
		t.Fatal("clone shares TLS with parent")
	}
	if c.Switches() != 0 {
		t.Fatal("switch counter must reset in child")
	}
}

func TestKindString(t *testing.T) {
	if Android.String() != "android" || IOS.String() != "ios" {
		t.Fatal("names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should stringify")
	}
}
