// Package trace is the simulator's observability layer: a ktrace-style
// bounded ring buffer of events plus per-syscall virtual-latency
// histograms and named counters. It exists so the Fig. 5/6 overheads can
// be decomposed from a run — which persona paid how many cycles in which
// syscall — rather than asserted from the cost tables.
//
// The layer is always compiled in and zero-cost when disabled: producers
// (sim scheduler, kernel syscall dispatch, signal delivery, diplomat,
// dyld) hold a *Session pointer and skip all work on nil. A Session never
// charges virtual time; attaching one cannot change simulation results,
// and bench_test.go asserts exactly that.
package trace

import (
	"math/bits"
	"sort"
	"strconv"
	"time"

	"repro/internal/persona"
	"repro/internal/sim"
)

// Counter names used across the stack. Producers pass these to Count;
// exporters sort them lexically, so dotted prefixes group related
// counters in the output.
const (
	// CounterDiplomatCalls counts diplomatic function invocations
	// (the full 9-step persona arbitration in internal/diplomat).
	CounterDiplomatCalls = "diplomat.calls"
	// CounterDiplomatResolves counts domestic-symbol resolutions inside
	// diplomat calls (arbitration step 4).
	CounterDiplomatResolves = "diplomat.resolves"
	// CounterSignalPosted counts signals queued on a task.
	CounterSignalPosted = "signal.posted"
	// CounterSignalDelivered counts signals actually delivered to a
	// handler or default disposition.
	CounterSignalDelivered = "signal.delivered"
	// CounterSignalXNUDeliver counts deliveries that crossed the
	// Linux-to-XNU signal-number translation (iOS persona receivers).
	CounterSignalXNUDeliver = "signal.xnu_deliver_translated"
	// CounterSignalXNUSend counts send-side XNU-to-Linux signal-number
	// translations (XNU kill/sigaction entering the shim).
	CounterSignalXNUSend = "signal.xnu_send_translated"
	// CounterDyldBinds counts dyld symbol bindings performed at load.
	CounterDyldBinds = "dyld.binds"
	// CounterDyldImages counts Mach-O images initialized by dyld.
	CounterDyldImages = "dyld.images"
	// CounterDyldCacheAttach counts shared-cache attachments.
	CounterDyldCacheAttach = "dyld.cache_attach"
	// CounterDyldLoadErrors counts dylib load failures (missing or
	// unreadable libraries — the dyld face of fault injection).
	CounterDyldLoadErrors = "dyld.load_errors"
	// CounterFaultInjected counts fault-layer injections of any kind;
	// per-op counts ride under "fault.<op>" (e.g. "fault.syscall").
	CounterFaultInjected = "fault.injected"
	// CounterExcRaised counts Mach exception messages raised for fatal
	// signals on iOS-persona threads (EXC_BAD_ACCESS and friends).
	CounterExcRaised = "exc.raised"
	// CounterExcResumed counts exceptions whose catcher replied
	// EXC_HANDLED, resuming the faulting thread instead of killing it.
	CounterExcResumed = "exc.resumed"
	// CounterCrashReports counts crash reports written by crashreporterd
	// under /var/log/crashes.
	CounterCrashReports = "crash.reports"
	// CounterLaunchdCrashes counts abnormal child exits reaped by
	// launchd's supervision loop.
	CounterLaunchdCrashes = "launchd.crashes"
	// CounterLaunchdRespawns counts services respawned by launchd.
	CounterLaunchdRespawns = "launchd.respawns"
	// CounterLaunchdThrottled counts services launchd gave up on after
	// crashing too often inside the flap window.
	CounterLaunchdThrottled = "launchd.throttled"
	// CounterSyslogDropped counts lines evicted from the bounded syslog
	// ring.
	CounterSyslogDropped = "syslog.dropped"
	// CounterJetsamKills counts memorystatus victim kills; per-band
	// counts ride under "jetsam.kills.<band>" (e.g. "jetsam.kills.idle").
	CounterJetsamKills = "jetsam.kills"
	// CounterPressureNotify counts memory-pressure level notifications
	// delivered to registered pressure handlers.
	CounterPressureNotify = "pressure.notify"
	// CounterRlimitHits counts resource-limit enforcement events: an
	// RLIMIT_NOFILE rejection at fd allocation, or an RLIMIT_AS /
	// RLIMIT_DATA rejection at map time.
	CounterRlimitHits = "rlimit.hits"
	// CounterRlimitXlate counts XNU-to-Linux rlimit resource-number
	// translations (iOS-persona getrlimit/setrlimit entering the shim).
	CounterRlimitXlate = "rlimit.xnu_translated"
	// CounterLaunchdJetsam counts supervised children reaped by launchd
	// whose deaths were memorystatus kills, not crashes: jetsam is the
	// system shedding load, so it never counts against the flap window
	// the way a crash loop does.
	CounterLaunchdJetsam = "launchd.jetsam"
)

// EventKind classifies ring-buffer entries.
type EventKind int

const (
	// EvSched is a scheduler event forwarded from sim (spawn/block/…).
	EvSched EventKind = iota
	// EvSyscallEnter marks a thread entering syscall dispatch.
	EvSyscallEnter
	// EvSyscallExit marks syscall completion; Errno holds the result.
	EvSyscallExit
	// EvSignal marks a signal delivery.
	EvSignal
	// EvFault marks a fault-layer injection; Name holds the injection key,
	// Detail the op class, Errno the injected error.
	EvFault
	// EvExc marks a Mach exception raise; Sysno carries the originating
	// canonical signal, Errno the EXC_* code, Detail the delivery outcome.
	EvExc
	// EvRespawn marks a launchd supervision decision; Name holds the
	// service path, Detail the action ("respawn", "throttled", ...).
	EvRespawn
)

func (k EventKind) String() string {
	switch k {
	case EvSched:
		return "sched"
	case EvSyscallEnter:
		return "sysenter"
	case EvSyscallExit:
		return "sysexit"
	case EvSignal:
		return "signal"
	case EvFault:
		return "fault"
	case EvExc:
		return "exc"
	case EvRespawn:
		return "respawn"
	}
	return "event?"
}

// Event is one ring-buffer record. Fields beyond Seq/At/Kind/Proc are
// populated per kind: Sched for EvSched; Persona/Sysno/Name/Errno for
// syscall records; Sysno carries the signal number for EvSignal.
type Event struct {
	Seq     uint64         `json:"seq"`
	At      time.Duration  `json:"at_ns"`
	Kind    EventKind      `json:"kind"`
	Proc    string         `json:"proc"`
	ProcID  int            `json:"proc_id"`
	Sched   sim.SchedEvent `json:"sched,omitempty"`
	Persona persona.Kind   `json:"persona,omitempty"`
	Sysno   int            `json:"sysno,omitempty"`
	Name    string         `json:"name,omitempty"`
	Errno   int            `json:"errno,omitempty"`
	Detail  string         `json:"detail,omitempty"`
}

// Short renders the event as one compact ktrace-style line without the
// timestamp or sequence number — the shape-only view differential tools
// compare across configurations whose virtual clocks legitimately differ.
func (e Event) Short() string {
	var b []byte
	b = append(b, e.Kind.String()...)
	b = append(b, ' ')
	b = append(b, e.Proc...)
	b = append(b, '[')
	b = strconv.AppendInt(b, int64(e.ProcID), 10)
	b = append(b, ']')
	switch e.Kind {
	case EvSched:
		b = append(b, ' ')
		b = append(b, e.Sched.String()...)
	case EvSyscallEnter, EvSyscallExit:
		b = append(b, ' ')
		if e.Name != "" {
			b = append(b, e.Name...)
		} else {
			b = strconv.AppendInt(b, int64(e.Sysno), 10)
		}
		if e.Kind == EvSyscallExit {
			b = append(b, " errno="...)
			b = strconv.AppendInt(b, int64(e.Errno), 10)
		}
	case EvSignal, EvExc:
		b = append(b, " sig="...)
		b = strconv.AppendInt(b, int64(e.Sysno), 10)
	case EvFault, EvRespawn:
		b = append(b, ' ')
		b = append(b, e.Name...)
	}
	if e.Detail != "" {
		b = append(b, " ("...)
		b = append(b, e.Detail...)
		b = append(b, ')')
	}
	return string(b)
}

// HistBuckets is the number of log2 latency buckets per histogram;
// bucket i counts latencies in [2^(i-1), 2^i) ns, bucket 0 counts 0–1ns,
// and the last bucket absorbs everything larger.
const HistBuckets = 40

// Histogram accumulates virtual latencies in log2 buckets.
type Histogram struct {
	Count   uint64              `json:"count"`
	Sum     time.Duration       `json:"sum_ns"`
	Min     time.Duration       `json:"min_ns"`
	Max     time.Duration       `json:"max_ns"`
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// Observe adds one latency sample.
//
//hot:noalloc
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.Count == 0 || d < h.Min {
		h.Min = d
	}
	if d > h.Max {
		h.Max = d
	}
	h.Count++
	h.Sum += d
	b := bits.Len64(uint64(d))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.Buckets[b]++
}

// Mean returns the average latency, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// SyscallKey identifies one histogram: the paper's overheads differ by
// which persona's table served the trap, so (persona, syscall) is the
// unit of attribution.
type SyscallKey struct {
	Persona persona.Kind `json:"persona"`
	Sysno   int          `json:"sysno"`
}

// SyscallStats is the per-(persona, syscall) accumulator.
type SyscallStats struct {
	Key    SyscallKey `json:"key"`
	Name   string     `json:"name"`
	Hist   Histogram  `json:"hist"`
	Errors uint64     `json:"errors"`
}

// DefaultRingSize bounds the event ring unless overridden.
const DefaultRingSize = 4096

// Session is one configuration's trace state. It implements sim.Sink and
// is fed by the kernel's dispatch/signal paths and by library-layer
// counters. All methods are single-threaded by construction: the sim
// runs exactly one Proc at a time.
type Session struct {
	// Label names the traced configuration (e.g. "cider-ios").
	Label string

	ring    []Event
	next    int
	full    bool
	seq     uint64
	sched   [sim.NumSchedEvents]uint64
	sys     map[SyscallKey]*SyscallStats
	counter map[string]uint64
}

// NewSession creates an enabled session with the default ring size.
func NewSession(label string) *Session {
	return &Session{
		Label:   label,
		ring:    make([]Event, 0, DefaultRingSize),
		sys:     make(map[SyscallKey]*SyscallStats),
		counter: make(map[string]uint64),
	}
}

// SetRingCapacity resizes the (empty or non-empty) event ring; existing
// events are dropped. n <= 0 disables event recording but keeps
// histograms and counters.
func (s *Session) SetRingCapacity(n int) {
	if n < 0 {
		n = 0
	}
	s.ring = make([]Event, 0, n)
	s.next = 0
	s.full = false
}

// Enabled reports whether the session collects anything. A nil Session
// is the disabled state producers test for.
func (s *Session) Enabled() bool { return s != nil }

//
//hot:noalloc
func (s *Session) record(e Event) {
	s.seq++
	e.Seq = s.seq
	if cap(s.ring) == 0 {
		return
	}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, e)
		return
	}
	// Ring is full: overwrite oldest.
	s.full = true
	s.ring[s.next] = e
	s.next++
	if s.next == cap(s.ring) {
		s.next = 0
	}
}

// SchedEvent implements sim.Sink.
//
//hot:noalloc
func (s *Session) SchedEvent(ev sim.SchedEvent, proc string, id int, at time.Duration, detail string) {
	if ev >= 0 && ev < sim.NumSchedEvents {
		s.sched[ev]++
	}
	s.record(Event{At: at, Kind: EvSched, Proc: proc, ProcID: id, Sched: ev, Detail: detail})
}

// SyscallEnter records a thread entering syscall dispatch.
//
//hot:noalloc
func (s *Session) SyscallEnter(proc string, id int, p persona.Kind, num int, name string, at time.Duration) {
	s.record(Event{At: at, Kind: EvSyscallEnter, Proc: proc, ProcID: id, Persona: p, Sysno: num, Name: name})
}

// SyscallExit records syscall completion and feeds the (persona, syscall)
// latency histogram with end-start. errno is the raw errno value (0 = OK).
//
//hot:noalloc
func (s *Session) SyscallExit(proc string, id int, p persona.Kind, num int, name string, errno int, start, end time.Duration) {
	key := SyscallKey{Persona: p, Sysno: num}
	st := s.sys[key]
	if st == nil {
		//lint:allow hotalloc: first sight of a (persona, syscall) key — one accumulator per key per session
		st = &SyscallStats{Key: key, Name: name}
		s.sys[key] = st
	}
	st.Hist.Observe(end - start)
	if errno != 0 {
		st.Errors++
	}
	s.record(Event{At: end, Kind: EvSyscallExit, Proc: proc, ProcID: id, Persona: p, Sysno: num, Name: name, Errno: errno})
}

// Signal records a signal delivery event (Sysno carries the signal
// number as seen by the receiving persona).
func (s *Session) Signal(proc string, id int, p persona.Kind, sig int, detail string, at time.Duration) {
	s.record(Event{At: at, Kind: EvSignal, Proc: proc, ProcID: id, Persona: p, Sysno: sig, Detail: detail})
}

// Fault records a fault-layer injection: op is the injection-point class
// ("syscall", "park", "map", "vfs", "mach_send", "mach_recv"), key the
// injection key, errno the injected error (0 for pure latency spikes).
func (s *Session) Fault(proc string, id int, op, key string, errno int, at time.Duration) {
	s.counter[CounterFaultInjected]++
	s.counter["fault."+op]++
	s.record(Event{At: at, Kind: EvFault, Proc: proc, ProcID: id, Name: key, Errno: errno, Detail: op})
}

// Exc records a Mach exception raise for a fatal signal: sig is the
// canonical signal number, code the EXC_* class, detail the delivery
// outcome ("resumed", "fatal", "no-port", ...).
func (s *Session) Exc(proc string, id int, p persona.Kind, sig, code int, detail string, at time.Duration) {
	s.counter[CounterExcRaised]++
	s.record(Event{At: at, Kind: EvExc, Proc: proc, ProcID: id, Persona: p, Sysno: sig, Errno: code, Detail: detail})
}

// Respawn records a launchd supervision decision for a service. name is
// the service executable path, detail the action taken.
func (s *Session) Respawn(proc string, id int, name, detail string, at time.Duration) {
	s.record(Event{At: at, Kind: EvRespawn, Proc: proc, ProcID: id, Name: name, Detail: detail})
}

// Count adds n to a named counter.
//
//hot:noalloc
func (s *Session) Count(name string, n uint64) { s.counter[name] += n }

// Counter reads a named counter (0 if never counted).
func (s *Session) Counter(name string) uint64 { return s.counter[name] }

// Counters returns all named counters sorted by name — the deterministic
// export the soak harness digests.
func (s *Session) Counters() []NamedCounter {
	out := make([]NamedCounter, 0, len(s.counter))
	for name, v := range s.counter {
		out = append(out, NamedCounter{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedCounter is one Counters() entry.
type NamedCounter struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// SchedCount reads one scheduler-event counter.
func (s *Session) SchedCount(ev sim.SchedEvent) uint64 {
	if ev < 0 || ev >= sim.NumSchedEvents {
		return 0
	}
	return s.sched[ev]
}

// Dropped reports how many events were evicted from the ring.
func (s *Session) Dropped() uint64 {
	if !s.full {
		return 0
	}
	return s.seq - uint64(cap(s.ring))
}

// Events returns the retained events oldest-first.
func (s *Session) Events() []Event {
	if !s.full {
		out := make([]Event, len(s.ring))
		copy(out, s.ring)
		return out
	}
	out := make([]Event, 0, cap(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// SyscallStat returns the accumulator for one (persona, syscall), or nil.
func (s *Session) SyscallStat(p persona.Kind, num int) *SyscallStats {
	return s.sys[SyscallKey{Persona: p, Sysno: num}]
}
