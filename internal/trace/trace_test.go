package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/persona"
	"repro/internal/sim"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// bits.Len64 bucketing: 0 → bucket 0, 1 → 1, 2..3 → 2, 4..7 → 3, ...
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	for _, c := range cases {
		if h.Buckets[c.bucket] == 0 {
			t.Errorf("observe(%d): bucket %d empty", c.d, c.bucket)
		}
	}
	if h.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count, len(cases))
	}
	if h.Min != 0 || h.Max != 1024 {
		t.Fatalf("min/max = %v/%v, want 0/1024", h.Min, h.Max)
	}
	// Negative samples clamp to 0 rather than corrupting Sum.
	h.Observe(-5)
	if h.Min != 0 || h.Buckets[0] != 2 {
		t.Fatal("negative sample must clamp to bucket 0")
	}
	// Oversized samples land in the last bucket.
	h.Observe(time.Duration(1) << 62)
	if h.Buckets[HistBuckets-1] != 1 {
		t.Fatal("huge sample must land in the last bucket")
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean must be 0")
	}
	h.Observe(100)
	h.Observe(300)
	if h.Mean() != 200 {
		t.Fatalf("mean = %v, want 200", h.Mean())
	}
}

func TestRingWraparound(t *testing.T) {
	s := NewSession("ring")
	s.SetRingCapacity(4)
	for i := 0; i < 10; i++ {
		s.SchedEvent(sim.SchedSpawn, "p", i, time.Duration(i), "")
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest-first: seq 7,8,9,10 (seq starts at 1).
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if s.SchedCount(sim.SchedSpawn) != 10 {
		t.Fatal("sched counter must survive ring eviction")
	}
}

func TestRingDisabledKeepsStats(t *testing.T) {
	s := NewSession("noring")
	s.SetRingCapacity(0)
	s.SyscallExit("p", 1, persona.Android, 64, "getppid", 0, 0, 500)
	if len(s.Events()) != 0 {
		t.Fatal("ring disabled but events retained")
	}
	st := s.SyscallStat(persona.Android, 64)
	if st == nil || st.Hist.Count != 1 || st.Hist.Sum != 500 {
		t.Fatalf("histogram lost with ring disabled: %+v", st)
	}
}

func TestSyscallStatsAndErrors(t *testing.T) {
	s := NewSession("sys")
	s.SyscallExit("p", 1, persona.IOS, 39, "getppid", 0, 100, 300)
	s.SyscallExit("p", 1, persona.IOS, 39, "getppid", 2, 300, 700)
	s.SyscallExit("p", 1, persona.Android, 64, "getppid", 0, 0, 150)
	st := s.SyscallStat(persona.IOS, 39)
	if st == nil {
		t.Fatal("no iOS getppid accumulator")
	}
	if st.Hist.Count != 2 || st.Hist.Sum != 600 || st.Errors != 1 {
		t.Fatalf("iOS getppid: count=%d sum=%v errors=%d", st.Hist.Count, st.Hist.Sum, st.Errors)
	}
	// Same syscall number under a different persona is a distinct key.
	if s.SyscallStat(persona.Android, 39) != nil {
		t.Fatal("persona must partition syscall stats")
	}
}

func TestSortedExportDeterministic(t *testing.T) {
	s := NewSession("sorted")
	s.SyscallExit("p", 1, persona.IOS, 4, "write", 0, 0, 1)
	s.SyscallExit("p", 1, persona.Android, 64, "getppid", 0, 0, 1)
	s.SyscallExit("p", 1, persona.Android, 3, "read", 0, 0, 1)
	s.SyscallExit("p", 1, persona.IOS, 3, "read", 0, 0, 1)
	sum := s.Summarize(false)
	wantOrder := []SyscallKey{
		{persona.Android, 3}, {persona.Android, 64},
		{persona.IOS, 3}, {persona.IOS, 4},
	}
	if len(sum.Syscalls) != len(wantOrder) {
		t.Fatalf("exported %d syscalls, want %d", len(sum.Syscalls), len(wantOrder))
	}
	for i, st := range sum.Syscalls {
		if st.Key != wantOrder[i] {
			t.Fatalf("export[%d] = %+v, want %+v", i, st.Key, wantOrder[i])
		}
	}
}

func TestCounters(t *testing.T) {
	s := NewSession("ctr")
	s.Count(CounterDiplomatCalls, 2)
	s.Count(CounterDiplomatCalls, 3)
	if s.Counter(CounterDiplomatCalls) != 5 {
		t.Fatalf("counter = %d, want 5", s.Counter(CounterDiplomatCalls))
	}
	if s.Counter("never.touched") != 0 {
		t.Fatal("unknown counter must read 0")
	}
}

func TestNilSessionDisabled(t *testing.T) {
	var s *Session
	if s.Enabled() {
		t.Fatal("nil session must report disabled")
	}
	if NewSession("x").Enabled() != true {
		t.Fatal("fresh session must report enabled")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := NewSession("json")
	s.SchedEvent(sim.SchedSpawn, "p", 1, 0, "")
	s.SyscallExit("p", 1, persona.Android, 64, "getppid", 0, 0, 500)
	s.Count(CounterDyldBinds, 7)
	out, err := s.JSON(true)
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if sum.Label != "json" || sum.Counters[CounterDyldBinds] != 7 || len(sum.Events) != 2 {
		t.Fatalf("round-tripped summary wrong: %+v", sum)
	}
}

func TestTextIncludesSections(t *testing.T) {
	s := NewSession("txt")
	s.SchedEvent(sim.SchedSpawn, "p", 1, 0, "")
	s.SyscallExit("p", 1, persona.IOS, 39, "getppid", 0, 0, 574)
	s.Count(CounterSignalDelivered, 1)
	out := s.Text()
	for _, want := range []string{`trace session "txt"`, "spawn=1", "signal.delivered", "getppid", "ios"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Text() missing %q:\n%s", want, out)
		}
	}
}

// TestEventShort pins the compact shape-only rendering differential
// tools compare: no timestamp, no sequence number, per-kind payload.
func TestEventShort(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{
			Event{Seq: 9, At: 5 * time.Millisecond, Kind: EvSyscallExit,
				Proc: "pid1:/bin/app", ProcID: 1, Persona: persona.IOS, Sysno: 41, Name: "dup", Errno: 9},
			"sysexit pid1:/bin/app[1] dup errno=9",
		},
		{
			Event{Kind: EvSyscallEnter, Proc: "p", ProcID: 2, Sysno: 63},
			"sysenter p[2] 63",
		},
		{
			Event{Kind: EvSignal, Proc: "p", ProcID: 1, Sysno: 20, Detail: "handler"},
			"signal p[1] sig=20 (handler)",
		},
		{
			Event{Kind: EvFault, Proc: "p", ProcID: 1, Name: "android/read", Detail: "syscall"},
			"fault p[1] android/read (syscall)",
		},
		{
			Event{Kind: EvSched, Proc: "p", ProcID: 3, Sched: sim.SchedSpawn},
			"sched p[3] " + sim.SchedSpawn.String(),
		},
	}
	for _, c := range cases {
		if got := c.ev.Short(); got != c.want {
			t.Errorf("Short() = %q, want %q", got, c.want)
		}
	}
}
