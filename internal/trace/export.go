package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// Summary is the JSON export shape.
type Summary struct {
	Label    string            `json:"label"`
	Sched    map[string]uint64 `json:"sched"`
	Counters map[string]uint64 `json:"counters"`
	Syscalls []*SyscallStats   `json:"syscalls"`
	Dropped  uint64            `json:"events_dropped"`
	Events   []Event           `json:"events,omitempty"`
}

// Summarize assembles the exportable view. withEvents controls whether
// the (potentially large) retained event ring is included.
func (s *Session) Summarize(withEvents bool) *Summary {
	sum := &Summary{
		Label:    s.Label,
		Sched:    make(map[string]uint64),
		Counters: make(map[string]uint64),
		Dropped:  s.Dropped(),
	}
	for ev := sim.SchedEvent(0); ev < sim.NumSchedEvents; ev++ {
		sum.Sched[ev.String()] = s.sched[ev]
	}
	for name, n := range s.counter {
		sum.Counters[name] = n
	}
	sum.Syscalls = s.sortedSyscalls()
	if withEvents {
		sum.Events = s.Events()
	}
	return sum
}

// sortedSyscalls orders accumulators by (persona, sysno) so exports are
// deterministic run to run.
func (s *Session) sortedSyscalls() []*SyscallStats {
	out := make([]*SyscallStats, 0, len(s.sys))
	for _, st := range s.sys {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Persona != b.Persona {
			return a.Persona < b.Persona
		}
		return a.Sysno < b.Sysno
	})
	return out
}

// JSON renders the session as indented JSON.
func (s *Session) JSON(withEvents bool) ([]byte, error) {
	return json.MarshalIndent(s.Summarize(withEvents), "", "  ")
}

// Text renders a human-readable summary: scheduler counts, counters,
// then one line per (persona, syscall) histogram.
func (s *Session) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace session %q\n", s.Label)
	b.WriteString("scheduler:")
	for ev := sim.SchedEvent(0); ev < sim.NumSchedEvents; ev++ {
		fmt.Fprintf(&b, " %s=%d", ev, s.sched[ev])
	}
	b.WriteString("\n")
	if len(s.counter) > 0 {
		b.WriteString("counters:\n")
		names := make([]string, 0, len(s.counter))
		for name := range s.counter {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  %-32s %d\n", name, s.counter[name])
		}
	}
	sys := s.sortedSyscalls()
	if len(sys) > 0 {
		fmt.Fprintf(&b, "syscalls (%d distinct):\n", len(sys))
		fmt.Fprintf(&b, "  %-8s %-20s %8s %12s %12s %12s %8s\n",
			"persona", "syscall", "count", "mean", "min", "max", "errors")
		for _, st := range sys {
			name := st.Name
			if name == "" {
				name = fmt.Sprintf("sys_%d", st.Key.Sysno)
			}
			fmt.Fprintf(&b, "  %-8s %-20s %8d %12s %12s %12s %8d\n",
				st.Key.Persona, name, st.Hist.Count,
				fmtNS(st.Hist.Mean()), fmtNS(st.Hist.Min), fmtNS(st.Hist.Max), st.Errors)
		}
	}
	if s.seq > 0 {
		fmt.Fprintf(&b, "events: %d recorded, %d retained, %d dropped\n",
			s.seq, len(s.ring), s.Dropped())
	}
	return b.String()
}

// EventsText renders the retained event ring, one line per event.
func (s *Session) EventsText() string {
	var b strings.Builder
	for _, e := range s.Events() {
		fmt.Fprintf(&b, "[%6d] %12s %-8s %s(%d)", e.Seq, fmtNS(e.At), e.Kind, e.Proc, e.ProcID)
		switch e.Kind {
		case EvSched:
			fmt.Fprintf(&b, " %s", e.Sched)
		case EvSyscallEnter, EvSyscallExit:
			name := e.Name
			if name == "" {
				name = fmt.Sprintf("sys_%d", e.Sysno)
			}
			fmt.Fprintf(&b, " %s/%s", e.Persona, name)
			if e.Kind == EvSyscallExit {
				fmt.Fprintf(&b, " errno=%d", e.Errno)
			}
		case EvSignal:
			fmt.Fprintf(&b, " sig=%d", e.Sysno)
		case EvExc:
			fmt.Fprintf(&b, " sig=%d exc=%d", e.Sysno, e.Errno)
		case EvRespawn:
			fmt.Fprintf(&b, " %s", e.Name)
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, " (%s)", e.Detail)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func fmtNS(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}
