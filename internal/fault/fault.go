// Package fault implements deterministic fault injection for the simulator.
//
// A fault Plan is a seeded list of Rules keyed to injection points (syscall
// dispatch, park/sleep interruption, memory mapping, VFS operations, Mach
// message send/receive). All decisions are pure functions of (seed, rule
// index, key, per-key hit counter) — there is no host randomness and no host
// clock, so the wallclock lint invariant holds and two runs of the same
// (seed, plan) against the same workload make bit-identical decisions.
//
// The package deliberately imports nothing but the standard library's time
// (for virtual-time durations): the kernel, xnu, core, and soak layers wire
// injectors in; fault itself knows nothing about them.
package fault

import (
	"fmt"
	"time"
)

// Op identifies an injection point class.
type Op int

const (
	// OpSyscall injects an errno at syscall dispatch. Keys are
	// "persona/name" (e.g. "ios/getpid", "android/read").
	OpSyscall Op = iota
	// OpPark interrupts a blocking Park or Sleep before it blocks. Keys are
	// the park reason ("waitq:pipe", "waitq:mach_snd", "select", ...);
	// timed waits and plain sleeps appear as "sleep".
	OpPark
	// OpMemMap fails an address-space mapping. Keys are the mapping name
	// ("/iOS/app/bin __TEXT", "[stack]", dylib paths, ...).
	OpMemMap
	// OpVFS fails or delays a filesystem operation. Keys are "op:path"
	// ("lookup:/iOS/usr/lib/libSystem.dylib", "create:/tmp/f", ...).
	OpVFS
	// OpMachSend interrupts or pressures a Mach message send. Key "send".
	OpMachSend
	// OpMachRecv interrupts a Mach message receive. Key "recv".
	OpMachRecv
	// OpCrash delivers a fatal signal to a task at syscall dispatch. Keys
	// are the task's executable path ("/usr/sbin/notifyd", "/bin/lmbench",
	// ...), so a rule targets a service regardless of pid and its hit
	// counters accumulate across respawned incarnations. Rule.Errno names
	// the canonical fatal signal (SEGV/BUS/ILL/FPE/ABRT); 0 means SIGSEGV.
	OpCrash
	// OpMemPressure injects a synthetic memory-pressure episode at a
	// footprint-charge point (a zero-fill materialization or new mapping).
	// Keys are the charging task's executable path, like OpCrash, so a
	// rule storms a specific workload and its hit counters survive
	// respawns. Rule.Errno picks the forced level: 2 drives the critical
	// ladder rung (one jetsam kill), anything else the warn rung (pressure
	// notifications). The episode runs the real memorystatus machinery —
	// only the watermark comparison is overridden — so kills and notifies
	// under injection are bit-identical to organic ones.
	OpMemPressure

	numOps
)

func (o Op) String() string {
	switch o {
	case OpSyscall:
		return "syscall"
	case OpPark:
		return "park"
	case OpMemMap:
		return "map"
	case OpVFS:
		return "vfs"
	case OpMachSend:
		return "mach_send"
	case OpMachRecv:
		return "mach_recv"
	case OpCrash:
		return "crash"
	case OpMemPressure:
		return "mem_pressure"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Rule is one fault source in a Plan. A rule is eligible for a Check when
// the op matches, the key matches Match, and virtual time is inside
// [After, Until). Among eligible hits it fires on the Nth hit (if Nth > 0),
// else pseudo-randomly one-in-Every (if Every > 1), else on every hit —
// subject to the Count cap.
// Rules carry JSON tags so a Plan embeds verbatim in replay artifacts
// (internal/replay); Delay/After/Until serialize as nanosecond integers.
type Rule struct {
	// Op selects the injection point class.
	Op Op `json:"op"`
	// Match filters keys: "" matches any key, a trailing '*' matches by
	// prefix, a leading '*' matches by suffix ("*/read" hits every
	// persona's read), anything else matches exactly.
	Match string `json:"match,omitempty"`
	// Errno is the injected error. Its interpretation is per-op: syscall
	// rules use kernel errno numbers, VFS rules ENOSPC vs anything-else=EIO,
	// Mach rules any non-zero means "interrupted". Zero with a Delay makes
	// a pure latency-spike rule.
	Errno int `json:"errno,omitempty"`
	// Delay is virtual time charged to the victim when the rule fires
	// (latency spike). Ignored for OpPark.
	Delay time.Duration `json:"delay,omitempty"`
	// QLimit, for OpMachSend, overrides the destination port's queue limit
	// for that send (queue-overflow pressure). 0 leaves the limit alone.
	QLimit int `json:"qlimit,omitempty"`
	// Every fires the rule pseudo-randomly on roughly one in Every eligible
	// hits (seeded, deterministic). 0 or 1 fires on every eligible hit.
	Every uint64 `json:"every,omitempty"`
	// Nth, when non-zero, fires exactly on the Nth eligible hit of each key
	// (1-based) and overrides Every. This is what targeted regression tests
	// use to fail "the i-th Map call".
	Nth uint64 `json:"nth,omitempty"`
	// Count caps the total number of times this rule fires. 0 is unlimited.
	Count uint64 `json:"count,omitempty"`
	// After makes the rule eligible only at virtual times >= After.
	After time.Duration `json:"after,omitempty"`
	// Until, when non-zero, makes the rule ineligible at times >= Until.
	Until time.Duration `json:"until,omitempty"`
}

//
//hot:noalloc
func (r Rule) match(key string) bool {
	if r.Match == "" {
		return true
	}
	if n := len(r.Match); r.Match[n-1] == '*' {
		pre := r.Match[:n-1]
		return len(key) >= len(pre) && key[:len(pre)] == pre
	}
	if r.Match[0] == '*' {
		suf := r.Match[1:]
		return len(key) >= len(suf) && key[len(key)-len(suf):] == suf
	}
	return r.Match == key
}

// Plan is a named, seeded fault schedule. A Plan is plain data with
// stable JSON form: replay artifacts embed the exact plan a failing run
// used, and decoding it back yields a bit-identical injector.
type Plan struct {
	// Name labels the schedule in soak reports and traces.
	Name string `json:"name"`
	// Seed drives every pseudo-random (Every-based) decision.
	Seed uint64 `json:"seed"`
	// Rules are consulted in order; the first rule that fires wins.
	Rules []Rule `json:"rules,omitempty"`
}

// Outcome is what a fired rule injects.
type Outcome struct {
	// Errno is the injected error number (see Rule.Errno).
	Errno int
	// Delay is virtual time the injection site must charge the victim.
	Delay time.Duration
	// QLimit is the Mach send queue-limit override (0 = none).
	QLimit int
	// Rule is the index of the plan rule that fired.
	Rule int
}

// Injector evaluates a Plan. It is not safe for concurrent use; host-parallel
// harnesses give each simulated system its own Injector (the per-key hit
// counters are part of the deterministic state).
type Injector struct {
	plan Plan
	// byOp indexes plan rule positions per op, in plan order, so Check
	// walks only the rules that could ever match the operation — the
	// common no-rules-for-this-op case is a nil-slice length test.
	byOp  [numOps][]int
	hits  []map[string]uint64 // per-rule eligible-hit counters, keyed by key
	fired []uint64            // per-rule fire counts
	total uint64

	// OnInject, when non-nil, observes every fired rule (trace wiring).
	// It must not re-enter the Injector.
	OnInject func(op Op, key string, out Outcome, now time.Duration)
}

// NewInjector builds an injector for plan with fresh counters.
func NewInjector(plan Plan) *Injector {
	in := &Injector{plan: plan}
	in.hits = make([]map[string]uint64, len(plan.Rules))
	in.fired = make([]uint64, len(plan.Rules))
	for i := range in.hits {
		in.hits[i] = make(map[string]uint64)
	}
	for i := range plan.Rules {
		op := plan.Rules[i].Op
		if op >= 0 && op < numOps {
			in.byOp[op] = append(in.byOp[op], i)
		}
	}
	return in
}

// Has reports whether the plan carries any rule for op. Injection sites use
// it to skip building decision keys (string concatenation) when no rule
// could ever consume them.
//
//hot:noalloc
func (in *Injector) Has(op Op) bool {
	return in != nil && op >= 0 && op < numOps && len(in.byOp[op]) > 0
}

// Plan returns the injector's schedule.
func (in *Injector) Plan() Plan { return in.plan }

// Fired returns the total number of injections so far.
func (in *Injector) Fired() uint64 {
	if in == nil {
		return 0
	}
	return in.total
}

// Check consults the plan for an operation at virtual time now. It returns
// the outcome of the first rule that fires, or ok=false when nothing does.
// Eligible hits bump per-(rule, key) counters whether or not the rule fires,
// so Nth/Every decisions depend only on the sequence of eligible operations.
//
//hot:noalloc
func (in *Injector) Check(op Op, key string, now time.Duration) (Outcome, bool) {
	if in == nil || op < 0 || op >= numOps {
		return Outcome{}, false
	}
	rules := in.byOp[op]
	if len(rules) == 0 {
		// Empty-plan fast path: the uninjected common case is one slice
		// length test, no key matching and no counter bumps.
		return Outcome{}, false
	}
	for _, i := range rules {
		r := &in.plan.Rules[i]
		if !r.match(key) {
			continue
		}
		if now < r.After || (r.Until > 0 && now >= r.Until) {
			continue
		}
		in.hits[i][key]++
		n := in.hits[i][key]
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		if r.Nth > 0 {
			if n != r.Nth {
				continue
			}
		} else if r.Every > 1 {
			if mix(in.plan.Seed, uint64(i), key, n)%r.Every != 0 {
				continue
			}
		}
		in.fired[i]++
		in.total++
		out := Outcome{Errno: r.Errno, Delay: r.Delay, QLimit: r.QLimit, Rule: i}
		if in.OnInject != nil {
			in.OnInject(op, key, out, now)
		}
		return out, true
	}
	return Outcome{}, false
}

// Syscall consults OpSyscall rules for a "persona/name" key.
//
//hot:noalloc
func (in *Injector) Syscall(now time.Duration, key string) (Outcome, bool) {
	return in.Check(OpSyscall, key, now)
}

// Interrupt consults OpPark rules for a park/sleep reason and reports
// whether the wait should be interrupted before blocking.
//
//hot:noalloc
func (in *Injector) Interrupt(now time.Duration, reason string) bool {
	_, ok := in.Check(OpPark, reason, now)
	return ok
}

// MemMap consults OpMemMap rules for a mapping name.
//
//hot:noalloc
func (in *Injector) MemMap(now time.Duration, name string) (Outcome, bool) {
	return in.Check(OpMemMap, name, now)
}

// VFS consults OpVFS rules for an "op:path" key.
func (in *Injector) VFS(now time.Duration, op, path string) (Outcome, bool) {
	return in.Check(OpVFS, op+":"+path, now)
}

// Crash consults OpCrash rules for a task executable path and reports
// whether the task should take a fatal signal at this dispatch.
//
//hot:noalloc
func (in *Injector) Crash(now time.Duration, path string) (Outcome, bool) {
	return in.Check(OpCrash, path, now)
}

// MemPressure consults OpMemPressure rules for a task executable path at
// a footprint-charge point; the outcome's Errno is the forced pressure
// level (2 = critical, else warn).
//
//hot:noalloc
func (in *Injector) MemPressure(now time.Duration, path string) (Outcome, bool) {
	return in.Check(OpMemPressure, path, now)
}

// mix hashes a decision context to a uniform-ish uint64 with splitmix64.
// Integer-only: no floats, no host entropy.
//
//hot:noalloc
func mix(seed, rule uint64, key string, n uint64) uint64 {
	x := seed
	x = splitmix64(x + 0x9e3779b97f4a7c15*(rule+1))
	x = splitmix64(x ^ fnv64(key))
	x = splitmix64(x + n)
	return x
}

//
//hot:noalloc
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

//
//hot:noalloc
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
