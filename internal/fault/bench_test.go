package fault

import (
	"testing"
	"time"
)

// BenchmarkFaultConsultEmptyPlan times the consult every syscall pays when
// no fault schedule is loaded: with the per-op rule index the empty case
// is a nil-slice length test, no key hashing, no map touch — and 0
// allocs/op.
func BenchmarkFaultConsultEmptyPlan(b *testing.B) {
	in := NewInjector(Plan{Name: "empty"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if in.Has(OpSyscall) {
			b.Fatal("empty plan claims syscall rules")
		}
		if _, ok := in.Check(OpSyscall, "getpid", time.Duration(i)); ok {
			b.Fatal("empty plan fired")
		}
	}
}

// BenchmarkFaultConsultOtherOp times the indexed miss: the plan has rules,
// but none for the op being consulted, so the consult must stay as cheap
// as the empty plan.
func BenchmarkFaultConsultOtherOp(b *testing.B) {
	in := NewInjector(Plan{
		Name:  "vfs-only",
		Rules: []Rule{{Op: OpVFS, Match: "open:", Errno: 5, Every: 3}},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if in.Has(OpSyscall) {
			b.Fatal("plan claims syscall rules")
		}
		if _, ok := in.Check(OpSyscall, "getpid", time.Duration(i)); ok {
			b.Fatal("fired for op with no rules")
		}
	}
}
