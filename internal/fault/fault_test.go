package fault

import (
	"testing"
	"time"
)

// Two injectors over the same plan must make bit-identical decisions for
// the same operation sequence.
func TestDeterministicAcrossInjectors(t *testing.T) {
	plan := Plan{
		Name: "det",
		Seed: 42,
		Rules: []Rule{
			{Op: OpSyscall, Match: "ios/*", Errno: 4, Every: 3},
			{Op: OpPark, Match: "waitq:pipe", Every: 5},
			{Op: OpVFS, Match: "lookup:*", Errno: 5, Every: 7, Delay: time.Microsecond},
		},
	}
	type decision struct {
		out Outcome
		ok  bool
	}
	run := func() []decision {
		in := NewInjector(plan)
		var ds []decision
		keys := []struct {
			op  Op
			key string
		}{
			{OpSyscall, "ios/getpid"}, {OpSyscall, "ios/read"}, {OpSyscall, "android/read"},
			{OpPark, "waitq:pipe"}, {OpPark, "sleep"}, {OpVFS, "lookup:/a"}, {OpVFS, "create:/a"},
		}
		for i := 0; i < 200; i++ {
			k := keys[i%len(keys)]
			out, ok := in.Check(k.op, k.key, time.Duration(i)*time.Microsecond)
			ds = append(ds, decision{out, ok})
		}
		return ds
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].ok {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("plan never fired; Every-based rules should fire over 200 hits")
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	mk := func(seed uint64) string {
		in := NewInjector(Plan{Seed: seed, Rules: []Rule{{Op: OpSyscall, Errno: 4, Every: 4}}})
		s := ""
		for i := 0; i < 64; i++ {
			if _, ok := in.Syscall(0, "ios/read"); ok {
				s += "1"
			} else {
				s += "0"
			}
		}
		return s
	}
	if mk(1) == mk(2) {
		t.Fatal("different seeds produced identical fire patterns")
	}
}

func TestNthFiresExactlyOnce(t *testing.T) {
	in := NewInjector(Plan{Rules: []Rule{{Op: OpMemMap, Match: "[stack]", Errno: 12, Nth: 3}}})
	var fires []int
	for i := 1; i <= 10; i++ {
		if _, ok := in.MemMap(0, "[stack]"); ok {
			fires = append(fires, i)
		}
		// Non-matching keys must not advance the counter.
		if _, ok := in.MemMap(0, "other"); ok {
			t.Fatal("non-matching key fired")
		}
	}
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("Nth=3 fired at %v, want exactly [3]", fires)
	}
}

func TestCountCapsFires(t *testing.T) {
	in := NewInjector(Plan{Rules: []Rule{{Op: OpPark, Match: "sleep", Count: 2}}})
	n := 0
	for i := 0; i < 10; i++ {
		if in.Interrupt(0, "sleep") {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("Count=2 fired %d times", n)
	}
}

func TestVirtualTimeWindow(t *testing.T) {
	in := NewInjector(Plan{Rules: []Rule{{
		Op: OpSyscall, Errno: 4, After: 10 * time.Millisecond, Until: 20 * time.Millisecond,
	}}})
	if _, ok := in.Syscall(5*time.Millisecond, "ios/read"); ok {
		t.Fatal("fired before After")
	}
	if _, ok := in.Syscall(15*time.Millisecond, "ios/read"); !ok {
		t.Fatal("did not fire inside window")
	}
	if _, ok := in.Syscall(25*time.Millisecond, "ios/read"); ok {
		t.Fatal("fired after Until")
	}
}

func TestPrefixAndExactMatch(t *testing.T) {
	in := NewInjector(Plan{Rules: []Rule{
		{Op: OpVFS, Match: "lookup:/iOS/*", Errno: 5},
		{Op: OpSyscall, Match: "android/dup", Errno: 24},
	}})
	if _, ok := in.VFS(0, "lookup", "/iOS/usr/lib/x.dylib"); !ok {
		t.Fatal("prefix rule did not match")
	}
	if _, ok := in.VFS(0, "lookup", "/system/bin/sh"); ok {
		t.Fatal("prefix rule matched outside prefix")
	}
	if _, ok := in.Syscall(0, "android/dup"); !ok {
		t.Fatal("exact rule did not match")
	}
	if _, ok := in.Syscall(0, "android/dup2"); ok {
		t.Fatal("exact rule matched a longer key")
	}
}

func TestSuffixMatch(t *testing.T) {
	in := NewInjector(Plan{Rules: []Rule{
		{Op: OpSyscall, Match: "*/read", Errno: 4},
	}})
	for _, key := range []string{"android/read", "ios/read"} {
		if _, ok := in.Syscall(0, key); !ok {
			t.Fatalf("suffix rule did not match %q", key)
		}
	}
	if _, ok := in.Syscall(0, "ios/readlink"); ok {
		t.Fatal("suffix rule matched beyond the suffix")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	in := NewInjector(Plan{Rules: []Rule{
		{Op: OpSyscall, Match: "ios/read", Errno: 4},
		{Op: OpSyscall, Match: "ios/*", Errno: 35},
	}})
	out, ok := in.Syscall(0, "ios/read")
	if !ok || out.Errno != 4 || out.Rule != 0 {
		t.Fatalf("got %+v ok=%v, want rule 0 errno 4", out, ok)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if _, ok := in.Check(OpSyscall, "ios/read", 0); ok {
		t.Fatal("nil injector fired")
	}
	if in.Interrupt(0, "sleep") {
		t.Fatal("nil injector interrupted")
	}
	if in.Fired() != 0 {
		t.Fatal("nil injector reported fires")
	}
}

func TestOnInjectObservesFires(t *testing.T) {
	in := NewInjector(Plan{Rules: []Rule{{Op: OpMachSend, Errno: 1, QLimit: 1, Delay: time.Millisecond}}})
	var gotOp Op
	var gotKey string
	var gotOut Outcome
	in.OnInject = func(op Op, key string, out Outcome, now time.Duration) {
		gotOp, gotKey, gotOut = op, key, out
	}
	out, ok := in.Check(OpMachSend, "send", 7*time.Millisecond)
	if !ok {
		t.Fatal("did not fire")
	}
	if gotOp != OpMachSend || gotKey != "send" || gotOut != out {
		t.Fatalf("OnInject saw (%v,%q,%+v), want (%v,%q,%+v)", gotOp, gotKey, gotOut, OpMachSend, "send", out)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired()=%d, want 1", in.Fired())
	}
}
