// Package dalvik implements the Android app execution substrate: a
// register-based DEX-like bytecode format and the interpreting virtual
// machine that runs it. This is what makes Fig. 6's headline comparison
// structural rather than asserted: the Android PassMark app really is
// bytecode executed instruction-by-instruction (paying a dispatch cost per
// instruction), while the iOS app is native code paying only the
// arithmetic cost — "the Android version is written in Java and
// interpreted through the Dalvik VM while the iOS version is written in
// Objective-C and compiled and run as a native binary" (Section 6.3).
package dalvik

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Opcodes. Instructions are 32-bit words: op in byte 0, operands in bytes
// 1..3; CONST takes one extension word.
const (
	OpNop uint8 = iota
	// OpConst rd <- imm32 (next word).
	OpConst
	// OpMove rd <- rs.
	OpMove
	// Integer ALU: rd <- ra op rb.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpXor
	OpAnd
	OpOr
	OpShl
	OpShr
	// Double ALU (registers hold IEEE-754 bits): rd <- ra op rb.
	OpDAdd
	OpDMul
	OpDDiv
	// OpI2D rd <- double(rs).
	OpI2D
	// OpCmp rd <- sign(ra - rb) as int64.
	OpCmp
	// OpIf rs cond ±off (branch if rs cond 0).
	OpIf
	// OpGoto ±off.
	OpGoto
	// OpNewArr rd <- new array of rs elements.
	OpNewArr
	// OpALoad rd <- arr[idx] (rd, rarr, ridx).
	OpALoad
	// OpAStore arr[idx] <- rs (rarr, ridx, rs).
	OpAStore
	// OpArrLen rd <- len(arr) (rd, rarr).
	OpArrLen
	// OpInvoke rd <- call method[imm in byte2] passing regs [byte3 ...).
	// Encoded as op, rd, methodIdx, firstArg; arg count in ext word.
	OpInvoke
	// OpIntrin rd <- host intrinsic (JNI-style native call).
	OpIntrin
	// OpReturn rs.
	OpReturn
	numOps
)

// Branch conditions for OpIf (byte 2).
const (
	IfEq uint8 = iota
	IfNe
	IfLt
	IfGe
	IfGt
	IfLe
)

// Method is one dex method body.
type Method struct {
	// Name is the method's identifier ("main", "computePrimes").
	Name string
	// Registers is the frame size.
	Registers int
	// Code is the instruction stream.
	Code []uint32
}

// File is a parsed or under-construction dex container.
type File struct {
	// Methods in index order (OpInvoke references by index).
	Methods []Method
}

// MethodIndex returns the index of the named method.
func (f *File) MethodIndex(name string) (int, bool) {
	for i, m := range f.Methods {
		if m.Name == name {
			return i, true
		}
	}
	return 0, false
}

// dexMagic mirrors the real container magic ("dex\n035\0").
var dexMagic = []byte("dex\n035\x00")

// Marshal encodes the container.
func (f *File) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(dexMagic)
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
	w(uint32(len(f.Methods)))
	for _, m := range f.Methods {
		if len(m.Name) > 255 {
			return nil, fmt.Errorf("dalvik: method name too long")
		}
		buf.WriteByte(uint8(len(m.Name)))
		buf.WriteString(m.Name)
		w(uint16(m.Registers))
		w(uint32(len(m.Code)))
		for _, insn := range m.Code {
			w(insn)
		}
	}
	return buf.Bytes(), nil
}

// Parse decodes a dex container.
func Parse(b []byte) (*File, error) {
	if len(b) < len(dexMagic) || !bytes.Equal(b[:len(dexMagic)], dexMagic) {
		return nil, fmt.Errorf("dalvik: bad dex magic")
	}
	r := bytes.NewReader(b[len(dexMagic):])
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var nm uint32
	if err := rd(&nm); err != nil {
		return nil, err
	}
	if nm > 1<<16 {
		return nil, fmt.Errorf("dalvik: implausible method count %d", nm)
	}
	f := &File{}
	for i := uint32(0); i < nm; i++ {
		var nameLen uint8
		if err := rd(&nameLen); err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := r.Read(name); err != nil {
			return nil, err
		}
		var regs uint16
		var codeLen uint32
		if err := rd(&regs); err != nil {
			return nil, err
		}
		if err := rd(&codeLen); err != nil {
			return nil, err
		}
		if codeLen > 1<<22 {
			return nil, fmt.Errorf("dalvik: implausible code length %d", codeLen)
		}
		code := make([]uint32, codeLen)
		for j := range code {
			if err := rd(&code[j]); err != nil {
				return nil, err
			}
		}
		f.Methods = append(f.Methods, Method{Name: string(name), Registers: int(regs), Code: code})
	}
	return f, nil
}

// ins packs an instruction word.
func ins(op, b1, b2, b3 uint8) uint32 {
	return uint32(op) | uint32(b1)<<8 | uint32(b2)<<16 | uint32(b3)<<24
}

// Assembler builds method bodies with labels.
type Assembler struct {
	name   string
	regs   int
	code   []uint32
	labels map[string]int
	// fixups are (instruction index, label) pairs; the branch offset is
	// patched into the instruction's ext word at Assemble time.
	fixups []fixup
}

type fixup struct {
	at    int
	label string
}

// NewAssembler starts a method with the given frame size.
func NewAssembler(name string, registers int) *Assembler {
	return &Assembler{name: name, regs: registers, labels: map[string]int{}}
}

// Label marks the current position.
func (a *Assembler) Label(l string) *Assembler {
	a.labels[l] = len(a.code)
	return a
}

// Const loads an immediate.
func (a *Assembler) Const(rd uint8, imm int32) *Assembler {
	a.code = append(a.code, ins(OpConst, rd, 0, 0), uint32(imm))
	return a
}

// Move copies a register.
func (a *Assembler) Move(rd, rs uint8) *Assembler {
	a.code = append(a.code, ins(OpMove, rd, rs, 0))
	return a
}

// Op3 emits a three-register ALU instruction.
func (a *Assembler) Op3(op, rd, ra, rb uint8) *Assembler {
	a.code = append(a.code, ins(op, rd, ra, rb))
	return a
}

// If branches to label when rs cond 0.
func (a *Assembler) If(rs uint8, cond uint8, label string) *Assembler {
	a.code = append(a.code, ins(OpIf, rs, cond, 0), 0)
	a.fixups = append(a.fixups, fixup{at: len(a.code) - 1, label: label})
	return a
}

// Goto jumps to label.
func (a *Assembler) Goto(label string) *Assembler {
	a.code = append(a.code, ins(OpGoto, 0, 0, 0), 0)
	a.fixups = append(a.fixups, fixup{at: len(a.code) - 1, label: label})
	return a
}

// NewArr allocates an array of rs elements into rd.
func (a *Assembler) NewArr(rd, rsize uint8) *Assembler {
	a.code = append(a.code, ins(OpNewArr, rd, rsize, 0))
	return a
}

// ALoad loads arr[idx].
func (a *Assembler) ALoad(rd, rarr, ridx uint8) *Assembler {
	a.code = append(a.code, ins(OpALoad, rd, rarr, ridx))
	return a
}

// AStore stores arr[idx] = rs.
func (a *Assembler) AStore(rarr, ridx, rs uint8) *Assembler {
	a.code = append(a.code, ins(OpAStore, rarr, ridx, rs))
	return a
}

// ArrLen loads an array's length.
func (a *Assembler) ArrLen(rd, rarr uint8) *Assembler {
	a.code = append(a.code, ins(OpArrLen, rd, rarr, 0))
	return a
}

// Invoke calls method midx with nargs args starting at firstArg; the
// result lands in rd.
func (a *Assembler) Invoke(rd uint8, midx uint8, firstArg uint8, nargs uint8) *Assembler {
	a.code = append(a.code, ins(OpInvoke, rd, midx, firstArg), uint32(nargs))
	return a
}

// Intrin calls host intrinsic id with nargs args starting at firstArg.
func (a *Assembler) Intrin(rd uint8, id uint8, firstArg uint8, nargs uint8) *Assembler {
	a.code = append(a.code, ins(OpIntrin, rd, id, firstArg), uint32(nargs))
	return a
}

// Return ends the method.
func (a *Assembler) Return(rs uint8) *Assembler {
	a.code = append(a.code, ins(OpReturn, rs, 0, 0))
	return a
}

// Assemble resolves labels and produces the method.
func (a *Assembler) Assemble() (Method, error) {
	code := append([]uint32(nil), a.code...)
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return Method{}, fmt.Errorf("dalvik: undefined label %q in %s", f.label, a.name)
		}
		code[f.at] = uint32(int32(target))
	}
	return Method{Name: a.name, Registers: a.regs, Code: code}, nil
}

// MustAssemble is Assemble that panics (for static program construction).
func (a *Assembler) MustAssemble() Method {
	m, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return m
}
