package dalvik

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/kernel"
)

// Intrinsic is a JNI-style native method reachable from bytecode: the VM
// charges a JNI transition cost, then the native side charges its own
// (native) costs — exactly how the Android PassMark app reaches OpenGL ES
// and the storage stack.
type Intrinsic func(t *kernel.Thread, args []uint64) uint64

// VM is a Dalvik-style interpreting virtual machine instance.
type VM struct {
	cpu *hw.CPUModel
	// dispatchCycles is the interpreter's per-instruction fetch/decode/
	// dispatch overhead — the cost native code does not pay.
	dispatchCycles float64
	// jniCycles is the managed->native transition cost.
	jniCycles  float64
	intrinsics map[uint8]Intrinsic
	// executed counts interpreted instructions (diagnostics).
	executed uint64
}

// NewVM builds a VM for a CPU.
func NewVM(cpu *hw.CPUModel) *VM {
	return &VM{
		cpu:            cpu,
		dispatchCycles: 14, // Dalvik's interpreter loop per bytecode
		jniCycles:      260,
		intrinsics:     make(map[uint8]Intrinsic),
	}
}

// RegisterIntrinsic installs a native method under id.
func (vm *VM) RegisterIntrinsic(id uint8, fn Intrinsic) {
	vm.intrinsics[id] = fn
}

// Executed reports interpreted instruction count.
func (vm *VM) Executed() uint64 { return vm.executed }

// frame is one method activation.
type frame struct {
	regs   []uint64
	arrays map[uint64][]uint64
}

// Run interprets the named method with the given arguments (placed in the
// lowest registers). The calling thread is charged the interpretation
// cost: dispatch overhead per instruction plus the arithmetic cost of each
// operation on the device CPU.
func (vm *VM) Run(t *kernel.Thread, f *File, method string, args ...uint64) (uint64, error) {
	idx, ok := f.MethodIndex(method)
	if !ok {
		return 0, fmt.Errorf("dalvik: no method %q", method)
	}
	return vm.call(t, f, idx, args, 0)
}

// maxDepth bounds recursion.
const maxDepth = 128

// chargeQuantum flushes accumulated cycles to the simulator.
const chargeQuantum = 20000

func (vm *VM) call(t *kernel.Thread, f *File, midx int, args []uint64, depth int) (uint64, error) {
	if depth > maxDepth {
		return 0, fmt.Errorf("dalvik: stack overflow")
	}
	m := &f.Methods[midx]
	fr := frame{regs: make([]uint64, m.Registers), arrays: make(map[uint64][]uint64)}
	copy(fr.regs, args)
	var pending float64
	charge := func(c float64) {
		pending += c
		if pending >= chargeQuantum {
			t.Charge(vm.cpu.Cycles(pending))
			pending = 0
		}
	}
	flush := func() {
		if pending > 0 {
			t.Charge(vm.cpu.Cycles(pending))
			pending = 0
		}
	}
	cpi := func(op hw.CPUOp) float64 { return vm.cpu.CPI[op] }

	pc := 0
	code := m.Code
	nextArrayID := uint64(1)
	for pc < len(code) {
		w := code[pc]
		op := uint8(w)
		b1, b2, b3 := uint8(w>>8), uint8(w>>16), uint8(w>>24)
		vm.executed++
		charge(vm.dispatchCycles)
		pc++
		switch op {
		case OpNop:
		case OpConst:
			fr.regs[b1] = uint64(int64(int32(code[pc])))
			pc++
			charge(cpi(hw.OpIntAdd))
		case OpMove:
			fr.regs[b1] = fr.regs[b2]
			charge(cpi(hw.OpIntAdd))
		case OpAdd:
			fr.regs[b1] = uint64(int64(fr.regs[b2]) + int64(fr.regs[b3]))
			charge(cpi(hw.OpIntAdd))
		case OpSub:
			fr.regs[b1] = uint64(int64(fr.regs[b2]) - int64(fr.regs[b3]))
			charge(cpi(hw.OpIntAdd))
		case OpMul:
			fr.regs[b1] = uint64(int64(fr.regs[b2]) * int64(fr.regs[b3]))
			charge(cpi(hw.OpIntMul))
		case OpDiv:
			d := int64(fr.regs[b3])
			if d == 0 {
				flush()
				return 0, fmt.Errorf("dalvik: divide by zero in %s", m.Name)
			}
			fr.regs[b1] = uint64(int64(fr.regs[b2]) / d)
			charge(cpi(hw.OpIntDiv))
		case OpRem:
			d := int64(fr.regs[b3])
			if d == 0 {
				flush()
				return 0, fmt.Errorf("dalvik: remainder by zero in %s", m.Name)
			}
			fr.regs[b1] = uint64(int64(fr.regs[b2]) % d)
			charge(cpi(hw.OpIntDiv))
		case OpXor:
			fr.regs[b1] = fr.regs[b2] ^ fr.regs[b3]
			charge(cpi(hw.OpIntAdd))
		case OpAnd:
			fr.regs[b1] = fr.regs[b2] & fr.regs[b3]
			charge(cpi(hw.OpIntAdd))
		case OpOr:
			fr.regs[b1] = fr.regs[b2] | fr.regs[b3]
			charge(cpi(hw.OpIntAdd))
		case OpShl:
			fr.regs[b1] = fr.regs[b2] << (fr.regs[b3] & 63)
			charge(cpi(hw.OpIntAdd))
		case OpShr:
			fr.regs[b1] = fr.regs[b2] >> (fr.regs[b3] & 63)
			charge(cpi(hw.OpIntAdd))
		case OpDAdd:
			fr.regs[b1] = math.Float64bits(math.Float64frombits(fr.regs[b2]) + math.Float64frombits(fr.regs[b3]))
			charge(cpi(hw.OpFloatAdd))
		case OpDMul:
			fr.regs[b1] = math.Float64bits(math.Float64frombits(fr.regs[b2]) * math.Float64frombits(fr.regs[b3]))
			charge(cpi(hw.OpFloatMul))
		case OpDDiv:
			fr.regs[b1] = math.Float64bits(math.Float64frombits(fr.regs[b2]) / math.Float64frombits(fr.regs[b3]))
			charge(cpi(hw.OpFloatDiv))
		case OpI2D:
			fr.regs[b1] = math.Float64bits(float64(int64(fr.regs[b2])))
			charge(cpi(hw.OpFloatAdd))
		case OpCmp:
			a, b := int64(fr.regs[b2]), int64(fr.regs[b3])
			switch {
			case a < b:
				fr.regs[b1] = uint64(math.MaxUint64) // -1
			case a > b:
				fr.regs[b1] = 1
			default:
				fr.regs[b1] = 0
			}
			charge(cpi(hw.OpIntAdd))
		case OpIf:
			target := int(int32(code[pc]))
			pc++
			v := int64(fr.regs[b1])
			taken := false
			switch b2 {
			case IfEq:
				taken = v == 0
			case IfNe:
				taken = v != 0
			case IfLt:
				taken = v < 0
			case IfGe:
				taken = v >= 0
			case IfGt:
				taken = v > 0
			case IfLe:
				taken = v <= 0
			}
			charge(cpi(hw.OpBranch))
			if taken {
				pc = target
			}
		case OpGoto:
			pc = int(int32(code[pc]))
			charge(cpi(hw.OpBranch))
		case OpNewArr:
			n := int64(fr.regs[b2])
			if n < 0 || n > 1<<24 {
				flush()
				return 0, fmt.Errorf("dalvik: bad array size %d", n)
			}
			id := nextArrayID
			nextArrayID++
			fr.arrays[id] = make([]uint64, n)
			fr.regs[b1] = id
			charge(float64(n)/8 + 40) // zeroing cost
		case OpALoad:
			arr, ok := fr.arrays[fr.regs[b2]]
			if !ok {
				flush()
				return 0, fmt.Errorf("dalvik: bad array ref in %s", m.Name)
			}
			i := int64(fr.regs[b3])
			if i < 0 || i >= int64(len(arr)) {
				flush()
				return 0, fmt.Errorf("dalvik: index %d out of range %d", i, len(arr))
			}
			fr.regs[b1] = arr[i]
			charge(cpi(hw.OpLoad))
		case OpAStore:
			arr, ok := fr.arrays[fr.regs[b1]]
			if !ok {
				flush()
				return 0, fmt.Errorf("dalvik: bad array ref in %s", m.Name)
			}
			i := int64(fr.regs[b2])
			if i < 0 || i >= int64(len(arr)) {
				flush()
				return 0, fmt.Errorf("dalvik: index %d out of range %d", i, len(arr))
			}
			arr[i] = fr.regs[b3]
			charge(cpi(hw.OpStore))
		case OpArrLen:
			arr, ok := fr.arrays[fr.regs[b2]]
			if !ok {
				flush()
				return 0, fmt.Errorf("dalvik: bad array ref in %s", m.Name)
			}
			fr.regs[b1] = uint64(len(arr))
			charge(cpi(hw.OpLoad))
		case OpInvoke:
			nargs := int(code[pc])
			pc++
			if int(b2) >= len(f.Methods) {
				flush()
				return 0, fmt.Errorf("dalvik: bad method index %d", b2)
			}
			callArgs := make([]uint64, nargs)
			copy(callArgs, fr.regs[b3:int(b3)+nargs])
			charge(60) // frame push/pop
			flush()
			ret, err := vm.call(t, f, int(b2), callArgs, depth+1)
			if err != nil {
				return 0, err
			}
			fr.regs[b1] = ret
		case OpIntrin:
			nargs := int(code[pc])
			pc++
			fn, ok := vm.intrinsics[b2]
			if !ok {
				flush()
				return 0, fmt.Errorf("dalvik: unknown intrinsic %d", b2)
			}
			callArgs := make([]uint64, nargs)
			copy(callArgs, fr.regs[b3:int(b3)+nargs])
			charge(vm.jniCycles)
			flush()
			fr.regs[b1] = fn(t, callArgs)
		case OpReturn:
			flush()
			return fr.regs[b1], nil
		default:
			flush()
			return 0, fmt.Errorf("dalvik: bad opcode %d at %d in %s", op, pc-1, m.Name)
		}
	}
	flush()
	return 0, nil
}
