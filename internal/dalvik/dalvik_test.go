package dalvik

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// runVM executes method main of f on a fresh simulated thread.
func runVM(t *testing.T, f *File, method string, args ...uint64) (uint64, time.Duration) {
	t.Helper()
	s := sim.New()
	fs := vfs.New()
	reg := prog.NewRegistry()
	k, err := kernel.New(s, kernel.Config{
		Profile: kernel.ProfileLinuxVanilla, Device: hw.Nexus7(), Root: fs, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})
	var ret uint64
	var rerr error
	var elapsed time.Duration
	reg.MustRegister("vmhost", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		vm := NewVM(hw.Nexus7().CPU)
		start := th.Now()
		ret, rerr = vm.Run(th, f, method, args...)
		elapsed = th.Now() - start
		return 0
	})
	bin, _ := prog.StaticELF("vmhost")
	fs.WriteFile("/bin/vmhost", bin)
	k.StartProcess("/bin/vmhost", nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	return ret, elapsed
}

// sumLoop builds: for (i=0; i<n; i++) acc+=i; return acc.
func sumLoop() *File {
	m := NewAssembler("main", 6).
		Move(1, 0).  // r1 = n (arg in r0)
		Const(2, 0). // r2 = acc
		Const(3, 0). // r3 = i
		Const(4, 1). // r4 = 1
		Label("loop").
		Op3(OpCmp, 5, 3, 1). // r5 = cmp(i, n)
		If(5, IfGe, "done").
		Op3(OpAdd, 2, 2, 3). // acc += i
		Op3(OpAdd, 3, 3, 4). // i++
		Goto("loop").
		Label("done").
		Return(2).
		MustAssemble()
	return &File{Methods: []Method{m}}
}

func TestSumLoop(t *testing.T) {
	got, _ := runVM(t, sumLoop(), "main", 100)
	if got != 4950 {
		t.Fatalf("sum(0..99) = %d, want 4950", got)
	}
}

func TestArithmetic(t *testing.T) {
	m := NewAssembler("main", 8).
		Const(1, 84).
		Const(2, 2).
		Op3(OpDiv, 3, 1, 2). // 42
		Const(4, 5).
		Op3(OpRem, 5, 3, 4). // 2
		Op3(OpMul, 6, 3, 2). // 84
		Op3(OpSub, 7, 6, 5). // 82
		Return(7).
		MustAssemble()
	got, _ := runVM(t, &File{Methods: []Method{m}}, "main")
	if got != 82 {
		t.Fatalf("got %d, want 82", got)
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	m := NewAssembler("main", 4).
		Const(1, 1).
		Const(2, 0).
		Op3(OpDiv, 3, 1, 2).
		Return(3).
		MustAssemble()
	f := &File{Methods: []Method{m}}
	s := sim.New()
	fs := vfs.New()
	reg := prog.NewRegistry()
	k, _ := kernel.New(s, kernel.Config{Profile: kernel.ProfileLinuxVanilla, Device: hw.Nexus7(), Root: fs, Registry: reg})
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})
	var rerr error
	reg.MustRegister("div0", func(c *prog.Call) uint64 {
		vm := NewVM(hw.Nexus7().CPU)
		_, rerr = vm.Run(c.Ctx.(*kernel.Thread), f, "main")
		return 0
	})
	bin, _ := prog.StaticELF("div0")
	fs.WriteFile("/bin/d", bin)
	k.StartProcess("/bin/d", nil)
	s.Run()
	if rerr == nil {
		t.Fatal("divide by zero must error")
	}
}

func TestArrays(t *testing.T) {
	// arr = new[10]; arr[3] = 7; return arr[3] + len(arr).
	m := NewAssembler("main", 8).
		Const(1, 10).
		NewArr(2, 1).
		Const(3, 3).
		Const(4, 7).
		AStore(2, 3, 4).
		ALoad(5, 2, 3).
		ArrLen(6, 2).
		Op3(OpAdd, 7, 5, 6).
		Return(7).
		MustAssemble()
	got, _ := runVM(t, &File{Methods: []Method{m}}, "main")
	if got != 17 {
		t.Fatalf("got %d, want 17", got)
	}
}

func TestArrayBoundsTrap(t *testing.T) {
	m := NewAssembler("main", 4).
		Const(1, 2).
		NewArr(2, 1).
		Const(3, 5).
		ALoad(1, 2, 3).
		Return(1).
		MustAssemble()
	f := &File{Methods: []Method{m}}
	s := sim.New()
	fs := vfs.New()
	reg := prog.NewRegistry()
	k, _ := kernel.New(s, kernel.Config{Profile: kernel.ProfileLinuxVanilla, Device: hw.Nexus7(), Root: fs, Registry: reg})
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})
	var rerr error
	reg.MustRegister("oob", func(c *prog.Call) uint64 {
		vm := NewVM(hw.Nexus7().CPU)
		_, rerr = vm.Run(c.Ctx.(*kernel.Thread), f, "main")
		return 0
	})
	bin, _ := prog.StaticELF("oob")
	fs.WriteFile("/bin/o", bin)
	k.StartProcess("/bin/o", nil)
	s.Run()
	if rerr == nil {
		t.Fatal("out-of-bounds access must error")
	}
}

func TestMethodInvoke(t *testing.T) {
	double := NewAssembler("double", 3).
		Op3(OpAdd, 2, 0, 0).
		Return(2).
		MustAssemble()
	main := NewAssembler("main", 4).
		Const(1, 21).
		Move(2, 1).
		Invoke(3, 1, 2, 1). // r3 = double(r2)
		Return(3).
		MustAssemble()
	got, _ := runVM(t, &File{Methods: []Method{main, double}}, "main")
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestDoubleOps(t *testing.T) {
	// d = i2d(7); d = d * d; d = d + d; return int of comparison with 97.
	m := NewAssembler("main", 8).
		Const(1, 7).
		Op3(OpI2D, 2, 1, 0).
		Op3(OpDMul, 3, 2, 2). // 49.0
		Op3(OpDAdd, 4, 3, 3). // 98.0
		Op3(OpDDiv, 5, 4, 2). // 14.0
		Return(5).
		MustAssemble()
	got, _ := runVM(t, &File{Methods: []Method{m}}, "main")
	// 14.0 as float64 bits
	if got != 0x402c000000000000 {
		t.Fatalf("got %#x", got)
	}
}

func TestInterpretationOverheadVsNative(t *testing.T) {
	// The same loop executed as bytecode must be several times slower
	// than the equivalent native arithmetic — the structural cause of the
	// Fig. 6 CPU results.
	const n = 20000
	_, interpreted := runVM(t, sumLoop(), "main", n)
	// Native equivalent on the same CPU: per iteration one cmp, one add,
	// one increment, one branch.
	cpu := hw.Nexus7().CPU
	native := cpu.OpTime(hw.OpIntAdd, 3*n) + cpu.OpTime(hw.OpBranch, 2*n)
	ratio := float64(interpreted) / float64(native)
	if ratio < 2.5 || ratio > 12 {
		t.Fatalf("interpreted/native = %.1fx, want several-fold slowdown", ratio)
	}
}

func TestIntrinsicJNI(t *testing.T) {
	m := NewAssembler("main", 4).
		Const(1, 5).
		Move(2, 1).
		Intrin(3, 9, 2, 1).
		Return(3).
		MustAssemble()
	f := &File{Methods: []Method{m}}
	s := sim.New()
	fs := vfs.New()
	reg := prog.NewRegistry()
	k, _ := kernel.New(s, kernel.Config{Profile: kernel.ProfileLinuxVanilla, Device: hw.Nexus7(), Root: fs, Registry: reg})
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})
	var got uint64
	reg.MustRegister("jni", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		vm := NewVM(hw.Nexus7().CPU)
		vm.RegisterIntrinsic(9, func(t *kernel.Thread, args []uint64) uint64 {
			return args[0] * 100
		})
		got, _ = vm.Run(th, f, "main")
		return 0
	})
	bin, _ := prog.StaticELF("jni")
	fs.WriteFile("/bin/j", bin)
	k.StartProcess("/bin/j", nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 500 {
		t.Fatalf("got %d", got)
	}
}

func TestDexRoundTrip(t *testing.T) {
	f := sumLoop()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Methods) != 1 || g.Methods[0].Name != "main" {
		t.Fatalf("methods = %+v", g.Methods)
	}
	if len(g.Methods[0].Code) != len(f.Methods[0].Code) {
		t.Fatal("code length changed")
	}
	got, _ := runVM(t, g, "main", 10)
	if got != 45 {
		t.Fatalf("re-parsed program broken: %d", got)
	}
}

func TestDexParseErrors(t *testing.T) {
	if _, err := Parse([]byte("not dex")); err == nil {
		t.Fatal("bad magic should fail")
	}
	f := sumLoop()
	b, _ := f.Marshal()
	if _, err := Parse(b[:len(b)-4]); err == nil {
		t.Fatal("truncated dex should fail")
	}
}

func TestDexPropertyRoundTrip(t *testing.T) {
	check := func(name string, regs uint8, code []uint32) bool {
		if len(name) == 0 || len(name) > 40 {
			return true
		}
		f := &File{Methods: []Method{{Name: name, Registers: int(regs), Code: code}}}
		b, err := f.Marshal()
		if err != nil {
			return false
		}
		g, err := Parse(b)
		if err != nil || len(g.Methods) != 1 {
			return false
		}
		m := g.Methods[0]
		if m.Name != name || m.Registers != int(regs) || len(m.Code) != len(code) {
			return false
		}
		for i := range code {
			if m.Code[i] != code[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	_, err := NewAssembler("bad", 2).Goto("nowhere").Assemble()
	if err == nil {
		t.Fatal("undefined label must fail assembly")
	}
}
