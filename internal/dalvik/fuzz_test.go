package dalvik

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: the dex parser consumes app-store bytes.
func TestParseNeverPanics(t *testing.T) {
	check := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		Parse(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseCorruptedValid mutates a valid dex container; Parse must never
// panic, and a successful parse must still be safely executable (the VM
// traps on bad code rather than panicking).
func TestParseCorruptedValid(t *testing.T) {
	good, err := sumLoop().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(good); off++ {
		mut := append([]byte(nil), good...)
		mut[off] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at offset %d: %v", off, r)
				}
			}()
			Parse(mut)
		}()
	}
}
