// Package libkqueue is the user-space kqueue/kevent implementation of
// Section 4.2: "the BSD kqueue and kevent notification mechanisms were
// easier to support in Cider as user space libraries because of the
// availability of existing open source user-level implementations
// [libkqueue]. Because they did not need to be incorporated into the
// kernel, they did not need to be incorporated using duct tape, but simply
// via API interposition."
//
// As in the real libkqueue, the BSD API is emulated over the host kernel's
// native multiplexing primitive — select(2) here — entirely in user space.
package libkqueue

import (
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/libsystem"
)

// Filter types (sys/event.h).
const (
	// EvfiltRead is EVFILT_READ.
	EvfiltRead = -1
	// EvfiltWrite is EVFILT_WRITE.
	EvfiltWrite = -2
)

// Flags (sys/event.h).
const (
	// EvAdd is EV_ADD.
	EvAdd = 0x0001
	// EvDelete is EV_DELETE.
	EvDelete = 0x0002
	// EvOneshot is EV_ONESHOT.
	EvOneshot = 0x0010
)

// Kevent is struct kevent.
type Kevent struct {
	// Ident is the descriptor being watched.
	Ident int
	// Filter selects the event type.
	Filter int16
	// Flags carry EV_* actions on input, EV_* state on output.
	Flags uint16
	// Udata is the opaque user pointer.
	Udata uint64
}

// watch is one registered (ident, filter) interest.
type watch struct {
	ev      Kevent
	oneshot bool
}

// KQ is a kqueue instance — user-space state only, as libkqueue keeps it.
type KQ struct {
	lc      *libsystem.C
	watches map[[2]int64]*watch
	closed  bool
	// emuCost is the per-kevent call bookkeeping the emulation layer adds.
	emuCost time.Duration
}

// New is kqueue(2): allocate a queue for the calling thread's process.
func New(lc *libsystem.C) *KQ {
	return &KQ{
		lc:      lc,
		watches: make(map[[2]int64]*watch),
		emuCost: lc.T.Kernel().Device().CPU.Cycles(900),
	}
}

func key(ident int, filter int16) [2]int64 {
	return [2]int64{int64(ident), int64(filter)}
}

// Kevent is kevent(2): apply changes, then poll/wait for up to len(events)
// results. timeout < 0 blocks, 0 polls. Returns the number of events.
func (kq *KQ) Kevent(changes []Kevent, events []Kevent, timeout time.Duration) (int, error) {
	if kq.closed {
		return 0, fmt.Errorf("libkqueue: closed queue")
	}
	kq.lc.T.Charge(kq.emuCost)
	for _, ch := range changes {
		switch {
		case ch.Flags&EvDelete != 0:
			delete(kq.watches, key(ch.Ident, ch.Filter))
		case ch.Flags&EvAdd != 0:
			if ch.Filter != EvfiltRead && ch.Filter != EvfiltWrite {
				return 0, fmt.Errorf("libkqueue: unsupported filter %d", ch.Filter)
			}
			kq.watches[key(ch.Ident, ch.Filter)] = &watch{
				ev:      ch,
				oneshot: ch.Flags&EvOneshot != 0,
			}
		}
	}
	if len(events) == 0 {
		return 0, nil
	}
	// Emulate over select(2), exactly as libkqueue's posix backend does.
	var readFDs, writeFDs []int
	for _, w := range kq.watches {
		if w.ev.Filter == EvfiltRead {
			readFDs = append(readFDs, w.ev.Ident)
		} else {
			writeFDs = append(writeFDs, w.ev.Ident)
		}
	}
	if len(readFDs)+len(writeFDs) == 0 {
		return 0, nil
	}
	res, errno := kq.lc.Select(&kernel.SelectRequest{
		ReadFDs: readFDs, WriteFDs: writeFDs, Timeout: timeout,
	})
	if errno != kernel.OK {
		return 0, fmt.Errorf("libkqueue: select: %v", errno)
	}
	n := 0
	deliver := func(fd int, filter int16) {
		if n >= len(events) {
			return
		}
		w, ok := kq.watches[key(fd, filter)]
		if !ok {
			return
		}
		events[n] = w.ev
		n++
		if w.oneshot {
			delete(kq.watches, key(fd, filter))
		}
	}
	for _, fd := range res.ReadReady {
		deliver(fd, EvfiltRead)
	}
	for _, fd := range res.WriteReady {
		deliver(fd, EvfiltWrite)
	}
	return n, nil
}

// Watches reports registered interests (tests).
func (kq *KQ) Watches() int { return len(kq.watches) }

// Close releases the queue.
func (kq *KQ) Close() { kq.closed = true }
