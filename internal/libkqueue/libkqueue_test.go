package libkqueue_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/libkqueue"
	"repro/internal/libsystem"
	"repro/internal/prog"
)

// runIOS executes body in an iOS process on Cider.
func runIOS(t *testing.T, body func(lc *libsystem.C)) {
	t.Helper()
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallIOSBinary("/bin/kq", "kq-"+t.Name(), nil, func(c *prog.Call) uint64 {
		body(libsystem.Sys(c.Ctx.(*kernel.Thread)))
		return 0
	})
	sys.Start("/bin/kq", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKeventReadReadiness(t *testing.T) {
	runIOS(t, func(lc *libsystem.C) {
		r, w, _ := lc.Pipe()
		kq := libkqueue.New(lc)
		changes := []libkqueue.Kevent{{Ident: r, Filter: libkqueue.EvfiltRead, Flags: libkqueue.EvAdd, Udata: 77}}
		evs := make([]libkqueue.Kevent, 4)
		// Nothing readable yet: poll returns 0.
		n, err := kq.Kevent(changes, evs, 0)
		if err != nil || n != 0 {
			t.Errorf("empty pipe: n=%d err=%v", n, err)
		}
		lc.Write(w, []byte("x"))
		n, err = kq.Kevent(nil, evs, 0)
		if err != nil || n != 1 {
			t.Errorf("after write: n=%d err=%v", n, err)
			return
		}
		if evs[0].Ident != r || evs[0].Udata != 77 {
			t.Errorf("event = %+v", evs[0])
		}
	})
}

func TestKeventWriteReadinessAndDelete(t *testing.T) {
	runIOS(t, func(lc *libsystem.C) {
		_, w, _ := lc.Pipe()
		kq := libkqueue.New(lc)
		kq.Kevent([]libkqueue.Kevent{{Ident: w, Filter: libkqueue.EvfiltWrite, Flags: libkqueue.EvAdd}}, nil, 0)
		evs := make([]libkqueue.Kevent, 1)
		n, err := kq.Kevent(nil, evs, 0)
		if err != nil || n != 1 {
			t.Errorf("writable pipe: n=%d err=%v", n, err)
		}
		// Delete the interest: no more events.
		kq.Kevent([]libkqueue.Kevent{{Ident: w, Filter: libkqueue.EvfiltWrite, Flags: libkqueue.EvDelete}}, nil, 0)
		if kq.Watches() != 0 {
			t.Errorf("watches = %d after delete", kq.Watches())
		}
	})
}

func TestKeventBlocksUntilReady(t *testing.T) {
	runIOS(t, func(lc *libsystem.C) {
		r, w, _ := lc.Pipe()
		kq := libkqueue.New(lc)
		kq.Kevent([]libkqueue.Kevent{{Ident: r, Filter: libkqueue.EvfiltRead, Flags: libkqueue.EvAdd}}, nil, 0)
		// A sibling thread writes after 5ms.
		lc.T.SpawnThread("writer", func(wt *kernel.Thread) {
			wt.Charge(5 * time.Millisecond)
			libsystem.Sys(wt).Write(w, []byte("y"))
		})
		evs := make([]libkqueue.Kevent, 1)
		start := lc.T.Now()
		n, err := kq.Kevent(nil, evs, -1)
		if err != nil || n != 1 {
			t.Errorf("blocking kevent: n=%d err=%v", n, err)
		}
		if lc.T.Now()-start < 5*time.Millisecond {
			t.Error("kevent returned before the writer ran")
		}
	})
}

func TestKeventOneshot(t *testing.T) {
	runIOS(t, func(lc *libsystem.C) {
		r, w, _ := lc.Pipe()
		lc.Write(w, []byte("z"))
		kq := libkqueue.New(lc)
		kq.Kevent([]libkqueue.Kevent{{
			Ident: r, Filter: libkqueue.EvfiltRead,
			Flags: libkqueue.EvAdd | libkqueue.EvOneshot,
		}}, nil, 0)
		evs := make([]libkqueue.Kevent, 1)
		if n, _ := kq.Kevent(nil, evs, 0); n != 1 {
			t.Error("oneshot did not fire")
		}
		if kq.Watches() != 0 {
			t.Error("oneshot interest not removed")
		}
	})
}

func TestKeventErrors(t *testing.T) {
	runIOS(t, func(lc *libsystem.C) {
		kq := libkqueue.New(lc)
		_, err := kq.Kevent([]libkqueue.Kevent{{Ident: 0, Filter: 99, Flags: libkqueue.EvAdd}}, nil, 0)
		if err == nil {
			t.Error("bad filter should fail")
		}
		kq.Close()
		if _, err := kq.Kevent(nil, nil, 0); err == nil {
			t.Error("closed queue should fail")
		}
	})
}
