// Package ducttape implements Cider's compile-time code adaptation layer
// (Section 4.2): the mechanism that lets unmodified foreign (XNU) kernel
// source compile into the domestic (Linux) kernel.
//
// Duct tape has two halves, both implemented here:
//
//   - The *link* half: three coding zones (domestic, foreign, duct tape)
//     with enforced visibility rules — domestic code cannot reference
//     foreign symbols and vice versa; both may reference duct tape symbols;
//     duct tape may reference everything. Symbol conflicts between foreign
//     and domestic definitions are detected and automatically remapped to
//     unique names, and unresolved foreign externals are reported as the
//     work list for the duct tape zone ("more complicated external foreign
//     dependencies require some implementation effort").
//
//   - The *adaptation* half (env.go): runtime shims translating the foreign
//     kernel's APIs — locking, memory allocation, list management, process
//     control — onto domestic kernel primitives, so foreign subsystems
//     (internal/xnu: Mach IPC, pthread support; internal/iokit: I/O Kit)
//     run as first-class members of the domestic kernel.
package ducttape

import (
	"fmt"
	"sort"
)

// Zone is a coding zone within the combined kernel image.
type Zone int

const (
	// Domestic is unmodified domestic (Linux) kernel code.
	Domestic Zone = iota
	// Foreign is unmodified foreign (XNU) kernel code.
	Foreign
	// Tape is the duct tape adaptation zone, visible to both.
	Tape
)

func (z Zone) String() string {
	switch z {
	case Domestic:
		return "domestic"
	case Foreign:
		return "foreign"
	case Tape:
		return "ducttape"
	}
	return fmt.Sprintf("zone(%d)", int(z))
}

// Unit is one compilation unit: a named source file with the symbols it
// defines and the external symbols it references.
type Unit struct {
	// Name is the source path (e.g. "xnu/osfmk/ipc/ipc_port.c").
	Name string
	// Zone is the unit's coding zone.
	Zone Zone
	// Defines lists symbols the unit exports.
	Defines []string
	// References lists external symbols the unit consumes.
	References []string
}

// Remap records one automatic symbol rename.
type Remap struct {
	// Symbol is the original foreign symbol name.
	Symbol string
	// NewName is the conflict-free name it was remapped to.
	NewName string
	// ConflictsWith names the domestic unit defining the clashing symbol.
	ConflictsWith string
}

// ErrZoneViolation reports a reference that crosses zones illegally.
type ErrZoneViolation struct {
	Unit   string
	Symbol string
	// From and To are the referencing and defining zones.
	From, To Zone
}

func (e *ErrZoneViolation) Error() string {
	return fmt.Sprintf("ducttape: %s (%s zone) references %q defined in %s zone",
		e.Unit, e.From, e.Symbol, e.To)
}

// ErrDuplicate reports two units in compatible zones defining one symbol.
type ErrDuplicate struct {
	Symbol        string
	First, Second string
}

func (e *ErrDuplicate) Error() string {
	return fmt.Sprintf("ducttape: symbol %q defined by both %s and %s",
		e.Symbol, e.First, e.Second)
}

// Image is a linked kernel image: the result of duct-taping foreign units
// into the domestic kernel.
type Image struct {
	units []Unit
	// owner maps a (possibly remapped) symbol to its defining unit index.
	owner map[string]int
	// remaps records every automatic conflict rename.
	remaps []Remap
	// unresolved maps a unit name to foreign externals that no zone
	// defines — the duct tape implementation work list.
	unresolved map[string][]string
}

// Link combines units into a kernel image, enforcing the three-zone
// discipline:
//
//  1. Distinct zones are created (each unit declares its zone).
//  2. External symbols and conflicts with domestic code are identified.
//  3. Conflicting foreign symbols are remapped to unique names; remaining
//     foreign externals must resolve to duct tape (or remapped foreign)
//     symbols.
//
// Unresolved foreign references are not an error — they are returned via
// Image.Unresolved as required duct-tape work — but zone violations and
// same-zone duplicates are.
func Link(units []Unit) (*Image, error) {
	img := &Image{
		units:      units,
		owner:      make(map[string]int),
		unresolved: make(map[string][]string),
	}
	// Pass 1: index domestic and tape definitions.
	for i, u := range units {
		if u.Zone == Foreign {
			continue
		}
		for _, s := range u.Defines {
			if prev, ok := img.owner[s]; ok {
				return nil, &ErrDuplicate{Symbol: s, First: units[prev].Name, Second: u.Name}
			}
			img.owner[s] = i
		}
	}
	// Pass 2: add foreign definitions, remapping conflicts with
	// already-present (domestic/tape) symbols to unique names.
	foreignName := make(map[string]string) // original -> linked name
	for i, u := range units {
		if u.Zone != Foreign {
			continue
		}
		for _, s := range u.Defines {
			linked := s
			if prev, ok := img.owner[s]; ok {
				if units[prev].Zone == Foreign {
					return nil, &ErrDuplicate{Symbol: s, First: units[prev].Name, Second: u.Name}
				}
				linked = "xnu_" + s
				for n := 2; ; n++ {
					if _, taken := img.owner[linked]; !taken {
						break
					}
					linked = fmt.Sprintf("xnu%d_%s", n, s)
				}
				img.remaps = append(img.remaps, Remap{
					Symbol: s, NewName: linked, ConflictsWith: units[prev].Name,
				})
			}
			foreignName[s] = linked
			img.owner[linked] = i
		}
	}
	// Pass 3: resolve references under the zone visibility rules.
	for _, u := range units {
		for _, ref := range u.References {
			name := ref
			if u.Zone == Foreign {
				// Foreign code referring to its own (possibly remapped)
				// symbols sees them under the original name.
				if ln, ok := foreignName[ref]; ok {
					name = ln
				}
			}
			def, ok := img.owner[name]
			if !ok {
				// Unresolved: legal only for foreign code (it becomes duct
				// tape work); domestic/tape dangling references are bugs.
				if u.Zone == Foreign || u.Zone == Tape {
					img.unresolved[u.Name] = append(img.unresolved[u.Name], ref)
					continue
				}
				return nil, fmt.Errorf("ducttape: %s references undefined symbol %q", u.Name, ref)
			}
			defZone := u.Zone // same-zone default
			defZone = img.units[def].Zone
			if !visible(u.Zone, defZone) {
				return nil, &ErrZoneViolation{Unit: u.Name, Symbol: ref, From: u.Zone, To: defZone}
			}
		}
	}
	return img, nil
}

// visible reports whether code in zone from may reference symbols in zone
// to: "code in the domestic zone cannot access symbols in foreign zone, and
// code in the foreign zone cannot access symbols in the domestic zone. Both
// foreign and domestic zones can access symbols in the duct tape zone, and
// the duct tape zone can access symbols in both."
func visible(from, to Zone) bool {
	switch from {
	case Tape:
		return true
	case Domestic:
		return to != Foreign
	case Foreign:
		return to != Domestic
	}
	return false
}

// Remaps returns the automatic conflict renames, in link order.
func (img *Image) Remaps() []Remap { return img.remaps }

// Unresolved returns the duct-tape work list: per foreign/tape unit, the
// externals nothing defines yet.
func (img *Image) Unresolved() map[string][]string { return img.unresolved }

// Resolve returns the defining unit of a linked symbol name.
func (img *Image) Resolve(symbol string) (Unit, bool) {
	i, ok := img.owner[symbol]
	if !ok {
		return Unit{}, false
	}
	return img.units[i], true
}

// Units returns the linked units.
func (img *Image) Units() []Unit { return img.units }

// Report renders a human-readable link report (cmd/ducttape-audit).
func (img *Image) Report() string {
	out := fmt.Sprintf("duct tape link report: %d units, %d symbols\n", len(img.units), len(img.owner))
	byZone := map[Zone]int{}
	for _, u := range img.units {
		byZone[u.Zone]++
	}
	out += fmt.Sprintf("  zones: %d domestic, %d foreign, %d ducttape\n",
		byZone[Domestic], byZone[Foreign], byZone[Tape])
	if len(img.remaps) > 0 {
		out += fmt.Sprintf("  %d symbol conflicts remapped:\n", len(img.remaps))
		for _, r := range img.remaps {
			out += fmt.Sprintf("    %s -> %s (conflicts with %s)\n", r.Symbol, r.NewName, r.ConflictsWith)
		}
	}
	if len(img.unresolved) > 0 {
		var names []string
		for n := range img.unresolved {
			names = append(names, n)
		}
		sort.Strings(names)
		out += "  unresolved foreign externals (duct tape work list):\n"
		for _, n := range names {
			out += fmt.Sprintf("    %s: %v\n", n, img.unresolved[n])
		}
	}
	return out
}
