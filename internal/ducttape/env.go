package ducttape

import (
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Env is the duct tape zone's runtime: implementations of the foreign
// kernel's internal APIs (XNU's lck_mtx_*, kalloc, wait/wakeup, current
// task) expressed in terms of domestic kernel primitives. Foreign
// subsystems compiled via duct tape (internal/xnu, internal/iokit) call
// only this surface — never the domestic kernel directly — which is the
// zone discipline Link enforces statically.
type Env struct {
	k *kernel.Kernel
	// allocated tracks kalloc'd bytes (leak diagnostics).
	allocated int64
	// lockCost and allocCost model the shim overhead of translating the
	// foreign primitive onto the domestic one.
	lockCost  time.Duration
	allocCost time.Duration
}

// NewEnv builds the adaptation runtime for a kernel.
func NewEnv(k *kernel.Kernel) *Env {
	cpu := k.Device().CPU
	return &Env{
		k:         k,
		lockCost:  cpu.Cycles(26),
		allocCost: cpu.Cycles(130),
	}
}

// Kernel exposes the domestic kernel to duct-tape-zone code (only — the
// foreign zone must not touch it; Go has no zone enforcement at runtime,
// so the Link-checked unit graph in internal/xnu documents compliance).
func (e *Env) Kernel() *kernel.Kernel { return e.k }

// Kalloc models XNU's kalloc: accounted allocation in the domestic kernel
// heap (kmalloc underneath).
func (e *Env) Kalloc(t *kernel.Thread, size int) []byte {
	t.Charge(e.allocCost)
	e.allocated += int64(size)
	return make([]byte, size)
}

// Kfree models XNU's kfree.
func (e *Env) Kfree(t *kernel.Thread, buf []byte) {
	t.Charge(e.allocCost / 2)
	e.allocated -= int64(len(buf))
}

// AllocatedBytes reports outstanding kalloc memory.
func (e *Env) AllocatedBytes() int64 { return e.allocated }

// CurrentTask maps XNU's current_task() onto the domestic process.
func (e *Env) CurrentTask(t *kernel.Thread) *kernel.Task { return t.Task() }

// LckMtx is XNU's lck_mtx_t adapted onto domestic kernel sleeping locks.
// With the simulator's one-runnable-at-a-time execution the lock state
// machine is simple, but the block/wakeup path is real: contended lockers
// park on a wait queue and are woken FIFO.
type LckMtx struct {
	env    *Env
	name   string
	locked bool
	owner  *kernel.Thread
	waitq  *sim.WaitQueue
}

// NewLckMtx allocates a mutex (lck_mtx_alloc_init).
func (e *Env) NewLckMtx(name string) *LckMtx {
	return &LckMtx{env: e, name: name, waitq: sim.NewWaitQueue("lck_mtx:" + name)}
}

// Lock is lck_mtx_lock.
func (m *LckMtx) Lock(t *kernel.Thread) {
	t.Charge(m.env.lockCost)
	for m.locked {
		//lint:allow waketag: lck_mtx_lock is uninterruptible; the loop re-checks ownership before proceeding
		m.waitq.Wait(t.Proc())
	}
	m.locked = true
	m.owner = t
}

// Unlock is lck_mtx_unlock.
func (m *LckMtx) Unlock(t *kernel.Thread) {
	if !m.locked || m.owner != t {
		panic(fmt.Sprintf("ducttape: unlock of %s by non-owner", m.name))
	}
	t.Charge(m.env.lockCost)
	m.locked = false
	m.owner = nil
	m.waitq.WakeOne(t.Proc(), sim.WakeNormal)
}

// TryLock is lck_mtx_try_lock.
func (m *LckMtx) TryLock(t *kernel.Thread) bool {
	t.Charge(m.env.lockCost)
	if m.locked {
		return false
	}
	m.locked = true
	m.owner = t
	return true
}

// Locked reports the lock state (assertions).
func (m *LckMtx) Locked() bool { return m.locked }

// Semaphore is XNU's semaphore_t adapted onto domestic primitives.
type Semaphore struct {
	env   *Env
	count int
	waitq *sim.WaitQueue
}

// NewSemaphore is semaphore_create.
func (e *Env) NewSemaphore(name string, value int) *Semaphore {
	return &Semaphore{env: e, count: value, waitq: sim.NewWaitQueue("sem:" + name)}
}

// Wait is semaphore_wait; returns false if interrupted.
func (s *Semaphore) Wait(t *kernel.Thread) bool {
	t.Charge(s.env.lockCost)
	for s.count == 0 {
		if tag := s.waitq.Wait(t.Proc()); tag == sim.WakeInterrupted {
			return false
		}
	}
	s.count--
	return true
}

// WaitTimeout is semaphore_timedwait; reports (interrupted, timedOut).
func (s *Semaphore) WaitTimeout(t *kernel.Thread, d time.Duration) (bool, bool) {
	t.Charge(s.env.lockCost)
	deadline := t.Now() + d
	for s.count == 0 {
		remain := deadline - t.Now()
		if remain <= 0 {
			return false, true
		}
		tag, timedOut := s.waitq.WaitTimeout(t.Proc(), remain)
		if tag == sim.WakeInterrupted {
			return true, false
		}
		if timedOut {
			return false, true
		}
	}
	s.count--
	return false, false
}

// Signal is semaphore_signal.
func (s *Semaphore) Signal(t *kernel.Thread) {
	t.Charge(s.env.lockCost)
	s.count++
	s.waitq.WakeOne(t.Proc(), sim.WakeNormal)
}

// Count exposes the current value (tests).
func (s *Semaphore) Count() int { return s.count }

// WaitEvent adapts XNU's assert_wait/thread_block/thread_wakeup triple onto
// a domestic wait queue keyed by an arbitrary event pointer.
type WaitEvent struct {
	env    *Env
	queues map[any]*sim.WaitQueue
}

// NewWaitEvent builds an event table (one per subsystem, as XNU hashes
// events globally).
func (e *Env) NewWaitEvent() *WaitEvent {
	return &WaitEvent{env: e, queues: make(map[any]*sim.WaitQueue)}
}

func (w *WaitEvent) queue(event any) *sim.WaitQueue {
	q, ok := w.queues[event]
	if !ok {
		q = sim.NewWaitQueue("event")
		w.queues[event] = q
	}
	return q
}

// Block is assert_wait + thread_block: park until Wakeup(event). Returns
// false when interrupted.
func (w *WaitEvent) Block(t *kernel.Thread, event any) bool {
	return w.queue(event).Wait(t.Proc()) != sim.WakeInterrupted
}

// BlockTimeout bounds the wait; reports (interrupted, timedOut).
func (w *WaitEvent) BlockTimeout(t *kernel.Thread, event any, d time.Duration) (bool, bool) {
	tag, timedOut := w.queue(event).WaitTimeout(t.Proc(), d)
	return tag == sim.WakeInterrupted, timedOut
}

// Wakeup is thread_wakeup: wake every thread blocked on event.
func (w *WaitEvent) Wakeup(t *kernel.Thread, event any) int {
	q, ok := w.queues[event]
	if !ok {
		return 0
	}
	return q.WakeAll(t.Proc(), sim.WakeNormal)
}

// WakeupOne is thread_wakeup_one.
func (w *WaitEvent) WakeupOne(t *kernel.Thread, event any) bool {
	q, ok := w.queues[event]
	if !ok {
		return false
	}
	return q.WakeOne(t.Proc(), sim.WakeNormal) != nil
}

// Queue is XNU's queue.h circular doubly-linked list, the list API the
// foreign code is written against. (XNU's Mach IPC uses recursive queuing
// structures that had to be rewritten for Linux — see internal/xnu's
// message queues, which use this flat queue instead.)
//
// The backing is a slice with an explicit head index rather than the old
// reslice-on-dequeue (items = items[1:]): resliced capacity is gone
// forever, so a steady Enqueue/Dequeue rhythm — every Mach message on
// every port — reallocated continually. With the head index the buffer
// reaches steady state and ping-pong traffic allocates nothing.
type Queue[T any] struct {
	items []T
	head  int
}

// Enqueue is queue_enter (tail insert).
//
//hot:noalloc
func (q *Queue[T]) Enqueue(v T) {
	if q.head > 0 && len(q.items) == cap(q.items) {
		// Compact the consumed prefix instead of growing.
		n := copy(q.items, q.items[q.head:])
		clearTail(q.items, n)
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, v) // amortized growth to the queue's steady-state depth
}

// Dequeue is dequeue_head.
//
//hot:noalloc
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero // release for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v, true
}

// Peek returns the head without removing it.
//
//hot:noalloc
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	return q.items[q.head], true
}

// Len is queue_empty's complement.
//
//hot:noalloc
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Remove deletes the first element for which match returns true.
func (q *Queue[T]) Remove(match func(T) bool) bool {
	for i := q.head; i < len(q.items); i++ {
		if match(q.items[i]) {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// Each iterates the queue in order.
func (q *Queue[T]) Each(fn func(T)) {
	for _, v := range q.items[q.head:] {
		fn(v)
	}
}

// clearTail zeroes the slots at and beyond n so dequeued references do not
// keep their objects alive.
func clearTail[T any](items []T, n int) {
	var zero T
	for i := n; i < len(items); i++ {
		items[i] = zero
	}
}
