package ducttape

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func TestLinkBasicZones(t *testing.T) {
	img, err := Link([]Unit{
		{Name: "linux/mutex.c", Zone: Domestic, Defines: []string{"mutex_lock"}},
		{Name: "tape/shims.c", Zone: Tape, Defines: []string{"lck_mtx_lock"}, References: []string{"mutex_lock"}},
		{Name: "xnu/ipc.c", Zone: Foreign, Defines: []string{"ipc_port_alloc"}, References: []string{"lck_mtx_lock"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	u, ok := img.Resolve("ipc_port_alloc")
	if !ok || u.Name != "xnu/ipc.c" {
		t.Fatalf("resolve: %v %v", u, ok)
	}
}

func TestLinkForeignCannotSeeDomestic(t *testing.T) {
	_, err := Link([]Unit{
		{Name: "linux/mutex.c", Zone: Domestic, Defines: []string{"mutex_lock"}},
		{Name: "xnu/ipc.c", Zone: Foreign, References: []string{"mutex_lock"}},
	})
	zv, ok := err.(*ErrZoneViolation)
	if !ok {
		t.Fatalf("err = %v, want ErrZoneViolation", err)
	}
	if zv.From != Foreign || zv.To != Domestic || zv.Symbol != "mutex_lock" {
		t.Fatalf("violation = %+v", zv)
	}
}

func TestLinkDomesticCannotSeeForeign(t *testing.T) {
	_, err := Link([]Unit{
		{Name: "xnu/ipc.c", Zone: Foreign, Defines: []string{"ipc_port_alloc"}},
		{Name: "linux/driver.c", Zone: Domestic, References: []string{"ipc_port_alloc"}},
	})
	if _, ok := err.(*ErrZoneViolation); !ok {
		t.Fatalf("err = %v, want ErrZoneViolation", err)
	}
}

func TestLinkTapeSeesBoth(t *testing.T) {
	_, err := Link([]Unit{
		{Name: "linux/mutex.c", Zone: Domestic, Defines: []string{"mutex_lock"}},
		{Name: "xnu/ipc.c", Zone: Foreign, Defines: []string{"ipc_port_alloc"}},
		{Name: "tape/glue.c", Zone: Tape, References: []string{"mutex_lock", "ipc_port_alloc"}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLinkConflictRemapped(t *testing.T) {
	img, err := Link([]Unit{
		{Name: "linux/panic.c", Zone: Domestic, Defines: []string{"panic"}},
		{Name: "xnu/debug.c", Zone: Foreign, Defines: []string{"panic"}},
		{Name: "xnu/user.c", Zone: Foreign, References: []string{"panic"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	remaps := img.Remaps()
	if len(remaps) != 1 || remaps[0].Symbol != "panic" || remaps[0].NewName != "xnu_panic" {
		t.Fatalf("remaps = %+v", remaps)
	}
	// Foreign view of "panic" resolves to the remapped foreign symbol.
	u, ok := img.Resolve("xnu_panic")
	if !ok || u.Name != "xnu/debug.c" {
		t.Fatalf("xnu_panic resolves to %v", u)
	}
	// Domestic symbol untouched.
	u, _ = img.Resolve("panic")
	if u.Name != "linux/panic.c" {
		t.Fatalf("panic resolves to %v", u)
	}
}

func TestLinkDuplicateSameZone(t *testing.T) {
	_, err := Link([]Unit{
		{Name: "xnu/a.c", Zone: Foreign, Defines: []string{"f"}},
		{Name: "xnu/b.c", Zone: Foreign, Defines: []string{"f"}},
	})
	if _, ok := err.(*ErrDuplicate); !ok {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	_, err = Link([]Unit{
		{Name: "linux/a.c", Zone: Domestic, Defines: []string{"g"}},
		{Name: "tape/b.c", Zone: Tape, Defines: []string{"g"}},
	})
	if _, ok := err.(*ErrDuplicate); !ok {
		t.Fatalf("domestic/tape dup: err = %v, want ErrDuplicate", err)
	}
}

func TestLinkUnresolvedForeignIsWorkList(t *testing.T) {
	img, err := Link([]Unit{
		{Name: "xnu/iokit.c", Zone: Foreign, References: []string{"IODMAController_init"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := img.Unresolved()
	if len(wl["xnu/iokit.c"]) != 1 || wl["xnu/iokit.c"][0] != "IODMAController_init" {
		t.Fatalf("work list = %v", wl)
	}
}

func TestLinkUnresolvedDomesticIsError(t *testing.T) {
	_, err := Link([]Unit{
		{Name: "linux/a.c", Zone: Domestic, References: []string{"ghost"}},
	})
	if err == nil {
		t.Fatal("dangling domestic reference must fail")
	}
}

func TestReportContents(t *testing.T) {
	img, _ := Link([]Unit{
		{Name: "linux/panic.c", Zone: Domestic, Defines: []string{"panic"}},
		{Name: "xnu/debug.c", Zone: Foreign, Defines: []string{"panic"}},
	})
	r := img.Report()
	for _, want := range []string{"2 units", "panic -> xnu_panic", "1 domestic, 1 foreign"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

// envHarness boots a minimal kernel for adaptation-layer tests.
func envHarness(t *testing.T) (*sim.Sim, *kernel.Kernel, *Env) {
	t.Helper()
	s := sim.New()
	k, err := kernel.New(s, kernel.Config{
		Profile: kernel.ProfileCider, Device: hw.Nexus7(),
		Root: vfs.New(), Registry: prog.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, k, NewEnv(k)
}

// spawnThread creates a bare kernel thread for tests via StartProcess on a
// registered trivial binary is overkill; instead run bodies as raw sim
// procs attached to threads through SpawnThread of a root process.
func runThreads(t *testing.T, s *sim.Sim, k *kernel.Kernel, bodies ...func(*kernel.Thread)) {
	t.Helper()
	reg := k.Registry()
	fs := k.Root().(*vfs.FS)
	key := "dt-harness"
	reg.MustRegister(key, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		done := sim.NewWaitQueue("harness-join")
		remaining := len(bodies)
		for i, body := range bodies {
			b := body
			_ = i
			th.SpawnThread("w", func(wt *kernel.Thread) {
				b(wt)
				remaining--
				if remaining == 0 {
					done.WakeAll(wt.Proc(), sim.WakeNormal)
				}
			})
		}
		if remaining > 0 {
			done.Wait(th.Proc())
		}
		return 0
	})
	bin := testELF(t, key)
	if err := fs.WriteFile("/bin/harness", bin); err != nil {
		t.Fatal(err)
	}
	k.RegisterBinFmt(&kernel.ELFLoader{})
	if _, err := k.StartProcess("/bin/harness", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func testELF(t *testing.T, key string) []byte {
	t.Helper()
	b, err := prog.StaticELF(key)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestLckMtxMutualExclusion(t *testing.T) {
	s, k, env := envHarness(t)
	m := env.NewLckMtx("test")
	inside := 0
	maxInside := 0
	body := func(th *kernel.Thread) {
		for i := 0; i < 10; i++ {
			m.Lock(th)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			th.Charge(time.Microsecond)
			inside--
			m.Unlock(th)
		}
	}
	runThreads(t, s, k, body, body, body)
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1", maxInside)
	}
}

func TestLckMtxTryLock(t *testing.T) {
	s, k, env := envHarness(t)
	m := env.NewLckMtx("try")
	var first, second bool
	runThreads(t, s, k, func(th *kernel.Thread) {
		first = m.TryLock(th)
		second = m.TryLock(th)
		m.Unlock(th)
	})
	if !first || second {
		t.Fatalf("trylock = %v/%v, want true/false", first, second)
	}
}

func TestSemaphoreBlocksAndSignals(t *testing.T) {
	s, k, env := envHarness(t)
	sem := env.NewSemaphore("s", 0)
	var waitedUntil time.Duration
	runThreads(t, s, k,
		func(th *kernel.Thread) {
			sem.Wait(th)
			waitedUntil = th.Now()
		},
		func(th *kernel.Thread) {
			th.Charge(3 * time.Millisecond)
			sem.Signal(th)
		},
	)
	if waitedUntil < 3*time.Millisecond {
		t.Fatalf("waiter resumed at %v, before signal", waitedUntil)
	}
}

func TestSemaphoreTimeout(t *testing.T) {
	s, k, env := envHarness(t)
	sem := env.NewSemaphore("s", 0)
	var timedOut bool
	runThreads(t, s, k, func(th *kernel.Thread) {
		_, timedOut = sem.WaitTimeout(th, 2*time.Millisecond)
	})
	if !timedOut {
		t.Fatal("expected timeout")
	}
}

func TestWaitEventBlockWakeup(t *testing.T) {
	s, k, env := envHarness(t)
	we := env.NewWaitEvent()
	woken := 0
	runThreads(t, s, k,
		func(th *kernel.Thread) { we.Block(th, "evt"); woken++ },
		func(th *kernel.Thread) { we.Block(th, "evt"); woken++ },
		func(th *kernel.Thread) {
			th.Charge(time.Millisecond)
			if n := we.Wakeup(th, "evt"); n != 2 {
				t.Errorf("Wakeup woke %d, want 2", n)
			}
		},
	)
	if woken != 2 {
		t.Fatalf("woken = %d", woken)
	}
}

func TestKallocAccounting(t *testing.T) {
	s, k, env := envHarness(t)
	runThreads(t, s, k, func(th *kernel.Thread) {
		buf := env.Kalloc(th, 4096)
		if env.AllocatedBytes() != 4096 {
			t.Errorf("allocated = %d", env.AllocatedBytes())
		}
		env.Kfree(th, buf)
	})
	if env.AllocatedBytes() != 0 {
		t.Fatalf("leak: %d bytes", env.AllocatedBytes())
	}
}

func TestQueueSemantics(t *testing.T) {
	var q Queue[int]
	q.Enqueue(1)
	q.Enqueue(2)
	q.Enqueue(3)
	if v, _ := q.Peek(); v != 1 {
		t.Fatalf("peek = %d", v)
	}
	if !q.Remove(func(v int) bool { return v == 2 }) {
		t.Fatal("remove failed")
	}
	if v, _ := q.Dequeue(); v != 1 {
		t.Fatal("fifo broken")
	}
	if v, _ := q.Dequeue(); v != 3 {
		t.Fatal("remove did not delete middle")
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty dequeue should fail")
	}
	sum := 0
	q.Enqueue(5)
	q.Each(func(v int) { sum += v })
	if sum != 5 {
		t.Fatalf("each sum = %d", sum)
	}
}
