package replay

// MinimizeChoices shrinks a failing schedule's non-canonical choice log
// to a shorter one that still reproduces the failure, using the same
// greedy delta-debug shape as internal/diffcheck's program minimizer:
// sweep back-to-front reverting one choice at a time to canonical, keep
// the removal if reproduces still reports the failure, and repeat until
// a full sweep removes nothing or the trial budget runs out.
//
// reproduces re-executes the cell under the trial choice log and
// reports whether the original failure class still occurs. Trials that
// diverge from the recorded execution are expected — the Replayer
// clamps out-of-range choices — and simply return false.
//
// The result is a copy; choices is not mutated.
func MinimizeChoices(choices []Choice, budget int, reproduces func([]Choice) bool) []Choice {
	cur := append([]Choice(nil), choices...)
	if budget <= 0 {
		budget = 64
	}
	for {
		shrunk := false
		for i := len(cur) - 1; i >= 0 && budget > 0; i-- {
			trial := make([]Choice, 0, len(cur)-1)
			trial = append(trial, cur[:i]...)
			trial = append(trial, cur[i+1:]...)
			budget--
			if reproduces(trial) {
				cur = trial
				shrunk = true
			}
		}
		if !shrunk || budget <= 0 {
			return cur
		}
	}
}
