package replay

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

// TestArtifactRoundTripByteEqual pins the canonical encoding:
// encode -> decode -> encode must be byte-identical, for both kinds and
// with every optional field populated.
func TestArtifactRoundTripByteEqual(t *testing.T) {
	arts := []*Artifact{
		{
			Version:  ArtifactVersion,
			Kind:     KindSoak,
			Schedule: "daemon-crash",
			Plan: &fault.Plan{Name: "daemon-crash", Seed: 0x5eed0006, Rules: []fault.Rule{
				{Op: fault.OpCrash, Match: "/sbin/notifyd", Nth: 4, Errno: 11},
				{Op: fault.OpPark, Match: "waitq:pipe", Every: 3, Delay: 2 * time.Millisecond},
			}},
			Services:      true,
			Cell:          &CellRef{Bench: "lmbench", Test: "null syscall", Config: "cider-ios"},
			ExploreSeed:   7,
			Decisions:     []Choice{{Pos: 3, Index: 1}, {Pos: 9, Index: 2}},
			DecisionCount: 42,
			Note:          "deadlock",
		},
		{
			Version:       ArtifactVersion,
			Kind:          KindDiffcheck,
			Seed:          0x2a,
			Decisions:     []Choice{{Pos: 0, Index: 1}},
			DecisionsIOS:  []Choice{{Pos: 5, Index: 3}},
			DecisionCount: 12,
		},
	}
	for _, a := range arts {
		a.SetDigest(0xdeadbeefcafe0042)
		b1, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(b1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := dec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s artifact not canonical:\n%s\nvs\n%s", a.Kind, b1, b2)
		}
		if v, err := dec.DigestValue(); err != nil || v != 0xdeadbeefcafe0042 {
			t.Fatalf("digest round trip: %x, %v", v, err)
		}
	}
}

// TestDecodeRejects pins version and kind validation.
func TestDecodeRejects(t *testing.T) {
	if _, err := Decode([]byte(`{"version":99,"kind":"soak"}`)); err == nil {
		t.Error("unknown version accepted")
	}
	if _, err := Decode([]byte(`{"version":1,"kind":"fuzz"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestRecorderCanonicalIsEmpty pins the sparse-log invariant: recording
// the canonical schedule (nil inner) logs no choices and always answers
// 0, so recording cannot perturb an execution.
func TestRecorderCanonicalIsEmpty(t *testing.T) {
	r := NewRecorder(nil)
	for i := 0; i < 100; i++ {
		if got := r.Decide(sim.DecisionWake, "waitq:pipe", 2+i%3, 0); got != 0 {
			t.Fatalf("canonical recorder chose %d", got)
		}
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d, want 100", r.Count())
	}
	if len(r.Choices()) != 0 {
		t.Fatalf("canonical run logged %d choices", len(r.Choices()))
	}
}

// TestRecorderClampsInner ensures a misbehaving inner policy cannot
// push an out-of-range index into the simulator.
func TestRecorderClampsInner(t *testing.T) {
	r := NewRecorder(deciderFunc(func(int) int { return 99 }))
	if got := r.Decide(sim.DecisionNext, "", 3, 0); got != 2 {
		t.Fatalf("clamp: got %d, want 2", got)
	}
	if ch := r.Choices(); len(ch) != 1 || ch[0] != (Choice{Pos: 0, Index: 2}) {
		t.Fatalf("choices = %v", ch)
	}
}

type deciderFunc func(n int) int

func (f deciderFunc) Decide(_ sim.DecisionKind, _ string, n int, _ time.Duration) int {
	return f(n)
}

// TestExplorerDeterministic pins the explorer as a pure function of
// (seed, consultation order), and that distinct seeds actually explore
// distinct schedules.
func TestExplorerDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		e := &Explorer{Seed: seed}
		out := make([]int, 200)
		for i := range out {
			out[i] = e.Decide(sim.DecisionKind(i%int(sim.NumDecisionKinds)), "w", 2+i%4, 0)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 explored identical schedules")
	}
	// The explorer must actually perturb: over 200 decisions with n>=2,
	// a policy that always answers 0 is not exploring.
	nonzero := 0
	for _, v := range a {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("explorer never took a non-canonical choice")
	}
}

// TestReplayerReplaysAndClamps pins positional replay and the
// divergence clamp.
func TestReplayerReplaysAndClamps(t *testing.T) {
	r := NewReplayer([]Choice{{Pos: 1, Index: 1}, {Pos: 2, Index: 7}})
	if got := r.Decide(sim.DecisionWake, "", 3, 0); got != 0 {
		t.Fatalf("pos 0: got %d, want canonical 0", got)
	}
	if got := r.Decide(sim.DecisionWake, "", 3, 0); got != 1 {
		t.Fatalf("pos 1: got %d, want 1", got)
	}
	// Logged index 7 is out of range for n=3: clamp, don't panic.
	if got := r.Decide(sim.DecisionWake, "", 3, 0); got != 2 {
		t.Fatalf("pos 2: got %d, want clamped 2", got)
	}
}

// TestRecordReplayIdentity: recording an explored run and replaying its
// choice log must reproduce the exact same decision sequence.
func TestRecordReplayIdentity(t *testing.T) {
	rec := NewRecorder(&Explorer{Seed: 3})
	want := make([]int, 300)
	for i := range want {
		want[i] = rec.Decide(sim.DecisionWake, "w", 2+i%5, 0)
	}
	rep := NewReplayer(rec.Choices())
	for i := range want {
		if got := rep.Decide(sim.DecisionWake, "w", 2+i%5, 0); got != want[i] {
			t.Fatalf("decision %d: replayed %d, recorded %d", i, got, want[i])
		}
	}
}

// TestMinimizeChoices pins the delta-debug shape: only load-bearing
// choices survive.
func TestMinimizeChoices(t *testing.T) {
	in := []Choice{{Pos: 1, Index: 1}, {Pos: 4, Index: 2}, {Pos: 9, Index: 1}, {Pos: 12, Index: 3}}
	// Failure reproduces iff positions 4 and 12 are both present.
	repro := func(c []Choice) bool {
		has := map[uint64]bool{}
		for _, ch := range c {
			has[ch.Pos] = true
		}
		return has[4] && has[12]
	}
	min := MinimizeChoices(in, 0, repro)
	if len(min) != 2 || min[0].Pos != 4 || min[1].Pos != 12 {
		t.Fatalf("minimized to %v, want positions 4 and 12", min)
	}
	// A non-reproducing input comes back unchanged (nothing to shrink to).
	same := MinimizeChoices(in, 0, func([]Choice) bool { return false })
	if len(same) != len(in) {
		t.Fatalf("non-reproducing input shrank to %v", same)
	}
}

// TestRecentDecisionsRing pins the deadlock-report feed: bounded,
// oldest-first, non-canonical choices marked.
func TestRecentDecisionsRing(t *testing.T) {
	r := NewRecorder(deciderFunc(func(n int) int { return 1 }))
	for i := 0; i < RecentLimit+5; i++ {
		r.Decide(sim.DecisionWake, "waitq:port", 2, time.Duration(i))
	}
	lines := r.RecentDecisions()
	if len(lines) != RecentLimit {
		t.Fatalf("ring returned %d lines, want %d", len(lines), RecentLimit)
	}
	if !strings.HasPrefix(lines[0], "#5 ") {
		t.Fatalf("oldest line = %q, want #5 first", lines[0])
	}
	if !strings.Contains(lines[0], "[non-canonical]") {
		t.Fatalf("non-canonical choice unmarked: %q", lines[0])
	}
}
