// Package replay implements record/replay of scheduler decisions and
// DPOR-lite schedule exploration (the ROADMAP's DiOS-style
// reproducibility item).
//
// The simulator is deterministic given (seed, fault plan, workload)
// except at genuinely ambiguous points — equal-virtual-time picks in
// Sim.next, wake-order choices in WaitQueue, equal-clock
// continue-vs-yield ties — where the canonical (clock, id) / FIFO
// tie-break is one legal choice among several (see sim.DecisionKind).
// This package provides the three sim.Decider policies that make those
// points a first-class artifact:
//
//   - Recorder logs the non-canonical choices an execution makes (none,
//     when recording the canonical schedule) so the run can be replayed.
//   - Explorer perturbs every ambiguous point pseudo-randomly from a
//     seed, exercising wake orders and preemption interleavings the
//     canonical schedule never takes.
//   - Replayer replays a recorded choice sequence positionally.
//
// An Artifact (artifact.go) bundles a choice sequence with everything
// else a cell needs to re-execute bit-identically in isolation: the
// fault plan, the cell reference, and the recorded digest.
package replay

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Choice records one non-canonical decision: at the Pos'th consulted
// decision point (0-based, in execution order), alternative Index was
// taken instead of the canonical 0. Canonical decisions are implicit,
// so the canonical schedule's choice log is empty and a lightly
// perturbed schedule's log is proportional to the perturbation — which
// is what makes delta-debug minimization over the log meaningful.
type Choice struct {
	Pos   uint64 `json:"pos"`
	Index int    `json:"index"`
}

// RecentLimit bounds the Recorder's recent-decision ring (the "last K
// decisions" a deadlock report appends).
const RecentLimit = 16

// recentEntry is one formatted-on-demand ring slot.
type recentEntry struct {
	kind   sim.DecisionKind
	where  string
	n      int
	chosen int
	at     time.Duration
}

// Recorder is a sim.Decider that delegates each decision to an inner
// policy (or takes the canonical choice when inner is nil) and records
// the outcome: a sparse log of non-canonical choices, the total
// decision count, and a bounded ring of recent decisions for deadlock
// diagnostics.
type Recorder struct {
	inner   sim.Decider
	count   uint64
	choices []Choice
	recent  [RecentLimit]recentEntry
	seen    int
}

// NewRecorder wraps inner (nil = record the canonical schedule).
func NewRecorder(inner sim.Decider) *Recorder {
	return &Recorder{inner: inner}
}

// Decide implements sim.Decider.
func (r *Recorder) Decide(kind sim.DecisionKind, where string, n int, at time.Duration) int {
	idx := 0
	if r.inner != nil {
		idx = r.inner.Decide(kind, where, n, at)
		if idx < 0 || idx >= n {
			idx = n - 1
		}
	}
	if idx != 0 {
		r.choices = append(r.choices, Choice{Pos: r.count, Index: idx})
	}
	r.recent[r.seen%RecentLimit] = recentEntry{kind: kind, where: where, n: n, chosen: idx, at: at}
	r.seen++
	r.count++
	return idx
}

// Count returns how many decision points were consulted.
func (r *Recorder) Count() uint64 { return r.count }

// Choices returns the recorded non-canonical choices, oldest first. The
// returned slice is the Recorder's own; copy before mutating.
func (r *Recorder) Choices() []Choice { return r.choices }

// RecentDecisions implements sim.DecisionLister: the last RecentLimit
// decisions, oldest first, formatted one per line.
func (r *Recorder) RecentDecisions() []string {
	k := r.seen
	if k > RecentLimit {
		k = RecentLimit
	}
	out := make([]string, 0, k)
	for i := r.seen - k; i < r.seen; i++ {
		e := r.recent[i%RecentLimit]
		mark := ""
		if e.chosen != 0 {
			mark = " [non-canonical]"
		}
		out = append(out, fmt.Sprintf("#%d %s at %v %q: chose %d of %d%s",
			i, e.kind, e.at, e.where, e.chosen, e.n, mark))
	}
	return out
}

// Explorer is a sim.Decider that perturbs every ambiguous point
// pseudo-randomly: decision i takes alternative mix(Seed, i, kind) % n.
// It is a pure function of (Seed, consultation order), so the same seed
// against the same workload yields the same perturbed schedule — an
// explored run is as replayable as a canonical one, and wrapping an
// Explorer in a Recorder captures its choices as an artifact.
type Explorer struct {
	// Seed selects the perturbation.
	Seed uint64
	n    uint64
}

// Decide implements sim.Decider.
func (e *Explorer) Decide(kind sim.DecisionKind, where string, n int, at time.Duration) int {
	e.n++
	return int(mix(e.Seed, e.n, uint64(kind)) % uint64(n))
}

// Replayer is a sim.Decider that replays a recorded choice sequence
// positionally: decision i takes the logged index for position i, or
// the canonical 0 when no choice was logged. Out-of-range indices —
// possible only when the replayed execution has diverged from the
// recording, e.g. during minimization trials that deliberately drop
// choices — clamp to the last alternative rather than panicking, so a
// divergent trial still runs to completion and simply fails the digest
// comparison.
type Replayer struct {
	count   uint64
	choices map[uint64]int
}

// NewReplayer builds a Replayer for a choice sequence.
func NewReplayer(choices []Choice) *Replayer {
	m := make(map[uint64]int, len(choices))
	for _, c := range choices {
		m[c.Pos] = c.Index
	}
	return &Replayer{choices: m}
}

// Decide implements sim.Decider.
func (r *Replayer) Decide(kind sim.DecisionKind, where string, n int, at time.Duration) int {
	idx := r.choices[r.count]
	r.count++
	if idx < 0 || idx >= n {
		idx = n - 1
	}
	return idx
}

// mix hashes three words into one (splitmix64 over a fnv-style fold;
// the same idiom as internal/fault's decision function).
func mix(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
