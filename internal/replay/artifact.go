package replay

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"repro/internal/fault"
)

// ArtifactVersion is the current artifact format version.
const ArtifactVersion = 1

// Artifact kinds.
const (
	// KindSoak replays one soak cell (a benchmark or mach-IPC cell under
	// a fault schedule).
	KindSoak = "soak"
	// KindDiffcheck replays one diffcheck seed (the same generated
	// program under both personas).
	KindDiffcheck = "diffcheck"
)

// CellRef identifies one soak cell within a schedule.
type CellRef struct {
	// Bench is the battery: "lmbench", "passmark", or "mach".
	Bench string `json:"bench"`
	// Test is the benchmark test name (empty for the mach cell).
	Test string `json:"test,omitempty"`
	// Config is the configuration name (empty for the mach cell).
	Config string `json:"config,omitempty"`
}

func (c CellRef) String() string {
	s := c.Bench
	if c.Config != "" {
		s += "/" + c.Config
	}
	if c.Test != "" {
		s += "/" + c.Test
	}
	return s
}

// Artifact is a self-contained, one-command repro of a single cell
// execution: everything the run depended on (fault plan, cell identity,
// explore provenance, scheduler choice log) plus the digest the run
// produced. `cider replay <artifact>` re-executes the cell in isolation
// and asserts digest equality.
type Artifact struct {
	// Version is the artifact format version (ArtifactVersion).
	Version int `json:"version"`
	// Kind is KindSoak or KindDiffcheck.
	Kind string `json:"kind"`

	// Schedule is the soak schedule name (KindSoak).
	Schedule string `json:"schedule,omitempty"`
	// Plan is the exact fault plan the run used (KindSoak; diffcheck
	// plans are derived from Seed).
	Plan *fault.Plan `json:"plan,omitempty"`
	// Services marks a soak cell booted with the service tree.
	Services bool `json:"services,omitempty"`
	// Pressure marks a soak cell booted with the memory-balloon workloads.
	Pressure bool `json:"pressure,omitempty"`
	// FDHog marks a soak cell booted with the descriptor-exhaustion apps.
	FDHog bool `json:"fd_hog,omitempty"`
	// Cell identifies the soak cell (KindSoak).
	Cell *CellRef `json:"cell,omitempty"`

	// Seed is the diffcheck program seed (KindDiffcheck); program and
	// plan are regenerated from it.
	Seed uint64 `json:"seed,omitempty"`

	// ExploreSeed records which explorer perturbation produced this run;
	// 0 for a canonical recording. Replay does not consult it — the
	// Decisions log is authoritative — but minimization and reports do.
	ExploreSeed uint64 `json:"explore_seed,omitempty"`

	// Decisions is the sparse non-canonical choice log of the run (for
	// KindDiffcheck, of the android-persona cell).
	Decisions []Choice `json:"decisions,omitempty"`
	// DecisionsIOS is the iOS-persona cell's choice log (KindDiffcheck).
	DecisionsIOS []Choice `json:"decisions_ios,omitempty"`
	// DecisionCount is how many decision points the run consulted
	// (canonical ones included) — a quick divergence telltale on replay.
	DecisionCount uint64 `json:"decision_count,omitempty"`

	// Digest is the recorded cell digest, as 16 hex digits; replay must
	// reproduce it bit-identically.
	Digest string `json:"digest,omitempty"`
	// Note carries the failure finding that triggered emission.
	Note string `json:"note,omitempty"`
}

// SetDigest stores d in the canonical 16-hex-digit form.
func (a *Artifact) SetDigest(d uint64) { a.Digest = fmt.Sprintf("%016x", d) }

// DigestValue parses the recorded digest.
func (a *Artifact) DigestValue() (uint64, error) {
	v, err := strconv.ParseUint(a.Digest, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("replay: bad digest %q: %v", a.Digest, err)
	}
	return v, nil
}

// Encode renders the artifact as indented JSON with a trailing newline.
// Encoding is canonical: Decode followed by Encode is byte-identical.
func (a *Artifact) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses an encoded artifact, rejecting unknown versions.
func Decode(data []byte) (*Artifact, error) {
	a := &Artifact{}
	if err := json.Unmarshal(data, a); err != nil {
		return nil, fmt.Errorf("replay: decode artifact: %v", err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("replay: artifact version %d (want %d)", a.Version, ArtifactVersion)
	}
	switch a.Kind {
	case KindSoak, KindDiffcheck:
	default:
		return nil, fmt.Errorf("replay: unknown artifact kind %q", a.Kind)
	}
	return a, nil
}

// Load reads and decodes an artifact file.
func Load(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteFile encodes the artifact to path (0644).
func (a *Artifact) WriteFile(path string) error {
	b, err := a.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
