// Package gpu simulates the tablet's 3D engine: an asynchronous command
// processor with its own completion clock, fence/sync objects, and a cost
// model driven by the device's hw.GPUModel. It underlies both graphics
// stacks — Android's libGLESv2/SurfaceFlinger and the iPad's native GL —
// and reproduces the paper's fence-synchronization bug (Section 6.3): the
// Cider prototype's GLES library mishandled fences, degrading the
// image-rendering PassMark tests.
package gpu

import (
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// GPU is one simulated graphics engine. The engine runs asynchronously
// from the CPU: submissions accumulate onto a completion clock
// (busyUntil), and only synchronization points (fences, finish, swap)
// stall the calling thread.
type GPU struct {
	model *hw.GPUModel
	// busyUntil is the virtual time at which all submitted work retires.
	busyUntil time.Duration
	// BuggyFences reproduces the Cider prototype's incorrect "fence"
	// synchronization support: every fence wait over-synchronizes,
	// serializing the pipeline (Section 6.3, image rendering).
	BuggyFences bool
	// stats
	draws, fences uint64
	gpuBusy       time.Duration
}

// New creates a GPU from a hardware model.
func New(model *hw.GPUModel) *GPU {
	return &GPU{model: model}
}

// Model returns the hardware description.
func (g *GPU) Model() *hw.GPUModel { return g.model }

// Stats reports (draw calls, fence waits, total busy time).
func (g *GPU) Stats() (uint64, uint64, time.Duration) {
	return g.draws, g.fences, g.gpuBusy
}

// submit appends work to the engine's queue: the CPU pays the command
// submission cost; the GPU clock extends by the work's duration.
func (g *GPU) submit(t *kernel.Thread, work time.Duration) {
	t.Charge(g.model.CmdCost)
	now := t.Now()
	if g.busyUntil < now {
		g.busyUntil = now
	}
	g.busyUntil += work
	g.gpuBusy += work
}

// Command submits a state-change command (no GPU work beyond decode).
func (g *GPU) Command(t *kernel.Thread) {
	g.submit(t, g.model.CmdCost/4)
}

// Draw submits a draw call transforming vertices and filling pixels.
func (g *GPU) Draw(t *kernel.Thread, vertices, pixels int64) {
	g.draws++
	g.submit(t, g.model.VertexTime(vertices)+g.model.FillTime(pixels))
}

// Fill submits a clear/blit of the given pixel count.
func (g *GPU) Fill(t *kernel.Thread, pixels int64) {
	g.submit(t, g.model.FillTime(pixels))
}

// Upload submits a texture upload of n bytes (fill-rate bound path).
func (g *GPU) Upload(t *kernel.Thread, n int64) {
	g.submit(t, g.model.FillTime(n/4))
}

// Fence is a sync object snapshotting the queue tail at creation.
type Fence struct {
	at time.Duration
}

// CreateFence inserts a fence after all currently queued work
// (glFenceSync / EGL_KHR_fence_sync).
func (g *GPU) CreateFence(t *kernel.Thread) *Fence {
	g.submit(t, 0)
	return &Fence{at: g.busyUntil}
}

// WaitFence blocks the calling thread until the fence signals. With
// BuggyFences the wait over-synchronizes: it drains the whole queue and
// pays repeated interrupt latencies — the prototype bug that held back the
// image-rendering results.
func (g *GPU) WaitFence(t *kernel.Thread, f *Fence) {
	g.fences++
	target := f.at
	if g.BuggyFences {
		target = g.busyUntil + 3*g.model.FenceLatency
	}
	waitUntil(t, target)
	t.Charge(g.model.FenceLatency)
}

// Finish drains the queue (glFinish).
func (g *GPU) Finish(t *kernel.Thread) {
	waitUntil(t, g.busyUntil)
	t.Charge(g.model.FenceLatency)
}

// waitUntil stalls the calling thread until the completion clock reaches
// target. A signal (WakeInterrupted) must not report the GPU work as
// retired early, so the wait resumes until the target really is reached.
func waitUntil(t *kernel.Thread, target time.Duration) {
	for now := t.Now(); target > now; now = t.Now() {
		if t.Proc().Sleep(target-now) == sim.WakeInterrupted {
			continue
		}
	}
}

// Present submits the per-frame overhead (swap/scan-out handoff) and
// returns the fence for the frame's completion.
func (g *GPU) Present(t *kernel.Thread) *Fence {
	g.submit(t, g.model.FrameOverhead)
	return &Fence{at: g.busyUntil}
}

// BusyUntil exposes the completion clock (tests).
func (g *GPU) BusyUntil() time.Duration { return g.busyUntil }
