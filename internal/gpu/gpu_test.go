package gpu

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// onThread runs body on a simulated kernel thread.
func onThread(t *testing.T, body func(th *kernel.Thread)) {
	t.Helper()
	s := sim.New()
	reg := prog.NewRegistry()
	fs := vfs.New()
	k, err := kernel.New(s, kernel.Config{
		Profile: kernel.ProfileLinuxVanilla, Device: hw.Nexus7(), Root: fs, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})
	reg.MustRegister("gpu-body", func(c *prog.Call) uint64 {
		body(c.Ctx.(*kernel.Thread))
		return 0
	})
	bin, _ := prog.StaticELF("gpu-body")
	fs.WriteFile("/bin/g", bin)
	k.StartProcess("/bin/g", nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmissionIsAsynchronous(t *testing.T) {
	onThread(t, func(th *kernel.Thread) {
		g := New(hw.Nexus7().GPU)
		before := th.Now()
		g.Draw(th, 1_000_000, 1_000_000) // ~17ms of GPU work
		cpuCost := th.Now() - before
		// The CPU only pays the command submission cost.
		if cpuCost > 100*time.Microsecond {
			t.Fatalf("submission stalled the CPU for %v", cpuCost)
		}
		if g.BusyUntil() < 10*time.Millisecond {
			t.Fatalf("GPU not busy: %v", g.BusyUntil())
		}
	})
}

func TestFinishDrainsQueue(t *testing.T) {
	onThread(t, func(th *kernel.Thread) {
		g := New(hw.Nexus7().GPU)
		g.Draw(th, 1_000_000, 0)
		g.Finish(th)
		if th.Now() < g.Model().VertexTime(1_000_000) {
			t.Fatalf("finish returned before the work retired: %v", th.Now())
		}
	})
}

func TestFenceWaitsOnlyToFencePoint(t *testing.T) {
	onThread(t, func(th *kernel.Thread) {
		g := New(hw.Nexus7().GPU)
		g.Draw(th, 600_000, 0) // ~10ms
		f := g.CreateFence(th)
		g.Draw(th, 6_000_000, 0) // ~100ms more, after the fence
		g.WaitFence(th, f)
		woke := th.Now()
		if woke > 20*time.Millisecond {
			t.Fatalf("fence waited for post-fence work: woke at %v", woke)
		}
		// But Finish must see the rest.
		g.Finish(th)
		if th.Now() < 100*time.Millisecond {
			t.Fatalf("finish missed post-fence work: %v", th.Now())
		}
	})
}

func TestBuggyFencesOverSynchronize(t *testing.T) {
	onThread(t, func(th *kernel.Thread) {
		g := New(hw.Nexus7().GPU)
		g.BuggyFences = true
		g.Draw(th, 600_000, 0)
		f := g.CreateFence(th)
		g.Draw(th, 6_000_000, 0)
		g.WaitFence(th, f)
		if th.Now() < 100*time.Millisecond {
			t.Fatalf("buggy fence should drain everything; woke at %v", th.Now())
		}
	})
}

func TestSignaledFenceDoesNotBlock(t *testing.T) {
	onThread(t, func(th *kernel.Thread) {
		g := New(hw.Nexus7().GPU)
		f := g.CreateFence(th)
		th.Charge(50 * time.Millisecond) // fence signals long ago
		before := th.Now()
		g.WaitFence(th, f)
		if th.Now()-before > time.Millisecond {
			t.Fatal("signaled fence blocked")
		}
	})
}

func TestStatsAndPresent(t *testing.T) {
	onThread(t, func(th *kernel.Thread) {
		g := New(hw.Nexus7().GPU)
		g.Draw(th, 100, 100)
		g.Draw(th, 100, 100)
		f := g.Present(th)
		g.WaitFence(th, f)
		draws, fences, busy := g.Stats()
		if draws != 2 || fences != 1 {
			t.Fatalf("stats = %d draws %d fences", draws, fences)
		}
		if busy < g.Model().FrameOverhead {
			t.Fatalf("busy = %v", busy)
		}
	})
}

func TestUploadAndFillCharges(t *testing.T) {
	onThread(t, func(th *kernel.Thread) {
		g := New(hw.Nexus7().GPU)
		g.Fill(th, 2_000_000)
		g.Upload(th, 4_000_000)
		g.Command(th)
		g.Finish(th)
		// 2M px fill + 1M px-equivalent upload at 2Gpx/s ≈ 1.5ms.
		if th.Now() < time.Millisecond {
			t.Fatalf("GPU work unaccounted: %v", th.Now())
		}
	})
}
