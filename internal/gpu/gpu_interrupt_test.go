package gpu

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Regression test for a wakeup bug found by ciderlint's waketag analyzer:
// WaitFence/Finish discarded the wake tag of their completion sleep, so a
// signal arriving mid-wait made the fence appear signaled while the GPU
// work was still in flight. An interrupted wait must resume until the
// completion clock really is reached.
func TestFenceWaitSurvivesInterrupt(t *testing.T) {
	s := sim.New()
	reg := prog.NewRegistry()
	fs := vfs.New()
	k, err := kernel.New(s, kernel.Config{
		Profile: kernel.ProfileLinuxVanilla, Device: hw.Nexus7(), Root: fs, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})

	var victim *sim.Proc
	var woke, retire time.Duration
	reg.MustRegister("gpu-victim", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		victim = th.Proc()
		g := New(hw.Nexus7().GPU)
		g.Draw(th, 6_000_000, 0) // ~100ms of GPU work
		f := g.CreateFence(th)
		retire = g.BusyUntil()
		g.WaitFence(th, f)
		woke = th.Now()
		return 0
	})
	reg.MustRegister("gpu-killer", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		if th.Proc().Sleep(5*time.Millisecond) != sim.WakeNormal {
			t.Error("killer itself interrupted")
		}
		th.Proc().Wake(victim, sim.WakeInterrupted)
		return 0
	})
	for _, n := range []string{"gpu-victim", "gpu-killer"} {
		bin, err := prog.StaticELF(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("/bin/"+n, bin); err != nil {
			t.Fatal(err)
		}
		if _, err := k.StartProcess("/bin/"+n, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woke < retire {
		t.Fatalf("fence wait returned at %v, before the GPU work retired at %v", woke, retire)
	}
}
