package gpu

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Regression test for a wakeup bug found by ciderlint's waketag analyzer:
// WaitFence/Finish discarded the wake tag of their completion sleep, so a
// signal arriving mid-wait made the fence appear signaled while the GPU
// work was still in flight. An interrupted wait must resume until the
// completion clock really is reached.
//
// The interrupt is delivered by the fault layer (OpPark on the fence
// wait's sleep), not by a dedicated killer process: the injector fires on
// the victim's own park, which both removes the scaffolding and pins the
// interrupt to exactly the wait under test.
func TestFenceWaitSurvivesInterrupt(t *testing.T) {
	s := sim.New()
	reg := prog.NewRegistry()
	fs := vfs.New()
	k, err := kernel.New(s, kernel.Config{
		Profile: kernel.ProfileLinuxVanilla, Device: hw.Nexus7(), Root: fs, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})
	in := fault.NewInjector(fault.Plan{Name: "fence-eintr", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpPark, Match: "sleep", Nth: 1},
	}})
	k.EnableFaults(in)

	var woke, retire time.Duration
	reg.MustRegister("gpu-victim", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		g := New(hw.Nexus7().GPU)
		g.Draw(th, 6_000_000, 0) // ~100ms of GPU work
		f := g.CreateFence(th)
		retire = g.BusyUntil()
		g.WaitFence(th, f)
		woke = th.Now()
		return 0
	})
	bin, err := prog.StaticELF("gpu-victim")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/bin/gpu-victim", bin); err != nil {
		t.Fatal(err)
	}
	if _, err := k.StartProcess("/bin/gpu-victim", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Fired() != 1 {
		t.Fatalf("injector fired %d times, want exactly 1 (the fence wait)", in.Fired())
	}
	if woke < retire {
		t.Fatalf("fence wait returned at %v, before the GPU work retired at %v", woke, retire)
	}
}
