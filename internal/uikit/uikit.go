// Package uikit is a minimal simulated UIKit runtime: the application
// main-loop glue an iOS app's framework stack provides. It wires together
// the pieces Cider supplies — the event socket CiderPress passes down, the
// Mach event port, the eventpump bridge thread, the I/O Kit display query,
// and the diplomatic GL bindings — so app code can be written as a
// delegate with event/gesture/frame callbacks.
package uikit

import (
	"strconv"

	"repro/internal/graphics"
	"repro/internal/input"
	"repro/internal/iokit"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/xnu"
)

// Delegate receives app callbacks.
type Delegate struct {
	// OnLaunch runs once before the event loop, with GL bound.
	OnLaunch func(app *App)
	// OnEvent receives every raw HID event.
	OnEvent func(app *App, e input.HIDEvent)
	// OnGesture receives recognized gestures.
	OnGesture func(app *App, g input.Gesture)
}

// App is the running application context.
type App struct {
	// T is the main thread.
	T *kernel.Thread
	// GL is the bound graphics interface (diplomatic on Cider).
	GL *graphics.GL
	// Ctx is the app's EAGL context handle.
	Ctx uint64
	// Width and Height are the display dimensions from I/O Kit.
	Width, Height int
	// EventPort is the app's Mach event port.
	EventPort xnu.PortName
	// Frames counts presented frames.
	Frames int
}

// Present renders one frame boundary (presentRenderbuffer).
func (a *App) Present() {
	a.GL.Call("_EAGLContextPresentRenderbuffer", a.Ctx)
	a.Frames++
}

// Main is the simulated UIApplicationMain: discover the display through
// I/O Kit, set up GL via EAGL, create the event port, start the eventpump
// on the CiderPress socket, and run the event loop until a stop lifecycle
// event arrives. Returns the app exit status.
func Main(t *kernel.Thread, d Delegate) uint64 {
	lc := libsystem.Sys(t)

	// Display discovery through the I/O Kit MIG surface, as iOS graphics
	// libraries locate the framebuffer class (Section 5.1): match the
	// AppleM2CLCD driver class, then call its get-display-size method.
	w, h := 0, 0
	if entry, n := lc.IOServiceGetMatchingService("AppleM2CLCD"); n > 0 {
		if r0, r1, errno := lc.IOConnectCallMethod(entry, iokit.SelGetDisplaySize); errno == kernel.OK {
			w, h = int(r0), int(r1)
		}
	}
	if w == 0 {
		w, h = t.Kernel().Device().Display.Width, t.Kernel().Device().Display.Height
	}

	gl, err := graphics.BindIOSGL(t)
	if err != nil {
		return 1
	}
	app := &App{T: t, GL: gl, Width: w, Height: h}
	app.Ctx = gl.Call("_EAGLContextCreate")
	gl.Call("_EAGLContextSetCurrent", app.Ctx)
	gl.Call("_EAGLRenderbufferStorageFromDrawable", app.Ctx, uint64(w), uint64(h))
	gl.Call("_glViewport", 0, 0, uint64(w), uint64(h))

	// Event port + eventpump, if CiderPress handed us a socket.
	app.EventPort = lc.MachReplyPort()
	if fd, ok := eventFD(t.Task().Argv()); ok {
		input.StartEventPump(t, fd, app.EventPort, w, h)
	}

	if d.OnLaunch != nil {
		d.OnLaunch(app)
	}
	if fd, ok := eventFD(t.Task().Argv()); ok {
		_ = fd
		input.EventLoop(t, app.EventPort,
			func(e input.HIDEvent) {
				if d.OnEvent != nil {
					d.OnEvent(app, e)
				}
			},
			func(g input.Gesture) {
				if d.OnGesture != nil {
					d.OnGesture(app, g)
				}
			})
	}
	gl.Call("_EAGLContextDestroy", app.Ctx)
	return 0
}

// eventFD extracts the CiderPress event descriptor from argv.
func eventFD(argv []string) (int, bool) {
	for i := 0; i+1 < len(argv); i++ {
		if argv[i] == "-ciderpress-eventfd" {
			fd, err := strconv.Atoi(argv[i+1])
			if err != nil {
				return 0, false
			}
			return fd, true
		}
	}
	return 0, false
}
