package ipa_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ipa"
	"repro/internal/kernel"
	"repro/internal/macho"
	"repro/internal/prog"
)

func sampleBinary(t *testing.T, key string) []byte {
	t.Helper()
	bin, err := prog.MachOExecutable(key, []string{"/usr/lib/libSystem.B.dylib"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	clear := sampleBinary(t, "app")
	key := ipa.DeviceKey{Seed: 0xA5A5_1234}
	enc, err := ipa.EncryptBinary(clear, key)
	if err != nil {
		t.Fatal(err)
	}
	f, err := macho.Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Encrypted() {
		t.Fatal("binary should carry CryptID=1")
	}
	// The __TEXT payload must actually be scrambled.
	if bytes.Contains(enc, []byte("prog:app")) {
		t.Fatal("text payload still in the clear")
	}
	dec, err := ipa.DecryptBinary(enc, key)
	if err != nil {
		t.Fatal(err)
	}
	g, err := macho.Parse(dec)
	if err != nil {
		t.Fatal(err)
	}
	if g.Encrypted() {
		t.Fatal("decrypted binary should have CryptID=0")
	}
	if !bytes.Contains(dec, []byte("prog:app")) {
		t.Fatal("text payload not restored")
	}
}

func TestDecryptWrongKeyFails(t *testing.T) {
	clear := sampleBinary(t, "app2")
	enc, err := ipa.EncryptBinary(clear, ipa.DeviceKey{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ipa.DecryptBinary(enc, ipa.DeviceKey{Seed: 2})
	if err == nil {
		// Even if the container parses, the payload must be garbage.
		if bytes.Contains(dec, []byte("prog:app2")) {
			t.Fatal("wrong key produced correct plaintext")
		}
	}
}

func TestEncryptTwiceFails(t *testing.T) {
	clear := sampleBinary(t, "app3")
	key := ipa.DeviceKey{Seed: 3}
	enc, _ := ipa.EncryptBinary(clear, key)
	if _, err := ipa.EncryptBinary(enc, key); err == nil {
		t.Fatal("double encryption should fail")
	}
	if _, err := ipa.DecryptBinary(clear, key); err == nil {
		t.Fatal("decrypting a clear binary should fail")
	}
}

func TestBuildParseIPA(t *testing.T) {
	app := &ipa.App{
		Name:     "Calculator Pro",
		BundleID: "com.apalon.calculator",
		Binary:   sampleBinary(t, "calc"),
		Assets:   map[string][]byte{"Icon.png": []byte("PNGDATA"), "Default.png": []byte("SPLASH")},
	}
	pkg, err := ipa.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ipa.Parse(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != app.Name || got.BundleID != app.BundleID {
		t.Fatalf("got %q/%q", got.Name, got.BundleID)
	}
	if !bytes.Equal(got.Binary, app.Binary) {
		t.Fatal("binary changed in transit")
	}
	if string(got.Assets["Icon.png"]) != "PNGDATA" {
		t.Fatalf("assets = %v", got.Assets)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ipa.Parse([]byte("not a zip")); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestFullPipelineStoreToLaunch(t *testing.T) {
	// The complete Section 6.1 flow: build an encrypted store package,
	// decrypt it with the device key (the jailbroken-iPhone step), install
	// it on Cider, and launch it through the created shortcut.
	key := ipa.DeviceKey{Seed: 0xFA17_9A7E}
	clear := sampleBinary(t, "papers-app")
	enc, err := ipa.EncryptBinary(clear, key)
	if err != nil {
		t.Fatal(err)
	}
	storePkg, err := ipa.Build(&ipa.App{
		Name: "Papers", BundleID: "com.mekentosj.papers", Binary: enc,
		Assets: map[string][]byte{"Icon.png": []byte("ICON")},
	})
	if err != nil {
		t.Fatal(err)
	}

	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	sys.Registry.MustRegister("papers-app", func(c *prog.Call) uint64 {
		ran = true
		return 0
	})

	// Installing the still-encrypted package must fail (no Apple keys on
	// the Nexus 7).
	if _, err := sys.InstallIPA(storePkg, "", nil); err == nil {
		t.Fatal("encrypted ipa must not install")
	}

	decPkg, err := ipa.Decrypt(storePkg, key)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sys.InstallIPA(decPkg, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.ExecPath != "/Applications/Papers.app/Papers" {
		t.Fatalf("exec path = %s", inst.ExecPath)
	}
	// Sandbox and shortcut exist.
	if _, err := sys.IOSFS.Lookup(inst.SandboxDir + "/Documents"); err != nil {
		t.Fatal("no sandbox Documents dir")
	}
	sc, err := sys.AndroidFS.ReadFile(inst.ShortcutPath)
	if err != nil {
		t.Fatal("no launcher shortcut")
	}
	if !bytes.Contains(sc, []byte("CiderPress")) {
		t.Fatalf("shortcut does not target CiderPress: %s", sc)
	}

	// Launch it directly (the CiderPress path is covered in input tests).
	if _, err := sys.Start(inst.ExecPath, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("installed app did not run")
	}
}

func TestEncryptedBinaryRefusedByKernel(t *testing.T) {
	// An encrypted binary placed directly on disk must be refused by the
	// Mach-O loader with EACCES.
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := ipa.EncryptBinary(sampleBinary(t, "sneaky"), ipa.DeviceKey{Seed: 9})
	sys.IOSFS.WriteFile("/Applications/sneaky.app/sneaky", enc)
	sys.Registry.MustRegister("sneaky", func(c *prog.Call) uint64 {
		t.Error("encrypted binary ran")
		return 0
	})
	tk, _ := sys.Start("/Applications/sneaky.app/sneaky", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	_ = tk
	_ = kernel.EACCES
}

func TestPropertyKeystreamSymmetric(t *testing.T) {
	check := func(seed uint64, data []byte) bool {
		if len(data) < 64 {
			return true
		}
		key := "prop"
		bin, err := prog.MachOExecutable(key, nil, nil)
		if err != nil {
			return false
		}
		k := ipa.DeviceKey{Seed: seed}
		enc, err := ipa.EncryptBinary(bin, k)
		if err != nil {
			return false
		}
		dec, err := ipa.DecryptBinary(enc, k)
		if err != nil {
			return false
		}
		// Decryption must restore a parseable, unencrypted image with the
		// original payload.
		f, err := macho.Parse(dec)
		return err == nil && !f.Encrypted() && bytes.Contains(dec, []byte("prog:prop"))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestShortcutLaunchesThroughCiderPress: tapping the Launcher icon created
// at install time starts CiderPress, which launches the iOS app — the full
// §3 + §6.1 loop.
func TestShortcutLaunchesThroughCiderPress(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	sys.Registry.MustRegister("shortcut-app", func(c *prog.Call) uint64 {
		ran = true
		return 0
	})
	bin := sampleBinary(t, "shortcut-app")
	pkg, err := ipa.Build(&ipa.App{Name: "Tap", BundleID: "com.example.tap", Binary: bin})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sys.InstallIPA(pkg, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.OpenShortcut(inst.ShortcutPath); err != nil {
		t.Fatal(err)
	}
	// The app exits on its own (no event loop); stop is unnecessary.
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("tapping the shortcut did not run the iOS app")
	}
	if sys.CiderPress.Launches() != 1 {
		t.Fatalf("CiderPress launches = %d", sys.CiderPress.Launches())
	}
}
