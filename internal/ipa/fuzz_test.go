package ipa_test

import (
	"testing"
	"testing/quick"

	"repro/internal/ipa"
)

// TestParseNeverPanics: .ipa files arrive from outside the device.
func TestParseNeverPanics(t *testing.T) {
	check := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		ipa.Parse(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
