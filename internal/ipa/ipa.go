// Package ipa implements the iOS App Store package pipeline of
// Section 6.1: .ipa archives (zip containers holding Payload/<App>.app),
// FairPlay-style binary encryption keyed to device secrets, the
// jailbroken-device decryption flow ("the script decrypts the app, and
// then re-packages the decrypted binary, along with any associated data
// files, into a single .ipa file"), and installation onto a Cider device —
// unpacking the app and creating an Android Launcher shortcut pointing at
// CiderPress.
package ipa

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"path"
	"strings"

	"repro/internal/macho"
	"repro/internal/vfs"
)

// DeviceKey models the per-device-class FairPlay secret held in "encrypted,
// non-volatile memory found in an Apple device".
type DeviceKey struct {
	// Seed is the key material.
	Seed uint64
}

// keystream generates the XOR stream for a key (xorshift64*; stdlib-only
// stand-in for the real cipher).
func (k DeviceKey) keystream(n int) []byte {
	out := make([]byte, n)
	x := k.Seed | 1
	for i := 0; i < n; i += 8 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		v := x * 0x2545F4914F6CDD1D
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}

// EncryptBinary wraps a clear Mach-O executable the way the App Store
// does: add LC_ENCRYPTION_INFO covering __TEXT with CryptID=1 and encrypt
// that range with the device-class key.
func EncryptBinary(clear []byte, key DeviceKey) ([]byte, error) {
	f, err := macho.Parse(clear)
	if err != nil {
		return nil, err
	}
	if f.Encrypted() {
		return nil, fmt.Errorf("ipa: binary already encrypted")
	}
	f.Encryption = &macho.EncryptionInfo{CryptID: 1} // Marshal fills range
	out, err := f.Marshal()
	if err != nil {
		return nil, err
	}
	g, err := macho.Parse(out)
	if err != nil {
		return nil, err
	}
	enc := g.Encryption
	if enc == nil || int(enc.CryptOff+enc.CryptSize) > len(out) {
		return nil, fmt.Errorf("ipa: bad encryption range")
	}
	ks := key.keystream(int(enc.CryptSize))
	for i := range ks {
		out[int(enc.CryptOff)+i] ^= ks[i]
	}
	return out, nil
}

// DecryptBinary reverses EncryptBinary using the device key — what the
// gdb-based script does on a jailbroken iPhone: dump the decrypted text
// and clear CryptID.
func DecryptBinary(encrypted []byte, key DeviceKey) ([]byte, error) {
	f, err := macho.Parse(encrypted)
	if err != nil {
		return nil, err
	}
	if !f.Encrypted() {
		return nil, fmt.Errorf("ipa: binary is not encrypted")
	}
	enc := f.Encryption
	if int(enc.CryptOff+enc.CryptSize) > len(encrypted) {
		return nil, fmt.Errorf("ipa: bad encryption range")
	}
	out := append([]byte(nil), encrypted...)
	ks := key.keystream(int(enc.CryptSize))
	for i := range ks {
		out[int(enc.CryptOff)+i] ^= ks[i]
	}
	g, err := macho.Parse(out)
	if err != nil {
		return nil, fmt.Errorf("ipa: wrong device key: %w", err)
	}
	g.Encryption.CryptID = 0
	return g.Marshal()
}

// App describes one packaged application.
type App struct {
	// Name is the app bundle name ("Calculator Pro").
	Name string
	// BundleID is the reverse-DNS identifier.
	BundleID string
	// Binary is the Mach-O executable.
	Binary []byte
	// Assets are extra bundle files (icons, nibs, data), by relative path.
	Assets map[string][]byte
}

// infoPlist renders the minimal Info.plist the simulation consumes.
func (a *App) infoPlist() []byte {
	return []byte(fmt.Sprintf(
		"CFBundleName=%s\nCFBundleIdentifier=%s\nCFBundleExecutable=%s\n",
		a.Name, a.BundleID, a.Name))
}

// Build produces the .ipa archive: a zip with the standard
// Payload/<Name>.app/ layout.
func Build(a *App) ([]byte, error) {
	if a.Name == "" || strings.ContainsAny(a.Name, "/\\") {
		return nil, fmt.Errorf("ipa: bad app name %q", a.Name)
	}
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	base := "Payload/" + a.Name + ".app/"
	write := func(name string, data []byte) error {
		w, err := zw.Create(base + name)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	if err := write(a.Name, a.Binary); err != nil {
		return nil, err
	}
	if err := write("Info.plist", a.infoPlist()); err != nil {
		return nil, err
	}
	for name, data := range a.Assets {
		if err := write(name, data); err != nil {
			return nil, err
		}
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Parse opens a .ipa archive.
func Parse(ipa []byte) (*App, error) {
	zr, err := zip.NewReader(bytes.NewReader(ipa), int64(len(ipa)))
	if err != nil {
		return nil, fmt.Errorf("ipa: not a zip archive: %w", err)
	}
	app := &App{Assets: map[string][]byte{}}
	var plist []byte
	files := map[string][]byte{}
	for _, zf := range zr.File {
		if !strings.HasPrefix(zf.Name, "Payload/") {
			continue
		}
		rest := strings.TrimPrefix(zf.Name, "Payload/")
		dir, file, ok := strings.Cut(rest, "/")
		if !ok || !strings.HasSuffix(dir, ".app") {
			continue
		}
		if app.Name == "" {
			app.Name = strings.TrimSuffix(dir, ".app")
		}
		rc, err := zf.Open()
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, err
		}
		files[file] = data
		if file == "Info.plist" {
			plist = data
		}
	}
	if app.Name == "" {
		return nil, fmt.Errorf("ipa: no Payload/<App>.app in archive")
	}
	for _, line := range strings.Split(string(plist), "\n") {
		if v, ok := strings.CutPrefix(line, "CFBundleIdentifier="); ok {
			app.BundleID = v
		}
	}
	bin, ok := files[app.Name]
	if !ok {
		return nil, fmt.Errorf("ipa: missing executable %q", app.Name)
	}
	app.Binary = bin
	for name, data := range files {
		if name != app.Name && name != "Info.plist" {
			app.Assets[name] = data
		}
	}
	return app, nil
}

// Decrypt re-packages an encrypted .ipa with its binary decrypted — the
// full jailbroken-device script flow.
func Decrypt(encrypted []byte, key DeviceKey) ([]byte, error) {
	app, err := Parse(encrypted)
	if err != nil {
		return nil, err
	}
	clear, err := DecryptBinary(app.Binary, key)
	if err != nil {
		return nil, err
	}
	app.Binary = clear
	return Build(app)
}

// Installed describes an app installed on a Cider device.
type Installed struct {
	// ExecPath is the app binary's path in the iOS hierarchy.
	ExecPath string
	// BundleDir is the .app directory.
	BundleDir string
	// SandboxDir is the app's data container (/Documents home).
	SandboxDir string
	// ShortcutPath is the Android Launcher shortcut file.
	ShortcutPath string
}

// Install unpacks a (decrypted) .ipa onto the device: the bundle goes into
// /Applications, a sandbox container is created, and an Android Launcher
// shortcut pointing at CiderPress is written — "a small background process
// automatically unpacked each .ipa and created Android shortcuts on the
// Launcher home screen, pointing each one to the CiderPress Android app"
// (Section 6.1). ciderPressPath names the proxy binary the shortcut
// launches.
func Install(iosFS *vfs.FS, androidFS *vfs.FS, ipaBytes []byte, ciderPressPath string) (*Installed, error) {
	app, err := Parse(ipaBytes)
	if err != nil {
		return nil, err
	}
	mf, err := macho.Parse(app.Binary)
	if err != nil {
		return nil, fmt.Errorf("ipa: app binary is not Mach-O: %w", err)
	}
	if mf.Encrypted() {
		return nil, fmt.Errorf("ipa: %s is still FairPlay-encrypted; decrypt on an Apple device first", app.Name)
	}
	inst := &Installed{
		BundleDir:    "/Applications/" + app.Name + ".app",
		ExecPath:     "/Applications/" + app.Name + ".app/" + app.Name,
		SandboxDir:   "/var/mobile/Applications/" + app.BundleID,
		ShortcutPath: "/data/launcher/" + app.Name + ".shortcut",
	}
	if err := iosFS.WriteFile(inst.ExecPath, app.Binary); err != nil {
		return nil, err
	}
	for name, data := range app.Assets {
		if err := iosFS.WriteFile(path.Join(inst.BundleDir, name), data); err != nil {
			return nil, err
		}
	}
	if err := iosFS.WriteFile(path.Join(inst.BundleDir, "Info.plist"), app.infoPlist()); err != nil {
		return nil, err
	}
	for _, d := range []string{"Documents", "Library", "tmp"} {
		if err := iosFS.MkdirAll(path.Join(inst.SandboxDir, d)); err != nil {
			return nil, err
		}
	}
	// The Launcher shortcut: icon + target (CiderPress) + payload (app).
	shortcut := fmt.Sprintf("target=%s\nargv=%s\nicon=%s\n",
		ciderPressPath, inst.ExecPath, path.Join(inst.BundleDir, "Icon.png"))
	if androidFS != nil {
		if err := androidFS.WriteFile(inst.ShortcutPath, []byte(shortcut)); err != nil {
			return nil, err
		}
	}
	return inst, nil
}
