package diffcheck

import (
	"fmt"
	"strings"

	"repro/internal/fault"
)

// rng is the deterministic program-generation stream: splitmix64, the
// same generator family the fault layer uses, so a seed fully determines
// a program on every host and at every parallelism.
type rng struct{ x uint64 }

func newRNG(seed uint64) *rng { return &rng{x: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// opKind enumerates the generated operations. Every kind must be safe to
// run in any order with any operand values: descriptor operands address a
// slot table (empty slots read as fd -1, a deterministic EBADF on both
// personas), reads and writes are poll-guarded so a program can never
// block forever, and selects always carry a bounded timeout. That
// closure-under-subsequence property is what lets the minimizer drop
// arbitrary ops and still have a runnable program.
type opKind int

const (
	opGetPID opKind = iota
	opPipe
	opSocketpair
	opOpen
	opCreat
	opOpenCreate
	opDup
	opClose
	opWrite
	opRead
	opUnlink
	opSelectPoll
	opSignal
	opForkWait
	opMach
	opRlimit
	opPressure
	numOpKinds
)

func (k opKind) String() string {
	switch k {
	case opGetPID:
		return "getpid"
	case opPipe:
		return "pipe"
	case opSocketpair:
		return "socketpair"
	case opOpen:
		return "open"
	case opCreat:
		return "creat"
	case opOpenCreate:
		return "open_create"
	case opDup:
		return "dup"
	case opClose:
		return "close"
	case opWrite:
		return "write"
	case opRead:
		return "read"
	case opUnlink:
		return "unlink"
	case opSelectPoll:
		return "select_poll"
	case opSignal:
		return "signal"
	case opForkWait:
		return "fork_wait"
	case opMach:
		return "mach"
	case opRlimit:
		return "rlimit"
	case opPressure:
		return "pressure"
	}
	return "op?"
}

// Op is one generated operation; A/B/C are raw operand words whose
// interpretation (slot index, path index, payload length, signal pick)
// is per-kind and always reduced modulo the valid range at execution.
type Op struct {
	Kind    opKind
	A, B, C uint64
}

// Program is one generated differential test case.
type Program struct {
	Seed uint64
	Ops  []Op
}

// Generate derives a program from a seed: 10–25 ops drawn uniformly from
// the op table with independent operand words.
func Generate(seed uint64) *Program {
	r := newRNG(seed)
	n := 10 + int(r.next()%16)
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{
			Kind: opKind(r.next() % uint64(numOpKinds)),
			A:    r.next(),
			B:    r.next(),
			C:    r.next(),
		}
	}
	return &Program{Seed: seed, Ops: ops}
}

// Text serializes the program deterministically — the corpus format and
// the determinism tests' byte-comparison target.
func (p *Program) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prog seed=%#x ops=%d\n", p.Seed, len(p.Ops))
	for i, op := range p.Ops {
		fmt.Fprintf(&b, "%02d %s a=%d b=%d c=%d\n", i, op.Kind, op.A%1000, op.B%1000, op.C%1000)
	}
	return b.String()
}

// PlanFor derives the seed's fault schedule. A third of seeds run clean;
// the rest get one or two transient-errno rules on the file-descriptor
// syscalls.
//
// Only Nth-based rules are usable here: a rule's per-key hit counter sees
// the same sequence of eligible operations in both cells, so "fire on the
// Nth hit" injects at the same program point under either persona. Every
// is unusable — its fire decision hashes the injection key, and syscall
// keys carry the persona prefix ("android/read" vs "ios/read"), so the
// same rule would fire at different points in the two cells. After/Until
// are equally unusable: they window on virtual time, and the personas'
// syscall costs legitimately differ. Asymmetric injection is still
// valuable — it is how the minimizer is tested — it just cannot be part
// of the oracle's own schedules.
//
// OpMemPressure rules are the exception that proves the rule: their key is
// the charging task's executable path ("/bin/diffcheck-main"), which
// carries no persona prefix and is identical in both cells, and their hit
// counter advances on footprint growth (exec materialization, cache
// inflation), not on virtual time. Nth-based pressure rules are therefore
// persona-symmetric and usable in the oracle — they drive the
// memorystatus notify path through both personas' pressure-delivery
// stacks at the same program point. Only warn-level episodes are
// scheduled here: a critical episode kills the lone generated process,
// truncating both logs at whatever op was in flight, which exercises
// nothing the pressure soaks don't already cover.
func PlanFor(seed uint64) fault.Plan {
	r := newRNG(seed ^ 0xd1ffc4ec0ffee)
	plan := fault.Plan{Name: "diffcheck", Seed: seed}
	if r.next()%3 == 0 {
		return plan
	}
	matches := [...]string{"*/read", "*/write", "*/open", "*/dup", "*/setrlimit"}
	// Canonical (Linux) numbers, as everywhere in the kernel:
	// EINTR, EAGAIN, EMFILE, EIO.
	errnos := [...]int{4, 11, 24, 5}
	n := 1 + int(r.next()%2)
	for i := 0; i < n; i++ {
		plan.Rules = append(plan.Rules, fault.Rule{
			Op:    fault.OpSyscall,
			Match: matches[r.next()%uint64(len(matches))],
			Errno: errnos[r.next()%uint64(len(errnos))],
			Nth:   1 + r.next()%6,
		})
	}
	if r.next()%2 == 0 {
		// Warn-level pressure episode on the Nth footprint growth; the
		// memorystatus consult translates Errno 1 (PressureWarn) into a
		// notify-only episode.
		plan.Rules = append(plan.Rules, fault.Rule{
			Op:    fault.OpMemPressure,
			Match: "*",
			Errno: 1,
			Nth:   1 + r.next()%4,
		})
	}
	return plan
}
