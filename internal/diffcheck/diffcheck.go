// Package diffcheck is the differential persona oracle: it generates
// seeded programs over the syscall/signal/Mach surface both personas
// share, runs each program twice — once as an Android-persona process
// against Bionic, once as an iOS-persona process against libSystem — in
// otherwise identical cells, and diffs the canonicalized results.
//
// The premise is Cider's own correctness claim: a persona only changes
// *how* a thread talks to the kernel (ABI numbers, errno numbering,
// signal numbering, TLS layout, syscall cost), never *what* the kernel
// does. After normalizing away the deliberate differences — numbering
// translated back to canonical, persona-hop syscalls dropped, virtual
// timestamps excluded — the two runs must be identical: same per-op
// results, same per-process event streams, same counters. Any residual
// difference is either a bug (fix it, with a regression test) or a
// paper-mandated deviation (allowlist it, with a citation); the
// allowlist policy lives in DESIGN.md.
//
// This oracle located four real divergences in this codebase, each now
// fixed with a regression test: the XNU table missing dup, XNU open
// forwarding untranslated O_CREAT flag bits, EDEADLK/EAGAIN crossing on
// the BSD/Linux errno border, and a non-bijective signal translation
// table that collided SIGTSTP with SIGCHLD for iOS receivers.
package diffcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/replay"
	"repro/internal/runner"
)

// Options configures a diffcheck run.
type Options struct {
	// Seeds is the number of generated programs (seeds 1..Seeds).
	Seeds int
	// Jobs is host parallelism; <= 0 means GOMAXPROCS.
	Jobs int
	// Allowlist overrides DefaultAllowlist when non-nil.
	Allowlist []AllowEntry
	// Minimize delta-debugs each residual divergence.
	Minimize bool
	// MinimizeBudget caps two-cell reruns per minimized divergence;
	// 0 means a default sized for generated programs.
	MinimizeBudget int
	// NoRecord disables scheduler-decision recording (recording is on by
	// default; the canonical schedule's choice log is empty, so it cannot
	// change results).
	NoRecord bool
	// ArtifactDir is where replay artifacts for diverging seeds are
	// written; empty means the OS temp dir.
	ArtifactDir string
}

// Report is a run's deterministic summary: identical for the same
// Options regardless of Jobs.
type Report struct {
	// Seeds echoes Options.Seeds.
	Seeds int
	// Divergences is the residual (unallowlisted) set in seed order.
	Divergences []Divergence
	// AllowHits counts allowlist matches by entry ID.
	AllowHits map[string]int
}

type seedOutcome struct {
	divs []Divergence
	hits map[string]int
}

// Run executes the oracle over seeds 1..o.Seeds, fanning seeds out over
// the host-parallel runner. Each seed is a closed experiment (generate,
// run both cells, diff, filter, optionally minimize), so results merge
// in seed order and the report is independent of Jobs.
func Run(o Options) (*Report, error) {
	allow := o.Allowlist
	if allow == nil {
		allow = DefaultAllowlist()
	}
	budget := o.MinimizeBudget
	if budget <= 0 {
		budget = 400
	}
	outcomes, err := runner.Map(o.Seeds, o.Jobs, func(i int) (seedOutcome, error) {
		seed := uint64(i + 1)
		p := Generate(seed)
		plan := PlanFor(seed)
		var divs []Divergence
		var hits map[string]int
		if o.NoRecord {
			divs, hits = Filter(CompareProgram(seed, p, plan), allow)
		} else {
			recA, recI := replay.NewRecorder(nil), replay.NewRecorder(nil)
			pr := runPair(seed, p, plan, recA, recI)
			divs, hits = Filter(pr.divs, allow)
			if len(divs) > 0 {
				a := buildArtifact(seed, 0, recA.Choices(), recI.Choices(),
					recA.Count()+recI.Count(), pr.digest, divs[0].Sig)
				path := artifactPath(o.ArtifactDir, seed, 0)
				if werr := a.WriteFile(path); werr == nil {
					for j := range divs {
						divs[j].Artifact = path
					}
				}
			}
		}
		for j := range divs {
			divs[j].Program = p.Text()
			if o.Minimize {
				divs[j].Minimized = Minimize(p, plan, divs[j], allow, budget).Text()
			}
		}
		return seedOutcome{divs: divs, hits: hits}, nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{Seeds: o.Seeds, AllowHits: map[string]int{}}
	for _, oc := range outcomes {
		rep.Divergences = append(rep.Divergences, oc.divs...)
		for id, n := range oc.hits {
			rep.AllowHits[id] += n
		}
	}
	return rep, nil
}

// Text renders the report deterministically.
func (r *Report) Text() string {
	var b strings.Builder
	total := 0
	ids := make([]string, 0, len(r.AllowHits))
	for id, n := range r.AllowHits {
		ids = append(ids, id)
		total += n
	}
	sort.Strings(ids)
	fmt.Fprintf(&b, "diffcheck: seeds=%d divergences=%d allowlisted=%d\n",
		r.Seeds, len(r.Divergences), total)
	for _, id := range ids {
		fmt.Fprintf(&b, "  allow %s: %d hits\n", id, r.AllowHits[id])
	}
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "DIVERGENCE %s\n", d)
	}
	return b.String()
}

// SuggestAllowlist renders Go literals for the residual divergences'
// signatures — the starting point --update-allowlist prints. Each
// suggestion still needs a human-written Why citation before it may be
// added to DefaultAllowlist; the policy intentionally cannot be
// automated.
func (r *Report) SuggestAllowlist() string {
	seen := map[string]bool{}
	var b strings.Builder
	for _, d := range r.Divergences {
		if seen[d.Sig] {
			continue
		}
		seen[d.Sig] = true
		fmt.Fprintf(&b, "{\n\tID:    %q,\n\tMatch: %q,\n\tWhy:   \"TODO: cite the paper section that mandates this deviation, or fix it\",\n},\n",
			"todo-"+d.Class, d.Sig)
	}
	return b.String()
}
