package diffcheck

import "repro/internal/fault"

// Minimize greedily shrinks a diverging program while the divergence
// keeps reproducing with the same Class and Sig under the given fault
// plan. Generated programs are closed under subsequence (empty fd slots
// read as -1), so dropping any op still leaves a runnable program.
// budget caps the number of two-cell reruns; each pass sweeps candidates
// from the back so ops after the divergence point disappear first.
func Minimize(p *Program, plan fault.Plan, target Divergence, allow []AllowEntry, budget int) *Program {
	reproduces := func(q *Program) bool {
		divs, _ := Filter(CompareProgram(p.Seed, q, plan), allow)
		for _, d := range divs {
			if d.Class == target.Class && d.Sig == target.Sig {
				return true
			}
		}
		return false
	}
	cur := &Program{Seed: p.Seed, Ops: append([]Op(nil), p.Ops...)}
	for shrunk := true; shrunk && budget > 0; {
		shrunk = false
		for i := len(cur.Ops) - 1; i >= 0 && budget > 0; i-- {
			trial := &Program{Seed: cur.Seed, Ops: make([]Op, 0, len(cur.Ops)-1)}
			trial.Ops = append(trial.Ops, cur.Ops[:i]...)
			trial.Ops = append(trial.Ops, cur.Ops[i+1:]...)
			budget--
			if reproduces(trial) {
				cur = trial
				shrunk = true
			}
		}
	}
	return cur
}
