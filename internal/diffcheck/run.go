package diffcheck

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/abi"
	"repro/internal/bionic"
	"repro/internal/ducttape"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/mem"
	"repro/internal/persona"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/xnu"
)

// machTick bounds every Mach send/receive the generator emits, so an
// injected queue stall can delay but never wedge a program.
const machTick = 200 * time.Microsecond

// libc is the persona-generic system interface a generated program runs
// against. Adapters canonicalize everything persona-specific at the
// boundary — errnos to Linux numbering, signal numbers to canonical —
// so the executor's log is directly comparable across cells. Anything
// that still differs after canonicalization is, by construction, a
// behavioral divergence.
type libc interface {
	GetPID() int
	GetPPID() int
	Pipe() (int, int, kernel.Errno)
	Socketpair() (int, int, kernel.Errno)
	Open(path string) (int, kernel.Errno)
	OpenCreate(path string) (int, kernel.Errno)
	Creat(path string) (int, kernel.Errno)
	Dup(fd int) (int, kernel.Errno)
	Close(fd int) kernel.Errno
	Read(fd int, buf []byte) (int, kernel.Errno)
	Write(fd int, buf []byte) (int, kernel.Errno)
	Unlink(path string) kernel.Errno
	Select(req *kernel.SelectRequest) (*kernel.SelectResult, kernel.Errno)
	// Kill sends a canonical-numbered signal to pid.
	Kill(pid, sig int) kernel.Errno
	// Sigaction installs a handler for a canonical-numbered signal; fn
	// receives the delivered number converted back to canonical.
	Sigaction(sig int, fn func(canonical int)) kernel.Errno
	// Getrlimit reads a canonical-numbered resource limit; adapters
	// renumber at the boundary (XNU says RLIMIT_NOFILE is 8, Linux 7).
	Getrlimit(res int) (cur, max uint64, errno kernel.Errno)
	// Setrlimit sets a canonical-numbered resource limit.
	Setrlimit(res int, cur, max uint64) kernel.Errno
	// OnPressure registers a memory-pressure listener; the persona level
	// vocabulary (dispatch-source flags, onTrimMemory levels) is
	// canonicalized to "warn"/"critical".
	OnPressure(fn func(level string))
	// CacheInflate maps and touches n bytes of anonymous cache ballast —
	// the footprint growth pressure rules key on.
	CacheInflate(n uint64) bool
	// CacheShed unmaps the oldest ballast chunk, if any remains.
	CacheShed() bool
	// Errno reads the persona TLS errno, canonicalized.
	Errno() int
	Fork(child func(libc)) int
	Wait(pid int) (int, int, kernel.Errno)
	Exit(status int)
	// MachPingPong allocates a reply port, self-sends one message, and
	// receives it back (the generator's Mach IPC pattern).
	MachPingPong(id int32) (allocOK bool, sendKR, recvKR int, gotID int32)
}

// memState is the per-process cache-ballast ledger the pressure ops
// operate on: inflated chunk bases in inflation order, shed oldest-first
// (the cache-eviction shape both personas' shedding callbacks model).
type memState struct{ bases []uint64 }

// cacheInflate maps and touches one anonymous ballast chunk; the
// zero-fill materialization is the footprint-charge point OpMemPressure
// rules count.
func cacheInflate(th *kernel.Thread, st *memState, n uint64) bool {
	r, err := th.Task().Mem().Map(0, n, mem.ProtRead|mem.ProtWrite, "[dc-cache]", false)
	if err != nil {
		return false
	}
	r.Backing().Bytes()
	st.bases = append(st.bases, r.Base)
	return true
}

// cacheShed releases the oldest ballast chunk.
func cacheShed(th *kernel.Thread, st *memState) bool {
	if len(st.bases) == 0 {
		return false
	}
	base := st.bases[0]
	st.bases = st.bases[1:]
	return th.Task().Mem().Unmap(base) == nil
}

// androidLibc adapts bionic: results are already canonical; Mach traps
// exist only in the XNU table, so the adapter brackets them with the
// set_persona diplomat hop (normalization strips those events).
type androidLibc struct {
	c  *bionic.C
	ms *memState
}

func (a androidLibc) GetPID() int                          { return a.c.GetPID() }
func (a androidLibc) GetPPID() int                         { return a.c.GetPPID() }
func (a androidLibc) Pipe() (int, int, kernel.Errno)       { return a.c.Pipe() }
func (a androidLibc) Socketpair() (int, int, kernel.Errno) { return a.c.Socketpair() }
func (a androidLibc) Open(path string) (int, kernel.Errno) { return a.c.Open(path) }
func (a androidLibc) OpenCreate(path string) (int, kernel.Errno) {
	return a.c.OpenCreate(path)
}
func (a androidLibc) Creat(path string) (int, kernel.Errno) { return a.c.Creat(path) }
func (a androidLibc) Dup(fd int) (int, kernel.Errno)        { return a.c.Dup(fd) }
func (a androidLibc) Close(fd int) kernel.Errno             { return a.c.Close(fd) }
func (a androidLibc) Read(fd int, buf []byte) (int, kernel.Errno) {
	return a.c.Read(fd, buf)
}
func (a androidLibc) Write(fd int, buf []byte) (int, kernel.Errno) {
	return a.c.Write(fd, buf)
}
func (a androidLibc) Unlink(path string) kernel.Errno { return a.c.Unlink(path) }
func (a androidLibc) Select(req *kernel.SelectRequest) (*kernel.SelectResult, kernel.Errno) {
	return a.c.Select(req)
}
func (a androidLibc) Kill(pid, sig int) kernel.Errno { return a.c.Kill(pid, sig) }
func (a androidLibc) Sigaction(sig int, fn func(int)) kernel.Errno {
	return a.c.Sigaction(sig, func(_ *kernel.Thread, got int) { fn(got) })
}
func (a androidLibc) Getrlimit(res int) (uint64, uint64, kernel.Errno) {
	return a.c.Getrlimit(res)
}
func (a androidLibc) Setrlimit(res int, cur, max uint64) kernel.Errno {
	return a.c.Setrlimit(res, cur, max)
}
func (a androidLibc) OnPressure(fn func(string)) {
	a.c.OnTrimMemory(func(level int) {
		lvl := "warn"
		if level == bionic.TrimMemoryRunningCritical {
			lvl = "critical"
		}
		fn(lvl)
	})
}
func (a androidLibc) CacheInflate(n uint64) bool { return cacheInflate(a.c.T, a.ms, n) }
func (a androidLibc) CacheShed() bool            { return cacheShed(a.c.T, a.ms) }
func (a androidLibc) Errno() int                 { return a.c.Errno() }
func (a androidLibc) Fork(child func(libc)) int {
	return a.c.Fork(func(cc *bionic.C) { child(androidLibc{c: cc, ms: &memState{}}) })
}
func (a androidLibc) Wait(pid int) (int, int, kernel.Errno) { return a.c.Wait(pid) }
func (a androidLibc) Exit(status int)                       { a.c.Exit(status) }
func (a androidLibc) MachPingPong(id int32) (bool, int, int, int32) {
	a.c.SetPersona(persona.IOS)
	res := machPingPong(libsystem.Sys(a.c.T), id)
	a.c.SetPersona(persona.Android)
	return res.ok, res.sendKR, res.recvKR, res.gotID
}

// iosLibc adapts libSystem: BSD errnos, XNU signal numbers, and XNU
// rlimit resource numbers are converted at this boundary, mirroring what
// a comparison harness on real hardware does to a ktrace stream.
type iosLibc struct {
	c  *libsystem.C
	ms *memState
}

func (a iosLibc) GetPID() int                          { return a.c.GetPID() }
func (a iosLibc) GetPPID() int                         { return a.c.GetPPID() }
func (a iosLibc) Pipe() (int, int, kernel.Errno)       { return a.c.Pipe() }
func (a iosLibc) Socketpair() (int, int, kernel.Errno) { return a.c.Socketpair() }
func (a iosLibc) Open(path string) (int, kernel.Errno) { return a.c.Open(path) }
func (a iosLibc) OpenCreate(path string) (int, kernel.Errno) {
	return a.c.OpenCreate(path)
}
func (a iosLibc) Creat(path string) (int, kernel.Errno) { return a.c.Creat(path) }
func (a iosLibc) Dup(fd int) (int, kernel.Errno)        { return a.c.Dup(fd) }
func (a iosLibc) Close(fd int) kernel.Errno             { return a.c.Close(fd) }
func (a iosLibc) Read(fd int, buf []byte) (int, kernel.Errno) {
	return a.c.Read(fd, buf)
}
func (a iosLibc) Write(fd int, buf []byte) (int, kernel.Errno) {
	return a.c.Write(fd, buf)
}
func (a iosLibc) Unlink(path string) kernel.Errno { return a.c.Unlink(path) }
func (a iosLibc) Select(req *kernel.SelectRequest) (*kernel.SelectResult, kernel.Errno) {
	return a.c.Select(req)
}
func (a iosLibc) Kill(pid, sig int) kernel.Errno {
	return a.c.Kill(pid, kernel.SignalToXNU(sig))
}
func (a iosLibc) Sigaction(sig int, fn func(int)) kernel.Errno {
	return a.c.Sigaction(kernel.SignalToXNU(sig), func(_ *kernel.Thread, got int) {
		fn(kernel.SignalFromXNU(got))
	})
}
func (a iosLibc) Getrlimit(res int) (uint64, uint64, kernel.Errno) {
	return a.c.Getrlimit(kernel.RlimitToXNU(res))
}
func (a iosLibc) Setrlimit(res int, cur, max uint64) kernel.Errno {
	return a.c.Setrlimit(kernel.RlimitToXNU(res), cur, max)
}
func (a iosLibc) OnPressure(fn func(string)) {
	a.c.DispatchSourceMemoryPressure(func(flags int) {
		lvl := "warn"
		if flags == libsystem.DispatchMemoryPressureCritical {
			lvl = "critical"
		}
		fn(lvl)
	})
}
func (a iosLibc) CacheInflate(n uint64) bool { return cacheInflate(a.c.T, a.ms, n) }
func (a iosLibc) CacheShed() bool            { return cacheShed(a.c.T, a.ms) }
func (a iosLibc) Errno() int                 { return int(kernel.ErrnoFromXNU(a.c.Errno())) }
func (a iosLibc) Fork(child func(libc)) int {
	return a.c.Fork(func(cc *libsystem.C) { child(iosLibc{c: cc, ms: &memState{}}) })
}
func (a iosLibc) Wait(pid int) (int, int, kernel.Errno) { return a.c.Wait(pid) }
func (a iosLibc) Exit(status int)                       { a.c.Exit(status) }
func (a iosLibc) MachPingPong(id int32) (bool, int, int, int32) {
	res := machPingPong(a.c, id)
	return res.ok, res.sendKR, res.recvKR, res.gotID
}

type machResult struct {
	ok             bool
	sendKR, recvKR int
	gotID          int32
}

func machPingPong(ls *libsystem.C, id int32) machResult {
	port := ls.MachReplyPort()
	if port == xnu.PortNull {
		return machResult{gotID: -1}
	}
	res := machResult{ok: true, gotID: -1}
	res.sendKR = int(ls.MachSend(port, &xnu.Message{ID: id, Body: []byte("dc")}, machTick))
	msg, rkr := ls.MachReceive(port, machTick)
	res.recvKR = int(rkr)
	if msg != nil {
		res.gotID = msg.ID
	}
	return res
}

// sigPool is the canonical signal set the generator draws from: the
// shared-numbering baseline (HUP), the classic translated pairs
// (USR1/USR2), and every number the bijection fix covers (TSTP, URG, IO,
// PWR, SYS). All are handled before being raised, so no default
// disposition ever terminates a program.
var sigPool = [...]int{
	kernel.SIGHUP, kernel.SIGUSR1, kernel.SIGUSR2, kernel.SIGTSTP,
	kernel.SIGURG, kernel.SIGIO, kernel.SIGPWR, kernel.SIGSYS,
}

// paths is the fixed file namespace programs operate in.
var paths = [...]string{"/f0", "/f1", "/f2", "/f3", "/f4", "/f5", "/f6", "/f7"}

// execProgram interprets p against c, appending one canonical result line
// per op to log. It must never block unboundedly: reads and writes are
// poll-guarded, selects and Mach calls carry timeouts, and the only
// blocking wait (wait4) is on a child guaranteed to exit.
func execProgram(c libc, p *Program, log *[]string) {
	var slots [8]int
	for i := range slots {
		slots[i] = -1
	}
	slot := func(v uint64) *int { return &slots[v%uint64(len(slots))] }
	path := func(v uint64) string { return paths[v%uint64(len(paths))] }
	emit := func(i int, op Op, format string, args ...any) {
		*log = append(*log, fmt.Sprintf("%02d %s ", i, op.Kind)+fmt.Sprintf(format, args...))
	}
	// Pressure ops share one shedding listener (armed on first use) and a
	// running log of canonicalized levels; delivery is synchronous with
	// the inflation that crossed the injected watermark, so the log each
	// op emits is deterministic.
	var pressureLog []string
	pressureArmed := false
	// pollReady reports fd readiness without blocking (timeout 0).
	pollReady := func(fd int, write bool) (bool, kernel.Errno) {
		req := &kernel.SelectRequest{Timeout: 0}
		if write {
			req.WriteFDs = []int{fd}
		} else {
			req.ReadFDs = []int{fd}
		}
		res, errno := c.Select(req)
		if errno != kernel.OK {
			return false, errno
		}
		return res.N() > 0, kernel.OK
	}

	for i, op := range p.Ops {
		switch op.Kind {
		case opGetPID:
			emit(i, op, "pid=%d ppid=%d tls=%d", c.GetPID(), c.GetPPID(), c.Errno())
		case opPipe:
			r, w, errno := c.Pipe()
			*slot(op.A) = r
			*slot(op.B) = w
			emit(i, op, "r=%d w=%d errno=%v tls=%d", r, w, errno, c.Errno())
		case opSocketpair:
			a, b, errno := c.Socketpair()
			*slot(op.A) = a
			*slot(op.B) = b
			emit(i, op, "a=%d b=%d errno=%v tls=%d", a, b, errno, c.Errno())
		case opOpen:
			fd, errno := c.Open(path(op.A))
			*slot(op.B) = fd
			emit(i, op, "%s fd=%d errno=%v tls=%d", path(op.A), fd, errno, c.Errno())
		case opCreat:
			fd, errno := c.Creat(path(op.A))
			*slot(op.B) = fd
			emit(i, op, "%s fd=%d errno=%v tls=%d", path(op.A), fd, errno, c.Errno())
		case opOpenCreate:
			fd, errno := c.OpenCreate(path(op.A))
			*slot(op.B) = fd
			emit(i, op, "%s fd=%d errno=%v tls=%d", path(op.A), fd, errno, c.Errno())
		case opDup:
			fd, errno := c.Dup(*slot(op.A))
			*slot(op.B) = fd
			emit(i, op, "old=%d new=%d errno=%v tls=%d", *slot(op.A), fd, errno, c.Errno())
		case opClose:
			errno := c.Close(*slot(op.A))
			emit(i, op, "fd=%d errno=%v tls=%d", *slot(op.A), errno, c.Errno())
			*slot(op.A) = -1
		case opWrite:
			fd := *slot(op.A)
			ready, perr := pollReady(fd, true)
			if perr != kernel.OK {
				// Bad fd: attempt the write anyway for the errno.
				n, errno := c.Write(fd, []byte{0})
				emit(i, op, "fd=%d poll=%v n=%d errno=%v", fd, perr, n, errno)
				continue
			}
			if !ready {
				emit(i, op, "fd=%d notready", fd)
				continue
			}
			buf := make([]byte, 1+op.B%64)
			for j := range buf {
				buf[j] = byte('a' + i%26)
			}
			n, errno := c.Write(fd, buf)
			emit(i, op, "fd=%d n=%d errno=%v tls=%d", fd, n, errno, c.Errno())
		case opRead:
			fd := *slot(op.A)
			ready, perr := pollReady(fd, false)
			if perr != kernel.OK {
				n, errno := c.Read(fd, make([]byte, 1))
				emit(i, op, "fd=%d poll=%v n=%d errno=%v", fd, perr, n, errno)
				continue
			}
			if !ready {
				emit(i, op, "fd=%d notready", fd)
				continue
			}
			buf := make([]byte, 1+op.B%64)
			n, errno := c.Read(fd, buf)
			emit(i, op, "fd=%d n=%d data=%q errno=%v", fd, n, buf[:max(n, 0)], errno)
		case opUnlink:
			errno := c.Unlink(path(op.A))
			emit(i, op, "%s errno=%v tls=%d", path(op.A), errno, c.Errno())
		case opSelectPoll:
			req := &kernel.SelectRequest{
				ReadFDs:  []int{*slot(op.A), *slot(op.B)},
				WriteFDs: []int{*slot(op.C)},
				Timeout:  0,
			}
			res, errno := c.Select(req)
			n := 0
			if res != nil {
				n = res.N()
			}
			emit(i, op, "ready=%d errno=%v", n, errno)
		case opSignal:
			sig := sigPool[op.A%uint64(len(sigPool))]
			var delivered []int
			aerr := c.Sigaction(sig, func(canonical int) {
				delivered = append(delivered, canonical)
			})
			kerr := c.Kill(c.GetPID(), sig)
			emit(i, op, "sig=%d act=%v kill=%v delivered=%v", sig, aerr, kerr, delivered)
		case opForkWait:
			r, w, errno := c.Pipe()
			if errno != kernel.OK {
				emit(i, op, "pipe errno=%v", errno)
				continue
			}
			payload := []byte(fmt.Sprintf("c%d", op.A%100))
			status := int(op.A % 32)
			pid := c.Fork(func(cc libc) {
				cc.Write(w, payload)
				cc.Exit(status)
			})
			if pid < 0 {
				emit(i, op, "fork failed tls=%d", c.Errno())
				c.Close(r)
				c.Close(w)
				continue
			}
			wpid, wstatus, werr := c.Wait(pid)
			ready, _ := pollReady(r, false)
			buf := make([]byte, 16)
			n := 0
			if ready {
				n, _ = c.Read(r, buf)
			}
			c.Close(r)
			c.Close(w)
			emit(i, op, "child=%v status=%d werr=%v data=%q",
				wpid == pid, wstatus, werr, buf[:max(n, 0)])
		case opMach:
			id := int32(op.A % 100)
			ok, skr, rkr, got := c.MachPingPong(id)
			emit(i, op, "alloc=%v send=%d recv=%d id=%v", ok, skr, rkr, got == id)
		case opRlimit:
			// Canonical NOFILE on both personas; the iOS adapter renumbers
			// to XNU 8 at the boundary.
			switch op.A % 3 {
			case 0:
				cur, lim, errno := c.Getrlimit(kernel.RLimitNoFile)
				emit(i, op, "get nofile cur=%d max=%d errno=%v tls=%d", cur, lim, errno, c.Errno())
			case 1:
				soft := 24 + op.B%40
				serr := c.Setrlimit(kernel.RLimitNoFile, soft, 4096)
				cur, _, _ := c.Getrlimit(kernel.RLimitNoFile)
				emit(i, op, "set nofile=%d cur=%d errno=%v tls=%d", soft, cur, serr, c.Errno())
			case 2:
				serr := c.Setrlimit(kernel.RLimitNoFile, 512, 16)
				emit(i, op, "set cur>max errno=%v tls=%d", serr, c.Errno())
			}
		case opPressure:
			if !pressureArmed {
				pressureArmed = true
				c.OnPressure(func(level string) {
					pressureLog = append(pressureLog, level)
					c.CacheShed()
				})
			}
			ok := c.CacheInflate((1 + op.B%4) << 12)
			emit(i, op, "inflate=%v levels=%v tls=%d", ok, pressureLog, c.Errno())
		}
	}
}

// CellResult is everything one persona cell produced for a program:
// the canonical per-op result log, normalized per-process event streams,
// trace counters, and the cell's health signals.
type CellResult struct {
	Persona persona.Kind
	// Log is the executor's canonical per-op result log.
	Log []string
	// Events maps "proc#pid" to that process's normalized event lines.
	Events map[string][]string
	// Procs is the sorted key set of Events.
	Procs []string
	// Counters is the trace session's named-counter export.
	Counters map[string]uint64
	// Dropped counts ring-evicted events; non-zero poisons comparison.
	Dropped uint64
	// LeakErr is the post-run kernel.LeakCheck failure, if any.
	LeakErr string
	// Err is a boot or run failure, if any.
	Err string
}

// progKey is the registry key and binary name both cells share, so
// process names (and therefore per-proc event stream keys) line up.
const progKey = "diffcheck-main"

// RunCell executes p in a fresh minimal Cider cell under the given
// persona and fault plan and collects the comparison inputs.
func RunCell(p *Program, ios bool, plan fault.Plan) *CellResult {
	return RunCellDecided(p, ios, plan, nil)
}

// RunCellDecided is RunCell with a scheduler decision policy attached to
// the cell's simulator before anything runs: a replay.Recorder to log
// the schedule, a replay.Explorer to perturb it, or a replay.Replayer
// to pin it to a recorded artifact. nil runs the canonical schedule.
func RunCellDecided(p *Program, ios bool, plan fault.Plan, dec sim.Decider) *CellResult {
	res := &CellResult{Persona: persona.Android}
	if ios {
		res.Persona = persona.IOS
	}
	sm := sim.New()
	sm.SetDecider(dec)
	k, err := kernel.New(sm, kernel.Config{
		Profile: kernel.ProfileCider, Device: hw.Nexus7(),
		Root: vfs.New(), Registry: prog.NewRegistry(),
	})
	if err != nil {
		res.Err = fmt.Sprintf("boot: %v", err)
		return res
	}
	k.InstallLinuxTable()
	abi.InstallXNUTable(k)
	if _, err := xnu.InstallIPC(k, ducttape.NewEnv(k)); err != nil {
		res.Err = fmt.Sprintf("ipc: %v", err)
		return res
	}
	k.RegisterBinFmt(&kernel.ELFLoader{})
	tr := trace.NewSession("diffcheck")
	// Programs are short; a deep ring guarantees Dropped()==0 so the
	// event comparison sees complete streams.
	tr.SetRingCapacity(1 << 16)
	sm.SetSink(tr)
	k.SetTracer(tr)
	k.EnableFaults(fault.NewInjector(plan))

	k.Registry().MustRegister(progKey, func(call *prog.Call) uint64 {
		th := call.Ctx.(*kernel.Thread)
		if ios {
			th.Persona.Switch(persona.IOS)
			execProgram(iosLibc{c: libsystem.Sys(th), ms: &memState{}}, p, &res.Log)
		} else {
			execProgram(androidLibc{c: bionic.Sys(th), ms: &memState{}}, p, &res.Log)
		}
		return 0
	})
	if err := prog.InstallStatic(k.Root().(*vfs.FS), "/bin/"+progKey, progKey); err != nil {
		res.Err = fmt.Sprintf("install: %v", err)
		return res
	}
	if _, err := k.StartProcess("/bin/"+progKey, nil); err != nil {
		res.Err = fmt.Sprintf("start: %v", err)
		return res
	}
	if err := sm.Run(); err != nil {
		res.Err = fmt.Sprintf("run: %v", err)
		return res
	}
	if err := k.LeakCheck(); err != nil {
		res.LeakErr = err.Error()
	}
	res.Dropped = tr.Dropped()
	res.Events = map[string][]string{}
	for _, ev := range tr.Events() {
		line, procKey, keep := normalizeEvent(ev)
		if !keep {
			continue
		}
		res.Events[procKey] = append(res.Events[procKey], line)
	}
	for key := range res.Events {
		res.Procs = append(res.Procs, key)
	}
	sort.Strings(res.Procs)
	res.Counters = map[string]uint64{}
	for _, nc := range tr.Counters() {
		res.Counters[nc.Name] = nc.Value
	}
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
