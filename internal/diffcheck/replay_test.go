package diffcheck

import (
	"path/filepath"
	"testing"

	"repro/internal/replay"
)

// TestRecordReplayFiftySeeds is the tentpole criterion on the persona
// oracle: fifty seeds' pair runs each record to an artifact that —
// after a full encode/decode round trip through the file format —
// replays to the exact same pair digest and decision count.
func TestRecordReplayFiftySeeds(t *testing.T) {
	dir := t.TempDir()
	for seed := uint64(1); seed <= 50; seed++ {
		p := Generate(seed)
		plan := PlanFor(seed)
		recA, recI := replay.NewRecorder(nil), replay.NewRecorder(nil)
		pr := runPair(seed, p, plan, recA, recI)
		a := buildArtifact(seed, 0, recA.Choices(), recI.Choices(),
			recA.Count()+recI.Count(), pr.digest, "")
		path := filepath.Join(dir, "art.json")
		if err := a.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		b, err := replay.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ReplayArtifact(b)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Digest != pr.digest {
			t.Errorf("seed %d: replayed digest %016x, recorded %016x", seed, rep.Digest, pr.digest)
		}
		if rep.DecisionCount != recA.Count()+recI.Count() {
			t.Errorf("seed %d: replayed %d decisions, recorded %d",
				seed, rep.DecisionCount, recA.Count()+recI.Count())
		}
	}
}

// TestPairDigestJobsInvariant pins exploration (and with it the pair
// digest) to host parallelism: jobs=1 and jobs=4 must agree, and two
// identical runs must agree (explorer determinism).
func TestPairDigestJobsInvariant(t *testing.T) {
	opts := Options{Seeds: 24, Jobs: 1, ArtifactDir: t.TempDir()}
	a, err := Explore(opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts.Jobs = 4
	c, err := Explore(opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*ExploreReport{b, c} {
		if r.Digest != a.Digest {
			t.Errorf("explore digest diverged: %016x vs %016x", r.Digest, a.Digest)
		}
		if r.Decisions != a.Decisions || r.Perturbed != a.Perturbed || r.PairRuns != a.PairRuns {
			t.Errorf("explore totals diverged: %+v vs %+v", r, a)
		}
		if len(r.Findings) != len(a.Findings) {
			t.Errorf("explore findings diverged: %v vs %v", r.Findings, a.Findings)
		}
	}
}

// TestRecordingDoesNotChangeReport pins canonical equivalence on the
// oracle: Run with recording (the default) and with NoRecord produce
// byte-identical reports.
func TestRecordingDoesNotChangeReport(t *testing.T) {
	r1, err := Run(Options{Seeds: 16})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Options{Seeds: 16, NoRecord: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text() != r2.Text() {
		t.Fatalf("recording changed the report:\n%s\nvs\n%s", r1.Text(), r2.Text())
	}
}

// TestReplayArtifactValidation pins artifact validation.
func TestReplayArtifactValidation(t *testing.T) {
	if _, err := ReplayArtifact(&replay.Artifact{Version: replay.ArtifactVersion, Kind: replay.KindSoak}); err == nil {
		t.Error("soak artifact accepted by diffcheck replay")
	}
	if _, err := ReplayArtifact(&replay.Artifact{Version: replay.ArtifactVersion, Kind: replay.KindDiffcheck}); err == nil {
		t.Error("artifact without seed accepted")
	}
}
