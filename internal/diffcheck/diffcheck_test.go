package diffcheck

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/kernel"
)

// treeSeeds is the seed count the always-on tree gate runs; big enough
// that every op kind and every fault schedule shape appears many times,
// small enough to stay a cheap tier-1 test.
const treeSeeds = 48

// TestTreeHasNoDivergences is the oracle's gate on the tree: every
// generated program must behave identically under both personas, modulo
// the cited allowlist. A failure here means a persona divergence
// regressed — the report text names the seed, the class, and a
// minimized reproducer.
func TestTreeHasNoDivergences(t *testing.T) {
	rep, err := Run(Options{Seeds: treeSeeds, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergences) > 0 {
		t.Fatalf("unallowlisted persona divergences:\n%s", rep.Text())
	}
	// The allowlist must be load-bearing: signal ops occur across this
	// many seeds, so both translation-work counters must have fired. A
	// zero here means the oracle stopped exercising the signal path (or
	// the counters moved) and the allowlist is stale.
	for _, id := range []string{"xnu-signal-send-counter", "xnu-signal-deliver-counter"} {
		if rep.AllowHits[id] == 0 {
			t.Errorf("allowlist entry %s never matched over %d seeds", id, treeSeeds)
		}
	}
}

// TestGenerateDeterministic pins seed -> program byte-identity and that
// distinct seeds actually generate distinct programs.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 16; seed++ {
		a, b := Generate(seed).Text(), Generate(seed).Text()
		if a != b {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, a, b)
		}
	}
	if Generate(1).Text() == Generate(2).Text() {
		t.Fatal("seeds 1 and 2 generated identical programs")
	}
	// The derived fault plans must be equally deterministic.
	p1 := fmt.Sprintf("%+v", PlanFor(7))
	p2 := fmt.Sprintf("%+v", PlanFor(7))
	if p1 != p2 {
		t.Fatalf("PlanFor(7) not deterministic:\n%s\nvs\n%s", p1, p2)
	}
}

// TestReportDeterministicAcrossJobs pins the divergence report to host
// parallelism: jobs=1 and jobs=4 must produce byte-identical text. Run
// under -race this also exercises the runner fan-out for data races.
func TestReportDeterministicAcrossJobs(t *testing.T) {
	const seeds = 16
	r1, err := Run(Options{Seeds: seeds, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(Options{Seeds: seeds, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text() != r4.Text() {
		t.Fatalf("report differs across jobs:\njobs=1:\n%s\njobs=4:\n%s", r1.Text(), r4.Text())
	}
}

// TestCrossPersonaFaultErrnoCanonical is the exhaustive errno audit: for
// every declared canonical errno, injecting it at syscall dispatch must
// surface as the same canonical condition under both personas — Android
// TLS natively, iOS TLS through the BSD translation and back. EDEADLK is
// the regression case: canonical 35 is BSD's EAGAIN, so an unpinned
// errno reads back as a different condition on exactly one persona.
func TestCrossPersonaFaultErrnoCanonical(t *testing.T) {
	p := &Program{Seed: 1, Ops: []Op{{Kind: opGetPID}}}
	for _, e := range kernel.Errnos() {
		plan := fault.Plan{
			Name: "errno-audit", Seed: 1,
			Rules: []fault.Rule{{Op: fault.OpSyscall, Match: "*/getpid", Errno: int(e), Nth: 1}},
		}
		android := RunCell(p, false, plan)
		ios := RunCell(p, true, plan)
		if divs := Compare(1, android, ios); len(divs) > 0 {
			t.Errorf("injected %v (canonical %d) diverges across personas:\n%v", e, int(e), divs[0])
			continue
		}
		want := fmt.Sprintf("tls=%d", int(e))
		if len(android.Log) != 1 || !strings.Contains(android.Log[0], want) {
			t.Errorf("injected %v: android log %q does not carry %q", e, android.Log, want)
		}
	}
}

// TestMinimizerShrinksAsymmetricFault drives the minimizer with a
// deliberately persona-asymmetric fault plan (a key matching only the
// Android table) and requires the reproducer to shrink to the single
// diverging op.
func TestMinimizerShrinksAsymmetricFault(t *testing.T) {
	p := &Program{Seed: 99, Ops: []Op{
		{Kind: opGetPID},
		{Kind: opPipe, A: 0, B: 1},
		{Kind: opDup, A: 0, B: 2},
		{Kind: opSelectPoll, A: 0, B: 1, C: 2},
		{Kind: opGetPID},
	}}
	// EIO on the Android persona's first dup only: the iOS cell's dup
	// key is "ios/dup", so it proceeds normally.
	plan := fault.Plan{Name: "asym", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpSyscall, Match: "android/dup", Errno: 5, Nth: 1},
	}}
	divs, hits := Filter(CompareProgram(99, p, plan), DefaultAllowlist())
	if len(hits) != 0 {
		t.Fatalf("unexpected allowlist hits: %v", hits)
	}
	if len(divs) == 0 {
		t.Fatal("asymmetric injection produced no divergence")
	}
	target := divs[0]
	if target.Class != "result" || !strings.Contains(target.Sig, "dup") {
		t.Fatalf("unexpected first divergence: %v", target)
	}
	min := Minimize(p, plan, target, DefaultAllowlist(), 200)
	if len(min.Ops) != 1 || min.Ops[0].Kind != opDup {
		t.Fatalf("minimized to %d ops (%v), want the single dup", len(min.Ops), min.Text())
	}
}

// Per-fix oracle regressions: each program below is the minimized shape
// of a divergence the oracle located, and each fails if its fix in the
// abi/kernel layers is reverted.

// TestRegressionDupAcrossPersonas — XNU table had no dup entry (iOS dup
// returned ENOSYS).
func TestRegressionDupAcrossPersonas(t *testing.T) {
	p := &Program{Seed: 1, Ops: []Op{
		{Kind: opPipe, A: 0, B: 1},
		{Kind: opDup, A: 0, B: 2},
	}}
	if divs := CompareProgram(1, p, fault.Plan{Name: "clean", Seed: 1}); len(divs) > 0 {
		t.Fatalf("dup diverges across personas:\n%v", divs[0])
	}
}

// TestRegressionOpenCreateFlags — XNU open forwarded O_CREAT untranslated
// (iOS open+create returned ENOENT instead of creating).
func TestRegressionOpenCreateFlags(t *testing.T) {
	p := &Program{Seed: 1, Ops: []Op{
		{Kind: opOpenCreate, A: 2, B: 0},
		{Kind: opOpen, A: 2, B: 1},
	}}
	if divs := CompareProgram(1, p, fault.Plan{Name: "clean", Seed: 1}); len(divs) > 0 {
		t.Fatalf("open(O_CREAT) diverges across personas:\n%v", divs[0])
	}
}

// TestRegressionSignalBijection — the partial signal table collided
// SIGTSTP with SIGCHLD for iOS receivers. sigPool[3] is SIGTSTP;
// exercise the whole pool for good measure.
func TestRegressionSignalBijection(t *testing.T) {
	ops := make([]Op, len(sigPool))
	for i := range sigPool {
		ops[i] = Op{Kind: opSignal, A: uint64(i)}
	}
	p := &Program{Seed: 1, Ops: ops}
	divs, _ := Filter(CompareProgram(1, p, fault.Plan{Name: "clean", Seed: 1}), DefaultAllowlist())
	if len(divs) > 0 {
		t.Fatalf("signal round-trip diverges across personas:\n%v", divs[0])
	}
}

// TestRegressionEDEADLKCanonical — canonical 35 (EDEADLK) crossed the
// errno border as BSD 35 (EAGAIN) before the pinning fix.
func TestRegressionEDEADLKCanonical(t *testing.T) {
	p := &Program{Seed: 1, Ops: []Op{{Kind: opGetPID}}}
	plan := fault.Plan{Name: "edeadlk", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpSyscall, Match: "*/getpid", Errno: int(kernel.EDEADLK), Nth: 1},
	}}
	if divs := CompareProgram(1, p, plan); len(divs) > 0 {
		t.Fatalf("EDEADLK injection diverges across personas:\n%v", divs[0])
	}
}

// TestAllowlistGlob pins the signature-pattern dialect.
func TestAllowlistGlob(t *testing.T) {
	cases := []struct {
		pattern, sig string
		want         bool
	}{
		{"*", "anything", true},
		{"counter:signal.xnu_send_translated", "counter:signal.xnu_send_translated", true},
		{"counter:signal.xnu_send_translated", "counter:signal.posted", false},
		{"counter:*", "counter:signal.posted", true},
		{"counter:*", "result:dup", false},
		{"*:dup", "result:dup", true},
		{"*:dup", "result:read", false},
	}
	for _, c := range cases {
		if got := matchSig(c.pattern, c.sig); got != c.want {
			t.Errorf("matchSig(%q, %q) = %v, want %v", c.pattern, c.sig, got, c.want)
		}
	}
}

// TestAllowlistEntriesJustified enforces the allowlist policy
// mechanically: every entry must carry an ID and a Why that cites the
// paper, and must match at least one counter-class signature (behavioral
// classes may not be blanket-allowed).
func TestAllowlistEntriesJustified(t *testing.T) {
	for _, a := range DefaultAllowlist() {
		if a.ID == "" || a.Match == "" {
			t.Errorf("allowlist entry %+v missing ID or Match", a)
		}
		if len(a.Why) < 40 || !strings.Contains(a.Why, "Cider") {
			t.Errorf("allowlist entry %s: Why must cite the paper (got %q)", a.ID, a.Why)
		}
		if !strings.HasPrefix(a.Match, "counter:") {
			t.Errorf("allowlist entry %s allows behavioral class %q — only measurement counters may be allowlisted", a.ID, a.Match)
		}
	}
}
