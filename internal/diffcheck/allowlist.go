package diffcheck

import "strings"

// AllowEntry is one deliberate, source-annotated persona deviation. The
// policy (DESIGN.md "Differential persona testing") is strict: an entry
// must cite why the paper's design *requires* the two personas to differ
// at this signature — measurement-side asymmetries like translation-work
// counters qualify; anything a program could observe through results,
// errnos, or event order does not, and must be fixed instead.
type AllowEntry struct {
	// ID names the entry in reports.
	ID string
	// Match is the signature pattern: exact, "prefix*", "*suffix", or "*".
	Match string
	// Why cites the paper-backed justification.
	Why string
}

// DefaultAllowlist is the repo's deliberate-deviation set.
func DefaultAllowlist() []AllowEntry {
	return []AllowEntry{
		{
			ID:    "xnu-signal-send-counter",
			Match: "counter:signal.xnu_send_translated",
			Why: "iOS-persona kill/sigaction enter through the XNU table, whose " +
				"shim renumbers XNU signals to canonical and counts each " +
				"translation; Android-persona syscalls are canonical natively, so " +
				"the counter is structurally iOS-only. It measures translation " +
				"work, not observable behavior — delivered signal numbers are " +
				"compared separately after canonicalization. Cider §4.1 (persona " +
				"signal delivery) and the Fig. 5 lat_sig overhead make this the " +
				"expected persona cost asymmetry.",
		},
		{
			ID:    "xnu-signal-deliver-counter",
			Match: "counter:signal.xnu_deliver_translated",
			Why: "Delivery-side twin of the send counter: handing a signal to an " +
				"iOS-persona thread translates the number and copies the larger " +
				"XNU sigframe (Cider §4.1, the ~25% lat_sig overhead of Fig. 5). " +
				"The counter tracks that iOS-only work; the handler-observed " +
				"signal numbers themselves are canonicalized and compared.",
		},
		{
			ID:    "xnu-rlimit-counter",
			Match: "counter:rlimit.xnu_translated",
			Why: "iOS-persona getrlimit/setrlimit enter through the XNU table, " +
				"whose shim renumbers XNU resource indices to canonical " +
				"(RLIMIT_NOFILE is 8 on XNU, 7 on Linux; XNU folds RLIMIT_RSS " +
				"into RLIMIT_AS) and counts each renumbering; Android-persona " +
				"calls are canonical natively, so the counter is structurally " +
				"iOS-only. It measures translation work, not observable " +
				"behavior — limit values and errnos are compared after " +
				"canonicalization. The same persona-aware syscall " +
				"interposition Cider §4.1 uses for signal numbering covers " +
				"resource numbering, so this asymmetry is required by design.",
		},
	}
}

// matchSig implements the allowlist glob: exact match, "prefix*",
// "*suffix", or a bare "*" (same dialect as the fault layer's rules).
func matchSig(pattern, sig string) bool {
	switch {
	case pattern == "*":
		return true
	case strings.HasSuffix(pattern, "*"):
		return strings.HasPrefix(sig, pattern[:len(pattern)-1])
	case strings.HasPrefix(pattern, "*"):
		return strings.HasSuffix(sig, pattern[1:])
	}
	return pattern == sig
}

// Filter splits divergences into the residual (unallowlisted) set and a
// per-entry hit count.
func Filter(divs []Divergence, allow []AllowEntry) ([]Divergence, map[string]int) {
	hits := map[string]int{}
	var kept []Divergence
	for _, d := range divs {
		matched := false
		for _, a := range allow {
			if matchSig(a.Match, d.Sig) {
				hits[a.ID]++
				matched = true
				break
			}
		}
		if !matched {
			kept = append(kept, d)
		}
	}
	return kept, hits
}
