package diffcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fault"
	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/sim"
)

// fold is FNV-1a 64 over mixed-type records (the same incremental shape
// soak's schedule digest uses); it fingerprints a pair run for the
// replay digest-equality assertion.
type fold struct{ h uint64 }

func newFold() *fold { return &fold{h: 0xcbf29ce484222325} }

func (d *fold) u64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= uint64(byte(v >> (8 * i)))
		d.h *= 0x100000001b3
	}
}

func (d *fold) str(s string) {
	for i := 0; i < len(s); i++ {
		d.h ^= uint64(s[i])
		d.h *= 0x100000001b3
	}
	d.u64(uint64(len(s)))
}

func (d *fold) sum() uint64 { return d.h }

// foldCell folds everything Compare looks at — the executor log, the
// normalized per-process event streams, the counters, and the cell
// health signals — so equal pair digests imply equal comparisons.
func foldCell(d *fold, r *CellResult) {
	d.str(r.Err)
	d.str(r.LeakErr)
	d.u64(r.Dropped)
	d.u64(uint64(len(r.Log)))
	for _, line := range r.Log {
		d.str(line)
	}
	for _, p := range r.Procs {
		d.str(p)
		for _, line := range r.Events[p] {
			d.str(line)
		}
	}
	names := make([]string, 0, len(r.Counters))
	for n := range r.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d.str(n)
		d.u64(r.Counters[n])
	}
}

// pairRun is one seed's two persona cells executed under explicit
// scheduler policies, with the pre-allowlist divergences and the pair
// digest replay asserts against.
type pairRun struct {
	android, ios *CellResult
	divs         []Divergence
	digest       uint64
}

// runPair executes the program under both personas with the given
// deciders (android cell first, then iOS — the personas never share a
// simulator, so each side has its own decision stream) and diffs.
func runPair(seed uint64, p *Program, plan fault.Plan, decA, decI sim.Decider) pairRun {
	a := RunCellDecided(p, false, plan, decA)
	i := RunCellDecided(p, true, plan, decI)
	pr := pairRun{android: a, ios: i, divs: Compare(seed, a, i)}
	d := newFold()
	d.u64(seed)
	foldCell(d, a)
	foldCell(d, i)
	pr.digest = d.sum()
	return pr
}

// buildArtifact assembles a diffcheck replay artifact: the seed
// regenerates the program and fault plan, the two choice logs pin both
// cells' schedules.
func buildArtifact(seed, exploreSeed uint64, chA, chI []replay.Choice, decCount, digest uint64, note string) *replay.Artifact {
	a := &replay.Artifact{
		Version:       replay.ArtifactVersion,
		Kind:          replay.KindDiffcheck,
		Seed:          seed,
		ExploreSeed:   exploreSeed,
		Decisions:     chA,
		DecisionsIOS:  chI,
		DecisionCount: decCount,
		Note:          note,
	}
	a.SetDigest(digest)
	return a
}

// artifactPath names a diffcheck artifact deterministically from its
// provenance, in dir (or the OS temp dir when dir is empty).
func artifactPath(dir string, seed, exploreSeed uint64) string {
	if dir == "" {
		dir = os.TempDir()
	}
	name := fmt.Sprintf("cider-replay-diffcheck-seed-%x", seed)
	if exploreSeed != 0 {
		name += fmt.Sprintf("-x%d", exploreSeed)
	}
	return filepath.Join(dir, name+".json")
}

// ReplayReport is the outcome of re-executing a diffcheck artifact.
type ReplayReport struct {
	// Digest is the replayed pair digest; it must equal the artifact's.
	Digest uint64
	// DecisionCount totals both cells' consulted decision points.
	DecisionCount uint64
	// Findings are the residual divergences the replayed pair exhibits.
	Findings []string
}

// ReplayArtifact re-executes a diffcheck artifact bit-identically: the
// program and fault plan are regenerated from the seed, and each
// persona cell replays its recorded choice log.
func ReplayArtifact(a *replay.Artifact) (*ReplayReport, error) {
	if a.Kind != replay.KindDiffcheck {
		return nil, fmt.Errorf("diffcheck: artifact kind %q is not %q", a.Kind, replay.KindDiffcheck)
	}
	if a.Seed == 0 {
		return nil, fmt.Errorf("diffcheck: artifact has no program seed")
	}
	p := Generate(a.Seed)
	plan := PlanFor(a.Seed)
	recA := replay.NewRecorder(replay.NewReplayer(a.Decisions))
	recI := replay.NewRecorder(replay.NewReplayer(a.DecisionsIOS))
	pr := runPair(a.Seed, p, plan, recA, recI)
	divs, _ := Filter(pr.divs, DefaultAllowlist())
	rep := &ReplayReport{Digest: pr.digest, DecisionCount: recA.Count() + recI.Count()}
	for _, d := range divs {
		rep.Findings = append(rep.Findings, d.String())
	}
	return rep, nil
}

// ExploreReport summarizes a diffcheck schedule-exploration run. It is
// deterministic for fixed (Options.Seeds, rounds) regardless of Jobs.
type ExploreReport struct {
	// Seeds and Rounds echo the inputs.
	Seeds, Rounds int
	// PairRuns counts explored two-cell executions.
	PairRuns int
	// Decisions totals the scheduler decision points consulted.
	Decisions uint64
	// Perturbed totals the non-canonical choices taken.
	Perturbed uint64
	// Findings are residual divergences explored schedules exposed, each
	// carrying its minimized replay artifact path.
	Findings []string
	// Artifacts lists the minimized artifact files written.
	Artifacts []string
	// Digest fingerprints the full exploration (per-seed, per-round pair
	// digests) — the explorer-determinism criterion.
	Digest uint64
}

// Err folds findings into an error (nil when exploration ran clean).
func (r *ExploreReport) Err() error {
	if len(r.Findings) == 0 {
		return nil
	}
	return fmt.Errorf("diffcheck: explore: %d finding(s)", len(r.Findings))
}

// exOutcome is one seed's exploration results, merged in seed order.
type exOutcome struct {
	runs                 int
	decisions, perturbed uint64
	digests              []uint64
	findings, artifacts  []string
}

// Explore runs every seed's persona pair under `rounds` seeded
// perturbations of both cells' scheduler decisions (DPOR-lite). The
// persona-equivalence invariant must hold under every legal schedule —
// wake order and preemption choices are persona-neutral kernel
// internals — so any residual divergence an explored schedule exposes
// is a real ordering bug. Each is minimized via delta-debug over the
// two choice logs and written out as a one-command replay artifact.
func Explore(o Options, rounds int) (*ExploreReport, error) {
	allow := o.Allowlist
	if allow == nil {
		allow = DefaultAllowlist()
	}
	outcomes, err := runner.Map(o.Seeds, o.Jobs, func(i int) (exOutcome, error) {
		seed := uint64(i + 1)
		p := Generate(seed)
		plan := PlanFor(seed)
		var oc exOutcome
		for round := 1; round <= rounds; round++ {
			// Distinct explorer seeds per cell: the two simulations are
			// independent, so their perturbations should be too.
			recA := replay.NewRecorder(&replay.Explorer{Seed: uint64(round)*2 - 1})
			recI := replay.NewRecorder(&replay.Explorer{Seed: uint64(round) * 2})
			pr := runPair(seed, p, plan, recA, recI)
			oc.runs++
			oc.decisions += recA.Count() + recI.Count()
			oc.perturbed += uint64(len(recA.Choices()) + len(recI.Choices()))
			oc.digests = append(oc.digests, pr.digest)
			divs, _ := Filter(pr.divs, allow)
			if len(divs) == 0 {
				continue
			}
			sig := divs[0].Sig
			chA, chI := minimizePair(seed, p, plan, allow, sig, recA.Choices(), recI.Choices())
			mA := replay.NewRecorder(replay.NewReplayer(chA))
			mI := replay.NewRecorder(replay.NewReplayer(chI))
			mpr := runPair(seed, p, plan, mA, mI)
			if mdivs, _ := Filter(mpr.divs, allow); len(mdivs) == 0 || mdivs[0].Sig != sig {
				// Defensive: minimization only ever keeps reproducing trials,
				// so fall back to the unminimized recording.
				chA, chI = recA.Choices(), recI.Choices()
				mA = replay.NewRecorder(replay.NewReplayer(chA))
				mI = replay.NewRecorder(replay.NewReplayer(chI))
				mpr = runPair(seed, p, plan, mA, mI)
			}
			art := buildArtifact(seed, uint64(round), chA, chI, mA.Count()+mI.Count(), mpr.digest, sig)
			path := artifactPath(o.ArtifactDir, seed, uint64(round))
			if werr := art.WriteFile(path); werr != nil {
				oc.findings = append(oc.findings, fmt.Sprintf("seed %#x: artifact write failed: %v", seed, werr))
				continue
			}
			oc.findings = append(oc.findings, fmt.Sprintf(
				"seed %#x (explore round %d, sig %q, %d non-canonical choices after minimization): reproduce with: cider replay %s",
				seed, round, sig, len(chA)+len(chI), path))
			oc.artifacts = append(oc.artifacts, path)
		}
		return oc, nil
	})
	if err != nil {
		return nil, err
	}
	rep := &ExploreReport{Seeds: o.Seeds, Rounds: rounds}
	d := newFold()
	d.u64(uint64(o.Seeds))
	d.u64(uint64(rounds))
	for i, oc := range outcomes {
		rep.PairRuns += oc.runs
		rep.Decisions += oc.decisions
		rep.Perturbed += oc.perturbed
		rep.Findings = append(rep.Findings, oc.findings...)
		rep.Artifacts = append(rep.Artifacts, oc.artifacts...)
		d.u64(uint64(i + 1))
		for _, dg := range oc.digests {
			d.u64(dg)
		}
	}
	rep.Digest = d.sum()
	return rep, nil
}

// minimizePair delta-debugs the two choice logs of a diverging explored
// pair, one side at a time, while the divergence signature reproduces.
// Each trial re-executes both cells.
func minimizePair(seed uint64, p *Program, plan fault.Plan, allow []AllowEntry, sig string, chA, chI []replay.Choice) ([]replay.Choice, []replay.Choice) {
	repro := func(ta, ti []replay.Choice) bool {
		pr := runPair(seed, p, plan, replay.NewReplayer(ta), replay.NewReplayer(ti))
		divs, _ := Filter(pr.divs, allow)
		return len(divs) > 0 && divs[0].Sig == sig
	}
	chA = replay.MinimizeChoices(chA, 0, func(t []replay.Choice) bool { return repro(t, chI) })
	chI = replay.MinimizeChoices(chI, 0, func(t []replay.Choice) bool { return repro(chA, t) })
	return chA, chI
}
