package diffcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/persona"
	"repro/internal/trace"
)

// normalizeEvent maps one raw trace event to a persona-neutral line, or
// drops it. The normalization rules (documented in DESIGN.md) remove
// exactly the differences the two personas are *supposed* to have:
//
//   - scheduler events are dropped: park/wake timing rides on syscall
//     costs, which legitimately differ per persona;
//   - set_persona syscalls are dropped: the Android cell brackets Mach
//     traps with the diplomat persona hop, the iOS cell doesn't need to;
//   - the XNU table's "sigaction" aliases to Linux's "rt_sigaction" —
//     same kernel operation, different historical name;
//   - signal-delivery events canonicalize the delivered number when the
//     receiver is an iOS-persona thread (the handler saw XNU numbering);
//   - fault-injection keys drop their "<persona>/" prefix;
//   - timestamps and sequence numbers are excluded (Event.Short): virtual
//     time differs by design — Cider charges iOS syscalls more.
//
// Everything else must match event-for-event, per process.
func normalizeEvent(ev trace.Event) (line, procKey string, keep bool) {
	switch ev.Kind {
	case trace.EvSched:
		return "", "", false
	case trace.EvSyscallEnter, trace.EvSyscallExit:
		if ev.Name == "set_persona" {
			return "", "", false
		}
		if ev.Name == "sigaction" {
			ev.Name = "rt_sigaction"
		}
	case trace.EvSignal:
		if ev.Persona == persona.IOS {
			ev.Sysno = kernel.SignalFromXNU(ev.Sysno)
		}
	case trace.EvFault:
		if i := strings.IndexByte(ev.Name, '/'); i >= 0 {
			ev.Name = ev.Name[i+1:]
		}
	}
	return ev.Short(), fmt.Sprintf("%s#%d", ev.Proc, ev.ProcID), true
}

// Divergence is one observed behavioral difference between the two
// persona cells for a seed.
type Divergence struct {
	// Seed is the generating seed.
	Seed uint64
	// Class is the comparison layer that tripped: "cell" (boot/run/trace
	// health), "leak", "result" (executor log), "events" (normalized
	// trace), or "counter".
	Class string
	// Sig is the stable signature allowlist entries match against.
	Sig string
	// Detail is the human-readable evidence.
	Detail string
	// Program is the generating program's text.
	Program string
	// Minimized is the reduced program's text when minimization ran.
	Minimized string
	// Artifact is the replay artifact path for this seed's recorded
	// schedule, when recording was on.
	Artifact string
}

func (d Divergence) String() string {
	s := fmt.Sprintf("seed=%#x class=%s sig=%q\n  %s", d.Seed, d.Class, d.Sig, d.Detail)
	if d.Minimized != "" {
		s += "\n  minimized:\n" + indent(d.Minimized, "    ")
	}
	if d.Artifact != "" {
		s += "\n  reproduce with: cider replay " + d.Artifact
	}
	return s
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return pad + strings.Join(lines, "\n"+pad)
}

// sigToken extracts the op-kind token from an executor log line
// ("03 dup old=..." -> "dup") for stable signatures.
func sigToken(line string) string {
	f := strings.Fields(line)
	if len(f) >= 2 {
		return f[1]
	}
	if len(f) == 1 {
		return f[0]
	}
	return "?"
}

// eventSig extracts "<kind>/<name>" from a normalized event line
// ("sysexit pid1:...[1] dup errno=0" -> "sysexit/dup").
func eventSig(line string) string {
	f := strings.Fields(line)
	switch {
	case len(f) >= 3:
		return f[0] + "/" + f[2]
	case len(f) >= 1:
		return f[0]
	}
	return "?"
}

// Compare diffs two persona cells' results for one seed. The returned
// divergences are pre-allowlist: callers filter them with Filter.
func Compare(seed uint64, android, ios *CellResult) []Divergence {
	var out []Divergence
	add := func(class, sig, format string, args ...any) {
		out = append(out, Divergence{
			Seed: seed, Class: class, Sig: sig, Detail: fmt.Sprintf(format, args...),
		})
	}
	if android.Err != "" || ios.Err != "" {
		if android.Err != ios.Err {
			add("cell", "cell:err", "android=%q ios=%q", android.Err, ios.Err)
		}
		return out // cells that failed to run have nothing else to compare
	}
	if android.Dropped > 0 || ios.Dropped > 0 {
		// Eviction would make the event comparison lie by omission; with
		// a 64Ki ring this means the generator grew past its design size.
		add("cell", "cell:dropped", "android=%d ios=%d dropped trace events",
			android.Dropped, ios.Dropped)
		return out
	}
	if android.LeakErr != ios.LeakErr {
		add("leak", "leak:mismatch", "android=%q ios=%q", android.LeakErr, ios.LeakErr)
	}

	// Executor result log: first differing line.
	for i := 0; i < len(android.Log) || i < len(ios.Log); i++ {
		al, il := "<missing>", "<missing>"
		if i < len(android.Log) {
			al = android.Log[i]
		}
		if i < len(ios.Log) {
			il = ios.Log[i]
		}
		if al != il {
			add("result", "result:"+sigToken(al), "op %d:\n    android: %s\n    ios:     %s", i, al, il)
			break
		}
	}

	// Normalized event streams, compared per process: cross-process
	// interleaving at unequal virtual cost is expected, intra-process
	// order is not allowed to differ.
	procs := map[string]bool{}
	for _, p := range android.Procs {
		procs[p] = true
	}
	for _, p := range ios.Procs {
		procs[p] = true
	}
	sorted := make([]string, 0, len(procs))
	for p := range procs {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	for _, p := range sorted {
		as, is := android.Events[p], ios.Events[p]
		for i := 0; i < len(as) || i < len(is); i++ {
			al, il := "<missing>", "<missing>"
			if i < len(as) {
				al = as[i]
			}
			if i < len(is) {
				il = is[i]
			}
			if al != il {
				add("events", "events:"+eventSig(al), "proc %s event %d:\n    android: %s\n    ios:     %s",
					p, i, al, il)
				break
			}
		}
	}

	// Named counters: union of names.
	names := map[string]bool{}
	for n := range android.Counters {
		names[n] = true
	}
	for n := range ios.Counters {
		names[n] = true
	}
	cn := make([]string, 0, len(names))
	for n := range names {
		cn = append(cn, n)
	}
	sort.Strings(cn)
	for _, n := range cn {
		if android.Counters[n] != ios.Counters[n] {
			add("counter", "counter:"+n, "android=%d ios=%d", android.Counters[n], ios.Counters[n])
		}
	}
	return out
}

// CheckSeed generates the seed's program and fault plan, runs both
// persona cells, and returns the pre-allowlist divergences.
func CheckSeed(seed uint64) ([]Divergence, *Program) {
	p := Generate(seed)
	plan := PlanFor(seed)
	return CompareProgram(seed, p, plan), p
}

// CompareProgram runs one explicit program under both personas and diffs.
func CompareProgram(seed uint64, p *Program, plan fault.Plan) []Divergence {
	android := RunCell(p, false, plan)
	ios := RunCell(p, true, plan)
	return Compare(seed, android, ios)
}
