package abi_test

import (
	"testing"
	"time"

	"repro/internal/bionic"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
)

// TestCrossPersonaSignalDelivery verifies Section 4.1: "Android apps (or
// threads) can deliver signals to iOS apps (or threads) and vice-versa",
// with the kernel translating numbering per the receiving persona.
func TestCrossPersonaSignalDelivery(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}

	iosSaw := -1
	androidSaw := -1
	var iosPID, androidPID int
	iosReady, androidReady := false, false

	// The iOS app installs a handler for XNU SIGUSR1 (30) and waits.
	sys.InstallIOSBinary("/Applications/R.app/R", "sig-receiver", nil, func(c *prog.Call) uint64 {
		lc := libsystem.Sys(c.Ctx.(*kernel.Thread))
		iosPID = lc.GetPID()
		lc.Sigaction(30, func(ht *kernel.Thread, sig int) { iosSaw = sig })
		iosReady = true
		for iosSaw < 0 {
			// Poll through a syscall: pending signals are delivered on the
			// return-to-user path.
			lc.GetPPID()
			lc.T.Proc().Sleep(time.Millisecond)
		}
		return 0
	})

	// The Android app installs a handler for Linux SIGUSR1 (10), then
	// signals the iOS app using the *Linux* number.
	sys.InstallStaticAndroidBinary("/system/bin/sender", "sig-sender", func(c *prog.Call) uint64 {
		lc := bionic.Sys(c.Ctx.(*kernel.Thread))
		androidPID = lc.GetPID()
		lc.Sigaction(kernel.SIGUSR1, func(ht *kernel.Thread, sig int) { androidSaw = sig })
		androidReady = true
		for !iosReady {
			lc.T.Proc().Sleep(time.Millisecond)
		}
		// Android -> iOS with Linux numbering.
		if errno := lc.Kill(iosPID, kernel.SIGUSR1); errno != kernel.OK {
			t.Errorf("android->ios kill: %v", errno)
		}
		// Wait to be signaled back.
		for androidSaw < 0 {
			lc.GetPPID()
			lc.T.Proc().Sleep(time.Millisecond)
		}
		return 0
	})

	// A third process: an iOS binary signaling the Android app using the
	// *XNU* number (30).
	sys.InstallIOSBinary("/Applications/S.app/S", "ios-sender", nil, func(c *prog.Call) uint64 {
		lc := libsystem.Sys(c.Ctx.(*kernel.Thread))
		for !androidReady || iosSaw < 0 {
			lc.T.Proc().Sleep(time.Millisecond)
		}
		if errno := lc.Kill(androidPID, 30); errno != kernel.OK {
			t.Errorf("ios->android kill: %v", errno)
		}
		return 0
	})

	sys.Start("/Applications/R.app/R", nil)
	sys.Start("/system/bin/sender", nil)
	sys.Start("/Applications/S.app/S", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	// The iOS handler must see the XNU number (30) even though the sender
	// used Linux numbering.
	if iosSaw != 30 {
		t.Errorf("iOS handler saw %d, want 30 (XNU SIGUSR1)", iosSaw)
	}
	// The Android handler must see the Linux number (10) even though the
	// sender used XNU numbering.
	if androidSaw != kernel.SIGUSR1 {
		t.Errorf("Android handler saw %d, want %d (Linux SIGUSR1)", androidSaw, kernel.SIGUSR1)
	}
}

// TestSignalInterruptsBlockedIOSSyscall: a signal delivered to an iOS
// thread blocked in a translated syscall interrupts it with EINTR (BSD
// numbering in the iOS TLS).
func TestSignalInterruptsBlockedIOSSyscall(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	var readN int
	var readErrno kernel.Errno
	handled := false
	var pid int
	ready := false
	sys.InstallIOSBinary("/bin/blocked", "blocked", nil, func(c *prog.Call) uint64 {
		lc := libsystem.Sys(c.Ctx.(*kernel.Thread))
		pid = lc.GetPID()
		lc.Sigaction(30, func(*kernel.Thread, int) { handled = true })
		r, _, _ := lc.Pipe()
		ready = true
		buf := make([]byte, 1)
		readN, readErrno = lc.Read(r, buf) // blocks until the signal lands
		return 0
	})
	sys.InstallStaticAndroidBinary("/bin/killer", "killer", func(c *prog.Call) uint64 {
		lc := bionic.Sys(c.Ctx.(*kernel.Thread))
		for !ready {
			lc.T.Proc().Sleep(time.Millisecond)
		}
		lc.T.Proc().Sleep(5 * time.Millisecond)
		lc.Kill(pid, kernel.SIGUSR1)
		return 0
	})
	sys.Start("/bin/blocked", nil)
	sys.Start("/bin/killer", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !handled {
		t.Fatal("handler did not run")
	}
	if readN != 0 || readErrno != kernel.EINTR {
		t.Fatalf("read = %d/%v, want 0/EINTR", readN, readErrno)
	}
}

// TestIOKitMIGTraps exercises the I/O Kit access path the paper describes
// ("accessed via Mach IPC"): an iOS binary matching the framebuffer class
// and calling its methods through the MIG traps.
func TestIOKitMIGTraps(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	var w, h uint64
	var matches int
	sys.InstallIOSBinary("/bin/iokit", "iokit-app", nil, func(c *prog.Call) uint64 {
		lc := libsystem.Sys(c.Ctx.(*kernel.Thread))
		entry, n := lc.IOServiceGetMatchingService("AppleM2CLCD")
		matches = n
		if n == 0 {
			return 1
		}
		w, h, _ = lc.IOConnectCallMethod(entry, 1 /* SelGetDisplaySize */)
		// Unknown class: no match, no crash.
		if _, zero := lc.IOServiceGetMatchingService("AppleNonexistent"); zero != 0 {
			return 2
		}
		return 0
	})
	sys.Start("/bin/iokit", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if matches != 1 {
		t.Fatalf("matches = %d", matches)
	}
	if w != 1280 || h != 800 {
		t.Fatalf("display = %dx%d, want 1280x800", w, h)
	}
}
