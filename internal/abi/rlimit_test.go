package abi

import (
	"testing"

	"repro/internal/kernel"
)

// Rlimit resource numbers are persona-domain payloads: XNU says
// RLIMIT_NOFILE is 8 where Linux says 7, and XNU conflates RLIMIT_RSS and
// RLIMIT_AS into one number (5). The XNU table wrappers must renumber at
// the boundary — an untranslated number silently reads or caps the wrong
// resource.

func TestRlimitNumberingRoundTrip(t *testing.T) {
	cases := []struct{ linux, xnu int }{
		{kernel.RLimitCPU, XNURLimitCPU},
		{kernel.RLimitFSize, XNURLimitFSize},
		{kernel.RLimitData, XNURLimitData},
		{kernel.RLimitStack, XNURLimitStack},
		{kernel.RLimitCore, XNURLimitCore},
		{kernel.RLimitAS, XNURLimitAS},
		{kernel.RLimitMemlock, XNURLimitMemlock},
		{kernel.RLimitNProc, XNURLimitNProc},
		{kernel.RLimitNoFile, XNURLimitNoFile},
	}
	for _, c := range cases {
		if got := kernel.RlimitToXNU(c.linux); got != c.xnu {
			t.Errorf("RlimitToXNU(%d) = %d, want %d", c.linux, got, c.xnu)
		}
		if got := kernel.RlimitFromXNU(c.xnu); got != c.linux {
			t.Errorf("RlimitFromXNU(%d) = %d, want %d", c.xnu, got, c.linux)
		}
	}
	// The deliberate non-bijection: canonical RSS also lands on XNU 5,
	// whose inverse resolves to AS (the limit XNU enforces there).
	if got := kernel.RlimitToXNU(kernel.RLimitRSS); got != XNURLimitAS {
		t.Errorf("RlimitToXNU(RSS) = %d, want %d", got, XNURLimitAS)
	}
}

func TestXNURlimitSyscallsTranslate(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	var cur, max uint64
	var after kernel.RLimit
	var badSet kernel.Errno
	e.runIOS(t, func(th *kernel.Thread) {
		// getrlimit with XNU's NOFILE number (8) must read the canonical
		// NOFILE slot (7), not MEMLOCK (what untranslated 8 would hit).
		r := th.Syscall(XNUGetrlimit, &kernel.SyscallArgs{I: [6]uint64{XNURLimitNoFile}})
		cur, max = r.R0, r.R1
		// setrlimit through the XNU number must land on the same slot.
		th.Syscall(XNUSetrlimit, &kernel.SyscallArgs{I: [6]uint64{XNURLimitNoFile, 128, 2048}})
		after = th.Task().Rlimit(kernel.RLimitNoFile)
		badSet = th.Syscall(XNUSetrlimit, &kernel.SyscallArgs{I: [6]uint64{XNURLimitNoFile, 10, 5}}).Errno
	})
	if cur != kernel.DefaultNoFileCur || max != kernel.DefaultNoFileMax {
		t.Fatalf("XNU getrlimit(NOFILE) = (%d, %d), want boot defaults (%d, %d)",
			cur, max, kernel.DefaultNoFileCur, kernel.DefaultNoFileMax)
	}
	if after.Cur != 128 || after.Max != 2048 {
		t.Fatalf("canonical NOFILE after XNU setrlimit = %+v, want {128 2048}", after)
	}
	if badSet != kernel.EINVAL {
		t.Fatalf("XNU setrlimit(cur > max) = %v, want EINVAL", badSet)
	}
}
