package abi

import (
	"testing"

	"repro/internal/kernel"
)

// Regression tests for two divergences the differential persona oracle
// (internal/diffcheck) located: both fail if the corresponding XNU-table
// entry is removed or de-translated again.

// TestXNUDupDispatches pins the oracle's fd-state finding: the XNU table
// had no dup entry, so every iOS-persona dup returned ENOSYS while the
// Android persona duplicated the descriptor fine.
func TestXNUDupDispatches(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	var dupFD int64
	var dupErr, closeErr kernel.Errno
	e.runIOS(t, func(th *kernel.Thread) {
		ret := th.Syscall(XNUCreat, &kernel.SyscallArgs{Path: "/dup-target"})
		if ret.Errno != kernel.OK {
			t.Errorf("creat: %v", ret.Errno)
			return
		}
		dup := th.Syscall(XNUDup, &kernel.SyscallArgs{I: [6]uint64{ret.R0}})
		dupFD, dupErr = int64(dup.R0), dup.Errno
		closeErr = th.Syscall(XNUClose, &kernel.SyscallArgs{I: [6]uint64{dup.R0}}).Errno
	})
	if dupErr != kernel.OK {
		t.Fatalf("iOS dup: errno = %v, want OK", dupErr)
	}
	if dupFD < 0 {
		t.Fatalf("iOS dup returned fd %d", dupFD)
	}
	if closeErr != kernel.OK {
		t.Fatalf("close of duplicated fd: %v — dup returned a dangling descriptor", closeErr)
	}
}

// TestXNUOpenTranslatesCreateFlags pins the oracle's errno finding on
// open: the XNU table forwarded flag bits untranslated, and XNU's
// O_CREAT (0x200) is not Linux's (0x40), so an iOS open(path, O_CREAT)
// on a missing file failed ENOENT instead of creating it.
func TestXNUOpenTranslatesCreateFlags(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	var errno kernel.Errno
	e.runIOS(t, func(th *kernel.Thread) {
		errno = th.Syscall(XNUOpen, &kernel.SyscallArgs{
			Path: "/created-via-xnu-flags", I: [6]uint64{0, XNUOCreat},
		}).Errno
	})
	if errno != kernel.OK {
		t.Fatalf("iOS open(O_CREAT) on missing file: errno = %v, want OK", errno)
	}
	if _, err := e.fs.Lookup("/created-via-xnu-flags"); err != nil {
		t.Fatalf("file was not created: %v", err)
	}
}
