package abi

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/persona"
	"repro/internal/prog"
)

// BenchmarkSyscallDispatch times a null syscall (getpid) through the full
// trap path — entry/persona/exit charging, table lookup, fault consult,
// signal check — under each persona. The iOS number rides the XNU table
// with its translation surcharge, so the two subbenchmarks bound the
// per-dispatch host cost Figure 5's ns/sim-syscall decomposes into.
func BenchmarkSyscallDispatch(b *testing.B) {
	b.Run("linux", func(b *testing.B) { benchDispatch(b, false) })
	b.Run("ios", func(b *testing.B) { benchDispatch(b, true) })
}

func benchDispatch(b *testing.B, ios bool) {
	e := newEnv(b, kernel.ProfileCider)
	ran := false
	e.k.Registry().MustRegister("bench-null", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		num := kernel.SysGetpid
		if ios {
			th.Persona.Switch(persona.IOS)
			num = XNUGetpid
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.Syscall(num, nil)
		}
		b.StopTimer()
		ran = true
		return 0
	})
	bin, err := prog.StaticELF("bench-null")
	if err != nil {
		b.Fatal(err)
	}
	if err := e.fs.WriteFile("/bin/bench-null", bin); err != nil {
		b.Fatal(err)
	}
	if _, err := e.k.StartProcess("/bin/bench-null", nil); err != nil {
		b.Fatal(err)
	}
	if err := e.s.Run(); err != nil {
		b.Fatal(err)
	}
	if !ran {
		b.Fatal("bench body did not run")
	}
}
