// Package abi implements the XNU kernel ABI on the domestic kernel
// (Section 4.1): the syscall dispatch table Cider installs for the iOS
// persona. XNU BSD syscalls are implemented as thin wrappers that map
// arguments from XNU structures/conventions to Linux ones and then
// "directly invoke existing Linux syscall implementations"; XNU-only calls
// (posix_spawn, the Mach traps, psynch) are built from combinations of
// Linux primitives and the duct-taped subsystems in internal/xnu.
//
// iOS binaries trap into the kernel in four different ways (the four trap
// classes); the XNU table demultiplexes them, and its per-call Entry/Exit
// extras carry the translation costs that produce the 40% null-syscall
// overhead of Fig. 5.
package abi

import (
	"fmt"
	"time"

	"repro/internal/iokit"
	"repro/internal/kernel"
	"repro/internal/persona"
	"repro/internal/trace"
	"repro/internal/xnu"
)

// TrapClass is one of the four XNU trap entry paths.
type TrapClass int

const (
	// TrapUnix is a BSD (POSIX) syscall.
	TrapUnix TrapClass = iota
	// TrapMach is a Mach trap (negative numbers in XNU's convention).
	TrapMach
	// TrapMachDep is a machine-dependent call (cache flush, TLS set).
	TrapMachDep
	// TrapDiag is a diagnostics call.
	TrapDiag
)

// XNU BSD syscall numbers (bsd/kern/syscalls.master) for the calls the
// simulation implements. Where XNU and Linux numbering differ, the wrapper
// here is exactly the renumbering + convention shim Cider generates.
const (
	XNUExit   = 1
	XNUFork   = 2
	XNURead   = 3
	XNUWrite  = 4
	XNUOpen   = 5
	XNUClose  = 6
	XNUWait4  = 7
	XNUUnlink = 10
	XNUGetpid = 20
	// XNUDup is dup(2); XNU and Linux/ARM happen to agree on 41, but the
	// entry must still exist in this table — its absence made every
	// iOS-persona dup return ENOSYS while the Android persona's worked,
	// the first fd-state divergence the differential oracle flagged.
	XNUDup        = 41
	XNUKill       = 37
	XNUGetppid    = 39
	XNUPipe       = 42
	XNUSigaction  = 46
	XNUIoctl      = 54
	XNUExecve     = 59
	XNUSelect     = 93
	XNUSocketpair = 135
	XNUCreat      = 8 // via open(O_CREAT) on real XNU; kept for symmetry
	XNUGetrlimit  = 194
	XNUSetrlimit  = 195
	// XNUPosixSpawn is posix_spawn, "a flexible method of starting a
	// thread or new application" with no Linux equivalent; Cider builds it
	// from clone + exec (Section 4.1).
	XNUPosixSpawn = 244
	// Psynch syscalls (pthread kernel support, bsd/kern/pthread_support.c).
	XNUPsynchMutexWait = 301
	XNUPsynchMutexDrop = 302
	XNUPsynchCVWait    = 305
	XNUPsynchCVSignal  = 304
	XNUPsynchCVBroad   = 303
)

// XNU open(2) flag bits (bsd/sys/fcntl.h). They do not coincide with
// Linux's: XNU O_CREAT is 0x200, which on Linux is O_TRUNC. The open
// wrapper renumbers them before calling the Linux implementation —
// forwarding them raw made iOS-persona open(path, O_CREAT) fail ENOENT
// instead of creating the file (the kernel saw Linux 0x200 and no create
// bit), another oracle-flagged divergence.
const (
	// XNUOCreat is XNU's O_CREAT.
	XNUOCreat = 0x200
	// XNUOTrunc and XNUOExcl are translated alongside for completeness.
	XNUOTrunc = 0x400
	XNUOExcl  = 0x800
)

// XNU rlimit resource numbers (bsd/sys/resource.h). They do not coincide
// with Linux's: XNU RLIMIT_NOFILE is 8 where Linux says 7, and XNU
// conflates RLIMIT_RSS/RLIMIT_AS into one number (5). The getrlimit and
// setrlimit wrappers renumber before calling the Linux implementation —
// resource numbers are persona-domain payloads, like signal numbers.
const (
	// XNURLimitCPU through XNURLimitCore coincide with Linux numbering.
	XNURLimitCPU   = 0
	XNURLimitFSize = 1
	XNURLimitData  = 2
	XNURLimitStack = 3
	XNURLimitCore  = 4
	// XNURLimitAS is RLIMIT_AS == RLIMIT_RSS on XNU.
	XNURLimitAS      = 5
	XNURLimitMemlock = 6
	XNURLimitNProc   = 7
	XNURLimitNoFile  = 8
)

// Mach trap numbers (osfmk/kern/syscall_sw.c, negated as XNU does).
const (
	// MachReplyPort allocates a reply port (mach_reply_port).
	MachReplyPort = -26
	// TaskSelfTrap returns the task's self port.
	TaskSelfTrap = -28
	// MachMsgTrap is mach_msg_trap, the heart of Mach IPC.
	MachMsgTrap = -31
	// SemaphoreSignalTrap / SemaphoreWaitTrap are the fast semaphore traps.
	SemaphoreSignalTrap = -33
	SemaphoreWaitTrap   = -36
	// SetPersonaTrap is Cider's new set_persona syscall, reachable from
	// the foreign persona's table too ("available from all personas").
	SetPersonaTrap = -90
	// IOServiceMatchingTrap and IOConnectCallTrap model the I/O Kit MIG
	// calls (is_io_service_get_matching_services / io_connect_method) that
	// real user space sends to the master device port; the simulation
	// routes them as traps into the duct-taped registry (Section 5.1:
	// I/O Kit "is accessed via Mach IPC").
	IOServiceMatchingTrap = -40
	IOConnectCallTrap     = -41
)

// MachMsgOptions selects send/receive for MachMsgTrap via SyscallArgs.I[1].
const (
	// MachSendMsg is MACH_SEND_MSG.
	MachSendMsg = 1
	// MachRcvMsg is MACH_RCV_MSG.
	MachRcvMsg = 2
)

// MsgCarrier passes a Mach message through the generic syscall argument
// structure (the simulated equivalent of the user-space message buffer).
type MsgCarrier struct {
	// Msg is the message to send, or the received message on return.
	Msg *xnu.Message
	// Timeout bounds the operation (<0 blocks).
	Timeout time.Duration
	// Result is the received message.
	Result *xnu.Message
}

// The mach traps accept the carrier through a typed side channel: user
// data keyed per *thread* (each thread has its own message buffer on its
// own stack, so two threads trapping concurrently must not clobber each
// other). libsystem sets it before trapping, mirroring how real user space
// passes a message buffer pointer the kernel copies in.
func carrierKey(t *kernel.Thread) string {
	return fmt.Sprintf("mach.carrier.%d", t.TID())
}

// SetCarrier installs the message buffer for the next MachMsgTrap.
func SetCarrier(t *kernel.Thread, c *MsgCarrier) {
	t.Task().SetUserData(carrierKey(t), c)
}

// InstallXNUTable builds the iOS persona's syscall dispatch table and
// installs it on the kernel. It requires the Linux table (translation
// wrappers call into its handlers) and the duct-taped Mach IPC / psynch
// subsystems.
func InstallXNUTable(k *kernel.Kernel) *kernel.SyscallTable {
	return installXNU(k, false)
}

// InstallNativeXNUTable builds the XNU table for a kernel where the XNU
// ABI is native (the iPad mini configuration): the same operations with no
// demux/translation extras, and no Android persona table exposed.
func InstallNativeXNUTable(k *kernel.Kernel) *kernel.SyscallTable {
	// The generic operation implementations live in the Linux table
	// builder; install it as a substrate, build the native XNU view, then
	// withdraw the Android-persona table (an iPad runs no Linux ABI).
	k.InstallLinuxTable()
	tb := installXNU(k, true)
	k.SetSyscallTable(persona.Android, nil)
	return tb
}

func installXNU(k *kernel.Kernel, native bool) *kernel.SyscallTable {
	linux := k.SyscallTableFor(persona.Android)
	costs := k.Costs()
	tb := kernel.NewSyscallTable("xnu")
	if !native {
		tb.EntryExtra = costs.XNUTrapDemux + costs.XNUArgTranslate
		tb.ExitExtra = costs.XNURetTranslate
	}

	// wrap forwards an XNU syscall to the Linux implementation of the
	// same operation, optionally transforming arguments first. This is
	// Cider's "simple wrapper that maps arguments from XNU structures to
	// Linux structures and then calls the Linux implementation".
	wrap := func(xnuNum, linuxNum int, name string, xform func(t *kernel.Thread, a *kernel.SyscallArgs)) {
		h, ok := linux.Lookup(linuxNum)
		if !ok {
			panic("abi: linux table missing " + name)
		}
		tb.Register(xnuNum, name, func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
			if xform != nil {
				xform(t, a)
			}
			return h(t, a)
		})
	}

	wrap(XNUExit, kernel.SysExit, "exit", nil)
	wrap(XNUFork, kernel.SysFork, "fork", nil)
	wrap(XNURead, kernel.SysRead, "read", nil)
	wrap(XNUWrite, kernel.SysWrite, "write", nil)
	// open: XNU flag bits are renumbered to Linux's before the Linux
	// implementation sees them (O_CREAT 0x200 -> 0x40, etc.). Access-mode
	// bits (O_RDONLY/O_WRONLY/O_RDWR) coincide and pass through; unknown
	// bits are dropped rather than forwarded as a wrong Linux flag.
	wrap(XNUOpen, kernel.SysOpen, "open", func(t *kernel.Thread, a *kernel.SyscallArgs) {
		x := a.I[1]
		l := x & 0x3 // access mode
		if x&XNUOCreat != 0 {
			l |= kernel.OCreat
		}
		if x&XNUOTrunc != 0 {
			l |= 0x200 // Linux O_TRUNC
		}
		if x&XNUOExcl != 0 {
			l |= 0x80 // Linux O_EXCL
		}
		a.I[1] = l
	})
	wrap(XNUClose, kernel.SysClose, "close", nil)
	wrap(XNUWait4, kernel.SysWait4, "wait4", nil)
	wrap(XNUUnlink, kernel.SysUnlink, "unlink", nil)
	wrap(XNUGetpid, kernel.SysGetpid, "getpid", nil)
	wrap(XNUGetppid, kernel.SysGetppid, "getppid", nil)
	wrap(XNUPipe, kernel.SysPipe, "pipe", nil)
	wrap(XNUIoctl, kernel.SysIoctl, "ioctl", nil)
	wrap(XNUSelect, kernel.SysSelect, "select", nil)
	wrap(XNUExecve, kernel.SysExecve, "execve", nil)
	wrap(XNUSocketpair, kernel.SysSocketpair, "socketpair", nil)
	wrap(XNUCreat, kernel.SysCreat, "creat", nil)
	wrap(XNUDup, kernel.SysDup, "dup", nil)

	// kill: the signal number arrives in XNU numbering; renumber to the
	// canonical (Linux) value before invoking the Linux implementation.
	wrap(XNUKill, kernel.SysKill, "kill", func(t *kernel.Thread, a *kernel.SyscallArgs) {
		a.I[1] = uint64(kernel.SignalFromXNU(int(a.I[1])))
		if tr := t.Kernel().Tracer(); tr != nil {
			tr.Count(trace.CounterSignalXNUSend, 1)
		}
	})
	// sigaction: same renumbering for the signal being configured. The
	// handler itself receives XNU numbers at delivery time (the kernel's
	// signal layer translates based on the thread persona).
	wrap(XNUSigaction, kernel.SysRtSigaction, "sigaction", func(t *kernel.Thread, a *kernel.SyscallArgs) {
		a.I[0] = uint64(kernel.SignalFromXNU(int(a.I[0])))
		if tr := t.Kernel().Tracer(); tr != nil {
			tr.Count(trace.CounterSignalXNUSend, 1)
		}
	})

	// getrlimit/setrlimit: the resource number arrives in XNU numbering;
	// renumber to the canonical (Linux) value before invoking the Linux
	// implementation. The limit values themselves are plain byte counts
	// in both ABIs and pass through.
	wrap(XNUGetrlimit, kernel.SysGetrlimit, "getrlimit", func(t *kernel.Thread, a *kernel.SyscallArgs) {
		a.I[0] = uint64(kernel.RlimitFromXNU(int(a.I[0])))
		if tr := t.Kernel().Tracer(); tr != nil {
			tr.Count(trace.CounterRlimitXlate, 1)
		}
	})
	wrap(XNUSetrlimit, kernel.SysSetrlimit, "setrlimit", func(t *kernel.Thread, a *kernel.SyscallArgs) {
		a.I[0] = uint64(kernel.RlimitFromXNU(int(a.I[0])))
		if tr := t.Kernel().Tracer(); tr != nil {
			tr.Count(trace.CounterRlimitXlate, 1)
		}
	})

	// posix_spawn: built from the Linux fork (clone) and exec
	// implementations, as the paper describes.
	tb.Register(XNUPosixSpawn, "posix_spawn", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		forkH, _ := linux.Lookup(kernel.SysFork)
		path, argv := a.Path, a.Argv
		fa := &kernel.SyscallArgs{ChildFn: func(ct *kernel.Thread) {
			// The child inherits the caller's persona, so trap with that
			// persona's syscall numbers.
			execNum, exitNum := kernel.SysExecve, kernel.SysExit
			if ct.Persona.Current() == persona.IOS {
				execNum, exitNum = XNUExecve, XNUExit
			}
			ct.Syscall(execNum, &kernel.SyscallArgs{Path: path, Argv: argv})
			// exec only returns on failure.
			ct.Syscall(exitNum, &kernel.SyscallArgs{I: [6]uint64{127}})
		}}
		return forkH(t, fa)
	})

	// Mach traps -------------------------------------------------------
	tb.Register(MachMsgTrap, "mach_msg", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		ipc, ok := xnu.FromKernel(t.Kernel())
		if !ok {
			return kernel.SyscallRet{Errno: kernel.ENOSYS}
		}
		cv, ok := t.Task().UserData(carrierKey(t))
		if !ok {
			return kernel.SyscallRet{Errno: kernel.EINVAL}
		}
		c := cv.(*MsgCarrier)
		name := xnu.PortName(a.I[0])
		opts := a.I[1]
		var kr xnu.KernReturn
		switch {
		case opts&MachSendMsg != 0:
			kr = ipc.Send(t, name, c.Msg, c.Timeout)
		case opts&MachRcvMsg != 0:
			c.Result, kr = ipc.Receive(t, name, c.Timeout)
		default:
			return kernel.SyscallRet{Errno: kernel.EINVAL}
		}
		return kernel.SyscallRet{R0: uint64(kr)}
	})
	tb.Register(MachReplyPort, "mach_reply_port", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		ipc, ok := xnu.FromKernel(t.Kernel())
		if !ok {
			return kernel.SyscallRet{Errno: kernel.ENOSYS}
		}
		name, kr := ipc.PortAllocate(t)
		if kr != xnu.KernSuccess {
			return kernel.SyscallRet{R0: uint64(xnu.PortNull)}
		}
		return kernel.SyscallRet{R0: uint64(name)}
	})
	tb.Register(TaskSelfTrap, "task_self", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		// The task self port name is modeled as pid-tagged.
		//lint:allow chargecheck: task_self returns a cached name, modeled at trap entry/exit cost only
		return kernel.SyscallRet{R0: uint64(0x900 + t.Task().PID())}
	})
	tb.Register(SemaphoreWaitTrap, "semaphore_wait", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		ps, ok := xnu.PsynchFromKernel(t.Kernel())
		if !ok {
			return kernel.SyscallRet{Errno: kernel.ENOSYS}
		}
		return kernel.SyscallRet{R0: uint64(ps.SemWait(t, a.I[0]))}
	})
	tb.Register(SemaphoreSignalTrap, "semaphore_signal", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		ps, ok := xnu.PsynchFromKernel(t.Kernel())
		if !ok {
			return kernel.SyscallRet{Errno: kernel.ENOSYS}
		}
		return kernel.SyscallRet{R0: uint64(ps.SemSignal(t, a.I[0]))}
	})

	// psynch BSD syscalls ----------------------------------------------
	tb.Register(XNUPsynchMutexWait, "psynch_mutexwait", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		ps, ok := xnu.PsynchFromKernel(t.Kernel())
		if !ok {
			return kernel.SyscallRet{Errno: kernel.ENOSYS}
		}
		return kernel.SyscallRet{R0: uint64(ps.MutexWait(t, a.I[0]))}
	})
	tb.Register(XNUPsynchMutexDrop, "psynch_mutexdrop", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		ps, ok := xnu.PsynchFromKernel(t.Kernel())
		if !ok {
			return kernel.SyscallRet{Errno: kernel.ENOSYS}
		}
		return kernel.SyscallRet{R0: uint64(ps.MutexDrop(t, a.I[0]))}
	})
	tb.Register(XNUPsynchCVWait, "psynch_cvwait", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		ps, ok := xnu.PsynchFromKernel(t.Kernel())
		if !ok {
			return kernel.SyscallRet{Errno: kernel.ENOSYS}
		}
		timedOut, kr := ps.CVWait(t, a.I[0], a.I[1], time.Duration(a.I[2]))
		r1 := uint64(0)
		if timedOut {
			r1 = 1
		}
		return kernel.SyscallRet{R0: uint64(kr), R1: r1}
	})
	tb.Register(XNUPsynchCVSignal, "psynch_cvsignal", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		ps, ok := xnu.PsynchFromKernel(t.Kernel())
		if !ok {
			return kernel.SyscallRet{Errno: kernel.ENOSYS}
		}
		return kernel.SyscallRet{R0: uint64(ps.CVSignal(t, a.I[0]))}
	})
	tb.Register(XNUPsynchCVBroad, "psynch_cvbroad", func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
		ps, ok := xnu.PsynchFromKernel(t.Kernel())
		if !ok {
			return kernel.SyscallRet{Errno: kernel.ENOSYS}
		}
		return kernel.SyscallRet{R0: uint64(ps.CVBroadcast(t, a.I[0]))}
	})

	// I/O Kit MIG surface ----------------------------------------------
	tb.Register(IOServiceMatchingTrap, "io_service_get_matching_services",
		func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
			reg, ok := iokit.FromKernel(t.Kernel())
			if !ok {
				return kernel.SyscallRet{Errno: kernel.ENOSYS}
			}
			// The class name rides in Path (the simulated message body).
			matches := reg.ServiceMatching(t, a.Path)
			if len(matches) == 0 {
				return kernel.SyscallRet{R0: 0}
			}
			return kernel.SyscallRet{R0: matches[0].ID, R1: uint64(len(matches))}
		})
	tb.Register(IOConnectCallTrap, "io_connect_method",
		func(t *kernel.Thread, a *kernel.SyscallArgs) kernel.SyscallRet {
			reg, ok := iokit.FromKernel(t.Kernel())
			if !ok {
				return kernel.SyscallRet{Errno: kernel.ENOSYS}
			}
			out, err := reg.Call(t, a.I[0], uint32(a.I[1]), a.I[2:])
			if err != nil {
				return kernel.SyscallRet{Errno: kernel.EINVAL}
			}
			ret := kernel.SyscallRet{}
			if len(out) > 0 {
				ret.R0 = out[0]
			}
			if len(out) > 1 {
				ret.R1 = out[1]
			}
			return ret
		})

	// set_persona is reachable from all personas (Section 4.3).
	if k.PersonaAware() {
		if h, ok := linux.Lookup(kernel.SysSetPersona); ok {
			tb.Register(SetPersonaTrap, "set_persona", h)
			tb.Register(kernel.SysSetPersona, "set_persona", h)
		}
	}

	k.SetSyscallTable(persona.IOS, tb)
	return tb
}
