package abi

import (
	"testing"
	"time"

	"repro/internal/ducttape"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/persona"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xnu"
)

type env struct {
	s  *sim.Sim
	k  *kernel.Kernel
	fs *vfs.FS
}

func newEnv(t testing.TB, profile kernel.Profile) *env {
	t.Helper()
	s := sim.New()
	fs := vfs.New()
	k, err := kernel.New(s, kernel.Config{
		Profile: profile, Device: hw.Nexus7(), Root: fs, Registry: prog.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dt := ducttape.NewEnv(k)
	if _, err := xnu.InstallIPC(k, dt); err != nil {
		t.Fatal(err)
	}
	if _, err := xnu.InstallPsynch(k, dt); err != nil {
		t.Fatal(err)
	}
	if profile == kernel.ProfileXNUNative {
		InstallNativeXNUTable(k)
	} else {
		k.InstallLinuxTable()
		InstallXNUTable(k)
	}
	k.RegisterBinFmt(&kernel.ELFLoader{})
	return &env{s: s, k: k, fs: fs}
}

// runIOS runs body as an iOS-persona process (ELF vehicle for simplicity;
// the persona is forced before body runs).
func (e *env) runIOS(t testing.TB, body func(*kernel.Thread)) {
	t.Helper()
	e.k.Registry().MustRegister("ios-body", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Persona.Switch(persona.IOS)
		body(th)
		return 0
	})
	bin, err := prog.StaticELF("ios-body")
	if err != nil {
		t.Fatal(err)
	}
	e.fs.WriteFile("/bin/ios-body", bin)
	if _, err := e.k.StartProcess("/bin/ios-body", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestXNUSyscallNumbersDispatch(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	var pid, ppid uint64
	e.runIOS(t, func(th *kernel.Thread) {
		pid = th.Syscall(XNUGetpid, nil).R0
		ppid = th.Syscall(XNUGetppid, nil).R0
	})
	if pid == 0 {
		t.Fatal("getpid via XNU number failed")
	}
	if ppid != 0 {
		t.Fatalf("getppid = %d", ppid)
	}
}

func TestXNUTableUnknownSyscall(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	var errno kernel.Errno
	e.runIOS(t, func(th *kernel.Thread) {
		errno = th.Syscall(9999, nil).Errno
	})
	if errno != kernel.ENOSYS {
		t.Fatalf("errno = %v, want ENOSYS", errno)
	}
}

func TestXNUKillRenumbersSignal(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	delivered := -1
	e.runIOS(t, func(th *kernel.Thread) {
		// Install a handler for XNU SIGUSR1 (30) via XNU sigaction.
		th.Syscall(XNUSigaction, &kernel.SyscallArgs{
			I:   [6]uint64{30},
			Act: &kernel.SigAction{Handler: func(ht *kernel.Thread, sig int) { delivered = sig }},
		})
		pid := th.Syscall(XNUGetpid, nil).R0
		// Send XNU SIGUSR1 (30) to self.
		th.Syscall(XNUKill, &kernel.SyscallArgs{I: [6]uint64{pid, 30}})
	})
	// The iOS-persona handler must see the XNU number (30), not Linux's 10.
	if delivered != 30 {
		t.Fatalf("handler saw %d, want 30 (XNU SIGUSR1)", delivered)
	}
}

func TestIOSErrnoPostedInBSDNumbering(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	var tlsErrno int
	e.runIOS(t, func(th *kernel.Thread) {
		th.Syscall(9999, nil) // ENOSYS
		tlsErrno = th.Persona.CurrentTLS().Errno
	})
	if tlsErrno != 78 { // BSD ENOSYS
		t.Fatalf("TLS errno = %d, want 78 (BSD ENOSYS)", tlsErrno)
	}
}

func TestPosixSpawn(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	ran := false
	e.k.Registry().MustRegister("spawned", func(c *prog.Call) uint64 {
		ran = true
		return 0
	})
	bin, _ := prog.StaticELF("spawned")
	e.fs.WriteFile("/bin/spawned", bin)
	var status uint64
	e.runIOS(t, func(th *kernel.Thread) {
		ret := th.Syscall(XNUPosixSpawn, &kernel.SyscallArgs{Path: "/bin/spawned"})
		if ret.Errno != kernel.OK {
			t.Errorf("posix_spawn: %v", ret.Errno)
		}
		r := th.Syscall(XNUWait4, &kernel.SyscallArgs{I: [6]uint64{ret.R0}})
		status = r.R1
	})
	if !ran {
		t.Fatal("spawned binary did not run")
	}
	if status != 0 {
		t.Fatalf("status = %d", status)
	}
}

func TestPosixSpawnMissingBinary(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	var status uint64
	e.runIOS(t, func(th *kernel.Thread) {
		ret := th.Syscall(XNUPosixSpawn, &kernel.SyscallArgs{Path: "/bin/ghost"})
		r := th.Syscall(XNUWait4, &kernel.SyscallArgs{I: [6]uint64{ret.R0}})
		status = r.R1
	})
	if status != 127 {
		t.Fatalf("status = %d, want 127 (exec failure)", status)
	}
}

func TestMachMsgTrapSendReceive(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	var got string
	e.runIOS(t, func(th *kernel.Thread) {
		port := th.Syscall(MachReplyPort, nil).R0
		if port == 0 {
			t.Error("mach_reply_port returned MACH_PORT_NULL")
			return
		}
		send := &MsgCarrier{Msg: &xnu.Message{ID: 5, Body: []byte("via trap")}, Timeout: -1}
		SetCarrier(th, send)
		kr := th.Syscall(MachMsgTrap, &kernel.SyscallArgs{I: [6]uint64{port, MachSendMsg}}).R0
		if xnu.KernReturn(kr) != xnu.KernSuccess {
			t.Errorf("send kr = %#x", kr)
		}
		recv := &MsgCarrier{Timeout: -1}
		SetCarrier(th, recv)
		kr = th.Syscall(MachMsgTrap, &kernel.SyscallArgs{I: [6]uint64{port, MachRcvMsg}}).R0
		if xnu.KernReturn(kr) != xnu.KernSuccess {
			t.Errorf("recv kr = %#x", kr)
			return
		}
		got = string(recv.Result.Body)
	})
	if got != "via trap" {
		t.Fatalf("got %q", got)
	}
}

func TestSemaphoreTraps(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	ps, _ := xnu.PsynchFromKernel(e.k)
	var kr uint64
	e.runIOS(t, func(th *kernel.Thread) {
		ps.SemInit(th, 0x50, 1)
		kr = th.Syscall(SemaphoreWaitTrap, &kernel.SyscallArgs{I: [6]uint64{0x50}}).R0
		th.Syscall(SemaphoreSignalTrap, &kernel.SyscallArgs{I: [6]uint64{0x50}})
	})
	if xnu.KernReturn(kr) != xnu.KernSuccess {
		t.Fatalf("kr = %#x", kr)
	}
}

func TestPsynchSyscalls(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	var wait, drop uint64
	e.runIOS(t, func(th *kernel.Thread) {
		wait = th.Syscall(XNUPsynchMutexWait, &kernel.SyscallArgs{I: [6]uint64{0x77}}).R0
		drop = th.Syscall(XNUPsynchMutexDrop, &kernel.SyscallArgs{I: [6]uint64{0x77}}).R0
	})
	if xnu.KernReturn(wait) != xnu.KernSuccess || xnu.KernReturn(drop) != xnu.KernSuccess {
		t.Fatalf("wait/drop = %#x/%#x", wait, drop)
	}
}

func TestSetPersonaFromIOSTable(t *testing.T) {
	e := newEnv(t, kernel.ProfileCider)
	var now persona.Kind
	e.runIOS(t, func(th *kernel.Thread) {
		th.Syscall(SetPersonaTrap, &kernel.SyscallArgs{I: [6]uint64{uint64(persona.Android)}})
		now = th.Persona.Current()
	})
	if now != persona.Android {
		t.Fatalf("persona = %v, want android", now)
	}
}

func TestNullSyscallIOSPersonaOverhead(t *testing.T) {
	// Fig. 5: running the iOS binary costs ~40% over vanilla Android on a
	// null syscall; the Android persona on Cider costs ~8.5%. The full
	// four-configuration comparison lives in internal/lmbench; here we
	// verify the iOS persona path carries the translation premium.
	e := newEnv(t, kernel.ProfileCider)
	var androidCost, iosCost time.Duration
	e.k.Registry().MustRegister("cmp", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		start := th.Now()
		for i := 0; i < 100; i++ {
			th.Syscall(kernel.SysGetppid, nil)
		}
		androidCost = th.Now() - start
		th.Persona.Switch(persona.IOS)
		start = th.Now()
		for i := 0; i < 100; i++ {
			th.Syscall(XNUGetppid, nil)
		}
		iosCost = th.Now() - start
		return 0
	})
	bin, _ := prog.StaticELF("cmp")
	e.fs.WriteFile("/bin/cmp", bin)
	if _, err := e.k.StartProcess("/bin/cmp", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.s.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(iosCost) / float64(androidCost)
	if ratio < 1.15 || ratio > 1.45 {
		t.Fatalf("ios/android syscall cost = %.3f, want ~1.29 (40%%/8.5%% over vanilla)", ratio)
	}
}

func TestNativeXNUTableHasNoTranslationCost(t *testing.T) {
	e := newEnv(t, kernel.ProfileXNUNative)
	tb := e.k.SyscallTableFor(persona.IOS)
	if tb == nil {
		t.Fatal("no iOS table on XNU-native kernel")
	}
	if tb.EntryExtra != 0 || tb.ExitExtra != 0 {
		t.Fatalf("native table extras = %v/%v, want zero", tb.EntryExtra, tb.ExitExtra)
	}
	if e.k.SyscallTableFor(persona.Android) != nil {
		t.Fatal("XNU-native kernel must not expose a Linux ABI")
	}
}

func TestTrapClassConstants(t *testing.T) {
	// The four XNU trap entry paths (Section 4.1).
	classes := []TrapClass{TrapUnix, TrapMach, TrapMachDep, TrapDiag}
	if len(classes) != 4 {
		t.Fatal("XNU has exactly four trap classes")
	}
}
