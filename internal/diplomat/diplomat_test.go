package diplomat_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diplomat"
	"repro/internal/kernel"
	"repro/internal/persona"
	"repro/internal/prog"
)

func onIOS(t *testing.T, body func(th *kernel.Thread, sys *core.System)) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallIOSBinary("/bin/dip", "dip-"+t.Name(), nil, func(c *prog.Call) uint64 {
		body(c.Ctx.(*kernel.Thread), sys)
		return 0
	})
	sys.Start("/bin/dip", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestArbitrationRestoresPersonaAndForwardsArgs(t *testing.T) {
	onIOS(t, func(th *kernel.Thread, sys *core.System) {
		var sawPersona persona.Kind
		var sawArgs []uint64
		sys.Registry.MustRegister("dom-fn", func(c *prog.Call) uint64 {
			dt := c.Ctx.(*kernel.Thread)
			sawPersona = dt.Persona.Current()
			sawArgs = c.Args
			return c.Arg(0) + c.Arg(1)
		})
		dip := sys.Diplomat.Wrap("dom-fn")
		ret := dip(&prog.Call{Ctx: th, Args: []uint64{40, 2}})
		if ret != 42 {
			t.Errorf("ret = %d", ret)
		}
		// Step 3/5: the domestic function ran in the domestic persona.
		if sawPersona != persona.Android {
			t.Errorf("domestic fn saw persona %v", sawPersona)
		}
		if len(sawArgs) != 2 || sawArgs[0] != 40 {
			t.Errorf("args = %v", sawArgs)
		}
		// Step 7: the caller is back in the foreign persona.
		if th.Persona.Current() != persona.IOS {
			t.Errorf("caller persona = %v after diplomat", th.Persona.Current())
		}
	})
}

func TestFirstInvocationResolvesAndCaches(t *testing.T) {
	onIOS(t, func(th *kernel.Thread, sys *core.System) {
		sys.Registry.MustRegister("dom-cheap", func(c *prog.Call) uint64 { return 0 })
		dip := sys.Diplomat.Wrap("dom-cheap")
		start := th.Now()
		dip(&prog.Call{Ctx: th})
		first := th.Now() - start
		start = th.Now()
		dip(&prog.Call{Ctx: th})
		second := th.Now() - start
		// "Upon first invocation, a diplomat loads the appropriate
		// domestic library and locates the required entry point, storing a
		// pointer ... for efficient reuse."
		if first < 10*second {
			t.Errorf("first call (%v) should dwarf cached calls (%v)", first, second)
		}
		if second > 10*time.Microsecond {
			t.Errorf("cached diplomat call = %v, want a few µs", second)
		}
	})
}

func TestUnknownDomesticSymbolFails(t *testing.T) {
	onIOS(t, func(th *kernel.Thread, sys *core.System) {
		dip := sys.Diplomat.Wrap("no-such-domestic-symbol")
		if ret := dip(&prog.Call{Ctx: th}); ret != ^uint64(0) {
			t.Errorf("ret = %#x, want all-ones failure", ret)
		}
		// The thread must still be usable and in its own persona.
		if th.Persona.Current() != persona.IOS {
			t.Error("persona corrupted by failed diplomat")
		}
	})
}

func TestBatchSingleRoundTrip(t *testing.T) {
	onIOS(t, func(th *kernel.Thread, sys *core.System) {
		var personaInside persona.Kind
		switchesBefore := th.Persona.Switches()
		sys.Diplomat.Batch(th, func() {
			personaInside = th.Persona.Current()
		})
		if personaInside != persona.Android {
			t.Errorf("batch body ran in %v", personaInside)
		}
		if th.Persona.Current() != persona.IOS {
			t.Error("persona not restored after batch")
		}
		if got := th.Persona.Switches() - switchesBefore; got != 2 {
			t.Errorf("batch used %d switches, want exactly 2", got)
		}
	})
}

func TestGenerateOrderingDeterministic(t *testing.T) {
	// The generator sorts output; two Cider boots must agree.
	sys1, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys1.GLSpecs) != len(sys2.GLSpecs) {
		t.Fatal("spec counts differ")
	}
	for i := range sys1.GLSpecs {
		if sys1.GLSpecs[i] != sys2.GLSpecs[i] {
			t.Fatalf("spec %d differs: %+v vs %+v", i, sys1.GLSpecs[i], sys2.GLSpecs[i])
		}
	}
	// And each spec is well-formed.
	for _, sp := range sys1.GLSpecs {
		if sp.ForeignSymbol == "" || sp.DomesticLib == "" || sp.DomesticSymbol == "" {
			t.Fatalf("malformed spec %+v", sp)
		}
		if sp.ForeignSymbol[0] != '_' {
			t.Fatalf("foreign symbol %q missing Mach-O underscore", sp.ForeignSymbol)
		}
		if "_"+sp.DomesticSymbol != sp.ForeignSymbol {
			t.Fatalf("name mismatch: %q vs %q", sp.ForeignSymbol, sp.DomesticSymbol)
		}
	}
	_ = diplomat.Spec{}
}
