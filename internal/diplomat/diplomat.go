// Package diplomat implements Cider's diplomatic functions (Section 4.3):
// stubs that let foreign (iOS) code call into domestic (Android) libraries
// by temporarily switching the calling thread's persona — kernel ABI and
// TLS area — around the call.
//
// The package provides both halves of the mechanism:
//
//   - The arbitration engine (Wrap): the nine-step process — resolve and
//     cache the domestic entry point on first invocation, save arguments,
//     set_persona to the domestic persona, invoke, save the result,
//     set_persona back, convert domestic TLS values (errno) into the
//     foreign TLS area, and return.
//
//   - The generator (Generate): the paper's automation script, which
//     "analyzed exported symbols in the iOS OpenGL ES Mach-O library,
//     searched through a directory of Android ELF shared objects for a
//     matching export, and automatically generated diplomats for each
//     matching function."
package diplomat

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/abi"
	"repro/internal/elfx"
	"repro/internal/kernel"
	"repro/internal/macho"
	"repro/internal/persona"
	"repro/internal/prog"
	"repro/internal/trace"
)

// Engine performs persona arbitration for diplomatic calls on one kernel.
type Engine struct {
	k *kernel.Kernel
	// saveCost covers argument/result staging on the stack (steps 2/4/6/9).
	saveCost time.Duration
	// resolveCost is the first-invocation dlopen/dlsym work (step 1).
	resolveCost time.Duration
	// errnoCost is the TLS conversion (step 8).
	errnoCost time.Duration
	// calls counts diplomatic invocations (benchmarks).
	calls uint64
}

// NewEngine builds an arbitration engine for a kernel.
func NewEngine(k *kernel.Kernel) *Engine {
	cpu := k.Device().CPU
	return &Engine{
		k:           k,
		saveCost:    cpu.Cycles(90),
		resolveCost: cpu.Cycles(390000), // ~300 µs: load + locate entry point
		errnoCost:   cpu.Cycles(65),
	}
}

// Calls reports how many diplomatic calls have completed.
func (e *Engine) Calls() uint64 { return e.calls }

// Wrap builds a diplomat: a foreign-callable stub around the domestic
// function registered under domesticKey. The returned function implements
// the arbitration process of Section 4.3.
func (e *Engine) Wrap(domesticKey string) prog.Func {
	// Step 1 state: "storing a pointer to the function in a
	// locally-scoped static variable for efficient reuse".
	var cached prog.Func
	return func(c *prog.Call) uint64 {
		t, ok := c.Ctx.(*kernel.Thread)
		if !ok {
			return ^uint64(0)
		}
		if cached == nil {
			t.Charge(e.resolveCost)
			fn, found := e.k.Registry().Lookup(domesticKey)
			if !found {
				return ^uint64(0)
			}
			cached = fn
			if tr := e.k.Tracer(); tr != nil {
				tr.Count(trace.CounterDiplomatResolves, 1)
			}
		}
		// Step 2: save the arguments on the stack.
		t.Charge(e.saveCost)
		// Step 3: set_persona to the domestic persona, via the foreign
		// table's trap ("available from all personas").
		from := t.Persona.Current()
		setPersonaNum := abi.SetPersonaTrap
		if from == persona.Android {
			setPersonaNum = kernel.SysSetPersona
		}
		t.Syscall(setPersonaNum, &kernel.SyscallArgs{I: [6]uint64{uint64(persona.Android)}})
		// Step 4: restore the arguments.
		t.Charge(e.saveCost)
		// Step 5: direct invocation through the cached symbol.
		ret := cached(&prog.Call{Ctx: t, Args: c.Args})
		// Step 6: save the return value.
		t.Charge(e.saveCost)
		// Step 7: switch back, trapping through the *domestic* table now.
		t.Syscall(kernel.SysSetPersona, &kernel.SyscallArgs{I: [6]uint64{uint64(from)}})
		// Step 8: convert domestic TLS values into the foreign TLS area.
		t.Charge(e.errnoCost)
		domErrno := t.Persona.TLS(persona.Android).Errno
		if domErrno != 0 {
			t.Persona.TLS(persona.IOS).Errno = kernel.ErrnoToXNU(kernel.Errno(domErrno))
		}
		// Step 9: restore the result and return.
		t.Charge(e.saveCost)
		e.calls++
		if tr := e.k.Tracer(); tr != nil {
			tr.Count(trace.CounterDiplomatCalls, 1)
		}
		return ret
	}
}

// Batch performs one arbitration round trip around fn: switch to the
// domestic persona, run fn (which may invoke many domestic functions
// directly), switch back, convert TLS state. This is the paper's proposed
// future-work optimization — "aggregating OpenGL ES calls into a single
// diplomat" — benchmarked by BenchmarkAblationDiplomatAggregation.
func (e *Engine) Batch(t *kernel.Thread, fn func()) {
	from := t.Persona.Current()
	setPersonaNum := abi.SetPersonaTrap
	if from == persona.Android {
		setPersonaNum = kernel.SysSetPersona
	}
	t.Charge(e.saveCost)
	t.Syscall(setPersonaNum, &kernel.SyscallArgs{I: [6]uint64{uint64(persona.Android)}})
	fn()
	t.Syscall(kernel.SysSetPersona, &kernel.SyscallArgs{I: [6]uint64{uint64(from)}})
	t.Charge(e.errnoCost + e.saveCost)
	e.calls++
	if tr := e.k.Tracer(); tr != nil {
		tr.Count(trace.CounterDiplomatCalls, 1)
	}
}

// Spec describes one generated diplomat.
type Spec struct {
	// ForeignSymbol is the Mach-O export (e.g. "_glDrawArrays").
	ForeignSymbol string
	// DomesticLib is the ELF shared object's soname (e.g. "libGLESv2.so").
	DomesticLib string
	// DomesticSymbol is the ELF export (e.g. "glDrawArrays").
	DomesticSymbol string
}

// Generate is the automation script of Section 5.3: for every exported
// symbol of the foreign Mach-O library, search the given Android shared
// objects for a matching export (Mach-O's leading underscore stripped) and
// emit a diplomat spec. Unmatched exports are returned separately — those
// need hand-written diplomats (the EAGL extensions, in the paper).
func Generate(foreign *macho.File, domestic []*elfx.File) (specs []Spec, unmatched []string) {
	for _, sym := range foreign.ExportedSymbols() {
		want := strings.TrimPrefix(sym.Name, "_")
		found := false
		for _, so := range domestic {
			if dsym, ok := so.Lookup(want); ok {
				if !dsym.Defined {
					continue
				}
				specs = append(specs, Spec{
					ForeignSymbol:  sym.Name,
					DomesticLib:    so.SoName,
					DomesticSymbol: want,
				})
				found = true
				break
			}
		}
		if !found {
			unmatched = append(unmatched, sym.Name)
		}
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].ForeignSymbol < specs[j].ForeignSymbol })
	sort.Strings(unmatched)
	return specs, unmatched
}

// Install registers diplomats for specs under the foreign library's
// install name, so dyld binds iOS apps to them: the replaced Cider version
// of the foreign library (API interposition, Section 5.3).
func (e *Engine) Install(reg *prog.Registry, foreignInstall string, specs []Spec) error {
	for _, sp := range specs {
		domKey := prog.SymbolKey("/system/lib/"+sp.DomesticLib, sp.DomesticSymbol)
		key := prog.SymbolKey(foreignInstall, sp.ForeignSymbol)
		if err := reg.Register(key, e.Wrap(domKey)); err != nil {
			return fmt.Errorf("diplomat: %s: %w", sp.ForeignSymbol, err)
		}
	}
	return nil
}
