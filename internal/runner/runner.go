// Package runner is the host-parallel experiment engine: it shards
// independent experiment cells across host workers and merges their
// results in canonical order, bit-identical to a sequential run.
//
// The determinism contract the simulator pins (runs are pure functions of
// configuration — see DESIGN.md) is what makes this safe: each cell boots
// its own core.System with its own virtual clock and shares nothing
// mutable with other cells, so host scheduling cannot influence any
// simulated result, only wall-clock time. The merge step reassembles
// results by cell index, so output order is independent of completion
// order, and errors are reported deterministically (lowest cell index
// wins). This package runs on the HOST side of the host/sim boundary: it
// may use sync, goroutines, and the host clock freely — ciderlint's
// wallclock analyzer scopes sim packages only.
package runner

import (
	"runtime"
	"sync"
)

// Jobs normalizes a --jobs flag value: n<=0 selects GOMAXPROCS (the
// host's available parallelism), anything else passes through.
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// deque is one worker's work queue. The owner pops from the front; idle
// workers steal from the back, so an owner working through a contiguous
// block of cells loses its farthest-away work first. A mutex (not a
// lock-free Chase-Lev deque) is plenty here: cells are whole simulated
// benchmark runs, milliseconds to seconds each, so queue operations are
// nowhere near contended.
type deque struct {
	mu    sync.Mutex
	items []int
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	i := d.items[0]
	d.items = d.items[1:]
	return i, true
}

func (d *deque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	n := len(d.items) - 1
	i := d.items[n]
	d.items = d.items[:n]
	return i, true
}

// Map runs fn(i) for every i in [0, n) across up to jobs host workers and
// returns the n results in index order. jobs <= 0 means GOMAXPROCS. The
// i-th result slot is written only by the worker that ran cell i, so the
// output is bit-identical to the sequential loop regardless of how cells
// land on workers.
//
// If any cells fail, Map still runs every cell, then returns the error
// from the lowest-index failed cell — the same error a sequential loop
// that collected-and-continued would report first. If a cell panics, Map
// re-panics in the caller's goroutine with the lowest-index panic value.
func Map[T any](n, jobs int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs == 1 {
		// Plain sequential loop: no goroutines, no locks — this is the
		// reference execution the parallel path must match bit-for-bit.
		var firstErr error
		firstErrIdx := n
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil && i < firstErrIdx {
				firstErr, firstErrIdx = err, i
			}
			results[i] = r
		}
		return results, firstErr
	}

	// Deal cells to workers in contiguous blocks so an owner sweeps its
	// own range front-to-back while thieves peel cells off the far end.
	deques := make([]*deque, jobs)
	for w := 0; w < jobs; w++ {
		deques[w] = &deque{}
	}
	for i := 0; i < n; i++ {
		w := i * jobs / n
		d := deques[w]
		d.items = append(d.items, i)
	}

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx = n
		panicVal any
		panicIdx = n
		panicked bool
		wg       sync.WaitGroup
	)
	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if i < panicIdx {
					panicVal, panicIdx, panicked = r, i, true
				}
				mu.Unlock()
			}
		}()
		r, err := fn(i)
		results[i] = r
		if err != nil {
			mu.Lock()
			if i < firstIdx {
				firstErr, firstIdx = err, i
			}
			mu.Unlock()
		}
	}
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Drain our own deque first.
			for {
				i, ok := deques[w].popFront()
				if !ok {
					break
				}
				runCell(i)
			}
			// Then steal from the others, scanning round-robin from our
			// right-hand neighbour.
			for {
				stole := false
				for off := 1; off < jobs; off++ {
					v := deques[(w+off)%jobs]
					if i, ok := v.popBack(); ok {
						runCell(i)
						stole = true
						break
					}
				}
				if !stole {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	return results, firstErr
}
