package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCanonicalOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 100} {
		got, err := Map(50, jobs, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

// TestMapLowestIndexError pins deterministic error reporting: whichever
// worker finishes first, the error from the lowest-index failed cell wins.
func TestMapLowestIndexError(t *testing.T) {
	errLow := errors.New("cell 3 failed")
	for _, jobs := range []int{1, 4} {
		_, err := Map(20, jobs, func(i int) (int, error) {
			switch i {
			case 3:
				// Make the low-index failure slow so a racy implementation
				// would report cell 17 instead.
				if jobs > 1 {
					time.Sleep(10 * time.Millisecond)
				}
				return 0, errLow
			case 17:
				return 0, fmt.Errorf("cell 17 failed")
			}
			return i, nil
		})
		if err != errLow {
			t.Fatalf("jobs=%d: err = %v, want %v", jobs, err, errLow)
		}
	}
}

// TestMapAllCellsRunDespiteError checks Map collects-and-continues like
// the sequential report loops it replaces: a failed cell must not stop
// later cells from running.
func TestMapAllCellsRunDespiteError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(30, 4, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("first cell fails")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 30 {
		t.Fatalf("ran %d cells, want 30", got)
	}
}

// TestMapStealing forces one worker's block to be much slower than the
// others and checks total wall time reflects stealing: with 4 workers and
// all the slow cells dealt to worker 0's block, thieves must take them.
func TestMapStealing(t *testing.T) {
	const n, jobs = 16, 4
	const d = 20 * time.Millisecond
	start := time.Now()
	_, err := Map(n, jobs, func(i int) (int, error) {
		if i < 4 {
			// Worker 0's whole block is slow; without stealing it alone
			// takes 4*d while the others idle.
			time.Sleep(d)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 3*d {
		t.Fatalf("wall %v suggests no stealing (block of 4 slow cells should spread)", el)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want panic to propagate")
		}
		if s, ok := r.(string); !ok || s != "cell 2 exploded" {
			t.Fatalf("recovered %v, want lowest-index panic", r)
		}
	}()
	_, _ = Map(10, 4, func(i int) (int, error) {
		if i == 2 {
			panic("cell 2 exploded")
		}
		if i == 9 {
			panic("cell 9 exploded")
		}
		return i, nil
	})
}

func TestJobs(t *testing.T) {
	if Jobs(0) < 1 {
		t.Fatal("Jobs(0) must be >= 1")
	}
	if Jobs(-3) < 1 {
		t.Fatal("Jobs(-3) must be >= 1")
	}
	if Jobs(7) != 7 {
		t.Fatal("Jobs(7) must pass through")
	}
}
