// Package dyld is the simulated iOS dynamic linker: the user-space binary
// the kernel Mach-O loader hands control to. It walks the filesystem to
// locate every LC_LOAD_DYLIB dependency (recursively), maps each dylib,
// binds exported symbols, registers the per-library pthread_atfork and
// atexit callbacks whose execution dominates iOS fork/exit latency, runs
// image initializers, and finally jumps to the app entry point
// (Sections 2 and 6.2).
//
// Two configurations matter for the paper's numbers:
//
//   - Cider's prototype uses non-prelinked libraries: "dyld must walk the
//     filesystem to load each library on every exec" — ~115 libraries and
//     ~90 MB of mappings for any app linking libSystem.
//   - iOS's dyld on the iPad uses a prelinked shared cache: one nested-map
//     (submap) attach replaces the walk, making exec and fork much cheaper.
//     Cider "does not yet support" this optimization; enabling it here is
//     the BenchmarkAblationSharedCache experiment.
package dyld

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/macho"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// ProgKey is dyld's registry key; /usr/lib/dyld's text payload names it.
const ProgKey = "dyld"

// SharedCachePath is where iOS stores the prelinked cache.
const SharedCachePath = "/System/Library/Caches/com.apple.dyld/dyld_shared_cache_armv7"

// ImagesKey stores the loaded-image table in task user data.
const ImagesKey = "dyld.images"

// Config controls the linker's behaviour.
type Config struct {
	// SharedCache enables the prelinked shared-cache fast path (iPad
	// configuration; off in the Cider prototype).
	SharedCache bool
	// cacheHandlerGroups is how many consolidated handler registrations a
	// prelinked cache performs instead of one per library.
	CacheHandlerGroups int
}

// LoadedImage is one mapped dylib.
type LoadedImage struct {
	// Path is the install name.
	Path string
	// Exports maps exported symbol names to their program-registry keys.
	Exports map[string]string
}

// Images is the per-process loaded-image table, in load order (flat
// namespace: earlier images win symbol resolution, which is how Cider's
// API interposition forces apps to bind its replacement entry points).
type Images struct {
	list   []*LoadedImage
	byPath map[string]*LoadedImage
}

// CloneUserData implements kernel.UserDataCloner; the table is immutable
// after launch, so fork shares the image list.
func (im *Images) CloneUserData() any { return im }

// List returns images in load order.
func (im *Images) List() []*LoadedImage { return im.list }

// Count returns the number of loaded images.
func (im *Images) Count() int { return len(im.list) }

// Has reports whether an install name is loaded.
func (im *Images) Has(path string) bool { _, ok := im.byPath[path]; return ok }

// Resolve finds the first image exporting symbol, returning its program
// key — dyld's flat-namespace binding rule.
func (im *Images) Resolve(symbol string) (string, bool) {
	for _, img := range im.list {
		if key, ok := img.Exports[symbol]; ok {
			return key, true
		}
	}
	return "", false
}

// ImagesFor returns the task's loaded-image table, if dyld has run.
func ImagesFor(tk *kernel.Task) (*Images, bool) {
	v, ok := tk.UserData(ImagesKey)
	if !ok {
		return nil, false
	}
	im, ok := v.(*Images)
	return im, ok
}

// ResolveSymbol binds a symbol in the calling thread's process, as a lazy
// dyld stub would.
func ResolveSymbol(t *kernel.Thread, symbol string) (prog.Func, bool) {
	im, ok := ImagesFor(t.Task())
	if !ok {
		return nil, false
	}
	key, ok := im.Resolve(symbol)
	if !ok {
		return nil, false
	}
	return t.Kernel().Registry().Lookup(key)
}

// cacheManifest is the serialized prelinked cache (the simulation's
// equivalent of the dyld_shared_cache file format).
type cacheManifest struct {
	TotalBytes uint64       `json:"total_bytes"`
	Images     []cacheImage `json:"images"`
}

type cacheImage struct {
	Path    string   `json:"path"`
	Exports []string `json:"exports"`
}

// Register installs the dyld program into a registry.
func Register(reg *prog.Registry, cfg Config) error {
	if cfg.CacheHandlerGroups == 0 {
		cfg.CacheHandlerGroups = 8
	}
	return reg.Register(ProgKey, func(c *prog.Call) uint64 {
		t := c.Ctx.(*kernel.Thread)
		return run(t, cfg, c.Args)
	})
}

// costs bundles dyld's own compute model for a device.
type costs struct {
	parse       time.Duration
	bindSym     time.Duration
	initImage   time.Duration
	atexitH     time.Duration
	atforkH     time.Duration
	cacheAttach time.Duration
}

func costsFor(t *kernel.Thread) costs {
	cpu := t.Kernel().Device().CPU
	return costs{
		parse:       cpu.Cycles(52000),   // ~40 µs @1.3GHz: load commands
		bindSym:     cpu.Cycles(1560),    // ~1.2 µs per bound symbol
		initImage:   cpu.Cycles(58500),   // ~45 µs per image initializer
		atexitH:     cpu.Cycles(9620),    // ~7.4 µs per atexit handler
		atforkH:     cpu.Cycles(6240),    // ~4.8 µs per atfork phase handler
		cacheAttach: cpu.Cycles(1560000), // ~1.2 ms one-time cache attach
	}
}

// run is dyld's main: load dependencies, register handlers, call main.
func run(t *kernel.Thread, cfg Config, args []uint64) uint64 {
	tk := t.Task()
	entryKeyV, ok := tk.UserData(kernel.DyldEntryKey)
	if !ok {
		return 255
	}
	entryKey := entryKeyV.(string)
	var needed []string
	if v, ok := tk.UserData(kernel.DyldNeededKey); ok {
		needed = v.([]string)
	}
	cs := costsFor(t)
	images := &Images{byPath: make(map[string]*LoadedImage)}
	tk.SetUserData(ImagesKey, images)

	loaded := false
	if cfg.SharedCache {
		loaded = attachSharedCache(t, cs, images)
	}
	if !loaded {
		// Walk the filesystem, loading each library: the slow path the
		// Cider prototype takes on every exec.
		if err := loadAll(t, cs, images, needed); err != nil {
			return 255
		}
	}

	// Jump to the program entry point.
	entry, ok := t.Kernel().Registry().Lookup(entryKey)
	if !ok {
		return 255
	}
	return entry(&prog.Call{Ctx: t, Args: args})
}

// imageCache maps a parsed dylib (one *macho.File per distinct binary, via
// macho.ParseShared) to its load-time metadata: the export table and the
// exported-symbol count the per-symbol bind charges are computed from. The
// metadata is pure — a function of the bytes and the install path — and a
// LoadedImage is immutable after construction, so every exec of every
// booted System shares one copy per dylib instead of rebuilding a 100+
// entry symbol map each time. Virtual-time charges are NOT cached: the
// caller still charges parse, per-segment map, per-symbol bind, and init
// costs identically on every load, so simulated latencies are unchanged.
var imageCache sync.Map // *macho.File -> *imageEntry

type imageEntry struct {
	path  string
	nsyms int
	img   *LoadedImage
}

func imageFor(f *macho.File, path string) (img *LoadedImage, nsyms int) {
	if v, ok := imageCache.Load(f); ok {
		if e := v.(*imageEntry); e.path == path {
			return e.img, e.nsyms
		}
		// Same bytes installed under a different name: build fresh, keep
		// the first entry.
		return buildImage(f, path)
	}
	img, nsyms = buildImage(f, path)
	imageCache.Store(f, &imageEntry{path: path, nsyms: nsyms, img: img})
	return img, nsyms
}

func buildImage(f *macho.File, path string) (*LoadedImage, int) {
	syms := f.ExportedSymbols()
	img := &LoadedImage{Path: path, Exports: make(map[string]string, len(syms))}
	for _, sym := range syms {
		img.Exports[sym.Name] = prog.SymbolKey(path, sym.Name)
	}
	return img, len(syms)
}

// loadAll maps every transitive dylib dependency.
func loadAll(t *kernel.Thread, cs costs, images *Images, roots []string) error {
	tk := t.Task()
	st := libsystem.ForTask(tk)
	k := t.Kernel()
	work := append([]string(nil), roots...)
	for len(work) > 0 {
		path := work[0]
		work = work[1:]
		if images.Has(path) {
			continue
		}
		node, err := k.Root().Lookup(path)
		if err != nil {
			if tr := k.Tracer(); tr != nil {
				tr.Count(trace.CounterDyldLoadErrors, 1)
			}
			return fmt.Errorf("dyld: library not loaded: %s", path)
		}
		// Opening + faulting in the load commands; dyld mmaps rather than
		// reads, so only the metadata pages cost storage time.
		t.Charge(k.Device().Storage.OpLatency)
		t.Charge(cs.parse)
		f, perr := macho.ParseShared(node.Data())
		if perr != nil || f.FileType != macho.TypeDylib {
			return fmt.Errorf("dyld: %s is not a dylib", path)
		}
		// Map segments at their full VM size — this is where the ~90 MB
		// of an iOS process's library footprint comes from.
		for _, seg := range f.Segments {
			size := uint64(seg.VMSize)
			if size < uint64(len(seg.Data)) {
				size = uint64(len(seg.Data))
			}
			if size == 0 {
				continue
			}
			t.Charge(k.Costs().SegmentMap)
			if _, merr := tk.Mem().Map(0, size, mem.ProtRead|mem.ProtExec, path, false); merr != nil {
				if tr := k.Tracer(); tr != nil {
					tr.Count(trace.CounterDyldLoadErrors, 1)
				}
				return merr
			}
		}
		img, nsyms := imageFor(f, path)
		// One bind charge per exported symbol, exactly as when the export
		// map was built inline — the cache must not change virtual time.
		for i := 0; i < nsyms; i++ {
			t.Charge(cs.bindSym)
		}
		if tr := k.Tracer(); tr != nil {
			tr.Count(trace.CounterDyldBinds, uint64(len(img.Exports)))
			tr.Count(trace.CounterDyldImages, 1)
		}
		images.list = append(images.list, img)
		images.byPath[path] = img
		// Run the image initializer and register its teardown hooks: one
		// atexit handler and one pthread_atfork triple per library.
		t.Charge(cs.initImage)
		registerImageHandlers(st, cs)
		work = append(work, f.Dylibs...)
	}
	return nil
}

// registerImageHandlers models the per-library callbacks dyld registers:
// "for each library, dyld registers a callback that is called on exit,
// resulting in the execution of 115 handlers on exit", plus the
// pthread_atfork callbacks iOS libraries install.
func registerImageHandlers(st *libsystem.State, cs costs) {
	st.AtExit(func(ht *kernel.Thread) { ht.Charge(cs.atexitH) })
	st.AtFork(
		func(ht *kernel.Thread) { ht.Charge(cs.atforkH) }, // prepare
		func(ht *kernel.Thread) { ht.Charge(cs.atforkH) }, // parent
		func(ht *kernel.Thread) { ht.Charge(cs.atforkH) }, // child
	)
}

// manifestCache maps a serialized cache manifest (keyed like ParseShared,
// by backing-array identity, which pins the bytes so keys can't be reused)
// to its decoded image table. Every exec in the shared-cache configuration
// attaches the same manifest; decoding the JSON and rebuilding 100+ export
// maps per exec was pure host overhead with no virtual-time component.
var manifestCache sync.Map // *byte -> *manifestEntry

type manifestEntry struct {
	n        int
	manifest cacheManifest
	images   []*LoadedImage
}

func decodeManifest(data []byte) (*manifestEntry, bool) {
	if len(data) == 0 {
		return nil, false
	}
	key := &data[0]
	if v, ok := manifestCache.Load(key); ok {
		if e := v.(*manifestEntry); e.n == len(data) {
			return e, true
		}
	}
	e := &manifestEntry{n: len(data)}
	if jerr := json.Unmarshal(data, &e.manifest); jerr != nil {
		return nil, false
	}
	for _, ci := range e.manifest.Images {
		img := &LoadedImage{Path: ci.Path, Exports: make(map[string]string, len(ci.Exports))}
		for _, sym := range ci.Exports {
			img.Exports[sym] = prog.SymbolKey(ci.Path, sym)
		}
		e.images = append(e.images, img)
	}
	manifestCache.Store(key, e)
	return e, true
}

// attachSharedCache maps the prelinked cache as a single submap region and
// installs its image table without touching the filesystem per library.
func attachSharedCache(t *kernel.Thread, cs costs, images *Images) bool {
	k := t.Kernel()
	node, err := k.Root().Lookup(SharedCachePath)
	if err != nil {
		return false
	}
	e, ok := decodeManifest(node.Data())
	if !ok {
		return false
	}
	t.Charge(cs.cacheAttach)
	r, merr := t.Task().Mem().Map(0, e.manifest.TotalBytes, mem.ProtRead|mem.ProtExec, "dyld_shared_cache", false)
	if merr != nil {
		return false
	}
	if tr := k.Tracer(); tr != nil {
		tr.Count(trace.CounterDyldCacheAttach, 1)
		tr.Count(trace.CounterDyldImages, uint64(len(e.manifest.Images)))
	}
	r.Submap = true // nested map: fork never copies these PTEs
	st := libsystem.ForTask(t.Task())
	for _, img := range e.images {
		images.list = append(images.list, img)
		images.byPath[img.Path] = img
	}
	// Prelinking consolidates initializers and teardown hooks.
	groups := 8
	for i := 0; i < groups; i++ {
		t.Charge(cs.initImage)
		registerImageHandlers(st, cs)
	}
	return true
}

// BuildSharedCache prelinks the given dylibs into a cache manifest at
// SharedCachePath — what Apple's update process does offline. root must be
// the filesystem holding the dylibs.
func BuildSharedCache(root vfs.FileSystem, libs []string) error {
	var manifest cacheManifest
	for _, path := range libs {
		node, err := root.Lookup(path)
		if err != nil {
			return err
		}
		f, perr := macho.ParseShared(node.Data())
		if perr != nil {
			return perr
		}
		ci := cacheImage{Path: path}
		for _, sym := range f.ExportedSymbols() {
			ci.Exports = append(ci.Exports, sym.Name)
		}
		for _, seg := range f.Segments {
			size := uint64(seg.VMSize)
			if size < uint64(len(seg.Data)) {
				size = uint64(len(seg.Data))
			}
			manifest.TotalBytes += size
		}
		manifest.Images = append(manifest.Images, ci)
	}
	data, err := json.Marshal(&manifest)
	if err != nil {
		return err
	}
	dir, _ := vfs.Split(SharedCachePath)
	if err := root.MkdirAll(dir); err != nil {
		return err
	}
	node, err := root.Create(SharedCachePath)
	if err != nil {
		if n, lerr := root.Lookup(SharedCachePath); lerr == nil {
			n.SetData(data)
			return nil
		}
		return err
	}
	node.SetData(data)
	return nil
}
