package dyld_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dyld"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
)

func bootIOS(t *testing.T, opts core.Options, body func(th *kernel.Thread)) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.ConfigCider, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallIOSBinary("/bin/dyldt", "dyldt-"+t.Name(), nil, func(c *prog.Call) uint64 {
		body(c.Ctx.(*kernel.Thread))
		return 0
	})
	sys.Start("/bin/dyldt", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestImagesLoadedInOrderWithDeps(t *testing.T) {
	bootIOS(t, core.Options{}, func(th *kernel.Thread) {
		im, ok := dyld.ImagesFor(th.Task())
		if !ok {
			t.Error("no image table")
			return
		}
		if im.Count() != 115 {
			t.Errorf("images = %d", im.Count())
		}
		// libSystem is the first dependency, hence the first image.
		if im.List()[0].Path != "/usr/lib/libSystem.B.dylib" {
			t.Errorf("first image = %s", im.List()[0].Path)
		}
		if !im.Has("/System/Library/Frameworks/UIKit.framework/UIKit") {
			t.Error("UIKit not loaded")
		}
	})
}

func TestResolveSymbolFlatNamespace(t *testing.T) {
	bootIOS(t, core.Options{}, func(th *kernel.Thread) {
		// A GL symbol resolves to Cider's replacement (the diplomat), and
		// the resolved function is callable.
		fn, ok := dyld.ResolveSymbol(th, "_glGetError")
		if !ok {
			t.Error("cannot resolve _glGetError")
			return
		}
		_ = fn
		if _, ok := dyld.ResolveSymbol(th, "_NoSuchSymbolAnywhere"); ok {
			t.Error("phantom symbol resolved")
		}
	})
}

func TestMissingDylibFailsLaunch(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	// Link a library that does not exist in the image.
	sys.Registry.MustRegister("ghostapp", func(c *prog.Call) uint64 {
		ran = true
		return 0
	})
	bin, _ := prog.MachOExecutable("ghostapp", []string{"/usr/lib/libGhost.dylib"}, nil)
	sys.IOSFS.WriteFile("/bin/ghost", bin)
	sys.Start("/bin/ghost", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("app with missing dylib must not reach main (dyld: library not loaded)")
	}
}

func TestSharedCacheSkipsFilesystemWalk(t *testing.T) {
	measureExec := func(cache bool) time.Duration {
		var elapsed time.Duration
		sys, err := core.NewSystem(core.ConfigCider, core.Options{SharedCache: &cache})
		if err != nil {
			t.Fatal(err)
		}
		sys.InstallIOSBinary("/bin/child", "child-"+t.Name()+boolTag(cache), nil,
			func(c *prog.Call) uint64 { return 0 })
		sys.InstallIOSBinary("/bin/parent", "parent-"+t.Name()+boolTag(cache), nil,
			func(c *prog.Call) uint64 {
				th := c.Ctx.(*kernel.Thread)
				lc := libsystem.Sys(th)
				start := th.Now()
				pid := lc.Fork(func(cc *libsystem.C) {
					cc.Exec("/bin/child", nil)
					cc.Exit(127)
				})
				lc.Wait(pid)
				elapsed = th.Now() - start
				return 0
			})
		sys.Start("/bin/parent", nil)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	walk := measureExec(false)
	cached := measureExec(true)
	// "dyld must walk the filesystem to load each library on every exec";
	// the prelinked cache removes that entirely.
	if cached >= walk/3 {
		t.Fatalf("cache exec (%v) should be far below walking exec (%v)", cached, walk)
	}
}

func boolTag(b bool) string {
	if b {
		return "-on"
	}
	return "-off"
}

func TestImageTableSharedAcrossFork(t *testing.T) {
	bootIOS(t, core.Options{}, func(th *kernel.Thread) {
		lc := libsystem.Sys(th)
		parentImages, _ := dyld.ImagesFor(th.Task())
		pid := lc.Fork(func(cc *libsystem.C) {
			childImages, ok := dyld.ImagesFor(cc.T.Task())
			if !ok || childImages.Count() != parentImages.Count() {
				cc.Exit(1)
			}
			cc.Exit(0)
		})
		_, status, _ := lc.Wait(pid)
		if status != 0 {
			t.Errorf("child image table wrong (status %d)", status)
		}
	})
}
