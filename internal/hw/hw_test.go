package hw

import (
	"testing"
	"time"
)

func TestCyclesConversion(t *testing.T) {
	cpu := &CPUModel{FreqMHz: 1000}
	if got := cpu.Cycles(1000); got != time.Microsecond {
		t.Fatalf("1000 cycles at 1GHz = %v, want 1µs", got)
	}
	cpu = &CPUModel{FreqMHz: 1300}
	got := cpu.Cycles(1300)
	if got != time.Microsecond {
		t.Fatalf("1300 cycles at 1.3GHz = %v, want 1µs", got)
	}
}

func TestOpTimeUsesCPI(t *testing.T) {
	cpu := Nexus7().CPU
	add := cpu.OpTime(OpIntAdd, 1000)
	div := cpu.OpTime(OpIntDiv, 1000)
	if div <= add {
		t.Fatalf("int-div (%v) should be slower than int-add (%v)", div, add)
	}
}

func TestIPadSlowerCPU(t *testing.T) {
	// Every basic-op measurement in Fig. 5 is worse on the iPad mini.
	n7, ipad := Nexus7().CPU, IPadMini().CPU
	for op := OpIntAdd; op < numCPUOps; op++ {
		if ipad.OpTime(op, 1000) <= n7.OpTime(op, 1000) {
			t.Errorf("op %v: iPad (%v) should be slower than Nexus 7 (%v)",
				op, ipad.OpTime(op, 1000), n7.OpTime(op, 1000))
		}
	}
}

func TestIPadFasterGPU(t *testing.T) {
	n7, ipad := Nexus7().GPU, IPadMini().GPU
	if ipad.FillTime(1e6) >= n7.FillTime(1e6) {
		t.Fatal("iPad GPU fill should be faster than Nexus 7")
	}
	if ipad.VertexTime(1e6) >= n7.VertexTime(1e6) {
		t.Fatal("iPad GPU vertex should be faster than Nexus 7")
	}
}

func TestIPadFasterStorageWrite(t *testing.T) {
	n7, ipad := Nexus7().Storage, IPadMini().Storage
	if ipad.WriteTime(1<<20) >= n7.WriteTime(1<<20) {
		t.Fatal("iPad storage write should be faster (Fig. 6 storage group)")
	}
}

func TestToolchainScale(t *testing.T) {
	gcc, xcode := GCC441(), Xcode421()
	if gcc.OpScale(OpIntDiv) != 1.0 {
		t.Fatalf("gcc int-div scale = %v, want 1.0", gcc.OpScale(OpIntDiv))
	}
	if xcode.OpScale(OpIntDiv) <= 1.0 {
		t.Fatal("xcode int-div should be worse than 1.0 (Fig. 5 basic ops)")
	}
	if xcode.OpScale(OpIntAdd) != 1.0 {
		t.Fatal("xcode int-add should be unscaled")
	}
	var nilTC *Toolchain
	if nilTC.OpScale(OpIntMul) != 1.0 {
		t.Fatal("nil toolchain must scale 1.0")
	}
}

func TestMemStreamTimes(t *testing.T) {
	m := &MemModel{ReadBWMBs: 1000, WriteBWMBs: 500}
	if got := m.ReadTime(1e9); got != time.Second {
		t.Fatalf("1GB at 1000MB/s = %v, want 1s", got)
	}
	if got := m.WriteTime(5e8); got != time.Second {
		t.Fatalf("500MB at 500MB/s = %v, want 1s", got)
	}
}

func TestStorageTimesIncludeOpLatency(t *testing.T) {
	s := &StorageModel{ReadBWMBs: 10, WriteBWMBs: 10, OpLatency: time.Millisecond}
	if got := s.ReadTime(0); got != time.Millisecond {
		t.Fatalf("0-byte read = %v, want 1ms op latency", got)
	}
}

func TestDisplayPixels(t *testing.T) {
	if Nexus7().Display.Pixels() != 1280*800 {
		t.Fatal("Nexus 7 display should be 1280x800")
	}
	if IPadMini().Display.Pixels() != 1024*768 {
		t.Fatal("iPad mini display should be 1024x768")
	}
}

func TestCPUOpString(t *testing.T) {
	if OpIntDiv.String() != "int-div" {
		t.Fatalf("OpIntDiv = %q", OpIntDiv.String())
	}
	if CPUOp(99).String() != "op(?)" {
		t.Fatal("out-of-range op should stringify safely")
	}
}
