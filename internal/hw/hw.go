// Package hw defines the simulated hardware device models the Cider
// reproduction runs on: CPU, memory, storage, GPU, and display, plus the
// toolchain model capturing compiler code-quality differences.
//
// The paper evaluates on two devices — a Google Nexus 7 (1.3 GHz quad-core
// Tegra 3, 1 GB RAM, 16 GB flash, 1280x800) running Android 4.2, and an
// iPad mini (1 GHz dual-core A5, 512 MB RAM, 16 GB flash, 1024x768) running
// iOS 6.1.2. Profiles for both are provided. All costs are expressed either
// as CPU cycles (converted via the core frequency) or as explicit durations,
// so the microbenchmark and application figures are deterministic functions
// of these tables.
package hw

import "time"

// CPUOp enumerates the basic operation classes whose costs the lmbench
// "basic CPU operations" group measures.
type CPUOp int

const (
	// OpIntAdd is an integer addition.
	OpIntAdd CPUOp = iota
	// OpIntMul is an integer multiplication.
	OpIntMul
	// OpIntDiv is an integer division.
	OpIntDiv
	// OpFloatAdd is a double-precision floating point addition.
	OpFloatAdd
	// OpFloatMul is a double-precision floating point multiplication.
	OpFloatMul
	// OpFloatDiv is a double-precision floating point division.
	OpFloatDiv
	// OpBranch is a taken branch.
	OpBranch
	// OpLoad is a cache-hit memory load.
	OpLoad
	// OpStore is a cache-hit memory store.
	OpStore
	numCPUOps
)

var cpuOpNames = [...]string{
	"int-add", "int-mul", "int-div",
	"float-add", "float-mul", "float-div",
	"branch", "load", "store",
}

func (op CPUOp) String() string {
	if int(op) < len(cpuOpNames) {
		return cpuOpNames[op]
	}
	return "op(?)"
}

// CPUModel describes a device CPU: core count, clock, and per-operation
// cycle counts.
type CPUModel struct {
	// Name identifies the part (e.g. "NVIDIA Tegra 3").
	Name string
	// Cores is the number of cores.
	Cores int
	// FreqMHz is the core clock in MHz.
	FreqMHz int
	// CPI holds cycles-per-instruction for each CPUOp class.
	CPI [numCPUOps]float64
}

// CycleTime returns the duration of one clock cycle.
func (c *CPUModel) CycleTime() time.Duration {
	return time.Duration(float64(time.Second) / (float64(c.FreqMHz) * 1e6))
}

// Cycles converts a cycle count into virtual time on this CPU.
func (c *CPUModel) Cycles(n float64) time.Duration {
	// n cycles at FreqMHz: n / (FreqMHz*1e6) seconds = n*1000/FreqMHz ns.
	return time.Duration(n * 1e3 / float64(c.FreqMHz))
}

// OpTime returns the time to execute n operations of class op.
func (c *CPUModel) OpTime(op CPUOp, n int64) time.Duration {
	return c.Cycles(c.CPI[op] * float64(n))
}

// Toolchain models compiler code quality: a per-op scale factor applied on
// top of the CPU's cycle table. The paper observes that GCC 4.4.1 generated
// better integer-divide code than Xcode 4.2.1 (Fig. 5, basic ops).
type Toolchain struct {
	// Name identifies the compiler (e.g. "gcc-4.4.1").
	Name string
	// Scale multiplies the CPU cycle count per op class; unset ops use 1.0.
	Scale map[CPUOp]float64
}

// OpScale returns the toolchain's multiplier for op (1.0 if unspecified).
func (t *Toolchain) OpScale(op CPUOp) float64 {
	if t == nil || t.Scale == nil {
		return 1.0
	}
	if s, ok := t.Scale[op]; ok {
		return s
	}
	return 1.0
}

// GCC441 is the Linux/Android toolchain used in the paper.
func GCC441() *Toolchain {
	return &Toolchain{Name: "gcc-4.4.1"}
}

// Xcode421 is the iOS toolchain used in the paper. Its integer-divide code
// is measurably worse than GCC's (visible in Fig. 5 basic ops).
func Xcode421() *Toolchain {
	return &Toolchain{
		Name: "xcode-4.2.1",
		Scale: map[CPUOp]float64{
			OpIntDiv: 1.55,
		},
	}
}

// MemModel describes DRAM characteristics.
type MemModel struct {
	// SizeMB is total RAM.
	SizeMB int
	// KernelReserveMB is RAM the OS itself holds (kernel text, page
	// tables, drivers, firmware carve-outs): it never enters the jetsam
	// budget. Both 2012-class tablets reserve on the order of 1/8 of RAM.
	KernelReserveMB int
	// ReadBWMBs and WriteBWMBs are streaming bandwidths in MB/s.
	ReadBWMBs  float64
	WriteBWMBs float64
	// Latency is the cost of a random access (row miss).
	Latency time.Duration
}

// JetsamBudget returns the bytes available to user tasks before the
// memorystatus degradation ladder engages: total RAM minus the kernel
// reserve. The kernel derives its warn/critical watermarks and per-band
// task limits from this single number, so the whole ladder is a pure
// function of the device profile.
func (m *MemModel) JetsamBudget() uint64 {
	return uint64(m.SizeMB-m.KernelReserveMB) << 20
}

// ReadTime returns the time to stream-read n bytes.
func (m *MemModel) ReadTime(n int64) time.Duration {
	return time.Duration(float64(n) / (m.ReadBWMBs * 1e6) * float64(time.Second))
}

// WriteTime returns the time to stream-write n bytes.
func (m *MemModel) WriteTime(n int64) time.Duration {
	return time.Duration(float64(n) / (m.WriteBWMBs * 1e6) * float64(time.Second))
}

// StorageModel describes the flash storage stack (device + OS driver): the
// paper notes storage results "may reflect differences in both the
// underlying hardware and the OS", so the write path cost is a property of
// the whole device profile.
type StorageModel struct {
	// ReadBWMBs and WriteBWMBs are sequential bandwidths in MB/s.
	ReadBWMBs  float64
	WriteBWMBs float64
	// OpLatency is the fixed per-operation cost (submit + interrupt).
	OpLatency time.Duration
	// CreateLatency and DeleteLatency cover metadata updates.
	CreateLatency time.Duration
	DeleteLatency time.Duration
}

// ReadTime returns the time to read n bytes sequentially.
func (s *StorageModel) ReadTime(n int64) time.Duration {
	return s.OpLatency + time.Duration(float64(n)/(s.ReadBWMBs*1e6)*float64(time.Second))
}

// WriteTime returns the time to write n bytes sequentially.
func (s *StorageModel) WriteTime(n int64) time.Duration {
	return s.OpLatency + time.Duration(float64(n)/(s.WriteBWMBs*1e6)*float64(time.Second))
}

// GPUModel describes the 3D engine. The Nexus 7's Tegra 3 GPU is slower
// than the iPad mini's SGX543MP2, which is why the iPad wins the 3D tests
// in Fig. 6 despite its slower CPU.
type GPUModel struct {
	// Name identifies the part.
	Name string
	// CmdCost is the driver+hardware cost to accept one command-stream
	// command (state change, draw call header).
	CmdCost time.Duration
	// VertexRate is vertex-transform throughput (vertices/second).
	VertexRate float64
	// FillRate is pixel fill throughput (pixels/second).
	FillRate float64
	// FenceLatency is the round-trip cost of a fence/sync object signal.
	FenceLatency time.Duration
	// FrameOverhead is fixed per-frame setup/swap cost.
	FrameOverhead time.Duration
}

// VertexTime returns the time to transform n vertices.
func (g *GPUModel) VertexTime(n int64) time.Duration {
	return time.Duration(float64(n) / g.VertexRate * float64(time.Second))
}

// FillTime returns the time to fill n pixels.
func (g *GPUModel) FillTime(n int64) time.Duration {
	return time.Duration(float64(n) / g.FillRate * float64(time.Second))
}

// DisplayModel describes the panel.
type DisplayModel struct {
	Width, Height int
	// RefreshHz is the panel refresh rate.
	RefreshHz int
}

// Pixels returns the panel pixel count.
func (d *DisplayModel) Pixels() int { return d.Width * d.Height }

// Device bundles the full hardware profile of a tablet.
type Device struct {
	// Name is the product name.
	Name    string
	CPU     *CPUModel
	Mem     *MemModel
	Storage *StorageModel
	GPU     *GPUModel
	Display *DisplayModel
}

// Nexus7 returns the Google Nexus 7 (2012) profile used as the Android
// device in the paper: 1.3 GHz quad-core Tegra 3, 1 GB RAM, 16 GB flash,
// 7" 1280x800 panel.
func Nexus7() *Device {
	return &Device{
		Name: "Nexus 7",
		CPU: &CPUModel{
			Name:    "NVIDIA Tegra 3",
			Cores:   4,
			FreqMHz: 1300,
			CPI: [numCPUOps]float64{
				OpIntAdd:   1.0,
				OpIntMul:   4.0,
				OpIntDiv:   20.0,
				OpFloatAdd: 4.0,
				OpFloatMul: 5.0,
				OpFloatDiv: 28.0,
				OpBranch:   2.0,
				OpLoad:     3.0,
				OpStore:    2.0,
			},
		},
		Mem: &MemModel{
			SizeMB:          1024,
			KernelReserveMB: 128,
			ReadBWMBs:       1400,
			WriteBWMBs:      1100,
			Latency:         110 * time.Nanosecond,
		},
		Storage: &StorageModel{
			ReadBWMBs:     28,
			WriteBWMBs:    9,
			OpLatency:     180 * time.Microsecond,
			CreateLatency: 95 * time.Microsecond,
			DeleteLatency: 80 * time.Microsecond,
		},
		GPU: &GPUModel{
			Name:          "ULP GeForce (Tegra 3)",
			CmdCost:       900 * time.Nanosecond,
			VertexRate:    60e6,
			FillRate:      2000e6,
			FenceLatency:  55 * time.Microsecond,
			FrameOverhead: 650 * time.Microsecond,
		},
		Display: &DisplayModel{Width: 1280, Height: 800, RefreshHz: 60},
	}
}

// IPadMini returns the iPad mini (1st gen) profile used as the iOS device
// in the paper: 1 GHz dual-core A5, 512 MB RAM, 16 GB flash, 7.9" 1024x768
// panel. Its CPU is slower than the Nexus 7's (every basic-op measurement
// in Fig. 5 is worse on the iPad), but its SGX543MP2 GPU is faster.
func IPadMini() *Device {
	return &Device{
		Name: "iPad mini",
		CPU: &CPUModel{
			Name:    "Apple A5",
			Cores:   2,
			FreqMHz: 1000,
			CPI: [numCPUOps]float64{
				OpIntAdd:   1.05,
				OpIntMul:   4.2,
				OpIntDiv:   21.0,
				OpFloatAdd: 4.2,
				OpFloatMul: 5.2,
				OpFloatDiv: 29.0,
				OpBranch:   2.1,
				OpLoad:     3.2,
				OpStore:    2.1,
			},
		},
		Mem: &MemModel{
			SizeMB:          512,
			KernelReserveMB: 64,
			ReadBWMBs:       1050,
			WriteBWMBs:      850,
			Latency:         120 * time.Nanosecond,
		},
		Storage: &StorageModel{
			// The iPad mini's storage write path is much faster than the
			// Nexus 7's (Fig. 6, storage group).
			ReadBWMBs:     30,
			WriteBWMBs:    32,
			OpLatency:     150 * time.Microsecond,
			CreateLatency: 90 * time.Microsecond,
			DeleteLatency: 75 * time.Microsecond,
		},
		GPU: &GPUModel{
			Name:          "PowerVR SGX543MP2",
			CmdCost:       700 * time.Nanosecond,
			VertexRate:    130e6,
			FillRate:      3600e6,
			FenceLatency:  40 * time.Microsecond,
			FrameOverhead: 500 * time.Microsecond,
		},
		Display: &DisplayModel{Width: 1024, Height: 768, RefreshHz: 60},
	}
}
