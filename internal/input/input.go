// Package input implements Section 5.2: multi-touch input for iOS apps on
// Android. It provides the Android input subsystem (an evdev-style device
// queue), the wire encoding CiderPress uses to forward events over a BSD
// socket, the translation of Android input events into the HID event
// format iOS apps expect, the *eventpump* bridge thread that pumps
// translated events into the app's Mach IPC event port, and the user-space
// gesture recognizers (tap / pan / pinch-to-zoom) that sit above it.
package input

import (
	"encoding/binary"
	"fmt"
)

// EventType is an Android input event class.
type EventType uint8

const (
	// TouchDown is a pointer-down event.
	TouchDown EventType = iota + 1
	// TouchMove is a pointer-move event.
	TouchMove
	// TouchUp is a pointer-up event.
	TouchUp
	// Key is a key press.
	Key
	// Accel is an accelerometer sample.
	Accel
	// Lifecycle carries an app state change proxied by CiderPress
	// (pause / resume / stop), so the iOS app follows the Android
	// activity lifecycle (Section 3).
	Lifecycle
)

func (t EventType) String() string {
	switch t {
	case TouchDown:
		return "touch-down"
	case TouchMove:
		return "touch-move"
	case TouchUp:
		return "touch-up"
	case Key:
		return "key"
	case Accel:
		return "accel"
	case Lifecycle:
		return "lifecycle"
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// Lifecycle codes.
const (
	// LifecyclePause backgrounds the app.
	LifecyclePause = 1
	// LifecycleResume foregrounds the app.
	LifecycleResume = 2
	// LifecycleStop terminates the app.
	LifecycleStop = 3
)

// Event is one Android input event (the evdev-cooked form the framework
// delivers).
type Event struct {
	// Type classifies the event.
	Type EventType
	// Pointer is the touch pointer index (multi-touch slot).
	Pointer uint8
	// X and Y are panel coordinates in pixels (or milli-g for Accel).
	X, Y int32
	// Code is the key code / lifecycle code.
	Code int32
	// TimeNs is the event timestamp.
	TimeNs int64
}

// EventSize is the wire size of a marshaled Event.
const EventSize = 22

// Marshal encodes the event for the CiderPress→eventpump socket.
func (e Event) Marshal() []byte {
	b := make([]byte, EventSize)
	b[0] = byte(e.Type)
	b[1] = e.Pointer
	binary.LittleEndian.PutUint32(b[2:], uint32(e.X))
	binary.LittleEndian.PutUint32(b[6:], uint32(e.Y))
	binary.LittleEndian.PutUint32(b[10:], uint32(e.Code))
	binary.LittleEndian.PutUint64(b[14:], uint64(e.TimeNs))
	return b
}

// Unmarshal decodes one wire event.
func Unmarshal(b []byte) (Event, error) {
	if len(b) < EventSize {
		return Event{}, fmt.Errorf("input: short event (%d bytes)", len(b))
	}
	return Event{
		Type:    EventType(b[0]),
		Pointer: b[1],
		X:       int32(binary.LittleEndian.Uint32(b[2:])),
		Y:       int32(binary.LittleEndian.Uint32(b[6:])),
		Code:    int32(binary.LittleEndian.Uint32(b[10:])),
		TimeNs:  int64(binary.LittleEndian.Uint64(b[14:])),
	}, nil
}

// HID kinds (the iOS IOHIDEvent families the simulation models).
const (
	// HIDTouch is a digitizer event.
	HIDTouch uint8 = 1
	// HIDKeyboard is a key event.
	HIDKeyboard uint8 = 2
	// HIDAccelerometer is a motion sample.
	HIDAccelerometer uint8 = 3
	// HIDLifecycle is Cider's proxied app-state event.
	HIDLifecycle uint8 = 4
)

// HID touch phases (UITouchPhase).
const (
	// PhaseBegan is UITouchPhaseBegan.
	PhaseBegan uint8 = 0
	// PhaseMoved is UITouchPhaseMoved.
	PhaseMoved uint8 = 1
	// PhaseEnded is UITouchPhaseEnded.
	PhaseEnded uint8 = 3
)

// HIDEvent is the event format iOS apps expect on their Mach event port.
// Coordinates are normalized to [0,1] as IOHID digitizer events are.
type HIDEvent struct {
	// Kind is the HID event family.
	Kind uint8
	// Phase is the touch phase (touch events).
	Phase uint8
	// Finger is the digitizer transducer index.
	Finger uint8
	// X and Y are normalized coordinates.
	X, Y float32
	// Code carries key/lifecycle codes or accel values.
	Code int32
	// TimeNs is the original event timestamp.
	TimeNs int64
}

// HIDEventSize is the wire size of a marshaled HIDEvent (the Mach message
// body the eventpump sends).
const HIDEventSize = 23

// Marshal encodes the HID event as a Mach message body.
func (h HIDEvent) Marshal() []byte {
	b := make([]byte, HIDEventSize)
	b[0] = h.Kind
	b[1] = h.Phase
	b[2] = h.Finger
	binary.LittleEndian.PutUint32(b[3:], uint32(int32(h.X*65536)))
	binary.LittleEndian.PutUint32(b[7:], uint32(int32(h.Y*65536)))
	binary.LittleEndian.PutUint32(b[11:], uint32(h.Code))
	binary.LittleEndian.PutUint64(b[15:], uint64(h.TimeNs))
	return b
}

// UnmarshalHID decodes a Mach event message body.
func UnmarshalHID(b []byte) (HIDEvent, error) {
	if len(b) < HIDEventSize {
		return HIDEvent{}, fmt.Errorf("input: short HID event (%d bytes)", len(b))
	}
	return HIDEvent{
		Kind:   b[0],
		Phase:  b[1],
		Finger: b[2],
		X:      float32(int32(binary.LittleEndian.Uint32(b[3:]))) / 65536,
		Y:      float32(int32(binary.LittleEndian.Uint32(b[7:]))) / 65536,
		Code:   int32(binary.LittleEndian.Uint32(b[11:])),
		TimeNs: int64(binary.LittleEndian.Uint64(b[15:])),
	}, nil
}

// Translate converts an Android input event into the iOS HID form,
// normalizing panel coordinates — the eventpump's per-event work:
// "it simply reads events from the Android input system, translates them
// as necessary into a format understood by iOS apps" (Section 5.2).
func Translate(e Event, screenW, screenH int) HIDEvent {
	h := HIDEvent{Finger: e.Pointer, Code: e.Code, TimeNs: e.TimeNs}
	switch e.Type {
	case TouchDown, TouchMove, TouchUp:
		h.Kind = HIDTouch
		switch e.Type {
		case TouchDown:
			h.Phase = PhaseBegan
		case TouchMove:
			h.Phase = PhaseMoved
		default:
			h.Phase = PhaseEnded
		}
		if screenW > 0 && screenH > 0 {
			h.X = float32(e.X) / float32(screenW)
			h.Y = float32(e.Y) / float32(screenH)
		}
	case Key:
		h.Kind = HIDKeyboard
	case Accel:
		h.Kind = HIDAccelerometer
		h.X = float32(e.X) / 1000 // milli-g to g
		h.Y = float32(e.Y) / 1000
	case Lifecycle:
		h.Kind = HIDLifecycle
	}
	return h
}
