package input_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/input"
	"repro/internal/kernel"
	"repro/internal/prog"
	"repro/internal/uikit"
)

// TestEndToEndTouchPipeline drives the full Section 5.2 path: a hardware
// touch enters the Android input device, CiderPress forwards it over the
// BSD socket, the eventpump translates it and pumps it into the app's Mach
// event port, and the app's gesture recognizer sees a tap — all while the
// app renders through diplomatic GL.
func TestEndToEndTouchPipeline(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}

	var taps, events int
	var launched bool
	err = sys.InstallIOSBinary("/Applications/touchy.app/touchy", "touchy", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		return uikit.Main(th, uikit.Delegate{
			OnLaunch: func(app *uikit.App) {
				launched = true
				app.GL.Call("_glClear", 0x4000)
				app.Present()
			},
			OnEvent: func(app *uikit.App, e input.HIDEvent) {
				if e.Kind == input.HIDTouch {
					events++
				}
			},
			OnGesture: func(app *uikit.App, g input.Gesture) {
				if g.Kind == input.GestureTap {
					taps++
				}
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sys.LaunchIOSApp("/Applications/touchy.app/touchy"); err != nil {
		t.Fatal(err)
	}

	// A "hardware" driver process injecting a tap, then a stop.
	sys.InstallStaticAndroidBinary("/system/bin/touchdriver", "touchdriver", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Charge(50 * time.Millisecond) // let the app come up
		sys.Input.Inject(th, input.Event{Type: input.TouchDown, X: 640, Y: 400, TimeNs: 1})
		th.Charge(10 * time.Millisecond)
		sys.Input.Inject(th, input.Event{Type: input.TouchUp, X: 640, Y: 400, TimeNs: 2})
		th.Charge(10 * time.Millisecond)
		sys.Input.Inject(th, input.Event{Type: input.Lifecycle, Code: input.LifecycleStop})
		return 0
	})
	if _, err := sys.Start("/system/bin/touchdriver", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	if !launched {
		t.Fatal("app never launched")
	}
	if events < 2 {
		t.Fatalf("app saw %d touch events, want 2", events)
	}
	if taps != 1 {
		t.Fatalf("taps = %d, want 1", taps)
	}
	if sys.CiderPress.Launches() != 1 {
		t.Fatalf("CiderPress launches = %d", sys.CiderPress.Launches())
	}
	// The proxy surface exists for Android's recents screenshots.
	if sys.CiderPress.Screenshot() == nil {
		t.Fatal("no proxy surface screenshot")
	}
	if sys.CiderPress.LastStatus() != 0 {
		t.Fatalf("app exit status = %d", sys.CiderPress.LastStatus())
	}
}

// TestLifecyclePauseResume verifies proxied app state changes reach the
// app as lifecycle events.
func TestLifecyclePauseResume(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	var states []int32
	sys.InstallIOSBinary("/Applications/l.app/l", "lapp", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		return uikit.Main(th, uikit.Delegate{
			OnEvent: func(app *uikit.App, e input.HIDEvent) {
				if e.Kind == input.HIDLifecycle {
					states = append(states, e.Code)
				}
			},
		})
	})
	sys.LaunchIOSApp("/Applications/l.app/l")
	sys.InstallStaticAndroidBinary("/system/bin/lifedriver", "lifedriver", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Charge(50 * time.Millisecond)
		for _, code := range []int32{input.LifecyclePause, input.LifecycleResume, input.LifecycleStop} {
			sys.Input.Inject(th, input.Event{Type: input.Lifecycle, Code: code})
			th.Charge(5 * time.Millisecond)
		}
		return 0
	})
	sys.Start("/system/bin/lifedriver", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int32{input.LifecyclePause, input.LifecycleResume, input.LifecycleStop}
	if len(states) != len(want) {
		t.Fatalf("states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}
}

// TestPinchToZoomEndToEnd drives a two-finger pinch through the pipeline.
func TestPinchToZoomEndToEnd(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	var pinches int
	var lastScale float32
	sys.InstallIOSBinary("/Applications/z.app/z", "zapp", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		return uikit.Main(th, uikit.Delegate{
			OnGesture: func(app *uikit.App, g input.Gesture) {
				if g.Kind == input.GesturePinch {
					pinches++
					lastScale = g.Scale
				}
			},
		})
	})
	sys.LaunchIOSApp("/Applications/z.app/z")
	sys.InstallStaticAndroidBinary("/system/bin/zoomdriver", "zoomdriver", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Charge(50 * time.Millisecond)
		inject := func(e input.Event) {
			sys.Input.Inject(th, e)
			th.Charge(2 * time.Millisecond)
		}
		inject(input.Event{Type: input.TouchDown, Pointer: 0, X: 500, Y: 400})
		inject(input.Event{Type: input.TouchDown, Pointer: 1, X: 780, Y: 400})
		inject(input.Event{Type: input.TouchMove, Pointer: 0, X: 300, Y: 400})
		inject(input.Event{Type: input.TouchMove, Pointer: 1, X: 980, Y: 400})
		inject(input.Event{Type: input.TouchUp, Pointer: 0, X: 300, Y: 400})
		inject(input.Event{Type: input.TouchUp, Pointer: 1, X: 980, Y: 400})
		inject(input.Event{Type: input.Lifecycle, Code: input.LifecycleStop})
		return 0
	})
	sys.Start("/system/bin/zoomdriver", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if pinches == 0 {
		t.Fatal("no pinch reached the app")
	}
	if lastScale <= 1 {
		t.Fatalf("spread scale = %v, want > 1", lastScale)
	}
}

// TestAccelerometerPipeline: CiderPress forwards accelerometer data too
// ("receives input such as touch events and accelerometer data", §3).
func TestAccelerometerPipeline(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	var samples int
	var lastG float32
	sys.InstallIOSBinary("/Applications/a.app/a", "accel-app", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		return uikit.Main(th, uikit.Delegate{
			OnEvent: func(app *uikit.App, e input.HIDEvent) {
				if e.Kind == input.HIDAccelerometer {
					samples++
					lastG = e.X
				}
			},
		})
	})
	sys.LaunchIOSApp("/Applications/a.app/a")
	sys.InstallStaticAndroidBinary("/system/bin/shake", "shake", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Charge(50 * time.Millisecond)
		for i := 0; i < 4; i++ {
			// milli-g values, translated to g by the eventpump.
			sys.Input.Inject(th, input.Event{Type: input.Accel, X: int32(250 * (i + 1)), Y: 0})
			th.Charge(5 * time.Millisecond)
		}
		sys.Input.Inject(th, input.Event{Type: input.Lifecycle, Code: input.LifecycleStop})
		return 0
	})
	sys.Start("/system/bin/shake", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if samples != 4 {
		t.Fatalf("samples = %d, want 4", samples)
	}
	if lastG != 1.0 {
		t.Fatalf("last sample = %vg, want 1.0g", lastG)
	}
}
