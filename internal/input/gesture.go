package input

import "math"

// GestureKind classifies a recognized gesture.
type GestureKind int

const (
	// GestureTap is a quick touch with little movement.
	GestureTap GestureKind = iota + 1
	// GesturePan is a single-finger drag.
	GesturePan
	// GesturePinch is a two-finger scale gesture (pinch-to-zoom).
	GesturePinch
)

func (k GestureKind) String() string {
	switch k {
	case GestureTap:
		return "tap"
	case GesturePan:
		return "pan"
	case GesturePinch:
		return "pinch"
	}
	return "gesture(?)"
}

// Gesture is one recognized gesture, in normalized coordinates.
type Gesture struct {
	Kind GestureKind
	// X and Y locate the gesture (tap point / pan position).
	X, Y float32
	// DX and DY are the pan delta since the last report.
	DX, DY float32
	// Scale is the pinch scale factor since the gesture began.
	Scale float32
}

// fingerState tracks one active transducer.
type fingerState struct {
	active         bool
	startX, startY float32
	x, y           float32
	moved          bool
}

// GestureRecognizer is the user-space recognizer stack iOS frameworks run
// over raw HID events ("passes these events up the user space stack
// through gesture recognizers and event handlers", Section 5.2). It
// supports the gestures the paper demonstrates: taps, panning, and
// pinch-to-zoom.
type GestureRecognizer struct {
	fingers [10]fingerState
	// pinchStartDist anchors the scale factor.
	pinchStartDist float32
	pinching       bool
}

// NewGestureRecognizer creates an empty recognizer.
func NewGestureRecognizer() *GestureRecognizer {
	return &GestureRecognizer{}
}

// moveThreshold separates taps from pans (normalized units).
const moveThreshold = 0.01

// Feed consumes one HID event and returns any gestures it completes or
// advances.
func (r *GestureRecognizer) Feed(h HIDEvent) []Gesture {
	if h.Kind != HIDTouch || int(h.Finger) >= len(r.fingers) {
		return nil
	}
	f := &r.fingers[h.Finger]
	var out []Gesture
	switch h.Phase {
	case PhaseBegan:
		*f = fingerState{active: true, startX: h.X, startY: h.Y, x: h.X, y: h.Y}
		if r.activeFingers() == 2 {
			r.pinching = true
			r.pinchStartDist = r.fingerDistance()
		}
	case PhaseMoved:
		if !f.active {
			return nil
		}
		dx, dy := h.X-f.x, h.Y-f.y
		f.x, f.y = h.X, h.Y
		if abs32(h.X-f.startX) > moveThreshold || abs32(h.Y-f.startY) > moveThreshold {
			f.moved = true
		}
		if r.pinching && r.activeFingers() == 2 {
			d := r.fingerDistance()
			if r.pinchStartDist > 0 {
				out = append(out, Gesture{Kind: GesturePinch, X: h.X, Y: h.Y, Scale: d / r.pinchStartDist})
			}
		} else if f.moved && r.activeFingers() == 1 {
			out = append(out, Gesture{Kind: GesturePan, X: h.X, Y: h.Y, DX: dx, DY: dy})
		}
	case PhaseEnded:
		if !f.active {
			return nil
		}
		wasMoved := f.moved
		f.active = false
		if r.pinching && r.activeFingers() < 2 {
			r.pinching = false
		}
		if !wasMoved && !r.pinching && r.activeFingers() == 0 {
			out = append(out, Gesture{Kind: GestureTap, X: h.X, Y: h.Y})
		}
	}
	return out
}

func (r *GestureRecognizer) activeFingers() int {
	n := 0
	for i := range r.fingers {
		if r.fingers[i].active {
			n++
		}
	}
	return n
}

// fingerDistance returns the distance between the first two active
// fingers.
func (r *GestureRecognizer) fingerDistance() float32 {
	var pts [][2]float32
	for i := range r.fingers {
		if r.fingers[i].active {
			pts = append(pts, [2]float32{r.fingers[i].x, r.fingers[i].y})
			if len(pts) == 2 {
				break
			}
		}
	}
	if len(pts) < 2 {
		return 0
	}
	dx := float64(pts[0][0] - pts[1][0])
	dy := float64(pts[0][1] - pts[1][1])
	return float32(math.Hypot(dx, dy))
}

func abs32(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}
