package input

import (
	"testing"
	"testing/quick"
)

func TestEventWireRoundTrip(t *testing.T) {
	e := Event{Type: TouchMove, Pointer: 3, X: 640, Y: -12, Code: 7, TimeNs: 123456789}
	got, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("got %+v, want %+v", got, e)
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer should fail")
	}
}

func TestEventWirePropertyRoundTrip(t *testing.T) {
	f := func(typ uint8, ptr uint8, x, y, code int32, ts int64) bool {
		e := Event{Type: EventType(typ), Pointer: ptr, X: x, Y: y, Code: code, TimeNs: ts}
		got, err := Unmarshal(e.Marshal())
		return err == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHIDWireRoundTrip(t *testing.T) {
	h := HIDEvent{Kind: HIDTouch, Phase: PhaseMoved, Finger: 1, X: 0.5, Y: 0.25, Code: 9, TimeNs: 42}
	got, err := UnmarshalHID(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != h.Kind || got.Phase != h.Phase || got.Finger != h.Finger {
		t.Fatalf("got %+v", got)
	}
	if abs32(got.X-h.X) > 0.001 || abs32(got.Y-h.Y) > 0.001 {
		t.Fatalf("coords drifted: %+v", got)
	}
}

func TestTranslateTouch(t *testing.T) {
	h := Translate(Event{Type: TouchDown, X: 640, Y: 400}, 1280, 800)
	if h.Kind != HIDTouch || h.Phase != PhaseBegan {
		t.Fatalf("h = %+v", h)
	}
	if h.X != 0.5 || h.Y != 0.5 {
		t.Fatalf("normalized = (%v,%v), want (0.5,0.5)", h.X, h.Y)
	}
	h = Translate(Event{Type: TouchUp, X: 1280, Y: 800}, 1280, 800)
	if h.Phase != PhaseEnded || h.X != 1 || h.Y != 1 {
		t.Fatalf("h = %+v", h)
	}
}

func TestTranslateOtherKinds(t *testing.T) {
	if h := Translate(Event{Type: Key, Code: 65}, 100, 100); h.Kind != HIDKeyboard || h.Code != 65 {
		t.Fatalf("key: %+v", h)
	}
	if h := Translate(Event{Type: Accel, X: 1000, Y: -500}, 100, 100); h.Kind != HIDAccelerometer || h.X != 1.0 {
		t.Fatalf("accel: %+v", h)
	}
	if h := Translate(Event{Type: Lifecycle, Code: LifecyclePause}, 100, 100); h.Kind != HIDLifecycle || h.Code != LifecyclePause {
		t.Fatalf("lifecycle: %+v", h)
	}
}

func feed(r *GestureRecognizer, events ...HIDEvent) []Gesture {
	var out []Gesture
	for _, e := range events {
		out = append(out, r.Feed(e)...)
	}
	return out
}

func TestGestureTap(t *testing.T) {
	r := NewGestureRecognizer()
	gs := feed(r,
		HIDEvent{Kind: HIDTouch, Phase: PhaseBegan, X: 0.5, Y: 0.5},
		HIDEvent{Kind: HIDTouch, Phase: PhaseEnded, X: 0.5, Y: 0.5},
	)
	if len(gs) != 1 || gs[0].Kind != GestureTap {
		t.Fatalf("gestures = %+v", gs)
	}
}

func TestGesturePan(t *testing.T) {
	r := NewGestureRecognizer()
	gs := feed(r,
		HIDEvent{Kind: HIDTouch, Phase: PhaseBegan, X: 0.2, Y: 0.2},
		HIDEvent{Kind: HIDTouch, Phase: PhaseMoved, X: 0.3, Y: 0.2},
		HIDEvent{Kind: HIDTouch, Phase: PhaseMoved, X: 0.4, Y: 0.2},
		HIDEvent{Kind: HIDTouch, Phase: PhaseEnded, X: 0.4, Y: 0.2},
	)
	pans := 0
	for _, g := range gs {
		if g.Kind == GesturePan {
			pans++
			if g.DX <= 0 {
				t.Fatalf("pan delta = %v", g.DX)
			}
		}
		if g.Kind == GestureTap {
			t.Fatal("a drag must not be a tap")
		}
	}
	if pans == 0 {
		t.Fatal("no pan recognized")
	}
}

func TestGesturePinch(t *testing.T) {
	r := NewGestureRecognizer()
	gs := feed(r,
		HIDEvent{Kind: HIDTouch, Phase: PhaseBegan, Finger: 0, X: 0.4, Y: 0.5},
		HIDEvent{Kind: HIDTouch, Phase: PhaseBegan, Finger: 1, X: 0.6, Y: 0.5},
		// Spread apart: zoom in.
		HIDEvent{Kind: HIDTouch, Phase: PhaseMoved, Finger: 0, X: 0.3, Y: 0.5},
		HIDEvent{Kind: HIDTouch, Phase: PhaseMoved, Finger: 1, X: 0.7, Y: 0.5},
	)
	var pinch *Gesture
	for i := range gs {
		if gs[i].Kind == GesturePinch {
			pinch = &gs[i]
		}
	}
	if pinch == nil {
		t.Fatal("no pinch recognized")
	}
	if pinch.Scale <= 1.0 {
		t.Fatalf("spread should scale > 1, got %v", pinch.Scale)
	}
	// Release both; no tap should fire.
	gs = feed(r,
		HIDEvent{Kind: HIDTouch, Phase: PhaseEnded, Finger: 0, X: 0.3, Y: 0.5},
		HIDEvent{Kind: HIDTouch, Phase: PhaseEnded, Finger: 1, X: 0.7, Y: 0.5},
	)
	for _, g := range gs {
		if g.Kind == GestureTap {
			t.Fatal("pinch release must not produce a tap")
		}
	}
}

func TestGestureMultiTouchIndependentFingers(t *testing.T) {
	r := NewGestureRecognizer()
	// Finger 5 taps while nothing else is down.
	gs := feed(r,
		HIDEvent{Kind: HIDTouch, Phase: PhaseBegan, Finger: 5, X: 0.9, Y: 0.9},
		HIDEvent{Kind: HIDTouch, Phase: PhaseEnded, Finger: 5, X: 0.9, Y: 0.9},
	)
	if len(gs) != 1 || gs[0].Kind != GestureTap {
		t.Fatalf("gestures = %+v", gs)
	}
	// Out-of-range finger ignored safely.
	if out := r.Feed(HIDEvent{Kind: HIDTouch, Phase: PhaseBegan, Finger: 99}); out != nil {
		t.Fatal("out-of-range finger should be ignored")
	}
}
