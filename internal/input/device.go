package input

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Device is the Android input device (/dev/input0): an evdev-style event
// queue. Hardware (or a test driver) injects events; the framework — or
// CiderPress — reads them as a byte stream of marshaled Events.
type Device struct {
	queue []byte
	wait  *sim.WaitQueue
	// waitQs is wait as a reusable slice for PollQueues.
	waitQs []*sim.WaitQueue
	// injected counts events for diagnostics.
	injected uint64
}

// NewDevice creates the input device.
func NewDevice() *Device {
	d := &Device{wait: sim.NewWaitQueue("input0")}
	d.waitQs = []*sim.WaitQueue{d.wait}
	return d
}

// DevName implements kernel.Device.
func (d *Device) DevName() string { return "input0" }

// Open implements kernel.Device.
func (d *Device) Open(*kernel.Thread) (kernel.File, kernel.Errno) {
	return &deviceFile{dev: d}, kernel.OK
}

// Injected reports how many events have entered the queue.
func (d *Device) Injected() uint64 { return d.injected }

// Inject queues an event, waking blocked readers. t is the injecting
// context (the touchscreen interrupt path, or CiderPress's test driver).
func (d *Device) Inject(t *kernel.Thread, e Event) {
	d.queue = append(d.queue, e.Marshal()...)
	d.injected++
	d.wait.WakeAll(t.Proc(), sim.WakeNormal)
}

// deviceFile is an open descriptor on the input device.
type deviceFile struct {
	dev *Device
}

func (f *deviceFile) Read(t *kernel.Thread, buf []byte) (int, kernel.Errno) {
	for len(f.dev.queue) == 0 {
		if tag := f.dev.wait.Wait(t.Proc()); tag == sim.WakeInterrupted {
			return 0, kernel.EINTR
		}
	}
	n := copy(buf, f.dev.queue)
	f.dev.queue = f.dev.queue[n:]
	return n, kernel.OK
}

func (f *deviceFile) Write(t *kernel.Thread, buf []byte) (int, kernel.Errno) {
	// uinput-style injection: whole marshaled events only.
	for len(buf) >= EventSize {
		e, err := Unmarshal(buf[:EventSize])
		if err != nil {
			return 0, kernel.EINVAL
		}
		f.dev.Inject(t, e)
		buf = buf[EventSize:]
	}
	return len(buf), kernel.OK
}

func (f *deviceFile) Close(*kernel.Thread) kernel.Errno { return kernel.OK }

func (f *deviceFile) Poll() kernel.PollMask {
	if len(f.dev.queue) > 0 {
		return kernel.PollIn | kernel.PollOut
	}
	return kernel.PollOut
}

func (f *deviceFile) PollQueues(kernel.PollMask) []*sim.WaitQueue { return f.dev.waitQs }

func (f *deviceFile) Ioctl(*kernel.Thread, uint64, uint64) (uint64, kernel.Errno) {
	return 0, kernel.ENOTTY
}
