package input

import (
	"time"

	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/xnu"
)

// StartEventPump creates the eventpump: "a new thread in each iOS app to
// act as a bridge between the Android input system and the Mach IPC port
// expecting input events. This thread listens for events from the Android
// CiderPress app on a BSD socket. It then pumps those events into the iOS
// app via Mach IPC." (Section 5.2, Figure 2.)
//
// sockFD is the app's end of the CiderPress socket pair; eventPort is the
// app's Mach event port (a receive right in the app's space). The pump
// exits when the socket reaches EOF or the app stops. Screen dimensions
// drive coordinate normalization.
func StartEventPump(t *kernel.Thread, sockFD int, eventPort xnu.PortName, screenW, screenH int) *kernel.Thread {
	return t.SpawnThread("eventpump", func(pt *kernel.Thread) {
		lc := libsystem.Sys(pt)
		var pending []byte
		buf := make([]byte, 256)
		for {
			n, errno := lc.Read(sockFD, buf)
			if errno != kernel.OK || n == 0 {
				return // socket closed: CiderPress went away
			}
			pending = append(pending, buf[:n]...)
			for len(pending) >= EventSize {
				e, err := Unmarshal(pending[:EventSize])
				pending = pending[EventSize:]
				if err != nil {
					continue
				}
				h := Translate(e, screenW, screenH)
				kr := lc.MachSend(eventPort, &xnu.Message{
					ID:   machEventMsgID,
					Body: h.Marshal(),
				}, -1)
				if kr != xnu.KernSuccess {
					return
				}
				if e.Type == Lifecycle && e.Code == LifecycleStop {
					return
				}
			}
		}
	})
}

// machEventMsgID tags HID event messages on the app's event port.
const machEventMsgID = 0x4849 // 'HI'

// EventLoop is the app-side receive loop: block on the Mach event port,
// decode HID events, run them through the gesture recognizer, and hand
// both raw events and recognized gestures to the app. It returns when a
// LifecycleStop arrives or the port dies.
func EventLoop(t *kernel.Thread, eventPort xnu.PortName, onEvent func(HIDEvent), onGesture func(Gesture)) {
	lc := libsystem.Sys(t)
	rec := NewGestureRecognizer()
	for {
		msg, kr := lc.MachReceive(eventPort, time.Duration(-1))
		if kr != xnu.KernSuccess {
			return
		}
		if msg.ID != machEventMsgID {
			continue
		}
		h, err := UnmarshalHID(msg.Body)
		if err != nil {
			continue
		}
		if onEvent != nil {
			onEvent(h)
		}
		if onGesture != nil {
			for _, g := range rec.Feed(h) {
				onGesture(g)
			}
		}
		if h.Kind == HIDLifecycle && h.Code == LifecycleStop {
			return
		}
	}
}
