package prog

import (
	"repro/internal/elfx"
	"repro/internal/macho"
	"repro/internal/vfs"
)

// InstallStatic builds a static ELF for key and writes it at path —
// the one-liner every test cell repeats to stage its program binary.
func InstallStatic(fs *vfs.FS, path, key string) error {
	bin, err := StaticELF(key)
	if err != nil {
		return err
	}
	return fs.WriteFile(path, bin)
}

// StaticELF builds a minimal static ELF executable whose text payload is
// the given program key — the shape of a small test binary like lmbench's
// hello world.
func StaticELF(key string) ([]byte, error) {
	f := &elfx.File{
		Type:  elfx.TypeExec,
		Entry: 0x8000,
		Segments: []*elfx.Segment{
			{VAddr: 0x8000, Flags: elfx.FlagR | elfx.FlagX, Data: TextPayload(key)},
		},
	}
	return f.Marshal()
}

// DynamicELF builds an ELF executable that needs shared libraries; the
// kernel starts it through the user-space linker.
func DynamicELF(key string, needed []string) ([]byte, error) {
	f := &elfx.File{
		Type:   elfx.TypeExec,
		Entry:  0x8000,
		Needed: needed,
		Segments: []*elfx.Segment{
			{VAddr: 0x8000, Flags: elfx.FlagR | elfx.FlagX, Data: TextPayload(key)},
		},
	}
	return f.Marshal()
}

// ELFSharedObject builds a Bionic-style shared object exporting the given
// symbols; each export's implementation key is SymbolKey(soname, symbol).
func ELFSharedObject(soname string, needed []string, exports []string) ([]byte, error) {
	f := &elfx.File{
		Type:   elfx.TypeDyn,
		SoName: soname,
		Needed: needed,
		Segments: []*elfx.Segment{
			{VAddr: 0x1000, Flags: elfx.FlagR | elfx.FlagX, Data: TextPayload(soname)},
		},
	}
	for i, sym := range exports {
		f.Symbols = append(f.Symbols, elfx.Symbol{Name: sym, Value: uint32(0x1000 + 16*i), Defined: true})
	}
	return f.Marshal()
}

// MachOExecutable builds an iOS app binary: Mach-O with a __TEXT payload
// naming the entry key, LC_LOAD_DYLIB references, and /usr/lib/dyld as the
// dylinker. segMB pads __DATA to model the binary's memory footprint.
func MachOExecutable(key string, dylibs []string, imports []string) ([]byte, error) {
	f := &macho.File{
		CPUType:    macho.CPUTypeARM,
		CPUSubtype: macho.CPUSubtypeARMV7,
		FileType:   macho.TypeExecute,
		Flags:      macho.FlagDyldLink | macho.FlagPIE,
		Dylinker:   "/usr/lib/dyld",
		Dylibs:     dylibs,
		HasEntry:   true,
		Segments: []*macho.Segment{
			{
				Name:   "__TEXT",
				VMAddr: 0x1000,
				Prot:   macho.ProtRead | macho.ProtExecute,
				Data:   TextPayload(key),
				Sections: []macho.Section{
					{Name: "__text", Addr: 0x1000, Size: uint32(len(TextPayload(key)))},
				},
			},
			{
				Name:   "__DATA",
				VMAddr: 0x100000,
				VMSize: 0x4000,
				Prot:   macho.ProtRead | macho.ProtWrite,
			},
		},
		Symbols: []macho.Symbol{
			{Name: "_main", Type: macho.NTypeSect | macho.NTypeExt, Sect: 1, Value: 0x1000},
		},
	}
	for _, im := range imports {
		f.Symbols = append(f.Symbols, macho.Symbol{Name: im, Type: macho.NTypeUndef | macho.NTypeExt})
	}
	return f.Marshal()
}

// MachODylib builds an iOS framework/dylib exporting the given symbols
// (Mach-O style, leading underscore included by the caller); vmBytes sets
// the library's mapped size, which is what dyld's 90 MB / 115-library
// footprint is made of.
func MachODylib(installName string, deps []string, exports []string, vmBytes uint32) ([]byte, error) {
	textPayload := TextPayload(installName)
	f := &macho.File{
		CPUType:    macho.CPUTypeARM,
		CPUSubtype: macho.CPUSubtypeARMV7,
		FileType:   macho.TypeDylib,
		DylibID:    installName,
		Dylibs:     deps,
		Segments: []*macho.Segment{
			{
				Name:   "__TEXT",
				VMAddr: 0x1000,
				VMSize: vmBytes,
				Prot:   macho.ProtRead | macho.ProtExecute,
				Data:   textPayload,
			},
		},
	}
	for i, sym := range exports {
		f.Symbols = append(f.Symbols, macho.Symbol{
			Name: sym, Type: macho.NTypeSect | macho.NTypeExt, Sect: 1,
			Value: uint32(0x1000 + 16*i),
		})
	}
	return f.Marshal()
}
