// Package prog is the simulated machine-code registry: the bridge between
// binary images (Mach-O / ELF bytes) and runnable behaviour.
//
// A real binary's text segment contains ARM instructions; this simulation
// cannot execute ARM, so a text segment instead carries a small payload
// naming a registered program ("prog:<key>"). Loaders parse the real binary
// format, find the payload, and bind it to a Go function from the Registry —
// exactly the role symbol binding plays for dyld and the ELF loader.
// Exported library functions use per-symbol keys ("<install-name>#<symbol>")
// so dynamic linkers and diplomatic function generators can resolve
// individual entry points.
package prog

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Call carries the arguments of one simulated native call.
type Call struct {
	// Ctx is the execution context (the kernel thread handle); callees
	// type-assert it to the concrete context they were written against.
	Ctx any
	// Args are the integer/pointer arguments, ABI style.
	Args []uint64
}

// Arg returns argument i, or 0 when absent (varargs-tolerant).
func (c *Call) Arg(i int) uint64 {
	if i < len(c.Args) {
		return c.Args[i]
	}
	return 0
}

// Func is the body of a simulated program entry point or exported function.
type Func func(c *Call) uint64

// Registry maps code keys to implementations. A Registry represents "the
// machine code that exists in the world" for one simulated system; tests
// and systems construct their own to stay independent.
type Registry struct {
	funcs map[string]Func
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: make(map[string]Func)}
}

// Register binds key to fn, failing on duplicates (two different pieces of
// machine code cannot share an identity).
func (r *Registry) Register(key string, fn Func) error {
	if _, ok := r.funcs[key]; ok {
		return fmt.Errorf("prog: duplicate registration of %q", key)
	}
	if fn == nil {
		return fmt.Errorf("prog: nil function for %q", key)
	}
	r.funcs[key] = fn
	return nil
}

// MustRegister is Register that panics on error (init-time wiring).
func (r *Registry) MustRegister(key string, fn Func) {
	if err := r.Register(key, fn); err != nil {
		panic(err)
	}
}

// Lookup resolves a code key.
func (r *Registry) Lookup(key string) (Func, bool) {
	fn, ok := r.funcs[key]
	return fn, ok
}

// Keys returns all registered keys, sorted (diagnostics).
func (r *Registry) Keys() []string {
	out := make([]string, 0, len(r.funcs))
	for k := range r.funcs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// textMagic prefixes a text-segment program payload.
const textMagic = "prog:"

// TextPayload encodes a program key as text-segment bytes.
func TextPayload(key string) []byte {
	return append([]byte(textMagic+key), 0)
}

// ParseTextPayload extracts the program key from text-segment bytes.
func ParseTextPayload(b []byte) (string, error) {
	if !bytes.HasPrefix(b, []byte(textMagic)) {
		return "", fmt.Errorf("prog: text segment carries no program payload")
	}
	rest := b[len(textMagic):]
	i := bytes.IndexByte(rest, 0)
	if i < 0 {
		return "", fmt.Errorf("prog: unterminated program payload")
	}
	return string(rest[:i]), nil
}

// SymbolKey names an exported function of a library image: dyld and the ELF
// loader bind "<install-name>#<symbol>" when resolving imports.
func SymbolKey(image, symbol string) string {
	return image + "#" + symbol
}

// SplitSymbolKey inverts SymbolKey.
func SplitSymbolKey(key string) (image, symbol string, ok bool) {
	i := strings.LastIndex(key, "#")
	if i < 0 {
		return "", "", false
	}
	return key[:i], key[i+1:], true
}
