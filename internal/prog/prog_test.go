package prog

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/elfx"
	"repro/internal/macho"
)

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	fn := func(c *Call) uint64 { return 42 }
	if err := r.Register("a", fn); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup("a")
	if !ok || got(&Call{}) != 42 {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup("b"); ok {
		t.Fatal("phantom key")
	}
}

func TestRegistryDuplicateRejected(t *testing.T) {
	r := NewRegistry()
	fn := func(c *Call) uint64 { return 0 }
	r.MustRegister("a", fn)
	if err := r.Register("a", fn); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	if err := r.Register("nil", nil); err == nil {
		t.Fatal("nil function should fail")
	}
}

func TestRegistryKeysSorted(t *testing.T) {
	r := NewRegistry()
	fn := func(c *Call) uint64 { return 0 }
	for _, k := range []string{"z", "a", "m"} {
		r.MustRegister(k, fn)
	}
	keys := r.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "z" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestCallArgVarargs(t *testing.T) {
	c := &Call{Args: []uint64{7}}
	if c.Arg(0) != 7 || c.Arg(5) != 0 {
		t.Fatal("Arg bounds behaviour wrong")
	}
}

func TestTextPayloadRoundTrip(t *testing.T) {
	b := TextPayload("com.example.app")
	key, err := ParseTextPayload(b)
	if err != nil || key != "com.example.app" {
		t.Fatalf("key=%q err=%v", key, err)
	}
	if _, err := ParseTextPayload([]byte("garbage")); err == nil {
		t.Fatal("non-payload should fail")
	}
	if _, err := ParseTextPayload([]byte("prog:unterminated")); err == nil {
		t.Fatal("unterminated payload should fail")
	}
}

func TestPropertyTextPayload(t *testing.T) {
	f := func(key string) bool {
		if strings.IndexByte(key, 0) >= 0 {
			return true
		}
		got, err := ParseTextPayload(TextPayload(key))
		return err == nil && got == key
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolKeyRoundTrip(t *testing.T) {
	key := SymbolKey("/usr/lib/libGLES.dylib", "_glClear")
	img, sym, ok := SplitSymbolKey(key)
	if !ok || img != "/usr/lib/libGLES.dylib" || sym != "_glClear" {
		t.Fatalf("split = %q %q %v", img, sym, ok)
	}
	if _, _, ok := SplitSymbolKey("nohash"); ok {
		t.Fatal("keyless string should not split")
	}
}

func TestBuildersProduceParseableImages(t *testing.T) {
	b, err := StaticELF("k")
	if err != nil {
		t.Fatal(err)
	}
	ef, err := elfx.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ef.Needed) != 0 {
		t.Fatal("static ELF should have no deps")
	}

	b, err = DynamicELF("k2", []string{"libc.so"})
	if err != nil {
		t.Fatal(err)
	}
	ef, _ = elfx.Parse(b)
	if len(ef.Needed) != 1 || ef.Needed[0] != "libc.so" {
		t.Fatalf("needed = %v", ef.Needed)
	}

	b, err = ELFSharedObject("libx.so", []string{"libc.so"}, []string{"fn1", "fn2"})
	if err != nil {
		t.Fatal(err)
	}
	ef, _ = elfx.Parse(b)
	if ef.SoName != "libx.so" || len(ef.ExportedSymbols()) != 2 {
		t.Fatalf("so: %s, exports %v", ef.SoName, ef.ExportedSymbols())
	}

	b, err = MachOExecutable("app", []string{"/usr/lib/libSystem.B.dylib"}, []string{"_import1"})
	if err != nil {
		t.Fatal(err)
	}
	mf, err := macho.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Dylinker != "/usr/lib/dyld" || !mf.HasEntry {
		t.Fatal("executable shape wrong")
	}
	if len(mf.UndefinedSymbols()) != 1 {
		t.Fatalf("imports = %v", mf.UndefinedSymbols())
	}
	key, err := ParseTextPayload(mf.Segment("__TEXT").Data)
	if err != nil || key != "app" {
		t.Fatalf("payload key = %q err=%v", key, err)
	}

	b, err = MachODylib("/F.framework/F", []string{"/usr/lib/libSystem.B.dylib"}, []string{"_e"}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	mf, _ = macho.Parse(b)
	if mf.DylibID != "/F.framework/F" {
		t.Fatalf("id = %q", mf.DylibID)
	}
	if mf.Segment("__TEXT").VMSize != 1<<20 {
		t.Fatalf("vmsize = %d", mf.Segment("__TEXT").VMSize)
	}
}
