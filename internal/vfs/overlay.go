package vfs

// Overlay is the union filesystem Cider uses to present the iOS hierarchy
// over the Android filesystem (Section 3): lookups hit the upper (iOS)
// layer first and fall back to the lower (Android) layer; all modifications
// go to the upper layer, copying files up first when needed. Directory
// listings union both layers, with upper entries shadowing lower ones.
type Overlay struct {
	upper *FS
	lower *FS
}

// NewOverlay builds an overlay of upper on top of lower.
func NewOverlay(upper, lower *FS) *Overlay {
	return &Overlay{upper: upper, lower: lower}
}

// Upper returns the writable top layer.
func (o *Overlay) Upper() *FS { return o.upper }

// Lower returns the read-mostly bottom layer.
func (o *Overlay) Lower() *FS { return o.lower }

// Lookup resolves p in the upper layer, then the lower.
func (o *Overlay) Lookup(p string) (*Node, error) {
	if n, err := o.upper.Lookup(p); err == nil {
		return n, nil
	}
	return o.lower.Lookup(p)
}

// copyUp ensures p's parents exist in the upper layer.
func (o *Overlay) copyUp(p string) error {
	dir, _ := Split(p)
	if _, err := o.lower.Lookup(dir); err == nil {
		return o.upper.MkdirAll(dir)
	}
	return nil
}

// Create makes a new file in the upper layer.
func (o *Overlay) Create(p string) (*Node, error) {
	if _, err := o.Lookup(p); err == nil {
		return nil, &ErrExists{Path: Clean(p)}
	}
	if err := o.copyUp(p); err != nil {
		return nil, err
	}
	return o.upper.Create(p)
}

// Mkdir creates a directory in the upper layer.
func (o *Overlay) Mkdir(p string) error {
	if _, err := o.Lookup(p); err == nil {
		return &ErrExists{Path: Clean(p)}
	}
	if err := o.copyUp(p); err != nil {
		return err
	}
	return o.upper.Mkdir(p)
}

// MkdirAll creates a directory chain in the upper layer.
func (o *Overlay) MkdirAll(p string) error {
	return o.upper.MkdirAll(p)
}

// Symlink creates a symlink in the upper layer.
func (o *Overlay) Symlink(target, p string) error {
	if err := o.copyUp(p); err != nil {
		return err
	}
	return o.upper.Symlink(target, p)
}

// Mknod creates a device node in the upper layer.
func (o *Overlay) Mknod(p string, dev Device) error {
	if err := o.copyUp(p); err != nil {
		return err
	}
	return o.upper.Mknod(p, dev)
}

// Remove unlinks from whichever layer holds p; removing a lower-layer file
// is rejected (the simulation does not need whiteouts — Cider never deletes
// Android system files through the overlay).
func (o *Overlay) Remove(p string) error {
	if _, err := o.upper.Lstat(p); err == nil {
		return o.upper.Remove(p)
	}
	if _, err := o.lower.Lookup(p); err == nil {
		return &ErrExists{Path: Clean(p) + " (lower layer is read-only)"}
	}
	return &ErrNotFound{Path: Clean(p)}
}

// ReadDir unions the listings of both layers; upper entries shadow lower
// entries of the same name.
func (o *Overlay) ReadDir(p string) ([]*Node, error) {
	up, upErr := o.upper.ReadDir(p)
	low, lowErr := o.lower.ReadDir(p)
	if upErr != nil && lowErr != nil {
		return nil, upErr
	}
	seen := map[string]bool{}
	var out []*Node
	for _, n := range up {
		seen[n.Name()] = true
		out = append(out, n)
	}
	for _, n := range low {
		if !seen[n.Name()] {
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out, nil
}

// Rename operates within the upper layer, copying the source up from the
// lower layer first if necessary.
func (o *Overlay) Rename(oldp, newp string) error {
	if _, err := o.upper.Lstat(oldp); err != nil {
		// Copy the lower file up, then rename within upper.
		data, rerr := o.lower.ReadFile(oldp)
		if rerr != nil {
			return rerr
		}
		if err := o.upper.WriteFile(oldp, data); err != nil {
			return err
		}
	}
	if err := o.copyUp(newp); err != nil {
		return err
	}
	return o.upper.Rename(oldp, newp)
}

// WriteFile writes to the upper layer.
func (o *Overlay) WriteFile(p string, data []byte) error {
	return o.upper.WriteFile(p, data)
}

// ReadFile reads from the union.
func (o *Overlay) ReadFile(p string) ([]byte, error) {
	n, err := o.Lookup(p)
	if err != nil {
		return nil, err
	}
	if n.IsDir() {
		return nil, &ErrIsDir{Path: Clean(p)}
	}
	return append([]byte(nil), n.Data()...), nil
}

func sortNodes(ns []*Node) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].Name() < ns[j-1].Name(); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}
