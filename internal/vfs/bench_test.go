package vfs

import "testing"

// BenchmarkVFSLookupInterned times the clean-path fast walk: component
// iteration by substring (the map probes on string slices compile to
// allocation-free lookups), no Clean, no split slice. Every simulated
// open/exec pays this path, so allocs/op here must report 0.
func BenchmarkVFSLookupInterned(b *testing.B) {
	fs := New()
	if err := fs.MkdirAll("/usr/lib/system/deep"); err != nil {
		b.Fatal(err)
	}
	if err := fs.WriteFile("/usr/lib/system/deep/libsystem_kernel.dylib", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Lookup("/usr/lib/system/deep/libsystem_kernel.dylib"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVFSLookupMiss times the not-found path for contrast; the error
// carries the path, so one allocation per miss is expected and allowed.
func BenchmarkVFSLookupMiss(b *testing.B) {
	fs := New()
	if err := fs.MkdirAll("/usr/lib"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Lookup("/usr/lib/nonesuch"); err == nil {
			b.Fatal("expected miss")
		}
	}
}
