// Package vfs implements the simulated filesystem layer: an in-memory
// hierarchical filesystem, device nodes, symlinks, mount points, and the
// overlay filesystem Cider uses to present the iOS hierarchy (/Documents,
// /System/Library, /usr/lib, ...) on top of the Android filesystem
// (Section 3 of the paper).
//
// vfs is a pure data structure: I/O *cost* (flash latency/bandwidth) is
// charged by the kernel file-descriptor layer using internal/hw's
// StorageModel, so the same tree can serve both device profiles.
package vfs

import (
	"fmt"
	"path"
	"sort"
	"strings"
)

// Kind discriminates node types.
type Kind int

const (
	// KindFile is a regular file.
	KindFile Kind = iota
	// KindDir is a directory.
	KindDir
	// KindSymlink is a symbolic link.
	KindSymlink
	// KindDevice is a device node (bridged to the kernel device framework).
	KindDevice
)

func (k Kind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindDir:
		return "dir"
	case KindSymlink:
		return "symlink"
	case KindDevice:
		return "device"
	}
	return "unknown"
}

// Device is the hook vfs uses to reference kernel device objects without
// depending on the kernel package. The kernel's device framework implements
// it and type-asserts back on open.
type Device interface {
	// DevName returns the canonical device name (e.g. "fb0", "input0").
	DevName() string
}

// ErrNotFound reports a missing path component.
type ErrNotFound struct{ Path string }

func (e *ErrNotFound) Error() string {
	return fmt.Sprintf("vfs: %s: no such file or directory", e.Path)
}

// ErrExists reports a create over an existing node.
type ErrExists struct{ Path string }

func (e *ErrExists) Error() string { return fmt.Sprintf("vfs: %s: file exists", e.Path) }

// ErrNotDir reports traversal through a non-directory.
type ErrNotDir struct{ Path string }

func (e *ErrNotDir) Error() string { return fmt.Sprintf("vfs: %s: not a directory", e.Path) }

// ErrIsDir reports a file operation on a directory.
type ErrIsDir struct{ Path string }

func (e *ErrIsDir) Error() string { return fmt.Sprintf("vfs: %s: is a directory", e.Path) }

// ErrNotEmpty reports removal of a non-empty directory.
type ErrNotEmpty struct{ Path string }

func (e *ErrNotEmpty) Error() string { return fmt.Sprintf("vfs: %s: directory not empty", e.Path) }

// ErrLoop reports too many levels of symbolic links.
type ErrLoop struct{ Path string }

func (e *ErrLoop) Error() string {
	return fmt.Sprintf("vfs: %s: too many levels of symbolic links", e.Path)
}

// ErrIO reports a simulated media error (fault injection).
type ErrIO struct{ Path string }

func (e *ErrIO) Error() string { return fmt.Sprintf("vfs: %s: input/output error", e.Path) }

// ErrNoSpace reports a simulated full device (fault injection).
type ErrNoSpace struct{ Path string }

func (e *ErrNoSpace) Error() string {
	return fmt.Sprintf("vfs: %s: no space left on device", e.Path)
}

// Node is one filesystem object.
type Node struct {
	name     string
	kind     Kind
	children map[string]*Node
	data     []byte
	// shared marks data as copy-on-write: the slice is owned by a frozen
	// template tree (see FS.Freeze/Clone) and must be replaced, never
	// written in place.
	shared bool
	target string // symlink target
	dev    Device
	// mount, when non-nil, redirects traversal into another filesystem.
	mount FileSystem
}

// Name returns the node's name within its directory.
func (n *Node) Name() string { return n.name }

// Kind returns the node type.
func (n *Node) Kind() Kind { return n.kind }

// IsDir reports whether the node is a directory.
func (n *Node) IsDir() bool { return n.kind == KindDir }

// Size returns the file length in bytes (0 for non-files).
func (n *Node) Size() int64 { return int64(len(n.data)) }

// Data returns the file contents. The slice is the live store; callers that
// mutate must go through SetData/WriteData.
func (n *Node) Data() []byte { return n.data }

// SetData replaces the file contents.
func (n *Node) SetData(b []byte) {
	n.data = b
	n.shared = false
}

// WriteData writes b at offset off, growing the file as needed, and returns
// the new size. Shared (template-owned) contents are copied before the
// first write, so writes through a cloned tree never reach the template.
func (n *Node) WriteData(off int64, b []byte) int64 {
	need := off + int64(len(b))
	if need > int64(len(n.data)) || n.shared {
		size := need
		if int64(len(n.data)) > size {
			size = int64(len(n.data))
		}
		nd := make([]byte, size)
		copy(nd, n.data)
		n.data = nd
		n.shared = false
	}
	copy(n.data[off:], b)
	return int64(len(n.data))
}

// Target returns the symlink target.
func (n *Node) Target() string { return n.target }

// Dev returns the device hook for device nodes.
func (n *Node) Dev() Device { return n.dev }

// FileSystem is the interface the kernel mounts: both the plain FS and the
// Cider overlay implement it.
type FileSystem interface {
	// Lookup resolves path (following symlinks) to a node.
	Lookup(p string) (*Node, error)
	// Create makes a new empty regular file; parents must exist.
	Create(p string) (*Node, error)
	// Mkdir creates a directory; the parent must exist.
	Mkdir(p string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(p string) error
	// Remove unlinks a file or empty directory.
	Remove(p string) error
	// ReadDir lists a directory in name order.
	ReadDir(p string) ([]*Node, error)
	// Symlink creates a symbolic link at p pointing to target.
	Symlink(target, p string) error
	// Mknod creates a device node.
	Mknod(p string, dev Device) error
	// Rename moves oldp to newp.
	Rename(oldp, newp string) error
}

// FS is a plain in-memory filesystem tree.
type FS struct {
	root *Node
	// FaultHook, when non-nil, is consulted before Lookup, Create, and
	// Remove with the operation name ("lookup", "create", "remove") and
	// the cleaned path; a non-nil error fails the operation (fault
	// injection: EIO, ENOSPC, latency spikes charged by the hook).
	FaultHook func(op, path string) error
}

// New creates an empty filesystem with a root directory.
func New() *FS {
	return &FS{root: &Node{name: "/", kind: KindDir, children: map[string]*Node{}}}
}

// Clean canonicalizes a path to an absolute, /-separated form.
func Clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// Split returns the parent directory and leaf name of p.
func Split(p string) (dir, leaf string) {
	p = Clean(p)
	return path.Dir(p), path.Base(p)
}

const maxSymlinks = 16

// pathIsClean reports whether p is already in Clean form: absolute, no
// empty, ".", or ".." components, no trailing slash. Such paths can be
// walked by index without Clean/Split allocations.
//
//hot:noalloc
func pathIsClean(p string) bool {
	if len(p) < 2 || p[0] != '/' {
		return false
	}
	start := 1
	for i := 1; i <= len(p); i++ {
		if i < len(p) && p[i] != '/' {
			continue
		}
		seg := p[start:i]
		if len(seg) == 0 || seg == "." || seg == ".." {
			return false
		}
		start = i + 1
	}
	return true
}

// fastWalk resolves an already-clean path through plain directories with no
// allocations: components are substrings of p (a Go map lookup with a
// substring key does not allocate). The moment resolution needs anything
// structural — a symlink, a mount point, or the exact ErrNotDir error text —
// it reports ok=false and the caller retries on the general path. Lookups on
// a booted system are overwhelmingly clean absolute paths to plain files,
// so this is the hot case.
//
//hot:noalloc
func (fs *FS) fastWalk(p string, followLast bool) (n *Node, err error, ok bool) {
	if !pathIsClean(p) {
		return nil, nil, false
	}
	cur := fs.root
	i := 1
	for i <= len(p) {
		j := i
		for j < len(p) && p[j] != '/' {
			j++
		}
		if cur.kind != KindDir {
			return nil, nil, false
		}
		next, found := cur.children[p[i:j]]
		if !found {
			//lint:allow hotalloc: miss path — the error carries the path
			return nil, &ErrNotFound{Path: p}, true
		}
		last := j >= len(p)
		if next.mount != nil || (next.kind == KindSymlink && (followLast || !last)) {
			return nil, nil, false
		}
		cur = next
		i = j + 1
	}
	return cur, nil, true
}

// walk resolves p to a node. If followLast is false, a trailing symlink is
// returned rather than followed (lstat/unlink semantics).
func (fs *FS) walk(p string, followLast bool, depth int) (*Node, error) {
	if depth > maxSymlinks {
		return nil, &ErrLoop{Path: p}
	}
	if n, err, ok := fs.fastWalk(p, followLast); ok {
		return n, err
	}
	p = Clean(p)
	cur := fs.root
	if p == "/" {
		return cur, nil
	}
	parts := strings.Split(p[1:], "/")
	for i, part := range parts {
		if cur.kind != KindDir {
			return nil, &ErrNotDir{Path: strings.Join(parts[:i], "/")}
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, &ErrNotFound{Path: p}
		}
		last := i == len(parts)-1
		// Descend through mount points.
		if next.mount != nil {
			rest := strings.Join(parts[i+1:], "/")
			if rest == "" {
				rest = "/"
			}
			if last && !followLast {
				return next.mount.Lookup("/")
			}
			return next.mount.Lookup(rest)
		}
		if next.kind == KindSymlink && (followLast || !last) {
			tgt := next.target
			if !strings.HasPrefix(tgt, "/") {
				tgt = path.Join("/"+strings.Join(parts[:i], "/"), tgt)
			}
			if !last {
				tgt = path.Join(tgt, strings.Join(parts[i+1:], "/"))
			}
			return fs.walk(tgt, followLast, depth+1)
		}
		cur = next
	}
	return cur, nil
}

// Lookup resolves p, following symlinks.
func (fs *FS) Lookup(p string) (*Node, error) {
	if fs.FaultHook != nil {
		if err := fs.FaultHook("lookup", Clean(p)); err != nil {
			return nil, err
		}
	}
	return fs.walk(p, true, 0)
}

// Lstat resolves p without following a final symlink.
func (fs *FS) Lstat(p string) (*Node, error) {
	return fs.walk(p, false, 0)
}

// parentOf resolves the directory that should contain p's leaf.
func (fs *FS) parentOf(p string) (*Node, string, error) {
	dir, leaf := Split(p)
	if leaf == "/" {
		return nil, "", &ErrExists{Path: "/"}
	}
	d, err := fs.walk(dir, true, 0)
	if err != nil {
		return nil, "", err
	}
	if d.kind != KindDir {
		return nil, "", &ErrNotDir{Path: dir}
	}
	return d, leaf, nil
}

// addChild inserts a new node, failing if the name exists.
func (fs *FS) addChild(p string, n *Node) error {
	d, leaf, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	if _, ok := d.children[leaf]; ok {
		return &ErrExists{Path: Clean(p)}
	}
	n.name = leaf
	d.children[leaf] = n
	return nil
}

// Create makes a new empty regular file.
func (fs *FS) Create(p string) (*Node, error) {
	if fs.FaultHook != nil {
		if err := fs.FaultHook("create", Clean(p)); err != nil {
			return nil, err
		}
	}
	n := &Node{kind: KindFile}
	if err := fs.addChild(p, n); err != nil {
		return nil, err
	}
	return n, nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(p string) error {
	return fs.addChild(p, &Node{kind: KindDir, children: map[string]*Node{}})
}

// MkdirAll creates a directory and all missing parents.
func (fs *FS) MkdirAll(p string) error {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	parts := strings.Split(p[1:], "/")
	cur := "/"
	for _, part := range parts {
		cur = path.Join(cur, part)
		n, err := fs.walk(cur, true, 0)
		if err == nil {
			if !n.IsDir() {
				return &ErrNotDir{Path: cur}
			}
			continue
		}
		if err := fs.Mkdir(cur); err != nil {
			return err
		}
	}
	return nil
}

// Symlink creates a symlink at p to target.
func (fs *FS) Symlink(target, p string) error {
	return fs.addChild(p, &Node{kind: KindSymlink, target: target})
}

// Mknod creates a device node.
func (fs *FS) Mknod(p string, dev Device) error {
	return fs.addChild(p, &Node{kind: KindDevice, dev: dev})
}

// Mount grafts another filesystem at p, which must be an existing directory.
func (fs *FS) Mount(p string, m FileSystem) error {
	n, err := fs.walk(p, true, 0)
	if err != nil {
		return err
	}
	if !n.IsDir() {
		return &ErrNotDir{Path: p}
	}
	n.mount = m
	return nil
}

// Remove unlinks a file, symlink, device, or empty directory.
func (fs *FS) Remove(p string) error {
	if fs.FaultHook != nil {
		if err := fs.FaultHook("remove", Clean(p)); err != nil {
			return err
		}
	}
	d, leaf, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	n, ok := d.children[leaf]
	if !ok {
		return &ErrNotFound{Path: Clean(p)}
	}
	if n.IsDir() && len(n.children) > 0 {
		return &ErrNotEmpty{Path: Clean(p)}
	}
	delete(d.children, leaf)
	return nil
}

// ReadDir lists directory entries in name order.
func (fs *FS) ReadDir(p string) ([]*Node, error) {
	n, err := fs.walk(p, true, 0)
	if err != nil {
		return nil, err
	}
	if n.mount != nil {
		return n.mount.ReadDir("/")
	}
	if !n.IsDir() {
		return nil, &ErrNotDir{Path: Clean(p)}
	}
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

// Rename moves oldp to newp, replacing any existing file at newp.
func (fs *FS) Rename(oldp, newp string) error {
	od, oleaf, err := fs.parentOf(oldp)
	if err != nil {
		return err
	}
	n, ok := od.children[oleaf]
	if !ok {
		return &ErrNotFound{Path: Clean(oldp)}
	}
	nd, nleaf, err := fs.parentOf(newp)
	if err != nil {
		return err
	}
	delete(od.children, oleaf)
	n.name = nleaf
	nd.children[nleaf] = n
	return nil
}

// WriteFile creates (or truncates) the file at p with the given contents,
// creating parent directories as needed.
func (fs *FS) WriteFile(p string, data []byte) error {
	dir, _ := Split(p)
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	n, err := fs.Lookup(p)
	if err != nil {
		n, err = fs.Create(p)
		if err != nil {
			return err
		}
	}
	if n.IsDir() {
		return &ErrIsDir{Path: Clean(p)}
	}
	n.SetData(append([]byte(nil), data...))
	return nil
}

// Freeze marks every file's contents as shared, turning the tree into a
// copy-on-write template: subsequent writes through this FS or any Clone
// copy the data first. Call it once, after building and before the first
// Clone; it is not safe to run concurrently with other operations.
func (fs *FS) Freeze() {
	fs.root.freeze()
}

func (n *Node) freeze() {
	if n.data != nil {
		n.shared = true
	}
	for _, c := range n.children {
		c.freeze()
	}
}

// Clone returns an independent copy of the tree. Node structure (directories,
// names, symlinks) is deep-copied; file contents are shared copy-on-write
// with the source, so cloning a frozen multi-megabyte image costs only the
// directory skeleton. Mount points and the FaultHook are not carried over:
// templates are cloned before mounts and hooks are attached.
func (fs *FS) Clone() *FS {
	return &FS{root: fs.root.clone()}
}

func (n *Node) clone() *Node {
	c := &Node{name: n.name, kind: n.kind, target: n.target, dev: n.dev}
	if n.data != nil {
		c.data = n.data
		// The copy always treats the bytes as shared, even when the source
		// was never frozen: writes through the clone must not reach the
		// source. (Writes through an unfrozen source remain visible to
		// clones — Freeze first.)
		c.shared = true
	}
	if n.children != nil {
		c.children = make(map[string]*Node, len(n.children))
		for name, child := range n.children {
			c.children[name] = child.clone()
		}
	}
	return c
}

// ReadFile returns a copy of the file contents at p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	n, err := fs.Lookup(p)
	if err != nil {
		return nil, err
	}
	if n.IsDir() {
		return nil, &ErrIsDir{Path: Clean(p)}
	}
	return append([]byte(nil), n.Data()...), nil
}
