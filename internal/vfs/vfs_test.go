package vfs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCreateLookup(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/etc"); err != nil {
		t.Fatal(err)
	}
	n, err := fs.Create("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	n.SetData([]byte("root:0"))
	got, err := fs.Lookup("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data()) != "root:0" {
		t.Fatalf("data = %q", got.Data())
	}
	if got.Size() != 6 {
		t.Fatalf("size = %d", got.Size())
	}
}

func TestLookupErrors(t *testing.T) {
	fs := New()
	fs.MkdirAll("/a/b")
	fs.WriteFile("/a/b/f", []byte("x"))
	if _, err := fs.Lookup("/nope"); err == nil {
		t.Fatal("want ErrNotFound")
	}
	if _, err := fs.Lookup("/a/b/f/deeper"); err == nil {
		t.Fatal("want ErrNotDir traversing through file")
	}
	if _, err := fs.Create("/a/b/f"); err == nil {
		t.Fatal("want ErrExists")
	}
}

func TestMkdirAll(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/System/Library/Frameworks"); err != nil {
		t.Fatal(err)
	}
	n, err := fs.Lookup("/System/Library/Frameworks")
	if err != nil || !n.IsDir() {
		t.Fatalf("lookup: %v, n=%v", err, n)
	}
	// Idempotent.
	if err := fs.MkdirAll("/System/Library/Frameworks"); err != nil {
		t.Fatal(err)
	}
	fs.WriteFile("/file", []byte("x"))
	if err := fs.MkdirAll("/file/sub"); err == nil {
		t.Fatal("MkdirAll through a file should fail")
	}
}

func TestWriteReadFile(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/var/mobile/Documents/note.txt", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/var/mobile/Documents/note.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hi" {
		t.Fatalf("got %q", got)
	}
	// Overwrite truncates.
	fs.WriteFile("/var/mobile/Documents/note.txt", []byte("b"))
	got, _ = fs.ReadFile("/var/mobile/Documents/note.txt")
	if string(got) != "b" {
		t.Fatalf("got %q after overwrite", got)
	}
}

func TestWriteDataGrows(t *testing.T) {
	fs := New()
	n, _ := fs.Create("/f")
	if sz := n.WriteData(10, []byte("abc")); sz != 13 {
		t.Fatalf("size = %d, want 13", sz)
	}
	if n.Data()[0] != 0 || string(n.Data()[10:]) != "abc" {
		t.Fatalf("data = %v", n.Data())
	}
	if sz := n.WriteData(0, []byte("Z")); sz != 13 {
		t.Fatalf("size = %d after overwrite, want 13", sz)
	}
}

func TestSymlinks(t *testing.T) {
	fs := New()
	fs.MkdirAll("/data/app")
	fs.WriteFile("/data/app/real.txt", []byte("real"))
	if err := fs.Symlink("/data/app/real.txt", "/link"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/link")
	if err != nil || string(got) != "real" {
		t.Fatalf("via symlink: %q, %v", got, err)
	}
	// Relative symlink.
	fs.Symlink("real.txt", "/data/app/rel")
	got, err = fs.ReadFile("/data/app/rel")
	if err != nil || string(got) != "real" {
		t.Fatalf("via relative symlink: %q, %v", got, err)
	}
	// Lstat does not follow.
	n, err := fs.Lstat("/link")
	if err != nil || n.Kind() != KindSymlink {
		t.Fatalf("lstat: %v %v", n, err)
	}
	if n.Target() != "/data/app/real.txt" {
		t.Fatalf("target = %q", n.Target())
	}
	// Symlink in the middle of a path.
	fs.Symlink("/data/app", "/apps")
	got, err = fs.ReadFile("/apps/real.txt")
	if err != nil || string(got) != "real" {
		t.Fatalf("via dir symlink: %q, %v", got, err)
	}
}

func TestSymlinkLoop(t *testing.T) {
	fs := New()
	fs.Symlink("/b", "/a")
	fs.Symlink("/a", "/b")
	if _, err := fs.Lookup("/a"); err == nil {
		t.Fatal("want ErrLoop")
	}
	if _, ok := func() (any, bool) {
		_, err := fs.Lookup("/a")
		e, ok := err.(*ErrLoop)
		return e, ok
	}(); !ok {
		t.Fatal("error should be *ErrLoop")
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d")
	fs.WriteFile("/d/f", nil)
	if err := fs.Remove("/d"); err == nil {
		t.Fatal("removing non-empty dir should fail")
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err == nil {
		t.Fatal("double remove should fail")
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := New()
	fs.MkdirAll("/dir")
	for _, name := range []string{"zeta", "alpha", "mid"} {
		fs.WriteFile("/dir/"+name, nil)
	}
	ents, err := fs.ReadDir("/dir")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRename(t *testing.T) {
	fs := New()
	fs.WriteFile("/old", []byte("data"))
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("/old"); err == nil {
		t.Fatal("old path still exists")
	}
	got, err := fs.ReadFile("/new")
	if err != nil || string(got) != "data" {
		t.Fatalf("new path: %q %v", got, err)
	}
}

type fakeDev string

func (d fakeDev) DevName() string { return string(d) }

func TestDeviceNodes(t *testing.T) {
	fs := New()
	fs.MkdirAll("/dev")
	if err := fs.Mknod("/dev/fb0", fakeDev("fb0")); err != nil {
		t.Fatal(err)
	}
	n, err := fs.Lookup("/dev/fb0")
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind() != KindDevice || n.Dev().DevName() != "fb0" {
		t.Fatalf("device node wrong: %v", n)
	}
}

func TestMount(t *testing.T) {
	rootfs := New()
	rootfs.MkdirAll("/mnt/ios")
	iosfs := New()
	iosfs.WriteFile("/usr/lib/libSystem.dylib", []byte("MACHO"))
	if err := rootfs.Mount("/mnt/ios", iosfs); err != nil {
		t.Fatal(err)
	}
	got, err := rootfs.ReadFile("/mnt/ios/usr/lib/libSystem.dylib")
	if err != nil || string(got) != "MACHO" {
		t.Fatalf("through mount: %q %v", got, err)
	}
	// Mount root listing.
	ents, err := rootfs.ReadDir("/mnt/ios")
	if err != nil || len(ents) != 1 || ents[0].Name() != "usr" {
		t.Fatalf("mount root listing: %v %v", ents, err)
	}
}

func TestOverlayLookupPrecedence(t *testing.T) {
	lower, upper := New(), New()
	lower.WriteFile("/etc/hosts", []byte("android"))
	lower.WriteFile("/only-lower", []byte("L"))
	upper.WriteFile("/etc/hosts", []byte("ios"))
	upper.WriteFile("/only-upper", []byte("U"))
	o := NewOverlay(upper, lower)
	for p, want := range map[string]string{
		"/etc/hosts": "ios", "/only-lower": "L", "/only-upper": "U",
	} {
		got, err := o.ReadFile(p)
		if err != nil || string(got) != want {
			t.Fatalf("%s = %q (%v), want %q", p, got, err, want)
		}
	}
}

func TestOverlayWritesGoUp(t *testing.T) {
	lower, upper := New(), New()
	lower.MkdirAll("/data")
	o := NewOverlay(upper, lower)
	if _, err := o.Create("/data/new.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := upper.Lookup("/data/new.txt"); err != nil {
		t.Fatal("file should be in upper layer")
	}
	if _, err := lower.Lookup("/data/new.txt"); err == nil {
		t.Fatal("file should not be in lower layer")
	}
}

func TestOverlayReadDirUnion(t *testing.T) {
	lower, upper := New(), New()
	lower.MkdirAll("/usr/lib")
	lower.WriteFile("/usr/lib/libc.so", nil)
	lower.WriteFile("/usr/lib/libm.so", nil)
	upper.MkdirAll("/usr/lib")
	upper.WriteFile("/usr/lib/libSystem.dylib", nil)
	upper.WriteFile("/usr/lib/libc.so", []byte("shadow"))
	o := NewOverlay(upper, lower)
	ents, err := o.ReadDir("/usr/lib")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 {
		t.Fatalf("union has %d entries, want 3", len(ents))
	}
	// The shadowing upper libc.so must win.
	for _, e := range ents {
		if e.Name() == "libc.so" && string(e.Data()) != "shadow" {
			t.Fatal("lower libc.so not shadowed")
		}
	}
}

func TestOverlayRemoveLowerRejected(t *testing.T) {
	lower, upper := New(), New()
	lower.WriteFile("/system/build.prop", nil)
	o := NewOverlay(upper, lower)
	if err := o.Remove("/system/build.prop"); err == nil {
		t.Fatal("removing lower-layer file should fail")
	}
	upper.WriteFile("/tmp/x", nil)
	if err := o.Remove("/tmp/x"); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayRenameCopiesUp(t *testing.T) {
	lower, upper := New(), New()
	lower.WriteFile("/doc.txt", []byte("content"))
	o := NewOverlay(upper, lower)
	if err := o.Rename("/doc.txt", "/renamed.txt"); err != nil {
		t.Fatal(err)
	}
	got, err := o.ReadFile("/renamed.txt")
	if err != nil || string(got) != "content" {
		t.Fatalf("renamed: %q %v", got, err)
	}
}

func TestCleanAndSplit(t *testing.T) {
	if Clean("a/b/../c") != "/a/c" {
		t.Fatalf("Clean = %q", Clean("a/b/../c"))
	}
	d, l := Split("/a/b/c")
	if d != "/a/b" || l != "c" {
		t.Fatalf("Split = %q %q", d, l)
	}
}

func TestPropertyWriteFileRoundTrip(t *testing.T) {
	fs := New()
	f := func(name uint8, data []byte) bool {
		p := "/prop/" + string(rune('a'+name%26))
		if err := fs.WriteFile(p, data); err != nil {
			return false
		}
		got, err := fs.ReadFile(p)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
