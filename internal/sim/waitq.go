package sim

import "time"

// WaitQueue is a FIFO queue of parked Procs, the building block for kernel
// sleep/wakeup (pipes, sockets, Mach ports, futex-style sync).
type WaitQueue struct {
	name    string
	waiters []*Proc
}

// NewWaitQueue creates a wait queue with a diagnostic name.
func NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{name: name}
}

// Name returns the queue's diagnostic name.
func (q *WaitQueue) Name() string { return q.name }

// Len reports the number of parked waiters.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait parks p on the queue until woken. It returns the waker's tag
// (WakeNormal or WakeInterrupted).
func (q *WaitQueue) Wait(p *Proc) int {
	q.waiters = append(q.waiters, p)
	tag := p.Park("waitq:" + q.name)
	// On wakeup we may have been removed by the waker; if we were
	// interrupted from outside the queue, remove ourselves.
	q.remove(p)
	return tag
}

// WaitTimeout parks p until woken or until d elapses. It returns the wake
// tag and whether the wait timed out.
func (q *WaitQueue) WaitTimeout(p *Proc, d time.Duration) (tag int, timedOut bool) {
	q.waiters = append(q.waiters, p)
	tag = p.Sleep(d)
	stillQueued := q.remove(p)
	// If we are still on the queue after Sleep returned WakeNormal, the
	// timer fired before any waker found us.
	return tag, stillQueued && tag == WakeNormal
}

// Enqueue registers p as a waiter without parking; used with Dequeue to
// wait on several queues at once (select/poll). The caller parks itself
// after enqueuing on every queue and dequeues from all of them on wakeup.
func (q *WaitQueue) Enqueue(p *Proc) {
	q.waiters = append(q.waiters, p)
}

// Dequeue removes p from the waiter list, reporting whether it was present.
func (q *WaitQueue) Dequeue(p *Proc) bool {
	return q.remove(p)
}

// remove deletes p from the waiter list, reporting whether it was present.
func (q *WaitQueue) remove(p *Proc) bool {
	for i, w := range q.waiters {
		if w == p {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// WakeOne wakes the longest-waiting Proc, returning it, or nil if the queue
// was empty. waker must be the running Proc.
func (q *WaitQueue) WakeOne(waker *Proc, tag int) *Proc {
	for len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		if waker.Wake(p, tag) {
			return p
		}
	}
	return nil
}

// WakeAll wakes every parked waiter, returning how many were woken.
func (q *WaitQueue) WakeAll(waker *Proc, tag int) int {
	n := 0
	for q.WakeOne(waker, tag) != nil {
		n++
	}
	return n
}
