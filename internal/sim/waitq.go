package sim

import "time"

// waitNode is one queue entry. Entries live on an intrusive doubly-linked
// list (FIFO order) and, when the same Proc is enqueued more than once —
// select polls both directions of a socket pair, whose ends share queues —
// the occurrences for that Proc chain through nextSame, oldest first.
type waitNode struct {
	p          *Proc
	prev, next *waitNode
	// nextSame links to the same Proc's next-younger entry on this queue.
	nextSame *waitNode
}

// WaitQueue is a FIFO queue of parked Procs, the building block for kernel
// sleep/wakeup (pipes, sockets, Mach ports, futex-style sync).
//
// All operations are O(1): the linked list gives O(1) head pop and, with
// the oldest map locating a Proc's first entry, O(1) removal from the
// middle — the old slice implementation scanned O(n) waiters on every
// dequeue, which select-heavy workloads (one dequeue per polled file per
// wakeup) turned into O(n²).
type WaitQueue struct {
	name string
	// reason is the precomputed Park reason, so Wait does not concatenate
	// (and allocate) "waitq:"+name on every call.
	reason     string
	head, tail *waitNode
	size       int
	// oldest maps a waiting Proc to its oldest entry; younger duplicates
	// hang off that entry's nextSame chain. Lazily allocated: many queues
	// (one per pipe end, port, fence) never see a waiter.
	oldest map[*Proc]*waitNode
	// free recycles nodes through their next field.
	free *waitNode
	// decCands is wakeOneDecided's candidate scratch (reused, no
	// per-wake allocation; only ever grows under a Decider).
	decCands []*waitNode
}

// NewWaitQueue creates a wait queue with a diagnostic name.
func NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{name: name, reason: "waitq:" + name}
}

// Name returns the queue's diagnostic name.
func (q *WaitQueue) Name() string { return q.name }

// Len reports the number of queue entries (a Proc enqueued twice counts
// twice, matching the old slice length).
func (q *WaitQueue) Len() int { return q.size }

//hot:noalloc
func (q *WaitQueue) newNode(p *Proc) *waitNode {
	n := q.free
	if n != nil {
		q.free = n.next
		n.next = nil
	} else {
		//lint:allow hotalloc: freelist miss — each node is allocated once and recycled forever after
		n = &waitNode{}
	}
	n.p = p
	return n
}

//hot:noalloc
func (q *WaitQueue) freeNode(n *waitNode) {
	n.p = nil
	n.prev = nil
	n.nextSame = nil
	n.next = q.free
	q.free = n
}

// enqueue appends p at the tail and registers the entry in the oldest map
// or, for a duplicate, at the end of p's nextSame chain (chains are as
// short as the select fan-out, so the walk is effectively constant).
//
//hot:noalloc
func (q *WaitQueue) enqueue(p *Proc) {
	n := q.newNode(p)
	if q.tail == nil {
		q.head = n
	} else {
		q.tail.next = n
		n.prev = q.tail
	}
	q.tail = n
	q.size++
	if q.oldest == nil {
		//lint:allow hotalloc: one-time lazy map — most queues never see a waiter
		q.oldest = make(map[*Proc]*waitNode)
	}
	if old, ok := q.oldest[p]; ok {
		for old.nextSame != nil {
			old = old.nextSame
		}
		old.nextSame = n
	} else {
		q.oldest[p] = n
	}
}

// unlink detaches n from the FIFO list (not from the oldest map).
//
//hot:noalloc
func (q *WaitQueue) unlink(n *waitNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail = n.prev
	}
	q.size--
}

// removeOldest deletes p's oldest entry, reporting whether one existed.
// This matches the old remove's first-occurrence semantics: the oldest
// entry is always the earliest of p's entries in FIFO order.
//
//hot:noalloc
func (q *WaitQueue) removeOldest(p *Proc) bool {
	n, ok := q.oldest[p]
	if !ok {
		return false
	}
	q.unlink(n)
	if n.nextSame != nil {
		q.oldest[p] = n.nextSame
	} else {
		delete(q.oldest, p)
	}
	q.freeNode(n)
	return true
}

// Wait parks p on the queue until woken. It returns the waker's tag
// (WakeNormal or WakeInterrupted).
//
//hot:noalloc
func (q *WaitQueue) Wait(p *Proc) int {
	q.enqueue(p)
	tag := p.Park(q.reason)
	// On wakeup we may have been removed by the waker; if we were
	// interrupted from outside the queue, remove ourselves.
	q.removeOldest(p)
	return tag
}

// WaitTimeout parks p until woken or until d elapses. It returns the wake
// tag and whether the wait timed out.
//
//hot:noalloc
func (q *WaitQueue) WaitTimeout(p *Proc, d time.Duration) (tag int, timedOut bool) {
	q.enqueue(p)
	tag = p.Sleep(d)
	stillQueued := q.removeOldest(p)
	// If we are still on the queue after Sleep returned WakeNormal, the
	// timer fired before any waker found us.
	return tag, stillQueued && tag == WakeNormal
}

// Enqueue registers p as a waiter without parking; used with Dequeue to
// wait on several queues at once (select/poll). The caller parks itself
// after enqueuing on every queue and dequeues from all of them on wakeup.
//
//hot:noalloc
func (q *WaitQueue) Enqueue(p *Proc) {
	q.enqueue(p)
}

// Dequeue removes p's oldest entry, reporting whether it was present.
//
//hot:noalloc
func (q *WaitQueue) Dequeue(p *Proc) bool {
	return q.removeOldest(p)
}

// WakeOne wakes the longest-waiting Proc, returning it, or nil if the queue
// was empty. Entries whose Proc is no longer wakeable (already woken
// through another queue) are discarded in passing, exactly as the slice
// version popped them. waker must be the running Proc.
//
//hot:noalloc
func (q *WaitQueue) WakeOne(waker *Proc, tag int) *Proc {
	if d := waker.sim.decider; d != nil && q.size > 1 {
		return q.wakeOneDecided(waker, tag, d)
	}
	for q.head != nil {
		n := q.head
		p := n.p
		// The head is necessarily p's oldest entry: oldest-map targets
		// appear in FIFO order before their nextSame successors.
		q.unlink(n)
		if n.nextSame != nil {
			q.oldest[p] = n.nextSame
		} else {
			delete(q.oldest, p)
		}
		q.freeNode(n)
		if waker.Wake(p, tag) {
			return p
		}
	}
	return nil
}

// wakeOneDecided is WakeOne with the wake order handed to the Decider:
// the distinct waiting Procs are enumerated oldest-first (a Proc
// enqueued more than once is one candidate, via its oldest entry) and
// the Decider picks which to wake. Unwakeable picks are discarded and
// the choice re-made among the remainder, so a WakeAll expressed as
// repeated WakeOne calls still enumerates every wake permutation.
//
//hot:noalloc
func (q *WaitQueue) wakeOneDecided(waker *Proc, tag int, d Decider) *Proc {
	for q.head != nil {
		q.decCands = q.decCands[:0]
		for n := q.head; n != nil; n = n.next {
			if q.oldest[n.p] == n {
				q.decCands = append(q.decCands, n)
			}
		}
		idx := 0
		if len(q.decCands) > 1 {
			idx = d.Decide(DecisionWake, q.name, len(q.decCands), waker.now)
			if idx < 0 || idx >= len(q.decCands) {
				idx = len(q.decCands) - 1
			}
		}
		n := q.decCands[idx]
		p := n.p
		q.unlink(n)
		if n.nextSame != nil {
			q.oldest[p] = n.nextSame
		} else {
			delete(q.oldest, p)
		}
		q.freeNode(n)
		if waker.Wake(p, tag) {
			return p
		}
	}
	return nil
}

// WakeAll wakes every parked waiter, returning how many were woken.
//
//hot:noalloc
func (q *WaitQueue) WakeAll(waker *Proc, tag int) int {
	n := 0
	for q.WakeOne(waker, tag) != nil {
		n++
	}
	return n
}
