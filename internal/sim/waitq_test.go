package sim

import (
	"testing"
	"time"
)

// TestWaitQueueFIFOOrder pins the wake order contract: WakeOne always wakes
// the longest-waiting Proc. This is the regression test for the O(1)
// linked-list rewrite of the old slice scan.
func TestWaitQueueFIFOOrder(t *testing.T) {
	s := New()
	q := NewWaitQueue("fifo")
	var order []string
	const waiters = 8
	names := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	for i := 0; i < waiters; i++ {
		name := names[i]
		delay := time.Duration(i) * time.Microsecond
		s.Spawn(name, func(p *Proc) {
			// Stagger arrival so enqueue order is deterministic.
			p.Advance(delay)
			q.Wait(p)
			order = append(order, name)
		})
	}
	s.Spawn("waker", func(p *Proc) {
		p.Advance(time.Millisecond)
		if q.Len() != waiters {
			t.Errorf("Len = %d before wakes, want %d", q.Len(), waiters)
		}
		for q.Len() > 0 {
			p.Advance(time.Microsecond)
			if q.WakeOne(p, WakeNormal) == nil {
				t.Fatalf("WakeOne returned nil with Len=%d", q.Len())
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	if len(order) != len(want) {
		t.Fatalf("woke %d waiters, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

// TestWaitQueueMidRemoval verifies that removing a middle waiter (the
// timeout path) preserves FIFO order among the remaining waiters — the
// exact shape the old O(n) scan handled and the linked list must too.
func TestWaitQueueMidRemoval(t *testing.T) {
	s := New()
	q := NewWaitQueue("midrm")
	var order []string
	for i, name := range []string{"a", "b", "c", "d"} {
		name := name
		delay := time.Duration(i) * time.Microsecond
		s.Spawn(name, func(p *Proc) {
			p.Advance(delay)
			if name == "b" || name == "c" {
				// These time out at 10us, long before the waker runs.
				tag, timedOut := q.WaitTimeout(p, 10*time.Microsecond)
				if !timedOut || tag != WakeNormal {
					t.Errorf("%s: tag=%d timedOut=%v, want timeout", name, tag, timedOut)
				}
				return
			}
			q.Wait(p)
			order = append(order, name)
		})
	}
	s.Spawn("waker", func(p *Proc) {
		p.Advance(time.Millisecond)
		if q.Len() != 2 {
			t.Errorf("Len = %d after timeouts, want 2", q.Len())
		}
		for q.WakeOne(p, WakeNormal) != nil {
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "d" {
		t.Fatalf("wake order = %v, want [a d]", order)
	}
}

// TestWaitQueueDuplicateEntries covers a Proc enqueued twice on the same
// queue — select polling both directions of a socketpair end lands here,
// because read- and write-side poll registration can share a queue. Len
// must count both entries, Dequeue must remove the oldest first, and a
// fully dequeued Proc must not linger.
func TestWaitQueueDuplicateEntries(t *testing.T) {
	s := New()
	q := NewWaitQueue("dup")
	s.Spawn("selector", func(p *Proc) {
		q.Enqueue(p)
		q.Enqueue(p)
		if q.Len() != 2 {
			t.Errorf("Len = %d after double enqueue, want 2", q.Len())
		}
		if !q.Dequeue(p) {
			t.Error("first Dequeue returned false")
		}
		if q.Len() != 1 {
			t.Errorf("Len = %d after first dequeue, want 1", q.Len())
		}
		if !q.Dequeue(p) {
			t.Error("second Dequeue returned false")
		}
		if q.Dequeue(p) {
			t.Error("third Dequeue returned true on empty queue")
		}
		if q.Len() != 0 {
			t.Errorf("Len = %d after full dequeue, want 0", q.Len())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWaitQueueDuplicateWake checks WakeOne against duplicate entries: the
// first wake consumes the Proc's oldest entry and wakes it; the leftover
// younger entry is stale and must be skipped (not double-woken) by the
// next WakeOne, matching the slice implementation's pop-and-retry loop.
func TestWaitQueueDuplicateWake(t *testing.T) {
	s := New()
	q := NewWaitQueue("dupwake")
	var selWakes, tailWakes int
	var sel, tail *Proc
	sel = s.Spawn("selector", func(p *Proc) {
		q.Enqueue(p)
		q.Enqueue(p) // duplicate: two poll registrations, one park
		p.Park("select")
		selWakes++
		// Wakeup: dequeue remaining registrations like kernel select does.
		q.Dequeue(p)
		q.Dequeue(p)
	})
	tail = s.Spawn("tail", func(p *Proc) {
		p.Advance(time.Microsecond)
		q.Enqueue(p)
		p.Park("tail-wait")
		tailWakes++
		q.Dequeue(p)
	})
	s.Spawn("waker", func(p *Proc) {
		p.Advance(time.Millisecond)
		if got := q.WakeOne(p, WakeNormal); got != sel {
			t.Errorf("first WakeOne = %v, want selector", got)
		}
		// selector's stale duplicate is still queued ahead of tail; the
		// next wake must skip it (selector is runnable, not wakeable) and
		// reach tail.
		if got := q.WakeOne(p, WakeNormal); got != tail {
			t.Errorf("second WakeOne = %v, want tail", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if selWakes != 1 || tailWakes != 1 {
		t.Fatalf("selWakes=%d tailWakes=%d, want 1 and 1", selWakes, tailWakes)
	}
}
