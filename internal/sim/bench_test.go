package sim

import (
	"testing"
	"time"
)

// BenchmarkPingPongHandoff measures the raw cost of one simulated context
// switch: two Procs bouncing park/wake, so every round trip is two full
// run-token handoffs. This is the hot path every kernel sleep/wakeup
// (pipes, Mach IPC, select) pays.
func BenchmarkPingPongHandoff(b *testing.B) {
	b.ReportAllocs()
	const hop = time.Microsecond
	for i := 0; i < b.N; i++ {
		s := New()
		var pa, pb *Proc
		const rounds = 1000
		pa = s.Spawn("a", func(p *Proc) {
			for j := 0; j < rounds; j++ {
				p.Advance(hop)
				p.Wake(pb, WakeNormal)
				p.Park("pong")
			}
			p.Wake(pb, WakeInterrupted)
		})
		pb = s.Spawn("b", func(p *Proc) {
			for {
				if p.Park("ping") == WakeInterrupted {
					return
				}
				p.Advance(hop)
				p.Wake(pa, WakeNormal)
			}
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdvanceSoleRunnable measures Advance when the running Proc is
// the only runnable one — the same-proc fast path a single-threaded
// benchmark driver hits on every compute charge.
func BenchmarkAdvanceSoleRunnable(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		s.Spawn("solo", func(p *Proc) {
			for j := 0; j < 1000; j++ {
				p.Advance(time.Microsecond)
			}
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdvanceTwoRunnable measures Advance with a second runnable Proc
// at an equal-or-later clock: the case where the old scheduler bounced
// through a full handoff even though the running Proc stayed the min.
func BenchmarkAdvanceTwoRunnable(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		s.Spawn("lead", func(p *Proc) {
			for j := 0; j < 1000; j++ {
				p.Advance(time.Microsecond)
			}
		})
		s.Spawn("tail", func(p *Proc) {
			p.Advance(100 * time.Millisecond)
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaitQueueChurn measures enqueue/remove churn on one queue with
// many waiters — the select/poll shape where a Proc enqueues on N queues
// and every wake removes it from all of them.
func BenchmarkWaitQueueChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		q := NewWaitQueue("churn")
		const waiters = 64
		for w := 0; w < waiters; w++ {
			s.Spawn("w", func(p *Proc) {
				q.Wait(p)
			})
		}
		s.Spawn("waker", func(p *Proc) {
			p.Advance(time.Millisecond)
			// Wake in reverse-ish order via Dequeue+Wake of the newest
			// waiter: the worst case for the O(n) slice scan.
			for q.Len() > 0 {
				q.WakeOne(p, WakeNormal)
			}
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimerWheel measures the sleep structure on its dominant
// operation mix: arm a timeout, cancel it before expiry (the pipe/IPC/select
// shape where the wake almost always beats the timer), occasionally letting
// one expire. BenchmarkSleepHeap runs the identical mix against the old
// binary heap for comparison.
func BenchmarkTimerWheel(b *testing.B) {
	b.ReportAllocs()
	procs := makeBenchSleepers(64)
	w := newTimerWheel()
	for i, p := range procs {
		p.wakeAt = time.Duration(i+1) * time.Microsecond
		w.push(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var p *Proc
		if i%16 == 15 {
			p = w.popMin() // timer actually expires
		} else {
			// Wake beats the timer: cancel an arbitrary sleeper + re-arm.
			// (Mixed pick, not FIFO — waking in exact arm order would make
			// every cancel hit the min, which no real wake pattern does.)
			p = procs[(uint64(i)*0x9e3779b97f4a7c15>>32)%uint64(len(procs))]
			w.remove(p)
		}
		p.wakeAt = w.floor + time.Duration(1+(i%1000))*time.Microsecond
		w.push(p)
	}
}

func BenchmarkSleepHeap(b *testing.B) {
	b.ReportAllocs()
	procs := makeBenchSleepers(64)
	h := &procHeap{bySleep: true}
	for i, p := range procs {
		p.wakeAt = time.Duration(i+1) * time.Microsecond
		h.push(p)
	}
	var floor time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var p *Proc
		if i%16 == 15 {
			p = h.pop()
			floor = p.wakeAt
		} else {
			p = procs[(uint64(i)*0x9e3779b97f4a7c15>>32)%uint64(len(procs))]
			h.remove(p)
		}
		p.wakeAt = floor + time.Duration(1+(i%1000))*time.Microsecond
		h.push(p)
	}
}

func makeBenchSleepers(n int) []*Proc {
	procs := make([]*Proc, n)
	for i := range procs {
		procs[i] = &Proc{id: i, heapIndex: -1, twLevel: -1}
	}
	return procs
}
