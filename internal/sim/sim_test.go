package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSingleProcAdvance(t *testing.T) {
	s := New()
	var end time.Duration
	s.Spawn("a", func(p *Proc) {
		p.Advance(5 * time.Millisecond)
		p.Advance(3 * time.Millisecond)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 8*time.Millisecond {
		t.Fatalf("end = %v, want 8ms", end)
	}
}

func TestParallelClocksIndependent(t *testing.T) {
	// Two procs each charging 1ms finish at t=1ms (unlimited cores).
	s := New()
	var ta, tb time.Duration
	s.Spawn("a", func(p *Proc) { p.Advance(time.Millisecond); ta = p.Now() })
	s.Spawn("b", func(p *Proc) { p.Advance(time.Millisecond); tb = p.Now() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ta != time.Millisecond || tb != time.Millisecond {
		t.Fatalf("ta=%v tb=%v, want 1ms each", ta, tb)
	}
}

func TestVirtualTimeOrdering(t *testing.T) {
	// Events must be observed in virtual-time order across procs.
	s := New()
	var order []string
	s.Spawn("slow", func(p *Proc) {
		p.Advance(10 * time.Millisecond)
		order = append(order, "slow")
	})
	s.Spawn("fast", func(p *Proc) {
		p.Advance(1 * time.Millisecond)
		order = append(order, "fast")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "fast" || order[1] != "slow" {
		t.Fatalf("order = %v, want [fast slow]", order)
	}
}

func TestSleepWake(t *testing.T) {
	s := New()
	var wakeTime time.Duration
	s.Spawn("sleeper", func(p *Proc) {
		tag := p.Sleep(7 * time.Millisecond)
		if tag != WakeNormal {
			t.Errorf("tag = %d, want WakeNormal", tag)
		}
		wakeTime = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeTime != 7*time.Millisecond {
		t.Fatalf("wakeTime = %v, want 7ms", wakeTime)
	}
}

func TestParkAndWakePropagatesClock(t *testing.T) {
	s := New()
	var sleeperTime time.Duration
	var sleeper *Proc
	sleeper = s.Spawn("sleeper", func(p *Proc) {
		tag := p.Park("test")
		if tag != 42 {
			t.Errorf("tag = %d, want 42", tag)
		}
		sleeperTime = p.Now()
	})
	s.Spawn("waker", func(p *Proc) {
		p.Advance(20 * time.Millisecond)
		if !p.Wake(sleeper, 42) {
			t.Error("Wake returned false")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sleeperTime != 20*time.Millisecond {
		t.Fatalf("sleeperTime = %v, want 20ms (waker's clock)", sleeperTime)
	}
}

func TestWakeDoesNotRewindClock(t *testing.T) {
	s := New()
	var got time.Duration
	var sleeper *Proc
	sleeper = s.Spawn("sleeper", func(p *Proc) {
		p.Advance(50 * time.Millisecond)
		p.Park("test")
		got = p.Now()
	})
	s.Spawn("waker", func(p *Proc) {
		p.Advance(60 * time.Millisecond) // ensure sleeper is parked by now
		p.Wake(sleeper, 0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 60*time.Millisecond {
		t.Fatalf("got = %v, want 60ms", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	s.Spawn("stuck", func(p *Proc) { p.Park("forever") })
	err := s.Run()
	dl, ok := err.(*ErrDeadlock)
	if !ok {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if len(dl.Parked) != 1 {
		t.Fatalf("parked = %v, want 1 entry", dl.Parked)
	}
}

func TestSpawnInheritsClock(t *testing.T) {
	s := New()
	var childStart time.Duration
	s.Spawn("parent", func(p *Proc) {
		p.Advance(4 * time.Millisecond)
		p.Sim().Spawn("child", func(c *Proc) {
			childStart = c.Now()
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childStart != 4*time.Millisecond {
		t.Fatalf("childStart = %v, want 4ms", childStart)
	}
}

func TestExitUnwindsAndRunsOnExit(t *testing.T) {
	s := New()
	ran := false
	reached := false
	s.Spawn("a", func(p *Proc) {
		p.OnExit(func(*Proc) { ran = true })
		p.Exit()
		reached = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("OnExit callback did not run")
	}
	if reached {
		t.Error("code after Exit ran")
	}
}

func TestOnExitOrder(t *testing.T) {
	s := New()
	var order []int
	s.Spawn("a", func(p *Proc) {
		p.OnExit(func(*Proc) { order = append(order, 1) })
		p.OnExit(func(*Proc) { order = append(order, 2) })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1] (reverse registration)", order)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	s := New()
	s.Spawn("bad", func(p *Proc) { panic("boom") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate out of Run")
		}
	}()
	s.Run()
}

func TestWaitQueueFIFO(t *testing.T) {
	s := New()
	q := NewWaitQueue("test")
	var order []string
	mk := func(name string, delay time.Duration) {
		s.Spawn(name, func(p *Proc) {
			p.Advance(delay)
			q.Wait(p)
			order = append(order, name)
		})
	}
	mk("first", 1*time.Millisecond)
	mk("second", 2*time.Millisecond)
	s.Spawn("waker", func(p *Proc) {
		p.Advance(10 * time.Millisecond)
		q.WakeOne(p, WakeNormal)
		p.Advance(time.Millisecond)
		q.WakeOne(p, WakeNormal)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v, want [first second]", order)
	}
}

func TestWaitQueueTimeout(t *testing.T) {
	s := New()
	q := NewWaitQueue("test")
	var timedOut bool
	s.Spawn("waiter", func(p *Proc) {
		_, timedOut = q.WaitTimeout(p, 5*time.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("expected timeout")
	}
	if q.Len() != 0 {
		t.Fatalf("queue still has %d waiters", q.Len())
	}
}

func TestWaitQueueWakeBeforeTimeout(t *testing.T) {
	s := New()
	q := NewWaitQueue("test")
	var timedOut bool
	var wokenAt time.Duration
	s.Spawn("waiter", func(p *Proc) {
		_, timedOut = q.WaitTimeout(p, 100*time.Millisecond)
		wokenAt = p.Now()
	})
	s.Spawn("waker", func(p *Proc) {
		p.Advance(3 * time.Millisecond)
		q.WakeOne(p, WakeNormal)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("should not have timed out")
	}
	if wokenAt != 3*time.Millisecond {
		t.Fatalf("wokenAt = %v, want 3ms", wokenAt)
	}
}

func TestWakeAll(t *testing.T) {
	s := New()
	q := NewWaitQueue("test")
	woken := 0
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	s.Spawn("waker", func(p *Proc) {
		p.Advance(time.Millisecond)
		if n := q.WakeAll(p, WakeNormal); n != 5 {
			t.Errorf("WakeAll = %d, want 5", n)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	// The same program must produce the same event trace every run.
	runOnce := func() []string {
		s := New()
		var trace []string
		for i := 0; i < 4; i++ {
			name := string(rune('a' + i))
			n := i
			s.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Advance(time.Duration(n+1) * time.Millisecond)
					trace = append(trace, name)
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	first := runOnce()
	for i := 0; i < 5; i++ {
		got := runOnce()
		if len(got) != len(first) {
			t.Fatalf("trace length changed: %d vs %d", len(got), len(first))
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d diverged at %d: %v vs %v", i, j, got, first)
			}
		}
	}
}

func TestPingPongLatency(t *testing.T) {
	// Two procs bouncing wakeups model pipe latency: total time must be the
	// sum of per-hop costs.
	s := New()
	const hop = 10 * time.Microsecond
	const rounds = 100
	var a, b *Proc
	var final time.Duration
	a = s.Spawn("a", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Advance(hop)
			p.Wake(b, WakeNormal)
			p.Park("pong")
		}
		final = p.Now()
		p.Wake(b, WakeInterrupted)
	})
	b = s.Spawn("b", func(p *Proc) {
		for {
			if p.Park("ping") == WakeInterrupted {
				return
			}
			p.Advance(hop)
			p.Wake(a, WakeNormal)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(2*rounds) * hop
	if final != want {
		t.Fatalf("final = %v, want %v", final, want)
	}
}

func TestDeadlockReport(t *testing.T) {
	s := New()
	s.Spawn("app", func(p *Proc) {
		p.Advance(3 * time.Millisecond)
		p.Park("waitq:port:5")
	})
	s.Spawn("worker", func(p *Proc) {
		p.Advance(7 * time.Millisecond)
		p.Park("waitq:sema:2")
	})
	s.Spawn("syslogd", func(p *Proc) {
		p.SetDaemon(true)
		p.Park("waitq:port:9")
	})
	err := s.Run()
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// Error() keeps its compact shape and excludes parked daemons.
	if dl.Error() != "sim: deadlock with 2 parked procs: [app(waitq:port:5) worker(waitq:sema:2)]" {
		t.Fatalf("Error() = %q", dl.Error())
	}
	// The snapshot covers every parked proc, daemons included, in id order.
	if len(dl.Procs) != 3 {
		t.Fatalf("Procs = %+v, want 3 entries", dl.Procs)
	}
	want := []ParkedProc{
		{Name: "app", ID: 0, Reason: "waitq:port:5", At: 3 * time.Millisecond},
		{Name: "worker", ID: 1, Reason: "waitq:sema:2", At: 7 * time.Millisecond},
		{Name: "syslogd", ID: 2, Reason: "waitq:port:9", At: 0, Daemon: true},
	}
	for i, w := range want {
		if dl.Procs[i] != w {
			t.Fatalf("Procs[%d] = %+v, want %+v", i, dl.Procs[i], w)
		}
	}
	report := dl.Report()
	for _, line := range []string{
		"sim: deadlock: 2 proc(s) parked with no possible waker\n",
		"  proc 0 \"app\" parked at 3ms waiting on waitq:port:5\n",
		"  proc 1 \"worker\" parked at 7ms waiting on waitq:sema:2\n",
		"  proc 2 \"syslogd\" [daemon] parked at 0s waiting on waitq:port:9\n",
	} {
		if !strings.Contains(report, line) {
			t.Fatalf("Report() = %q, missing %q", report, line)
		}
	}
}
