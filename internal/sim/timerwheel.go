package sim

import "time"

// timerWheel holds sleeping Procs keyed on their virtual wakeup deadline.
//
// It replaces the old sleepers binary heap on the scheduler's hottest
// bookkeeping path. A sleep is usually cancelled (Wake) before it expires —
// pipes, ports, and select all arm timeouts they rarely consume — so the
// structure is optimized for O(1) insert and O(1) cancel: a hierarchy of
// slot arrays indexed by wakeup-time bits, each slot an intrusive
// doubly-linked list threaded through the Procs themselves (no per-entry
// allocation, the WaitQueue freelist idea taken one step further).
//
// Levels are non-cascading: an entry stays in the slot its deadline hashed
// to at insert time, and slots may therefore mix entries from different
// wheel rotations. Correctness never depends on slot assignment because
// the minimum is tracked explicitly: a cached min pointer, re-derived by
// scanning the occupied slots (per-level occupancy bitmaps make the scan
// proportional to live entries) whenever the current minimum leaves. The
// scheduler's (wakeAt, id) tie-break order is preserved exactly — the
// determinism tests pin wheel-vs-heap wake-order equivalence.
//
// The floor (the last dispatched deadline) only grows: the discrete-event
// invariant guarantees every push happens from a Proc whose clock is at or
// past the last popped deadline, so deltas against the floor are
// non-negative and level selection is stable.
type timerWheel struct {
	slots [wheelLevels][wheelSlots]*Proc
	// occ marks non-empty slots, one bit per slot, per level.
	occ [wheelLevels]uint64
	// overflow collects deadlines beyond the outermost level's horizon
	// (~1 virtual second out); entries there are scanned like any slot.
	overflow *Proc
	// min caches the (wakeAt, id)-smallest entry; nil when empty.
	min *Proc
	// floor is the largest deadline ever dispatched (monotonic).
	floor time.Duration
	size  int
}

const (
	wheelLevels   = 3
	wheelSlots    = 64
	wheelSlotMask = wheelSlots - 1
	// wheelShift0 sets the innermost granularity: 1<<12 ns ≈ 4.1 µs per
	// slot, so level 0 spans ~262 µs, level 1 ~16.8 ms, level 2 ~1.07 s.
	wheelShift0    = 12
	wheelShiftStep = 6
	// wheelOverflow is the pseudo-level stored in Proc.twLevel for entries
	// on the overflow list; -1 means "not queued".
	wheelOverflow = wheelLevels
)

func newTimerWheel() *timerWheel {
	return &timerWheel{}
}

func (w *timerWheel) Len() int { return w.size }

// wheelLess is the scheduler's sleep order: (wakeAt, id).
//
//hot:noalloc
func wheelLess(a, b *Proc) bool {
	if a.wakeAt != b.wakeAt {
		return a.wakeAt < b.wakeAt
	}
	return a.id < b.id
}

// push inserts p, keyed on p.wakeAt. O(1).
//
//hot:noalloc
func (w *timerWheel) push(p *Proc) {
	d := p.wakeAt - w.floor
	if d < 0 {
		// Defensive: a deadline at or before the floor belongs in the
		// innermost level; the min scan still orders it correctly.
		d = 0
	}
	level := 0
	shift := uint(wheelShift0)
	for level < wheelLevels && d>>shift >= wheelSlots {
		level++
		shift += wheelShiftStep
	}
	if level == wheelLevels {
		p.twLevel = wheelOverflow
		p.twSlot = 0
		p.twPrev = nil
		p.twNext = w.overflow
		if w.overflow != nil {
			w.overflow.twPrev = p
		}
		w.overflow = p
	} else {
		slot := int(uint64(p.wakeAt)>>shift) & wheelSlotMask
		p.twLevel = int8(level)
		p.twSlot = int8(slot)
		p.twPrev = nil
		p.twNext = w.slots[level][slot]
		if p.twNext != nil {
			p.twNext.twPrev = p
		}
		w.slots[level][slot] = p
		w.occ[level] |= 1 << uint(slot)
	}
	w.size++
	if w.min == nil || wheelLess(p, w.min) {
		w.min = p
	}
}

// remove cancels p's pending wakeup. O(1) unless p is the cached minimum,
// in which case the next minimum is re-derived by scanning live entries.
//
//hot:noalloc
func (w *timerWheel) remove(p *Proc) {
	if p.twLevel < 0 {
		return
	}
	if p.twPrev != nil {
		p.twPrev.twNext = p.twNext
	} else if p.twLevel == wheelOverflow {
		w.overflow = p.twNext
	} else {
		w.slots[p.twLevel][p.twSlot] = p.twNext
		if p.twNext == nil {
			w.occ[p.twLevel] &^= 1 << uint(p.twSlot)
		}
	}
	if p.twNext != nil {
		p.twNext.twPrev = p.twPrev
	}
	p.twNext = nil
	p.twPrev = nil
	p.twLevel = -1
	w.size--
	if w.min == p {
		w.rescanMin()
	}
}

// peek returns the (wakeAt, id)-smallest sleeping Proc, or nil.
//
//hot:noalloc
func (w *timerWheel) peek() *Proc {
	return w.min
}

// popMin removes and returns the smallest entry, advancing the floor.
//
//hot:noalloc
func (w *timerWheel) popMin() *Proc {
	p := w.min
	if p == nil {
		return nil
	}
	if p.wakeAt > w.floor {
		w.floor = p.wakeAt
	}
	w.remove(p)
	return p
}

// rescanMin re-derives the cached minimum by walking every occupied slot.
// Cost is proportional to the number of sleeping Procs (small: bounded by
// live threads), and it only runs when the minimum itself leaves the wheel
// — cancels of non-minimal timers, the common case, never pay it.
//
//hot:noalloc
func (w *timerWheel) rescanMin() {
	var best *Proc
	for level := 0; level < wheelLevels; level++ {
		occ := w.occ[level]
		for occ != 0 {
			slot := trailingZeros64(occ)
			occ &= occ - 1
			for p := w.slots[level][slot]; p != nil; p = p.twNext {
				if best == nil || wheelLess(p, best) {
					best = p
				}
			}
		}
	}
	for p := w.overflow; p != nil; p = p.twNext {
		if best == nil || wheelLess(p, best) {
			best = p
		}
	}
	w.min = best
}

// trailingZeros64 is math/bits.TrailingZeros64, inlined here with the
// classic de Bruijn multiply so the package keeps its tiny import set.
//
//hot:noalloc
func trailingZeros64(x uint64) int {
	if x == 0 {
		return 64
	}
	return int(deBruijn64tab[(x&-x)*0x03f79d71b4ca8b09>>58])
}

var deBruijn64tab = [64]byte{
	0, 1, 56, 2, 57, 49, 28, 3, 61, 58, 42, 50, 38, 29, 17, 4,
	62, 47, 59, 36, 45, 43, 51, 22, 53, 39, 33, 30, 24, 18, 12, 5,
	63, 55, 48, 27, 60, 41, 37, 16, 46, 35, 44, 21, 52, 32, 23, 11,
	54, 26, 40, 15, 34, 20, 31, 10, 25, 14, 19, 9, 13, 8, 7, 6,
}
