package sim

import (
	"fmt"
	"time"
)

// DecisionKind classifies the scheduler's genuinely ambiguous choice
// points — the only places where the canonical (clock, id) / FIFO order
// is a tie-break convention rather than a semantic requirement. A
// correct workload must produce the same results whichever alternative
// is taken; internal/replay records the choices for bit-identical
// replay and perturbs them to hunt ordering bugs.
type DecisionKind uint8

const (
	// DecisionNext is an equal-virtual-time pick in Sim.next: two or more
	// ready/sleeping Procs share the minimal clock and any of them could
	// legally run first. Candidates are presented in ascending id order,
	// so index 0 is the canonical choice.
	DecisionNext DecisionKind = iota
	// DecisionWake is a wake-order choice in WaitQueue.WakeOne: two or
	// more distinct Procs are waiting and any could legally be woken
	// first. Candidates are presented in FIFO (longest-waiting first)
	// order, so index 0 is the canonical choice.
	DecisionWake
	// DecisionPreempt is an equal-clock continue-vs-yield tie in
	// maybePreempt: the running Proc and some other Proc share a clock,
	// and either may run next. n is always 2; index 0 keeps the canonical
	// (clock, id) outcome, index 1 flips it.
	DecisionPreempt
	// NumDecisionKinds bounds the kinds (sizing arrays).
	NumDecisionKinds
)

func (k DecisionKind) String() string {
	switch k {
	case DecisionNext:
		return "next"
	case DecisionWake:
		return "wake"
	case DecisionPreempt:
		return "preempt"
	}
	return fmt.Sprintf("decision(%d)", int(k))
}

// Decider resolves ambiguous scheduler choices. Decide returns the index
// of the chosen alternative in [0, n); out-of-range returns are clamped.
// Index 0 is always the canonical choice, so a Decider that returns 0
// everywhere reproduces the undecided schedule exactly. where names the
// decision site (the canonical candidate's Proc name for next/preempt,
// the queue name for wake) and at is the virtual time of the decision;
// both are diagnostics only and must not influence a replaying Decider.
//
// Deciders are consulted only when n > 1 — unambiguous points cost a
// single nil check, exactly like the Sink trace hook, so an undecided
// simulation is bit-identical (and allocation-identical) to one with no
// Decider support compiled in.
type Decider interface {
	Decide(kind DecisionKind, where string, n int, at time.Duration) int
}

// DecisionLister is an optional Decider extension: a Decider that keeps
// a bounded log of recent decisions exposes it here, and Sim.Run copies
// it into ErrDeadlock so deadlock reports end with the scheduler
// choices that led there.
type DecisionLister interface {
	RecentDecisions() []string
}

// SetDecider installs a scheduler Decider. Pass nil to disable (the
// default): with no Decider the scheduler takes every canonical choice
// with zero overhead beyond a nil check.
func (s *Sim) SetDecider(d Decider) { s.decider = d }

// Decider returns the installed Decider, or nil.
func (s *Sim) Decider() Decider { return s.decider }

// nextDecided is Sim.next with the equal-time tie handed to the Decider:
// all Procs (ready or sleeping) sharing the minimal clock are enumerated
// in ascending id order and the Decider picks one. With a single
// candidate no decision is consulted and the pick equals next()'s.
//
//hot:noalloc
func (s *Sim) nextDecided() *Proc {
	var minT time.Duration
	have := false
	if s.ready.Len() > 0 {
		minT = s.ready.peek().now
		have = true
	}
	if sl := s.sleepers.peek(); sl != nil && (!have || sl.wakeAt < minT) {
		minT = sl.wakeAt
		have = true
	}
	if !have {
		return nil
	}
	s.decCands = s.ready.appendEqual(minT, s.decCands[:0])
	s.decCands = s.sleepers.appendEqual(minT, s.decCands)
	// Insertion sort by id: candidate sets are tiny (procs sharing one
	// virtual instant), and sort.Slice would allocate its closure.
	for i := 1; i < len(s.decCands); i++ {
		p := s.decCands[i]
		j := i - 1
		for j >= 0 && s.decCands[j].id > p.id {
			s.decCands[j+1] = s.decCands[j]
			j--
		}
		s.decCands[j+1] = p
	}
	pick := s.decCands[0]
	if len(s.decCands) > 1 {
		idx := s.decider.Decide(DecisionNext, pick.name, len(s.decCands), minT)
		if idx > 0 && idx < len(s.decCands) {
			pick = s.decCands[idx]
		}
	}
	if pick.state == StateSleeping {
		s.sleepers.take(pick)
		pick.now = pick.wakeAt
		pick.wakeTag = WakeNormal
	} else {
		s.ready.remove(pick)
	}
	return pick
}

// maybePreemptDecided is maybePreempt with the equal-clock tie handed to
// the Decider: when the running Proc and the earliest waiting Proc share
// a clock, either outcome (continue or yield) is legal, and the Decider
// picks whether to keep the canonical one.
//
//hot:noalloc
func (s *Sim) maybePreemptDecided(p *Proc) {
	strict, tie := s.contention(p)
	if strict {
		// Someone has a strictly earlier clock: yielding is mandatory,
		// not a decision point.
		s.preempt(p)
		return
	}
	if !tie {
		return
	}
	yield := !s.stillMin(p)
	if s.decider.Decide(DecisionPreempt, p.name, 2, p.now) == 1 {
		yield = !yield
	}
	if yield {
		s.preempt(p)
	}
}

// contention reports whether any waiting Proc has a strictly earlier
// clock than p (strict) or shares p's clock exactly (tie). The heap and
// wheel minima are sufficient: no non-root entry can beat the root.
//
//hot:noalloc
func (s *Sim) contention(p *Proc) (strict, tie bool) {
	if len(s.ready.procs) > 0 {
		q := s.ready.procs[0]
		if q.now < p.now {
			return true, false
		}
		if q.now == p.now {
			tie = true
		}
	}
	if q := s.sleepers.peek(); q != nil {
		if q.wakeAt < p.now {
			return true, false
		}
		if q.wakeAt == p.now {
			tie = true
		}
	}
	return false, tie
}

// preempt makes p runnable and hands the token over (the slow path of
// maybePreempt, shared with the decided variant).
//
//hot:noalloc
func (s *Sim) preempt(p *Proc) {
	p.state = StateRunnable
	s.ready.push(p)
	s.yieldAndWait(p)
}

// appendEqual appends every heap entry whose key equals t. A linear
// scan: it only runs under a Decider, and the ready set is bounded by
// live threads.
//
//hot:noalloc
func (h *procHeap) appendEqual(t time.Duration, out []*Proc) []*Proc {
	for i := 0; i < len(h.procs); i++ {
		if h.key(h.procs[i]) == t {
			out = append(out, h.procs[i])
		}
	}
	return out
}

// appendEqual appends every wheel entry whose deadline equals t.
//
//hot:noalloc
func (w *timerWheel) appendEqual(t time.Duration, out []*Proc) []*Proc {
	if w.min == nil || w.min.wakeAt != t {
		return out
	}
	for level := 0; level < wheelLevels; level++ {
		occ := w.occ[level]
		for occ != 0 {
			slot := trailingZeros64(occ)
			occ &= occ - 1
			for p := w.slots[level][slot]; p != nil; p = p.twNext {
				if p.wakeAt == t {
					out = append(out, p)
				}
			}
		}
	}
	for p := w.overflow; p != nil; p = p.twNext {
		if p.wakeAt == t {
			out = append(out, p)
		}
	}
	return out
}

// take removes an arbitrary minimal-deadline entry, advancing the floor
// exactly as popMin would (p.wakeAt equals the cached minimum's wakeAt
// when used from nextDecided, so floor monotonicity is preserved).
//
//hot:noalloc
func (w *timerWheel) take(p *Proc) {
	if p.wakeAt > w.floor {
		w.floor = p.wakeAt
	}
	w.remove(p)
}
