package sim

import (
	"testing"
	"time"
)

// twRand is a tiny seeded splitmix64 so the equivalence test is
// deterministic across hosts (same idiom as internal/fault).
type twRand uint64

func (r *twRand) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	x := uint64(*r)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TestTimerWheelEquivalence drives the wheel and the old sleepers heap with
// an identical randomized sequence of arms, cancels, and expiries, and
// asserts they agree on the minimum at every step and pop in the same
// (wakeAt, id) order. This pins the scheduler's wake order across the
// heap-to-wheel swap.
func TestTimerWheelEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 0xdead} {
		wheel := newTimerWheel()
		heap := &procHeap{bySleep: true}
		rng := twRand(seed)

		var live []*Proc
		nextID := 0
		floor := time.Duration(0)

		// The same Proc sits in both structures at once: the heap uses
		// heapIndex, the wheel its tw* fields, and the two never collide.
		arm := func() {
			// Deadlines span all wheel levels plus the overflow list, and
			// occasionally land exactly on the floor (ties + below-floor
			// defensive path). Duplicate wakeAts exercise the id tiebreak.
			var d time.Duration
			switch rng.next() % 5 {
			case 0:
				d = time.Duration(rng.next() % uint64(100*time.Microsecond))
			case 1:
				d = time.Duration(rng.next() % uint64(10*time.Millisecond))
			case 2:
				d = time.Duration(rng.next() % uint64(500*time.Millisecond))
			case 3:
				d = time.Duration(rng.next() % uint64(5*time.Second))
			case 4:
				d = 0
			}
			p := &Proc{id: nextID, wakeAt: floor + d, heapIndex: -1, twLevel: -1}
			nextID++
			wheel.push(p)
			heap.push(p)
			live = append(live, p)
		}
		cancel := func() {
			if len(live) == 0 {
				return
			}
			i := int(rng.next() % uint64(len(live)))
			p := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			wheel.remove(p)
			heap.remove(p)
		}
		expire := func() {
			if heap.Len() == 0 {
				return
			}
			want := heap.pop()
			got := wheel.popMin()
			if got != want {
				t.Fatalf("seed %d: popMin = proc %d @%v, heap says proc %d @%v",
					seed, got.id, got.wakeAt, want.id, want.wakeAt)
			}
			if want.wakeAt < floor {
				t.Fatalf("seed %d: wake order went backwards: %v < floor %v", seed, want.wakeAt, floor)
			}
			floor = want.wakeAt
			for i, p := range live {
				if p == want {
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					break
				}
			}
		}

		for step := 0; step < 5000; step++ {
			switch rng.next() % 4 {
			case 0, 1:
				arm()
			case 2:
				cancel()
			case 3:
				expire()
			}
			if wheel.Len() != heap.Len() {
				t.Fatalf("seed %d step %d: wheel Len %d != heap Len %d", seed, step, wheel.Len(), heap.Len())
			}
			wantMin := (*Proc)(nil)
			if heap.Len() > 0 {
				wantMin = heap.peek()
			}
			if got := wheel.peek(); got != wantMin {
				t.Fatalf("seed %d step %d: peek mismatch", seed, step)
			}
		}
		// Drain: the full remaining population must pop in identical order.
		for heap.Len() > 0 {
			expire()
		}
		if wheel.Len() != 0 || wheel.peek() != nil {
			t.Fatalf("seed %d: wheel not empty after drain", seed)
		}
	}
}

// TestTimerWheelRemoveIdempotent pins the cancel-twice and cancel-unarmed
// cases the scheduler relies on (wake of an already-woken Proc).
func TestTimerWheelRemoveIdempotent(t *testing.T) {
	w := newTimerWheel()
	p := &Proc{id: 1, wakeAt: time.Millisecond, heapIndex: -1, twLevel: -1}
	w.remove(p) // never armed: no-op
	w.push(p)
	w.remove(p)
	w.remove(p) // already cancelled: no-op
	if w.Len() != 0 || w.peek() != nil {
		t.Fatalf("wheel not empty after idempotent removes: len %d", w.Len())
	}
}
