// Package sim implements a deterministic discrete-event simulator whose
// processes are goroutines scheduled cooperatively, one at a time, in
// virtual-time order.
//
// Every simulated thread in the Cider reproduction — kernel tasks, service
// daemons, benchmark drivers — is a sim.Proc. Exactly one Proc executes at
// any moment (the scheduler hands a run token around), so shared simulation
// state needs no locking, and virtual time advances only through explicit
// Advance calls. The scheduler always resumes the runnable Proc with the
// smallest local clock, which models an unlimited-core machine: two Procs
// that each charge 1ms of compute finish at t=1ms, not t=2ms. CPU-count
// contention is modelled at the workload layer (see internal/hw), which is
// sufficient for the latency- and rate-style measurements the paper reports.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// State describes where a Proc is in its lifecycle.
type State int

const (
	// StateRunnable means the Proc is ready to execute.
	StateRunnable State = iota
	// StateRunning means the Proc currently holds the run token.
	StateRunning
	// StateSleeping means the Proc is waiting for virtual time to pass.
	StateSleeping
	// StateParked means the Proc is blocked until another Proc wakes it.
	StateParked
	// StateDone means the Proc's function returned or it called Exit.
	StateDone
)

func (s State) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateParked:
		return "parked"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Wake tags let a waker tell a parked Proc why it was woken; the kernel uses
// them to distinguish normal wakeups from signal interruptions.
const (
	// WakeNormal is an ordinary wakeup.
	WakeNormal = 0
	// WakeInterrupted indicates the sleep/park was cut short (signal).
	WakeInterrupted = 1
)

// ErrDeadlock is returned by Run when parked Procs remain but nothing can
// ever wake them.
type ErrDeadlock struct {
	// Parked lists the names of the non-daemon Procs that were still
	// blocked, as "name(reason)" strings.
	Parked []string
	// Procs is the full wait snapshot at detection time: every parked
	// Proc — parked daemons included, since they are often the other end
	// of the lost wakeup — with its park reason and virtual clock.
	Procs []ParkedProc
	// Decisions holds the last few scheduler decisions before the
	// deadlock, newest last, when a decision-logging Decider (see
	// DecisionLister) was installed; nil otherwise.
	Decisions []string
}

// ParkedProc is one blocked Proc's entry in a deadlock report.
type ParkedProc struct {
	// Name is the Proc's diagnostic name.
	Name string
	// ID is the Proc's simulator id.
	ID int
	// Reason is what the Proc was parked on (the Park reason, typically a
	// wait-queue name such as "waitq:port:17").
	Reason string
	// At is the Proc's virtual clock when it parked.
	At time.Duration
	// Daemon marks background services, which do not themselves make the
	// system deadlocked.
	Daemon bool
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("sim: deadlock with %d parked procs: %v", len(e.Parked), e.Parked)
}

// Report formats the wait snapshot as a multi-line diagnostic: one line
// per parked Proc with its id, name, virtual park time, and wait reason.
func (e *ErrDeadlock) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock: %d proc(s) parked with no possible waker\n", len(e.Parked))
	for _, p := range e.Procs {
		mark := ""
		if p.Daemon {
			mark = " [daemon]"
		}
		fmt.Fprintf(&b, "  proc %d %q%s parked at %v waiting on %s\n",
			p.ID, p.Name, mark, p.At, p.Reason)
	}
	if len(e.Decisions) > 0 {
		fmt.Fprintf(&b, "last %d scheduler decision(s) before deadlock (oldest first):\n", len(e.Decisions))
		for _, d := range e.Decisions {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	}
	return b.String()
}

// SchedEvent identifies one scheduler event delivered to a Sink.
type SchedEvent int

const (
	// SchedSpawn fires when a Proc is created.
	SchedSpawn SchedEvent = iota
	// SchedBlock fires when a Proc gives up the run token (park, sleep, or
	// preemption); the event detail carries the park reason.
	SchedBlock
	// SchedResume fires when a blocked Proc is scheduled again.
	SchedResume
	// SchedWake fires when a parked or sleeping Proc is made runnable by
	// another Proc; the detail is "interrupted" for signal-style wakes.
	SchedWake
	// SchedExit fires when a Proc terminates.
	SchedExit
	// NumSchedEvents bounds the event kinds (sizing arrays).
	NumSchedEvents
)

func (e SchedEvent) String() string {
	switch e {
	case SchedSpawn:
		return "spawn"
	case SchedBlock:
		return "block"
	case SchedResume:
		return "resume"
	case SchedWake:
		return "wake"
	case SchedExit:
		return "exit"
	}
	return fmt.Sprintf("sched(%d)", int(e))
}

// Sink receives scheduler events. It replaces the old single trace
// callback: a Sink implementation (internal/trace owns the canonical one)
// can feed ring buffers, per-proc accounting, or test assertions. Sinks
// must never re-enter the simulator (no Spawn/Wake/Advance); they observe
// virtual time, they do not create it.
type Sink interface {
	// SchedEvent reports one event. detail carries the park reason on
	// block events and "interrupted" on interrupting wakes; it is empty
	// otherwise.
	SchedEvent(ev SchedEvent, proc string, id int, at time.Duration, detail string)
}

// exitProc is the panic value used to unwind a Proc on Exit.
type exitProc struct{ p *Proc }

// Proc is a simulated thread of execution. Its methods must only be called
// from its own goroutine while it holds the run token (i.e. from within the
// function passed to Spawn), except where noted.
type Proc struct {
	sim   *Sim
	id    int
	name  string
	state State
	now   time.Duration
	// wakeAt is the wakeup deadline while sleeping.
	wakeAt time.Duration
	// wakeTag carries the waker's tag to a parked/sleeping Proc.
	wakeTag int
	// parkReason describes what a parked Proc is waiting for (diagnostics).
	parkReason string
	// run carries the scheduler's run token to the Proc.
	run chan struct{}
	// heapIndex is the Proc's position in the ready heap.
	heapIndex int
	// twNext/twPrev/twLevel/twSlot thread the Proc through the sleep timer
	// wheel's intrusive slot lists; twLevel is -1 while not sleeping.
	twNext, twPrev *Proc
	twLevel        int8
	twSlot         int8
	fn             func(*Proc)
	// onExit callbacks run (in the Proc's context) after fn returns.
	onExit []func(*Proc)
	// daemon marks the Proc as a background service: the simulation ends
	// when only daemons remain, and a parked daemon is not a deadlock.
	daemon bool
}

// SetDaemon marks/unmarks the Proc as a daemon (see Sim.Run).
func (p *Proc) SetDaemon(on bool) {
	if p.daemon == on {
		return
	}
	p.daemon = on
	if p.state != StateDone {
		if on {
			p.sim.nonDaemonLive--
		} else {
			p.sim.nonDaemonLive++
		}
	}
}

// Daemon reports whether the Proc is a daemon.
func (p *Proc) Daemon() bool { return p.daemon }

// ID returns the Proc's unique id, assigned in spawn order.
func (p *Proc) ID() int { return p.id }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// State reports the Proc's lifecycle state. It may be called from any Proc.
func (p *Proc) State() State { return p.state }

// Now returns the Proc's local virtual clock.
func (p *Proc) Now() time.Duration { return p.now }

// Sim returns the simulator this Proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Advance charges d of virtual compute time to the Proc. Negative d panics.
//
//hot:noalloc
func (p *Proc) Advance(d time.Duration) {
	if d < 0 {
		panic("sim: Advance with negative duration")
	}
	p.now += d
	// If another Proc could now run earlier than us, hand over the token so
	// virtual-time ordering is preserved across Procs.
	p.sim.maybePreempt(p)
}

// Yield gives other runnable Procs with a clock at or before ours a chance
// to run. It never advances time.
//
//hot:noalloc
func (p *Proc) Yield() {
	p.sim.maybePreempt(p)
}

// Sleep blocks the Proc until at least d of virtual time has passed. It
// returns the wake tag: WakeNormal when the timer expired, or the tag passed
// by an interrupting waker.
//
//hot:noalloc
func (p *Proc) Sleep(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	if h := p.sim.interruptHook; h != nil && h(p, "sleep") {
		return WakeInterrupted
	}
	p.state = StateSleeping
	p.wakeAt = p.now + d
	p.wakeTag = WakeNormal
	p.sim.sleepers.push(p)
	p.sim.yieldAndWait(p)
	return p.wakeTag
}

// Park blocks the Proc until another Proc calls Wake on it. The reason is
// reported in deadlock errors and debug dumps. It returns the waker's tag.
//
//hot:noalloc
func (p *Proc) Park(reason string) int {
	if h := p.sim.interruptHook; h != nil && h(p, reason) {
		return WakeInterrupted
	}
	p.state = StateParked
	p.parkReason = reason
	p.wakeTag = WakeNormal
	p.sim.parked[p.id] = p
	p.sim.yieldAndWait(p)
	return p.wakeTag
}

// Wake makes a parked or sleeping Proc runnable. The waker's clock is
// propagated: the woken Proc can never observe a time earlier than the wake.
// tag is returned from the woken Proc's Park/Sleep. Waking a runnable or
// done Proc is a no-op and returns false. Must be called by the running
// Proc (not from outside the simulation).
//
//hot:noalloc
func (p *Proc) Wake(target *Proc, tag int) bool {
	return p.sim.wake(p.now, target, tag)
}

// Exit terminates the Proc immediately, unwinding its stack.
func (p *Proc) Exit() {
	panic(exitProc{p})
}

// OnExit registers fn to run in the Proc's context when it terminates,
// whether by return or Exit. Callbacks run in reverse registration order.
func (p *Proc) OnExit(fn func(*Proc)) {
	p.onExit = append(p.onExit, fn)
}

// procHeap orders Procs by (clock, id) for deterministic scheduling. It
// is a hand-rolled binary heap rather than container/heap: push/pop/remove
// sit on the scheduler's hottest path, and the direct version avoids the
// interface boxing and indirect Less/Swap calls of the generic one.
type procHeap struct {
	procs []*Proc
	// bySleep keys the heap on wakeAt instead of now.
	bySleep bool
}

//
//hot:noalloc
func (h *procHeap) key(p *Proc) time.Duration {
	if h.bySleep {
		return p.wakeAt
	}
	return p.now
}

func (h *procHeap) Len() int { return len(h.procs) }

// less orders by (key, id); the id tiebreak makes scheduling deterministic.
//
//hot:noalloc
func (h *procHeap) less(a, b *Proc) bool {
	ka, kb := h.key(a), h.key(b)
	if ka != kb {
		return ka < kb
	}
	return a.id < b.id
}

//
//hot:noalloc
func (h *procHeap) up(i int) {
	p := h.procs[i]
	for i > 0 {
		parent := (i - 1) / 2
		q := h.procs[parent]
		if !h.less(p, q) {
			break
		}
		h.procs[i] = q
		q.heapIndex = i
		i = parent
	}
	h.procs[i] = p
	p.heapIndex = i
}

//
//hot:noalloc
func (h *procHeap) down(i int) {
	n := len(h.procs)
	p := h.procs[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.less(h.procs[r], h.procs[child]) {
			child = r
		}
		q := h.procs[child]
		if !h.less(q, p) {
			break
		}
		h.procs[i] = q
		q.heapIndex = i
		i = child
	}
	h.procs[i] = p
	p.heapIndex = i
}

//
//hot:noalloc
func (h *procHeap) push(p *Proc) {
	p.heapIndex = len(h.procs)
	h.procs = append(h.procs, p)
	h.up(p.heapIndex)
}

//
//hot:noalloc
func (h *procHeap) pop() *Proc {
	p := h.procs[0]
	n := len(h.procs) - 1
	last := h.procs[n]
	h.procs[n] = nil
	h.procs = h.procs[:n]
	if n > 0 {
		h.procs[0] = last
		last.heapIndex = 0
		h.down(0)
	}
	p.heapIndex = -1
	return p
}

func (h *procHeap) peek() *Proc { return h.procs[0] }

//
//hot:noalloc
func (h *procHeap) remove(p *Proc) {
	i := p.heapIndex
	if i < 0 || i >= len(h.procs) || h.procs[i] != p {
		return
	}
	n := len(h.procs) - 1
	last := h.procs[n]
	h.procs[n] = nil
	h.procs = h.procs[:n]
	if i < n {
		h.procs[i] = last
		last.heapIndex = i
		h.down(i)
		h.up(i)
	}
	p.heapIndex = -1
}

// Sim is a discrete-event simulator instance.
type Sim struct {
	nextID int
	ready  *procHeap
	// sleepers holds Procs in timed waits. It is a timer wheel, not a heap:
	// most sleeps are cancelled by a Wake before expiry, and the wheel makes
	// both arm and cancel O(1) (see timerwheel.go).
	sleepers *timerWheel
	parked   map[int]*Proc
	// yield returns control to Run when no Proc can take the token
	// directly (simulation finished, deadlocked, or panicking); ordinary
	// switches hand the token proc-to-proc without touching it.
	yield chan struct{}
	// current is the Proc holding the run token.
	current *Proc
	running bool
	// live counts Procs that are not done; nonDaemonLive excludes daemons.
	live          int
	nonDaemonLive int
	// sink, when non-nil, receives scheduling events (see Sink).
	sink Sink
	// interruptHook, when non-nil, is consulted at the top of Park and
	// Sleep; returning true makes the wait return WakeInterrupted
	// immediately without blocking or advancing time (fault injection).
	interruptHook func(p *Proc, reason string) bool
	// decider, when non-nil, resolves ambiguous scheduling choices (see
	// decider.go). The nil check is the entire disabled-path cost.
	decider Decider
	// decCands is nextDecided's candidate scratch (reused, no per-pick
	// allocation).
	decCands []*Proc
	// panicValue propagates a Proc panic out of Run.
	panicValue any
	panicProc  string
}

// New creates an empty simulator.
func New() *Sim {
	return &Sim{
		ready:    &procHeap{},
		sleepers: newTimerWheel(),
		parked:   make(map[int]*Proc),
		yield:    make(chan struct{}),
	}
}

// SetSink installs a scheduler-event sink. Pass nil to disable. The nil
// check is the entire disabled-path cost: no event is materialized unless
// a sink is attached, and sinks never advance virtual time, so attaching
// one cannot change simulation results.
func (s *Sim) SetSink(sink Sink) { s.sink = sink }

// SetInterruptHook installs (or, with nil, removes) the blocking-wait
// interrupt hook. The hook runs before a Park or Sleep blocks, with the
// park reason ("sleep" for Sleep and timed waits); returning true makes
// the wait return WakeInterrupted without blocking. The hook must be
// deterministic for simulation results to stay reproducible.
func (s *Sim) SetInterruptHook(h func(p *Proc, reason string) bool) { s.interruptHook = h }

//
//hot:noalloc
func (s *Sim) emit(ev SchedEvent, p *Proc, detail string) {
	if s.sink != nil {
		s.sink.SchedEvent(ev, p.name, p.id, p.now, detail)
	}
}

// blockDetail names what the Proc is blocking on for SchedBlock events.
//
//hot:noalloc
func blockDetail(p *Proc) string {
	switch p.state {
	case StateParked:
		return p.parkReason
	case StateSleeping:
		return "sleep"
	}
	return ""
}

// Spawn creates a new Proc running fn. When called before Run, the Proc
// starts at time zero; when called from inside a running Proc, the child
// inherits the parent's clock. The child's goroutine starts lazily on first
// schedule.
func (s *Sim) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		sim:       s,
		id:        s.nextID,
		name:      name,
		state:     StateRunnable,
		run:       make(chan struct{}),
		heapIndex: -1,
		twLevel:   -1,
		fn:        fn,
	}
	s.nextID++
	s.live++
	s.nonDaemonLive++
	if s.current != nil {
		p.now = s.current.now
	}
	go s.procMain(p)
	s.ready.push(p)
	s.emit(SchedSpawn, p, "")
	return p
}

// procMain is each Proc's goroutine body: wait for the token, run fn, then
// unwind through exit handling.
func (s *Sim) procMain(p *Proc) {
	<-p.run
	defer func() {
		r := recover()
		if r != nil {
			if e, ok := r.(exitProc); !ok || e.p != p {
				// Real panic: record and unwind the whole simulation.
				if s.panicValue == nil {
					s.panicValue = r
					s.panicProc = p.name
				}
			}
		}
		for i := len(p.onExit) - 1; i >= 0; i-- {
			p.onExit[i](p)
		}
		p.state = StateDone
		s.live--
		if !p.daemon {
			s.nonDaemonLive--
		}
		s.emit(SchedExit, p, "")
		s.handoff()
	}()
	p.fn(p)
}

// yieldAndWait releases the token and blocks until this Proc is scheduled
// again. The token goes directly to the next schedulable Proc (see
// handoff), not back through the Run loop.
//
//hot:noalloc
func (s *Sim) yieldAndWait(p *Proc) {
	s.emit(SchedBlock, p, blockDetail(p))
	if !s.handoffFrom(p) {
		<-p.run
	}
	p.state = StateRunning
	s.emit(SchedResume, p, "")
}

// handoff passes the run token from the calling Proc's goroutine straight
// to the next schedulable Proc: one channel send instead of the old
// yield-to-scheduler/schedule-from-loop pair, halving the channel
// operations and host context switches per virtual context switch.
// Control returns to the Run loop only when the simulation cannot proceed
// from here — every non-daemon finished, nothing is schedulable
// (potential deadlock), or a Proc panicked.
//
//hot:noalloc
func (s *Sim) handoff() { s.handoffFrom(nil) }

// handoffFrom implements handoff for a blocking Proc. When the next
// schedulable Proc is the caller itself (a sole Proc sleeping, say — next()
// pops it straight back out of the sleep heap), sending on its own
// unbuffered run channel would deadlock; instead it returns true and the
// caller resumes without any channel operation at all.
//
//hot:noalloc
func (s *Sim) handoffFrom(from *Proc) bool {
	if s.panicValue == nil && s.nonDaemonLive > 0 {
		if next := s.next(); next != nil {
			next.state = StateRunning
			s.current = next
			if next == from {
				return true
			}
			next.run <- struct{}{}
			return false
		}
	}
	s.current = nil
	s.yield <- struct{}{}
	return false
}

// maybePreempt hands the token over if another Proc could run at an earlier
// or equal clock. The current Proc stays runnable.
//
//hot:noalloc
func (s *Sim) maybePreempt(p *Proc) {
	if s.decider != nil {
		s.maybePreemptDecided(p)
		return
	}
	// Same-proc fast path: when the running Proc would win the next
	// scheduling decision anyway — no ready or sleeping Proc has a
	// strictly earlier clock, or an equal clock with a smaller id — the
	// old code still bounced the token through a full block/resume pair
	// just to be handed it back. Skipping the handoff preserves the
	// execution order exactly (the winner runs either way) and therefore
	// every virtual-time result; only the redundant self-switch, with its
	// two goroutine switches, disappears.
	if s.stillMin(p) {
		return
	}
	s.preempt(p)
}

// stillMin reports whether p beats every ready and sleeping Proc under the
// scheduler's (clock, id) order — i.e. next() would pick p again.
//
//hot:noalloc
func (s *Sim) stillMin(p *Proc) bool {
	if len(s.ready.procs) > 0 {
		q := s.ready.procs[0]
		if q.now < p.now || (q.now == p.now && q.id < p.id) {
			return false
		}
	}
	if q := s.sleepers.peek(); q != nil {
		if q.wakeAt < p.now || (q.wakeAt == p.now && q.id < p.id) {
			return false
		}
	}
	return true
}

// wake transitions target out of parked/sleeping. Shared by Proc.Wake and
// external wakes.
//
//hot:noalloc
func (s *Sim) wake(at time.Duration, target *Proc, tag int) bool {
	switch target.state {
	case StateParked:
		delete(s.parked, target.id)
	case StateSleeping:
		s.sleepers.remove(target)
	default:
		return false
	}
	if target.now < at {
		target.now = at
	}
	target.wakeTag = tag
	target.parkReason = ""
	target.state = StateRunnable
	s.ready.push(target)
	detail := ""
	if tag != WakeNormal {
		detail = "interrupted"
	}
	s.emit(SchedWake, target, detail)
	return true
}

// next picks the Proc to run: the earliest of ready and sleep heaps.
//
//hot:noalloc
func (s *Sim) next() *Proc {
	if s.decider != nil {
		return s.nextDecided()
	}
	var pick *Proc
	fromSleep := false
	if s.ready.Len() > 0 {
		pick = s.ready.peek()
	}
	if sl := s.sleepers.peek(); sl != nil {
		if pick == nil || sl.wakeAt < pick.now || (sl.wakeAt == pick.now && sl.id < pick.id) {
			pick = sl
			fromSleep = true
		}
	}
	if pick == nil {
		return nil
	}
	if fromSleep {
		s.sleepers.popMin()
		pick.now = pick.wakeAt
		pick.wakeTag = WakeNormal
	} else {
		s.ready.pop()
	}
	return pick
}

// Run executes the simulation until every Proc is done, a deadlock is
// detected, or a Proc panics (in which case Run re-panics with the Proc's
// panic value).
func (s *Sim) Run() error {
	if s.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.nonDaemonLive > 0 {
		p := s.next()
		if p == nil {
			// Everyone left is parked. If any non-daemon is among them,
			// that is a deadlock; parked daemons just mean the system is
			// idle.
			var names []string
			var snapshot []ParkedProc
			for _, q := range s.parked {
				if !q.daemon {
					names = append(names, fmt.Sprintf("%s(%s)", q.name, q.parkReason))
				}
				snapshot = append(snapshot, ParkedProc{
					Name: q.name, ID: q.id, Reason: q.parkReason,
					At: q.now, Daemon: q.daemon,
				})
			}
			if len(names) == 0 {
				return nil
			}
			sort.Strings(names)
			sort.Slice(snapshot, func(i, j int) bool { return snapshot[i].ID < snapshot[j].ID })
			e := &ErrDeadlock{Parked: names, Procs: snapshot}
			if dl, ok := s.decider.(DecisionLister); ok {
				e.Decisions = dl.RecentDecisions()
			}
			return e
		}
		p.state = StateRunning
		s.current = p
		p.run <- struct{}{}
		<-s.yield
		s.current = nil
		if s.panicValue != nil {
			pv, pp := s.panicValue, s.panicProc
			s.panicValue = nil
			panic(fmt.Sprintf("sim: proc %q panicked: %v", pp, pv))
		}
	}
	return nil
}

// Current returns the Proc holding the run token, or nil between turns.
func (s *Sim) Current() *Proc { return s.current }

// Live reports the number of Procs that have not finished.
func (s *Sim) Live() int { return s.live }
