package graphics_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diplomat"
	"repro/internal/elfx"
	"repro/internal/graphics"
	"repro/internal/kernel"
	"repro/internal/macho"
	"repro/internal/persona"
	"repro/internal/prog"
)

// runIOSApp boots a system, installs an iOS binary whose body is fn, runs
// it, and returns the system for inspection.
func runIOSApp(t *testing.T, cfg core.Config, fn func(th *kernel.Thread, sys *core.System)) *core.System {
	t.Helper()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallIOSBinary("/Applications/t.app/t", "gfx-test", nil, func(c *prog.Call) uint64 {
		fn(c.Ctx.(*kernel.Thread), sys)
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Start("/Applications/t.app/t", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDiplomatGenerationCoversGLSurface(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	// One diplomat per exported symbol of the iOS GL framework: the
	// standard API matched into libGLESv2.so, EAGL into libEGLbridge.so.
	want := len(graphics.IOSGLExports())
	if len(sys.GLSpecs) != want {
		t.Fatalf("generated %d diplomats, want %d", len(sys.GLSpecs), want)
	}
	byLib := map[string]int{}
	for _, sp := range sys.GLSpecs {
		byLib[sp.DomesticLib]++
	}
	if byLib["libGLESv2.so"] != len(graphics.GLFunctions) {
		t.Fatalf("GLESv2 diplomats = %d, want %d", byLib["libGLESv2.so"], len(graphics.GLFunctions))
	}
	if byLib["libEGLbridge.so"] != len(graphics.EGLBridgeFunctions) {
		t.Fatalf("bridge diplomats = %d, want %d", byLib["libEGLbridge.so"], len(graphics.EGLBridgeFunctions))
	}
}

func TestIOSAppRendersThroughDiplomats(t *testing.T) {
	var personaDuring persona.Kind
	var flipsAfter uint64
	sys := runIOSApp(t, core.ConfigCider, func(th *kernel.Thread, sys *core.System) {
		gl, err := graphics.BindIOSGL(th)
		if err != nil {
			t.Error(err)
			return
		}
		personaDuring = th.Persona.Current()
		ctx := gl.Call("_EAGLContextCreate")
		if ctx == 0 {
			t.Error("EAGLContextCreate failed")
			return
		}
		gl.Call("_EAGLContextSetCurrent", ctx)
		if gl.Call("_EAGLRenderbufferStorageFromDrawable", ctx, 640, 480) != 1 {
			t.Error("renderbuffer storage failed")
		}
		gl.Call("_glViewport", 0, 0, 640, 480)
		gl.Call("_glClear", 0x4000)
		gl.Call("_glDrawArrays", 4, 0, 300)
		gl.Call("_EAGLContextPresentRenderbuffer", ctx)
	})
	// The app thread must be back in the iOS persona after every call.
	if personaDuring != persona.IOS {
		t.Fatalf("persona = %v", personaDuring)
	}
	if sys.Diplomat.Calls() < 7 {
		t.Fatalf("diplomat calls = %d, want >= 7", sys.Diplomat.Calls())
	}
	if sys.Gfx.SF.Frames() != 1 {
		t.Fatalf("composited frames = %d, want 1", sys.Gfx.SF.Frames())
	}
	if sys.FB.Flips() != 1 {
		t.Fatalf("page flips = %d, want 1", sys.FB.Flips())
	}
	flipsAfter = sys.FB.Flips()
	_ = flipsAfter
	draws, _, _ := sys.GPU.Stats()
	if draws != 1 {
		t.Fatalf("GPU draws = %d, want 1", draws)
	}
}

func TestIOSurfaceDiplomatsAllocateGralloc(t *testing.T) {
	sys := runIOSApp(t, core.ConfigCider, func(th *kernel.Thread, sys *core.System) {
		gl, err := graphics.BindIOSGL(th)
		if err != nil {
			t.Error(err)
			return
		}
		id := gl.Call("_IOSurfaceCreate", 256, 256, 4)
		if id == 0 {
			t.Error("IOSurfaceCreate failed")
			return
		}
		if w := gl.Call("_IOSurfaceGetWidth", id); w != 256 {
			t.Errorf("width = %d", w)
		}
	})
	if sys.Gfx.Gralloc.Live() != 1 {
		t.Fatalf("gralloc buffers = %d, want 1 (IOSurface must map to gralloc)", sys.Gfx.Gralloc.Live())
	}
}

func TestIPadNativeGraphicsNoDiplomats(t *testing.T) {
	sys := runIOSApp(t, core.ConfigIPad, func(th *kernel.Thread, sys *core.System) {
		gl, err := graphics.BindIOSGL(th)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := gl.Call("_EAGLContextCreate")
		gl.Call("_EAGLContextSetCurrent", ctx)
		gl.Call("_EAGLRenderbufferStorageFromDrawable", ctx, 640, 480)
		gl.Call("_glDrawArrays", 4, 0, 300)
		gl.Call("_EAGLContextPresentRenderbuffer", ctx)
	})
	if sys.Diplomat != nil {
		t.Fatal("iPad must not have a diplomat engine")
	}
	draws, _, _ := sys.GPU.Stats()
	if draws != 1 {
		t.Fatalf("draws = %d", draws)
	}
}

func TestDiplomatOverheadPerCall(t *testing.T) {
	// Each GL call through a diplomat must cost more than the same call
	// natively — the 3D overhead source of Fig. 6 — but stay in the
	// microsecond range.
	perCall := func(cfg core.Config) time.Duration {
		var elapsed time.Duration
		runIOSApp(t, cfg, func(th *kernel.Thread, sys *core.System) {
			gl, err := graphics.BindIOSGL(th)
			if err != nil {
				t.Error(err)
				return
			}
			ctx := gl.Call("_EAGLContextCreate")
			gl.Call("_EAGLContextSetCurrent", ctx)
			gl.Call("_glEnable", 1) // warm the resolution cache
			const iters = 500
			start := th.Now()
			for i := 0; i < iters; i++ {
				gl.Call("_glEnable", 1)
			}
			elapsed = (th.Now() - start) / iters
		})
		return elapsed
	}
	cider := perCall(core.ConfigCider)
	ipad := perCall(core.ConfigIPad)
	if cider <= ipad {
		t.Fatalf("diplomat call (%v) should cost more than native (%v)", cider, ipad)
	}
	overhead := cider - ipad
	if overhead < 1*time.Microsecond || overhead > 12*time.Microsecond {
		t.Fatalf("diplomat overhead = %v, want a few µs", overhead)
	}
}

func TestBuggyFencesDegradeRendering(t *testing.T) {
	// Fig. 6, image rendering: "bugs in the Cider OpenGL ES library
	// related to fence synchronization primitives caused
	// under-performance".
	frameTime := func(buggy bool) time.Duration {
		var elapsed time.Duration
		fixed := !buggy
		sys, err := core.NewSystem(core.ConfigCider, core.Options{FixFences: &fixed})
		if err != nil {
			t.Fatal(err)
		}
		runBody := func(th *kernel.Thread, sys *core.System) {
			gl, err := graphics.BindIOSGL(th)
			if err != nil {
				t.Error(err)
				return
			}
			ctx := gl.Call("_EAGLContextCreate")
			gl.Call("_EAGLContextSetCurrent", ctx)
			gl.Call("_EAGLRenderbufferStorageFromDrawable", ctx, 640, 480)
			start := th.Now()
			for i := 0; i < 10; i++ {
				gl.Call("_glTexImage2D", 0, 0, 0, 256, 256, 0, 0, 0, 0)
				gl.Call("_glDrawArrays", 4, 0, 100)
				gl.Call("_glFenceSync", 0, 0)
				gl.Call("_glClientWaitSync", 0, 0, 0)
			}
			elapsed = th.Now() - start
		}
		if err := sys.InstallIOSBinary("/Applications/ft.app/ft", "ft-"+fmt.Sprint(buggy), nil, func(c *prog.Call) uint64 {
			runBody(c.Ctx.(*kernel.Thread), sys)
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Start("/Applications/ft.app/ft", nil); err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	good := frameTime(false)
	bad := frameTime(true)
	if bad <= good {
		t.Fatalf("buggy fences (%v) must be slower than correct ones (%v)", bad, good)
	}
}

func TestMultiPersonaThreads(t *testing.T) {
	// Section 4.3: "while one thread executes complicated OpenGL ES
	// rendering algorithms using the domestic persona, another thread in
	// the same app can simultaneously process input data using the foreign
	// persona."
	var renderPersonaSaw, inputPersonaSaw persona.Kind
	runIOSApp(t, core.ConfigCider, func(th *kernel.Thread, sys *core.System) {
		gl, err := graphics.BindIOSGL(th)
		if err != nil {
			t.Error(err)
			return
		}
		done := make(chan struct{}) // host-side sync only; sim-side is the scheduler
		_ = done
		renderer := th.SpawnThread("render", func(rt *kernel.Thread) {
			rgl, err := graphics.BindIOSGL(rt)
			if err != nil {
				t.Error(err)
				return
			}
			ctx := rgl.Call("_EAGLContextCreate")
			rgl.Call("_EAGLContextSetCurrent", ctx)
			// Mid-diplomat the thread runs domestic; snapshot via the GL
			// callback below is overkill — instead verify switch counters.
			rgl.Call("_glDrawArrays", 4, 0, 64)
			renderPersonaSaw = rt.Persona.Current()
		})
		_ = renderer
		inputPersonaSaw = th.Persona.Current()
		gl.Call("_glGetError")
	})
	if renderPersonaSaw != persona.IOS || inputPersonaSaw != persona.IOS {
		t.Fatalf("threads must return to the foreign persona: %v/%v", renderPersonaSaw, inputPersonaSaw)
	}
}

func TestDiplomatErrnoConversion(t *testing.T) {
	// Step 8 of the arbitration: domestic errno values surface in the
	// foreign TLS in BSD numbering.
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	eng := sys.Diplomat
	// A domestic function that fails with EAGAIN (Linux 11).
	sys.Registry.MustRegister("dom-fail", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Persona.TLS(persona.Android).Errno = int(kernel.EAGAIN)
		return ^uint64(0)
	})
	dip := eng.Wrap("dom-fail")
	var iosErrno int
	sys.InstallIOSBinary("/bin/e", "e", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		dip(&prog.Call{Ctx: th})
		iosErrno = th.Persona.TLS(persona.IOS).Errno
		return 0
	})
	sys.Start("/bin/e", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if iosErrno != 35 { // BSD EAGAIN
		t.Fatalf("iOS TLS errno = %d, want 35 (BSD EAGAIN)", iosErrno)
	}
}

func TestSurfaceLifecycle(t *testing.T) {
	sys := runIOSApp(t, core.ConfigCider, func(th *kernel.Thread, sys *core.System) {
		gl, err := graphics.BindIOSGL(th)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := gl.Call("_EAGLContextCreate")
		gl.Call("_EAGLContextSetCurrent", ctx)
		gl.Call("_EAGLRenderbufferStorageFromDrawable", ctx, 320, 240)
		if sys.Gfx.SF.Layers() != 1 {
			t.Errorf("layers = %d", sys.Gfx.SF.Layers())
		}
		gl.Call("_EAGLContextDestroy", ctx)
	})
	if sys.Gfx.SF.Layers() != 0 {
		t.Fatalf("layers = %d after destroy", sys.Gfx.SF.Layers())
	}
	if sys.Gfx.Gralloc.Live() != 0 {
		t.Fatalf("gralloc leak: %d buffers", sys.Gfx.Gralloc.Live())
	}
}

func TestGenerateReportsUnmatched(t *testing.T) {
	// A foreign lib exporting something no Android library provides must
	// be reported for hand implementation.
	foreignBin, err := prog.MachODylib("/Foo.framework/Foo", nil,
		[]string{"_glClear", "_AppleSecretFunction"}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	domBin, err := prog.ELFSharedObject("libGLESv2.so", nil, []string{"glClear"})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := macho.Parse(foreignBin)
	if err != nil {
		t.Fatal(err)
	}
	df, err := elfx.Parse(domBin)
	if err != nil {
		t.Fatal(err)
	}
	specs, unmatched := diplomat.Generate(ff, []*elfx.File{df})
	if len(specs) != 1 || specs[0].ForeignSymbol != "_glClear" {
		t.Fatalf("specs = %+v", specs)
	}
	if len(unmatched) != 1 || unmatched[0] != "_AppleSecretFunction" {
		t.Fatalf("unmatched = %v", unmatched)
	}
}

// TestWebKitStyleMultithreadedGLLimitation reproduces §6.4: "the iOS
// WebKit framework is only partially supported due to its multi-threaded
// use of the OpenGL ES API." A context made current on one thread cannot
// migrate to another on the Cider prototype, but can on the iPad.
func TestWebKitStyleMultithreadedGLLimitation(t *testing.T) {
	migrate := func(cfg core.Config) uint64 {
		var second uint64
		runApp := func(th *kernel.Thread, sys *core.System) {
			gl, err := graphics.BindIOSGL(th)
			if err != nil {
				t.Error(err)
				return
			}
			ctx := gl.Call("_EAGLContextCreate")
			if gl.Call("_EAGLContextSetCurrent", ctx) != 1 {
				t.Error("first SetCurrent failed")
			}
			done := false
			th.SpawnThread("webkit-raster", func(wt *kernel.Thread) {
				wgl, err := graphics.BindIOSGL(wt)
				if err != nil {
					done = true
					return
				}
				// WebKit's raster thread tries to take over the context.
				second = wgl.Call("_EAGLContextSetCurrent", ctx)
				done = true
			})
			for !done {
				th.Proc().Sleep(time.Millisecond)
			}
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.InstallIOSBinary("/Applications/wk.app/wk", "wk-"+cfg.String(), nil, func(c *prog.Call) uint64 {
			runApp(c.Ctx.(*kernel.Thread), sys)
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		sys.Start("/Applications/wk.app/wk", nil)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return second
	}
	if got := migrate(core.ConfigCider); got != 0 {
		t.Errorf("Cider prototype: cross-thread SetCurrent = %d, want 0 (partial WebKit support)", got)
	}
	if got := migrate(core.ConfigIPad); got != 1 {
		t.Errorf("iPad: cross-thread SetCurrent = %d, want 1", got)
	}
}
