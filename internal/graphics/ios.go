package graphics

import (
	"fmt"
	"strings"

	"repro/internal/diplomat"
	"repro/internal/dyld"
	"repro/internal/elfx"
	"repro/internal/kernel"
	"repro/internal/macho"
	"repro/internal/prog"
	"repro/internal/vfs"
)

// IOSGLExports is the exported surface of the iOS OpenGL ES framework:
// the standard GL API plus Apple's EAGL extensions, in Mach-O symbol form.
func IOSGLExports() []string {
	var out []string
	for _, n := range GLFunctions {
		out = append(out, "_"+n)
	}
	for _, n := range EGLBridgeFunctions {
		out = append(out, "_"+n)
	}
	return out
}

// IOSurfaceExports is the exported surface of the iOS IOSurface library.
var IOSurfaceExports = []string{
	"_IOSurfaceCreate", "_IOSurfaceGetBaseAddress", "_IOSurfaceGetWidth",
	"_IOSurfaceGetHeight", "_IOSurfaceLock", "_IOSurfaceUnlock",
}

// GrallocFunctions is libgralloc's export list (the HAL entry points the
// IOSurface diplomats call into).
var GrallocFunctions = []string{
	"gralloc_alloc", "gralloc_free", "gralloc_lock", "gralloc_unlock",
	"gralloc_get_width", "gralloc_get_height",
}

// RegisterGrallocExports publishes the gralloc HAL symbols.
func RegisterGrallocExports(reg *prog.Registry, g *Gralloc) error {
	impl := map[string]func(t *kernel.Thread, args []uint64) uint64{
		"gralloc_alloc": func(t *kernel.Thread, args []uint64) uint64 {
			w, h, bpp := int(idx(args, 0)), int(idx(args, 1)), int(idx(args, 2))
			if bpp == 0 {
				bpp = 4
			}
			b, err := g.Alloc(t, w, h, bpp)
			if err != nil {
				return 0
			}
			return b.ID
		},
		"gralloc_free": func(t *kernel.Thread, args []uint64) uint64 {
			if g.Free(t, idx(args, 0)) != nil {
				return ^uint64(0)
			}
			return 0
		},
		"gralloc_lock":   func(t *kernel.Thread, args []uint64) uint64 { return 0 },
		"gralloc_unlock": func(t *kernel.Thread, args []uint64) uint64 { return 0 },
		"gralloc_get_width": func(t *kernel.Thread, args []uint64) uint64 {
			if b, ok := g.Get(idx(args, 0)); ok {
				return uint64(b.Width)
			}
			return 0
		},
		"gralloc_get_height": func(t *kernel.Thread, args []uint64) uint64 {
			if b, ok := g.Get(idx(args, 0)); ok {
				return uint64(b.Height)
			}
			return 0
		},
	}
	for name, fn := range impl {
		f := fn
		if err := reg.Register(prog.SymbolKey(GrallocPath, name), func(c *prog.Call) uint64 {
			t, ok := c.Ctx.(*kernel.Thread)
			if !ok {
				return 0
			}
			return f(t, c.Args)
		}); err != nil {
			return err
		}
	}
	return nil
}

func idx(args []uint64, i int) uint64 {
	if i < len(args) {
		return args[i]
	}
	return 0
}

// iosurfaceToGralloc maps each IOSurface entry point to the gralloc HAL
// call its diplomat invokes — the hand-written interposition of
// Section 5.3 ("Cider interposes diplomatic functions on key IOSurface API
// entry points such as IOSurfaceCreate. These diplomats call into
// Android-specific graphics memory allocation libraries such as
// libgralloc.").
var iosurfaceToGralloc = map[string]string{
	"_IOSurfaceCreate":         "gralloc_alloc",
	"_IOSurfaceGetBaseAddress": "gralloc_lock",
	"_IOSurfaceGetWidth":       "gralloc_get_width",
	"_IOSurfaceGetHeight":      "gralloc_get_height",
	"_IOSurfaceLock":           "gralloc_lock",
	"_IOSurfaceUnlock":         "gralloc_unlock",
}

// InstallCiderIOSGraphics builds the foreign-facing half of Cider's
// graphics support on a system whose domestic stack is already registered:
//
//  1. It runs the diplomat generator over the real binaries — the iOS
//     OpenGL ES framework from the iOS filesystem image against
//     libGLESv2.so and libEGLbridge.so from the Android image — and
//     installs a diplomat for every matched export (the "replacement iOS
//     OpenGL ES library with a diplomat for every exported symbol").
//
//  2. It interposes diplomats on the IOSurface entry points, mapping them
//     to libgralloc.
//
// It returns the generated spec list (the audit tool prints it).
func InstallCiderIOSGraphics(k *kernel.Kernel, eng *diplomat.Engine, iosFS *vfs.FS, androidFS *vfs.FS, openGLESPath, iosurfacePath string) ([]diplomat.Spec, error) {
	reg := k.Registry()

	foreign, err := parseMachO(iosFS, openGLESPath)
	if err != nil {
		return nil, err
	}
	var domestic []*elfx.File
	for _, so := range []string{"/system/lib/libGLESv2.so", "/system/lib/libEGLbridge.so"} {
		f, err := parseELF(androidFS, so)
		if err != nil {
			return nil, err
		}
		domestic = append(domestic, f)
	}
	specs, unmatched := diplomat.Generate(foreign, domestic)
	if len(unmatched) > 0 {
		return nil, fmt.Errorf("graphics: unmatched iOS GL exports need hand-written diplomats: %v", unmatched)
	}
	// libEGLbridge lives under /system/lib in the registry keyspace.
	for i := range specs {
		if specs[i].DomesticLib == "libEGLbridge.so" {
			// Registered under EGLBridgePath, not /system/lib/<soname>;
			// they are the same path, so nothing to fix — assert it.
			if "/system/lib/"+specs[i].DomesticLib != EGLBridgePath {
				return nil, fmt.Errorf("graphics: bridge path mismatch")
			}
		}
	}
	if err := eng.Install(reg, openGLESPath, specs); err != nil {
		return nil, err
	}

	// IOSurface interposition.
	for foreignSym, grallocFn := range iosurfaceToGralloc {
		key := prog.SymbolKey(iosurfacePath, foreignSym)
		if err := reg.Register(key, eng.Wrap(prog.SymbolKey(GrallocPath, grallocFn))); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// InstallNativeIOSGraphics registers the iPad's own graphics libraries:
// the same export surface backed directly by the device GPU — no
// diplomats, no persona switches.
func InstallNativeIOSGraphics(reg *prog.Registry, gl *GLES, bridge *EAGLBridge, gralloc *Gralloc, openGLESPath, iosurfacePath string) error {
	for _, name := range GLFunctions {
		fname := name
		if err := reg.Register(prog.SymbolKey(openGLESPath, "_"+fname), func(c *prog.Call) uint64 {
			t, ok := c.Ctx.(*kernel.Thread)
			if !ok {
				return 0
			}
			return gl.Invoke(t, fname, c.Args)
		}); err != nil {
			return err
		}
	}
	for _, name := range EGLBridgeFunctions {
		fname := name
		if err := reg.Register(prog.SymbolKey(openGLESPath, "_"+fname), func(c *prog.Call) uint64 {
			t, ok := c.Ctx.(*kernel.Thread)
			if !ok {
				return 0
			}
			return bridge.invoke(t, fname, c.Args)
		}); err != nil {
			return err
		}
	}
	for _, name := range IOSurfaceExports {
		fname := strings.TrimPrefix(name, "_")
		var fn func(t *kernel.Thread, args []uint64) uint64
		switch fname {
		case "IOSurfaceCreate":
			fn = func(t *kernel.Thread, args []uint64) uint64 {
				b, err := gralloc.Alloc(t, int(idx(args, 0)), int(idx(args, 1)), 4)
				if err != nil {
					return 0
				}
				return b.ID
			}
		case "IOSurfaceGetWidth":
			fn = func(t *kernel.Thread, args []uint64) uint64 {
				if b, ok := gralloc.Get(idx(args, 0)); ok {
					return uint64(b.Width)
				}
				return 0
			}
		case "IOSurfaceGetHeight":
			fn = func(t *kernel.Thread, args []uint64) uint64 {
				if b, ok := gralloc.Get(idx(args, 0)); ok {
					return uint64(b.Height)
				}
				return 0
			}
		default:
			fn = func(t *kernel.Thread, args []uint64) uint64 { return 0 }
		}
		f := fn
		if err := reg.Register(prog.SymbolKey(iosurfacePath, name), func(c *prog.Call) uint64 {
			t, ok := c.Ctx.(*kernel.Thread)
			if !ok {
				return 0
			}
			return f(t, c.Args)
		}); err != nil {
			return err
		}
	}
	return nil
}

// GL is an app-side binding: function pointers resolved through dyld, the
// way a real app's lazy stubs bind GL entry points.
type GL struct {
	t   *kernel.Thread
	fns map[string]prog.Func
}

// BindIOSGL resolves the iOS GL + EAGL + IOSurface surface for the calling
// thread's process. Every resolved symbol goes through the loaded-image
// table, so interposition (Cider's replacement libraries) takes effect
// exactly as on device.
func BindIOSGL(t *kernel.Thread) (*GL, error) {
	g := &GL{t: t, fns: make(map[string]prog.Func)}
	for _, sym := range append(IOSGLExports(), IOSurfaceExports...) {
		fn, ok := dyld.ResolveSymbol(t, sym)
		if !ok {
			return nil, fmt.Errorf("graphics: dyld cannot resolve %s", sym)
		}
		g.fns[sym] = fn
	}
	return g, nil
}

// Call invokes a bound symbol.
func (g *GL) Call(sym string, args ...uint64) uint64 {
	fn, ok := g.fns[sym]
	if !ok {
		return ^uint64(0)
	}
	return fn(&prog.Call{Ctx: g.t, Args: args})
}

func parseMachO(fs *vfs.FS, path string) (*macho.File, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return macho.Parse(data)
}

func parseELF(fs *vfs.FS, path string) (*elfx.File, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return elfx.Parse(data)
}
