package graphics

import (
	"time"

	"repro/internal/gpu"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/prog"
)

// GLESv2Path is the Android GLES driver library.
const GLESv2Path = "/system/lib/libGLESv2.so"

// EGLPath is the Android EGL library.
const EGLPath = "/system/lib/libEGL.so"

// GLFunctions is the exported surface of libGLESv2.so: the standardized
// OpenGL ES 2.0 API subset the simulation implements. These are the
// symbols the diplomat generator matches against the iOS framework's
// exports (Section 5.3).
var GLFunctions = []string{
	"glActiveTexture", "glAttachShader", "glBindBuffer", "glBindFramebuffer",
	"glBindRenderbuffer", "glBindTexture", "glBlendFunc", "glBufferData",
	"glClear", "glClearColor", "glCompileShader", "glCreateProgram",
	"glCreateShader", "glDeleteBuffers", "glDeleteTextures", "glDisable",
	"glDrawArrays", "glDrawElements", "glEnable", "glFenceSync", "glFinish",
	"glFlush", "glGenBuffers", "glGenFramebuffers", "glGenRenderbuffers",
	"glGenTextures", "glGetError", "glGetShaderiv", "glLinkProgram",
	"glScissor", "glShaderSource", "glTexImage2D", "glTexParameteri",
	"glUniform1f", "glUniform4fv", "glUniformMatrix4fv", "glUseProgram",
	"glVertexAttribPointer", "glViewport", "glWaitSync", "glClientWaitSync",
	"glReadPixels", "glBlendEquation", "glCullFace", "glDepthFunc",
	"glDepthMask", "glFrontFace", "glGenerateMipmap", "glPixelStorei",
	"glStencilFunc", "glStencilOp",
}

// EGLFunctions is the exported surface of libEGL.so.
var EGLFunctions = []string{
	"eglGetDisplay", "eglInitialize", "eglChooseConfig", "eglCreateContext",
	"eglCreateWindowSurface", "eglDestroyContext", "eglDestroySurface",
	"eglMakeCurrent", "eglSwapBuffers", "eglTerminate", "eglGetError",
}

// Context is one GL rendering context's state.
type Context struct {
	// Surface is the attached window memory.
	Surface *Surface
	// ViewportW and ViewportH bound raster output.
	ViewportW, ViewportH int
	// PixelsPerVertex estimates raster load per transformed vertex.
	PixelsPerVertex int
	// boundProgram and error model the API state machine minimally.
	boundProgram uint64
	lastError    uint64
	// pendingFence is the most recent glFenceSync object.
	pendingFence *gpu.Fence
	nextName     uint64
	// BuggyFence reproduces the Cider prototype's incorrect fence
	// synchronization (Section 6.3): waits over-synchronize, draining the
	// whole pipeline instead of waiting for the fence point. Set on
	// contexts created through Cider's replacement library.
	BuggyFence bool
}

// GLES is the domestic OpenGL ES driver library instance: proprietary
// code that talks to the GPU through device-specific ioctls, exposed to
// apps only through the standard GL API.
type GLES struct {
	gpu *gpu.GPU
	// driverCost is the per-call CPU cost inside the driver (command
	// encoding, state validation).
	driverCost time.Duration
	// current maps thread ids to their current context.
	current map[int]*Context
}

// NewGLES builds the driver library for a GPU.
func NewGLES(g *gpu.GPU, cpu *hw.CPUModel) *GLES {
	return &GLES{
		gpu:        g,
		driverCost: cpu.Cycles(1100), // ~0.85 µs per GL call
		current:    make(map[int]*Context),
	}
}

// GPU exposes the engine (tests, compositor sharing).
func (gl *GLES) GPU() *gpu.GPU { return gl.gpu }

// NewContext creates a context sized to a surface.
func (gl *GLES) NewContext(s *Surface) *Context {
	c := &Context{Surface: s, PixelsPerVertex: 24, nextName: 1}
	if s != nil {
		c.ViewportW, c.ViewportH = s.Buf.Width, s.Buf.Height
	}
	return c
}

// MakeCurrent binds a context to the calling thread.
func (gl *GLES) MakeCurrent(t *kernel.Thread, c *Context) {
	gl.current[t.TID()] = c
}

// Current returns the calling thread's context.
func (gl *GLES) Current(t *kernel.Thread) *Context {
	return gl.current[t.TID()]
}

// glInvalidOperation is GL_INVALID_OPERATION.
const glInvalidOperation = 0x0502

// Invoke executes one GL API call by name. Every call pays the driver
// cost; draw-class calls also submit GPU work sized from context state.
func (gl *GLES) Invoke(t *kernel.Thread, name string, args []uint64) uint64 {
	t.Charge(gl.driverCost)
	ctx := gl.current[t.TID()]
	if ctx == nil {
		// No current context: only error queries behave.
		if name == "glGetError" {
			return glInvalidOperation
		}
		return 0
	}
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch name {
	case "glViewport":
		ctx.ViewportW, ctx.ViewportH = int(arg(2)), int(arg(3))
	case "glClear":
		gl.gpu.Fill(t, int64(ctx.ViewportW*ctx.ViewportH))
	case "glDrawArrays":
		// (mode, first, count)
		gl.draw(t, ctx, int64(arg(2)))
	case "glDrawElements":
		// (mode, count, type, indices)
		gl.draw(t, ctx, int64(arg(1)))
	case "glTexImage2D":
		// (target, level, ifmt, w, h, border, fmt, type, data)
		gl.gpu.Upload(t, int64(arg(3)*arg(4))*4)
	case "glBufferData":
		gl.gpu.Upload(t, int64(arg(1)))
	case "glReadPixels":
		// Synchronous readback: drains the pipeline.
		gl.gpu.Finish(t)
	case "glFenceSync":
		ctx.pendingFence = gl.gpu.CreateFence(t)
		ctx.nextName++
		return ctx.nextName - 1
	case "glClientWaitSync", "glWaitSync":
		if ctx.pendingFence != nil {
			if ctx.BuggyFence {
				// The prototype bug: over-synchronize (drain the queue
				// and pay extra interrupt latency) instead of waiting on
				// the fence point.
				gl.gpu.Finish(t)
				t.Charge(3 * gl.gpu.Model().FenceLatency)
			} else {
				gl.gpu.WaitFence(t, ctx.pendingFence)
			}
		}
	case "glFinish":
		gl.gpu.Finish(t)
	case "glFlush":
		gl.gpu.Command(t)
	case "glCreateProgram", "glCreateShader", "glGenBuffers", "glGenTextures",
		"glGenFramebuffers", "glGenRenderbuffers":
		ctx.nextName++
		return ctx.nextName - 1
	case "glUseProgram":
		ctx.boundProgram = arg(0)
	case "glGetError":
		e := ctx.lastError
		ctx.lastError = 0
		return e
	case "glCompileShader", "glLinkProgram":
		// Shader compilation is real work in the driver.
		t.Charge(gl.driverCost * 40)
	default:
		// State changes: one command-stream write.
		gl.gpu.Command(t)
	}
	return 0
}

func (gl *GLES) draw(t *kernel.Thread, ctx *Context, vertices int64) {
	pixels := vertices * int64(ctx.PixelsPerVertex)
	max := int64(ctx.ViewportW * ctx.ViewportH)
	if pixels > max {
		pixels = max
	}
	gl.gpu.Draw(t, vertices, pixels)
}

// RegisterExports registers every GL function under the library's symbol
// keys, so ELF loading/diplomat generation resolve them like real exports.
func (gl *GLES) RegisterExports(reg *prog.Registry, soPath string) error {
	for _, name := range GLFunctions {
		fname := name
		if err := reg.Register(prog.SymbolKey(soPath, fname), func(c *prog.Call) uint64 {
			t, ok := c.Ctx.(*kernel.Thread)
			if !ok {
				return 0
			}
			return gl.Invoke(t, fname, c.Args)
		}); err != nil {
			return err
		}
	}
	return nil
}

// EGL is the domestic Native Platform Graphics Interface library.
type EGL struct {
	gl *GLES
	sf *SurfaceFlinger
}

// NewEGL assembles libEGL over the driver and the compositor.
func NewEGL(gl *GLES, sf *SurfaceFlinger) *EGL {
	return &EGL{gl: gl, sf: sf}
}

// CreateWindowSurface allocates window memory through SurfaceFlinger.
func (e *EGL) CreateWindowSurface(t *kernel.Thread, name string, w, h int) (*Surface, error) {
	return e.sf.CreateSurface(t, name, w, h)
}

// CreateContext builds a GL context for a surface.
func (e *EGL) CreateContext(t *kernel.Thread, s *Surface) *Context {
	return e.gl.NewContext(s)
}

// MakeCurrent binds the context on the calling thread.
func (e *EGL) MakeCurrent(t *kernel.Thread, c *Context) {
	e.gl.MakeCurrent(t, c)
}

// SwapBuffers queues the rendered buffer, runs a composition pass, and
// blocks until the frame reaches scan-out (double-buffered swap).
func (e *EGL) SwapBuffers(t *kernel.Thread, c *Context) {
	if c == nil || c.Surface == nil {
		return
	}
	e.sf.QueueBuffer(t, c.Surface)
	fence := e.sf.Composite(t)
	e.gl.gpu.WaitFence(t, fence)
}

// GLES exposes the driver library.
func (e *EGL) GLES() *GLES { return e.gl }

// SurfaceFlinger exposes the compositor.
func (e *EGL) SurfaceFlinger() *SurfaceFlinger { return e.sf }
