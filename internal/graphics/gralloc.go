// Package graphics implements both graphics stacks of Section 5.3:
//
//   - The domestic Android stack: gralloc graphics-memory allocation,
//     SurfaceFlinger composition, libEGL, and libGLESv2 driving the GPU
//     simulator through proprietary-shaped interfaces.
//
//   - The foreign iOS-facing stack Cider builds on top of it: the
//     IOSurface replacement library whose key entry points are interposed
//     with diplomats into gralloc, the wholesale diplomatic replacement of
//     the iOS OpenGL ES framework, and libEGLbridge — the custom Android
//     library implementing Apple's EAGL extensions over libEGL and
//     SurfaceFlinger.
package graphics

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// GrallocPath is the HAL module's install path on the Nexus 7 ("grouper").
const GrallocPath = "/system/lib/hw/gralloc.grouper.so"

// Buffer is a gralloc graphics buffer: shareable backing memory plus
// layout, the Android analogue of an IOSurface.
type Buffer struct {
	// ID is the buffer handle.
	ID uint64
	// Width, Height and BPP describe the layout.
	Width, Height, BPP int
	// Backing is the shared pixel store (zero-copy across processes).
	Backing *mem.Backing
}

// Bytes returns the buffer size in bytes.
func (b *Buffer) Bytes() int64 { return int64(b.Width * b.Height * b.BPP) }

// Gralloc is the graphics-memory allocator HAL.
type Gralloc struct {
	cpu     *hw.CPUModel
	nextID  uint64
	buffers map[uint64]*Buffer
	// allocCost models ION/carveout allocation work.
	allocCost time.Duration
}

// NewGralloc builds the allocator for a device.
func NewGralloc(cpu *hw.CPUModel) *Gralloc {
	return &Gralloc{
		cpu:       cpu,
		nextID:    1,
		buffers:   make(map[uint64]*Buffer),
		allocCost: cpu.Cycles(39000), // ~30 µs: ION ioctl + map
	}
}

// Alloc allocates a w x h buffer with bpp bytes per pixel.
func (g *Gralloc) Alloc(t *kernel.Thread, w, h, bpp int) (*Buffer, error) {
	if w <= 0 || h <= 0 || bpp <= 0 {
		return nil, fmt.Errorf("gralloc: bad dimensions %dx%dx%d", w, h, bpp)
	}
	t.Charge(g.allocCost)
	b := &Buffer{
		ID:      g.nextID,
		Width:   w,
		Height:  h,
		BPP:     bpp,
		Backing: mem.NewBacking(uint64(w * h * bpp)),
	}
	g.nextID++
	g.buffers[b.ID] = b
	return b, nil
}

// Free releases a buffer.
func (g *Gralloc) Free(t *kernel.Thread, id uint64) error {
	if _, ok := g.buffers[id]; !ok {
		return fmt.Errorf("gralloc: no buffer %d", id)
	}
	t.Charge(g.allocCost / 2)
	delete(g.buffers, id)
	return nil
}

// Get resolves a buffer handle.
func (g *Gralloc) Get(id uint64) (*Buffer, bool) {
	b, ok := g.buffers[id]
	return b, ok
}

// Live reports outstanding buffers.
func (g *Gralloc) Live() int { return len(g.buffers) }
