package graphics

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/iokit"
	"repro/internal/kernel"
)

// Surface is a window: a gralloc-backed layer SurfaceFlinger composites.
type Surface struct {
	// Name labels the layer (app window title).
	Name string
	// Buf is the current window memory.
	Buf *Buffer
	// Visible marks the layer for composition.
	Visible bool
	// queuedFrames counts buffer queue events since the last composite.
	queuedFrames int
}

// SurfaceFlinger is Android's rendering engine: it hands out window
// memory and "uses the GPU to compose all the graphics surfaces for
// different apps and display the final composed surface to the screen"
// (Section 2).
type SurfaceFlinger struct {
	gralloc *Gralloc
	gpu     *gpu.GPU
	fb      *iokit.FBDevice
	layers  []*Surface
	// binderCost is the IPC cost of a client call into the service.
	binderCost time.Duration
	frames     uint64
}

// NewSurfaceFlinger assembles the compositor.
func NewSurfaceFlinger(g *gpu.GPU, gr *Gralloc, fb *iokit.FBDevice) *SurfaceFlinger {
	return &SurfaceFlinger{
		gralloc:    gr,
		gpu:        g,
		fb:         fb,
		binderCost: 26 * time.Microsecond,
	}
}

// Gralloc exposes the allocator (libEGLbridge and the IOSurface diplomats
// allocate through it).
func (sf *SurfaceFlinger) Gralloc() *Gralloc { return sf.gralloc }

// GPU exposes the composition engine.
func (sf *SurfaceFlinger) GPU() *gpu.GPU { return sf.gpu }

// Frames reports completed composition passes.
func (sf *SurfaceFlinger) Frames() uint64 { return sf.frames }

// Layers reports the current layer count.
func (sf *SurfaceFlinger) Layers() int { return len(sf.layers) }

// CreateSurface allocates window memory for a client (binder call).
func (sf *SurfaceFlinger) CreateSurface(t *kernel.Thread, name string, w, h int) (*Surface, error) {
	t.Charge(sf.binderCost)
	buf, err := sf.gralloc.Alloc(t, w, h, 4)
	if err != nil {
		return nil, err
	}
	s := &Surface{Name: name, Buf: buf, Visible: true}
	sf.layers = append(sf.layers, s)
	return s, nil
}

// DestroySurface removes a layer and frees its memory.
func (sf *SurfaceFlinger) DestroySurface(t *kernel.Thread, s *Surface) error {
	t.Charge(sf.binderCost)
	for i, l := range sf.layers {
		if l == s {
			sf.layers = append(sf.layers[:i], sf.layers[i+1:]...)
			return sf.gralloc.Free(t, s.Buf.ID)
		}
	}
	return fmt.Errorf("surfaceflinger: unknown surface %q", s.Name)
}

// QueueBuffer submits a rendered buffer for the next composition (the
// client half of eglSwapBuffers).
func (sf *SurfaceFlinger) QueueBuffer(t *kernel.Thread, s *Surface) {
	t.Charge(sf.binderCost)
	s.queuedFrames++
}

// Composite runs one composition pass: blend every visible layer on the
// GPU and flip the framebuffer. The returned fence signals scan-out; a
// swapping client waits on it (double-buffered rendering).
func (sf *SurfaceFlinger) Composite(t *kernel.Thread) *gpu.Fence {
	for _, l := range sf.layers {
		if !l.Visible {
			continue
		}
		sf.gpu.Fill(t, int64(l.Buf.Width*l.Buf.Height))
		l.queuedFrames = 0
	}
	fence := sf.gpu.Present(t)
	if sf.fb != nil {
		// Page flip through the Linux framebuffer driver.
		sf.fb.Flip()
	}
	sf.frames++
	return fence
}
