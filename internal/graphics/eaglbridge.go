package graphics

import (
	"repro/internal/kernel"
	"repro/internal/prog"
)

// EGLBridgePath is Cider's custom Android library implementing Apple's
// EAGL extensions over libEGL and SurfaceFlinger (Section 5.3):
// "a custom domestic Android library, called libEGLbridge, that utilizes
// Android's libEGL library and SurfaceFlinger service to provide
// functionality corresponding to the missing EAGL functions."
const EGLBridgePath = "/system/lib/libEGLbridge.so"

// EGLBridgeFunctions is libEGLbridge's export list. The names mirror the
// EAGL API (underscore-stripped), so the diplomat generator pairs each
// Apple EAGL entry point with its bridge implementation automatically.
var EGLBridgeFunctions = []string{
	"EAGLContextCreate",
	"EAGLContextSetCurrent",
	"EAGLRenderbufferStorageFromDrawable",
	"EAGLContextPresentRenderbuffer",
	"EAGLContextDestroy",
}

// EAGLBridge is the library instance: it owns handle tables translating
// EAGL's object model onto EGL contexts and SurfaceFlinger surfaces.
type EAGLBridge struct {
	egl      *EGL
	nextID   uint64
	contexts map[uint64]*Context
	// FenceBug marks contexts created through this bridge with the Cider
	// prototype's incorrect fence synchronization (Section 6.3). Set on
	// the Cider configuration; off on the iPad and after the ablation fix.
	FenceBug bool
	// StrictSingleThread reproduces the other prototype limitation of
	// Section 6.4: "the iOS WebKit framework is only partially supported
	// due to its multi-threaded use of the OpenGL ES API" — a context
	// current on one thread cannot be made current on another.
	StrictSingleThread bool
	// boundTo tracks which thread each context is current on.
	boundTo map[uint64]int
}

// NewEAGLBridge builds the bridge over libEGL.
func NewEAGLBridge(egl *EGL) *EAGLBridge {
	return &EAGLBridge{
		egl: egl, nextID: 1,
		contexts: make(map[uint64]*Context),
		boundTo:  make(map[uint64]int),
	}
}

// Contexts reports live EAGL contexts.
func (b *EAGLBridge) Contexts() int { return len(b.contexts) }

// Lookup resolves an EAGL context handle (tests).
func (b *EAGLBridge) Lookup(h uint64) (*Context, bool) {
	c, ok := b.contexts[h]
	return c, ok
}

// invoke dispatches one bridge call.
func (b *EAGLBridge) invoke(t *kernel.Thread, name string, args []uint64) uint64 {
	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch name {
	case "EAGLContextCreate":
		c := b.egl.CreateContext(t, nil)
		c.BuggyFence = b.FenceBug
		h := b.nextID
		b.nextID++
		b.contexts[h] = c
		return h
	case "EAGLContextSetCurrent":
		c, ok := b.contexts[arg(0)]
		if !ok {
			return 0
		}
		if b.StrictSingleThread {
			if owner, bound := b.boundTo[arg(0)]; bound && owner != t.TID() {
				// The prototype's replacement library cannot migrate a
				// context between threads — WebKit's multi-threaded GL
				// usage fails here (§6.4).
				return 0
			}
		}
		b.boundTo[arg(0)] = t.TID()
		b.egl.MakeCurrent(t, c)
		return 1
	case "EAGLRenderbufferStorageFromDrawable":
		// (ctx, width, height): allocate window memory via SurfaceFlinger,
		// the same path all Android windows take — which is how Cider gets
		// iOS windows managed like Android windows.
		c, ok := b.contexts[arg(0)]
		if !ok {
			return 0
		}
		s, err := b.egl.CreateWindowSurface(t, "eagl-drawable", int(arg(1)), int(arg(2)))
		if err != nil {
			return 0
		}
		c.Surface = s
		c.ViewportW, c.ViewportH = s.Buf.Width, s.Buf.Height
		return 1
	case "EAGLContextPresentRenderbuffer":
		c, ok := b.contexts[arg(0)]
		if !ok {
			return 0
		}
		b.egl.SwapBuffers(t, c)
		return 1
	case "EAGLContextDestroy":
		c, ok := b.contexts[arg(0)]
		if !ok {
			return 0
		}
		if c.Surface != nil {
			b.egl.SurfaceFlinger().DestroySurface(t, c.Surface)
		}
		delete(b.contexts, arg(0))
		delete(b.boundTo, arg(0))
		return 1
	}
	return 0
}

// RegisterExports publishes the bridge's symbols.
func (b *EAGLBridge) RegisterExports(reg *prog.Registry) error {
	for _, name := range EGLBridgeFunctions {
		fname := name
		if err := reg.Register(prog.SymbolKey(EGLBridgePath, fname), func(c *prog.Call) uint64 {
			t, ok := c.Ctx.(*kernel.Thread)
			if !ok {
				return 0
			}
			return b.invoke(t, fname, c.Args)
		}); err != nil {
			return err
		}
	}
	return nil
}
