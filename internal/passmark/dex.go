package passmark

import "repro/internal/dalvik"

// buildAppDex assembles the Android PassMark app's bytecode: the CPU and
// memory workloads as genuine DEX methods the Dalvik VM interprets. The
// method bodies are the same algorithms the native iOS build runs
// (native.go); equivalence is asserted by tests via their checksums.
func buildAppDex() (*dalvik.File, error) {
	methods := []func() (dalvik.Method, error){
		dexInteger, dexFloating, dexPrimes, dexStringSort,
		dexEncrypt, dexCompress, dexMemWrite, dexMemRead,
	}
	f := &dalvik.File{}
	for _, mk := range methods {
		m, err := mk()
		if err != nil {
			return nil, err
		}
		f.Methods = append(f.Methods, m)
	}
	return f, nil
}

// dexInteger: the integer math loop — adds, multiplies, divides, shifts.
// arg r0 = iterations; returns a checksum.
func dexInteger() (dalvik.Method, error) {
	return dalvik.NewAssembler("integer", 12).
		Const(1, 0).     // acc
		Const(2, 0).     // i
		Const(3, 1).     // 1
		Const(4, 12345). // a
		Const(5, 7).     // b
		Label("loop").
		Op3(dalvik.OpCmp, 6, 2, 0).
		If(6, dalvik.IfGe, "done").
		Op3(dalvik.OpAdd, 1, 1, 4).
		Op3(dalvik.OpMul, 7, 2, 5).
		Op3(dalvik.OpXor, 1, 1, 7).
		Op3(dalvik.OpDiv, 8, 4, 5).
		Op3(dalvik.OpAdd, 1, 1, 8).
		Op3(dalvik.OpShl, 9, 2, 3).
		Op3(dalvik.OpOr, 1, 1, 9).
		Op3(dalvik.OpAdd, 2, 2, 3).
		Goto("loop").
		Label("done").
		Return(1).
		Assemble()
}

// dexFloating: the floating point loop — double mul/add/div chains.
// arg r0 = iterations; returns the f64 bits of the accumulator.
func dexFloating() (dalvik.Method, error) {
	return dalvik.NewAssembler("floating", 12).
		Const(1, 10001).
		Const(2, 10000).
		Op3(dalvik.OpI2D, 3, 1, 0).  // 10001.0
		Op3(dalvik.OpI2D, 4, 2, 0).  // 10000.0
		Op3(dalvik.OpDDiv, 5, 3, 4). // 1.0001
		Const(6, 1).
		Op3(dalvik.OpI2D, 7, 6, 0). // acc = 1.0
		Const(8, 0).                // i
		Label("loop").
		Op3(dalvik.OpCmp, 9, 8, 0).
		If(9, dalvik.IfGe, "done").
		Op3(dalvik.OpDMul, 7, 7, 5).
		Op3(dalvik.OpDAdd, 7, 7, 5).
		Op3(dalvik.OpDDiv, 7, 7, 5).
		Op3(dalvik.OpAdd, 8, 8, 6).
		Goto("loop").
		Label("done").
		Return(7).
		Assemble()
}

// dexPrimes: trial-division prime counting; arg r0 = N; returns count.
func dexPrimes() (dalvik.Method, error) {
	return dalvik.NewAssembler("primes", 12).
		Const(1, 0). // count
		Const(2, 2). // i
		Const(3, 1). // 1
		Label("outer").
		Op3(dalvik.OpCmp, 4, 2, 0).
		If(4, dalvik.IfGe, "done").
		Const(5, 2). // j
		Const(6, 1). // prime flag
		Label("inner").
		Op3(dalvik.OpMul, 7, 5, 5).
		Op3(dalvik.OpCmp, 8, 7, 2).
		If(8, dalvik.IfGt, "innerdone").
		Op3(dalvik.OpRem, 9, 2, 5).
		If(9, dalvik.IfEq, "notprime").
		Op3(dalvik.OpAdd, 5, 5, 3).
		Goto("inner").
		Label("notprime").
		Const(6, 0).
		Label("innerdone").
		Op3(dalvik.OpAdd, 1, 1, 6).
		Op3(dalvik.OpAdd, 2, 2, 3).
		Goto("outer").
		Label("done").
		Return(1).
		Assemble()
}

// dexStringSort: fill an array of n pseudo-random keys (the "random
// string" sort keys) and bubble-sort it; arg r0 = n; returns a checksum.
func dexStringSort() (dalvik.Method, error) {
	return dalvik.NewAssembler("stringsort", 16).
		NewArr(1, 0).    // arr[n]
		Const(2, 12345). // seed
		Const(3, 1103515245).
		Const(4, 65535).
		Const(5, 1).
		Const(6, 0). // i
		Label("fill").
		Op3(dalvik.OpCmp, 7, 6, 0).
		If(7, dalvik.IfGe, "sort").
		Op3(dalvik.OpMul, 2, 2, 3).
		Const(8, 12345).
		Op3(dalvik.OpAdd, 2, 2, 8).
		Op3(dalvik.OpAnd, 9, 2, 4).
		AStore(1, 6, 9).
		Op3(dalvik.OpAdd, 6, 6, 5).
		Goto("fill").
		Label("sort").
		// pass counter r10 = 0; limit n-1.
		Const(10, 0).
		Op3(dalvik.OpSub, 11, 0, 5). // n-1
		Label("pass").
		Op3(dalvik.OpCmp, 7, 10, 11).
		If(7, dalvik.IfGe, "sum").
		Const(6, 0). // j
		Label("bubble").
		Op3(dalvik.OpCmp, 7, 6, 11).
		If(7, dalvik.IfGe, "passnext").
		ALoad(12, 1, 6).
		Op3(dalvik.OpAdd, 8, 6, 5).
		ALoad(13, 1, 8).
		Op3(dalvik.OpCmp, 7, 12, 13).
		If(7, dalvik.IfLe, "noswap").
		AStore(1, 6, 13).
		AStore(1, 8, 12).
		Label("noswap").
		Op3(dalvik.OpAdd, 6, 6, 5).
		Goto("bubble").
		Label("passnext").
		Op3(dalvik.OpAdd, 10, 10, 5).
		Goto("pass").
		Label("sum").
		Const(6, 0).
		Const(14, 0). // checksum
		Label("sumloop").
		Op3(dalvik.OpCmp, 7, 6, 0).
		If(7, dalvik.IfGe, "done").
		ALoad(12, 1, 6).
		Op3(dalvik.OpAdd, 14, 14, 12).
		Op3(dalvik.OpAdd, 6, 6, 5).
		Goto("sumloop").
		Label("done").
		Return(14).
		Assemble()
}

// dexEncrypt: RC4-style keystream generation; arg r0 = bytes; returns a
// checksum of the stream.
func dexEncrypt() (dalvik.Method, error) {
	return dalvik.NewAssembler("encrypt", 16).
		Const(1, 256).
		NewArr(2, 1). // state S[256]
		Const(3, 1).
		Const(4, 0). // i
		Label("init").
		Op3(dalvik.OpCmp, 5, 4, 1).
		If(5, dalvik.IfGe, "stream").
		AStore(2, 4, 4). // S[i] = i
		Op3(dalvik.OpAdd, 4, 4, 3).
		Goto("init").
		Label("stream").
		Const(4, 0). // i
		Const(6, 0). // j
		Const(7, 0). // n (bytes produced)
		Const(8, 255).
		Const(14, 0). // checksum
		Label("loop").
		Op3(dalvik.OpCmp, 5, 7, 0).
		If(5, dalvik.IfGe, "done").
		Op3(dalvik.OpAdd, 4, 4, 3).
		Op3(dalvik.OpAnd, 4, 4, 8). // i = (i+1)&255
		ALoad(9, 2, 4).             // S[i]
		Op3(dalvik.OpAdd, 6, 6, 9).
		Op3(dalvik.OpAnd, 6, 6, 8). // j = (j+S[i])&255
		ALoad(10, 2, 6).            // S[j]
		AStore(2, 4, 10).           // swap
		AStore(2, 6, 9).
		Op3(dalvik.OpAdd, 11, 9, 10).
		Op3(dalvik.OpAnd, 11, 11, 8).
		ALoad(12, 2, 11). // k = S[(S[i]+S[j])&255]
		Op3(dalvik.OpXor, 14, 14, 12).
		Op3(dalvik.OpAdd, 7, 7, 3).
		Goto("loop").
		Label("done").
		Return(14).
		Assemble()
}

// dexCompress: run-length scan over pseudo-random data; arg r0 = bytes;
// returns the run count.
func dexCompress() (dalvik.Method, error) {
	return dalvik.NewAssembler("compress", 16).
		Const(1, 0).     // runs
		Const(2, -1).    // prev
		Const(3, 12345). // seed
		Const(4, 1103515245).
		Const(5, 7). // value mask: few distinct symbols -> real runs
		Const(6, 1).
		Const(7, 0). // i
		Label("loop").
		Op3(dalvik.OpCmp, 8, 7, 0).
		If(8, dalvik.IfGe, "done").
		Op3(dalvik.OpMul, 3, 3, 4).
		Const(9, 12345).
		Op3(dalvik.OpAdd, 3, 3, 9).
		Const(10, 16).
		Op3(dalvik.OpShr, 11, 3, 10).
		Op3(dalvik.OpAnd, 11, 11, 5). // value in 0..7
		Op3(dalvik.OpSub, 12, 11, 2). // value - prev
		If(12, dalvik.IfEq, "same").
		Op3(dalvik.OpAdd, 1, 1, 6). // new run
		Move(2, 11).                // prev = value
		Label("same").
		Op3(dalvik.OpAdd, 7, 7, 6).
		Goto("loop").
		Label("done").
		Return(1).
		Assemble()
}

// dexMemWrite: streaming stores over a buffer; arg r0 = elements; 8
// passes. Returns 0.
func dexMemWrite() (dalvik.Method, error) {
	return dalvik.NewAssembler("memwrite", 12).
		NewArr(1, 0).
		Const(2, 1).
		Const(3, 0). // pass
		Const(4, 8). // passes
		Label("pass").
		Op3(dalvik.OpCmp, 5, 3, 4).
		If(5, dalvik.IfGe, "done").
		Const(6, 0). // i
		Label("loop").
		Op3(dalvik.OpCmp, 5, 6, 0).
		If(5, dalvik.IfGe, "next").
		AStore(1, 6, 6).
		Op3(dalvik.OpAdd, 6, 6, 2).
		Goto("loop").
		Label("next").
		Op3(dalvik.OpAdd, 3, 3, 2).
		Goto("pass").
		Label("done").
		Const(7, 0).
		Return(7).
		Assemble()
}

// dexMemRead: one fill pass then 8 read passes; arg r0 = elements;
// returns the final sum.
func dexMemRead() (dalvik.Method, error) {
	return dalvik.NewAssembler("memread", 12).
		NewArr(1, 0).
		Const(2, 1).
		Const(6, 0).
		Label("fill").
		Op3(dalvik.OpCmp, 5, 6, 0).
		If(5, dalvik.IfGe, "reads").
		AStore(1, 6, 6).
		Op3(dalvik.OpAdd, 6, 6, 2).
		Goto("fill").
		Label("reads").
		Const(3, 0). // pass
		Const(4, 8).
		Const(8, 0). // sum
		Label("pass").
		Op3(dalvik.OpCmp, 5, 3, 4).
		If(5, dalvik.IfGe, "done").
		Const(6, 0).
		Label("loop").
		Op3(dalvik.OpCmp, 5, 6, 0).
		If(5, dalvik.IfGe, "next").
		ALoad(7, 1, 6).
		Op3(dalvik.OpAdd, 8, 8, 7).
		Op3(dalvik.OpAdd, 6, 6, 2).
		Goto("loop").
		Label("next").
		Op3(dalvik.OpAdd, 3, 3, 2).
		Goto("pass").
		Label("done").
		Return(8).
		Assemble()
}
