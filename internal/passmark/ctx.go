package passmark

import (
	"fmt"
	"time"

	"repro/internal/bionic"
	"repro/internal/core"
	"repro/internal/dalvik"
	"repro/internal/graphics"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
)

// ctx is the per-run environment.
type ctx struct {
	t     *kernel.Thread
	sys   *core.System
	build Build

	// Android build: the Dalvik VM and the app's dex.
	vm  *dalvik.VM
	dex *dalvik.File

	// iOS build: the dyld-bound GL surface and an EAGL context.
	gl      *graphics.GL
	eaglCtx uint64
	// androidSurface is the Android build's EGL window.
	androidSurface *graphics.Surface

	// toolchain scales native op costs (Xcode for the iOS build; the
	// Android app's native libraries are NDK/GCC built).
	toolchain *hw.Toolchain

	// pending batches native op charges.
	pending time.Duration
}

func wrapDriver(body func(t *kernel.Thread)) prog.Func {
	return func(c *prog.Call) uint64 {
		body(c.Ctx.(*kernel.Thread))
		return 0
	}
}

func newCtx(t *kernel.Thread, sys *core.System, build Build) (*ctx, error) {
	c := &ctx{t: t, sys: sys, build: build}
	if build == BuildAndroid {
		c.toolchain = hw.GCC441()
		c.vm = dalvik.NewVM(sys.Kernel.Device().CPU)
		dex, err := buildAppDex()
		if err != nil {
			return nil, err
		}
		c.dex = dex
		// The app's EGL window and GL context.
		s, err := sys.Gfx.SF.CreateSurface(t, "passmark", 1024, 768)
		if err != nil {
			return nil, err
		}
		c.androidSurface = s
		glctx := sys.Gfx.GLES.NewContext(s)
		sys.Gfx.GLES.MakeCurrent(t, glctx)
	} else {
		c.toolchain = hw.Xcode421()
		gl, err := graphics.BindIOSGL(t)
		if err != nil {
			return nil, err
		}
		c.gl = gl
		c.eaglCtx = gl.Call("_EAGLContextCreate")
		gl.Call("_EAGLContextSetCurrent", c.eaglCtx)
		if gl.Call("_EAGLRenderbufferStorageFromDrawable", c.eaglCtx, 1024, 768) != 1 {
			return nil, fmt.Errorf("passmark: no drawable")
		}
	}
	return c, nil
}

// ops charges n native operations of class op (batched).
func (c *ctx) ops(op hw.CPUOp, n int64) {
	cpu := c.sys.Kernel.Device().CPU
	c.pending += time.Duration(float64(cpu.OpTime(op, n)) * c.toolchain.OpScale(op))
	if c.pending > 50*time.Microsecond {
		c.flush()
	}
}

func (c *ctx) flush() {
	if c.pending > 0 {
		c.t.Charge(c.pending)
		c.pending = 0
	}
}

// timed runs fn and returns elapsed virtual time.
func (c *ctx) timed(fn func() error) (time.Duration, error) {
	c.flush()
	start := c.t.Now()
	err := fn()
	c.flush()
	return c.t.Now() - start, err
}

// libc returns file-op wrappers for the build's runtime.
func (c *ctx) creat(path string) (int, kernel.Errno) {
	if c.build == BuildIOS {
		return libsystem.Sys(c.t).Creat(path)
	}
	return bionic.Sys(c.t).Creat(path)
}

func (c *ctx) open(path string) (int, kernel.Errno) {
	if c.build == BuildIOS {
		return libsystem.Sys(c.t).Open(path)
	}
	return bionic.Sys(c.t).Open(path)
}

func (c *ctx) write(fd int, b []byte) (int, kernel.Errno) {
	if c.build == BuildIOS {
		return libsystem.Sys(c.t).Write(fd, b)
	}
	return bionic.Sys(c.t).Write(fd, b)
}

func (c *ctx) read(fd int, b []byte) (int, kernel.Errno) {
	if c.build == BuildIOS {
		return libsystem.Sys(c.t).Read(fd, b)
	}
	return bionic.Sys(c.t).Read(fd, b)
}

func (c *ctx) close(fd int) kernel.Errno {
	if c.build == BuildIOS {
		return libsystem.Sys(c.t).Close(fd)
	}
	return bionic.Sys(c.t).Close(fd)
}

func (c *ctx) unlink(path string) kernel.Errno {
	if c.build == BuildIOS {
		return libsystem.Sys(c.t).Unlink(path)
	}
	return bionic.Sys(c.t).Unlink(path)
}

func (c *ctx) tmpPath() string {
	if c.build == BuildIOS {
		return "/var/mobile/Documents/pm.dat"
	}
	return "/data/local/tmp/pm.dat"
}

// jniGL issues one GL call from the Android app: the Java-side dispatch
// plus JNI transition plus the native GLES driver call.
func (c *ctx) jniGL(name string, args ...uint64) uint64 {
	cpu := c.sys.Kernel.Device().CPU
	c.t.Charge(cpu.Cycles(260 + 30)) // JNI transition + Java dispatch
	return c.sys.Gfx.GLES.Invoke(c.t, name, args)
}

// iosGL issues one GL call from the iOS app — diplomatic on Cider, native
// on the iPad.
func (c *ctx) iosGL(name string, args ...uint64) uint64 {
	return c.gl.Call("_"+name, args...)
}

// glCall dispatches per build.
func (c *ctx) glCall(name string, args ...uint64) uint64 {
	if c.build == BuildIOS {
		return c.iosGL(name, args...)
	}
	return c.jniGL(name, args...)
}

// present ends a frame.
func (c *ctx) present() {
	if c.build == BuildIOS {
		c.gl.Call("_EAGLContextPresentRenderbuffer", c.eaglCtx)
		return
	}
	// The Android app swaps through EGL: queue + composite + fence wait.
	sf := c.sys.Gfx.SF
	sf.QueueBuffer(c.t, c.androidSurface)
	fence := sf.Composite(c.t)
	c.sys.GPU.WaitFence(c.t, fence)
}
