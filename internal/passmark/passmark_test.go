package passmark

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/prog"
)

var cachedReport *Report

func figure6(t *testing.T) *Report {
	t.Helper()
	if cachedReport == nil {
		rep, err := RunFigure6()
		if err != nil {
			t.Fatal(err)
		}
		cachedReport = rep
	}
	return cachedReport
}

func norm(t *testing.T, rep *Report, test, cfg string) float64 {
	t.Helper()
	v, ok := rep.Normalized(test, cfg)
	if !ok {
		t.Fatalf("%s/%s missing", test, cfg)
	}
	return v
}

func TestCiderAddsNegligibleOverheadToAndroidApp(t *testing.T) {
	// "In all tests, Cider adds negligible overhead to the Android
	// PassMark app."
	rep := figure6(t)
	for _, test := range rep.Tests {
		v := norm(t, rep, test.Name, ConfigCiderAndroid)
		if v < 0.97 || v > 1.03 {
			t.Errorf("%s cider-android = %.3f, want ≈1.0", test.Name, v)
		}
	}
}

func TestCPUGroupNativeBeatsInterpreted(t *testing.T) {
	rep := figure6(t)
	// "Cider delivers significantly faster performance when running the
	// iOS PassMark app ... because the Android version is ... interpreted
	// through the Dalvik VM while the iOS version is ... native."
	for _, test := range []string{"integer math", "floating point", "find primes",
		"random string sort", "data encryption", "data compression"} {
		ciderIOS := norm(t, rep, test, ConfigCiderIOS)
		if ciderIOS < 2 {
			t.Errorf("%s cider-ios = %.2fx, want >> 1", test, ciderIOS)
		}
		// "Because the Android device contains a faster CPU than the iPad
		// mini, Cider outperforms iOS when running the CPU tests from the
		// same iOS PassMark application binary."
		ipad := norm(t, rep, test, ConfigIPad)
		if ipad <= 1 {
			t.Errorf("%s ipad = %.2fx, want > 1", test, ipad)
		}
		if ciderIOS <= ipad {
			t.Errorf("%s: cider-ios (%.2f) must beat ipad (%.2f)", test, ciderIOS, ipad)
		}
	}
}

func TestStorageShape(t *testing.T) {
	rep := figure6(t)
	// "The iPad mini has much better storage write performance than either
	// the iOS or Android app running on Cider."
	ipadWrite := norm(t, rep, "storage write", ConfigIPad)
	if ipadWrite < 2 {
		t.Errorf("storage write ipad = %.2fx, want >> 1", ipadWrite)
	}
	// "Cider has similar storage read performance to the iPad mini."
	ciderRead := norm(t, rep, "storage read", ConfigCiderIOS)
	ipadRead := norm(t, rep, "storage read", ConfigIPad)
	if ipadRead/ciderRead > 1.3 || ciderRead/ipadRead > 1.3 {
		t.Errorf("storage read cider-ios %.2f vs ipad %.2f, want similar", ciderRead, ipadRead)
	}
}

func TestMemoryShape(t *testing.T) {
	rep := figure6(t)
	for _, test := range []string{"memory write", "memory read"} {
		ciderIOS := norm(t, rep, test, ConfigCiderIOS)
		ipad := norm(t, rep, test, ConfigIPad)
		if ciderIOS < 2 {
			t.Errorf("%s cider-ios = %.2fx, want >> 1 (native vs Dalvik)", test, ciderIOS)
		}
		// "Cider outperforms the iPad mini running the memory tests from
		// the same iOS PassMark app binary."
		if ciderIOS <= ipad {
			t.Errorf("%s: cider-ios (%.2f) must beat ipad (%.2f)", test, ciderIOS, ipad)
		}
	}
}

func Test2DShape(t *testing.T) {
	rep := figure6(t)
	// "With the exception of complex vectors, the Android app performs
	// much better than the iOS binary on both Cider and the iPad mini."
	for _, test := range []string{"solid vectors", "transparent vectors", "image rendering", "image filters"} {
		for _, cfg := range []string{ConfigCiderIOS, ConfigIPad} {
			if v := norm(t, rep, test, cfg); v >= 1 {
				t.Errorf("%s on %s = %.2fx, want < 1", test, cfg, v)
			}
		}
	}
	// Complex vectors: the iOS library wins.
	if v := norm(t, rep, "complex vectors", ConfigCiderIOS); v <= 1 {
		t.Errorf("complex vectors cider-ios = %.2fx, want > 1", v)
	}
	// The 2D tests are CPU bound, so Cider generally outperforms the iPad
	// on the same binary.
	for _, test := range []string{"solid vectors", "transparent vectors", "complex vectors", "image filters"} {
		ciderIOS := norm(t, rep, test, ConfigCiderIOS)
		ipad := norm(t, rep, test, ConfigIPad)
		if ciderIOS <= ipad {
			t.Errorf("%s: cider-ios (%.2f) should beat ipad (%.2f) (CPU bound)", test, ciderIOS, ipad)
		}
	}
	// "Bugs in the Cider OpenGL ES library related to fence
	// synchronization primitives caused under-performance in the image
	// rendering tests": Cider-iOS must trail even the iPad here.
	imgCider := norm(t, rep, "image rendering", ConfigCiderIOS)
	imgIPad := norm(t, rep, "image rendering", ConfigIPad)
	if imgCider >= imgIPad {
		t.Errorf("image rendering: cider-ios (%.2f) must trail ipad (%.2f) (fence bug)", imgCider, imgIPad)
	}
}

func Test3DShape(t *testing.T) {
	rep := figure6(t)
	// "Because the iPad mini has a faster GPU than the Nexus 7, it has
	// better 3D graphics performance."
	for _, test := range []string{"simple 3D", "complex 3D"} {
		if v := norm(t, rep, test, ConfigIPad); v <= 1 {
			t.Errorf("%s ipad = %.2fx, want > 1", test, v)
		}
	}
	// "The iOS binary running on Cider performs 20-37% worse than the
	// Android PassMark app due to the extra cost of diplomatic function
	// calls."
	simple := norm(t, rep, "simple 3D", ConfigCiderIOS)
	complex3d := norm(t, rep, "complex 3D", ConfigCiderIOS)
	if simple < 0.63 || simple > 0.83 {
		t.Errorf("simple 3D cider-ios = %.2fx, want within 20-37%% below android", simple)
	}
	if complex3d < 0.60 || complex3d > 0.80 {
		t.Errorf("complex 3D cider-ios = %.2fx, want within 20-37%% below android", complex3d)
	}
	// "As the complexity of a given frame increases, the number of OpenGL
	// ES calls increases, which correspondingly increases the overhead."
	if complex3d >= simple {
		t.Errorf("complex 3D (%.2f) must lose more than simple 3D (%.2f)", complex3d, simple)
	}
}

// TestChecksumEquivalence asserts that the DEX and native builds compute
// identical results — the Fig. 6 CPU comparison measures interpretation,
// not different algorithms.
func TestChecksumEquivalence(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		method string
		arg    int64
		native func(*ctx, int64) uint64
	}{
		{"integer", 500, nativeInteger},
		{"floating", 300, nativeFloating},
		{"primes", 200, nativePrimes},
		{"stringsort", 48, nativeStringSort},
		{"encrypt", 512, nativeEncrypt},
		{"compress", 1024, nativeCompress},
	}
	sys.InstallStaticAndroidBinary("/bin/eq", "eq", func(pc *prog.Call) uint64 {
		th := pc.Ctx.(*kernel.Thread)
		c, cerr := newCtx(th, sys, BuildAndroid)
		if cerr != nil {
			t.Error(cerr)
			return 1
		}
		for _, cs := range cases {
			dexRet, natRet, err := checksumPair(c, cs.method, cs.arg, cs.native)
			if err != nil {
				t.Errorf("%s: %v", cs.method, err)
				continue
			}
			if dexRet != natRet {
				t.Errorf("%s: dex=%#x native=%#x — builds diverge", cs.method, dexRet, natRet)
			}
		}
		c.flush()
		return 0
	})
	sys.Start("/bin/eq", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPrimesCountIsCorrect(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallStaticAndroidBinary("/bin/pc", "pc", func(pc *prog.Call) uint64 {
		th := pc.Ctx.(*kernel.Thread)
		c, _ := newCtx(th, sys, BuildAndroid)
		// 25 primes below 100.
		if got := nativePrimes(c, 100); got != 25 {
			t.Errorf("primes(100) = %d, want 25", got)
		}
		c.flush()
		return 0
	})
	sys.Start("/bin/pc", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderedReport(t *testing.T) {
	rep := figure6(t)
	out := rep.Render()
	for _, want := range []string{"Figure 6", "integer math", "complex 3D", "storage write"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestAblationFenceFix(t *testing.T) {
	// Repairing the GLES fence bug (paper future work) must lift the
	// image-rendering score on Cider-iOS.
	imageScore := func(fixed bool) float64 {
		sys, err := core.NewSystem(core.ConfigCider, core.Options{FixFences: &fixed})
		if err != nil {
			t.Fatal(err)
		}
		var score float64
		sys.InstallIOSBinary("/Applications/f.app/f", "fence-app", nil, func(pc *prog.Call) uint64 {
			th := pc.Ctx.(*kernel.Thread)
			c, cerr := newCtx(th, sys, BuildIOS)
			if cerr != nil {
				t.Error(cerr)
				return 1
			}
			work, elapsed, rerr := imageRenderTest().runIOS(c)
			if rerr != nil {
				t.Error(rerr)
				return 1
			}
			score = work / elapsed.Seconds()
			return 0
		})
		sys.Start("/Applications/f.app/f", nil)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return score
	}
	buggy := imageScore(false)
	fixedScore := imageScore(true)
	if fixedScore <= buggy*1.2 {
		t.Fatalf("fence fix: %.0f -> %.0f, want a clear improvement", buggy, fixedScore)
	}
}
