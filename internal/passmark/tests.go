package passmark

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
)

// Workload sizes (kept modest so the whole Fig. 6 battery runs quickly;
// scores are rates, so size only affects measurement noise, which the
// deterministic simulator does not have).
const (
	integerIters   = 30000
	floatingIters  = 20000
	primesN        = 2000
	sortN          = 96
	encryptBytes   = 8192
	compressBytes  = 16384
	memElements    = 32768 // x8 bytes x8 passes = 2 MB streamed
	diskChunk      = 16 << 10
	diskChunks     = 16
	vec2DItems     = 200
	imageItems     = 32
	framesPerScene = 10
)

// cpuTest builds a CPU-group test executing the named dex method on the
// Android build and the native function on the iOS build; the two must
// produce identical checksums (asserted in package tests).
func cpuTest(name, method string, arg int64, native func(*ctx, int64) uint64) Test {
	return Test{
		Name:  name,
		Group: "cpu",
		runAndroid: func(c *ctx) (float64, time.Duration, error) {
			var ret uint64
			elapsed, err := c.timed(func() error {
				var rerr error
				ret, rerr = c.vm.Run(c.t, c.dex, method, uint64(arg))
				return rerr
			})
			_ = ret
			return float64(arg), elapsed, err
		},
		runIOS: func(c *ctx) (float64, time.Duration, error) {
			var ret uint64
			elapsed, err := c.timed(func() error {
				ret = native(c, arg)
				return nil
			})
			_ = ret
			return float64(arg), elapsed, err
		},
	}
}

// checksumPair runs both builds of a CPU test outside the benchmark path
// (used by tests to assert algorithm equivalence).
func checksumPair(c *ctx, method string, arg int64, native func(*ctx, int64) uint64) (uint64, uint64, error) {
	dexRet, err := c.vm.Run(c.t, c.dex, method, uint64(arg))
	if err != nil {
		return 0, 0, err
	}
	return dexRet, native(c, arg), nil
}

// diskTest streams data through the filesystem.
func diskTest(name string, read bool) Test {
	run := func(c *ctx) (float64, time.Duration, error) {
		path := c.tmpPath()
		payload := make([]byte, diskChunk)
		fd, errno := c.creat(path)
		if errno != kernel.OK {
			return 0, 0, fmt.Errorf("passmark: creat: %v", errno)
		}
		// Write the file (setup for the read test; the measured phase for
		// the write test).
		var elapsed time.Duration
		writeAll := func() error {
			for i := 0; i < diskChunks; i++ {
				if _, errno := c.write(fd, payload); errno != kernel.OK {
					return fmt.Errorf("passmark: write: %v", errno)
				}
			}
			return nil
		}
		var err error
		if read {
			if err = writeAll(); err != nil {
				return 0, 0, err
			}
			c.close(fd)
			fd, errno = c.open(path)
			if errno != kernel.OK {
				return 0, 0, fmt.Errorf("passmark: open: %v", errno)
			}
			buf := make([]byte, diskChunk)
			elapsed, err = c.timed(func() error {
				for i := 0; i < diskChunks; i++ {
					if _, errno := c.read(fd, buf); errno != kernel.OK {
						return fmt.Errorf("passmark: read: %v", errno)
					}
				}
				return nil
			})
		} else {
			elapsed, err = c.timed(writeAll)
		}
		c.close(fd)
		c.unlink(path)
		return float64(diskChunk * diskChunks), elapsed, err
	}
	return Test{Name: name, Group: "storage", runAndroid: run, runIOS: run}
}

// memTest runs the streaming memory workloads.
func memTest(name, method string, native func(*ctx, int64) uint64) Test {
	return Test{
		Name:  name,
		Group: "memory",
		runAndroid: func(c *ctx) (float64, time.Duration, error) {
			elapsed, err := c.timed(func() error {
				_, rerr := c.vm.Run(c.t, c.dex, method, uint64(memElements))
				return rerr
			})
			return float64(memElements * 8 * 8), elapsed, err
		},
		runIOS: func(c *ctx) (float64, time.Duration, error) {
			elapsed, err := c.timed(func() error {
				native(c, memElements)
				return nil
			})
			return float64(memElements * 8 * 8), elapsed, err
		},
	}
}

// vec2DSpec describes one 2D CPU-rasterized workload: per-item pixel and
// ALU work plus the relative efficiency of each platform's 2D library
// ("this is most likely due to more efficient/optimized 2D drawing
// libraries in Android" — except complex vectors, where iOS wins).
type vec2DSpec struct {
	pixels, alu int64
	iosScale    float64
}

var vec2DSpecs = map[string]vec2DSpec{
	"solid vectors":       {pixels: 1200, alu: 260, iosScale: 1.65},
	"transparent vectors": {pixels: 1900, alu: 380, iosScale: 1.55},
	"complex vectors":     {pixels: 2600, alu: 1400, iosScale: 0.72},
	"image filters":       {pixels: 4200, alu: 6200, iosScale: 1.45},
}

func vec2DTest(name string) Test {
	spec := vec2DSpecs[name]
	run := func(c *ctx, scale float64) (float64, time.Duration, error) {
		cpu := c.sys.Kernel.Device().CPU
		elapsed, err := c.timed(func() error {
			for i := 0; i < vec2DItems; i++ {
				// Rasterization: load/blend/store per pixel plus setup ALU.
				d := cpu.OpTime(hw.OpLoad, spec.pixels) +
					cpu.OpTime(hw.OpStore, spec.pixels) +
					cpu.OpTime(hw.OpIntAdd, spec.alu)
				c.t.Charge(time.Duration(float64(d) * scale))
			}
			return nil
		})
		return float64(vec2DItems), elapsed, err
	}
	return Test{
		Name:  name,
		Group: "2d",
		runAndroid: func(c *ctx) (float64, time.Duration, error) {
			// Skia runs native under the Java app (JNI per item).
			c.t.Charge(c.sys.Kernel.Device().CPU.Cycles(260 * vec2DItems))
			return run(c, 1.0)
		},
		runIOS: func(c *ctx) (float64, time.Duration, error) {
			return run(c, spec.iosScale)
		},
	}
}

// imageRenderTest prepares (decode/convert, CPU), uploads and draws
// textures with a fence sync per image — the path the Cider GLES fence bug
// degrades. The iOS image pipeline pays the same 2D-library inefficiency
// as the vector tests.
func imageRenderTest() Test {
	run := func(c *ctx, prepScale float64) (float64, time.Duration, error) {
		cpu := c.sys.Kernel.Device().CPU
		elapsed, err := c.timed(func() error {
			for i := 0; i < imageItems; i++ {
				// Image decode + format conversion on the CPU.
				c.t.Charge(time.Duration(float64(cpu.Cycles(78000)) * prepScale))
				c.glCall("glTexImage2D", 0, 0, 0, 128, 128, 0, 0, 0, 0)
				c.glCall("glDrawArrays", 4, 0, 64)
				c.glCall("glFenceSync", 0, 0)
				c.glCall("glClientWaitSync", 0, 0, 0)
			}
			return nil
		})
		return float64(imageItems), elapsed, err
	}
	return Test{
		Name:       "image rendering",
		Group:      "2d",
		runAndroid: func(c *ctx) (float64, time.Duration, error) { return run(c, 1.0) },
		runIOS:     func(c *ctx) (float64, time.Duration, error) { return run(c, 1.5) },
	}
}

// scene3DTest renders frames of a 3D scene: calls GL per frame (mostly
// state changes, every 8th a draw) and presents. The per-call path is
// where diplomatic overhead accumulates — "as the complexity of a given
// frame increases, the number of OpenGL ES calls increases, which
// correspondingly increases the overhead."
func scene3DTest(name string, calls int, verts int64) Test {
	run := func(c *ctx) (float64, time.Duration, error) {
		draws := int64(calls / 8)
		vertsPerDraw := verts / draws
		elapsed, err := c.timed(func() error {
			for f := 0; f < framesPerScene; f++ {
				for k := 0; k < calls; k++ {
					if k%8 == 7 {
						c.glCall("glDrawArrays", 4, 0, uint64(vertsPerDraw))
					} else {
						c.glCall("glUniformMatrix4fv", uint64(k), 1, 0, 0)
					}
				}
				c.present()
			}
			return nil
		})
		return float64(framesPerScene), elapsed, err
	}
	return Test{Name: name, Group: "3d", runAndroid: run, runIOS: run}
}

// AllTests returns the full Fig. 6 battery in figure order.
func AllTests() []Test {
	return []Test{
		cpuTest("integer math", "integer", integerIters, nativeInteger),
		cpuTest("floating point", "floating", floatingIters, nativeFloating),
		cpuTest("find primes", "primes", primesN, nativePrimes),
		cpuTest("random string sort", "stringsort", sortN, nativeStringSort),
		cpuTest("data encryption", "encrypt", encryptBytes, nativeEncrypt),
		cpuTest("data compression", "compress", compressBytes, nativeCompress),

		diskTest("storage write", false),
		diskTest("storage read", true),

		memTest("memory write", "memwrite", nativeMemWrite),
		memTest("memory read", "memread", nativeMemRead),

		vec2DTest("solid vectors"),
		vec2DTest("transparent vectors"),
		vec2DTest("complex vectors"),
		imageRenderTest(),
		vec2DTest("image filters"),

		scene3DTest("simple 3D", 650, 60000),
		scene3DTest("complex 3D", 3800, 300000),
	}
}
