package passmark

import (
	"math"

	"repro/internal/hw"
)

// The native (iOS) implementations of the CPU and memory workloads: the
// same algorithms as the DEX methods in dex.go, executed as compiled code
// — they pay only the arithmetic cost of each operation, with no
// interpreter dispatch. Tests assert the checksums match the bytecode
// versions, so the Fig. 6 CPU comparison really is interpretation overhead
// and nothing else.

// nativeInteger mirrors dexInteger.
func nativeInteger(c *ctx, n int64) uint64 {
	var acc int64
	for i := int64(0); i < n; i++ {
		acc += 12345
		t := i * 7
		acc ^= t
		d := int64(12345) / 7
		acc += d
		s := i << 1
		acc |= s
	}
	c.ops(hw.OpIntAdd, 5*n) // add/xor/or/shl/loop inc
	c.ops(hw.OpIntMul, n)
	c.ops(hw.OpIntDiv, n)
	c.ops(hw.OpBranch, n)
	return uint64(acc)
}

// nativeFloating mirrors dexFloating.
func nativeFloating(c *ctx, n int64) uint64 {
	f := 10001.0 / 10000.0
	acc := 1.0
	for i := int64(0); i < n; i++ {
		acc = acc * f
		acc = acc + f
		acc = acc / f
	}
	c.ops(hw.OpFloatMul, n)
	c.ops(hw.OpFloatAdd, n)
	c.ops(hw.OpFloatDiv, n)
	c.ops(hw.OpIntAdd, n)
	c.ops(hw.OpBranch, n)
	return math.Float64bits(acc)
}

// nativePrimes mirrors dexPrimes (trial division counting primes < n).
func nativePrimes(c *ctx, n int64) uint64 {
	var count, innerIters int64
	for i := int64(2); i < n; i++ {
		prime := int64(1)
		for j := int64(2); j*j <= i; j++ {
			innerIters++
			if i%j == 0 {
				prime = 0
				break
			}
		}
		count += prime
	}
	c.ops(hw.OpIntMul, innerIters)
	c.ops(hw.OpIntDiv, innerIters)
	c.ops(hw.OpBranch, 2*innerIters+2*(n-2))
	c.ops(hw.OpIntAdd, innerIters+2*(n-2))
	return uint64(count)
}

// nativeStringSort mirrors dexStringSort.
func nativeStringSort(c *ctx, n int64) uint64 {
	arr := make([]int64, n)
	seed := int64(12345)
	for i := int64(0); i < n; i++ {
		seed = seed*1103515245 + 12345
		arr[i] = seed & 65535
	}
	c.ops(hw.OpIntMul, n)
	c.ops(hw.OpIntAdd, 2*n)
	c.ops(hw.OpStore, n)
	// Bubble sort: n-1 passes over n-1 elements, same as the bytecode.
	var compares, swaps int64
	for pass := int64(0); pass < n-1; pass++ {
		for j := int64(0); j < n-1; j++ {
			compares++
			if arr[j] > arr[j+1] {
				arr[j], arr[j+1] = arr[j+1], arr[j]
				swaps++
			}
		}
	}
	c.ops(hw.OpLoad, 2*compares)
	c.ops(hw.OpBranch, 2*compares)
	c.ops(hw.OpStore, 2*swaps)
	c.ops(hw.OpIntAdd, compares)
	var sum int64
	for _, v := range arr {
		sum += v
	}
	c.ops(hw.OpLoad, n)
	c.ops(hw.OpIntAdd, n)
	return uint64(sum)
}

// nativeEncrypt mirrors dexEncrypt (RC4-style keystream).
func nativeEncrypt(c *ctx, n int64) uint64 {
	var s [256]int64
	for i := range s {
		s[i] = int64(i)
	}
	var acc int64
	i, j := int64(0), int64(0)
	for b := int64(0); b < n; b++ {
		i = (i + 1) & 255
		j = (j + s[i]) & 255
		s[i], s[j] = s[j], s[i]
		k := s[(s[i]+s[j])&255]
		acc ^= k
	}
	c.ops(hw.OpIntAdd, 6*n)
	c.ops(hw.OpLoad, 3*n)
	c.ops(hw.OpStore, 2*n)
	c.ops(hw.OpBranch, n)
	return uint64(acc)
}

// nativeCompress mirrors dexCompress (run-length scan).
func nativeCompress(c *ctx, n int64) uint64 {
	seed := int64(12345)
	prev := int64(-1)
	var runs int64
	for i := int64(0); i < n; i++ {
		seed = seed*1103515245 + 12345
		v := (seed >> 16) & 7
		if v != prev {
			runs++
			prev = v
		}
	}
	c.ops(hw.OpIntMul, n)
	c.ops(hw.OpIntAdd, 3*n)
	c.ops(hw.OpBranch, 2*n)
	return uint64(runs)
}

// nativeMemWrite mirrors dexMemWrite: 8 streaming store passes. Native
// code runs at DRAM bandwidth, which is the whole Fig. 6 memory story.
func nativeMemWrite(c *ctx, elements int64) uint64 {
	const passes = 8
	bytes := elements * 8 * passes
	c.t.Charge(c.sys.Kernel.Device().Mem.WriteTime(bytes))
	c.ops(hw.OpIntAdd, elements*passes/8) // unrolled loop bookkeeping
	return 0
}

// nativeMemRead mirrors dexMemRead: one fill pass then 8 read passes.
func nativeMemRead(c *ctx, elements int64) uint64 {
	const passes = 8
	mem := c.sys.Kernel.Device().Mem
	c.t.Charge(mem.WriteTime(elements * 8))
	c.t.Charge(mem.ReadTime(elements * 8 * passes))
	c.ops(hw.OpIntAdd, elements*passes/8)
	// sum of 0..elements-1, passes times — matches the bytecode result.
	return uint64(passes * (elements * (elements - 1) / 2))
}
