package passmark

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
)

// Report aggregates Fig. 6: per-test throughput scores for every
// configuration, normalized to vanilla Android (higher is better).
type Report struct {
	Tests  []Test
	Score  map[string]map[string]float64
	Errors map[string]map[string]error
}

// Cell identifies one parallel experiment cell: a whole configuration's
// battery on one System. PassMark cells cannot shard per test the way
// lmbench's do: the 3D scenes measure warm GPU/diplomat state built up by
// the tests that ran before them in the same app process (a cold-start
// "simple 3D" run scores measurably differently), so the unit of
// parallelism is the configuration.
type Cell struct {
	Index  int
	Config Configuration
}

// Options configures a battery run. See lmbench.Options for the
// OnSystem thread-safety rule: with Jobs > 1 it runs concurrently.
type Options struct {
	// Jobs caps the host workers; <= 0 means GOMAXPROCS.
	Jobs int
	// OnSystem, when non-nil, is invoked with each cell's freshly booted
	// System before the app starts. Must not advance virtual time.
	OnSystem func(Cell, *core.System)
}

// RunFigure6 runs the full battery on all four configurations across
// GOMAXPROCS host workers.
func RunFigure6() (*Report, error) {
	return RunFigure6Tests(AllTests())
}

// RunFigure6Tests runs a chosen subset on all four configurations across
// GOMAXPROCS host workers.
func RunFigure6Tests(tests []Test) (*Report, error) {
	return RunFigure6Opts(tests, Options{})
}

// RunFigure6Opts runs a chosen subset, sharding one cell per
// configuration across opts.Jobs host workers. Each cell is an
// independent System, so the merged report is bit-identical for every
// Jobs value.
func RunFigure6Opts(tests []Test, opts Options) (*Report, error) {
	confs := Configurations()
	outs, err := runner.Map(len(confs), opts.Jobs, func(i int) ([]Result, error) {
		cell := Cell{Index: i, Config: confs[i]}
		var hook func(*core.System)
		if opts.OnSystem != nil {
			hook = func(sys *core.System) { opts.OnSystem(cell, sys) }
		}
		return RunWith(cell.Config, tests, hook)
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Tests:  tests,
		Score:  map[string]map[string]float64{},
		Errors: map[string]map[string]error{},
	}
	for _, rs := range outs {
		for _, r := range rs {
			if rep.Score[r.Test] == nil {
				rep.Score[r.Test] = map[string]float64{}
				rep.Errors[r.Test] = map[string]error{}
			}
			rep.Score[r.Test][r.Config] = r.Score
			rep.Errors[r.Test][r.Config] = r.Err
		}
	}
	return rep, nil
}

// Normalized returns config's throughput relative to vanilla Android
// (the Fig. 6 y-axis; higher is better).
func (r *Report) Normalized(test, config string) (float64, bool) {
	base := r.Score[test][ConfigAndroid]
	score, have := r.Score[test][config]
	if !have || base == 0 || r.Errors[test][ConfigAndroid] != nil || r.Errors[test][config] != nil {
		return 0, false
	}
	return score / base, true
}

// Render produces the Fig. 6 table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: PassMark throughput normalized to vanilla Android (higher is better)\n")
	fmt.Fprintf(&b, "%-22s %-8s | %14s %14s %14s %14s\n",
		"test", "group", ConfigAndroid+"(abs)", ConfigCiderAndroid, ConfigCiderIOS, ConfigIPad)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 100))
	group := ""
	for _, t := range r.Tests {
		if t.Group != group {
			group = t.Group
			fmt.Fprintf(&b, "· %s\n", groupTitle(group))
		}
		fmt.Fprintf(&b, "%-22s %-8s | %14s", t.Name, t.Group, fmtScore(r.Score[t.Name][ConfigAndroid]))
		for _, cfg := range []string{ConfigCiderAndroid, ConfigCiderIOS, ConfigIPad} {
			if norm, ok := r.Normalized(t.Name, cfg); ok {
				fmt.Fprintf(&b, " %13.2fx", norm)
			} else {
				fmt.Fprintf(&b, " %14s", "n/a")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func groupTitle(g string) string {
	switch g {
	case "cpu":
		return "CPU operations"
	case "storage":
		return "storage operations"
	case "memory":
		return "memory operations"
	case "2d":
		return "2D graphics"
	case "3d":
		return "3D graphics"
	}
	return g
}

func fmtScore(s float64) string {
	switch {
	case s == 0:
		return "n/a"
	case s >= 1e9:
		return fmt.Sprintf("%.1fG/s", s/1e9)
	case s >= 1e6:
		return fmt.Sprintf("%.1fM/s", s/1e6)
	case s >= 1e3:
		return fmt.Sprintf("%.1fk/s", s/1e3)
	default:
		return fmt.Sprintf("%.1f/s", s)
	}
}
