// Package passmark reimplements the PassMark PerformanceTest workloads the
// paper uses for Figure 6: CPU (integer, floating point, primes, string
// sort, encryption, compression), storage (write/read), memory
// (write/read), 2D graphics (vectors, image rendering, image filters), and
// 3D graphics (simple/complex scenes).
//
// Two genuinely different builds exist, as on the real stores:
//
//   - The Android app is DEX bytecode executed by the Dalvik interpreter
//     (internal/dalvik), reaching the OS and GPU through JNI intrinsics.
//   - The iOS app is native code (compiled Objective-C in the paper),
//     charging only the hardware costs of its operations, and reaching the
//     GPU through the (diplomatic, on Cider) GL bindings.
//
// Scores are operations per virtual second, normalized to vanilla Android
// — higher is better, matching the Fig. 6 axes.
package passmark

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
)

// Config names (Fig. 6 columns).
const (
	ConfigAndroid      = "android"
	ConfigCiderAndroid = "cider-android"
	ConfigCiderIOS     = "cider-ios"
	ConfigIPad         = "ipad"
)

// Build selects the app build.
type Build int

const (
	// BuildAndroid is the Google Play app (Dalvik bytecode).
	BuildAndroid Build = iota
	// BuildIOS is the App Store app (native binary).
	BuildIOS
)

// Configuration is one Fig. 6 column.
type Configuration struct {
	Name   string
	System core.Config
	Build  Build
}

// Configurations returns the four Fig. 6 configurations in paper order.
func Configurations() []Configuration {
	return []Configuration{
		{ConfigAndroid, core.ConfigVanilla, BuildAndroid},
		{ConfigCiderAndroid, core.ConfigCider, BuildAndroid},
		{ConfigCiderIOS, core.ConfigCider, BuildIOS},
		{ConfigIPad, core.ConfigIPad, BuildIOS},
	}
}

// Test is one PassMark measurement.
type Test struct {
	// Name matches the Fig. 6 x-axis label.
	Name string
	// Group is the Fig. 6 cluster ("cpu", "storage", "memory", "2d", "3d").
	Group string
	// runAndroid and runIOS produce (work units done, elapsed virtual
	// time) for the respective builds.
	runAndroid func(c *ctx) (float64, time.Duration, error)
	runIOS     func(c *ctx) (float64, time.Duration, error)
}

// Result is one (test, configuration) score.
type Result struct {
	Test   string
	Group  string
	Config string
	// Score is work units per second (higher is better).
	Score float64
	// Err records a failed run.
	Err error
}

// Run executes the battery in one configuration.
func Run(conf Configuration, tests []Test) ([]Result, error) {
	return RunWith(conf, tests, nil)
}

// RunWith is Run with a per-run system hook: onSystem, when non-nil, is
// invoked with the freshly booted System before the app starts — the
// place to attach a trace session. It must not advance virtual time.
func RunWith(conf Configuration, tests []Test, onSystem func(*core.System)) ([]Result, error) {
	sys, err := core.NewSystem(conf.System)
	if err != nil {
		return nil, err
	}
	if onSystem != nil {
		onSystem(sys)
	}
	var results []Result
	driver := func(t *kernel.Thread) {
		c, cerr := newCtx(t, sys, conf.Build)
		if cerr != nil {
			for _, test := range tests {
				results = append(results, Result{Test: test.Name, Group: test.Group, Config: conf.Name, Err: cerr})
			}
			return
		}
		for _, test := range tests {
			run := test.runAndroid
			if conf.Build == BuildIOS {
				run = test.runIOS
			}
			work, elapsed, rerr := run(c)
			r := Result{Test: test.Name, Group: test.Group, Config: conf.Name, Err: rerr}
			if rerr == nil && elapsed > 0 {
				r.Score = work / elapsed.Seconds()
			}
			results = append(results, r)
		}
	}
	key := "passmark-" + conf.Name
	var path string
	if conf.Build == BuildIOS {
		path = "/Applications/PassMark.app/PassMark"
		err = sys.InstallIOSBinary(path, key, nil, wrapDriver(driver))
	} else {
		path = "/data/app/passmark"
		err = sys.InstallAndroidBinary(path, key, []string{"libc.so", "libGLESv2.so", "libandroid_runtime.so"}, wrapDriver(driver))
	}
	if err != nil {
		return nil, err
	}
	if _, err := sys.Start(path, nil); err != nil {
		return nil, err
	}
	if err := sys.Run(); err != nil {
		return nil, fmt.Errorf("passmark: %s: %w", conf.Name, err)
	}
	return results, nil
}
