package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// TracePure enforces the zero-cost-when-disabled guarantee of the trace
// layer: sink callbacks observe the simulation, they must never steer it.
// Any function reachable from a trace sink callback (SchedEvent, and the
// trace package's SyscallEnter/SyscallExit/Signal/Count) that calls back
// into the simulator — advancing time, waking or spawning procs, charging
// cost — would make enabling a trace change the schedule, breaking the
// bit-identical-replay property the Fig. 5/6 methodology depends on.
var TracePure = &Analyzer{
	Name: "tracepure",
	Doc: "functions reachable from trace sink callbacks must not call " +
		"Advance/Wake/charge: enabling a trace must not perturb the schedule",
	Run: runTracePure,
}

// tracePureKey caches the whole-program reachable-from-sink set.
const tracePureKey = "tracepure.reachable"

// sinkRootNames identify sink entry points. SchedEvent is the sim.Sink
// interface method, so any concrete implementation anywhere is a root; the
// remaining names are extended sink callbacks and only count when declared
// in a package named "trace".
var sinkRootNames = map[string]bool{
	"SchedEvent": true, "SyscallEnter": true, "SyscallExit": true,
	"Signal": true, "Count": true,
}

// simReentry are the simulator entry points a sink callback must never
// reach: time accrual, scheduling, and syscall dispatch, on sim or kernel
// receivers.
var simReentry = map[string]bool{
	"Advance": true, "Wake": true, "WakeOne": true, "WakeAll": true,
	"Spawn": true, "Park": true, "Sleep": true, "Yield": true,
	"Wait": true, "WaitTimeout": true, "Exit": true,
	"Charge": true, "Compute": true, "charge": true, "Syscall": true,
}

func isSinkRoot(fn *types.Func) bool {
	if !sinkRootNames[fn.Name()] || RecvPkgName(fn) == "" {
		return false
	}
	if fn.Name() == "SchedEvent" {
		return true
	}
	return fn.Pkg() != nil && fn.Pkg().Name() == "trace"
}

// isSimReentry reports whether fn is a simulator entry point (a banned
// callee inside sink-reachable code).
func isSimReentry(fn *types.Func) bool {
	if fn == nil || !simReentry[fn.Name()] {
		return false
	}
	switch RecvPkgName(fn) {
	case "sim", "kernel":
		return true
	}
	return false
}

// sinkReachable computes, once per program, the set of loaded functions
// reachable from any sink root through statically resolvable calls.
func sinkReachable(prog *Program) map[*types.Func]bool {
	return prog.Fact(tracePureKey, func() any {
		reach := map[*types.Func]bool{}
		var queue []*types.Func
		for fn := range prog.funcDecls {
			if isSinkRoot(fn) {
				reach[fn] = true
				queue = append(queue, fn)
			}
		}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			src := prog.FuncBody(fn)
			if src == nil || src.Decl.Body == nil {
				continue
			}
			ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := Callee(src.Pkg, call)
				if callee == nil || reach[callee] {
					return true
				}
				if prog.FuncBody(callee) != nil {
					reach[callee] = true
					queue = append(queue, callee)
				}
				return true
			})
		}
		return reach
	}).(map[*types.Func]bool)
}

func runTracePure(pass *Pass) error {
	reach := sinkReachable(pass.Prog)

	// Check only functions declared in this package, so each finding is
	// reported exactly once (in its home package's pass).
	type decl struct {
		fn  *types.Func
		src *FuncSource
	}
	var decls []decl
	for fn := range reach {
		src := pass.Prog.FuncBody(fn)
		if src != nil && src.Pkg == pass.Pkg && src.Decl.Body != nil {
			decls = append(decls, decl{fn, src})
		}
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].src.Decl.Pos() < decls[j].src.Decl.Pos() })

	for _, d := range decls {
		ast.Inspect(d.src.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := Callee(pass.Pkg, call)
			if isSimReentry(callee) {
				pass.Reportf(call.Pos(),
					"%s is reachable from a trace sink callback but re-enters the simulator via %s.%s: sinks must observe virtual time, never create it",
					d.fn.Name(), RecvTypeName(callee), callee.Name())
			}
			return true
		})
	}
	return nil
}
