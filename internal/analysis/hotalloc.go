package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc verifies the scheduler's steady-state allocation discipline
// statically: a function annotated
//
//	//hot:noalloc
//
// in its doc comment must be allocation-free on its steady-state path,
// guarding the 0-allocs/switch invariant from the PR 3 benchmark work
// without needing a benchmark run. Annotated functions cover the switch
// path (Advance/Park/Sleep/Wake and the proc heap), the WaitQueue, the
// trace fast path, and the fault-injector consult.
//
// Direct allocation sites flagged in an annotated function (or anything
// it calls, transitively — the chargecheck fixpoint idiom with a witness
// chain in the message):
//
//   - make, new
//   - &T{...} composite-literal address (escapes on the paths these
//     functions are called from)
//   - slice and map composite literals
//   - function literals (closure allocation)
//   - string concatenation and string<->[]byte conversions
//   - calls into formatting/string-building stdlib packages (fmt,
//     strings, strconv, errors, sort)
//
// Amortized growth is exempt by policy: append and map-index assignment
// reallocate only on growth, which the freelist/ring designs bound; the
// steady state is allocation-free, which is exactly what the benchmarks
// assert. Unresolvable calls (interface methods, function values) are
// assumed allocation-free so findings stay high-confidence; value-to-
// interface boxing is out of scope (DESIGN.md records both).
//
// Cold paths inside hot functions (a lazily allocated map, a freelist
// miss) carry //lint:allow hotalloc: directives with the justification
// the suppression policy requires.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "//hot:noalloc functions must be allocation-free (make/new/&lit/" +
		"closures/string building), transitively; append and map insert " +
		"are exempt as amortized growth",
	Run: runHotAlloc,
}

// HotAnnotation is the doc-comment marker for allocation-free functions.
const HotAnnotation = "//hot:noalloc"

// allocPronePkgs are stdlib packages whose exported entry points allocate
// as a matter of course.
var allocPronePkgs = map[string]bool{
	"fmt": true, "strings": true, "strconv": true, "errors": true, "sort": true,
}

// allocWitness describes why a function may allocate: a direct site, or
// the callee that does.
type allocWitness struct {
	what string
	pos  token.Pos
	// via, when non-nil, is the callee the allocation was inherited from.
	via *types.Func
}

const hotAllocKey = "hotalloc.mayalloc"

// directAllocs scans one node for direct allocation sites. exempt growth
// (append, map insert) never appears here.
func directAllocs(pkg *Package, root ast.Node) []allocWitness {
	var out []allocWitness
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fun := Unparen(x.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						out = append(out, allocWitness{what: "make", pos: x.Pos()})
					case "new":
						out = append(out, allocWitness{what: "new", pos: x.Pos()})
					}
					return true
				}
			}
			// string <-> []byte conversions copy.
			if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() && len(x.Args) == 1 {
				dst := tv.Type.Underlying()
				src := pkg.Info.Types[x.Args[0]].Type
				if src != nil && isStringByteConv(dst, src.Underlying()) {
					out = append(out, allocWitness{what: "string/[]byte conversion", pos: x.Pos()})
				}
				return true
			}
			if fn := Callee(pkg, x); fn != nil && fn.Pkg() != nil && allocPronePkgs[fn.Pkg().Path()] {
				out = append(out, allocWitness{
					what: fn.Pkg().Path() + "." + fn.Name() + " call", pos: x.Pos()})
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := Unparen(x.X).(*ast.CompositeLit); ok {
					out = append(out, allocWitness{what: "&composite literal", pos: x.Pos()})
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					out = append(out, allocWitness{what: "slice literal", pos: x.Pos()})
				case *types.Map:
					out = append(out, allocWitness{what: "map literal", pos: x.Pos()})
				}
			}
		case *ast.FuncLit:
			out = append(out, allocWitness{what: "func literal", pos: x.Pos()})
			return false // its body runs elsewhere; the closure itself is the cost here
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := pkg.Info.Types[x]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						out = append(out, allocWitness{what: "string concatenation", pos: x.Pos()})
					}
				}
			}
		case *ast.GoStmt:
			out = append(out, allocWitness{what: "goroutine spawn", pos: x.Pos()})
		}
		return true
	})
	return out
}

func isStringByteConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isBytes(src)) || (isBytes(dst) && isStr(src))
}

// hotMayAlloc computes the whole-program may-allocate map with one
// witness per function, fixpoint-style.
func hotMayAlloc(prog *Program) map[*types.Func]*allocWitness {
	return prog.Fact(hotAllocKey, func() any {
		allowed := map[*Package]map[string]map[int]bool{}
		set := map[*types.Func]*allocWitness{}
		for changed := true; changed; {
			changed = false
			for fn, src := range prog.funcDecls {
				if set[fn] != nil || src.Decl.Body == nil {
					continue
				}
				if allowed[src.Pkg] == nil {
					allowed[src.Pkg] = hotAllowedLines(prog, src.Pkg)
				}
				if w := fnAllocWitness(prog, src.Pkg, src.Decl.Body, set, allowed[src.Pkg]); w != nil {
					set[fn] = w
					changed = true
				}
			}
		}
		return set
	}).(map[*types.Func]*allocWitness)
}

// hotAllowedLines maps filename → lines covered by a
// //lint:allow hotalloc directive (the directive's line and the next,
// matching the suppression matcher in RunAll). Sites on covered lines
// are justified cold paths and must not taint callers in the fixpoint.
func hotAllowedLines(prog *Program, pkg *Package) map[string]map[int]bool {
	covered := map[string]map[int]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(strings.TrimSpace(c.Text), "//lint:allow hotalloc") {
					continue
				}
				p := prog.Fset.Position(c.Pos())
				m := covered[p.Filename]
				if m == nil {
					m = map[int]bool{}
					covered[p.Filename] = m
				}
				m[p.Line] = true
				m[p.Line+1] = true
			}
		}
	}
	return covered
}

// fnAllocWitness returns the first allocation witness in body: a direct
// site, or a call to a function known to allocate. Sites suppressed by a
// //lint:allow hotalloc directive are skipped here (they still get
// reported — and suppressed — inside annotated functions).
func fnAllocWitness(prog *Program, pkg *Package, body *ast.BlockStmt, set map[*types.Func]*allocWitness, allowed map[string]map[int]bool) *allocWitness {
	ws := directAllocs(pkg, body)
	var first *allocWitness
	for i := range ws {
		p := prog.Fset.Position(ws[i].pos)
		if allowed[p.Filename][p.Line] {
			continue
		}
		if first == nil || ws[i].pos < first.pos {
			first = &ws[i]
		}
	}
	if first != nil {
		return first
	}
	var found *allocWitness
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := Callee(pkg, call)
		if fn == nil {
			return true // function value / interface dispatch: assumed clean
		}
		if w := set[fn]; w != nil {
			found = &allocWitness{what: w.what, pos: call.Pos(), via: fn}
		}
		return true
	})
	return found
}

// hotAnnotated reports whether a declaration carries the //hot:noalloc
// marker in its doc comment.
func hotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), HotAnnotation) {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	if !IsSimPackage(pass.Pkg.Path) {
		return nil
	}
	prog := pass.Prog
	pkg := pass.Pkg
	set := hotMayAlloc(prog)

	// witnessChain renders the inherited-allocation path fn → g → site.
	witnessChain := func(fn *types.Func) string {
		var hops []string
		w := set[fn]
		for w != nil && w.via != nil && len(hops) < 6 {
			hops = append(hops, w.via.Name())
			w = set[w.via]
		}
		if len(hops) == 0 {
			return ""
		}
		return " (via " + strings.Join(hops, " → ") + ")"
	}

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hotAnnotated(fd) || fd.Body == nil {
				continue
			}
			// Direct sites: report every one, at the site, so //lint:allow
			// can suppress cold paths individually.
			direct := directAllocs(pkg, fd.Body)
			sort.Slice(direct, func(i, j int) bool { return direct[i].pos < direct[j].pos })
			for _, w := range direct {
				pass.Reportf(w.pos,
					"allocation in //hot:noalloc %s: %s breaks the 0-allocs steady-state invariant",
					fd.Name.Name, w.what)
			}
			// Inherited: report at the offending call sites.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // already flagged as a closure allocation
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := Callee(pkg, call)
				if fn == nil {
					return true
				}
				if w := set[fn]; w != nil {
					pass.Reportf(call.Pos(),
						"//hot:noalloc %s calls %s, which may allocate: %s%s",
						fd.Name.Name, fn.Name(), w.what, witnessChain(fn))
				}
				return true
			})
		}
	}
	return nil
}
