package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// XlateCheck is the interprocedural taint pass for persona-numbered
// payloads: raw errno/flag/signal constants of one persona's numbering
// must never flow into a trap (or a trap-bound parameter) of the other
// persona without passing through a translation helper. It mechanizes the
// PR 6 open(O_CREAT) divergence as a lint.
//
// Constant domains are assigned by declaration site and naming convention
// (DESIGN.md pins both as part of the ABI contract):
//
//   - linux (canonical) payloads: kernel-package constants of the Errno
//     type, the SIG*/sig* signal numbers, the O* open-flag bits, and the
//     RLimit* rlimit resource numbers.
//   - xnu payloads: abi-package XNUO* open-flag bits and XNURLimit*
//     rlimit resource numbers.
//
// Trap domains come from the syscall-number argument of Thread.Syscall:
// a number declared in the kernel package is a Linux trap, one declared
// in the abi package is an XNU trap. Translation helpers — SignalToXNU,
// SignalFromXNU, ErrnoToXNU, ErrnoFromXNU — sanitize their argument
// subtree and produce a value of the target domain.
//
// The pass is interprocedural in the chargecheck style: a whole-program
// fixpoint assigns each integer-typed parameter a required domain when it
// flows, untranslated, into a trap's argument payload (directly or
// through other calls). Call sites passing a wrong-domain constant into a
// required parameter are findings — e.g. kernel.SIGUSR1 into
// libsystem.Kill, whose sig parameter feeds the XNU kill trap. Unresolved
// and conflicting flows impose no requirement, so findings are
// high-confidence.
//
// Two syntactic rules complete the pass:
//
//   - a wrap(...) table registration for the argument-translating
//     syscalls (open, kill, sigaction) must install a non-nil transform —
//     wrapping with nil forwards raw foreign numbers, the exact PR 6
//     open bug shape;
//   - an assignment into the iOS TLS errno field
//     (Persona.TLS(persona.IOS).Errno) must route through ErrnoToXNU
//     when the right-hand side carries an Errno-typed value.
var XlateCheck = &Analyzer{
	Name: "xlatecheck",
	Doc: "raw errno/flag/signal constants must not cross the persona " +
		"boundary untranslated; payload-carrying syscalls must be wrapped " +
		"with an argument transform (the PR 6 open(O_CREAT) bug as a lint)",
	Run: runXlateCheck,
}

// xlateDomain is a persona numbering domain.
type xlateDomain int

const (
	domNone xlateDomain = iota
	domLinux
	domXNU
)

func (d xlateDomain) String() string {
	switch d {
	case domLinux:
		return "Linux"
	case domXNU:
		return "XNU"
	}
	return "none"
}

func (d xlateDomain) opposite() xlateDomain {
	switch d {
	case domLinux:
		return domXNU
	case domXNU:
		return domLinux
	}
	return domNone
}

// xformRequired names the syscalls whose arguments carry persona-numbered
// payloads (flags for open, signal numbers for kill/sigaction): a table
// wrapper for these must translate, never forward raw.
var xformRequired = map[string]bool{
	"open": true, "kill": true, "sigaction": true,
	// rlimit resource numbers differ between the personas (XNU NOFILE is
	// 8 where Linux says 7): the XNU table wrappers must renumber.
	"getrlimit": true, "setrlimit": true,
}

// translationHelpers maps helper names to the domain of their result; a
// call to one also sanitizes its argument subtree.
var translationHelpers = map[string]xlateDomain{
	"SignalToXNU":   domXNU,
	"ErrnoToXNU":    domXNU,
	"RlimitToXNU":   domXNU,
	"SignalFromXNU": domLinux,
	"ErrnoFromXNU":  domLinux,
	"RlimitFromXNU": domLinux,
}

// payloadConstDomain classifies a constant as a persona-numbered payload.
func payloadConstDomain(c *types.Const) xlateDomain {
	if c.Pkg() == nil {
		return domNone
	}
	name := c.Name()
	switch c.Pkg().Name() {
	case "kernel":
		if named, ok := c.Type().(*types.Named); ok && named.Obj().Name() == "Errno" {
			return domLinux
		}
		if strings.HasPrefix(name, "SIG") || (strings.HasPrefix(name, "sig") && name != "sig") {
			if name == "SIGNONE" || name == "signil" {
				return domNone
			}
			return domLinux
		}
		if strings.HasPrefix(name, "O") && len(name) > 1 && name[1] >= 'A' && name[1] <= 'Z' {
			return domLinux // OCreat-style open flag bits
		}
		// RLimitNoFile-style rlimit resource numbers (RLimInfinity is the
		// same bit pattern in both personas and stays domain-free).
		if strings.HasPrefix(name, "RLimit") {
			return domLinux
		}
	case "abi":
		const p = "XNUO"
		if strings.HasPrefix(name, p) && len(name) > len(p) &&
			name[len(p)] >= 'A' && name[len(p)] <= 'Z' {
			return domXNU
		}
		if strings.HasPrefix(name, "XNURLimit") {
			return domXNU
		}
	}
	return domNone
}

// trapDomain classifies a syscall-number expression by the declaring
// package of the constant it resolves to.
func trapDomain(pkg *Package, e ast.Expr) xlateDomain {
	e = Unparen(e)
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[x.Sel]
	default:
		return domNone
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil {
		return domNone
	}
	switch c.Pkg().Name() {
	case "kernel":
		return domLinux
	case "abi":
		return domXNU
	}
	return domNone
}

// isTranslationCall reports whether call invokes a translation helper,
// returning the produced domain.
func isTranslationCall(pkg *Package, call *ast.CallExpr) (xlateDomain, bool) {
	fn := Callee(pkg, call)
	if fn == nil {
		return domNone, false
	}
	d, ok := translationHelpers[fn.Name()]
	return d, ok
}

// xlateTaint is one persona-numbered value found in an expression.
type xlateTaint struct {
	dom  xlateDomain
	desc string
	pos  token.Pos
}

// exprTaints walks e collecting persona-numbered payloads that are not
// shielded by a translation helper: payload constants and helper results.
func exprTaints(pkg *Package, e ast.Expr) []xlateTaint {
	var out []xlateTaint
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if d, ok := isTranslationCall(pkg, x); ok {
				out = append(out, xlateTaint{
					dom:  d,
					desc: "result of " + Callee(pkg, x).Name(),
					pos:  x.Pos(),
				})
				return false // the helper sanitizes its own arguments
			}
		case *ast.Ident:
			if c, ok := pkg.Info.Uses[x].(*types.Const); ok {
				if d := payloadConstDomain(c); d != domNone {
					out = append(out, xlateTaint{dom: d, desc: c.Name(), pos: x.Pos()})
				}
			}
		}
		return true
	})
	return out
}

// paramDomains is the whole-program fact: for each function, the required
// payload domain of each parameter (by index), or domNone when the
// parameter never reaches a trap or reaches traps of both domains.
type paramDomains map[*types.Func][]xlateDomain

const xlateFactKey = "xlatecheck.paramdomains"

// isBasicIntParam limits requirement tracking to plain integer-ish
// parameters — the shape signal numbers, flags, and errnos travel in.
func isBasicIntParam(v *types.Var) bool {
	t := v.Type()
	if named, ok := t.(*types.Named); ok {
		t = named.Underlying()
	}
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// mergeDomain folds a newly observed requirement into the existing one;
// conflicting requirements collapse to domNone (the parameter serves both
// personas, e.g. a shared helper) and stay there.
func mergeDomain(old, add xlateDomain, conflicted map[*types.Var]bool, v *types.Var) xlateDomain {
	if conflicted[v] || add == domNone {
		return old
	}
	if old == domNone {
		return add
	}
	if old != add {
		conflicted[v] = true
		return domNone
	}
	return old
}

// xlateParamDomains computes the parameter-requirement fixpoint.
func xlateParamDomains(prog *Program) paramDomains {
	return prog.Fact(xlateFactKey, func() any {
		req := paramDomains{}
		conflicted := map[*types.Var]bool{}

		paramIndex := func(fn *types.Func) map[*types.Var]int {
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return nil
			}
			m := map[*types.Var]int{}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if isBasicIntParam(p) {
					m[p] = i
				}
			}
			return m
		}
		ensure := func(fn *types.Func) []xlateDomain {
			if d, ok := req[fn]; ok {
				return d
			}
			sig, _ := fn.Type().(*types.Signature)
			n := 0
			if sig != nil {
				n = sig.Params().Len()
			}
			d := make([]xlateDomain, n)
			req[fn] = d
			return d
		}

		// exprUsesParam reports whether e contains an untranslated use of
		// one of fn's tracked parameters, returning the parameter.
		usedParams := func(pkg *Package, e ast.Expr, params map[*types.Var]int) []*types.Var {
			var out []*types.Var
			ast.Inspect(e, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if _, isHelper := isTranslationCall(pkg, call); isHelper {
						return false // translated: no raw requirement
					}
				}
				if id, ok := n.(*ast.Ident); ok {
					if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
						if _, tracked := params[v]; tracked {
							out = append(out, v)
						}
					}
				}
				return true
			})
			return out
		}

		for changed := true; changed; {
			changed = false
			for fn, src := range prog.funcDecls {
				if src.Decl.Body == nil {
					continue
				}
				params := paramIndex(fn)
				if len(params) == 0 {
					continue
				}
				doms := ensure(fn)
				ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					// Direct trap: Syscall(num, args) — the args payload
					// inherits the trap's domain.
					if callee := Callee(src.Pkg, call); callee != nil {
						if callee.Name() == "Syscall" && RecvTypeName(callee) == "Thread" && len(call.Args) == 2 {
							d := trapDomain(src.Pkg, call.Args[0])
							if d != domNone {
								for _, v := range usedParams(src.Pkg, call.Args[1], params) {
									i := params[v]
									old := doms[i]
									doms[i] = mergeDomain(old, d, conflicted, v)
									if doms[i] != old {
										changed = true
									}
								}
							}
							return true
						}
						// Transitive: a tracked param passed straight into a
						// callee parameter with a known requirement.
						if calleeDoms, ok := req[callee]; ok {
							for i, arg := range call.Args {
								// Method calls: req indices are parameter
								// positions, matching call.Args for both
								// functions and methods in go/types.
								if i >= len(calleeDoms) || calleeDoms[i] == domNone {
									continue
								}
								for _, v := range usedParams(src.Pkg, arg, params) {
									j := params[v]
									old := doms[j]
									doms[j] = mergeDomain(old, calleeDoms[i], conflicted, v)
									if doms[j] != old {
										changed = true
									}
								}
							}
						}
					}
					return true
				})
			}
		}
		return req
	}).(paramDomains)
}

func runXlateCheck(pass *Pass) error {
	if !IsSimPackage(pass.Pkg.Path) {
		return nil
	}
	req := xlateParamDomains(pass.Prog)
	pkg := pass.Pkg

	type finding struct {
		pos token.Pos
		msg string
	}
	var finds []finding
	report := func(pos token.Pos, format string, args ...any) {
		finds = append(finds, finding{pos, fmt.Sprintf(format, args...)})
	}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				// Rule 1: wrap(num, num, "name", nil) for a
				// payload-carrying syscall.
				if id, ok := Unparen(node.Fun).(*ast.Ident); ok && id.Name == "wrap" && len(node.Args) == 4 {
					if name, ok := stringLit(node.Args[2]); ok && xformRequired[name] {
						if isNilIdent(pkg, node.Args[3]) {
							report(node.Pos(),
								"syscall %q carries persona-numbered payloads but is wrapped with a nil transform: raw foreign numbers reach the Linux implementation (the PR 6 open(O_CREAT) divergence)",
								name)
						}
					}
					return true
				}
				callee := Callee(pkg, node)
				if callee == nil {
					return true
				}
				// Rule 2: direct trap payloads.
				if callee.Name() == "Syscall" && RecvTypeName(callee) == "Thread" && len(node.Args) == 2 {
					d := trapDomain(pkg, node.Args[0])
					if d == domNone {
						return true
					}
					for _, t := range exprTaints(pkg, node.Args[1]) {
						if t.dom == d.opposite() {
							report(t.pos,
								"%s payload %s flows into a %s trap untranslated: route it through the %s-facing translation helper",
								t.dom, t.desc, d, d)
						}
					}
					return true
				}
				// Rule 3: interprocedural — wrong-domain payload into a
				// requirement-carrying parameter.
				if doms, ok := req[callee]; ok {
					for i, arg := range node.Args {
						if i >= len(doms) || doms[i] == domNone {
							continue
						}
						for _, t := range exprTaints(pkg, arg) {
							if t.dom == doms[i].opposite() {
								report(t.pos,
									"%s payload %s flows into %s parameter %d of %s, which feeds a %s trap: translate at the boundary",
									t.dom, t.desc, doms[i], i, callee.Name(), doms[i])
							}
						}
					}
				}
			case *ast.AssignStmt:
				// Rule 4: iOS TLS errno writes must be XNU-numbered.
				checkTLSErrnoWrite(pkg, node, report)
			}
			return true
		})
	}

	sort.SliceStable(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}

// checkTLSErrnoWrite flags `<x>.TLS(persona.IOS).Errno = <rhs>` where rhs
// carries an Errno-typed value with no ErrnoToXNU on the path.
func checkTLSErrnoWrite(pkg *Package, as *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	for i, lhs := range as.Lhs {
		sel, ok := Unparen(lhs).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Errno" {
			continue
		}
		call, ok := Unparen(sel.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := Callee(pkg, call)
		if fn == nil || fn.Name() != "TLS" || len(call.Args) != 1 {
			continue
		}
		if !isIOSConst(pkg, call.Args[0]) {
			continue
		}
		if i >= len(as.Rhs) {
			continue
		}
		rhs := as.Rhs[i]
		if exprHasErrnoValue(pkg, rhs) && !exprCallsHelper(pkg, rhs, "ErrnoToXNU") {
			report(as.Pos(),
				"canonical Errno value written to the iOS TLS errno field without ErrnoToXNU: an iOS thread reads Linux numbering (the errno-35 border crossing)")
		}
	}
}

// isIOSConst matches an argument resolving to a constant named IOS.
func isIOSConst(pkg *Package, e ast.Expr) bool {
	var obj types.Object
	switch x := Unparen(e).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[x.Sel]
	default:
		return false
	}
	c, ok := obj.(*types.Const)
	return ok && c.Name() == "IOS"
}

// exprHasErrnoValue reports whether e contains a value of a named type
// Errno (outside translation-helper calls).
func exprHasErrnoValue(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, isHelper := isTranslationCall(pkg, call); isHelper {
				return false
			}
		}
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pkg.Info.Types[ex]; ok {
			if named, ok := tv.Type.(*types.Named); ok && named.Obj().Name() == "Errno" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprCallsHelper reports whether e contains a call to the named helper.
func exprCallsHelper(pkg *Package, e ast.Expr, helper string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := Callee(pkg, call); fn != nil && fn.Name() == helper {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// stringLit unwraps a quoted string literal.
func stringLit(e ast.Expr) (string, bool) {
	bl, ok := Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING || len(bl.Value) < 2 {
		return "", false
	}
	return bl.Value[1 : len(bl.Value)-1], true
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(pkg *Package, e ast.Expr) bool {
	id, ok := Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pkg.Info.Uses[id].(*types.Nil)
	return isNil || id.Name == "nil"
}
