package analysis

import (
	"go/ast"
	"go/types"
)

// ChargeCheck verifies the paper's cost model is actually applied: every
// handler registered in a kernel.SyscallTable must accrue virtual-time cost
// (charge/Charge/Advance, or a blocking primitive) on every return path,
// and every diplomat/dyld hop must accrue cost somewhere in its body. A
// handler path that produces a SyscallRet without charging silently skews
// the Fig. 5/6 latency decompositions.
//
// The analysis is interprocedural and optimistic: a whole-program
// "may-charge" set is computed by fixpoint from the sim.Proc primitives
// (Advance/Sleep/Park), propagated through every loaded function body.
// Calls that cannot be resolved statically — function-typed values and
// interface methods — are assumed to charge, so findings are
// high-confidence: a flagged path called nothing that could possibly have
// accrued cost.
//
// Returns of the bare-rejection form `SyscallRet{Errno: e}` (only the
// Errno field set) are exempt: argument-validation failures cost exactly
// the dispatcher's entry/exit charges by design.
var ChargeCheck = &Analyzer{
	Name: "chargecheck",
	Doc: "every SyscallTable handler must charge/Advance on every return " +
		"path, and every diplomat/dyld hop must accrue cost; uncharged " +
		"paths skew the modeled Fig. 5/6 latencies",
	Run: runChargeCheck,
}

// mayChargeKey caches the whole-program may-charge set.
const mayChargeKey = "chargecheck.maycharge"

// chargeSeed reports whether fn is a virtual-time primitive: the sim
// package's Advance/Sleep/Park methods, through which all cost accrual and
// blocking flows. The fault injector's consult methods are also seeds:
// their contract is consult-and-apply — a fired rule may mandate a Delay
// the site charges to the victim — so under the optimistic model an
// injection site counts as a path that can accrue cost (an injected
// early-errno return pays its modeled cost via the consult).
func chargeSeed(fn *types.Func) bool {
	switch fn.Name() {
	case "Advance", "Sleep", "Park":
		return RecvPkgName(fn) == "sim"
	case "Check", "Syscall", "Interrupt", "MemMap", "VFS", "Crash":
		return RecvPkgName(fn) == "fault"
	}
	return false
}

// mayCharge returns the set of loaded functions that can accrue virtual
// time, computed once per program.
func mayCharge(prog *Program) map[*types.Func]bool {
	return prog.Fact(mayChargeKey, func() any {
		set := map[*types.Func]bool{}
		for fn := range prog.funcDecls {
			if chargeSeed(fn) {
				set[fn] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for fn, src := range prog.funcDecls {
				if set[fn] || src.Decl.Body == nil {
					continue
				}
				if nodeCharges(prog, src.Pkg, src.Decl.Body, set) {
					set[fn] = true
					changed = true
				}
			}
		}
		return set
	}).(map[*types.Func]bool)
}

// callCharges reports whether a single call may accrue virtual time under
// the optimistic model.
func callCharges(prog *Program, pkg *Package, call *ast.CallExpr, set map[*types.Func]bool) bool {
	if !IsRealCall(pkg, call) {
		return false
	}
	fn := Callee(pkg, call)
	if fn == nil {
		return true // function-typed value: assume it charges
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return true // interface dispatch: assume it charges
		}
	}
	if set[fn] {
		return true
	}
	if chargeSeed(fn) {
		return true
	}
	// Resolved concrete function whose body is loaded and known not to
	// charge, or an external (standard library) function — the standard
	// library cannot advance virtual time.
	return false
}

// nodeCharges reports whether any call under n may charge.
func nodeCharges(prog *Program, pkg *Package, n ast.Node, set map[*types.Func]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && callCharges(prog, pkg, call, set) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isErrnoRejection matches `return SyscallRet{Errno: e}` — a composite
// literal of a type named SyscallRet whose only element sets Errno.
func isErrnoRejection(pkg *Package, ret *ast.ReturnStmt) bool {
	if len(ret.Results) != 1 {
		return false
	}
	cl, ok := Unparen(ret.Results[0]).(*ast.CompositeLit)
	if !ok || len(cl.Elts) == 0 {
		return false
	}
	tv, ok := pkg.Info.Types[cl]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "SyscallRet" {
		return false
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return false
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Errno" {
			return false
		}
	}
	return true
}

func runChargeCheck(pass *Pass) error {
	set := mayCharge(pass.Prog)
	seen := map[ast.Node]bool{} // a handler registered twice is checked once

	checkHandler := func(expr ast.Expr) {
		expr = Unparen(expr)
		switch h := expr.(type) {
		case *ast.FuncLit:
			if !seen[h] {
				seen[h] = true
				checkReturnPaths(pass, pass.Pkg, h.Body, set)
			}
		case *ast.Ident, *ast.SelectorExpr:
			fn := Callee(pass.Pkg, &ast.CallExpr{Fun: expr})
			if fn == nil {
				// A function-typed variable (e.g. a handler looked up from
				// another table): its origin is checked where it was
				// registered first.
				return
			}
			src := pass.Prog.FuncBody(fn)
			if src == nil || src.Decl.Body == nil || seen[src.Decl] {
				return
			}
			seen[src.Decl] = true
			checkReturnPaths(pass, src.Pkg, src.Decl.Body, set)
		}
	}

	// A hop (diplomat closure, dyld atexit/atfork hook) must accrue cost
	// somewhere in its body; hops have no SyscallRet paths to key on, so
	// the per-path rule does not apply.
	checkHop := func(lit *ast.FuncLit, what string) {
		if seen[lit] {
			return
		}
		seen[lit] = true
		if !nodeCharges(pass.Prog, pass.Pkg, lit.Body, set) {
			pass.Reportf(lit.Pos(), "%s accrues no virtual-time cost (no charge/Advance anywhere in its body)", what)
		}
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				fn := Callee(pass.Pkg, node)
				if fn == nil {
					return true
				}
				switch {
				case fn.Name() == "Register" && RecvTypeName(fn) == "SyscallTable" && len(node.Args) == 3:
					checkHandler(node.Args[2])
				case (fn.Name() == "AtExit" || fn.Name() == "AtFork") && RecvTypeName(fn) != "":
					for _, arg := range node.Args {
						if lit, ok := Unparen(arg).(*ast.FuncLit); ok {
							checkHop(lit, "dyld "+fn.Name()+" hook")
						}
					}
				case fn.Name() == "OnPressure" && RecvTypeName(fn) == "Memorystatus":
					// Memory-pressure delivery is modeled work: the handler a
					// runtime registers runs in the context of whichever
					// thread crossed the watermark and must charge its
					// delivery cost there (the kernel charges the per-handler
					// notify hop; the runtime charges its dispatch/trim
					// delivery on top).
					for _, arg := range node.Args {
						if lit, ok := Unparen(arg).(*ast.FuncLit); ok {
							checkHop(lit, "memory-pressure handler")
						}
					}
				case fn.Name() == "SetExceptionBridge" && RecvTypeName(fn) == "Kernel":
					// Exception delivery is modeled work: the bridge consulted
					// on a fatal fault must accrue the exception-message cost.
					for _, arg := range node.Args {
						if lit, ok := Unparen(arg).(*ast.FuncLit); ok {
							checkHop(lit, "exception bridge")
						}
					}
				}
			case *ast.FuncDecl:
				// Diplomat hops: closures returned by a Wrap method.
				if node.Name != nil && node.Name.Name == "Wrap" && node.Body != nil {
					ast.Inspect(node.Body, func(n ast.Node) bool {
						ret, ok := n.(*ast.ReturnStmt)
						if !ok {
							return true
						}
						for _, r := range ret.Results {
							if lit, ok := Unparen(r).(*ast.FuncLit); ok {
								checkHop(lit, "diplomat hop")
							}
						}
						return true
					})
				}
			}
			return true
		})
	}
	return nil
}

// checkReturnPaths walks a handler body and reports every return statement
// that cannot have accrued cost. The walk is syntactic and optimistic: a
// may-charge call anywhere textually before the return (in any enclosing
// branch or loop) counts as charging, so only paths with no possible
// accrual at all are flagged.
func checkReturnPaths(pass *Pass, bodyPkg *Package, body *ast.BlockStmt, set map[*types.Func]bool) {
	prog := pass.Prog
	charges := func(n ast.Node) bool {
		if n == nil {
			return false
		}
		return nodeCharges(prog, bodyPkg, n, set)
	}
	exprsCharge := func(exprs []ast.Expr) bool {
		for _, e := range exprs {
			if charges(e) {
				return true
			}
		}
		return false
	}
	var walkList func(list []ast.Stmt, charged bool) bool
	var walk func(s ast.Stmt, charged bool) bool
	walk = func(s ast.Stmt, charged bool) bool {
		switch st := s.(type) {
		case nil:
			return charged
		case *ast.BlockStmt:
			return walkList(st.List, charged)
		case *ast.ReturnStmt:
			if !charged && !exprsCharge(st.Results) && !isErrnoRejection(bodyPkg, st) {
				pass.Reportf(st.Pos(), "return path accrues no virtual-time cost: syscall handlers must charge their modeled cost on every path")
			}
			return charged
		case *ast.IfStmt:
			c := walk(st.Init, charged)
			if charges(st.Cond) {
				c = true
			}
			walk(st.Body, c)
			walk(st.Else, c)
			return charged || charges(st)
		case *ast.ForStmt:
			c := walk(st.Init, charged)
			if charges(st.Cond) {
				c = true
			}
			// A later iteration may reach a return after an earlier one
			// charged, so the loop body is optimistically pre-charged by
			// its own content.
			walk(st.Body, c || charges(st.Body))
			return charged || charges(st)
		case *ast.RangeStmt:
			c := charged || charges(st.X)
			walk(st.Body, c || charges(st.Body))
			return charged || charges(st)
		case *ast.SwitchStmt:
			c := walk(st.Init, charged)
			if charges(st.Tag) {
				c = true
			}
			for _, cc := range st.Body.List {
				if clause, ok := cc.(*ast.CaseClause); ok {
					walkList(clause.Body, c || exprsCharge(clause.List))
				}
			}
			return charged || charges(st)
		case *ast.TypeSwitchStmt:
			c := walk(st.Init, charged)
			c = walk(st.Assign, c)
			for _, cc := range st.Body.List {
				if clause, ok := cc.(*ast.CaseClause); ok {
					walkList(clause.Body, c)
				}
			}
			return charged || charges(st)
		case *ast.SelectStmt:
			for _, cc := range st.Body.List {
				if clause, ok := cc.(*ast.CommClause); ok {
					walkList(clause.Body, walk(clause.Comm, charged))
				}
			}
			return charged || charges(st)
		case *ast.LabeledStmt:
			return walk(st.Stmt, charged)
		default:
			return charged || charges(st)
		}
	}
	walkList = func(list []ast.Stmt, charged bool) bool {
		c := charged
		for _, s := range list {
			c = walk(s, c)
		}
		return c
	}
	walkList(body.List, false)
}
