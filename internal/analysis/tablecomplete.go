package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// TableComplete verifies the declared ABI surface is actually provisioned:
//
//  1. Syscall-table coverage. A const block that contributes any syscall
//     number to a table registration (SyscallTable.Register, or the abi
//     package's wrap closure) must contribute every member: declaring
//     XNUDup without registering it is exactly how every iOS-persona dup
//     returned ENOSYS while the Android persona's worked (the first
//     divergence the PR 6 differential oracle flagged). Blocks that
//     register nothing — flag bits, trap-class tags, message options —
//     are not tables and are exempt.
//
//  2. Errno-map coverage and bijectivity. Every declared constant of the
//     kernel's Errno type (except the zero success value) must appear as
//     a key of linuxToXNUErrno, and the *effective* translation (mapped
//     value, or identity for absent keys) must be injective: Linux
//     EDEADLK=35 colliding with BSD EAGAIN=35 is the errno-35 border
//     crossing the oracle caught dynamically.
//
//  3. Signal-map bijectivity. The effective linuxToXNUSignal translation
//     over [1, nsig) must be a bijection onto [1, nsig): a partial table
//     is how canonical TSTP(20) and CHLD(17→XNU 20) both read as XNU 20,
//     so an iOS thread could neither register nor receive SIGTSTP.
//
//  4. Open-flag translation coverage. XNU open-flag constants (the XNUO*
//     bit names) must each be consumed somewhere in their package —
//     a declared flag bit nobody translates is a silently-dropped or
//     raw-forwarded bit at the persona boundary.
//
// The pass keys on the tree's naming conventions (linuxToXNUErrno,
// linuxToXNUSignal, nsig, Errno, XNUO<Flag>), which DESIGN.md pins as
// part of the ABI-translation contract.
var TableComplete = &Analyzer{
	Name: "tablecomplete",
	Doc: "syscall tables, errno/signal maps, and open-flag translations " +
		"must cover the declared ABI surface; missing entries and " +
		"map collisions are the oracle-caught divergence classes",
	Run: runTableComplete,
}

func runTableComplete(pass *Pass) error {
	if !IsSimPackage(pass.Pkg.Path) {
		return nil
	}
	checkTableBlocks(pass)
	checkErrnoMap(pass)
	checkSignalMap(pass)
	checkOpenFlags(pass)
	return nil
}

// constIntValue resolves a package-level constant object's integer value.
func constIntValue(obj *types.Const) (int64, bool) {
	v := obj.Val()
	if v == nil || v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// pkgLevelConst returns the *types.Const a name declares iff it is a
// package-scope integer constant of pkg.
func pkgLevelConst(pkg *Package, name *ast.Ident) *types.Const {
	obj, ok := pkg.Info.Defs[name].(*types.Const)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	if pkg.Types.Scope().Lookup(name.Name) != obj {
		return nil
	}
	if _, ok := constIntValue(obj); !ok {
		return nil
	}
	return obj
}

// checkTableBlocks enforces the "blocks that register anything must
// register everything" rule for syscall-number const blocks.
func checkTableBlocks(pass *Pass) {
	pkg := pass.Pkg

	// Collect every const object used as the number argument of a table
	// registration: arg 0 of SyscallTable.Register, and arg 0 of any call
	// to a local function value named "wrap" (the abi package's forwarding
	// closure; Callee cannot resolve closure variables, so the name is the
	// convention).
	registered := map[*types.Const]bool{}
	markConsts := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if c, ok := pkg.Info.Uses[id].(*types.Const); ok {
				registered[c] = true
			}
			return true
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if fn := Callee(pkg, call); fn != nil {
				if fn.Name() == "Register" && RecvTypeName(fn) == "SyscallTable" {
					markConsts(call.Args[0])
				}
				return true
			}
			if id, ok := Unparen(call.Fun).(*ast.Ident); ok && id.Name == "wrap" {
				markConsts(call.Args[0])
			}
			return true
		})
	}
	if len(registered) == 0 {
		return // this package builds no tables
	}

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			type member struct {
				obj *types.Const
				pos token.Pos
			}
			var members []member
			hasRegistered := false
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pkgLevelConst(pkg, name)
					if obj == nil {
						continue
					}
					// Typed constants (TrapClass tags, Errno values) are
					// value enums, not syscall tables.
					if named, ok := obj.Type().(*types.Named); ok && named.Obj().Pkg() != nil {
						continue
					}
					members = append(members, member{obj, name.Pos()})
					if registered[obj] {
						hasRegistered = true
					}
				}
			}
			if !hasRegistered {
				continue
			}
			for _, m := range members {
				if !registered[m.obj] {
					pass.Reportf(m.pos,
						"syscall number %s is declared in a registered table's const block but never registered: every declared trap must have a handler (the missing-dup divergence class)",
						m.obj.Name())
				}
			}
		}
	}
}

// findMapLit locates a package-level `var <name> = map[...]...{...}`
// composite literal.
func findMapLit(pkg *Package, name string) (*ast.CompositeLit, token.Pos) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, n := range vs.Names {
					if n.Name != name || i >= len(vs.Values) {
						continue
					}
					if cl, ok := Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						return cl, n.Pos()
					}
				}
			}
		}
	}
	return nil, token.NoPos
}

// mapLitEntries evaluates a map composite literal's constant key/value
// pairs, skipping entries whose values the type checker could not fold.
type mapEntry struct {
	key, val int64
	keyName  string
	pos      token.Pos
}

func mapLitEntries(pkg *Package, cl *ast.CompositeLit) []mapEntry {
	var out []mapEntry
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		kval, kok := exprConst(pkg, kv.Key)
		vval, vok := exprConst(pkg, kv.Value)
		if !kok || !vok {
			continue
		}
		name := ""
		if id, ok := Unparen(kv.Key).(*ast.Ident); ok {
			name = id.Name
		}
		out = append(out, mapEntry{key: kval, val: vval, keyName: name, pos: kv.Pos()})
	}
	return out
}

// exprConst folds an expression to an integer constant via the checker.
func exprConst(pkg *Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// checkErrnoMap enforces completeness and effective injectivity of
// linuxToXNUErrno over the declared Errno constants.
func checkErrnoMap(pass *Pass) {
	pkg := pass.Pkg
	errnoType, _ := pkg.Types.Scope().Lookup("Errno").(*types.TypeName)
	cl, mapPos := findMapLit(pkg, "linuxToXNUErrno")
	if errnoType == nil || cl == nil {
		return
	}

	// Declared Errno constants (package scope), excluding the zero success
	// value.
	type errnoConst struct {
		name string
		val  int64
		pos  token.Pos
	}
	var declared []errnoConst
	scope := pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, n := range names {
		c, ok := scope.Lookup(n).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj() != errnoType {
			continue
		}
		v, ok := constIntValue(c)
		if !ok || v == 0 {
			continue
		}
		declared = append(declared, errnoConst{name: n, val: v, pos: c.Pos()})
	}

	entries := mapLitEntries(pkg, cl)
	keyed := map[int64]bool{}
	mapped := map[int64]int64{}
	for _, e := range entries {
		keyed[e.key] = true
		mapped[e.key] = e.val
	}

	// Completeness: every declared errno must be pinned in the map, so a
	// fault-injected value can never cross the boundary Linux-numbered by
	// accident of the identity fallback.
	for _, d := range declared {
		if !keyed[d.val] {
			pass.Reportf(d.pos,
				"errno %s is declared but missing from linuxToXNUErrno: it would cross the persona boundary Linux-numbered via the identity fallback",
				d.name)
		}
	}

	// Effective injectivity over the declared surface: two errnos landing
	// on the same XNU number read as the same condition to an iOS thread.
	out := map[int64]string{}
	for _, d := range declared {
		x := d.val
		if m, ok := mapped[d.val]; ok {
			x = m
		}
		if prev, dup := out[x]; dup {
			pass.Reportf(mapPos,
				"errno translation collision: %s and %s both map to XNU errno %d (the EDEADLK/EAGAIN-35 divergence class)",
				prev, d.name, x)
			continue
		}
		out[x] = d.name
	}
}

// checkSignalMap enforces that the effective linuxToXNUSignal translation
// is a bijection on [1, nsig).
func checkSignalMap(pass *Pass) {
	pkg := pass.Pkg
	cl, mapPos := findMapLit(pkg, "linuxToXNUSignal")
	if cl == nil {
		return
	}
	nsigObj, ok := pkg.Types.Scope().Lookup("nsig").(*types.Const)
	if !ok {
		return
	}
	nsig, ok := constIntValue(nsigObj)
	if !ok || nsig <= 1 {
		return
	}

	entries := mapLitEntries(pkg, cl)
	mapped := map[int64]int64{}
	for _, e := range entries {
		if e.key < 1 || e.key >= nsig {
			pass.Reportf(e.pos,
				"signal map key %d is outside the canonical range [1, %d)", e.key, nsig)
			continue
		}
		if e.val < 1 || e.val >= nsig {
			pass.Reportf(e.pos,
				"signal map value %d (for canonical %d) is outside the XNU range [1, %d)", e.val, e.key, nsig)
			continue
		}
		mapped[e.key] = e.val
	}

	// Effective translation: mapped value, or identity. Surjectivity onto
	// [1, nsig) follows from injectivity on a finite equal-sized domain,
	// so one collision check pins bijectivity.
	out := map[int64]int64{}
	for c := int64(1); c < nsig; c++ {
		x := c
		if m, ok := mapped[c]; ok {
			x = m
		}
		if prev, dup := out[x]; dup {
			pass.Reportf(mapPos,
				"signal translation collision: canonical %d and %d both map to XNU signal %d — an iOS thread can neither register nor receive one of them (the TSTP/CHLD-20 divergence class)",
				prev, c, x)
			continue
		}
		out[x] = c
	}
}

// checkOpenFlags requires every XNU open-flag constant (XNUO + capitalized
// flag name, distinguishing XNUOCreat from the syscall number XNUOpen) to
// be consumed somewhere in its package.
func checkOpenFlags(pass *Pass) {
	pkg := pass.Pkg
	isFlagName := func(name string) bool {
		const p = "XNUO"
		return len(name) > len(p) && strings.HasPrefix(name, p) &&
			name[len(p)] >= 'A' && name[len(p)] <= 'Z'
	}
	var flags []*types.Const
	scope := pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, n := range names {
		if !isFlagName(n) {
			continue
		}
		if c, ok := scope.Lookup(n).(*types.Const); ok {
			if _, isInt := constIntValue(c); isInt {
				flags = append(flags, c)
			}
		}
	}
	if len(flags) == 0 {
		return
	}
	used := map[types.Object]bool{}
	for _, obj := range pkg.Info.Uses {
		if c, ok := obj.(*types.Const); ok {
			used[c] = true
		}
	}
	for _, c := range flags {
		if !used[c] {
			pass.Reportf(c.Pos(),
				"open flag %s is declared but never consumed by a translation: the bit would be dropped or forwarded raw at the persona boundary (the O_CREAT 0x200 divergence class)",
				c.Name())
		}
	}
}
