// Package analysis is ciderlint's analyzer framework: a small, dependency-free
// mirror of golang.org/x/tools/go/analysis, built on the standard library's
// go/ast + go/types only. The container this repo builds in has no module
// proxy access, so the x/tools dependency is replaced by this shim; the
// Analyzer/Pass surface is kept deliberately API-shaped so the suite can be
// ported to the real go/analysis driver by swapping imports.
//
// The suite mechanizes the simulator's core invariants (see DESIGN.md,
// "Simulation invariants"):
//
//	wallclock   — no wall-clock or ambient-randomness leaks into simulation
//	              packages; virtual time advances only through sim.Proc.
//	chargecheck — every syscall handler and diplomat/dyld hop accrues modeled
//	              cost on every return path.
//	waketag     — the wake tag returned by Park/Sleep/Wait must be consumed,
//	              so WakeInterrupted is never silently dropped.
//	tracepure   — code reachable from trace sink callbacks never re-enters
//	              the simulator (the zero-cost-when-disabled guarantee).
//
// The v2 suite (see DESIGN.md, "Static analysis v2") adds the
// ABI-fidelity and hot-path analyzers grown out of the PR 6 differential
// persona oracle — every divergence class it caught dynamically is now
// statically enumerable:
//
//	tablecomplete — syscall tables, errno/signal maps, and open-flag
//	                translations must cover the declared ABI surface, and
//	                the maps must be bijections (the missing-dup and
//	                EDEADLK/EAGAIN collision bug classes).
//	xlatecheck    — raw errno/flag/signal constants of one persona's
//	                numbering must never reach the other persona's trap
//	                without passing through the translation helpers (the
//	                PR 6 open(O_CREAT) bug, as a lint).
//	lockorder     — the static lock-acquisition graph must be acyclic and
//	                no blocking primitive may be entered with a lock held.
//	hotalloc      — functions annotated //hot:noalloc must be
//	                allocation-free, guarding the 0-allocs switch path
//	                without a benchmark run.
//
// Deliberate exceptions are annotated in source with
//
//	//lint:allow <analyzer>: <reason>
//
// on the flagged line or the line directly above it. The colon and the
// reason are mandatory: a bare allow (no justification) is itself a
// diagnostic, and so is a stale allow that suppresses nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check for a single package, reporting findings
	// through the Pass.
	Run func(*Pass) error
}

// A Package is one type-checked package of the loaded program.
type Package struct {
	// Path is the import path ("repro/internal/sim").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// Lint marks packages selected by the load patterns (dependencies
	// pulled in for type information only are loaded with Lint=false and
	// produce no diagnostics).
	Lint bool
}

// A Program is the full set of loaded packages plus shared indices, so
// analyzers can resolve calls across package boundaries (chargecheck's
// may-charge fixpoint and tracepure's reachability both need whole-program
// call resolution).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // sorted by Path

	byPath map[string]*Package
	// funcDecls maps a function/method object to its syntax and owning
	// package, for whole-program body lookups.
	funcDecls map[*types.Func]*FuncSource
	// facts caches whole-program computations keyed by analyzer.
	facts map[string]any
}

// FuncSource is a function's declaration site.
type FuncSource struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// PackageByPath returns the loaded package with the given import path.
func (p *Program) PackageByPath(path string) *Package { return p.byPath[path] }

// FuncBody returns the declaration of fn if it was loaded, or nil for
// functions outside the program (standard library, interface methods,
// function-typed values).
func (p *Program) FuncBody(fn *types.Func) *FuncSource {
	if fn == nil {
		return nil
	}
	return p.funcDecls[fn]
}

// Fact returns the whole-program fact under key, computing and caching it
// on first use. Analyzers use this to build global indices exactly once
// even though Run is invoked per package.
func (p *Program) Fact(key string, build func() any) any {
	if v, ok := p.facts[key]; ok {
		return v
	}
	v := build()
	p.facts[key] = v
	return v
}

// buildIndices populates the cross-package lookup tables.
func (p *Program) buildIndices() {
	p.byPath = make(map[string]*Package, len(p.Packages))
	p.funcDecls = make(map[*types.Func]*FuncSource)
	p.facts = make(map[string]any)
	for _, pkg := range p.Packages {
		p.byPath[pkg.Path] = pkg
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.funcDecls[obj] = &FuncSource{Decl: fd, Pkg: pkg}
				}
			}
		}
	}
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Allowed marks a finding suppressed by a //lint:allow directive;
	// AllowReason carries the directive's justification. Run filters
	// allowed findings out; RunAll keeps them so tooling (ciderlint -json)
	// can report allow status.
	Allowed     bool
	AllowReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Unparen strips parentheses from an expression.
func Unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// Callee resolves the static callee of call within pkg: a declared function,
// a method (concrete or interface), or nil for builtins, conversions, and
// calls through function-typed values.
func Callee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Fn).
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsRealCall reports whether call invokes code: it is neither a type
// conversion nor a builtin (len, append, make, ...).
func IsRealCall(pkg *Package, call *ast.CallExpr) bool {
	fun := Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return false
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			return false
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if _, ok := pkg.Info.Uses[sel.Sel].(*types.Builtin); ok {
			return false
		}
	}
	return true
}

// RecvPkgName returns the name of the package declaring fn's receiver type,
// or "" if fn is not a method. Methods on pointer receivers resolve to the
// element type's package.
func RecvPkgName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if p := fn.Pkg(); p != nil {
		return p.Name()
	}
	return ""
}

// RecvTypeName returns the named type of fn's receiver ("SyscallTable"),
// or "" if fn is not a method on a named type.
func RecvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// directive is one parsed //lint:allow annotation.
type directive struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Position
	// hits counts findings this directive suppressed; a directive whose
	// analyzer ran yet hit nothing is stale and reported as a finding.
	hits int
}

// DirectivePrefix is the comment marker the driver understands.
const DirectivePrefix = "//lint:allow"

// parseDirectives extracts //lint:allow directives from a package's files.
// Malformed directives (missing colon, missing reason, unknown analyzer
// name) are reported as diagnostics in their own right: a suppression
// without a justification is exactly the kind of silent exception the
// suite exists to forbid.
func parseDirectives(prog *Program, pkg *Package, known map[string]bool, diags *[]Diagnostic) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, DirectivePrefix))
				// Allow fixtures to append a "// want" expectation to the
				// directive itself (analysistest convention).
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				name, reason, colon := strings.Cut(rest, ":")
				name = strings.TrimSpace(name)
				reason = strings.TrimSpace(reason)
				if !colon || strings.ContainsAny(name, " \t") || name == "" {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "ciderlint",
						Message:  "malformed directive: want //lint:allow <analyzer>: <reason>",
					})
					continue
				}
				if reason == "" {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "ciderlint",
						Message:  fmt.Sprintf("bare //lint:allow %s: a suppression must carry a justification after the colon", name),
					})
					continue
				}
				if !known[name] {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "ciderlint",
						Message:  fmt.Sprintf("directive names unknown analyzer %q", name),
					})
					continue
				}
				out = append(out, &directive{
					file: pos.Filename, line: pos.Line,
					analyzer: name, reason: reason, pos: pos,
				})
			}
		}
	}
	return out
}

// AnalyzerTiming records one analyzer's cumulative wall-clock time across
// every linted package, so `make lint` can surface slow passes.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// Result is a full analysis run: every diagnostic (allowed ones included,
// marked) plus per-analyzer timings.
type Result struct {
	// Diags holds all findings sorted by position; suppressed findings are
	// kept with Allowed=true so tooling can report allow status.
	Diags []Diagnostic
	// Timings lists per-analyzer elapsed time, in suite order.
	Timings []AnalyzerTiming
}

// Findings returns the diagnostics that survive suppression.
func (r *Result) Findings() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if !d.Allowed {
			out = append(out, d)
		}
	}
	return out
}

// RunAll executes the analyzers over every Lint-selected package of the
// program and applies //lint:allow suppression, keeping suppressed
// findings (marked Allowed) in the result. A directive that suppresses
// nothing — while its analyzer is part of the run — is itself reported as
// stale: dead allows rot into blanket exemptions when the code under them
// changes.
func RunAll(prog *Program, analyzers []*Analyzer) (*Result, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	res := &Result{}
	elapsed := make(map[string]time.Duration, len(analyzers))
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !pkg.Lint {
			continue
		}
		for _, a := range analyzers {
			start := time.Now()
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			elapsed[a.Name] += time.Since(start)
		}
	}
	// Directive suppression: an allow on the flagged line, or on the line
	// directly above it, silences that analyzer there.
	var dirs []*directive
	for _, pkg := range prog.Packages {
		if !pkg.Lint {
			continue
		}
		dirs = append(dirs, parseDirectives(prog, pkg, known, &diags)...)
	}
	byKey := make(map[string]*directive, 2*len(dirs))
	for _, d := range dirs {
		byKey[fmt.Sprintf("%s:%d:%s", d.file, d.line, d.analyzer)] = d
		byKey[fmt.Sprintf("%s:%d:%s", d.file, d.line+1, d.analyzer)] = d
	}
	for i := range diags {
		d := &diags[i]
		if dir, ok := byKey[fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.Analyzer)]; ok {
			d.Allowed = true
			d.AllowReason = dir.reason
			dir.hits++
		}
	}
	for _, dir := range dirs {
		if dir.hits == 0 {
			diags = append(diags, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "ciderlint",
				Message: fmt.Sprintf("stale //lint:allow %s: no %s finding here to suppress — remove the directive",
					dir.analyzer, dir.analyzer),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	res.Diags = diags
	for _, a := range analyzers {
		res.Timings = append(res.Timings, AnalyzerTiming{Name: a.Name, Elapsed: elapsed[a.Name]})
	}
	return res, nil
}

// Run executes the analyzers and returns only the diagnostics surviving
// //lint:allow suppression, sorted by position.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunAll(prog, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Findings(), nil
}

// All returns the full ciderlint suite: the four v1 simulation invariants
// plus the four v2 ABI-fidelity/concurrency/hot-path analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock, ChargeCheck, WakeTag, TracePure,
		TableComplete, XlateCheck, LockOrder, HotAlloc,
	}
}
