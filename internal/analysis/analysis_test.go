package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Wallclock}, "wallclock/...")
}

func TestChargeCheck(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.ChargeCheck}, "chargecheck/...")
}

func TestWakeTag(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.WakeTag}, "waketag/...")
}

func TestTracePure(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.TracePure}, "tracepure/...")
}

func TestTableComplete(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.TableComplete}, "tablecomplete/...")
}

func TestXlateCheck(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.XlateCheck}, "xlatecheck/...")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.LockOrder}, "lockorder/...")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.HotAlloc}, "hotalloc/...")
}

func TestDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.All(), "directives/...")
}

// TestAnalysisSelfCheck pins the analysis machinery itself (and the
// diffcheck oracle it mirrors policy with) to zero findings: the linter
// must hold its own code to the invariants it enforces, and a stale or
// bare allow inside either package would silently weaken every gate.
func TestAnalysisSelfCheck(t *testing.T) {
	prog, err := analysis.Load(analysis.LoadConfig{Dir: "../.."},
		"./internal/analysis/...", "./internal/diffcheck")
	if err != nil {
		t.Fatalf("loading self-check packages: %v", err)
	}
	diags, err := analysis.Run(prog, analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("self-check finding: %s", d)
	}
}

// TestSuppressionsJustified enforces the //lint:allow policy over the
// real tree mechanically, mirroring diffcheck's
// TestAllowlistEntriesJustified: every directive must use the colon form,
// name an analyzer in the suite, and carry a substantive reason — a
// suppression whose justification fits in a shrug is a blanket exemption.
func TestSuppressionsJustified(t *testing.T) {
	known := map[string]bool{}
	for _, a := range analysis.All() {
		known[a.Name] = true
	}
	colonForm := regexp.MustCompile(`^//lint:allow ([^\s:]+): (.+)$`)
	root := "../.."
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, analysis.DirectivePrefix)
			if idx < 0 {
				continue
			}
			// Skip mentions inside string literals (the parser itself) and
			// inside prose comments — a real directive starts its own
			// comment, so nothing but code and whitespace precedes it.
			dir := line[idx:]
			if strings.Contains(line[:idx], `"`) || strings.Contains(line[:idx], "`") ||
				strings.Contains(line[:idx], "//") {
				continue
			}
			m := colonForm.FindStringSubmatch(dir)
			if m == nil {
				t.Errorf("%s:%d: directive is not colon-form //lint:allow <analyzer>: <reason>: %q", path, i+1, dir)
				continue
			}
			if !known[m[1]] {
				t.Errorf("%s:%d: directive names unknown analyzer %q", path, i+1, m[1])
			}
			if len(m[2]) < 20 {
				t.Errorf("%s:%d: reason %q too thin — justify the suppression (>= 20 chars)", path, i+1, m[2])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking tree: %v", err)
	}
}

// TestTreeIsClean runs the full suite over the real module, pinning the
// repository to zero findings: a regression that reintroduces a wall-clock
// read, an uncharged handler path, a discarded wake tag, an untranslated
// persona payload, an incomplete ABI table, a lock-order violation, or an
// allocation on a //hot:noalloc path fails this test (and `make lint`).
func TestTreeIsClean(t *testing.T) {
	prog, err := analysis.Load(analysis.LoadConfig{Dir: "../.."}, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(prog, analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding: %s", d)
	}
}
