package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Wallclock}, "wallclock/...")
}

func TestChargeCheck(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.ChargeCheck}, "chargecheck/...")
}

func TestWakeTag(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.WakeTag}, "waketag/...")
}

func TestTracePure(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.TracePure}, "tracepure/...")
}

func TestDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.All(), "directives/...")
}

// TestTreeIsClean runs the full suite over the real module, pinning the
// repository to zero findings: a regression that reintroduces a wall-clock
// read, an uncharged handler path, a discarded wake tag, or an impure
// trace sink fails this test (and `make lint`).
func TestTreeIsClean(t *testing.T) {
	prog, err := analysis.Load(analysis.LoadConfig{Dir: "../.."}, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(prog, analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding: %s", d)
	}
}
