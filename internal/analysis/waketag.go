package analysis

import (
	"go/ast"
	"go/types"
)

// wakeTagMethods are the sim-package blocking primitives whose first (or
// only) result is the wake tag. Discarding it drops WakeInterrupted on the
// floor — exactly the lost-wakeup / swallowed-signal class of bug PR 1
// fixed by hand in the kernel IPC paths.
var wakeTagMethods = map[string]bool{
	"Park": true, "Sleep": true, "Wait": true, "WaitTimeout": true,
}

// WakeTag requires the int returned by sim.Proc.Park/Sleep and
// sim.WaitQueue.Wait/WaitTimeout to be consumed.
var WakeTag = &Analyzer{
	Name: "waketag",
	Doc: "the wake tag returned by Park/Sleep/Wait must not be discarded, " +
		"so WakeInterrupted (signal) wakeups are always handled",
	Run: runWakeTag,
}

// isWakeTagCall reports whether call invokes one of the tag-returning sim
// blocking primitives.
func isWakeTagCall(pkg *Package, call *ast.CallExpr) bool {
	fn := Callee(pkg, call)
	if fn == nil || !wakeTagMethods[fn.Name()] || RecvPkgName(fn) != "sim" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	first, ok := sig.Results().At(0).Type().(*types.Basic)
	return ok && first.Kind() == types.Int
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func runWakeTag(pass *Pass) error {
	report := func(call *ast.CallExpr) {
		fn := Callee(pass.Pkg, call)
		pass.Reportf(call.Pos(),
			"wake tag of sim.%s.%s discarded: WakeInterrupted would be silently dropped",
			RecvTypeName(fn), fn.Name())
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := Unparen(st.X).(*ast.CallExpr); ok && isWakeTagCall(pass.Pkg, call) {
					report(call)
				}
			case *ast.AssignStmt:
				// tag, timedOut := q.WaitTimeout(...): the tag is the first
				// result; assigning it to the blank identifier is a discard
				// too. Both the 1:1 (a, b := f(), g()) and the multi-value
				// (a, b := f()) forms are handled.
				if len(st.Rhs) == 1 && len(st.Lhs) >= 1 {
					if call, ok := Unparen(st.Rhs[0]).(*ast.CallExpr); ok &&
						isWakeTagCall(pass.Pkg, call) && isBlank(st.Lhs[0]) {
						report(call)
					}
					return true
				}
				for i, rhs := range st.Rhs {
					if i >= len(st.Lhs) {
						break
					}
					if call, ok := Unparen(rhs).(*ast.CallExpr); ok &&
						isWakeTagCall(pass.Pkg, call) && isBlank(st.Lhs[i]) {
						report(call)
					}
				}
			case *ast.GoStmt:
				if isWakeTagCall(pass.Pkg, st.Call) {
					report(st.Call)
				}
			case *ast.DeferStmt:
				if isWakeTagCall(pass.Pkg, st.Call) {
					report(st.Call)
				}
			}
			return true
		})
	}
	return nil
}
