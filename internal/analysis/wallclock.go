package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// simPackageNames are the path segments that mark a package as part of the
// deterministic simulation: any wall-clock read or ambient-randomness use
// inside one of these breaks bit-identical replay (virtual time must
// advance only through sim.Proc.Advance/Sleep). The set covers every layer
// that executes under the simulator, from the scheduler itself up through
// the kernel, the duct-taped XNU subsystems, libraries, services, the
// graphics stack, the benchmark drivers, and the fault-injection/soak
// layer (whose decisions must be pure functions of seed and virtual time).
var simPackageNames = map[string]bool{
	"sim": true, "kernel": true, "xnu": true, "hw": true,
	"lmbench": true, "passmark": true, "gpu": true, "diplomat": true,
	"dyld": true, "services": true, "libsystem": true, "libkqueue": true,
	"graphics": true, "uikit": true, "devices": true, "input": true,
	"bionic": true, "dalvik": true, "core": true, "mem": true,
	"prog": true, "iokit": true, "abi": true, "persona": true,
	"vfs": true, "trace": true, "ducttape": true, "ciderpress": true,
	"fault": true, "soak": true, "diffcheck": true, "replay": true,
}

// IsSimPackage reports whether an import path denotes a simulation package
// (any path segment in simPackageNames).
func IsSimPackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if simPackageNames[seg] {
			return true
		}
	}
	return false
}

// bannedTimeFuncs are the package time entry points that read or wait on
// the host's wall clock.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// Wallclock forbids wall-clock reads and unseeded randomness inside
// simulation packages.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Sleep/time.After and unseeded math/rand in " +
		"simulation packages; any wall-clock leak breaks deterministic replay",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if !IsSimPackage(pass.Pkg.Path) {
		return nil
	}
	// Iterate uses sorted by position for deterministic output. Checking
	// uses (not just calls) also catches leaks via stored function values
	// (f := time.Now; ... f()).
	type use struct {
		id  *ast.Ident
		obj *types.Func
	}
	var uses []use
	for id, obj := range pass.Pkg.Info.Uses {
		if f, ok := obj.(*types.Func); ok {
			uses = append(uses, use{id, f})
		}
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].id.Pos() < uses[j].id.Pos() })
	for _, u := range uses {
		pkg := u.obj.Pkg()
		if pkg == nil {
			continue
		}
		sig, ok := u.obj.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			continue // methods (e.g. Time.Sub) are derived values, not clock reads
		}
		switch pkg.Path() {
		case "time":
			if bannedTimeFuncs[u.obj.Name()] {
				pass.Reportf(u.id.Pos(),
					"wall-clock leak: time.%s breaks deterministic replay; use sim virtual time (Proc.Now/Sleep)",
					u.obj.Name())
			}
		case "math/rand", "math/rand/v2":
			// Package-level rand functions draw from the globally (and since
			// Go 1.20 randomly) seeded source; constructors for explicitly
			// seeded generators are fine.
			if !strings.HasPrefix(u.obj.Name(), "New") {
				pass.Reportf(u.id.Pos(),
					"nondeterminism leak: %s.%s uses the ambient random source; construct an explicitly seeded rand.New(rand.NewSource(seed))",
					pkg.Path(), u.obj.Name())
			}
		}
	}
	return nil
}
