package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadConfig parameterizes Load.
type LoadConfig struct {
	// Dir is the root to load from: a module root (go.mod present) or a
	// fixture tree whose subdirectories are import paths (analysistest).
	Dir string
	// Module overrides the module path. Empty means: read it from
	// Dir/go.mod, or, when no go.mod exists, treat import paths as
	// directories relative to Dir (the fixture layout).
	Module string
}

// Load parses and type-checks the packages under cfg.Dir selected by
// patterns ("./...", "./internal/...", "./internal/sim"), plus the
// in-module dependency closure needed to resolve their types. Standard
// library imports are type-checked from GOROOT source, so loading works
// without compiled export data or network access.
func Load(cfg LoadConfig, patterns ...string) (*Program, error) {
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	module := cfg.Module
	if module == "" {
		module = readModulePath(filepath.Join(root, "go.mod"))
	}

	dirs, err := goSourceDirs(root)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := map[string]bool{}
	for _, rel := range dirs {
		for _, pat := range patterns {
			if matchPattern(pat, rel) {
				selected[rel] = true
			}
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v under %s", patterns, root)
	}

	ld := &loader{
		root:   root,
		module: module,
		fset:   token.NewFileSet(),
		parsed: map[string]*parsedPkg{},
	}
	ld.stdlib = importer.ForCompiler(ld.fset, "source", nil)

	// Parse the selected packages and their in-module dependency closure.
	var order []string
	for rel := range selected {
		order = append(order, rel)
	}
	sort.Strings(order)
	for _, rel := range order {
		if err := ld.parseClosure(rel); err != nil {
			return nil, err
		}
	}

	// Type-check in dependency order.
	prog := &Program{Fset: ld.fset}
	var rels []string
	for rel := range ld.parsed {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		if err := ld.check(rel); err != nil {
			return nil, err
		}
	}
	for _, rel := range rels {
		pp := ld.parsed[rel]
		prog.Packages = append(prog.Packages, &Package{
			Path:  pp.path,
			Dir:   pp.dir,
			Files: pp.files,
			Types: pp.types,
			Info:  pp.info,
			Lint:  selected[rel],
		})
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	prog.buildIndices()
	return prog, nil
}

// readModulePath extracts the module path from a go.mod file ("" if the
// file is missing or malformed).
func readModulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// goSourceDirs walks root and returns the relative paths (with "." for the
// root itself) of every directory holding at least one non-test .go file.
// testdata, vendor, hidden, and underscore-prefixed directories are skipped,
// matching the go tool's package enumeration.
func goSourceDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				out = append(out, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// matchPattern reports whether the relative directory rel is selected by a
// go-style package pattern.
func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	if pat == "..." || pat == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	}
	if pat == "." {
		return rel == "."
	}
	return rel == pat
}

// parsedPkg is a package mid-load.
type parsedPkg struct {
	rel   string // directory relative to root
	dir   string
	path  string // import path
	files []*ast.File
	// imports holds in-module dependencies as relative directories.
	imports []string
	types   *types.Package
	info    *types.Info
	// checking guards against import cycles.
	checking bool
}

type loader struct {
	root   string
	module string
	fset   *token.FileSet
	stdlib types.Importer
	parsed map[string]*parsedPkg
}

// importPath maps a relative directory to its import path.
func (ld *loader) importPath(rel string) string {
	if rel == "." {
		return ld.module
	}
	if ld.module == "" {
		return rel
	}
	return ld.module + "/" + rel
}

// relOfImport maps an import path to an in-module relative directory, or
// "" when the import is outside the module (standard library).
func (ld *loader) relOfImport(path string) string {
	if ld.module != "" {
		if path == ld.module {
			return "."
		}
		if rest, ok := strings.CutPrefix(path, ld.module+"/"); ok {
			return rest
		}
		return ""
	}
	// Fixture mode: an import is in-module iff the directory exists.
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return path
	}
	return ""
}

// parseClosure parses rel and, transitively, its in-module imports.
func (ld *loader) parseClosure(rel string) error {
	if _, ok := ld.parsed[rel]; ok {
		return nil
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	pp := &parsedPkg{rel: rel, dir: dir, path: ld.importPath(rel)}
	ld.parsed[rel] = pp
	seen := map[string]bool{}
	for _, e := range ents {
		if !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		pp.files = append(pp.files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if dep := ld.relOfImport(path); dep != "" && !seen[dep] {
				seen[dep] = true
				pp.imports = append(pp.imports, dep)
			}
		}
	}
	if len(pp.files) == 0 {
		return fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	sort.Strings(pp.imports)
	for _, dep := range pp.imports {
		if err := ld.parseClosure(dep); err != nil {
			return err
		}
	}
	return nil
}

// check type-checks rel (dependencies first).
func (ld *loader) check(rel string) error {
	pp := ld.parsed[rel]
	if pp.types != nil {
		return nil
	}
	if pp.checking {
		return fmt.Errorf("analysis: import cycle through %s", pp.path)
	}
	pp.checking = true
	defer func() { pp.checking = false }()
	for _, dep := range pp.imports {
		if err := ld.check(dep); err != nil {
			return err
		}
	}
	pp.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: &progImporter{ld: ld}}
	tpkg, err := conf.Check(pp.path, ld.fset, pp.files, pp.info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pp.path, err)
	}
	pp.types = tpkg
	return nil
}

// progImporter resolves in-module imports from the loader and everything
// else (standard library) from GOROOT source.
type progImporter struct {
	ld *loader
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if rel := pi.ld.relOfImport(path); rel != "" {
		pp := pi.ld.parsed[rel]
		if pp == nil || pp.types == nil {
			return nil, fmt.Errorf("analysis: internal import %s not loaded", path)
		}
		return pp.types, nil
	}
	return pi.ld.stdlib.Import(path)
}
