// Cross-package leg of the xlatecheck fixture: abi.Kill's sig-parameter
// requirement (XNU numbering) was computed while analyzing the abi
// package and must reach call sites here through the whole-program fact.
package libsystem

import (
	"xlatecheck/abi"
	"xlatecheck/kernel"
)

// RaiseBad hands a canonical signal number to the XNU-facing wrapper.
func RaiseBad(t *kernel.Thread) {
	abi.Kill(t, 1, kernel.SIGUSR1) // want `xlatecheck: Linux payload SIGUSR1 flows into XNU parameter 2 of Kill`
}

// RaiseGood translates at the boundary.
func RaiseGood(t *kernel.Thread) {
	abi.Kill(t, 1, kernel.SignalToXNU(kernel.SIGUSR1))
}

// LimitBad hands a canonical rlimit resource number to the XNU-facing
// wrapper: abi.Setrlimit's requirement crosses packages like Kill's.
func LimitBad(t *kernel.Thread) {
	abi.Setrlimit(t, kernel.RLimitNoFile) // want `xlatecheck: Linux payload RLimitNoFile flows into XNU parameter 1 of Setrlimit`
}

// LimitGood renumbers first.
func LimitGood(t *kernel.Thread) {
	abi.Setrlimit(t, kernel.RlimitToXNU(kernel.RLimitNoFile))
}
