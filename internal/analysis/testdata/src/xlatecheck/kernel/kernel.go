// Stand-in kernel package for the xlatecheck fixture: canonical
// (Linux-numbered) constants, the trap entry point, translation helpers,
// and the iOS TLS errno field.
package kernel

// Errno is the canonical error type; its constants are Linux payloads.
type Errno int

const (
	EPERM  Errno = 1
	EAGAIN Errno = 11
)

// Canonical signal numbers and open-flag bits are Linux payloads too.
const (
	SIGUSR1 = 10
	OCreat  = 0x40
)

// Canonical rlimit resource numbers are Linux payloads; RLimInfinity is
// the same bit pattern in both personas and carries no domain.
const (
	RLimitNoFile = 7
	RLimInfinity = ^uint64(0)
)

// Linux-domain trap numbers.
const (
	SysOpen      = 5
	SysKill      = 37
	SysSetrlimit = 75
)

// Thread is the trap entry point; a 2-arg Syscall matches the real
// dispatcher's (number, payload) shape.
type Thread struct{ errno int }

func (t *Thread) Syscall(num int, arg uint64) uint64 { return arg }

// Translation helpers: results are of the target domain and the argument
// subtree is sanitized.
func SignalToXNU(sig int) int   { return sig }
func SignalFromXNU(sig int) int { return sig }
func ErrnoToXNU(e Errno) int    { return int(e) }
func ErrnoFromXNU(x int) Errno  { return Errno(x) }
func RlimitToXNU(res int) int   { return res }
func RlimitFromXNU(res int) int { return res }

// Persona/TLS stand-ins for the errno border-crossing rule.
const IOS = 1

type TLSState struct{ Errno int }

type Persona struct{ ios TLSState }

func (p *Persona) TLS(k int) *TLSState { return &p.ios }

// SetErrnoRaw writes Linux numbering straight into the iOS errno slot:
// the errno-35 border crossing.
func SetErrnoRaw(p *Persona, e Errno) {
	p.TLS(IOS).Errno = int(e) // want `xlatecheck: canonical Errno value written to the iOS TLS errno field without ErrnoToXNU`
}

// SetErrnoTranslated routes through the helper and is clean.
func SetErrnoTranslated(p *Persona, e Errno) {
	p.TLS(IOS).Errno = ErrnoToXNU(e)
}
