// Stand-in abi (XNU persona) package for the xlatecheck fixture: XNU trap
// numbers, the wrap registration closure, and trap-feeding helpers whose
// parameter requirements export to other packages.
package abi

import "xlatecheck/kernel"

// XNU-domain trap numbers and flag bits.
const (
	XNUKillTrap = 37
	XNUOCreat   = 0x200
)

// wrap mirrors the real abi package's forwarding closure shape:
// (xnuNum, linuxNum, name, transform).
func wrap(xnuNum, linuxNum int, name string, xform func(*uint64)) {
	_ = xnuNum + linuxNum
	_ = name
	_ = xform
}

func install() {
	// The PR 6 open(O_CREAT) shape: a payload-carrying syscall wrapped
	// with a nil transform forwards raw XNU flag bits to the Linux
	// implementation.
	wrap(5, 5, "open", nil) // want `xlatecheck: syscall "open" carries persona-numbered payloads but is wrapped with a nil transform`

	// close carries no persona-numbered payload; nil is fine.
	wrap(6, 6, "close", nil)

	// kill with a real transform is the fixed shape.
	wrap(37, 62, "kill", func(a *uint64) { *a = uint64(kernel.SignalFromXNU(int(*a))) })
}

// Kill feeds its sig parameter into an XNU trap, so call sites must pass
// XNU numbering: the requirement is exported to importing packages.
func Kill(t *kernel.Thread, pid, sig int) {
	_ = pid
	t.Syscall(XNUKillTrap, uint64(sig))
}

// DirectBad passes a Linux payload straight into an XNU trap.
func DirectBad(t *kernel.Thread) {
	t.Syscall(XNUKillTrap, uint64(kernel.SIGUSR1)) // want `xlatecheck: Linux payload SIGUSR1 flows into a XNU trap untranslated`
}

// DirectGood translates first.
func DirectGood(t *kernel.Thread) {
	t.Syscall(XNUKillTrap, uint64(kernel.SignalToXNU(kernel.SIGUSR1)))
}

// DirectSuppressed shows the allow machinery applies to xlatecheck.
func DirectSuppressed(t *kernel.Thread) {
	//lint:allow xlatecheck: fixture: raw path kept to exercise suppression
	t.Syscall(XNUKillTrap, uint64(kernel.SIGUSR1))
}

// generic serves both personas: its n parameter reaches a Linux trap and
// an XNU trap, so the requirement conflicts away and call sites are free.
func generic(t *kernel.Thread, n int) {
	t.Syscall(kernel.SysOpen, uint64(n))
	t.Syscall(XNUKillTrap, uint64(n))
}

// ConflictFree passes a Linux payload into the conflicted parameter: no
// requirement, no finding.
func ConflictFree(t *kernel.Thread) {
	generic(t, kernel.SIGUSR1)
}
