// Stand-in abi (XNU persona) package for the xlatecheck fixture: XNU trap
// numbers, the wrap registration closure, and trap-feeding helpers whose
// parameter requirements export to other packages.
package abi

import "xlatecheck/kernel"

// XNU-domain trap numbers, flag bits, and rlimit resource numbers (XNU
// says RLIMIT_NOFILE is 8 where Linux says 7).
const (
	XNUKillTrap     = 37
	XNUOCreat       = 0x200
	XNUSetrlimit    = 195
	XNURLimitNoFile = 8
)

// wrap mirrors the real abi package's forwarding closure shape:
// (xnuNum, linuxNum, name, transform).
func wrap(xnuNum, linuxNum int, name string, xform func(*uint64)) {
	_ = xnuNum + linuxNum
	_ = name
	_ = xform
}

func install() {
	// The PR 6 open(O_CREAT) shape: a payload-carrying syscall wrapped
	// with a nil transform forwards raw XNU flag bits to the Linux
	// implementation.
	wrap(5, 5, "open", nil) // want `xlatecheck: syscall "open" carries persona-numbered payloads but is wrapped with a nil transform`

	// close carries no persona-numbered payload; nil is fine.
	wrap(6, 6, "close", nil)

	// kill with a real transform is the fixed shape.
	wrap(37, 62, "kill", func(a *uint64) { *a = uint64(kernel.SignalFromXNU(int(*a))) })

	// rlimit resource numbers are persona payloads too: a nil transform
	// would read or cap the wrong resource (XNU 8 is NOFILE, Linux 8 is
	// MEMLOCK).
	wrap(194, 191, "getrlimit", nil) // want `xlatecheck: syscall "getrlimit" carries persona-numbered payloads but is wrapped with a nil transform`
	wrap(195, 75, "setrlimit", func(a *uint64) { *a = uint64(kernel.RlimitFromXNU(int(*a))) })
}

// Kill feeds its sig parameter into an XNU trap, so call sites must pass
// XNU numbering: the requirement is exported to importing packages.
func Kill(t *kernel.Thread, pid, sig int) {
	_ = pid
	t.Syscall(XNUKillTrap, uint64(sig))
}

// DirectBad passes a Linux payload straight into an XNU trap.
func DirectBad(t *kernel.Thread) {
	t.Syscall(XNUKillTrap, uint64(kernel.SIGUSR1)) // want `xlatecheck: Linux payload SIGUSR1 flows into a XNU trap untranslated`
}

// DirectGood translates first.
func DirectGood(t *kernel.Thread) {
	t.Syscall(XNUKillTrap, uint64(kernel.SignalToXNU(kernel.SIGUSR1)))
}

// DirectSuppressed shows the allow machinery applies to xlatecheck.
func DirectSuppressed(t *kernel.Thread) {
	//lint:allow xlatecheck: fixture: raw path kept to exercise suppression
	t.Syscall(XNUKillTrap, uint64(kernel.SIGUSR1))
}

// generic serves both personas: its n parameter reaches a Linux trap and
// an XNU trap, so the requirement conflicts away and call sites are free.
func generic(t *kernel.Thread, n int) {
	t.Syscall(kernel.SysOpen, uint64(n))
	t.Syscall(XNUKillTrap, uint64(n))
}

// ConflictFree passes a Linux payload into the conflicted parameter: no
// requirement, no finding.
func ConflictFree(t *kernel.Thread) {
	generic(t, kernel.SIGUSR1)
}

// Setrlimit feeds its res parameter into the XNU setrlimit trap, so call
// sites must pass XNU resource numbering.
func Setrlimit(t *kernel.Thread, res int) {
	t.Syscall(XNUSetrlimit, uint64(res))
}

// RlimitDirectBad passes a canonical resource number into an XNU trap.
func RlimitDirectBad(t *kernel.Thread) {
	t.Syscall(XNUSetrlimit, uint64(kernel.RLimitNoFile)) // want `xlatecheck: Linux payload RLimitNoFile flows into a XNU trap untranslated`
}

// RlimitDirectGood renumbers at the boundary.
func RlimitDirectGood(t *kernel.Thread) {
	t.Syscall(XNUSetrlimit, uint64(kernel.RlimitToXNU(kernel.RLimitNoFile)))
}

// RlimitReverseBad forwards an XNU resource number to the Linux trap.
func RlimitReverseBad(t *kernel.Thread) {
	t.Syscall(kernel.SysSetrlimit, uint64(XNURLimitNoFile)) // want `xlatecheck: XNU payload XNURLimitNoFile flows into a Linux trap untranslated`
}

// RlimitInfinityFree: RLIM_INFINITY is domain-free and crosses freely.
func RlimitInfinityFree(t *kernel.Thread) {
	t.Syscall(XNUSetrlimit, kernel.RLimInfinity)
}
