// Fixture for chargecheck: every registered handler must charge on every
// return path; diplomat/dyld hops must charge somewhere in their body.
package a

import (
	"chargecheck/fault"
	"chargecheck/kernel"
)

// chargeAll charges indirectly; the may-charge fixpoint must see through it.
func chargeAll(t *kernel.Thread) {
	t.Charge(3)
}

// pidOf is pure: calling it does not count as charging.
func pidOf(t *kernel.Thread) uint64 { return uint64(t.PID()) }

// getpidFree is a named handler with an uncharged return path.
func getpidFree(t *kernel.Thread) kernel.SyscallRet {
	return kernel.SyscallRet{R0: pidOf(t)} // want `chargecheck: return path accrues no virtual-time cost`
}

func Install(tb *kernel.SyscallTable, hooks *kernel.Hooks, cb func()) {
	tb.Register(1, "charged", func(t *kernel.Thread) kernel.SyscallRet {
		t.Charge(10)
		return kernel.SyscallRet{R0: 1}
	})

	tb.Register(2, "free", func(t *kernel.Thread) kernel.SyscallRet {
		return kernel.SyscallRet{R0: pidOf(t)} // want `chargecheck: return path accrues no virtual-time cost`
	})

	tb.Register(3, "early-return", func(t *kernel.Thread) kernel.SyscallRet {
		if t.PID() == 0 {
			return kernel.SyscallRet{R0: 1} // want `chargecheck: return path accrues no virtual-time cost`
		}
		t.Charge(1)
		return kernel.SyscallRet{R0: 0}
	})

	// Bare errno rejections cost exactly the dispatcher's entry/exit
	// charges by design and are exempt.
	tb.Register(4, "reject", func(t *kernel.Thread) kernel.SyscallRet {
		if t.PID() == 0 {
			return kernel.SyscallRet{Errno: 22}
		}
		chargeAll(t)
		return kernel.SyscallRet{}
	})

	// ...but an errno combined with a result payload is real work and must
	// be charged.
	tb.Register(5, "partial", func(t *kernel.Thread) kernel.SyscallRet {
		return kernel.SyscallRet{R0: 1, Errno: 4} // want `chargecheck: return path accrues no virtual-time cost`
	})

	// Charging through a result expression counts.
	tb.Register(6, "inline", func(t *kernel.Thread) kernel.SyscallRet {
		return kernel.SyscallRet{R0: waitFor(t)}
	})

	// Calls through function values may charge; the analysis is optimistic
	// about them.
	tb.Register(7, "dynamic", func(t *kernel.Thread) kernel.SyscallRet {
		cb()
		return kernel.SyscallRet{R0: 0}
	})

	// A registered named handler is resolved to its declaration.
	tb.Register(8, "named", getpidFree)

	// A deliberately free syscall carries a justified allow directive.
	tb.Register(9, "getpid", func(t *kernel.Thread) kernel.SyscallRet {
		//lint:allow chargecheck: pid is served from the cached persona, no modeled cost
		return kernel.SyscallRet{R0: pidOf(t)}
	})

	// Fault-injection sites are charge seeds: the consult-and-apply
	// contract means an injected early-errno return has paid its modeled
	// cost through the consult, so this path is not flagged.
	in := &fault.Injector{}
	tb.Register(10, "injected", func(t *kernel.Thread) kernel.SyscallRet {
		if out, ok := in.Check(1, "a/injected", 0); ok {
			return kernel.SyscallRet{R0: ^uint64(0), Errno: kernel.Errno(out.Errno)}
		}
		t.Charge(1)
		return kernel.SyscallRet{}
	})

	// Interrupt (the park-point consult) seeds the same way through the
	// may-charge fixpoint.
	tb.Register(11, "interrupted", func(t *kernel.Thread) kernel.SyscallRet {
		if in.Interrupt(0, "waitq:pipe") {
			return kernel.SyscallRet{R0: 1, Errno: 4}
		}
		t.Charge(1)
		return kernel.SyscallRet{}
	})

	// Crash consults seed the same way: the dispatcher's pre-handler
	// crash check pays the injected fault's modeled cost at the consult.
	tb.Register(12, "crash-checked", func(t *kernel.Thread) kernel.SyscallRet {
		if out, ok := in.Crash(0, "/bin/x"); ok {
			return kernel.SyscallRet{R0: 2, Errno: kernel.Errno(out.Errno)}
		}
		t.Charge(1)
		return kernel.SyscallRet{}
	})

	hooks.AtExit(func(t *kernel.Thread) {
		t.Charge(2)
	})
	hooks.AtExit(func(t *kernel.Thread) { // want `chargecheck: dyld AtExit hook accrues no virtual-time cost`
		_ = pidOf(t)
	})
}

func waitFor(t *kernel.Thread) uint64 {
	t.Proc().Advance(5)
	return 1
}

// Memory-pressure handlers are hops: delivery runs in the context of
// whichever thread crossed the watermark, and the runtime's dispatch cost
// must be charged there.
func InstallPressure(ms *kernel.Memorystatus, tk *kernel.Task, t *kernel.Thread) {
	ms.OnPressure(tk, func(level int) {
		t.Charge(2) // delivery cost: clean
	})
	ms.OnPressure(tk, func(level int) { // want `chargecheck: memory-pressure handler accrues no virtual-time cost`
		_ = pidOf(t)
	})
}

// Engine mimics the diplomat: Wrap-returned closures are hops and must
// accrue cost somewhere in their body.
type Engine struct{ calls int }

func (e *Engine) Wrap(t *kernel.Thread, f func()) func() {
	if e.calls == 0 {
		return func() { // want `chargecheck: diplomat hop accrues no virtual-time cost`
			e.calls++
		}
	}
	return func() {
		t.Charge(1)
		f()
	}
}

// Exception bridges are hops: a bridge that delivers (or declines) an
// exception without accruing the exception-message cost skews the modeled
// crash latencies.
func InstallBridges(k *kernel.Kernel) {
	k.SetExceptionBridge(func(t *kernel.Thread, sig int) bool {
		t.Charge(4)
		return true
	})
	k.SetExceptionBridge(func(t *kernel.Thread, sig int) bool { // want `chargecheck: exception bridge accrues no virtual-time cost`
		return sig == 11
	})
}
