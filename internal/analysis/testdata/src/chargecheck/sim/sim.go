// Stand-in for the repo's internal/sim package: the virtual-time
// primitives chargecheck seeds its may-charge fixpoint from.
package sim

type Proc struct{ now int64 }

func (p *Proc) Advance(d int64)        { p.now += d }
func (p *Proc) Sleep(d int64) int      { p.Advance(d); return 0 }
func (p *Proc) Park(reason string) int { return 0 }
