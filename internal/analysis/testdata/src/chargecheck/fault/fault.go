// Stand-in for the repo's internal/fault package: the injector consult
// methods chargecheck treats as charge seeds (consult-and-apply contract:
// a fired rule may mandate a Delay the site charges).
package fault

type Outcome struct {
	Errno int
	Delay int64
}

type Injector struct{ fired uint64 }

func (in *Injector) Check(op int, key string, now int64) (Outcome, bool) {
	in.fired++
	return Outcome{}, false
}

func (in *Injector) Interrupt(now int64, reason string) bool {
	_, ok := in.Check(1, reason, now)
	return ok
}

// Crash consults OpCrash rules at syscall dispatch. Unlike Interrupt it
// does not route through Check here, so the analyzer must treat it as a
// seed in its own right.
func (in *Injector) Crash(now int64, path string) (Outcome, bool) {
	in.fired++
	return Outcome{}, false
}
