// Stand-in for the repo's internal/kernel package: the syscall table shape
// chargecheck keys handler registration on.
package kernel

import "chargecheck/sim"

type Errno int

type SyscallRet struct {
	R0    uint64
	R1    uint64
	Errno Errno
}

type Thread struct{ proc *sim.Proc }

func (t *Thread) Proc() *sim.Proc { return t.proc }
func (t *Thread) Charge(d int64)  { t.proc.Advance(d) }
func (t *Thread) PID() int        { return 7 }

type SyscallHandler func(t *Thread) SyscallRet

type SyscallTable struct{ h map[int]SyscallHandler }

func (tb *SyscallTable) Register(num int, name string, h SyscallHandler) {
	tb.h[num] = h
}

// Hooks mimics the dyld atexit/atfork registration points.
type Hooks struct{ exit []func(*Thread) }

func (h *Hooks) AtExit(f func(*Thread)) { h.exit = append(h.exit, f) }

// Kernel mimics the exception-bridge registration point.
type Kernel struct{ bridge func(*Thread, int) bool }

func (k *Kernel) SetExceptionBridge(b func(*Thread, int) bool) { k.bridge = b }

// Task and Memorystatus mimic the memory-pressure registration point.
type Task struct{ pid int }

type Memorystatus struct{ handlers []func(level int) }

func (ms *Memorystatus) OnPressure(tk *Task, fn func(level int)) {
	ms.handlers = append(ms.handlers, fn)
}
