// Stand-in sim package for the directive-machinery fixture.
package sim

type Proc struct{ now int64 }

func (p *Proc) Sleep(d int64) int { p.now += d; return 0 }
