// Fixture for the //lint:allow directive machinery itself: suppression on
// the same line and the line above, mandatory reasons, and unknown
// analyzer names.
package a

import "directives/sim"

func SameLine(p *sim.Proc) {
	p.Sleep(1) //lint:allow waketag fixture: suppressed on the same line
}

func LineAbove(p *sim.Proc) {
	//lint:allow waketag fixture: suppressed from the line above
	p.Sleep(2)
}

func NotSuppressed(p *sim.Proc) {
	p.Sleep(3) // want `waketag: wake tag of sim\.Proc\.Sleep discarded`
}

// A directive must name an analyzer and give a reason.
//lint:allow waketag // want `ciderlint: malformed directive`

// ...and the analyzer must exist.
//lint:allow speling this reason does not save it // want `ciderlint: directive names unknown analyzer "speling"`

// A directive only silences its own analyzer; this one aims at the wrong
// invariant and the finding survives.
func WrongAnalyzer(p *sim.Proc) {
	//lint:allow tracepure not the analyzer that fired
	p.Sleep(4) // want `waketag: wake tag of sim\.Proc\.Sleep discarded`
}
