// Fixture for the //lint:allow directive machinery itself: suppression on
// the same line and the line above, the mandatory colon-separated reason,
// unknown analyzer names, and stale directives.
package a

import "directives/sim"

func SameLine(p *sim.Proc) {
	p.Sleep(1) //lint:allow waketag: fixture: suppressed on the same line
}

func LineAbove(p *sim.Proc) {
	//lint:allow waketag: fixture: suppressed from the line above
	p.Sleep(2)
}

func NotSuppressed(p *sim.Proc) {
	p.Sleep(3) // want `waketag: wake tag of sim\.Proc\.Sleep discarded`
}

// A directive must separate the analyzer name from its reason with a colon.
//lint:allow waketag no colon here // want `ciderlint: malformed directive`

// ...and the reason after the colon may not be empty.
func BareReason(p *sim.Proc) {
	//lint:allow waketag: // want `ciderlint: bare //lint:allow waketag`
	p.Sleep(4) // want `waketag: wake tag of sim\.Proc\.Sleep discarded`
}

// ...and the analyzer must exist.
//lint:allow speling: this reason does not save it // want `ciderlint: directive names unknown analyzer "speling"`

// A directive only silences its own analyzer; this one aims at the wrong
// invariant, the finding survives, and the directive itself is reported
// stale because it suppressed nothing.
func WrongAnalyzer(p *sim.Proc) {
	//lint:allow tracepure: not the analyzer that fired // want `ciderlint: stale //lint:allow tracepure`
	p.Sleep(5) // want `waketag: wake tag of sim\.Proc\.Sleep discarded`
}

// A suppression applies to the first line of a multi-line statement: the
// directive above a call whose arguments span lines still matches, because
// the diagnostic position is the call's opening line.
func MultiLine(p *sim.Proc) {
	//lint:allow waketag: fixture: multi-line call, directive matches the opening line
	p.Sleep(sum(
		1,
		2,
	))
}

func sum(xs ...int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}
