// Fixture: the record/replay layer is a simulation package — decision
// recording, schedule exploration, and artifact digests must be pure
// functions of (seed, virtual time, decision order). A host-clock or
// ambient-randomness read here silently breaks bit-identical replay:
// the artifact would replay a different schedule than it recorded.
package replay

import (
	"math/rand"
	"time"
)

func StampArtifact() time.Time {
	return time.Now() // want `wallclock: wall-clock leak: time\.Now`
}

func RandomExploreSeed() uint64 {
	return rand.Uint64() // want `wallclock: nondeterminism leak: math/rand\.Uint64`
}

// The sanctioned idiom: explore seeds come from an explicit counter or
// caller-provided seed, and perturbation is a seeded hash of it.
func SeededChoice(seed, pos uint64, n int) int {
	x := seed*0x9e3779b97f4a7c15 ^ pos
	x ^= x >> 31
	return int(x % uint64(n))
}
