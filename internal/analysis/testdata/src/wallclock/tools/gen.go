// Fixture: "tools" is not a simulation package, so wall-clock use here is
// fine (e.g. build tooling, report generators).
package tools

import "time"

func Timestamp() time.Time {
	return time.Now()
}
