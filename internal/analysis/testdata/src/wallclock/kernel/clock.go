// Fixture: package path contains the segment "kernel", so it is a
// simulation package and wall-clock/ambient-randomness uses are flagged.
package kernel

import (
	"math/rand"
	"time"
)

var bootedAt time.Time

func Uptime() time.Duration {
	return time.Since(bootedAt) // want `wallclock: wall-clock leak: time\.Since`
}

func Stamp() time.Time {
	return time.Now() // want `wallclock: wall-clock leak: time\.Now`
}

func Nap() {
	time.Sleep(time.Millisecond)   // want `wallclock: wall-clock leak: time\.Sleep`
	<-time.After(time.Millisecond) // want `wallclock: wall-clock leak: time\.After`
}

// Stored function values leak the clock just as directly as calls.
var clock = time.Now // want `wallclock: wall-clock leak: time\.Now`

func Jitter() int {
	return rand.Intn(10) // want `wallclock: nondeterminism leak: math/rand\.Intn`
}

// Explicitly seeded generators are deterministic and allowed.
func SeededJitter(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Pure time arithmetic (no clock read) is allowed.
func Budget(d time.Duration) time.Duration {
	return d * 2
}

// A reviewed exception is silenced with a justified allow directive.
func WallDeadline() time.Time {
	//lint:allow wallclock: host watchdog deadline is outside the simulation
	return time.Now().Add(time.Second)
}
