// Fixture: the differential persona oracle runs whole simulations and
// diffs their traces, so "diffcheck" is a simulation package — program
// generation and fault schedules must be pure functions of the seed, or
// the jobs=1 vs jobs=N report comparison (and minimization replay)
// breaks.
package diffcheck

import (
	"math/rand"
	"time"
)

func StampReport() time.Time {
	return time.Now() // want `wallclock: wall-clock leak: time\.Now`
}

func PickSeed() int {
	return rand.Intn(1 << 20) // want `wallclock: nondeterminism leak: math/rand\.Intn`
}

// Deriving everything from an explicit seed is the sanctioned idiom.
func SeededPick(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(1 << 20)
}
