// Fixture: the fault-injection layer runs under the simulator, so "fault"
// (like "soak") is a simulation package — its decisions must be pure
// functions of seed and virtual time, never the host clock or ambient
// randomness.
package fault

import (
	"math/rand"
	"time"
)

func FireAt() time.Time {
	return time.Now() // want `wallclock: wall-clock leak: time\.Now`
}

func RollDice() bool {
	return rand.Intn(2) == 0 // want `wallclock: nondeterminism leak: math/rand\.Intn`
}

// Seeded decisions are the sanctioned idiom.
func SeededRoll(seed int64) bool {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(2) == 0
}
