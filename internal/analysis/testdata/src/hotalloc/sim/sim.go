// Fixture for hotalloc: direct allocation sites, amortized-growth
// exemptions, transitive (witness-chained) allocation through callees,
// and the cold-path allow escape hatch.
package sim

type Proc struct {
	buf  []int
	seen map[int]int
}

//hot:noalloc
func Direct(p *Proc) {
	p.buf = make([]int, 4) // want `hotalloc: allocation in //hot:noalloc Direct: make`
}

// Amortized growth is exempt by policy: append and map insert reallocate
// only on growth.
//
//hot:noalloc
func Amortized(p *Proc, x int) {
	p.buf = append(p.buf, x)
	p.seen[x] = x
}

func helper() *Proc {
	return &Proc{}
}

//hot:noalloc
func Indirect(p *Proc) {
	helper() // want `hotalloc: //hot:noalloc Indirect calls helper, which may allocate: &composite literal`
}

func mid() *Proc { return helper() }

//hot:noalloc
func Via() {
	mid() // want `hotalloc: //hot:noalloc Via calls mid, which may allocate: &composite literal \(via helper\)`
}

//hot:noalloc
func Closure(p *Proc) {
	f := func() { p.buf = nil } // want `hotalloc: allocation in //hot:noalloc Closure: func literal`
	f()
}

//hot:noalloc
func Concat(a, b string) string {
	return a + b // want `hotalloc: allocation in //hot:noalloc Concat: string concatenation`
}

// ColdPath justifies its one-time lazy allocation; the allow both
// suppresses the finding here and keeps callers untainted.
//
//hot:noalloc
func ColdPath(p *Proc) {
	if p.buf == nil {
		//lint:allow hotalloc: fixture: one-time lazy allocation on the cold path
		p.buf = make([]int, 0, 8)
	}
}

//hot:noalloc
func CallsColdPath(p *Proc) {
	ColdPath(p)
}

// unannotated may allocate freely.
func unannotated() []int {
	return make([]int, 1)
}
