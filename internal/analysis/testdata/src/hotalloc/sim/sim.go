// Fixture for hotalloc: direct allocation sites, amortized-growth
// exemptions, transitive (witness-chained) allocation through callees,
// and the cold-path allow escape hatch.
package sim

type Proc struct {
	buf  []int
	seen map[int]int
}

//hot:noalloc
func Direct(p *Proc) {
	p.buf = make([]int, 4) // want `hotalloc: allocation in //hot:noalloc Direct: make`
}

// Amortized growth is exempt by policy: append and map insert reallocate
// only on growth.
//
//hot:noalloc
func Amortized(p *Proc, x int) {
	p.buf = append(p.buf, x)
	p.seen[x] = x
}

func helper() *Proc {
	return &Proc{}
}

//hot:noalloc
func Indirect(p *Proc) {
	helper() // want `hotalloc: //hot:noalloc Indirect calls helper, which may allocate: &composite literal`
}

func mid() *Proc { return helper() }

//hot:noalloc
func Via() {
	mid() // want `hotalloc: //hot:noalloc Via calls mid, which may allocate: &composite literal \(via helper\)`
}

//hot:noalloc
func Closure(p *Proc) {
	f := func() { p.buf = nil } // want `hotalloc: allocation in //hot:noalloc Closure: func literal`
	f()
}

//hot:noalloc
func Concat(a, b string) string {
	return a + b // want `hotalloc: allocation in //hot:noalloc Concat: string concatenation`
}

// ColdPath justifies its one-time lazy allocation; the allow both
// suppresses the finding here and keeps callers untainted.
//
//hot:noalloc
func ColdPath(p *Proc) {
	if p.buf == nil {
		//lint:allow hotalloc: fixture: one-time lazy allocation on the cold path
		p.buf = make([]int, 0, 8)
	}
}

//hot:noalloc
func CallsColdPath(p *Proc) {
	ColdPath(p)
}

// unannotated may allocate freely.
func unannotated() []int {
	return make([]int, 1)
}

// Freelist pop-or-refill: the hot-object pooling idiom (WaitQueue waiters,
// Mach IPC rights). The refill allocation is cold once the pool warms up,
// so it rides under an allow; without one it must be flagged.
type pooled struct {
	next *pooled
}

type pool struct {
	free *pooled
}

//hot:noalloc
func (p *pool) GetAllowed() *pooled {
	r := p.free
	if r == nil {
		//lint:allow hotalloc: fixture: freelist refill — steady state recycles
		r = &pooled{}
	} else {
		p.free = r.next
	}
	r.next = nil
	return r
}

//hot:noalloc
func (p *pool) GetBare() *pooled {
	r := p.free
	if r == nil {
		r = &pooled{} // want `hotalloc: allocation in //hot:noalloc GetBare: &composite literal`
	} else {
		p.free = r.next
	}
	r.next = nil
	return r
}

//hot:noalloc
func (p *pool) Put(r *pooled) {
	r.next = p.free
	p.free = r
}

// Interning: a map probe keyed by string(b) is compiled to an
// allocation-free lookup, but the analyzer cannot know that — the probe
// needs an allow, and the materializing conversion is a real allocation
// that must be flagged when bare.
type interner map[string]string

//hot:noalloc
func (it interner) LookupAllowed(b []byte) (string, bool) {
	//lint:allow hotalloc: fixture: map index on string(b) is an allocation-free lookup
	s, ok := it[string(b)]
	return s, ok
}

//hot:noalloc
func (it interner) MaterializeBare(b []byte) string {
	return string(b) // want `hotalloc: allocation in //hot:noalloc MaterializeBare: string/\[\]byte conversion`
}

// Decision interception (the record/replay hook pattern): the Decider
// is consulted through an interface value, which the analyzer assumes
// allocation-free — the policy implementation (recorder, explorer)
// owns its own allocation discipline. Candidate enumeration reuses a
// scratch slice, so the append rides the amortized-growth exemption
// and the whole decided path stays hot-clean without an allow.
type decider interface {
	Decide(kind int, where string, n int) int
}

type sched struct {
	d     decider
	cands []*Proc
}

//hot:noalloc
func (s *sched) pickDecided(a, b *Proc) *Proc {
	s.cands = s.cands[:0]
	s.cands = append(s.cands, a, b)
	idx := s.d.Decide(0, "ready", len(s.cands))
	if idx < 0 || idx >= len(s.cands) {
		idx = 0
	}
	return s.cands[idx]
}

//hot:noalloc
func (s *sched) pickDecidedBare(a, b *Proc) *Proc {
	cands := []*Proc{a, b} // want `hotalloc: allocation in //hot:noalloc pickDecidedBare: slice literal`
	return cands[s.d.Decide(0, "ready", len(cands))]
}
