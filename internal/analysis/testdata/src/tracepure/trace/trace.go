// Fixture for tracepure: sink callbacks (SchedEvent and the trace
// package's SyscallEnter/SyscallExit/Signal/Count) and everything they
// reach must not re-enter the simulator.
package trace

import "tracepure/sim"

type Session struct {
	events int
	proc   *sim.Proc
}

func (s *Session) SchedEvent(ev int, proc string, id int, at int64, detail string) {
	s.events++
	s.proc.Advance(1) // want `tracepure: SchedEvent is reachable from a trace sink callback but re-enters the simulator via Proc\.Advance`
}

// A sink that only records is pure and allowed.
func (s *Session) SyscallEnter(name string) {
	s.record()
}

// The violation may be buried in a helper reachable from a sink.
func (s *Session) SyscallExit(name string) {
	poke(s.proc)
}

func (s *Session) record() { s.events++ }

func poke(p *sim.Proc) {
	p.Wake(p, 0) // want `tracepure: poke is reachable from a trace sink callback but re-enters the simulator via Proc\.Wake`
}

// Not reachable from any sink: driving the simulation from ordinary code
// is, of course, fine.
func Drive(p *sim.Proc) {
	p.Advance(5)
}

// A replay harness may deliberately reinject wakeups, with a justified
// allow directive.
func (s *Session) Signal(sig int) {
	//lint:allow tracepure: replay harness reinjects the recorded wakeup
	s.proc.Wake(s.proc, 1)
}
