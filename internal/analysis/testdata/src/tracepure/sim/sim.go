// Stand-in for the repo's internal/sim package: the simulator entry points
// a trace sink must never reach.
package sim

type Proc struct{ now int64 }

func (p *Proc) Advance(d int64)       { p.now += d }
func (p *Proc) Wake(q *Proc, tag int) {}
