// Fixture for waketag: discarding the wake tag of a sim blocking primitive
// is flagged; consuming or explicitly allowing it is not.
package a

import "waketag/sim"

func Discards(p *sim.Proc, q *sim.WaitQueue) {
	p.Sleep(10)    // want `waketag: wake tag of sim\.Proc\.Sleep discarded`
	p.Park("lock") // want `waketag: wake tag of sim\.Proc\.Park discarded`
	q.Wait(p)      // want `waketag: wake tag of sim\.WaitQueue\.Wait discarded`

	_ = p.Sleep(10) // want `waketag: wake tag of sim\.Proc\.Sleep discarded`

	_, timedOut := q.WaitTimeout(p, 5) // want `waketag: wake tag of sim\.WaitQueue\.WaitTimeout discarded`
	_ = timedOut

	go p.Sleep(10)    // want `waketag: wake tag of sim\.Proc\.Sleep discarded`
	defer p.Sleep(10) // want `waketag: wake tag of sim\.Proc\.Sleep discarded`
}

func Consumes(p *sim.Proc, q *sim.WaitQueue) bool {
	if p.Sleep(10) == sim.WakeInterrupted {
		return false
	}
	tag := q.Wait(p)
	tagT, timedOut := q.WaitTimeout(p, 5)
	return tag == sim.WakeNormal && tagT == sim.WakeNormal && !timedOut
}

// An uninterruptible primitive may deliberately ignore the tag, with a
// justified allow directive.
func Uninterruptible(p *sim.Proc, q *sim.WaitQueue) {
	for i := 0; i < 2; i++ {
		//lint:allow waketag: uninterruptible lock: loop re-checks ownership
		q.Wait(p)
	}
}
