// Stand-in for the repo's internal/sim package: the blocking primitives
// whose first result is the wake tag.
package sim

const (
	WakeNormal      = 0
	WakeInterrupted = 1
)

type Proc struct{ now int64 }

func (p *Proc) Sleep(d int64) int      { p.now += d; return WakeNormal }
func (p *Proc) Park(reason string) int { return WakeNormal }
func (p *Proc) Wake(q *Proc, tag int)  {}

type WaitQueue struct{}

func (q *WaitQueue) Wait(p *Proc) int { return p.Park("wait") }
func (q *WaitQueue) WaitTimeout(p *Proc, d int64) (int, bool) {
	return p.Park("wait-timeout"), false
}
