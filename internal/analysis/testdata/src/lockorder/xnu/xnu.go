// Fixture for lockorder: parking with a lock held (directly, via a
// callee, and via channel ops) and an acquisition-order cycle.
package xnu

import "lockorder/sim"

type IPC struct {
	lock sim.LckMtx
	q    *sim.WaitQueue
}

// BadWait parks on the queue while holding the IPC lock.
func (i *IPC) BadWait(p *sim.Proc) {
	i.lock.Lock(p)
	i.q.Wait(p) // want `lockorder: call to Wait may park the Proc while holding lock IPC\.lock`
	i.lock.Unlock(p)
}

// blockHelper parks transitively; the fixpoint marks it may-block.
func blockHelper(p *sim.Proc) { p.Park("helper") }

// BadIndirect reaches the park through a callee, with a deferred unlock
// keeping the lock held to the end of the body.
func (i *IPC) BadIndirect(p *sim.Proc) {
	i.lock.Lock(p)
	defer i.lock.Unlock(p)
	blockHelper(p) // want `lockorder: call to blockHelper may park the Proc while holding lock IPC\.lock`
}

// BadChan performs raw channel operations inside the held region.
func (i *IPC) BadChan(p *sim.Proc, ch chan int) {
	i.lock.Lock(p)
	ch <- 1 // want `lockorder: channel send while holding lock IPC\.lock`
	<-ch    // want `lockorder: channel receive while holding lock IPC\.lock`
	i.lock.Unlock(p)
}

// Good charges and waits only outside the held region: contention-safe.
func (i *IPC) Good(p *sim.Proc) {
	i.lock.Lock(p)
	p.Advance(10) // Advance under a lock is contention, not a park
	i.lock.Unlock(p)
	i.q.Wait(p)
}

// Two lock classes acquired in opposite orders: the order graph gets
// A.mu→B.mu from order1 and B.mu→A.mu from order2, a cycle.
type A struct{ mu sim.LckMtx }

type B struct{ mu sim.LckMtx }

func order1(p *sim.Proc, a *A, b *B) {
	a.mu.Lock(p)
	b.mu.Lock(p)
	b.mu.Unlock(p)
	a.mu.Unlock(p)
}

func order2(p *sim.Proc, a *A, b *B) {
	b.mu.Lock(p)
	a.mu.Lock(p) // want `lockorder: lock-order cycle: A\.mu → B\.mu → A\.mu`
	a.mu.Unlock(p)
	b.mu.Unlock(p)
}
