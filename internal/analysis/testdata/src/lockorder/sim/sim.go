// Stand-in sim package for the lockorder fixture: the blocking seeds
// (Proc.Park/Sleep, WaitQueue waits) and the LckMtx lock primitive.
package sim

type Proc struct{ now int64 }

func (p *Proc) Park(reason string) int { return 0 }
func (p *Proc) Sleep(d int64) int      { p.now += d; return 0 }
func (p *Proc) Advance(d int64)        { p.now += d }

type WaitQueue struct{ n int }

func (q *WaitQueue) Wait(p *Proc) int                         { return 0 }
func (q *WaitQueue) WaitTimeout(p *Proc, d int64) (int, bool) { return 0, false }
func (q *WaitQueue) WakeOne(p *Proc, tag int) *Proc           { return nil }

// LckMtx is the lock primitive; its methods are excluded from may-block
// propagation (contention is an order-graph edge, not a park).
type LckMtx struct{ locked bool }

func (m *LckMtx) Lock(p *Proc)         { m.locked = true }
func (m *LckMtx) Unlock(p *Proc)       { m.locked = false }
func (m *LckMtx) TryLock(p *Proc) bool { m.locked = true; return true }
