// Fixture for tablecomplete: syscall-table block coverage, errno-map
// completeness and injectivity, and signal-map bijectivity.
package kernel

// Errno is the canonical (Linux-numbered) error type.
type Errno int

// Declared errno surface. ENOENT is deliberately missing from the map
// below; EDEADLK collides with EAGAIN's mapped value.
const (
	EPERM   Errno = 1
	ENOENT  Errno = 2 // want `tablecomplete: errno ENOENT is declared but missing from linuxToXNUErrno`
	EAGAIN  Errno = 11
	EDEADLK Errno = 35
)

var linuxToXNUErrno = map[Errno]int{ // want `tablecomplete: errno translation collision: EAGAIN and EDEADLK both map to XNU errno 35`
	EPERM:   1,
	EAGAIN:  35,
	EDEADLK: 35,
}

const nsig = 5

// The effective translation must be a bijection on [1, 5): entry 3 maps
// out of range, key 9 is out of range, and canonical 1 and 4 collide on 2.
var linuxToXNUSignal = map[int]int{ // want `tablecomplete: signal translation collision: canonical 1 and 4 both map to XNU signal 2`
	1: 2,
	2: 1,
	3: 7, // want `tablecomplete: signal map value 7 \(for canonical 3\) is outside the XNU range \[1, 5\)`
	4: 2,
	9: 1, // want `tablecomplete: signal map key 9 is outside the canonical range \[1, 5\)`
}

// SyscallTable is the dispatch table stand-in.
type SyscallTable struct{ names map[int]string }

// Register installs a handler for a syscall number.
func (t *SyscallTable) Register(num int, name string, h func()) {
	if t.names == nil {
		t.names = map[int]string{}
	}
	t.names[num] = name
}

// This block contributes numbers to a registered table, so every member
// must be registered: SysDup is the missing-dup divergence shape.
const (
	SysRead  = 0
	SysWrite = 1
	SysDup   = 2 // want `tablecomplete: syscall number SysDup is declared in a registered table's const block but never registered`
)

// Flag bits register nothing, so the block is not a table and is exempt.
const (
	FlagCloexec  = 1
	FlagNonblock = 2
)

func install(tb *SyscallTable) {
	tb.Register(SysRead, "read", func() {})
	tb.Register(SysWrite, "write", func() {})
	_ = FlagCloexec | FlagNonblock
}
