// Fixture for tablecomplete's open-flag coverage check: every declared
// XNUO* flag bit must be consumed by a translation somewhere in its
// package.
package abi

const (
	// XNUOpen is a syscall number, not a flag bit (lowercase after XNUO),
	// and is exempt even though nothing uses it here.
	XNUOpen = 5

	XNUOCreat = 0x200
	XNUOTrunc = 0x400
	XNUOExcl  = 0x800 // want `tablecomplete: open flag XNUOExcl is declared but never consumed by a translation`
)

// translateOpenFlags consumes Creat and Trunc but forgets Excl: that bit
// crosses the persona boundary dropped or raw.
func translateOpenFlags(linux int) int {
	out := 0
	if linux&0x40 != 0 {
		out |= XNUOCreat
	}
	if linux&0x200 != 0 {
		out |= XNUOTrunc
	}
	return out
}
