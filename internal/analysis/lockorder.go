package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the static lock-acquisition graph over the simulated
// kernel layers and enforces two invariants on it:
//
//  1. The graph is acyclic. Lock identities are (receiver type, field)
//     pairs resolved from the receiver expression of LckMtx Lock/TryLock
//     calls — the granularity at which XNU orders its lck_mtx classes. An
//     edge A→B exists when B is acquired (directly, or anywhere inside a
//     callee, transitively) while A is held; a cycle means two threads
//     can acquire in opposite orders and deadlock.
//
//  2. No lock-held blocking. With the simulator's single-runnable-Proc
//     discipline, a Proc that parks (Park, Sleep, WaitQueue.Wait, a
//     channel operation) while holding a LckMtx can strand every
//     contended locker behind a waiter that only another locker could
//     wake. Lock contention itself is exempt: acquiring another LckMtx
//     while one is held is an order-graph edge (invariant 1), and the
//     may-block fixpoint deliberately does not propagate through LckMtx
//     methods.
//
// The walk is interprocedural and optimistic in the high-confidence
// direction: calls that cannot be resolved statically are assumed to
// neither block nor acquire, so every finding describes a concrete
// park-with-lock-held or ordering cycle the source actually spells out.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "the static lock-acquisition graph must be acyclic and no " +
		"blocking primitive (Park/Sleep/WaitQueue/channel) may be entered " +
		"with a LckMtx held",
	Run: runLockOrder,
}

// lockBlockSeed reports whether fn parks the calling Proc outright: the
// sim package's Park/Sleep and the WaitQueue wait entry points.
func lockBlockSeed(fn *types.Func) bool {
	switch fn.Name() {
	case "Park", "Sleep":
		return RecvPkgName(fn) == "sim" && RecvTypeName(fn) == "Proc"
	case "Wait", "WaitTimeout":
		return RecvTypeName(fn) == "WaitQueue"
	}
	return false
}

// isLckMtxMethod reports whether fn is a method on the LckMtx lock
// primitive (any package, so fixtures can model their own).
func isLckMtxMethod(fn *types.Func) bool {
	return fn != nil && RecvTypeName(fn) == "LckMtx"
}

const lockMayBlockKey = "lockorder.mayblock"

// lockMayBlock computes the set of loaded functions that may park,
// excluding propagation through LckMtx methods: contended lock
// acquisition is modeled by the order graph, not as a blocking call.
func lockMayBlock(prog *Program) map[*types.Func]bool {
	return prog.Fact(lockMayBlockKey, func() any {
		set := map[*types.Func]bool{}
		// Channel operations are deliberately NOT seeds: the sim scheduler's
		// run-token handoff moves through channels on every Advance, and an
		// Advance under a lock is ordinary contention, not a park. Raw
		// channel ops are still flagged when they appear directly inside a
		// held region (walkHeld below).
		blocksIn := func(pkg *Package, body *ast.BlockStmt) bool {
			found := false
			ast.Inspect(body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					fn := Callee(pkg, call)
					if fn == nil || isLckMtxMethod(fn) {
						return true
					}
					if lockBlockSeed(fn) || set[fn] {
						found = true
						return false
					}
				}
				return true
			})
			return found
		}
		for changed := true; changed; {
			changed = false
			for fn, src := range prog.funcDecls {
				if set[fn] || src.Decl.Body == nil || isLckMtxMethod(fn) {
					continue
				}
				if blocksIn(src.Pkg, src.Decl.Body) {
					set[fn] = true
					changed = true
				}
			}
		}
		return set
	}).(map[*types.Func]bool)
}

// lockID names a lock for the order graph: the (declaring type, field)
// pair for struct-field locks, or the variable object for plain ones.
func lockID(pkg *Package, recv ast.Expr) string {
	recv = Unparen(recv)
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		// a.b.lock → identify by the static type owning the field.
		if sel, ok := pkg.Info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				owner := sel.Recv()
				if ptr, ok := owner.(*types.Pointer); ok {
					owner = ptr.Elem()
				}
				if named, ok := owner.(*types.Named); ok {
					return named.Obj().Name() + "." + v.Name()
				}
				return v.Name()
			}
		}
		return x.Sel.Name
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil {
			return obj.Name()
		}
		return x.Name
	}
	return "<lock>"
}

// lockAcquiresKey caches the per-function transitively-acquired lock sets.
const lockAcquiresKey = "lockorder.acquires"

// lockAcquires computes, for every loaded function, the set of lock IDs it
// may acquire (directly or via callees).
func lockAcquires(prog *Program) map[*types.Func]map[string]bool {
	return prog.Fact(lockAcquiresKey, func() any {
		sets := map[*types.Func]map[string]bool{}
		for changed := true; changed; {
			changed = false
			for fn, src := range prog.funcDecls {
				if src.Decl.Body == nil {
					continue
				}
				cur := sets[fn]
				if cur == nil {
					cur = map[string]bool{}
					sets[fn] = cur
				}
				before := len(cur)
				ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := Callee(src.Pkg, call)
					if callee == nil {
						return true
					}
					if isLckMtxMethod(callee) && (callee.Name() == "Lock" || callee.Name() == "TryLock") {
						if sel, ok := Unparen(call.Fun).(*ast.SelectorExpr); ok {
							cur[lockID(src.Pkg, sel.X)] = true
						}
						return true
					}
					for id := range sets[callee] {
						cur[id] = true
					}
					return true
				})
				if len(cur) != before {
					changed = true
				}
			}
		}
		return sets
	}).(map[*types.Func]map[string]bool)
}

// lockFinding is one whole-program diagnostic, reported by the pass whose
// package owns the position.
type lockFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// lockEdge is one acquisition-order edge with its witness site.
type lockEdge struct {
	from, to string
	pkg      *Package
	pos      token.Pos
}

const lockFindingsKey = "lockorder.findings"

// lockFindings runs the whole-program held-set walk and cycle check once.
func lockFindings(prog *Program) []lockFinding {
	return prog.Fact(lockFindingsKey, func() any {
		mayBlock := lockMayBlock(prog)
		acquires := lockAcquires(prog)
		var finds []lockFinding
		var edges []lockEdge
		edgeSeen := map[string]bool{}

		addEdge := func(from, to string, pkg *Package, pos token.Pos) {
			if from == to {
				return // recursive re-acquisition is a runtime panic, not an order edge
			}
			key := from + "→" + to
			if edgeSeen[key] {
				return
			}
			edgeSeen[key] = true
			edges = append(edges, lockEdge{from: from, to: to, pkg: pkg, pos: pos})
		}

		// Deterministic function order.
		var fns []*types.Func
		for fn := range prog.funcDecls {
			fns = append(fns, fn)
		}
		sort.Slice(fns, func(i, j int) bool {
			return prog.funcDecls[fns[i]].Decl.Pos() < prog.funcDecls[fns[j]].Decl.Pos()
		})

		for _, fn := range fns {
			src := prog.funcDecls[fn]
			if src.Decl.Body == nil {
				continue
			}
			pkg := src.Pkg
			walkHeld(pkg, src.Decl.Body, nil, func(held []string, n ast.Node) {
				if len(held) == 0 {
					return
				}
				switch x := n.(type) {
				case *ast.SendStmt:
					finds = append(finds, lockFinding{pkg, x.Pos(), fmt.Sprintf(
						"channel send while holding lock %s: a blocked send strands every contended locker",
						strings.Join(held, ", "))})
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						finds = append(finds, lockFinding{pkg, x.Pos(), fmt.Sprintf(
							"channel receive while holding lock %s: a blocked receive strands every contended locker",
							strings.Join(held, ", "))})
					}
				case *ast.CallExpr:
					callee := Callee(pkg, x)
					if callee == nil {
						return
					}
					if isLckMtxMethod(callee) {
						if callee.Name() == "Lock" || callee.Name() == "TryLock" {
							if sel, ok := Unparen(x.Fun).(*ast.SelectorExpr); ok {
								to := lockID(pkg, sel.X)
								for _, h := range held {
									addEdge(h, to, pkg, x.Pos())
								}
							}
						}
						return
					}
					if lockBlockSeed(callee) || mayBlock[callee] {
						finds = append(finds, lockFinding{pkg, x.Pos(), fmt.Sprintf(
							"call to %s may park the Proc while holding lock %s: a parked owner can only be woken by a thread that may itself need the lock",
							callee.Name(), strings.Join(held, ", "))})
						return
					}
					for to := range acquires[callee] {
						for _, h := range held {
							addEdge(h, to, pkg, x.Pos())
						}
					}
				}
			})
		}

		// Cycle detection over the edge graph.
		adj := map[string][]lockEdge{}
		for _, e := range edges {
			adj[e.from] = append(adj[e.from], e)
		}
		var nodes []string
		for n := range adj {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		const (
			white = 0
			grey  = 1
			black = 2
		)
		color := map[string]int{}
		var stack []string
		var dfs func(n string)
		reported := map[string]bool{}
		dfs = func(n string) {
			color[n] = grey
			stack = append(stack, n)
			for _, e := range adj[n] {
				switch color[e.to] {
				case white:
					dfs(e.to)
				case grey:
					// Found a cycle: slice the stack from e.to onward.
					i := len(stack) - 1
					for i >= 0 && stack[i] != e.to {
						i--
					}
					cyc := append(append([]string{}, stack[i:]...), e.to)
					key := strings.Join(cyc, "→")
					if !reported[key] {
						reported[key] = true
						finds = append(finds, lockFinding{e.pkg, e.pos, fmt.Sprintf(
							"lock-order cycle: %s — two threads acquiring in opposite orders deadlock",
							strings.Join(cyc, " → "))})
					}
				}
			}
			stack = stack[:len(stack)-1]
			color[n] = black
		}
		for _, n := range nodes {
			if color[n] == white {
				dfs(n)
			}
		}
		return finds
	}).([]lockFinding)
}

// walkHeld performs a syntactic held-set walk over a function body: Lock
// adds, Unlock removes, deferred Unlocks persist to the end, and visit is
// invoked for every node with the held set active at that point.
func walkHeld(pkg *Package, body *ast.BlockStmt, held []string, visit func(held []string, n ast.Node)) {
	heldSet := map[string]bool{}
	for _, h := range held {
		heldSet[h] = true
	}
	order := append([]string{}, held...)
	snapshot := func() []string { return append([]string{}, order...) }

	lockCall := func(n ast.Node) (id string, isLock, isUnlock bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return "", false, false
		}
		fn := Callee(pkg, call)
		if !isLckMtxMethod(fn) {
			return "", false, false
		}
		sel, ok := Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", false, false
		}
		id = lockID(pkg, sel.X)
		switch fn.Name() {
		case "Lock":
			return id, true, false
		case "Unlock":
			return id, false, true
		}
		return "", false, false
	}

	var walkStmt func(s ast.Stmt)
	visitExpr := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false // closures run later, outside this held region
			}
			visit(snapshot(), m)
			return true
		})
	}
	acquire := func(id string) {
		if !heldSet[id] {
			heldSet[id] = true
			order = append(order, id)
		}
	}
	release := func(id string) {
		if heldSet[id] {
			delete(heldSet, id)
			for i, h := range order {
				if h == id {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
		}
	}

	walkStmt = func(s ast.Stmt) {
		switch st := s.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, inner := range st.List {
				walkStmt(inner)
			}
		case *ast.ExprStmt:
			if id, isLock, isUnlock := lockCall(st.X); isLock || isUnlock {
				// The acquisition call itself is visited (it is the edge
				// source when other locks are held) before mutating state.
				visitExpr(st.X)
				if isLock {
					acquire(id)
				} else {
					release(id)
				}
				return
			}
			visitExpr(st.X)
		case *ast.DeferStmt:
			if _, _, isUnlock := lockCall(st.Call); isUnlock {
				return // deferred unlock: the lock stays held to the end of the body
			}
			visitExpr(st.Call)
		case *ast.IfStmt:
			walkStmt(st.Init)
			visitExpr(st.Cond)
			walkStmt(st.Body)
			walkStmt(st.Else)
		case *ast.ForStmt:
			walkStmt(st.Init)
			visitExpr(st.Cond)
			walkStmt(st.Body)
			walkStmt(st.Post)
		case *ast.RangeStmt:
			visitExpr(st.X)
			walkStmt(st.Body)
		case *ast.SwitchStmt:
			walkStmt(st.Init)
			visitExpr(st.Tag)
			for _, cc := range st.Body.List {
				if clause, ok := cc.(*ast.CaseClause); ok {
					for _, e := range clause.List {
						visitExpr(e)
					}
					for _, inner := range clause.Body {
						walkStmt(inner)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			walkStmt(st.Init)
			walkStmt(st.Assign)
			for _, cc := range st.Body.List {
				if clause, ok := cc.(*ast.CaseClause); ok {
					for _, inner := range clause.Body {
						walkStmt(inner)
					}
				}
			}
		case *ast.SelectStmt:
			for _, cc := range st.Body.List {
				if clause, ok := cc.(*ast.CommClause); ok {
					walkStmt(clause.Comm)
					for _, inner := range clause.Body {
						walkStmt(inner)
					}
				}
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt)
		default:
			visitExpr(st)
		}
	}
	for _, s := range body.List {
		walkStmt(s)
	}
}

func runLockOrder(pass *Pass) error {
	if !IsSimPackage(pass.Pkg.Path) {
		return nil
	}
	for _, f := range lockFindings(pass.Prog) {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}
