// Package analysistest runs ciderlint analyzers over fixture trees and
// checks their diagnostics against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest for this repo's
// dependency-free driver.
//
// Fixtures live under <testdata>/src/<fixture>/..., where each directory is
// a package whose import path is its path relative to src (so a fixture can
// provide stand-in "sim", "kernel", and "trace" packages). Expected
// findings are annotated in the fixture source as
//
//	expr // want `regex`
//
// The backquoted regular expression is matched against the diagnostic as
// "analyzer: message", so a want can also pin which analyzer fires. Every
// diagnostic must match a want on its exact line, and every want must be
// matched by at least one diagnostic.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Run loads the fixture packages selected by patterns, runs the analyzers
// (including //lint:allow suppression), and reports any mismatch between
// the diagnostics and the // want annotations as test errors.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	prog, err := analysis.Load(analysis.LoadConfig{Dir: src}, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, pkg := range prog.Packages {
		if !pkg.Lint {
			continue
		}
		for _, f := range pkg.Files {
			name := prog.Fset.Position(f.Pos()).Filename
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
					}
					wants = append(wants, &want{file: name, line: i + 1, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		text := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
