package services_test

// Supervision (KeepAlive) regression tests for the crash-containment
// work: launchd must respawn crashed services with deterministic backoff,
// clients riding ServiceClient must survive a daemon dying under them,
// flapping services must be throttled with a syslog trail, and SIGCHLD
// must reach iOS handlers under its XNU number.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
	"repro/internal/services"
	"repro/internal/trace"
	"repro/internal/xnu"
)

// bootSupervised is bootWithApp plus tracing and an armed fault plan, so
// tests can kill daemons deterministically and read the supervision
// counters afterwards.
func bootSupervised(t *testing.T, plan fault.Plan, fn func(lc *libsystem.C)) (*core.System, *fault.Injector) {
	t.Helper()
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTrace()
	in := sys.EnableFaults(plan)
	if _, err := sys.BootServices(); err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallIOSBinary("/Applications/s.app/s", "sup-app", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		// Let launchd and its children come up first.
		th.Proc().Sleep(80 * time.Millisecond)
		fn(libsystem.Sys(th))
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Start("/Applications/s.app/s", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys, in
}

// TestNotifydRespawnAfterCrash is the headline regression: kill notifyd
// mid-use — twice — and a ServiceClient on the other side must keep
// posting successfully through dead-name detection, bootstrap
// re-resolution and bounded backoff. Before supervision existed, the
// first crash stranded every client forever on a dead send right.
func TestNotifydRespawnAfterCrash(t *testing.T) {
	plan := fault.Plan{Name: "notifyd-crash", Seed: 0x5eedc1, Rules: []fault.Rule{
		{Op: fault.OpCrash, Match: services.NotifydPath, Nth: 10, Errno: 11},
		{Op: fault.OpCrash, Match: services.NotifydPath, Nth: 30, Errno: 11},
	}}
	var failed []string
	sys, in := bootSupervised(t, plan, func(lc *libsystem.C) {
		nfy := services.NewServiceClient(lc, services.NotifydName)
		for i := 0; i < 25; i++ {
			if err := nfy.Send(&xnu.Message{
				ID:   services.MsgNotifyPost,
				Body: []byte("test.event"),
			}); err != nil {
				failed = append(failed, fmt.Sprintf("round %d: %v", i, err))
			}
			lc.T.Proc().Sleep(2 * time.Millisecond)
		}
	})
	if in.Fired() == 0 {
		t.Fatal("crash plan never fired; the regression exercised nothing")
	}
	if len(failed) != 0 {
		t.Fatalf("client rounds failed despite supervision: %v", failed)
	}
	if c := sys.Trace.Counter(trace.CounterLaunchdCrashes); c == 0 {
		t.Fatal("no crash observed by launchd")
	}
	if r := sys.Trace.Counter(trace.CounterLaunchdRespawns); r == 0 {
		t.Fatal("notifyd crashed but was never respawned")
	}
	if err := sys.Kernel.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestFlappingServiceThrottled: a service crashing on every syscall burns
// through its crash budget — RespawnMaxInWindow respawns — and on the
// next crash launchd gives up, bumps the throttle counter and leaves a
// give-up line in syslog instead of respawning forever.
func TestFlappingServiceThrottled(t *testing.T) {
	plan := fault.Plan{Name: "notifyd-flap", Seed: 0x5eedc2, Rules: []fault.Rule{
		{Op: fault.OpCrash, Match: services.NotifydPath, Errno: 11},
	}}
	sys, _ := bootSupervised(t, plan, func(lc *libsystem.C) {
		// Outlive the whole crash/backoff ladder (~310ms of backoff).
		for i := 0; i < 80; i++ {
			lc.T.Proc().Sleep(10 * time.Millisecond)
		}
	})
	wantCrashes := uint64(services.RespawnMaxInWindow + 1)
	if c := sys.Trace.Counter(trace.CounterLaunchdCrashes); c != wantCrashes {
		t.Fatalf("crashes = %d, want %d (budget exhausted exactly once)", c, wantCrashes)
	}
	if r := sys.Trace.Counter(trace.CounterLaunchdRespawns); r != uint64(services.RespawnMaxInWindow) {
		t.Fatalf("respawns = %d, want %d", r, services.RespawnMaxInWindow)
	}
	if th := sys.Trace.Counter(trace.CounterLaunchdThrottled); th != 1 {
		t.Fatalf("throttled = %d, want 1", th)
	}
	log := strings.Join(sys.Syslog.Lines(), "\n")
	if !strings.Contains(log, "giving up on "+services.NotifydPath) {
		t.Fatalf("no give-up line in syslog:\n%s", log)
	}
	if err := sys.Kernel.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestRespawnWithinBackoffBudget: a single crash must be answered by a
// respawn at the base backoff — visible as an EvRespawn trace event with
// backoff=10ms — within a bounded virtual-time budget of the exception
// being raised.
func TestRespawnWithinBackoffBudget(t *testing.T) {
	plan := fault.Plan{Name: "configd-once", Seed: 0x5eedc3, Rules: []fault.Rule{
		{Op: fault.OpCrash, Match: services.ConfigdPath, Nth: 8, Errno: 11},
	}}
	sys, in := bootSupervised(t, plan, func(lc *libsystem.C) {
		cfg := services.NewServiceClient(lc, services.ConfigdName)
		for i := 0; i < 10; i++ {
			cfg.Call(&xnu.Message{ID: services.MsgConfigGet, Body: []byte("Model")})
			lc.T.Proc().Sleep(5 * time.Millisecond)
		}
	})
	if in.Fired() == 0 {
		t.Fatal("crash plan never fired")
	}
	var excAt, respawnAt time.Duration
	var detail string
	for _, e := range sys.Trace.Events() {
		switch {
		case e.Kind == trace.EvExc && excAt == 0:
			excAt = e.At
		case e.Kind == trace.EvRespawn && e.Name == services.ConfigdPath && respawnAt == 0:
			respawnAt, detail = e.At, e.Detail
		}
	}
	if respawnAt == 0 {
		t.Fatal("no respawn event for configd")
	}
	if !strings.Contains(detail, "backoff=10ms") {
		t.Fatalf("first crash respawn detail = %q, want base backoff 10ms", detail)
	}
	// Budget: exception delivery is bounded (send and reply timeouts),
	// then reap plus the base backoff. Anything past this is a stall.
	if budget := 100 * time.Millisecond; respawnAt-excAt > budget {
		t.Fatalf("respawn %v after exception at %v exceeds budget %v", respawnAt-excAt, excAt, budget)
	}
	if th := sys.Trace.Counter(trace.CounterLaunchdThrottled); th != 0 {
		t.Fatalf("single crash must not throttle (throttled=%d)", th)
	}
}

// TestSIGCHLDDeliveredAsXNU20: an iOS-persona parent installs a handler
// for XNU SIGCHLD (20); when its forked child exits, the handler must
// receive 20 — the kernel posts canonical 17 and translates at delivery
// based on the thread persona (Section 4.1).
func TestSIGCHLDDeliveredAsXNU20(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	var reaped, status int
	if err := sys.InstallIOSBinary("/Applications/c.app/c", "chld-app", nil, func(c *prog.Call) uint64 {
		lc := libsystem.Sys(c.Ctx.(*kernel.Thread))
		lc.Sigaction(20, func(t *kernel.Thread, sig int) {
			got = append(got, sig)
		})
		pid := lc.Fork(func(cc *libsystem.C) {}) // child exits immediately
		lc.T.Charge(time.Millisecond)            // let the child exit first
		for {
			p, s, errno := lc.Wait(pid)
			if errno == kernel.EINTR {
				continue
			}
			reaped, status = p, s
			break
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Start("/Applications/c.app/c", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("handler saw %v, want exactly [20] (XNU SIGCHLD)", got)
	}
	if reaped <= 0 || status != 0 {
		t.Fatalf("wait reaped pid=%d status=%d", reaped, status)
	}
	if err := sys.Kernel.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestSyslogRingEvictsOldest: the bounded ring drops the oldest lines
// once full and counts every eviction.
func TestSyslogRingEvictsOldest(t *testing.T) {
	var b services.SyslogBuffer
	total := services.SyslogCapacity + 3
	for i := 0; i < total; i++ {
		dropped := b.Append(fmt.Sprintf("line %d", i))
		if want := i >= services.SyslogCapacity; dropped != want {
			t.Fatalf("Append(%d) dropped=%v, want %v", i, dropped, want)
		}
	}
	if b.Len() != services.SyslogCapacity {
		t.Fatalf("Len = %d, want %d", b.Len(), services.SyslogCapacity)
	}
	if b.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", b.Dropped())
	}
	lines := b.Lines()
	if lines[0] != "line 3" {
		t.Fatalf("oldest retained = %q, want %q", lines[0], "line 3")
	}
	if last := lines[len(lines)-1]; last != fmt.Sprintf("line %d", total-1) {
		t.Fatalf("newest retained = %q", last)
	}
}
