package services

import (
	"fmt"
	"path"

	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/trace"
	"repro/internal/xnu"
)

// crashReporterMain is the ReportCrash-style daemon: it binds the
// host-level EXC_CRASH exception port and writes one deterministic crash
// report per exception into the VFS under CrashLogDir. Reports are plain
// key=value text (the excBody record), named by victim, pid and virtual
// timestamp so every run produces the identical file set.
func crashReporterMain(t *kernel.Thread) uint64 {
	lc := libsystem.Sys(t)
	ipc, ok := xnu.FromKernel(t.Kernel())
	if !ok {
		return 1
	}
	port := lc.MachReplyPort()
	if err := BootstrapRegister(lc, CrashReporterName, port); err != nil {
		return 1
	}
	// host_set_exception_ports(EXC_CRASH): undelivered fatal faults land
	// here. A respawned crashreporterd re-binds, replacing its dead
	// predecessor's port.
	if kr := ipc.HostSetExceptionPort(t, port); kr != xnu.KernSuccess {
		return 1
	}
	for {
		msg, kr := lc.MachReceive(port, -1)
		if kr != xnu.KernSuccess {
			return 1
		}
		if msg.ID != xnu.MsgExceptionRaise {
			continue
		}
		rec := xnu.ParseExceptionBody(msg.Body)
		name := path.Base(rec["path"])
		if name == "" || name == "." {
			name = "unknown"
		}
		file := fmt.Sprintf("%s/%s-pid%s-%sns.crash", CrashLogDir, name, rec["pid"], rec["at_ns"])
		fd, errno := lc.Creat(file)
		if errno != kernel.OK {
			continue
		}
		lc.Write(fd, msg.Body)
		lc.Close(fd)
		if tr := t.Kernel().Tracer(); tr != nil {
			tr.Count(trace.CounterCrashReports, 1)
		}
	}
}
