package services_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
	"repro/internal/services"
	"repro/internal/xnu"
)

// bootWithApp boots Cider services plus one iOS app whose body is fn.
func bootWithApp(t *testing.T, fn func(lc *libsystem.C)) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.BootServices(); err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallIOSBinary("/Applications/s.app/s", "svc-app", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		// Let launchd and its children come up first.
		th.Proc().Sleep(80 * time.Millisecond)
		fn(libsystem.Sys(th))
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Start("/Applications/s.app/s", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBootstrapRegisterAndLookUp(t *testing.T) {
	var looked xnu.PortName
	var err error
	bootWithApp(t, func(lc *libsystem.C) {
		// The standard daemons must be discoverable.
		looked, err = services.WaitForService(lc, services.ConfigdName, 50)
	})
	if err != nil {
		t.Fatal(err)
	}
	if looked == xnu.PortNull {
		t.Fatal("lookup returned MACH_PORT_NULL")
	}
}

func TestBootstrapUnknownName(t *testing.T) {
	var err error
	bootWithApp(t, func(lc *libsystem.C) {
		_, err = services.BootstrapLookUp(lc, "com.example.ghost")
	})
	if err == nil {
		t.Fatal("unknown name should fail")
	}
}

func TestConfigdGetSet(t *testing.T) {
	var model, custom string
	var err error
	bootWithApp(t, func(lc *libsystem.C) {
		var configd xnu.PortName
		configd, err = services.WaitForService(lc, services.ConfigdName, 50)
		if err != nil {
			return
		}
		model, err = services.ConfigGet(lc, configd, "Model")
		if err != nil {
			return
		}
		if err = services.ConfigSet(lc, configd, "Locale", "en_US"); err != nil {
			return
		}
		custom, err = services.ConfigGet(lc, configd, "Locale")
	})
	if err != nil {
		t.Fatal(err)
	}
	if model != "Nexus 7" {
		t.Fatalf("Model = %q (configd must see the Cider device)", model)
	}
	if custom != "en_US" {
		t.Fatalf("Locale = %q", custom)
	}
}

func TestNotifydPubSub(t *testing.T) {
	var delivered string
	var err error
	bootWithApp(t, func(lc *libsystem.C) {
		var notifyd xnu.PortName
		notifyd, err = services.WaitForService(lc, services.NotifydName, 50)
		if err != nil {
			return
		}
		myPort := lc.MachReplyPort()
		if err = services.NotifyRegister(lc, notifyd, "com.apple.system.timezone", myPort); err != nil {
			return
		}
		if err = services.NotifyPost(lc, notifyd, "com.apple.system.timezone"); err != nil {
			return
		}
		msg, kr := lc.MachReceive(myPort, time.Second)
		if kr != xnu.KernSuccess {
			err = errKr(kr)
			return
		}
		if msg.ID == services.MsgNotifyDelivery {
			delivered = string(msg.Body)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != "com.apple.system.timezone" {
		t.Fatalf("delivered = %q", delivered)
	}
}

func TestSyslogdCollectsLines(t *testing.T) {
	sys := bootWithApp(t, func(lc *libsystem.C) {
		syslogd, err := services.WaitForService(lc, services.SyslogdName, 50)
		if err != nil {
			return
		}
		services.Syslog(lc, syslogd, "app[1]: started")
		services.Syslog(lc, syslogd, "app[1]: finished")
		// Give syslogd a turn to drain before the app exits.
		lc.T.Proc().Sleep(10 * time.Millisecond)
	})
	if sys.Syslog.Len() != 2 {
		t.Fatalf("syslog lines = %v", sys.Syslog.Lines())
	}
	if sys.Syslog.Lines()[0] != "app[1]: started" {
		t.Fatalf("lines = %v", sys.Syslog.Lines())
	}
}

func TestServicesOnIPad(t *testing.T) {
	// The same service binaries run natively on the iPad configuration.
	sys, err := core.NewSystem(core.ConfigIPad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.BootServices(); err != nil {
		t.Fatal(err)
	}
	var model string
	sys.InstallIOSBinary("/Applications/c.app/c", "capp", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Proc().Sleep(80 * time.Millisecond)
		lc := libsystem.Sys(th)
		configd, err := services.WaitForService(lc, services.ConfigdName, 50)
		if err != nil {
			return 1
		}
		model, _ = services.ConfigGet(lc, configd, "Model")
		return 0
	})
	sys.Start("/Applications/c.app/c", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if model != "iPad mini" {
		t.Fatalf("Model = %q", model)
	}
}

type errKr xnu.KernReturn

func (e errKr) Error() string { return "kern_return" }

// Regression test for a wakeup bug found by ciderlint's waketag analyzer:
// WaitForService discarded the wake tag of its retry sleep, so a signal
// arriving while an app waited for a service that never registers was
// swallowed and the app kept polling. An interrupted wait must abort with
// an error instead.
//
// The interrupt comes from the fault layer: an OpPark rule on "sleep"
// gated to fire only after boot (and after the app's own setup sleep).
// Depending on where the retry loop is, a fire can land in a bootstrap
// Receive (absorbed as a failed lookup, per the same burn-down) rather
// than the retry sleep, so the rule repeats under a small Count cap —
// no dedicated killer process poking the waiter.
func TestWaitForServiceInterrupted(t *testing.T) {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.BootServices(); err != nil {
		t.Fatal(err)
	}
	in := sys.EnableFaults(fault.Plan{Name: "wait-eintr", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpPark, Match: "sleep", After: 100 * time.Millisecond, Count: 8},
	}})
	var waitErr error
	if err := sys.InstallIOSBinary("/Applications/w.app/w", "wait-app", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Proc().Sleep(80 * time.Millisecond)
		_, waitErr = services.WaitForService(libsystem.Sys(th), "com.example.never", 1<<30)
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Start("/Applications/w.app/w", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if waitErr == nil || !strings.Contains(waitErr.Error(), "interrupted") {
		t.Fatalf("waitErr = %v, want interrupted", waitErr)
	}
	if in.Fired() == 0 {
		t.Fatal("injector never fired")
	}
}
