// Package services implements the iOS user-space service layer Cider
// copies onto the device (Section 3, Figure 2): launchd — the bootstrap
// name server that "starts, stops, and maintains services and apps" — and
// the Mach IPC daemons it launches: configd (system configuration),
// notifyd (asynchronous notifications) and syslogd (logging).
//
// Everything here is genuine user-space code: the daemons are Mach-O
// binaries started through posix_spawn, and every interaction rides the
// duct-taped Mach IPC subsystem through the XNU ABI.
package services

import (
	"fmt"
	"time"

	"repro/internal/libsystem"
	"repro/internal/sim"
	"repro/internal/xnu"
)

// Bootstrap protocol message ids (the simulated MIG surface).
const (
	// MsgBootstrapRegister registers a name with a carried send right.
	MsgBootstrapRegister int32 = 400
	// MsgBootstrapLookUp asks for a name's send right.
	MsgBootstrapLookUp int32 = 401
	// MsgBootstrapOK / MsgBootstrapErr are the reply codes.
	MsgBootstrapOK  int32 = 402
	MsgBootstrapErr int32 = 403
)

// Well-known service names.
const (
	// ConfigdName is configd's bootstrap name.
	ConfigdName = "com.apple.SystemConfiguration.configd"
	// NotifydName is notifyd's bootstrap name.
	NotifydName = "com.apple.system.notification_center"
	// SyslogdName is syslogd's bootstrap name.
	SyslogdName = "com.apple.system.logger"
	// CrashReporterName is crashreporterd's bootstrap name.
	CrashReporterName = "com.apple.ReportCrash"
)

// Program keys / binary paths.
const (
	LaunchdKey        = "launchd"
	LaunchdPath       = "/sbin/launchd"
	ConfigdKey        = "configd"
	ConfigdPath       = "/usr/libexec/configd"
	NotifydKey        = "notifyd"
	NotifydPath       = "/usr/sbin/notifyd"
	SyslogdKey        = "syslogd"
	SyslogdPath       = "/usr/sbin/syslogd"
	CrashReporterKey  = "crashreporterd"
	CrashReporterPath = "/usr/libexec/crashreporterd"
)

// CrashLogDir is where crashreporterd writes its reports.
const CrashLogDir = "/var/log/crashes"

// internTable deduplicates the short, recurring strings that daemons pull
// out of message bodies — bootstrap service names, notification keys. The
// set of distinct names is tiny and stable, so after warm-up every
// register/post resolves to an already-interned string without touching
// the heap (the map probe on raw bytes compiles to an allocation-free
// lookup).
type internTable map[string]string

// get returns the canonical string for b, interning it on first sight.
//
//hot:noalloc
func (it internTable) get(b []byte) string {
	//lint:allow hotalloc: map index on string(b) compiles to an allocation-free lookup
	if s, ok := it[string(b)]; ok {
		return s
	}
	//lint:allow hotalloc: first sighting of a name — every later message reuses this string
	s := string(b)
	it[s] = s
	return s
}

// BootstrapRegister publishes a receive right under name with launchd.
func BootstrapRegister(lc *libsystem.C, name string, recv xnu.PortName) error {
	ipc, ok := xnu.FromKernel(lc.T.Kernel())
	if !ok {
		return fmt.Errorf("services: no Mach IPC")
	}
	right, kr := ipc.MakeSendRight(lc.T, recv)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: make send right: %#x", kr)
	}
	reply := lc.MachReplyPort()
	replyRight, _ := ipc.MakeSendRight(lc.T, reply)
	kr = lc.MachSend(xnu.BootstrapName, &xnu.Message{
		ID:     MsgBootstrapRegister,
		Body:   []byte(name),
		Rights: []xnu.CarriedRight{*right},
		Reply:  replyRight,
	}, -1)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: register send: %#x", kr)
	}
	msg, kr := lc.MachReceive(reply, -1)
	if kr != xnu.KernSuccess || msg.ID != MsgBootstrapOK {
		return fmt.Errorf("services: register rejected")
	}
	return nil
}

// BootstrapLookUp resolves name to a send right in the caller's space.
func BootstrapLookUp(lc *libsystem.C, name string) (xnu.PortName, error) {
	ipc, ok := xnu.FromKernel(lc.T.Kernel())
	if !ok {
		return xnu.PortNull, fmt.Errorf("services: no Mach IPC")
	}
	reply := lc.MachReplyPort()
	replyRight, _ := ipc.MakeSendRight(lc.T, reply)
	kr := lc.MachSend(xnu.BootstrapName, &xnu.Message{
		ID:    MsgBootstrapLookUp,
		Body:  []byte(name),
		Reply: replyRight,
	}, -1)
	if kr != xnu.KernSuccess {
		return xnu.PortNull, fmt.Errorf("services: lookup send: %#x", kr)
	}
	msg, kr := lc.MachReceive(reply, -1)
	if kr != xnu.KernSuccess {
		return xnu.PortNull, fmt.Errorf("services: lookup recv: %#x", kr)
	}
	if msg.ID != MsgBootstrapOK || len(msg.RightNames) != 1 {
		return xnu.PortNull, fmt.Errorf("services: unknown name %q", name)
	}
	return msg.RightNames[0], nil
}

// Notifyd protocol message ids.
const (
	// MsgNotifyRegister subscribes the carried port to a name.
	MsgNotifyRegister int32 = 500
	// MsgNotifyPost fires a notification by name.
	MsgNotifyPost int32 = 501
	// MsgNotifyDelivery is the message subscribers receive.
	MsgNotifyDelivery int32 = 502
)

// NotifyRegister subscribes recv (a receive right) to notifications named
// name, via notifyd.
func NotifyRegister(lc *libsystem.C, notifyd xnu.PortName, name string, recv xnu.PortName) error {
	ipc, _ := xnu.FromKernel(lc.T.Kernel())
	right, kr := ipc.MakeSendRight(lc.T, recv)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: notify register right: %#x", kr)
	}
	kr = lc.MachSend(notifyd, &xnu.Message{
		ID:     MsgNotifyRegister,
		Body:   []byte(name),
		Rights: []xnu.CarriedRight{*right},
	}, -1)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: notify register: %#x", kr)
	}
	return nil
}

// NotifyPost fires the notification named name (notify_post(3)).
func NotifyPost(lc *libsystem.C, notifyd xnu.PortName, name string) error {
	kr := lc.MachSend(notifyd, &xnu.Message{ID: MsgNotifyPost, Body: []byte(name)}, -1)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: notify post: %#x", kr)
	}
	return nil
}

// Configd protocol message ids.
const (
	// MsgConfigGet asks for a key; body "key".
	MsgConfigGet int32 = 510
	// MsgConfigSet sets "key=value".
	MsgConfigSet int32 = 511
	// MsgConfigReply carries the value (or empty for missing).
	MsgConfigReply int32 = 512
)

// ConfigSet stores key=value in configd.
func ConfigSet(lc *libsystem.C, configd xnu.PortName, key, value string) error {
	kr := lc.MachSend(configd, &xnu.Message{ID: MsgConfigSet, Body: []byte(key + "=" + value)}, -1)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: config set: %#x", kr)
	}
	return nil
}

// ConfigGet fetches a key from configd.
func ConfigGet(lc *libsystem.C, configd xnu.PortName, key string) (string, error) {
	reply := lc.MachReplyPort()
	ipc, _ := xnu.FromKernel(lc.T.Kernel())
	replyRight, _ := ipc.MakeSendRight(lc.T, reply)
	kr := lc.MachSend(configd, &xnu.Message{ID: MsgConfigGet, Body: []byte(key), Reply: replyRight}, -1)
	if kr != xnu.KernSuccess {
		return "", fmt.Errorf("services: config get: %#x", kr)
	}
	msg, kr := lc.MachReceive(reply, -1)
	if kr != xnu.KernSuccess || msg.ID != MsgConfigReply {
		return "", fmt.Errorf("services: config get reply: %#x", kr)
	}
	return string(msg.Body), nil
}

// MsgSyslog is a log submission; body is the log line.
const MsgSyslog int32 = 520

// Syslog submits a log line to syslogd.
func Syslog(lc *libsystem.C, syslogd xnu.PortName, line string) {
	lc.MachSend(syslogd, &xnu.Message{ID: MsgSyslog, Body: []byte(line)}, -1)
}

// waitRetry is the pacing for bootstrap lookups during startup races.
const waitRetry = 2 * time.Millisecond

// WaitForService looks a name up, retrying while launchd's children come
// up. Returns the send right name.
func WaitForService(lc *libsystem.C, name string, attempts int) (xnu.PortName, error) {
	for i := 0; ; i++ {
		p, err := BootstrapLookUp(lc, name)
		if err == nil {
			return p, nil
		}
		if i >= attempts {
			return xnu.PortNull, err
		}
		if lc.T.Proc().Sleep(waitRetry) == sim.WakeInterrupted {
			return xnu.PortNull, fmt.Errorf("services: wait for %q interrupted", name)
		}
	}
}

// ServiceClient defaults.
const (
	// clientTimeout bounds each Mach send/receive so a dead service can
	// never hang a client: the call fails, the cached right is dropped,
	// and the client re-resolves via bootstrap lookup.
	clientTimeout = 20 * time.Millisecond
	// clientAttempts bounds resolve/retry rounds.
	clientAttempts = 8
	// clientBackoffBase/Cap pace re-resolution between failed rounds
	// (deterministic exponential, virtual clock).
	clientBackoffBase = 2 * time.Millisecond
	clientBackoffCap  = 32 * time.Millisecond
)

// ServiceClient is a supervision-aware Mach service client: it caches the
// service's send right, arms a dead-name notification so a crash wakes
// blocked waiters immediately, and on any dead-name/timeout failure
// re-resolves via bootstrap lookup with bounded exponential backoff
// instead of hanging. This is the client half of launchd's KeepAlive
// story: a service crash surfaces as a bounded retry, not a stuck app.
type ServiceClient struct {
	lc   *libsystem.C
	name string
	port xnu.PortName // cached send right (PortNull = unresolved)
	// reply is the client's receive port, reused across calls and doubling
	// as the dead-name notification target.
	reply xnu.PortName

	// Timeout bounds each send and each reply receive.
	Timeout time.Duration
	// Attempts bounds resolve/retry rounds per call.
	Attempts int
}

// NewServiceClient builds a client for the named service.
func NewServiceClient(lc *libsystem.C, name string) *ServiceClient {
	return &ServiceClient{lc: lc, name: name, Timeout: clientTimeout, Attempts: clientAttempts}
}

// resolve returns the cached send right or looks the service up,
// re-arming the dead-name notification on every fresh resolution.
func (sc *ServiceClient) resolve() (xnu.PortName, error) {
	if sc.port != xnu.PortNull {
		return sc.port, nil
	}
	p, err := WaitForService(sc.lc, sc.name, sc.Attempts)
	if err != nil {
		return xnu.PortNull, err
	}
	sc.port = p
	if ipc, ok := xnu.FromKernel(sc.lc.T.Kernel()); ok {
		// A crash of the service posts MsgDeadNameNotification to the
		// reply port, waking a blocked receive right away.
		ipc.RequestDeadNameNotification(sc.lc.T, p, sc.replyPort())
	}
	return p, nil
}

func (sc *ServiceClient) replyPort() xnu.PortName {
	if sc.reply == xnu.PortNull {
		sc.reply = sc.lc.MachReplyPort()
	}
	return sc.reply
}

// drop forgets the cached right (the service died; its replacement has a
// different port).
func (sc *ServiceClient) drop() { sc.port = xnu.PortNull }

// discardReply destroys the reply port after a timed-out round.
func (sc *ServiceClient) discardReply(ipc *xnu.IPC) {
	if sc.reply != xnu.PortNull {
		ipc.PortDestroy(sc.lc.T, sc.reply)
		sc.reply = xnu.PortNull
	}
}

// backoff sleeps a full deterministic exponential delay for retry round i,
// re-sleeping the remainder when interrupted.
func (sc *ServiceClient) backoff(i int) {
	d := clientBackoffBase << i
	if d > clientBackoffCap {
		d = clientBackoffCap
	}
	sleepFull(sc.lc, d)
}

// sleepFull sleeps for d of virtual time, consuming interrupted wakes and
// re-sleeping the remainder so the full delay always elapses.
func sleepFull(lc *libsystem.C, d time.Duration) {
	deadline := lc.T.Now() + d
	for lc.T.Now() < deadline {
		if lc.T.Proc().Sleep(deadline-lc.T.Now()) == sim.WakeInterrupted {
			continue // interrupted: re-sleep the remainder
		}
	}
}

// retryable reports whether a send failure means "the service may have
// died or be flapping — re-resolve and try again".
func retryable(kr xnu.KernReturn) bool {
	switch kr {
	case xnu.MachSendInvalidDest, xnu.MachSendTimedOut, xnu.KernInvalidName, xnu.KernInvalidRight:
		return true
	}
	return false
}

// Send delivers a one-way message, re-resolving on dead-name failures.
func (sc *ServiceClient) Send(msg *xnu.Message) error {
	var lastErr error
	for i := 0; i < sc.Attempts; i++ {
		p, err := sc.resolve()
		if err != nil {
			lastErr = err
			sc.backoff(i)
			continue
		}
		kr := sc.lc.MachSend(p, msg, sc.Timeout)
		switch {
		case kr == xnu.KernSuccess:
			return nil
		case kr == xnu.MachSendInterrupted:
			i-- // injected interrupt: same right, immediate retry
			continue
		case retryable(kr):
			sc.drop()
			lastErr = fmt.Errorf("services: send to %q: %#x", sc.name, kr)
			sc.backoff(i)
		default:
			return fmt.Errorf("services: send to %q: %#x", sc.name, kr)
		}
	}
	return fmt.Errorf("services: %q unavailable after %d attempts: %w", sc.name, sc.Attempts, lastErr)
}

// Call performs a request/reply round trip. The reply right is attached
// automatically; a service that dies mid-call surfaces as a dead-name
// notification or receive timeout, and the round is retried against the
// respawned instance.
func (sc *ServiceClient) Call(msg *xnu.Message) (*xnu.Message, error) {
	ipc, ok := xnu.FromKernel(sc.lc.T.Kernel())
	if !ok {
		return nil, fmt.Errorf("services: no Mach IPC")
	}
	var lastErr error
	for i := 0; i < sc.Attempts; i++ {
		p, err := sc.resolve()
		if err != nil {
			lastErr = err
			sc.backoff(i)
			continue
		}
		reply := sc.replyPort()
		replyRight, kr := ipc.MakeSendRight(sc.lc.T, reply)
		if kr != xnu.KernSuccess {
			return nil, fmt.Errorf("services: reply right: %#x", kr)
		}
		m := *msg
		m.Reply = replyRight
		kr = sc.lc.MachSend(p, &m, sc.Timeout)
		if kr == xnu.MachSendInterrupted {
			i--
			continue
		}
		if kr != xnu.KernSuccess {
			if retryable(kr) {
				sc.drop()
				lastErr = fmt.Errorf("services: call %q: %#x", sc.name, kr)
				sc.backoff(i)
				continue
			}
			return nil, fmt.Errorf("services: call %q: %#x", sc.name, kr)
		}
	recv:
		rep, kr := sc.lc.MachReceive(reply, sc.Timeout)
		switch {
		case kr == xnu.MachRcvInterrupted:
			goto recv
		case kr != xnu.KernSuccess:
			// Timeout: the service died holding our request. Discard the
			// reply port too — a late reply must not pair with the next
			// round's request.
			sc.drop()
			sc.discardReply(ipc)
			lastErr = fmt.Errorf("services: call %q: no reply (%#x)", sc.name, kr)
			sc.backoff(i)
			continue
		case rep.ID == xnu.MsgDeadNameNotification:
			// The service's port died — possibly while we waited, possibly
			// earlier (stale notification). Forget the right and keep
			// receiving: either the real reply follows, or the timeout
			// path retries against the respawned service.
			sc.drop()
			goto recv
		}
		return rep, nil
	}
	return nil, fmt.Errorf("services: %q unavailable after %d attempts: %w", sc.name, sc.Attempts, lastErr)
}
