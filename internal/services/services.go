// Package services implements the iOS user-space service layer Cider
// copies onto the device (Section 3, Figure 2): launchd — the bootstrap
// name server that "starts, stops, and maintains services and apps" — and
// the Mach IPC daemons it launches: configd (system configuration),
// notifyd (asynchronous notifications) and syslogd (logging).
//
// Everything here is genuine user-space code: the daemons are Mach-O
// binaries started through posix_spawn, and every interaction rides the
// duct-taped Mach IPC subsystem through the XNU ABI.
package services

import (
	"fmt"
	"time"

	"repro/internal/libsystem"
	"repro/internal/sim"
	"repro/internal/xnu"
)

// Bootstrap protocol message ids (the simulated MIG surface).
const (
	// MsgBootstrapRegister registers a name with a carried send right.
	MsgBootstrapRegister int32 = 400
	// MsgBootstrapLookUp asks for a name's send right.
	MsgBootstrapLookUp int32 = 401
	// MsgBootstrapOK / MsgBootstrapErr are the reply codes.
	MsgBootstrapOK  int32 = 402
	MsgBootstrapErr int32 = 403
)

// Well-known service names.
const (
	// ConfigdName is configd's bootstrap name.
	ConfigdName = "com.apple.SystemConfiguration.configd"
	// NotifydName is notifyd's bootstrap name.
	NotifydName = "com.apple.system.notification_center"
	// SyslogdName is syslogd's bootstrap name.
	SyslogdName = "com.apple.system.logger"
)

// Program keys / binary paths.
const (
	LaunchdKey  = "launchd"
	LaunchdPath = "/sbin/launchd"
	ConfigdKey  = "configd"
	ConfigdPath = "/usr/libexec/configd"
	NotifydKey  = "notifyd"
	NotifydPath = "/usr/sbin/notifyd"
	SyslogdKey  = "syslogd"
	SyslogdPath = "/usr/sbin/syslogd"
)

// BootstrapRegister publishes a receive right under name with launchd.
func BootstrapRegister(lc *libsystem.C, name string, recv xnu.PortName) error {
	ipc, ok := xnu.FromKernel(lc.T.Kernel())
	if !ok {
		return fmt.Errorf("services: no Mach IPC")
	}
	right, kr := ipc.MakeSendRight(lc.T, recv)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: make send right: %#x", kr)
	}
	reply := lc.MachReplyPort()
	replyRight, _ := ipc.MakeSendRight(lc.T, reply)
	kr = lc.MachSend(xnu.BootstrapName, &xnu.Message{
		ID:     MsgBootstrapRegister,
		Body:   []byte(name),
		Rights: []xnu.CarriedRight{*right},
		Reply:  replyRight,
	}, -1)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: register send: %#x", kr)
	}
	msg, kr := lc.MachReceive(reply, -1)
	if kr != xnu.KernSuccess || msg.ID != MsgBootstrapOK {
		return fmt.Errorf("services: register rejected")
	}
	return nil
}

// BootstrapLookUp resolves name to a send right in the caller's space.
func BootstrapLookUp(lc *libsystem.C, name string) (xnu.PortName, error) {
	ipc, ok := xnu.FromKernel(lc.T.Kernel())
	if !ok {
		return xnu.PortNull, fmt.Errorf("services: no Mach IPC")
	}
	reply := lc.MachReplyPort()
	replyRight, _ := ipc.MakeSendRight(lc.T, reply)
	kr := lc.MachSend(xnu.BootstrapName, &xnu.Message{
		ID:    MsgBootstrapLookUp,
		Body:  []byte(name),
		Reply: replyRight,
	}, -1)
	if kr != xnu.KernSuccess {
		return xnu.PortNull, fmt.Errorf("services: lookup send: %#x", kr)
	}
	msg, kr := lc.MachReceive(reply, -1)
	if kr != xnu.KernSuccess {
		return xnu.PortNull, fmt.Errorf("services: lookup recv: %#x", kr)
	}
	if msg.ID != MsgBootstrapOK || len(msg.RightNames) != 1 {
		return xnu.PortNull, fmt.Errorf("services: unknown name %q", name)
	}
	return msg.RightNames[0], nil
}

// Notifyd protocol message ids.
const (
	// MsgNotifyRegister subscribes the carried port to a name.
	MsgNotifyRegister int32 = 500
	// MsgNotifyPost fires a notification by name.
	MsgNotifyPost int32 = 501
	// MsgNotifyDelivery is the message subscribers receive.
	MsgNotifyDelivery int32 = 502
)

// NotifyRegister subscribes recv (a receive right) to notifications named
// name, via notifyd.
func NotifyRegister(lc *libsystem.C, notifyd xnu.PortName, name string, recv xnu.PortName) error {
	ipc, _ := xnu.FromKernel(lc.T.Kernel())
	right, kr := ipc.MakeSendRight(lc.T, recv)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: notify register right: %#x", kr)
	}
	kr = lc.MachSend(notifyd, &xnu.Message{
		ID:     MsgNotifyRegister,
		Body:   []byte(name),
		Rights: []xnu.CarriedRight{*right},
	}, -1)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: notify register: %#x", kr)
	}
	return nil
}

// NotifyPost fires the notification named name (notify_post(3)).
func NotifyPost(lc *libsystem.C, notifyd xnu.PortName, name string) error {
	kr := lc.MachSend(notifyd, &xnu.Message{ID: MsgNotifyPost, Body: []byte(name)}, -1)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: notify post: %#x", kr)
	}
	return nil
}

// Configd protocol message ids.
const (
	// MsgConfigGet asks for a key; body "key".
	MsgConfigGet int32 = 510
	// MsgConfigSet sets "key=value".
	MsgConfigSet int32 = 511
	// MsgConfigReply carries the value (or empty for missing).
	MsgConfigReply int32 = 512
)

// ConfigSet stores key=value in configd.
func ConfigSet(lc *libsystem.C, configd xnu.PortName, key, value string) error {
	kr := lc.MachSend(configd, &xnu.Message{ID: MsgConfigSet, Body: []byte(key + "=" + value)}, -1)
	if kr != xnu.KernSuccess {
		return fmt.Errorf("services: config set: %#x", kr)
	}
	return nil
}

// ConfigGet fetches a key from configd.
func ConfigGet(lc *libsystem.C, configd xnu.PortName, key string) (string, error) {
	reply := lc.MachReplyPort()
	ipc, _ := xnu.FromKernel(lc.T.Kernel())
	replyRight, _ := ipc.MakeSendRight(lc.T, reply)
	kr := lc.MachSend(configd, &xnu.Message{ID: MsgConfigGet, Body: []byte(key), Reply: replyRight}, -1)
	if kr != xnu.KernSuccess {
		return "", fmt.Errorf("services: config get: %#x", kr)
	}
	msg, kr := lc.MachReceive(reply, -1)
	if kr != xnu.KernSuccess || msg.ID != MsgConfigReply {
		return "", fmt.Errorf("services: config get reply: %#x", kr)
	}
	return string(msg.Body), nil
}

// MsgSyslog is a log submission; body is the log line.
const MsgSyslog int32 = 520

// Syslog submits a log line to syslogd.
func Syslog(lc *libsystem.C, syslogd xnu.PortName, line string) {
	lc.MachSend(syslogd, &xnu.Message{ID: MsgSyslog, Body: []byte(line)}, -1)
}

// waitRetry is the pacing for bootstrap lookups during startup races.
const waitRetry = 2 * time.Millisecond

// WaitForService looks a name up, retrying while launchd's children come
// up. Returns the send right name.
func WaitForService(lc *libsystem.C, name string, attempts int) (xnu.PortName, error) {
	for i := 0; ; i++ {
		p, err := BootstrapLookUp(lc, name)
		if err == nil {
			return p, nil
		}
		if i >= attempts {
			return xnu.PortNull, err
		}
		if lc.T.Proc().Sleep(waitRetry) == sim.WakeInterrupted {
			return xnu.PortNull, fmt.Errorf("services: wait for %q interrupted", name)
		}
	}
}
