package services

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/xnu"
)

// SyslogCapacity bounds the syslog ring: under long soaks and crash
// storms the log must not grow without limit.
const SyslogCapacity = 512

// SyslogBuffer is syslogd's captured log, exposed for tests and the cider
// CLI: a fixed-capacity ring that evicts the oldest line when full and
// counts what it dropped.
type SyslogBuffer struct {
	lines   []string
	start   int
	dropped uint64
}

// Append adds a line, evicting the oldest when the ring is full; it
// reports whether a line was dropped.
func (b *SyslogBuffer) Append(line string) bool {
	if len(b.lines) < SyslogCapacity {
		b.lines = append(b.lines, line)
		return false
	}
	b.lines[b.start] = line
	b.start++
	if b.start == SyslogCapacity {
		b.start = 0
	}
	b.dropped++
	return true
}

// Lines returns the retained lines oldest-first.
func (b *SyslogBuffer) Lines() []string {
	out := make([]string, 0, len(b.lines))
	out = append(out, b.lines[b.start:]...)
	out = append(out, b.lines[:b.start]...)
	return out
}

// Len returns the retained line count.
func (b *SyslogBuffer) Len() int { return len(b.lines) }

// Dropped returns how many lines were evicted.
func (b *SyslogBuffer) Dropped() uint64 { return b.dropped }

// RegisterAll installs the service programs (launchd, configd, notifyd,
// syslogd) into the registry and their Mach-O binaries into the iOS
// filesystem. The returned SyslogBuffer observes syslogd.
func RegisterAll(reg *prog.Registry, iosFS *vfs.FS) (*SyslogBuffer, error) {
	slog := &SyslogBuffer{}

	register := func(key string, body func(t *kernel.Thread) uint64) error {
		return reg.Register(key, func(c *prog.Call) uint64 {
			t := c.Ctx.(*kernel.Thread)
			// Daemons never exit; the simulation may end while they wait.
			t.Proc().SetDaemon(true)
			// System services sit in the daemon jetsam band: below any
			// foreground app, above idle — memorystatus reaps them only
			// after the idle and background bands are empty, and launchd's
			// KeepAlive brings them back.
			t.Kernel().Memorystatus().SetBand(t.Task(), kernel.BandDaemon)
			return body(t)
		})
	}

	if err := register(LaunchdKey, launchdMain); err != nil {
		return nil, err
	}
	if err := register(ConfigdKey, configdMain); err != nil {
		return nil, err
	}
	if err := register(NotifydKey, notifydMain); err != nil {
		return nil, err
	}
	if err := register(SyslogdKey, func(t *kernel.Thread) uint64 {
		return syslogdMain(t, slog)
	}); err != nil {
		return nil, err
	}
	if err := register(CrashReporterKey, crashReporterMain); err != nil {
		return nil, err
	}
	if err := iosFS.MkdirAll(CrashLogDir); err != nil {
		return nil, err
	}

	// Install the Mach-O binaries (copied from an iOS device, per §3).
	for _, svc := range []struct{ path, key string }{
		{LaunchdPath, LaunchdKey},
		{ConfigdPath, ConfigdKey},
		{NotifydPath, NotifydKey},
		{SyslogdPath, SyslogdKey},
		{CrashReporterPath, CrashReporterKey},
	} {
		bin, err := prog.MachOExecutable(svc.key, []string{"/usr/lib/libSystem.B.dylib"}, nil)
		if err != nil {
			return nil, err
		}
		if err := iosFS.WriteFile(svc.path, bin); err != nil {
			return nil, err
		}
	}
	return slog, nil
}

// Supervision (KeepAlive) constants. All delays are virtual-clock, so
// respawn timing is deterministic.
const (
	// RespawnBackoffBase is the delay before the first respawn of a
	// crashed service; it doubles per crash inside the flap window.
	RespawnBackoffBase = 10 * time.Millisecond
	// RespawnBackoffCap bounds the exponential backoff.
	RespawnBackoffCap = 160 * time.Millisecond
	// RespawnWindow is the flap-detection window.
	RespawnWindow = 2 * time.Second
	// RespawnMaxInWindow is the crash budget: one more crash inside the
	// window and launchd gives up on the service.
	RespawnMaxInWindow = 5
)

// launchdMain is pid-1-style: claim the bootstrap port, spawn the standard
// daemons, start the supervisor thread, then serve the name registry
// forever.
func launchdMain(t *kernel.Thread) uint64 {
	lc := libsystem.Sys(t)
	// launchd is pid-1: jetsam must never choose it, whatever its
	// footprint — kill it and nothing respawns anything.
	t.Kernel().Memorystatus().SetEssential(t.Task())
	ipc, ok := xnu.FromKernel(t.Kernel())
	if !ok {
		return 1
	}
	// Claim the bootstrap special port (task_set_special_port).
	bootstrap, kr := ipc.PortAllocate(t)
	if kr != xnu.KernSuccess {
		return 1
	}
	if r, kr := ipc.MakeSendRight(t, bootstrap); kr == xnu.KernSuccess {
		ipc.SetBootstrapPort(r.Port)
	}

	// Start the Mach IPC services (Section 2: "launchd starts Mach IPC
	// services such as configd, notifyd, ..."). crashreporterd first, so
	// the host exception port is up before anything can crash.
	children := make(map[int]string)
	for _, path := range []string{CrashReporterPath, ConfigdPath, NotifydPath, SyslogdPath} {
		if pid, errno := lc.PosixSpawn(path, nil); errno == kernel.OK {
			children[pid] = path
		}
	}

	// KeepAlive: a dedicated thread waits on the children and respawns
	// crashed services (the registry loop below must never block on wait4).
	t.SpawnThread("supervisor", func(nt *kernel.Thread) {
		nt.Proc().SetDaemon(true)
		superviseLoop(nt, children)
	})

	// Serve the bootstrap registry. Service names arrive as message bytes
	// on every register; interning hands back the same string each time a
	// respawned service re-registers, so steady-state registry traffic
	// stops allocating name strings.
	names := make(map[string]*xnu.CarriedRight)
	interned := make(internTable)
	for {
		msg, kr := lc.MachReceive(bootstrap, -1)
		if kr != xnu.KernSuccess {
			return 1
		}
		switch msg.ID {
		case MsgBootstrapRegister:
			if len(msg.RightNames) == 1 {
				name := interned.get(msg.Body)
				right, _ := ipc.MakeSendRight(t, msg.RightNames[0])
				if right != nil {
					// A respawned service re-registers here, replacing its
					// dead predecessor's right.
					names[name] = right
					if msg.ReplyName != xnu.PortNull {
						lc.MachSend(msg.ReplyName, &xnu.Message{ID: MsgBootstrapOK}, -1)
					}
					continue
				}
			}
			if msg.ReplyName != xnu.PortNull {
				lc.MachSend(msg.ReplyName, &xnu.Message{ID: MsgBootstrapErr}, -1)
			}
		case MsgBootstrapLookUp:
			right, ok := names[string(msg.Body)]
			if ok && right.Port.Dead() {
				// Prune a crashed service's stale right: clients get an
				// error (and retry) instead of a right to a dead port.
				delete(names, string(msg.Body))
				ok = false
			}
			if msg.ReplyName == xnu.PortNull {
				continue
			}
			if !ok {
				lc.MachSend(msg.ReplyName, &xnu.Message{ID: MsgBootstrapErr}, -1)
				continue
			}
			lc.MachSend(msg.ReplyName, &xnu.Message{
				ID:     MsgBootstrapOK,
				Rights: []xnu.CarriedRight{*right},
			}, -1)
		}
	}
}

// superviseLoop is launchd's KeepAlive wait loop: reap every child, and
// respawn crashed services with deterministic exponential backoff —
// throttling a service that crashes more than RespawnMaxInWindow times
// inside RespawnWindow (give up + syslog line).
func superviseLoop(t *kernel.Thread, children map[int]string) {
	lc := libsystem.Sys(t)
	tr := func() *trace.Session { return t.Kernel().Tracer() }
	// Per-service crash history inside the flap window.
	history := make(map[string][]time.Duration)
	throttled := make(map[string]bool)
	for {
		pid, status, errno := lc.Wait(-1)
		if errno == kernel.EINTR {
			continue
		}
		if errno != kernel.OK {
			return // ECHILD: every service exited clean or was throttled
		}
		path, ok := children[pid]
		if !ok {
			continue // not a supervised service
		}
		delete(children, pid)
		if status == 0 {
			continue // clean exit: KeepAlive respawns crashes only
		}
		if _, jetsammed := t.Kernel().Memorystatus().TakeJetsam(pid); jetsammed {
			// A jetsam kill is the system's doing, not the service's: it
			// must not count against the crash budget or trigger backoff —
			// a service reaped for memory would otherwise flap into
			// throttling during a pressure storm. Respawn immediately; if
			// pressure persists, memorystatus picks it again by the same
			// deterministic order.
			if s := tr(); s != nil {
				s.Count(trace.CounterLaunchdJetsam, 1)
			}
			npid, errno := lc.PosixSpawn(path, nil)
			if errno != kernel.OK {
				continue
			}
			children[npid] = path
			if s := tr(); s != nil {
				s.Count(trace.CounterLaunchdRespawns, 1)
				s.Respawn(t.Proc().Name(), t.Proc().ID(), path,
					fmt.Sprintf("respawn pid=%d after jetsam", npid), t.Now())
			}
			continue
		}
		now := t.Now()
		if s := tr(); s != nil {
			s.Count(trace.CounterLaunchdCrashes, 1)
		}
		if throttled[path] {
			continue
		}
		// Prune crashes that fell out of the window, then record this one.
		h := history[path][:0]
		for _, at := range history[path] {
			if now-at < RespawnWindow {
				h = append(h, at)
			}
		}
		h = append(h, now)
		history[path] = h
		if len(h) > RespawnMaxInWindow {
			throttled[path] = true
			if s := tr(); s != nil {
				s.Count(trace.CounterLaunchdThrottled, 1)
				s.Respawn(t.Proc().Name(), t.Proc().ID(), path, "throttled", t.Now())
			}
			// Best-effort give-up line; dropped if syslogd itself is down.
			slog := NewServiceClient(lc, SyslogdName)
			slog.Attempts = 2
			slog.Send(&xnu.Message{ID: MsgSyslog,
				Body: []byte(fmt.Sprintf("launchd: giving up on %s: %d crashes in window", path, len(h)))})
			continue
		}
		// Exponential backoff on the virtual clock: 10ms, 20ms, ... capped.
		backoff := RespawnBackoffBase << (len(h) - 1)
		if backoff > RespawnBackoffCap {
			backoff = RespawnBackoffCap
		}
		sleepFull(lc, backoff)
		npid, errno := lc.PosixSpawn(path, nil)
		if errno != kernel.OK {
			continue
		}
		children[npid] = path
		if s := tr(); s != nil {
			s.Count(trace.CounterLaunchdRespawns, 1)
			s.Respawn(t.Proc().Name(), t.Proc().ID(), path,
				fmt.Sprintf("respawn pid=%d backoff=%s", npid, backoff), t.Now())
		}
	}
}

// configdMain serves a key/value store over Mach IPC.
func configdMain(t *kernel.Thread) uint64 {
	lc := libsystem.Sys(t)
	port := lc.MachReplyPort()
	if err := BootstrapRegister(lc, ConfigdName, port); err != nil {
		return 1
	}
	store := map[string]string{
		"Model":            t.Kernel().Device().Name,
		"UserAssignedName": "Cider Device",
	}
	for {
		msg, kr := lc.MachReceive(port, -1)
		if kr != xnu.KernSuccess {
			return 1
		}
		switch msg.ID {
		case MsgConfigSet:
			if k, v, ok := strings.Cut(string(msg.Body), "="); ok {
				store[k] = v
			}
		case MsgConfigGet:
			if msg.ReplyName != xnu.PortNull {
				lc.MachSend(msg.ReplyName, &xnu.Message{
					ID:   MsgConfigReply,
					Body: []byte(store[string(msg.Body)]),
				}, -1)
			}
		}
	}
}

// notifydMain serves the asynchronous notification center.
func notifydMain(t *kernel.Thread) uint64 {
	lc := libsystem.Sys(t)
	ipc, _ := xnu.FromKernel(t.Kernel())
	port := lc.MachReplyPort()
	if err := BootstrapRegister(lc, NotifydName, port); err != nil {
		return 1
	}
	subs := make(map[string][]xnu.PortName)
	interned := make(internTable)
	for {
		msg, kr := lc.MachReceive(port, -1)
		if kr != xnu.KernSuccess {
			return 1
		}
		switch msg.ID {
		case MsgNotifyRegister:
			if len(msg.RightNames) == 1 {
				name := interned.get(msg.Body)
				subs[name] = append(subs[name], msg.RightNames[0])
			}
		case MsgNotifyPost:
			name := interned.get(msg.Body)
			for _, p := range subs[name] {
				// Best effort, bounded: notifications never block notifyd.
				_ = ipc
				lc.MachSend(p, &xnu.Message{ID: MsgNotifyDelivery, Body: []byte(name)}, 0)
			}
		}
	}
}

// syslogdMain collects log lines.
func syslogdMain(t *kernel.Thread, buf *SyslogBuffer) uint64 {
	lc := libsystem.Sys(t)
	port := lc.MachReplyPort()
	if err := BootstrapRegister(lc, SyslogdName, port); err != nil {
		return 1
	}
	for {
		msg, kr := lc.MachReceive(port, -1)
		if kr != xnu.KernSuccess {
			return 1
		}
		if msg.ID == MsgSyslog {
			if buf.Append(string(msg.Body)) {
				if tr := t.Kernel().Tracer(); tr != nil {
					tr.Count(trace.CounterSyslogDropped, 1)
				}
			}
		}
	}
}
