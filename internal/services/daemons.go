package services

import (
	"strings"

	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
	"repro/internal/vfs"
	"repro/internal/xnu"
)

// Syslogd's captured log, exposed for tests and the cider CLI.
type SyslogBuffer struct {
	// Lines holds submitted log lines in arrival order.
	Lines []string
}

// RegisterAll installs the service programs (launchd, configd, notifyd,
// syslogd) into the registry and their Mach-O binaries into the iOS
// filesystem. The returned SyslogBuffer observes syslogd.
func RegisterAll(reg *prog.Registry, iosFS *vfs.FS) (*SyslogBuffer, error) {
	slog := &SyslogBuffer{}

	register := func(key string, body func(t *kernel.Thread) uint64) error {
		return reg.Register(key, func(c *prog.Call) uint64 {
			t := c.Ctx.(*kernel.Thread)
			// Daemons never exit; the simulation may end while they wait.
			t.Proc().SetDaemon(true)
			return body(t)
		})
	}

	if err := register(LaunchdKey, launchdMain); err != nil {
		return nil, err
	}
	if err := register(ConfigdKey, configdMain); err != nil {
		return nil, err
	}
	if err := register(NotifydKey, notifydMain); err != nil {
		return nil, err
	}
	if err := register(SyslogdKey, func(t *kernel.Thread) uint64 {
		return syslogdMain(t, slog)
	}); err != nil {
		return nil, err
	}

	// Install the Mach-O binaries (copied from an iOS device, per §3).
	for _, svc := range []struct{ path, key string }{
		{LaunchdPath, LaunchdKey},
		{ConfigdPath, ConfigdKey},
		{NotifydPath, NotifydKey},
		{SyslogdPath, SyslogdKey},
	} {
		bin, err := prog.MachOExecutable(svc.key, []string{"/usr/lib/libSystem.B.dylib"}, nil)
		if err != nil {
			return nil, err
		}
		if err := iosFS.WriteFile(svc.path, bin); err != nil {
			return nil, err
		}
	}
	return slog, nil
}

// launchdMain is pid-1-style: claim the bootstrap port, spawn the standard
// daemons, then serve the name registry forever.
func launchdMain(t *kernel.Thread) uint64 {
	lc := libsystem.Sys(t)
	ipc, ok := xnu.FromKernel(t.Kernel())
	if !ok {
		return 1
	}
	// Claim the bootstrap special port (task_set_special_port).
	bootstrap, kr := ipc.PortAllocate(t)
	if kr != xnu.KernSuccess {
		return 1
	}
	if r, kr := ipc.MakeSendRight(t, bootstrap); kr == xnu.KernSuccess {
		ipc.SetBootstrapPort(r.Port)
	}

	// Start the Mach IPC services (Section 2: "launchd starts Mach IPC
	// services such as configd, notifyd, ...").
	for _, path := range []string{ConfigdPath, NotifydPath, SyslogdPath} {
		lc.PosixSpawn(path, nil)
	}

	// Serve the bootstrap registry.
	names := make(map[string]*xnu.CarriedRight)
	for {
		msg, kr := lc.MachReceive(bootstrap, -1)
		if kr != xnu.KernSuccess {
			return 1
		}
		switch msg.ID {
		case MsgBootstrapRegister:
			if len(msg.RightNames) == 1 {
				name := string(msg.Body)
				right, _ := ipc.MakeSendRight(t, msg.RightNames[0])
				if right != nil {
					names[name] = right
					if msg.ReplyName != xnu.PortNull {
						lc.MachSend(msg.ReplyName, &xnu.Message{ID: MsgBootstrapOK}, -1)
					}
					continue
				}
			}
			if msg.ReplyName != xnu.PortNull {
				lc.MachSend(msg.ReplyName, &xnu.Message{ID: MsgBootstrapErr}, -1)
			}
		case MsgBootstrapLookUp:
			right, ok := names[string(msg.Body)]
			if msg.ReplyName == xnu.PortNull {
				continue
			}
			if !ok {
				lc.MachSend(msg.ReplyName, &xnu.Message{ID: MsgBootstrapErr}, -1)
				continue
			}
			lc.MachSend(msg.ReplyName, &xnu.Message{
				ID:     MsgBootstrapOK,
				Rights: []xnu.CarriedRight{*right},
			}, -1)
		}
	}
}

// configdMain serves a key/value store over Mach IPC.
func configdMain(t *kernel.Thread) uint64 {
	lc := libsystem.Sys(t)
	port := lc.MachReplyPort()
	if err := BootstrapRegister(lc, ConfigdName, port); err != nil {
		return 1
	}
	store := map[string]string{
		"Model":            t.Kernel().Device().Name,
		"UserAssignedName": "Cider Device",
	}
	for {
		msg, kr := lc.MachReceive(port, -1)
		if kr != xnu.KernSuccess {
			return 1
		}
		switch msg.ID {
		case MsgConfigSet:
			if k, v, ok := strings.Cut(string(msg.Body), "="); ok {
				store[k] = v
			}
		case MsgConfigGet:
			if msg.ReplyName != xnu.PortNull {
				lc.MachSend(msg.ReplyName, &xnu.Message{
					ID:   MsgConfigReply,
					Body: []byte(store[string(msg.Body)]),
				}, -1)
			}
		}
	}
}

// notifydMain serves the asynchronous notification center.
func notifydMain(t *kernel.Thread) uint64 {
	lc := libsystem.Sys(t)
	ipc, _ := xnu.FromKernel(t.Kernel())
	port := lc.MachReplyPort()
	if err := BootstrapRegister(lc, NotifydName, port); err != nil {
		return 1
	}
	subs := make(map[string][]xnu.PortName)
	for {
		msg, kr := lc.MachReceive(port, -1)
		if kr != xnu.KernSuccess {
			return 1
		}
		switch msg.ID {
		case MsgNotifyRegister:
			if len(msg.RightNames) == 1 {
				name := string(msg.Body)
				subs[name] = append(subs[name], msg.RightNames[0])
			}
		case MsgNotifyPost:
			name := string(msg.Body)
			for _, p := range subs[name] {
				// Best effort, bounded: notifications never block notifyd.
				_ = ipc
				lc.MachSend(p, &xnu.Message{ID: MsgNotifyDelivery, Body: []byte(name)}, 0)
			}
		}
	}
}

// syslogdMain collects log lines.
func syslogdMain(t *kernel.Thread, buf *SyslogBuffer) uint64 {
	lc := libsystem.Sys(t)
	port := lc.MachReplyPort()
	if err := BootstrapRegister(lc, SyslogdName, port); err != nil {
		return 1
	}
	for {
		msg, kr := lc.MachReceive(port, -1)
		if kr != xnu.KernSuccess {
			return 1
		}
		if msg.ID == MsgSyslog {
			buf.Lines = append(buf.Lines, string(msg.Body))
		}
	}
}
