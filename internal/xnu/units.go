package xnu

import "repro/internal/ducttape"

// AllUnits declares the compilation-unit symbol graph of the duct-taped
// foreign subsystems: which XNU source files are compiled in unmodified,
// which symbols they define and consume, and which duct tape shims satisfy
// their externals. InstallIPC/InstallPsynch validate this graph with
// ducttape.Link at boot, so a zone violation (foreign code reaching
// directly into Linux internals, or vice versa) fails kernel assembly.
//
// The file names mirror the real trees: XNU v2050.18.24's osfmk/ipc and
// bsd/kern, and the Linux 3.x sources of the Nexus 7's Android 4.2 kernel.
func AllUnits() []ducttape.Unit {
	return []ducttape.Unit{
		// ---- Domestic zone: the Linux kernel APIs the shims sit on.
		{
			Name: "linux/kernel/locking/mutex.c", Zone: ducttape.Domestic,
			Defines: []string{"mutex_lock", "mutex_unlock", "mutex_trylock"},
		},
		{
			Name: "linux/mm/slab.c", Zone: ducttape.Domestic,
			Defines: []string{"kmalloc", "kfree"},
		},
		{
			Name: "linux/kernel/sched/wait.c", Zone: ducttape.Domestic,
			Defines: []string{"prepare_to_wait", "finish_wait", "wake_up", "wake_up_all", "schedule"},
		},
		{
			Name: "linux/kernel/fork.c", Zone: ducttape.Domestic,
			Defines:    []string{"get_current", "linux_task_struct"},
			References: []string{"kmalloc"},
		},
		{
			Name: "linux/kernel/panic.c", Zone: ducttape.Domestic,
			Defines: []string{"panic", "printk"},
		},

		// ---- Duct tape zone: the adaptation shims (internal/ducttape's
		// Env at runtime), translating XNU kernel APIs onto Linux ones.
		{
			Name: "cider/ducttape/lck_shims.c", Zone: ducttape.Tape,
			Defines:    []string{"lck_mtx_alloc_init", "lck_mtx_lock", "lck_mtx_unlock", "lck_mtx_try_lock"},
			References: []string{"mutex_lock", "mutex_unlock", "mutex_trylock"},
		},
		{
			Name: "cider/ducttape/mem_shims.c", Zone: ducttape.Tape,
			Defines:    []string{"kalloc", "kfree_xnu", "zalloc", "zinit"},
			References: []string{"kmalloc", "kfree"},
		},
		{
			Name: "cider/ducttape/sched_shims.c", Zone: ducttape.Tape,
			Defines:    []string{"assert_wait", "thread_block", "thread_wakeup", "thread_wakeup_one", "semaphore_create_shim"},
			References: []string{"prepare_to_wait", "finish_wait", "wake_up", "wake_up_all", "schedule"},
		},
		{
			Name: "cider/ducttape/task_shims.c", Zone: ducttape.Tape,
			Defines:    []string{"current_task", "task_reference", "task_deallocate"},
			References: []string{"get_current", "linux_task_struct"},
		},
		{
			Name: "cider/ducttape/queue_shims.c", Zone: ducttape.Tape,
			// XNU's recursive queuing structures are disallowed in Linux;
			// this shim provides the flat rewrite (Section 4.2).
			Defines: []string{"queue_enter", "dequeue_head", "queue_empty", "queue_remove"},
		},

		// ---- Foreign zone: unmodified XNU sources.
		{
			Name: "xnu/osfmk/ipc/ipc_port.c", Zone: ducttape.Foreign,
			Defines: []string{"ipc_port_alloc", "ipc_port_destroy", "ipc_port_make_send", "ipc_port_release_send"},
			References: []string{
				"lck_mtx_alloc_init", "lck_mtx_lock", "lck_mtx_unlock",
				"kalloc", "kfree_xnu", "queue_enter", "dequeue_head",
				"panic", // resolves to the remapped xnu_panic
			},
		},
		{
			Name: "xnu/osfmk/ipc/ipc_space.c", Zone: ducttape.Foreign,
			Defines:    []string{"ipc_space_create", "ipc_entry_lookup", "ipc_entry_alloc"},
			References: []string{"kalloc", "kfree_xnu", "lck_mtx_lock", "lck_mtx_unlock", "current_task"},
		},
		{
			Name: "xnu/osfmk/ipc/ipc_mqueue.c", Zone: ducttape.Foreign,
			Defines: []string{"ipc_mqueue_send", "ipc_mqueue_receive", "ipc_mqueue_post"},
			References: []string{
				"assert_wait", "thread_block", "thread_wakeup", "thread_wakeup_one",
				"queue_enter", "dequeue_head", "queue_empty",
			},
		},
		{
			Name: "xnu/osfmk/ipc/ipc_kmsg.c", Zone: ducttape.Foreign,
			Defines:    []string{"ipc_kmsg_alloc", "ipc_kmsg_copyin", "ipc_kmsg_copyout"},
			References: []string{"kalloc", "kfree_xnu", "ipc_entry_lookup", "ipc_port_make_send"},
		},
		{
			Name: "xnu/osfmk/ipc/mach_msg.c", Zone: ducttape.Foreign,
			Defines:    []string{"mach_msg_trap", "mach_msg_overwrite_trap"},
			References: []string{"ipc_mqueue_send", "ipc_mqueue_receive", "ipc_kmsg_copyin", "ipc_kmsg_copyout", "current_task"},
		},
		{
			// XNU's own panic/logging symbols collide with Linux's; the
			// linker auto-remaps them (panic -> xnu_panic), demonstrating
			// duct tape step 3 ("conflicts are remapped to unique
			// symbols"). Foreign references to panic keep working.
			Name: "xnu/osfmk/kern/debug.c", Zone: ducttape.Foreign,
			Defines: []string{"panic", "kprintf"},
		},
		{
			Name: "xnu/bsd/kern/pthread_support.c", Zone: ducttape.Foreign,
			Defines: []string{"psynch_mutexwait", "psynch_mutexdrop", "psynch_cvwait", "psynch_cvsignal", "psynch_cvbroad"},
			References: []string{
				"assert_wait", "thread_block", "thread_wakeup", "thread_wakeup_one",
				"kalloc", "kfree_xnu", "lck_mtx_lock", "lck_mtx_unlock", "current_task",
			},
		},
		{
			Name: "xnu/osfmk/kern/sync_sema.c", Zone: ducttape.Foreign,
			Defines:    []string{"semaphore_create", "semaphore_wait", "semaphore_signal", "semaphore_timedwait"},
			References: []string{"semaphore_create_shim", "assert_wait", "thread_block", "thread_wakeup_one", "kalloc"},
		},
	}
}
