package xnu

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/replay"
)

// Schedule-exploration stress for the Mach IPC multi-waiter paths: the
// ISSUE candidates "xnu wake order on multi-waiter ports". Wake order
// among distinct waiters is a genuinely ambiguous scheduler decision
// (sim.DecisionWake); the kernel must deliver every message and hold
// every teardown invariant under ANY legal order, not just the FIFO
// order the canonical schedule happens to take. Round 0 runs the
// canonical schedule; each later round perturbs every ambiguous
// decision with a seeded Explorer.

// exploreRounds is sized so the wake-order decision at the contended
// port is exercised with many distinct permutations while the test
// stays tier-1 cheap.
const exploreRounds = 12

// stopID marks the shutdown message each receiver exits on.
const stopID int32 = -99

// TestExploreMultiWaiterPortDelivery parks three receiver threads on
// one port while a sender pushes work messages and then one stop per
// receiver. Under every explored wake order: every message is consumed
// exactly once, every receiver terminates (no lost wakeups), and
// teardown leaks nothing.
func TestExploreMultiWaiterPortDelivery(t *testing.T) {
	const workers = 3
	const work = 12
	for round := 0; round <= exploreRounds; round++ {
		var inner *replay.Explorer
		if round > 0 {
			inner = &replay.Explorer{Seed: uint64(round)}
		}
		var rec *replay.Recorder
		if inner != nil {
			rec = replay.NewRecorder(inner)
		} else {
			rec = replay.NewRecorder(nil)
		}
		h := newHarness(t)
		h.s.SetDecider(rec)

		received := 0
		stops := 0
		h.runProcs(t, func(th *kernel.Thread) {
			port, kr := h.ipc.PortAllocate(th)
			if kr != KernSuccess {
				t.Fatalf("round %d: alloc: %v", round, kr)
			}
			for w := 0; w < workers; w++ {
				th.SpawnThread("recv", func(rt *kernel.Thread) {
					for {
						msg, kr := h.ipc.Receive(rt, port, -1)
						if kr != KernSuccess {
							t.Errorf("round %d: receive: %#x", round, kr)
							return
						}
						if msg.ID == stopID {
							stops++
							return
						}
						received++
					}
				})
			}
			for i := 0; i < work; i++ {
				if kr := h.ipc.Send(th, port, &Message{ID: int32(i)}, -1); kr != KernSuccess {
					t.Fatalf("round %d: send %d: %v", round, i, kr)
				}
			}
			for w := 0; w < workers; w++ {
				if kr := h.ipc.Send(th, port, &Message{ID: stopID}, -1); kr != KernSuccess {
					t.Fatalf("round %d: stop %d: %v", round, w, kr)
				}
			}
		})
		if received != work || stops != workers {
			t.Fatalf("round %d: received %d/%d, stops %d/%d (lost or duplicated wakeup)",
				round, received, work, stops, workers)
		}
		if err := h.k.LeakCheck(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round > 0 && len(rec.Choices()) == 0 {
			t.Fatalf("round %d: explorer took no non-canonical choices — no contention reached", round)
		}
	}
}

// TestExploreMultiSenderQueueLimit inverts the contention: the port's
// queue limit blocks three sender threads at once, a single receiver
// drains, and the wake order among blocked senders is explored. Every
// sent message must arrive exactly once regardless of which sender each
// freed queue slot goes to.
func TestExploreMultiSenderQueueLimit(t *testing.T) {
	const senders = 3
	const perSender = 8
	for round := 0; round <= exploreRounds; round++ {
		var rec *replay.Recorder
		if round > 0 {
			rec = replay.NewRecorder(&replay.Explorer{Seed: uint64(round)})
		} else {
			rec = replay.NewRecorder(nil)
		}
		h := newHarness(t)
		h.s.SetDecider(rec)

		received := 0
		h.runProcs(t, func(th *kernel.Thread) {
			port, kr := h.ipc.PortAllocate(th)
			if kr != KernSuccess {
				t.Fatalf("round %d: alloc: %v", round, kr)
			}
			for s := 0; s < senders; s++ {
				th.SpawnThread("send", func(st *kernel.Thread) {
					for i := 0; i < perSender; i++ {
						if kr := h.ipc.Send(st, port, &Message{ID: int32(i)}, -1); kr != KernSuccess {
							t.Errorf("round %d: send: %#x", round, kr)
							return
						}
					}
				})
			}
			for received < senders*perSender {
				if _, kr := h.ipc.Receive(th, port, -1); kr != KernSuccess {
					t.Fatalf("round %d: receive: %#x", round, kr)
				}
				received++
			}
		})
		if received != senders*perSender {
			t.Fatalf("round %d: received %d, want %d", round, received, senders*perSender)
		}
		if err := h.k.LeakCheck(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestExplorePortSetMultiWaiter parks two threads on a port set fed by
// two member ports; wake order within the set's shared wait queue is
// explored. All messages must be drained and the set torn down clean.
func TestExplorePortSetMultiWaiter(t *testing.T) {
	const work = 10
	for round := 0; round <= exploreRounds; round++ {
		var rec *replay.Recorder
		if round > 0 {
			rec = replay.NewRecorder(&replay.Explorer{Seed: uint64(round)})
		} else {
			rec = replay.NewRecorder(nil)
		}
		h := newHarness(t)
		h.s.SetDecider(rec)

		received := 0
		stops := 0
		h.runProcs(t, func(th *kernel.Thread) {
			set := h.ipc.PortSetAllocate(th)
			pa, _ := h.ipc.PortAllocate(th)
			pb, _ := h.ipc.PortAllocate(th)
			if kr := h.ipc.PortSetAdd(th, set, pa); kr != KernSuccess {
				t.Fatalf("round %d: set add a: %v", round, kr)
			}
			if kr := h.ipc.PortSetAdd(th, set, pb); kr != KernSuccess {
				t.Fatalf("round %d: set add b: %v", round, kr)
			}
			for w := 0; w < 2; w++ {
				th.SpawnThread("setrecv", func(rt *kernel.Thread) {
					for {
						msg, kr := h.ipc.ReceiveSet(rt, set, -1)
						if kr != KernSuccess {
							t.Errorf("round %d: set receive: %#x", round, kr)
							return
						}
						if msg.ID == stopID {
							stops++
							return
						}
						received++
					}
				})
			}
			ports := [2]PortName{pa, pb}
			for i := 0; i < work; i++ {
				if kr := h.ipc.Send(th, ports[i%2], &Message{ID: int32(i)}, -1); kr != KernSuccess {
					t.Fatalf("round %d: send %d: %v", round, i, kr)
				}
			}
			for w := 0; w < 2; w++ {
				if kr := h.ipc.Send(th, ports[w], &Message{ID: stopID}, -1); kr != KernSuccess {
					t.Fatalf("round %d: stop %d: %v", round, w, kr)
				}
			}
		})
		if received != work || stops != 2 {
			t.Fatalf("round %d: received %d/%d, stops %d/2", round, received, work, stops)
		}
		if err := h.k.LeakCheck(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
