package xnu

// Exception-port tests for the crash-containment work: a registered
// catcher can resume a faulting iOS-persona thread, and every degraded
// path — no port, dead port, a catcher that crashes before replying,
// injected interrupts mid-delivery — ends in the default disposition
// within bounded virtual time, never a deadlock.

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/persona"
)

// iosSyscalls lets iOS-persona threads in this harness dispatch through
// the Linux table directly — the ABI layer's number translation is out of
// scope here; only the persona at delivery time matters.
func iosSyscalls(h *harness) {
	h.k.SetSyscallTable(persona.IOS, h.k.InstallLinuxTable())
}

// crashSelf drives the victim thread into the kernel's fatal-signal path
// the way a wild pointer would: switch to the iOS persona and raise sig
// on itself; delivery happens on the kill syscall's return-to-user path.
func crashSelf(th *kernel.Thread, sig int) {
	th.Persona.Switch(persona.IOS)
	th.Syscall(kernel.SysKill, &kernel.SyscallArgs{
		I: [6]uint64{uint64(th.Task().PID()), uint64(sig)},
	})
}

// TestExceptionCatcherResumesThread: the task exception port receives
// exception_raise with the fault record, replies EXC_HANDLED, and the
// faulting thread resumes instead of dying.
func TestExceptionCatcherResumesThread(t *testing.T) {
	h := newHarness(t)
	iosSyscalls(h)
	var rec map[string]string
	resumed := false
	h.runProcs(t, func(th *kernel.Thread) {
		excPort, kr := h.ipc.PortAllocate(th)
		if kr != KernSuccess {
			t.Errorf("PortAllocate: %#x", kr)
			return
		}
		if kr := h.ipc.TaskSetExceptionPort(th, excPort); kr != KernSuccess {
			t.Errorf("TaskSetExceptionPort: %#x", kr)
			return
		}
		th.SpawnThread("catcher", func(ct *kernel.Thread) {
			msg, kr := h.ipc.Receive(ct, excPort, 100*time.Millisecond)
			if kr != KernSuccess || msg.ID != MsgExceptionRaise {
				t.Errorf("catcher receive: kr=%#x", kr)
				return
			}
			rec = ParseExceptionBody(msg.Body)
			h.ipc.Send(ct, msg.ReplyName,
				&Message{ID: MsgExceptionReply, Body: []byte{ExcHandled}}, -1)
		})
		crashSelf(th, kernel.SIGSEGV)
		resumed = true
	})
	if !resumed {
		t.Fatal("catcher replied EXC_HANDLED but the thread did not resume")
	}
	if rec == nil {
		t.Fatal("catcher never saw exception_raise")
	}
	if rec["signal"] != "11" || rec["exception"] != "1" /* EXC_BAD_ACCESS */ {
		t.Fatalf("exception record = %v", rec)
	}
	if err := h.k.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestExceptionNoPortDefaultDisposition: with no exception port bound,
// the fatal signal keeps its default disposition and the thread dies —
// code after the fault must be unreachable.
func TestExceptionNoPortDefaultDisposition(t *testing.T) {
	h := newHarness(t)
	iosSyscalls(h)
	survived := false
	h.runProcs(t, func(th *kernel.Thread) {
		crashSelf(th, kernel.SIGBUS)
		survived = true
	})
	if survived {
		t.Fatal("unhandled fatal fault did not terminate the thread")
	}
	if err := h.k.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestExceptionPortDestroyedMidDelivery: the catcher takes delivery of
// exception_raise, destroys the exception port and exits without ever
// replying — a catcher crash in miniature. The victim's bounded reply
// wait must expire and the default disposition run; before the timeout
// existed this wedged the victim forever (sim.ErrDeadlock out of
// runProcs).
func TestExceptionPortDestroyedMidDelivery(t *testing.T) {
	h := newHarness(t)
	iosSyscalls(h)
	survived := false
	caught := false
	h.runProcs(t, func(th *kernel.Thread) {
		excPort, kr := h.ipc.PortAllocate(th)
		if kr != KernSuccess {
			t.Errorf("PortAllocate: %#x", kr)
			return
		}
		if kr := h.ipc.TaskSetExceptionPort(th, excPort); kr != KernSuccess {
			t.Errorf("TaskSetExceptionPort: %#x", kr)
			return
		}
		th.SpawnThread("crashing-catcher", func(ct *kernel.Thread) {
			msg, kr := h.ipc.Receive(ct, excPort, 100*time.Millisecond)
			if kr != KernSuccess || msg.ID != MsgExceptionRaise {
				return
			}
			caught = true
			h.ipc.PortDestroy(ct, excPort) // catcher dies mid-handling
		})
		crashSelf(th, kernel.SIGILL)
		survived = true
	})
	if !caught {
		t.Fatal("catcher never took delivery")
	}
	if survived {
		t.Fatal("victim resumed although the catcher never replied")
	}
	if err := h.k.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestExceptionPortDeadBeforeFault: an exception port already destroyed
// when the fault arrives is skipped entirely — straight to the default
// disposition, no send attempt, no deadlock.
func TestExceptionPortDeadBeforeFault(t *testing.T) {
	h := newHarness(t)
	iosSyscalls(h)
	survived := false
	h.runProcs(t, func(th *kernel.Thread) {
		excPort, kr := h.ipc.PortAllocate(th)
		if kr != KernSuccess {
			t.Errorf("PortAllocate: %#x", kr)
			return
		}
		if kr := h.ipc.TaskSetExceptionPort(th, excPort); kr != KernSuccess {
			t.Errorf("TaskSetExceptionPort: %#x", kr)
			return
		}
		h.ipc.PortDestroy(th, excPort)
		crashSelf(th, kernel.SIGFPE)
		survived = true
	})
	if survived {
		t.Fatal("victim resumed with a dead exception port")
	}
	if err := h.k.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestExceptionDeliveryRetriesInjectedInterrupts: MACH_SEND_INTERRUPTED
// on the exception_raise send and MACH_RCV_INTERRUPTED on the verdict
// receive are both retried (bounded), so an EINTR storm during delivery
// still ends with the catcher resuming the thread.
func TestExceptionDeliveryRetriesInjectedInterrupts(t *testing.T) {
	h := newHarness(t)
	iosSyscalls(h)
	in := fault.NewInjector(fault.Plan{Name: "exc-eintr", Seed: 0xc1de4, Rules: []fault.Rule{
		{Op: fault.OpMachSend, Match: "send", Errno: 1, Count: 2},
		{Op: fault.OpMachRecv, Match: "recv", Errno: 1, Count: 1},
	}})
	h.k.EnableFaults(in)
	resumed := false
	h.runProcs(t, func(th *kernel.Thread) {
		excPort, kr := h.ipc.PortAllocate(th)
		if kr != KernSuccess {
			t.Errorf("PortAllocate: %#x", kr)
			return
		}
		if kr := h.ipc.TaskSetExceptionPort(th, excPort); kr != KernSuccess {
			t.Errorf("TaskSetExceptionPort: %#x", kr)
			return
		}
		th.SpawnThread("catcher", func(ct *kernel.Thread) {
			for {
				msg, kr := h.ipc.Receive(ct, excPort, 100*time.Millisecond)
				if kr == MachRcvInterrupted {
					continue
				}
				if kr != KernSuccess || msg.ID != MsgExceptionRaise {
					return
				}
				kr = MachSendInterrupted
				for kr == MachSendInterrupted {
					kr = h.ipc.Send(ct, msg.ReplyName,
						&Message{ID: MsgExceptionReply, Body: []byte{ExcHandled}}, -1)
				}
				return
			}
		})
		crashSelf(th, kernel.SIGSEGV)
		resumed = true
	})
	if !resumed {
		t.Fatal("injected interrupts defeated bounded retry; thread died")
	}
	if in.Fired() != 3 {
		t.Fatalf("injected %d faults, want 3 (2 send + 1 recv)", in.Fired())
	}
	if err := h.k.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
