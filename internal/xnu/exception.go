package xnu

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/trace"
)

// Mach exception classes (mach/exception_types.h). Fatal canonical signals
// on iOS-persona threads are translated into these before their Unix
// disposition runs — real iOS binaries (and ReportCrash) expect faults to
// arrive as EXC_* messages on task/host exception ports, not raw signals.
const (
	// ExcBadAccess is EXC_BAD_ACCESS (SIGSEGV / SIGBUS).
	ExcBadAccess = 1
	// ExcBadInstruction is EXC_BAD_INSTRUCTION (SIGILL).
	ExcBadInstruction = 2
	// ExcArithmetic is EXC_ARITHMETIC (SIGFPE).
	ExcArithmetic = 3
	// ExcSoftware is EXC_SOFTWARE (SIGABRT).
	ExcSoftware = 5
	// ExcCrash is EXC_CRASH, the host-level "a task is dying" exception
	// ReportCrash subscribes to.
	ExcCrash = 10
)

// Exception-message ids on the wire.
const (
	// MsgExceptionRaise is the msgh_id of an exception_raise request.
	MsgExceptionRaise int32 = 2401
	// MsgExceptionReply is the msgh_id of the catcher's verdict reply.
	MsgExceptionReply int32 = 2501
)

// Reply verdict bytes (first body byte of a MsgExceptionReply).
const (
	// ExcHandled resumes the faulting thread (KERN_SUCCESS from the
	// catcher: the fault was fixed up).
	ExcHandled byte = 0
	// ExcNotHandled lets the default disposition proceed.
	ExcNotHandled byte = 1
)

// Exception delivery bounds. All delays are virtual-clock, so they are
// deterministic; they exist to guarantee a wedged or dead catcher can
// never hang the faulting thread — delivery degrades to the default
// disposition instead.
const (
	// excSendTimeout bounds each attempt to enqueue an exception message.
	excSendTimeout = 5 * time.Millisecond
	// excReplyTimeout bounds the wait for the catcher's verdict.
	excReplyTimeout = 20 * time.Millisecond
	// excSendRetries bounds retries around injected interrupts.
	excSendRetries = 4
)

// ExceptionForSignal maps a canonical fatal signal to its EXC_* class.
func ExceptionForSignal(sig int) int {
	switch sig {
	case kernel.SIGSEGV, kernel.SIGBUS:
		return ExcBadAccess
	case kernel.SIGILL:
		return ExcBadInstruction
	case kernel.SIGFPE:
		return ExcArithmetic
	case kernel.SIGABRT:
		return ExcSoftware
	}
	return ExcSoftware
}

// TaskSetExceptionPort is task_set_exception_ports: register the receive
// right named name (in the caller's space) as the calling task's exception
// port. PortNull clears the registration.
func (ipc *IPC) TaskSetExceptionPort(t *kernel.Thread, name PortName) KernReturn {
	if name == PortNull {
		delete(ipc.taskExc, t.Task())
		return KernSuccess
	}
	r, kr := ipc.resolve(t, name)
	if kr != KernSuccess {
		return kr
	}
	if r.typ != RightReceive {
		return KernInvalidRight
	}
	ipc.taskExc[t.Task()] = r.port
	return KernSuccess
}

// HostSetExceptionPort is host_set_exception_ports for EXC_CRASH: register
// the receive right named name as the host-level crash port (what
// crashreporterd binds). PortNull clears it.
func (ipc *IPC) HostSetExceptionPort(t *kernel.Thread, name PortName) KernReturn {
	if name == PortNull {
		ipc.hostExc = nil
		return KernSuccess
	}
	r, kr := ipc.resolve(t, name)
	if kr != KernSuccess {
		return kr
	}
	if r.typ != RightReceive {
		return KernInvalidRight
	}
	ipc.hostExc = r.port
	return KernSuccess
}

// DeliverException is the kernel's exception bridge: translate a fatal
// canonical signal on an iOS-persona thread into EXC_* messages. Delivery
// is two-stage, as on XNU: the task-level port gets exception_raise and
// may resume the thread; if it does not (or there is none), the host-level
// port gets EXC_CRASH so crashreporterd can write a report, and the caller
// proceeds to the default disposition. Returns true when the thread
// resumes. Every send/receive is bounded by virtual timeouts, so a dead or
// wedged catcher degrades to the default disposition — never a deadlock.
func (ipc *IPC) DeliverException(t *kernel.Thread, sig int) bool {
	exc := ExceptionForSignal(sig)
	body := ipc.excBody(t, sig, exc)
	handled := false
	detail := "no-port"
	if p := ipc.taskExc[t.Task()]; p != nil && !p.dead {
		handled = ipc.raiseToCatcher(t, p, body)
		if handled {
			detail = "resumed"
		} else {
			detail = "fatal"
		}
	}
	if !handled {
		ipc.reportCrash(t, body)
	}
	if tr := ipc.k.Tracer(); tr != nil {
		tr.Exc(t.Proc().Name(), t.Proc().ID(), t.Persona.Current(), sig, exc, detail, t.Now())
		if handled {
			tr.Count(trace.CounterExcResumed, 1)
		}
	}
	return handled
}

// raiseToCatcher sends exception_raise to the task exception port and
// waits (bounded) for the verdict on a one-shot reply port allocated in
// the victim's space.
func (ipc *IPC) raiseToCatcher(t *kernel.Thread, p *Port, body []byte) bool {
	replyName, kr := ipc.PortAllocate(t)
	if kr != KernSuccess {
		return false
	}
	defer ipc.PortDestroy(t, replyName)
	r, kr := ipc.resolve(t, replyName)
	if kr != KernSuccess {
		return false
	}
	msg := &Message{
		ID:    MsgExceptionRaise,
		Body:  body,
		Reply: &CarriedRight{Port: r.port, Type: RightSendOnce},
	}
	kr = MachSendInterrupted
	for i := 0; i < excSendRetries && kr == MachSendInterrupted; i++ {
		kr = ipc.sendToPort(t, p, msg, excSendTimeout)
	}
	if kr != KernSuccess {
		return false
	}
	for i := 0; i < excSendRetries; i++ {
		reply, kr := ipc.Receive(t, replyName, excReplyTimeout)
		if kr == MachRcvInterrupted {
			continue
		}
		if kr != KernSuccess {
			return false // timeout or port died: catcher never answered
		}
		return reply.ID == MsgExceptionReply && len(reply.Body) > 0 && reply.Body[0] == ExcHandled
	}
	return false
}

// reportCrash posts EXC_CRASH to the host exception port. The send is
// bounded and best-effort: with crashreporterd dead or its queue wedged
// the report is dropped, never blocking the dying task.
func (ipc *IPC) reportCrash(t *kernel.Thread, body []byte) {
	p := ipc.hostExc
	if p == nil || p.dead {
		return
	}
	msg := &Message{ID: MsgExceptionRaise, Body: append([]byte("class=crash\n"), body...)}
	kr := MachSendInterrupted
	for i := 0; i < excSendRetries && kr == MachSendInterrupted; i++ {
		kr = ipc.sendToPort(t, p, msg, excSendTimeout)
	}
}

// excBody renders the deterministic key=value exception record both
// catchers and crashreporterd parse: task identity, persona, fault, the
// virtual timestamp, and an open-fd/mapping summary.
func (ipc *IPC) excBody(t *kernel.Thread, sig, exc int) []byte {
	tk := t.Task()
	var b strings.Builder
	fmt.Fprintf(&b, "pid=%d\n", tk.PID())
	fmt.Fprintf(&b, "path=%s\n", tk.Path())
	fmt.Fprintf(&b, "persona=%s\n", t.Persona.Current())
	fmt.Fprintf(&b, "signal=%d\n", sig)
	fmt.Fprintf(&b, "exception=%d\n", exc)
	fmt.Fprintf(&b, "at_ns=%d\n", int64(t.Now()))
	fmt.Fprintf(&b, "fds=%d\n", tk.FDs().Count())
	fmt.Fprintf(&b, "mappings=%d\n", len(tk.Mem().Regions()))
	return []byte(b.String())
}

// ParseExceptionBody decodes an excBody record into key/value pairs.
func ParseExceptionBody(body []byte) map[string]string {
	out := make(map[string]string)
	for _, line := range strings.Split(string(body), "\n") {
		if k, v, ok := strings.Cut(line, "="); ok {
			out[k] = v
		}
	}
	return out
}
