package xnu

import (
	"time"

	"repro/internal/ducttape"
	"repro/internal/kernel"
)

// Psynch is the kernel half of iOS pthread support: XNU's psynch facility
// from bsd/kern/pthread_support.c, which the iOS user-space pthread library
// depends on for mutexes, semaphores and condition variables — "none of
// which are present in the Linux kernel" (Section 4.2). Cider duct-tapes
// this file in unmodified; this is its simulated equivalent, written only
// against the duct tape adaptation surface.
//
// User space identifies each synchronization object by the address of its
// user-level structure; the kernel keys its wait state by that address,
// exactly as psynch keys on uaddr.
type Psynch struct {
	env *ducttape.Env
	// events parks threads per user address.
	events *ducttape.WaitEvent
	// mutexOwned tracks which user mutexes are held (kernel-side kwq state).
	mutexOwned map[uint64]bool
	// cvWaiters counts waiters per condvar for broadcast bookkeeping.
	cvWaiters map[uint64]int
	// sems holds kernel semaphore state per user address.
	sems map[uint64]*ducttape.Semaphore

	opCost time.Duration
}

// PsynchExtension keys the Psynch instance in the kernel extension table.
const PsynchExtension = "psynch"

// InstallPsynch duct-tapes pthread kernel support into the kernel.
func InstallPsynch(k *kernel.Kernel, env *ducttape.Env) (*Psynch, error) {
	if _, err := ducttape.Link(AllUnits()); err != nil {
		return nil, err
	}
	ps := &Psynch{
		env:        env,
		events:     env.NewWaitEvent(),
		mutexOwned: make(map[uint64]bool),
		cvWaiters:  make(map[uint64]int),
		sems:       make(map[uint64]*ducttape.Semaphore),
		opCost:     k.Device().CPU.Cycles(1100),
	}
	k.SetExtension(PsynchExtension, ps)
	return ps, nil
}

// PsynchFromKernel fetches the installed psynch subsystem.
func PsynchFromKernel(k *kernel.Kernel) (*Psynch, bool) {
	v, ok := k.Extension(PsynchExtension)
	if !ok {
		return nil, false
	}
	ps, ok := v.(*Psynch)
	return ps, ok
}

// MutexWait is psynch_mutexwait: block until the user mutex at uaddr is
// released, then acquire its kernel-side ownership.
func (ps *Psynch) MutexWait(t *kernel.Thread, uaddr uint64) KernReturn {
	t.Charge(ps.opCost)
	for ps.mutexOwned[uaddr] {
		if !ps.events.Block(t, mutexKey(uaddr)) {
			return MachRcvInterrupted
		}
	}
	ps.mutexOwned[uaddr] = true
	return KernSuccess
}

// MutexDrop is psynch_mutexdrop: release the user mutex and wake a waiter.
func (ps *Psynch) MutexDrop(t *kernel.Thread, uaddr uint64) KernReturn {
	t.Charge(ps.opCost)
	if !ps.mutexOwned[uaddr] {
		return KernInvalidRight
	}
	delete(ps.mutexOwned, uaddr)
	ps.events.WakeupOne(t, mutexKey(uaddr))
	return KernSuccess
}

// CVWait is psynch_cvwait: atomically drop the mutex at muaddr and block on
// the condvar at cvaddr; reacquire the mutex before returning. A zero
// timeout blocks forever. Reports whether the wait timed out.
func (ps *Psynch) CVWait(t *kernel.Thread, cvaddr, muaddr uint64, timeout time.Duration) (timedOut bool, kr KernReturn) {
	t.Charge(ps.opCost)
	if kr := ps.MutexDrop(t, muaddr); kr != KernSuccess {
		return false, kr
	}
	ps.cvWaiters[cvaddr]++
	if timeout > 0 {
		_, timedOut = ps.events.BlockTimeout(t, cvKey(cvaddr), timeout)
	} else {
		ps.events.Block(t, cvKey(cvaddr))
	}
	ps.cvWaiters[cvaddr]--
	if kr := ps.MutexWait(t, muaddr); kr != KernSuccess {
		return timedOut, kr
	}
	return timedOut, KernSuccess
}

// CVSignal is psynch_cvsignal: wake one condvar waiter.
func (ps *Psynch) CVSignal(t *kernel.Thread, cvaddr uint64) KernReturn {
	t.Charge(ps.opCost)
	ps.events.WakeupOne(t, cvKey(cvaddr))
	return KernSuccess
}

// CVBroadcast is psynch_cvbroad: wake every condvar waiter.
func (ps *Psynch) CVBroadcast(t *kernel.Thread, cvaddr uint64) int {
	t.Charge(ps.opCost)
	return ps.events.Wakeup(t, cvKey(cvaddr))
}

// CVWaiters reports current waiters on a condvar (tests).
func (ps *Psynch) CVWaiters(cvaddr uint64) int { return ps.cvWaiters[cvaddr] }

// SemInit provisions a semaphore at uaddr (semaphore_create).
func (ps *Psynch) SemInit(t *kernel.Thread, uaddr uint64, value int) {
	t.Charge(ps.opCost)
	ps.sems[uaddr] = ps.env.NewSemaphore("psem", value)
}

// SemWait is semaphore_wait on the semaphore at uaddr.
func (ps *Psynch) SemWait(t *kernel.Thread, uaddr uint64) KernReturn {
	t.Charge(ps.opCost)
	s, ok := ps.sems[uaddr]
	if !ok {
		return KernInvalidName
	}
	if !s.Wait(t) {
		return MachRcvInterrupted
	}
	return KernSuccess
}

// SemSignal is semaphore_signal on the semaphore at uaddr.
func (ps *Psynch) SemSignal(t *kernel.Thread, uaddr uint64) KernReturn {
	t.Charge(ps.opCost)
	s, ok := ps.sems[uaddr]
	if !ok {
		return KernInvalidName
	}
	s.Signal(t)
	return KernSuccess
}

// mutexKey and cvKey namespace the shared event table.
type eventKey struct {
	kind  byte
	uaddr uint64
}

func mutexKey(uaddr uint64) eventKey { return eventKey{'m', uaddr} }
func cvKey(uaddr uint64) eventKey    { return eventKey{'c', uaddr} }
