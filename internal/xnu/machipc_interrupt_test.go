package xnu

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/kernel"
)

// Regression tests for a wakeup bug found by ciderlint's waketag analyzer:
// Send discarded the wake tag while blocked at the queue limit, so a
// software interrupt was silently swallowed — the sender just went back
// to sleep. mach_msg must instead return MACH_SEND_INTERRUPTED, like the
// receive half always did.
//
// The interrupts are delivered by the fault layer (OpPark rules matched
// against the sender's own park reason) rather than by a dedicated killer
// process: the injector fires deterministically on exactly the wait under
// test, with no cross-process handshake.

// A sender blocked indefinitely at the queue limit parks on
// waitq:mach_snd; an interrupt there must surface MACH_SEND_INTERRUPTED.
func TestSendInterruptedWhileBlocked(t *testing.T) {
	h := newHarness(t)
	in := fault.NewInjector(fault.Plan{Name: "snd-eintr", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpPark, Match: "waitq:mach_snd", Nth: 1},
	}})
	h.k.EnableFaults(in)
	var kr KernReturn
	h.runProcs(t, func(th *kernel.Thread) {
		port, _ := h.ipc.PortAllocate(th)
		for i := 0; i < defaultQLimit; i++ {
			if kr := h.ipc.Send(th, port, &Message{ID: int32(i)}, 0); kr != KernSuccess {
				t.Errorf("fill %d: %v", i, kr)
			}
		}
		// Queue full, no receiver: blocks until the interrupt lands.
		kr = h.ipc.Send(th, port, &Message{}, -1)
	})
	if kr != MachSendInterrupted {
		t.Fatalf("kr = %#x, want MACH_SEND_INTERRUPTED (%#x)", kr, MachSendInterrupted)
	}
	if in.Fired() != 1 {
		t.Fatalf("injector fired %d times, want 1", in.Fired())
	}
}

// The same interrupt against a sender blocked with a finite timeout must
// also surface MACH_SEND_INTERRUPTED (not run the timeout down and report
// MACH_SEND_TIMED_OUT). A timed wait parks under the "sleep" reason.
func TestSendTimeoutInterrupted(t *testing.T) {
	h := newHarness(t)
	h.k.EnableFaults(fault.NewInjector(fault.Plan{Name: "snd-timeo-eintr", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpPark, Match: "sleep", Nth: 1},
	}}))
	var kr KernReturn
	var at time.Duration
	h.runProcs(t, func(th *kernel.Thread) {
		port, _ := h.ipc.PortAllocate(th)
		for i := 0; i < defaultQLimit; i++ {
			if kr := h.ipc.Send(th, port, &Message{ID: int32(i)}, 0); kr != KernSuccess {
				t.Errorf("fill %d: %v", i, kr)
			}
		}
		kr = h.ipc.Send(th, port, &Message{}, time.Second)
		at = th.Now()
	})
	if kr != MachSendInterrupted {
		t.Fatalf("kr = %#x, want MACH_SEND_INTERRUPTED (%#x)", kr, MachSendInterrupted)
	}
	if at >= time.Second {
		t.Fatalf("interrupted send returned at %v, after the full timeout", at)
	}
}

// OpMachSend/OpMachRecv rules with a nonzero Errno abort mach_msg at
// entry — before any queue-state check — modelling a pending signal
// observed on the way into the trap. Neither side may lose or duplicate a
// message: the interrupted send must not have enqueued, the interrupted
// receive must not have dequeued.
func TestMachEntryInterrupts(t *testing.T) {
	h := newHarness(t)
	h.k.EnableFaults(fault.NewInjector(fault.Plan{Name: "mach-entry", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpMachSend, Match: "send", Errno: 1, Nth: 2},
		{Op: fault.OpMachRecv, Match: "recv", Errno: 1, Nth: 2},
	}}))
	h.runProcs(t, func(th *kernel.Thread) {
		port, _ := h.ipc.PortAllocate(th)
		if kr := h.ipc.Send(th, port, &Message{ID: 7}, 0); kr != KernSuccess {
			t.Errorf("send 1: %v", kr)
		}
		// Second send hits the entry interrupt: nothing enqueued.
		if kr := h.ipc.Send(th, port, &Message{ID: 8}, 0); kr != MachSendInterrupted {
			t.Errorf("send 2: kr = %#x, want MACH_SEND_INTERRUPTED (%#x)", kr, MachSendInterrupted)
		}
		msg, kr := h.ipc.Receive(th, port, 0)
		if kr != KernSuccess || msg.ID != 7 {
			t.Errorf("receive 1: kr=%v msg=%+v, want the first message", kr, msg)
		}
		// Second receive hits the entry interrupt; the queue is empty, but
		// the interrupt must win over MACH_RCV_TIMED_OUT.
		if _, kr := h.ipc.Receive(th, port, 0); kr != MachRcvInterrupted {
			t.Errorf("receive 2: kr = %#x, want MACH_RCV_INTERRUPTED (%#x)", kr, MachRcvInterrupted)
		}
		// After the one-shot rules are spent, the port still works.
		if kr := h.ipc.Send(th, port, &Message{ID: 9}, 0); kr != KernSuccess {
			t.Errorf("send 3: %v", kr)
		}
		if msg, kr := h.ipc.Receive(th, port, 0); kr != KernSuccess || msg.ID != 9 {
			t.Errorf("receive 3: kr=%v msg=%+v", kr, msg)
		}
	})
}

// An OpMachSend QLimit override shrinks the effective queue limit for
// that one call: a polling send (timeout 0) against a queue holding one
// message must report MACH_SEND_TIMED_OUT when the limit is forced to 1,
// even though the real limit has plenty of room.
func TestMachSendQueueLimitOverride(t *testing.T) {
	h := newHarness(t)
	h.k.EnableFaults(fault.NewInjector(fault.Plan{Name: "mach-qlimit", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpMachSend, Match: "send", QLimit: 1, Nth: 2},
	}}))
	h.runProcs(t, func(th *kernel.Thread) {
		port, _ := h.ipc.PortAllocate(th)
		if kr := h.ipc.Send(th, port, &Message{ID: 1}, 0); kr != KernSuccess {
			t.Errorf("send 1: %v", kr)
		}
		if kr := h.ipc.Send(th, port, &Message{ID: 2}, 0); kr != MachSendTimedOut {
			t.Errorf("send 2: kr = %#x, want MACH_SEND_TIMED_OUT (%#x) under QLimit=1", kr, MachSendTimedOut)
		}
		// Without the override the queue has room again.
		if kr := h.ipc.Send(th, port, &Message{ID: 3}, 0); kr != KernSuccess {
			t.Errorf("send 3: %v", kr)
		}
		for i := 0; i < 2; i++ {
			if _, kr := h.ipc.Receive(th, port, 0); kr != KernSuccess {
				t.Errorf("drain %d: %v", i, kr)
			}
		}
	})
}
