package xnu

import (
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Regression test for a wakeup bug found by ciderlint's waketag analyzer:
// Send discarded the wake tag while blocked at the queue limit, so a
// software interrupt (signal delivery wakes the proc with
// sim.WakeInterrupted, as kill(2) does) was silently swallowed — the
// sender just went back to sleep. mach_msg must instead return
// MACH_SEND_INTERRUPTED, like the receive half always did.
func TestSendInterruptedBySignal(t *testing.T) {
	h := newHarness(t)
	var kr KernReturn
	var sender *sim.Proc
	started := sim.NewWaitQueue("sender-up")
	up := false
	h.runProcs(t,
		func(th *kernel.Thread) {
			sender = th.Proc()
			port, _ := h.ipc.PortAllocate(th)
			for i := 0; i < defaultQLimit; i++ {
				if kr := h.ipc.Send(th, port, &Message{ID: int32(i)}, 0); kr != KernSuccess {
					t.Errorf("fill %d: %v", i, kr)
				}
			}
			up = true
			started.WakeAll(th.Proc(), sim.WakeNormal)
			// Queue full, no receiver: blocks until the interrupt lands.
			kr = h.ipc.Send(th, port, &Message{}, -1)
		},
		func(th *kernel.Thread) {
			for !up {
				started.Wait(th.Proc())
			}
			th.Charge(time.Millisecond)
			th.Proc().Wake(sender, sim.WakeInterrupted)
		},
	)
	if kr != MachSendInterrupted {
		t.Fatalf("kr = %#x, want MACH_SEND_INTERRUPTED (%#x)", kr, MachSendInterrupted)
	}
}

// The same interrupt against a sender blocked with a finite timeout must
// also surface MACH_SEND_INTERRUPTED (not run the timeout down and report
// MACH_SEND_TIMED_OUT).
func TestSendTimeoutInterruptedBySignal(t *testing.T) {
	h := newHarness(t)
	var kr KernReturn
	var at time.Duration
	var sender *sim.Proc
	started := sim.NewWaitQueue("sender-up")
	up := false
	h.runProcs(t,
		func(th *kernel.Thread) {
			sender = th.Proc()
			port, _ := h.ipc.PortAllocate(th)
			for i := 0; i < defaultQLimit; i++ {
				if kr := h.ipc.Send(th, port, &Message{ID: int32(i)}, 0); kr != KernSuccess {
					t.Errorf("fill %d: %v", i, kr)
				}
			}
			up = true
			started.WakeAll(th.Proc(), sim.WakeNormal)
			kr = h.ipc.Send(th, port, &Message{}, time.Second)
			at = th.Now()
		},
		func(th *kernel.Thread) {
			for !up {
				started.Wait(th.Proc())
			}
			th.Charge(time.Millisecond)
			th.Proc().Wake(sender, sim.WakeInterrupted)
		},
	)
	if kr != MachSendInterrupted {
		t.Fatalf("kr = %#x, want MACH_SEND_INTERRUPTED (%#x)", kr, MachSendInterrupted)
	}
	if at >= time.Second {
		t.Fatalf("interrupted send returned at %v, after the full timeout", at)
	}
}
