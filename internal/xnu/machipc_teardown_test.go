package xnu

import (
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Regression test for the task-exit reaping path: when a task exits
// without destroying its receive rights, taskExit must tear the ports
// down — failing (not stranding) peers blocked on them — and drop the
// task's IPC space so nothing leaks.
//
// Before the burn-down, an exiting task left its space in ipc.spaces and
// its ports alive: a sender blocked at the queue limit parked forever
// (sim.ErrDeadlock) and LeakCheck had nothing to catch it with.
func TestTaskExitWakesBlockedSender(t *testing.T) {
	h := newHarness(t)
	var kr KernReturn
	up := false
	started := sim.NewWaitQueue("server-up")
	h.runProcs(t,
		func(th *kernel.Thread) {
			name, _ := h.ipc.PortAllocate(th)
			cr, krr := h.ipc.MakeSendRight(th, name)
			if krr != KernSuccess {
				t.Errorf("MakeSendRight: %v", krr)
				return
			}
			h.ipc.SetBootstrapPort(cr.Port)
			up = true
			started.WakeAll(th.Proc(), sim.WakeNormal)
			// Let the client fill the queue and block, then exit without
			// destroying the port: taskExit must clean up.
			th.Proc().Sleep(time.Millisecond)
		},
		func(th *kernel.Thread) {
			for !up {
				if started.Wait(th.Proc()) == sim.WakeInterrupted {
					continue // the loop condition is the real gate
				}
			}
			for i := 0; i < defaultQLimit; i++ {
				if kr := h.ipc.Send(th, BootstrapName, &Message{ID: int32(i)}, 0); kr != KernSuccess {
					t.Errorf("fill %d: %v", i, kr)
				}
			}
			// Queue full: blocks until the server task's exit kills the port.
			kr = h.ipc.Send(th, BootstrapName, &Message{}, -1)
		},
	)
	if kr != MachSendInvalidDest {
		t.Fatalf("kr = %#x, want MACH_SEND_INVALID_DEST (%#x) after peer exit", kr, MachSendInvalidDest)
	}
	if n := len(h.ipc.spaces); n != 0 {
		t.Fatalf("%d IPC spaces survive task exit, want 0", n)
	}
	if err := h.k.LeakCheck(); err != nil {
		t.Fatalf("leak after task exit: %v", err)
	}
}
