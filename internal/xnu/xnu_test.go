package xnu

import (
	"testing"
	"time"

	"repro/internal/ducttape"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/vfs"
)

type harness struct {
	s   *sim.Sim
	k   *kernel.Kernel
	ipc *IPC
	ps  *Psynch
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	s := sim.New()
	k, err := kernel.New(s, kernel.Config{
		Profile: kernel.ProfileCider, Device: hw.Nexus7(),
		Root: vfs.New(), Registry: prog.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})
	env := ducttape.NewEnv(k)
	ipc, err := InstallIPC(k, env)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := InstallPsynch(k, env)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{s: s, k: k, ipc: ipc, ps: ps}
}

// runProcs starts one process per body and runs the simulation.
func (h *harness) runProcs(t *testing.T, bodies ...func(*kernel.Thread)) {
	t.Helper()
	fs := h.k.Root().(*vfs.FS)
	for i, body := range bodies {
		key := "xnu-proc-" + string(rune('a'+i))
		b := body
		h.k.Registry().MustRegister(key, func(c *prog.Call) uint64 {
			b(c.Ctx.(*kernel.Thread))
			return 0
		})
		bin, err := prog.StaticELF(key)
		if err != nil {
			t.Fatal(err)
		}
		path := "/bin/" + key
		if err := fs.WriteFile(path, bin); err != nil {
			t.Fatal(err)
		}
		if _, err := h.k.StartProcess(path, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnitsLinkCleanly(t *testing.T) {
	img, err := ducttape.Link(AllUnits())
	if err != nil {
		t.Fatal(err)
	}
	// The deliberate panic conflict must be remapped.
	found := false
	for _, r := range img.Remaps() {
		if r.Symbol == "panic" && r.NewName == "xnu_panic" {
			found = true
		}
	}
	if !found {
		t.Fatalf("panic remap missing: %+v", img.Remaps())
	}
	// No unresolved work (everything the foreign zone needs is shimmed).
	if len(img.Unresolved()) != 0 {
		t.Fatalf("unresolved: %v", img.Unresolved())
	}
}

func TestExtensionRegistration(t *testing.T) {
	h := newHarness(t)
	ipc, ok := FromKernel(h.k)
	if !ok || ipc != h.ipc {
		t.Fatal("IPC extension not registered")
	}
	ps, ok := PsynchFromKernel(h.k)
	if !ok || ps != h.ps {
		t.Fatal("psynch extension not registered")
	}
}

func TestPortAllocateSendReceive(t *testing.T) {
	h := newHarness(t)
	var got string
	var replyGot string
	h.runProcs(t, func(th *kernel.Thread) {
		ipc := h.ipc
		port, kr := ipc.PortAllocate(th)
		if kr != KernSuccess {
			t.Errorf("alloc: %v", kr)
			return
		}
		reply, kr := ipc.PortAllocate(th)
		if kr != KernSuccess {
			t.Errorf("alloc reply: %v", kr)
			return
		}
		cr, _ := ipc.MakeSendRight(th, reply)
		// Send to self (same space) with a reply right.
		kr = ipc.Send(th, port, &Message{ID: 100, Body: []byte("hello mach"), Reply: cr}, -1)
		if kr != KernSuccess {
			t.Errorf("send: %v", kr)
		}
		msg, kr := ipc.Receive(th, port, -1)
		if kr != KernSuccess {
			t.Errorf("recv: %v", kr)
			return
		}
		got = string(msg.Body)
		// Reply through the carried right.
		kr = ipc.Send(th, msg.ReplyName, &Message{ID: 101, Body: []byte("roger")}, -1)
		if kr != KernSuccess {
			t.Errorf("reply send: %v", kr)
		}
		rm, kr := ipc.Receive(th, reply, -1)
		if kr != KernSuccess {
			t.Errorf("reply recv: %v", kr)
			return
		}
		replyGot = string(rm.Body)
	})
	if got != "hello mach" || replyGot != "roger" {
		t.Fatalf("got %q / %q", got, replyGot)
	}
}

func TestCrossTaskMessaging(t *testing.T) {
	h := newHarness(t)
	// Server allocates a port and publishes it as the bootstrap port;
	// client sends through its bootstrap name.
	var received string
	ready := sim.NewWaitQueue("ready")
	serverUp := false
	h.runProcs(t,
		func(th *kernel.Thread) { // server
			port, _ := h.ipc.PortAllocate(th)
			r, _ := h.ipc.resolve(th, port)
			h.ipc.SetBootstrapPort(r.port)
			serverUp = true
			ready.WakeAll(th.Proc(), sim.WakeNormal)
			msg, kr := h.ipc.Receive(th, port, -1)
			if kr != KernSuccess {
				t.Errorf("server recv: %v", kr)
				return
			}
			received = string(msg.Body)
		},
		func(th *kernel.Thread) { // client
			for !serverUp {
				ready.Wait(th.Proc())
			}
			kr := h.ipc.Send(th, BootstrapName, &Message{ID: 7, Body: []byte("ping across tasks")}, -1)
			if kr != KernSuccess {
				t.Errorf("client send: %v", kr)
			}
		},
	)
	if received != "ping across tasks" {
		t.Fatalf("received %q", received)
	}
}

func TestReceiveBlocksUntilSend(t *testing.T) {
	h := newHarness(t)
	var recvAt time.Duration
	var port PortName
	allocated := sim.NewWaitQueue("alloc")
	ok := false
	h.runProcs(t,
		func(th *kernel.Thread) {
			port, _ = h.ipc.PortAllocate(th)
			r, _ := h.ipc.resolve(th, port)
			h.ipc.SetBootstrapPort(r.port)
			ok = true
			allocated.WakeAll(th.Proc(), sim.WakeNormal)
			h.ipc.Receive(th, port, -1)
			recvAt = th.Now()
		},
		func(th *kernel.Thread) {
			for !ok {
				allocated.Wait(th.Proc())
			}
			th.Charge(4 * time.Millisecond)
			h.ipc.Send(th, BootstrapName, &Message{Body: []byte("x")}, -1)
		},
	)
	if recvAt < 4*time.Millisecond {
		t.Fatalf("receive returned at %v, before send", recvAt)
	}
}

func TestReceiveTimeout(t *testing.T) {
	h := newHarness(t)
	var kr KernReturn
	h.runProcs(t, func(th *kernel.Thread) {
		port, _ := h.ipc.PortAllocate(th)
		_, kr = h.ipc.Receive(th, port, 2*time.Millisecond)
	})
	if kr != MachRcvTimedOut {
		t.Fatalf("kr = %#x, want MACH_RCV_TIMED_OUT", kr)
	}
}

func TestSendToInvalidName(t *testing.T) {
	h := newHarness(t)
	var kr KernReturn
	h.runProcs(t, func(th *kernel.Thread) {
		kr = h.ipc.Send(th, 0xdead, &Message{}, -1)
	})
	if kr != MachSendInvalidDest {
		t.Fatalf("kr = %#x, want MACH_SEND_INVALID_DEST", kr)
	}
}

func TestQueueLimitBlocksSender(t *testing.T) {
	h := newHarness(t)
	var timedOut KernReturn
	h.runProcs(t, func(th *kernel.Thread) {
		port, _ := h.ipc.PortAllocate(th)
		for i := 0; i < defaultQLimit; i++ {
			if kr := h.ipc.Send(th, port, &Message{ID: int32(i)}, 0); kr != KernSuccess {
				t.Errorf("send %d: %v", i, kr)
			}
		}
		// Queue full: zero-timeout send must time out.
		timedOut = h.ipc.Send(th, port, &Message{}, 0)
	})
	if timedOut != MachSendTimedOut {
		t.Fatalf("kr = %#x, want MACH_SEND_TIMED_OUT", timedOut)
	}
}

func TestPortDestroyWakesBlockedReceiver(t *testing.T) {
	h := newHarness(t)
	var kr KernReturn
	var port PortName
	started := sim.NewWaitQueue("started")
	up := false
	h.runProcs(t,
		func(th *kernel.Thread) {
			port, _ = h.ipc.PortAllocate(th)
			r, _ := h.ipc.resolve(th, port)
			h.ipc.SetBootstrapPort(r.port)
			up = true
			started.WakeAll(th.Proc(), sim.WakeNormal)
			_, kr = h.ipc.Receive(th, port, -1)
		},
		func(th *kernel.Thread) {
			for !up {
				started.Wait(th.Proc())
			}
			th.Charge(time.Millisecond)
			// Destroy via the receiver's own space is not reachable from
			// here; mark the port dead directly through the bootstrap
			// right's port (same kernel object).
			r, _ := h.ipc.resolve(th, BootstrapName)
			r.port.dead = true
			r.port.recvWait.WakeAll(th.Proc(), sim.WakeNormal)
		},
	)
	if kr != MachRcvPortDied {
		t.Fatalf("kr = %#x, want MACH_RCV_PORT_DIED", kr)
	}
}

func TestOOLMemoryZeroCopy(t *testing.T) {
	h := newHarness(t)
	var seen []byte
	got := sim.NewWaitQueue("got")
	up := false
	h.runProcs(t,
		func(th *kernel.Thread) { // receiver: maps the OOL pages
			port, _ := h.ipc.PortAllocate(th)
			r, _ := h.ipc.resolve(th, port)
			h.ipc.SetBootstrapPort(r.port)
			up = true
			got.WakeAll(th.Proc(), sim.WakeNormal)
			msg, kr := h.ipc.Receive(th, port, -1)
			if kr != KernSuccess {
				t.Errorf("recv: %v", kr)
				return
			}
			base, kr := h.ipc.MapOOL(th, msg.OOL[0], "ool")
			if kr != KernSuccess {
				t.Errorf("map: %v", kr)
				return
			}
			buf := make([]byte, 9)
			th.Task().Mem().ReadAt(base, buf)
			seen = buf
		},
		func(th *kernel.Thread) { // sender: shares a backing
			for !up {
				got.Wait(th.Proc())
			}
			backing := mem.NewBacking(mem.PageSize)
			copy(backing.Bytes(), "zero-copy")
			h.ipc.Send(th, BootstrapName, &Message{OOL: []*mem.Backing{backing}}, -1)
		},
	)
	if string(seen) != "zero-copy" {
		t.Fatalf("seen %q", seen)
	}
}

func TestPortSetReceivesFromAnyMember(t *testing.T) {
	h := newHarness(t)
	var ids []int32
	h.runProcs(t, func(th *kernel.Thread) {
		p1, _ := h.ipc.PortAllocate(th)
		p2, _ := h.ipc.PortAllocate(th)
		set := h.ipc.PortSetAllocate(th)
		if kr := h.ipc.PortSetAdd(th, set, p1); kr != KernSuccess {
			t.Errorf("add p1: %v", kr)
		}
		if kr := h.ipc.PortSetAdd(th, set, p2); kr != KernSuccess {
			t.Errorf("add p2: %v", kr)
		}
		h.ipc.Send(th, p2, &Message{ID: 22}, -1)
		h.ipc.Send(th, p1, &Message{ID: 11}, -1)
		for i := 0; i < 2; i++ {
			msg, kr := h.ipc.ReceiveSet(th, set, -1)
			if kr != KernSuccess {
				t.Errorf("recv set: %v", kr)
				return
			}
			ids = append(ids, msg.ID)
		}
		if _, kr := h.ipc.ReceiveSet(th, set, 0); kr != MachRcvTimedOut {
			t.Errorf("empty set poll: %v", kr)
		}
	})
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestSendRightCoalescing(t *testing.T) {
	h := newHarness(t)
	h.runProcs(t, func(th *kernel.Thread) {
		port, _ := h.ipc.PortAllocate(th)
		s1, kr := h.ipc.InsertSendRight(th, port)
		if kr != KernSuccess {
			t.Errorf("insert: %v", kr)
		}
		s2, _ := h.ipc.InsertSendRight(th, port)
		if s1 != s2 {
			t.Errorf("send rights not coalesced: %v vs %v", s1, s2)
		}
		// Two refs: two deallocates needed.
		if kr := h.ipc.PortDeallocate(th, s1); kr != KernSuccess {
			t.Errorf("dealloc 1: %v", kr)
		}
		if kr := h.ipc.PortDeallocate(th, s1); kr != KernSuccess {
			t.Errorf("dealloc 2: %v", kr)
		}
		if kr := h.ipc.PortDeallocate(th, s1); kr != KernInvalidName {
			t.Errorf("dealloc 3 = %v, want KERN_INVALID_NAME", kr)
		}
	})
}

func TestPsynchMutex(t *testing.T) {
	h := newHarness(t)
	const uaddr = 0x1000
	inside, maxInside := 0, 0
	body := func(th *kernel.Thread) {
		for i := 0; i < 5; i++ {
			if kr := h.ps.MutexWait(th, uaddr); kr != KernSuccess {
				t.Errorf("mutexwait: %v", kr)
			}
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			th.Charge(time.Microsecond)
			inside--
			h.ps.MutexDrop(th, uaddr)
		}
	}
	h.runProcs(t, body, body)
	if maxInside != 1 {
		t.Fatalf("maxInside = %d", maxInside)
	}
}

func TestPsynchMutexDropWithoutHold(t *testing.T) {
	h := newHarness(t)
	var kr KernReturn
	h.runProcs(t, func(th *kernel.Thread) {
		kr = h.ps.MutexDrop(th, 0x2000)
	})
	if kr != KernInvalidRight {
		t.Fatalf("kr = %v, want KERN_INVALID_RIGHT", kr)
	}
}

func TestPsynchCondvarSignal(t *testing.T) {
	h := newHarness(t)
	const mu, cv = 0x10, 0x20
	sequence := []string{}
	h.runProcs(t,
		func(th *kernel.Thread) { // waiter
			h.ps.MutexWait(th, mu)
			sequence = append(sequence, "wait")
			timedOut, kr := h.ps.CVWait(th, cv, mu, 0)
			if kr != KernSuccess || timedOut {
				t.Errorf("cvwait: %v timedOut=%v", kr, timedOut)
			}
			sequence = append(sequence, "woken")
			h.ps.MutexDrop(th, mu)
		},
		func(th *kernel.Thread) { // signaler
			th.Charge(2 * time.Millisecond)
			h.ps.MutexWait(th, mu)
			sequence = append(sequence, "signal")
			h.ps.CVSignal(th, cv)
			h.ps.MutexDrop(th, mu)
		},
	)
	want := []string{"wait", "signal", "woken"}
	if len(sequence) != 3 || sequence[0] != want[0] || sequence[1] != want[1] || sequence[2] != want[2] {
		t.Fatalf("sequence = %v, want %v", sequence, want)
	}
}

func TestPsynchCondvarTimeout(t *testing.T) {
	h := newHarness(t)
	var timedOut bool
	h.runProcs(t, func(th *kernel.Thread) {
		h.ps.MutexWait(th, 1)
		timedOut, _ = h.ps.CVWait(th, 2, 1, 3*time.Millisecond)
		h.ps.MutexDrop(th, 1)
	})
	if !timedOut {
		t.Fatal("expected cv timeout")
	}
}

func TestPsynchCondvarBroadcast(t *testing.T) {
	h := newHarness(t)
	const mu, cv = 0x30, 0x40
	woken := 0
	waiter := func(th *kernel.Thread) {
		h.ps.MutexWait(th, mu)
		h.ps.CVWait(th, cv, mu, 0)
		woken++
		h.ps.MutexDrop(th, mu)
	}
	h.runProcs(t, waiter, waiter, waiter,
		func(th *kernel.Thread) {
			th.Charge(2 * time.Millisecond)
			if n := h.ps.CVBroadcast(th, cv); n != 3 {
				t.Errorf("broadcast woke %d, want 3", n)
			}
		},
	)
	if woken != 3 {
		t.Fatalf("woken = %d", woken)
	}
}

func TestPsynchSemaphores(t *testing.T) {
	h := newHarness(t)
	var order []string
	h.runProcs(t,
		func(th *kernel.Thread) {
			h.ps.SemInit(th, 0x99, 0)
			if kr := h.ps.SemWait(th, 0x99); kr != KernSuccess {
				t.Errorf("semwait: %v", kr)
			}
			order = append(order, "acquired")
		},
		func(th *kernel.Thread) {
			th.Charge(time.Millisecond)
			order = append(order, "signaling")
			if kr := h.ps.SemSignal(th, 0x99); kr != KernSuccess {
				t.Errorf("semsignal: %v", kr)
			}
		},
	)
	if len(order) != 2 || order[0] != "signaling" || order[1] != "acquired" {
		t.Fatalf("order = %v", order)
	}
	h2 := newHarness(t)
	var kr KernReturn
	h2.runProcs(t, func(th *kernel.Thread) {
		kr = h2.ps.SemWait(th, 0xABC)
	})
	if kr != KernInvalidName {
		t.Fatalf("wait on missing sem = %v", kr)
	}
}

func TestIPCStats(t *testing.T) {
	h := newHarness(t)
	h.runProcs(t, func(th *kernel.Thread) {
		port, _ := h.ipc.PortAllocate(th)
		h.ipc.Send(th, port, &Message{Body: []byte("x")}, -1)
		h.ipc.Receive(th, port, -1)
	})
	sent, recvd := h.ipc.Stats()
	if sent != 1 || recvd != 1 {
		t.Fatalf("stats = %d/%d", sent, recvd)
	}
}

func TestDeadNameNotification(t *testing.T) {
	h := newHarness(t)
	var got *Message
	h.runProcs(t, func(th *kernel.Thread) {
		watched, _ := h.ipc.PortAllocate(th)
		notify, _ := h.ipc.PortAllocate(th)
		if kr := h.ipc.RequestDeadNameNotification(th, watched, notify); kr != KernSuccess {
			t.Errorf("request: %v", kr)
			return
		}
		if kr := h.ipc.PortDestroy(th, watched); kr != KernSuccess {
			t.Errorf("destroy: %v", kr)
			return
		}
		msg, kr := h.ipc.Receive(th, notify, 0)
		if kr != KernSuccess {
			t.Errorf("no notification: %v", kr)
			return
		}
		got = msg
	})
	if got == nil || got.ID != MsgDeadNameNotification {
		t.Fatalf("msg = %+v, want dead-name notification", got)
	}
}

func TestDeadNameNotificationRequiresReceiveRight(t *testing.T) {
	h := newHarness(t)
	var kr KernReturn
	h.runProcs(t, func(th *kernel.Thread) {
		watched, _ := h.ipc.PortAllocate(th)
		send, _ := h.ipc.InsertSendRight(th, watched)
		kr = h.ipc.RequestDeadNameNotification(th, watched, send)
	})
	if kr != KernInvalidRight {
		t.Fatalf("kr = %v, want KERN_INVALID_RIGHT", kr)
	}
}
