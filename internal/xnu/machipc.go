// Package xnu contains the foreign (XNU) kernel subsystems that Cider
// duct-tapes into the domestic Linux kernel (Section 4.2): the Mach IPC
// subsystem — ports, rights, message queues, out-of-line memory, port sets
// — and the kernel half of iOS pthread support (psynch).
//
// This code is "foreign zone" code: it calls only the duct tape adaptation
// surface (ducttape.Env — XNU's lck_mtx/kalloc/wait/wakeup APIs), never
// domestic kernel internals directly. Units() declares the compilation-unit
// symbol graph that ducttape.Link validates at install time, reproducing
// the three-zone discipline. One deliberate deviation, as in the paper:
// XNU's recursive message queuing structures are "disallowed in the Linux
// kernel" and were rewritten as flat queues (ducttape.Queue) here too.
package xnu

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ducttape"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// KernReturn is a Mach kern_return_t / mach_msg_return_t.
type KernReturn uint32

// Mach return codes (mach/kern_return.h, mach/message.h).
const (
	// KernSuccess is KERN_SUCCESS.
	KernSuccess KernReturn = 0
	// KernNoSpace is KERN_NO_SPACE.
	KernNoSpace KernReturn = 3
	// KernInvalidName is KERN_INVALID_NAME.
	KernInvalidName KernReturn = 15
	// KernInvalidRight is KERN_INVALID_RIGHT.
	KernInvalidRight KernReturn = 17
	// MachSendInvalidDest is MACH_SEND_INVALID_DEST.
	MachSendInvalidDest KernReturn = 0x10000003
	// MachSendTimedOut is MACH_SEND_TIMED_OUT.
	MachSendTimedOut KernReturn = 0x10000004
	// MachSendInterrupted is MACH_SEND_INTERRUPTED: a software interrupt
	// (signal) woke the sender while it was blocked at the queue limit.
	MachSendInterrupted KernReturn = 0x10000007
	// MachRcvTooLarge is MACH_RCV_TOO_LARGE.
	MachRcvTooLarge KernReturn = 0x10004004
	// MachRcvTimedOut is MACH_RCV_TIMED_OUT.
	MachRcvTimedOut KernReturn = 0x10004003
	// MachRcvInterrupted is MACH_RCV_INTERRUPTED.
	MachRcvInterrupted KernReturn = 0x10004005
	// MachRcvPortDied is MACH_RCV_PORT_DIED.
	MachRcvPortDied KernReturn = 0x10004010
)

// PortName is a task-local Mach port name (mach_port_name_t).
type PortName uint32

// PortNull is MACH_PORT_NULL.
const PortNull PortName = 0

// BootstrapName is the well-known name every space binds to the bootstrap
// port (launchd's name server), the way task special ports work on iOS.
const BootstrapName PortName = 0x103

// RightType is a port right disposition.
type RightType int

const (
	// RightReceive is MACH_PORT_RIGHT_RECEIVE.
	RightReceive RightType = iota
	// RightSend is MACH_PORT_RIGHT_SEND.
	RightSend
	// RightSendOnce is MACH_PORT_RIGHT_SEND_ONCE.
	RightSendOnce
)

// Port is a Mach port: a kernel message queue with a single receiver.
type Port struct {
	id     uint64
	msgs   ducttape.Queue[*Message]
	qlimit int
	dead   bool
	// recvWait parks receivers; sendWait parks senders at queue limit.
	recvWait *sim.WaitQueue
	sendWait *sim.WaitQueue
	// set is the port set this port belongs to, if any.
	set *PortSet
	// deadNameNotify, when non-nil, receives a MsgDeadNameNotification
	// when this port dies (mach_port_request_notification).
	deadNameNotify *Port
}

// MsgDeadNameNotification is the msgh_id of a dead-name notification
// (MACH_NOTIFY_DEAD_NAME).
const MsgDeadNameNotification int32 = 0110

// ID returns the kernel-global port id (diagnostics).
func (p *Port) ID() uint64 { return p.id }

// Dead reports whether the port has been destroyed (launchd uses this to
// prune stale service registrations on lookup).
func (p *Port) Dead() bool { return p.dead }

// Pending returns the queued message count.
func (p *Port) Pending() int { return p.msgs.Len() }

// defaultQLimit is MACH_PORT_QLIMIT_DEFAULT.
const defaultQLimit = 5

// CarriedRight is a port right travelling inside a message.
type CarriedRight struct {
	// Port is the right's target.
	Port *Port
	// Type is the disposition moved (send / send-once).
	Type RightType
}

// Message is a Mach message (mach_msg_header_t + body).
type Message struct {
	// ID is msgh_id, the operation selector.
	ID int32
	// Body is the inline payload.
	Body []byte
	// Reply carries the reply-port right (msgh_local_port at send time);
	// the receiver sees it as ReplyName in its own space.
	Reply *CarriedRight
	// ReplyName is set on receive: the reply right's name in the
	// receiver's space.
	ReplyName PortName
	// Rights are additional carried port rights (port descriptors).
	Rights []CarriedRight
	// RightNames mirrors Rights on receive.
	RightNames []PortName
	// OOL is out-of-line memory: zero-copy page transfers, the mechanism
	// IOSurface uses to share graphics memory (Section 5.3).
	OOL []*mem.Backing
}

// Size returns the message's transfer size (inline body + descriptors).
func (m *Message) Size() int {
	n := len(m.Body) + 24 // header
	n += 12 * len(m.Rights)
	n += 12 * len(m.OOL)
	return n
}

// right is one entry in a task's IPC space.
type right struct {
	port *Port
	typ  RightType
	refs int
	// freeNext chains recycled rights on the owning Space's freelist.
	freeNext *right
}

// Space is a task's port name space (ipc_space_t).
type Space struct {
	task     *kernel.Task
	names    map[PortName]*right
	nextName PortName
	// free heads the recycled-right chain. Every message that carries a
	// reply port or a port right inserts a right into the receiver's space
	// and most are deallocated one RPC later, so without recycling this is
	// a per-message heap allocation (same pattern as the WaitQueue waiter
	// pool in internal/sim/waitq.go).
	free *right
}

// Names returns the number of live names (diagnostics).
func (s *Space) Names() int { return len(s.names) }

// newRight takes a right from the freelist, refilling from the heap only
// when it is empty.
//
//hot:noalloc
func (s *Space) newRight(p *Port, t RightType) *right {
	r := s.free
	if r == nil {
		//lint:allow hotalloc: freelist refill — steady state recycles
		r = &right{}
	} else {
		s.free = r.freeNext
	}
	r.port, r.typ, r.refs, r.freeNext = p, t, 1, nil
	return r
}

// freeRight returns a right removed from the name table to the freelist.
// Callers must not retain the pointer past this call.
//
//hot:noalloc
func (s *Space) freeRight(r *right) {
	r.port = nil
	r.freeNext = s.free
	s.free = r
}

// insert adds a right under a fresh name.
func (s *Space) insert(p *Port, t RightType) PortName {
	// Coalesce send rights to the same port under one name, as Mach does.
	if t == RightSend {
		for n, r := range s.names {
			if r.port == p && r.typ == RightSend {
				r.refs++
				return n
			}
		}
	}
	n := s.nextName
	s.nextName += 4 // Mach names stride by 4 (index<<2 | gen)
	s.names[n] = s.newRight(p, t)
	return n
}

// IPC is the duct-taped Mach IPC subsystem instance living inside the
// domestic kernel. It is registered as the kernel extension "mach_ipc".
type IPC struct {
	env    *ducttape.Env
	k      *kernel.Kernel
	lock   *ducttape.LckMtx
	spaces map[*kernel.Task]*Space
	nextID uint64
	// bootstrap is the port every new space binds at BootstrapName.
	bootstrap *Port

	// taskExc maps tasks to their task-level exception port; hostExc is
	// the host-level exception port (crashreporterd). See exception.go.
	taskExc map[*kernel.Task]*Port
	hostExc *Port

	// Cost model: fixed per-message kernel path plus a per-byte copy term.
	msgBase    time.Duration
	msgPerByte time.Duration
	portAlloc  time.Duration

	// stats
	sent, received uint64
}

// ExtensionName keys the IPC instance in the kernel extension table.
const ExtensionName = "mach_ipc"

// InstallIPC duct-tapes the Mach IPC subsystem into the kernel: validates
// the unit graph under the three-zone rules, then registers the subsystem
// as a kernel extension.
func InstallIPC(k *kernel.Kernel, env *ducttape.Env) (*IPC, error) {
	if _, err := ducttape.Link(AllUnits()); err != nil {
		return nil, err
	}
	cpu := k.Device().CPU
	ipc := &IPC{
		env:        env,
		k:          k,
		lock:       env.NewLckMtx("ipc_space"),
		spaces:     make(map[*kernel.Task]*Space),
		taskExc:    make(map[*kernel.Task]*Port),
		nextID:     1,
		msgBase:    cpu.Cycles(3900),
		msgPerByte: cpu.Cycles(0.6),
		portAlloc:  cpu.Cycles(1700),
	}
	k.SetExtension(ExtensionName, ipc)
	// Fatal faults on iOS-persona threads surface as Mach exceptions
	// before their Unix disposition runs (see exception.go).
	k.SetExceptionBridge(func(t *kernel.Thread, sig int) bool {
		return ipc.DeliverException(t, sig)
	})
	// Tear down the exiting task's port space — receive rights die with
	// their task, exactly as XNU reaps an ipc_space at task termination.
	// Without this, every exited process leaks its Space and its ports'
	// blocked peers park forever.
	k.OnTaskExit(ipc.taskExit)
	return ipc, nil
}

// FromKernel fetches the installed IPC subsystem.
func FromKernel(k *kernel.Kernel) (*IPC, bool) {
	v, ok := k.Extension(ExtensionName)
	if !ok {
		return nil, false
	}
	ipc, ok := v.(*IPC)
	return ipc, ok
}

// Stats reports (sent, received) message counts.
func (ipc *IPC) Stats() (uint64, uint64) { return ipc.sent, ipc.received }

// SpaceFor returns (creating on demand) a task's IPC space.
func (ipc *IPC) SpaceFor(tk *kernel.Task) *Space {
	s, ok := ipc.spaces[tk]
	if !ok {
		s = &Space{task: tk, names: make(map[PortName]*right), nextName: 0x207}
		if ipc.bootstrap != nil {
			s.names[BootstrapName] = s.newRight(ipc.bootstrap, RightSend)
		}
		ipc.spaces[tk] = s
	}
	return s
}

// SetBootstrapPort designates the port bound at BootstrapName in every
// space — launchd calls this once at boot (task_set_special_port).
func (ipc *IPC) SetBootstrapPort(p *Port) {
	ipc.bootstrap = p
	for _, s := range ipc.spaces {
		if _, ok := s.names[BootstrapName]; !ok {
			s.names[BootstrapName] = s.newRight(p, RightSend)
		}
	}
}

// resolve returns the right behind a name in the calling task's space.
func (ipc *IPC) resolve(t *kernel.Thread, name PortName) (*right, KernReturn) {
	s := ipc.SpaceFor(t.Task())
	r, ok := s.names[name]
	if !ok {
		return nil, KernInvalidName
	}
	return r, KernSuccess
}

// PortAllocate is mach_port_allocate(MACH_PORT_RIGHT_RECEIVE): create a
// port and return its receive-right name.
func (ipc *IPC) PortAllocate(t *kernel.Thread) (PortName, KernReturn) {
	t.Charge(ipc.portAlloc)
	ipc.lock.Lock(t)
	defer ipc.lock.Unlock(t)
	p := &Port{
		id:       ipc.nextID,
		qlimit:   defaultQLimit,
		recvWait: sim.NewWaitQueue("mach_rcv"),
		sendWait: sim.NewWaitQueue("mach_snd"),
	}
	ipc.nextID++
	return ipc.SpaceFor(t.Task()).insert(p, RightReceive), KernSuccess
}

// PortDestroy is mach_port_destroy on a receive right: the port dies,
// blocked senders/receivers fail, and any registered dead-name
// notification fires.
func (ipc *IPC) PortDestroy(t *kernel.Thread, name PortName) KernReturn {
	r, kr := ipc.resolve(t, name)
	if kr != KernSuccess {
		return kr
	}
	if r.typ != RightReceive {
		return KernInvalidRight
	}
	s := ipc.spaces[t.Task()]
	delete(s.names, name)
	ipc.destroyPort(t.Proc(), r.port)
	s.freeRight(r)
	return KernSuccess
}

// destroyPort kills a port: mark dead, drain queued messages, fail blocked
// senders/receivers, and fire any dead-name notification.
func (ipc *IPC) destroyPort(waker *sim.Proc, p *Port) {
	if p.dead {
		return
	}
	p.dead = true
	for p.msgs.Len() > 0 {
		p.msgs.Dequeue()
	}
	p.recvWait.WakeAll(waker, sim.WakeNormal)
	p.sendWait.WakeAll(waker, sim.WakeNormal)
	if n := p.deadNameNotify; n != nil && !n.dead && n.msgs.Len() < n.qlimit {
		n.msgs.Enqueue(&Message{ID: MsgDeadNameNotification, Body: portIDBytes(p.id)})
		if n.set != nil {
			n.set.wait.WakeOne(waker, sim.WakeNormal)
		}
		n.recvWait.WakeOne(waker, sim.WakeNormal)
	}
}

// taskExit reaps the exiting task's IPC space (registered via OnTaskExit):
// receive rights destroy their ports, send rights are dropped. Names are
// processed in sorted order so teardown wakes blocked peers in a
// deterministic sequence.
func (ipc *IPC) taskExit(t *kernel.Thread) {
	s, ok := ipc.spaces[t.Task()]
	if !ok {
		return
	}
	names := make([]PortName, 0, len(s.names))
	for n := range s.names {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, n := range names {
		r := s.names[n]
		delete(s.names, n)
		if r.typ == RightReceive {
			ipc.destroyPort(t.Proc(), r.port)
		}
	}
	delete(ipc.spaces, t.Task())
	delete(ipc.taskExc, t.Task())
}

// LeakCheck implements kernel.LeakChecker: no exited task may still own a
// port space, and live spaces must hold only sane rights.
func (ipc *IPC) LeakCheck(k *kernel.Kernel) []string {
	var out []string
	type ent struct {
		pid int
		s   *Space
	}
	ents := make([]ent, 0, len(ipc.spaces))
	for tk, s := range ipc.spaces {
		ents = append(ents, ent{tk.PID(), s})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].pid < ents[j].pid })
	for _, e := range ents {
		tk := e.s.task
		if k.Task(tk.PID()) != tk || tk.Zombie() || tk.Threads() == 0 {
			out = append(out, fmt.Sprintf("mach_ipc: space for exited pid %d leaked (%d names)", e.pid, e.s.Names()))
			continue
		}
		names := make([]PortName, 0, len(e.s.names))
		for n := range e.s.names {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
		for _, n := range names {
			r := e.s.names[n]
			if r.refs < 1 {
				out = append(out, fmt.Sprintf("mach_ipc: pid %d name 0x%x holds a right with %d refs", e.pid, uint32(n), r.refs))
			}
			if r.port.dead && r.typ == RightReceive {
				if r.port.msgs.Len() > 0 || r.port.recvWait.Len() > 0 || r.port.sendWait.Len() > 0 {
					out = append(out, fmt.Sprintf("mach_ipc: pid %d name 0x%x: dead port not drained", e.pid, uint32(n)))
				}
			}
		}
	}
	return out
}

// RequestDeadNameNotification is mach_port_request_notification
// (MACH_NOTIFY_DEAD_NAME): when watched dies, a notification message is
// posted to the port named notify (a receive right in the caller's space).
func (ipc *IPC) RequestDeadNameNotification(t *kernel.Thread, watched, notify PortName) KernReturn {
	w, kr := ipc.resolve(t, watched)
	if kr != KernSuccess {
		return kr
	}
	n, kr := ipc.resolve(t, notify)
	if kr != KernSuccess {
		return kr
	}
	if n.typ != RightReceive {
		return KernInvalidRight
	}
	w.port.deadNameNotify = n.port
	return KernSuccess
}

func portIDBytes(id uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(id >> (8 * i))
	}
	return b
}

// PortDeallocate drops a send/send-once right.
func (ipc *IPC) PortDeallocate(t *kernel.Thread, name PortName) KernReturn {
	r, kr := ipc.resolve(t, name)
	if kr != KernSuccess {
		return kr
	}
	if r.typ == RightReceive {
		return KernInvalidRight
	}
	r.refs--
	if r.refs == 0 {
		s := ipc.spaces[t.Task()]
		delete(s.names, name)
		s.freeRight(r)
	}
	return KernSuccess
}

// InsertSendRight is mach_port_insert_right(MACH_MSG_TYPE_MAKE_SEND): mint
// a send right from a receive right in the same space.
func (ipc *IPC) InsertSendRight(t *kernel.Thread, recv PortName) (PortName, KernReturn) {
	r, kr := ipc.resolve(t, recv)
	if kr != KernSuccess {
		return PortNull, kr
	}
	if r.typ != RightReceive {
		return PortNull, KernInvalidRight
	}
	return ipc.SpaceFor(t.Task()).insert(r.port, RightSend), KernSuccess
}

// MakeSendRight exposes a right's port as a CarriedRight for embedding in
// a message: MACH_MSG_TYPE_MAKE_SEND from a receive right, or
// MACH_MSG_TYPE_COPY_SEND from an existing send right.
func (ipc *IPC) MakeSendRight(t *kernel.Thread, name PortName) (*CarriedRight, KernReturn) {
	r, kr := ipc.resolve(t, name)
	if kr != KernSuccess {
		return nil, kr
	}
	return &CarriedRight{Port: r.port, Type: RightSend}, KernSuccess
}

// Send is the send half of mach_msg: queue msg on the port named dest in
// the caller's space. timeout < 0 blocks at queue limit; 0 fails instead.
func (ipc *IPC) Send(t *kernel.Thread, dest PortName, msg *Message, timeout time.Duration) KernReturn {
	r, kr := ipc.resolve(t, dest)
	if kr != KernSuccess {
		return MachSendInvalidDest
	}
	if r.typ != RightSend && r.typ != RightSendOnce && r.typ != RightReceive {
		return KernInvalidRight
	}
	kr = ipc.sendToPort(t, r.port, msg, timeout)
	if kr == KernSuccess && r.typ == RightSendOnce {
		// Safe after the wakes: the receiver is not scheduled until the
		// sender yields, so the right is consumed before anyone can look.
		ipc.PortDeallocate(t, dest)
	}
	return kr
}

// sendToPort is the port-level send path shared by mach_msg and in-kernel
// senders (exception delivery): charge the message cost, consult the fault
// layer, block at the queue limit, enqueue and wake a receiver. Every Mach
// send — user or kernel originated — charges and faults identically here.
func (ipc *IPC) sendToPort(t *kernel.Thread, p *Port, msg *Message, timeout time.Duration) KernReturn {
	t.Charge(ipc.msgBase + time.Duration(msg.Size())*ipc.msgPerByte)
	// Fault layer: queue-overflow pressure (QLimit override forces the
	// blocked-sender path) and MACH_SEND_INTERRUPTED at entry.
	qlimit := p.qlimit
	if in := ipc.k.FaultInjector(); in != nil {
		if out, ok := in.Check(fault.OpMachSend, "send", t.Now()); ok {
			if out.Delay > 0 {
				t.Charge(out.Delay)
			}
			if out.QLimit > 0 && out.QLimit < qlimit {
				qlimit = out.QLimit
			}
			if out.Errno != 0 {
				return MachSendInterrupted
			}
		}
	}
	deadline := time.Duration(-1)
	if timeout >= 0 {
		deadline = t.Now() + timeout
	}
	for p.msgs.Len() >= qlimit {
		if p.dead {
			return MachSendInvalidDest
		}
		if deadline == 0 || (deadline > 0 && t.Now() >= deadline) {
			return MachSendTimedOut
		}
		var tag int
		if deadline > 0 {
			tag, _ = p.sendWait.WaitTimeout(t.Proc(), deadline-t.Now())
		} else {
			tag = p.sendWait.Wait(t.Proc())
		}
		if tag == sim.WakeInterrupted {
			return MachSendInterrupted
		}
	}
	if p.dead {
		return MachSendInvalidDest
	}
	p.msgs.Enqueue(msg)
	ipc.sent++
	// Wake a receiver on the port, or on its containing set.
	if p.set != nil {
		p.set.wait.WakeOne(t.Proc(), sim.WakeNormal)
	}
	p.recvWait.WakeOne(t.Proc(), sim.WakeNormal)
	return KernSuccess
}

// Receive is the receive half of mach_msg: dequeue from the port named
// recv. timeout < 0 blocks; 0 polls. Carried rights are moved into the
// caller's space and their new names set on the message.
func (ipc *IPC) Receive(t *kernel.Thread, recv PortName, timeout time.Duration) (*Message, KernReturn) {
	r, kr := ipc.resolve(t, recv)
	if kr != KernSuccess {
		return nil, kr
	}
	if r.typ != RightReceive {
		return nil, KernInvalidRight
	}
	p := r.port
	// Fault layer: MACH_RCV_INTERRUPTED pressure at entry.
	if in := ipc.k.FaultInjector(); in != nil {
		if out, ok := in.Check(fault.OpMachRecv, "recv", t.Now()); ok {
			if out.Delay > 0 {
				t.Charge(out.Delay)
			}
			if out.Errno != 0 {
				return nil, MachRcvInterrupted
			}
		}
	}
	deadline := time.Duration(-1)
	if timeout >= 0 {
		deadline = t.Now() + timeout
	}
	for p.msgs.Len() == 0 {
		if p.dead {
			return nil, MachRcvPortDied
		}
		if deadline == 0 || (deadline > 0 && t.Now() >= deadline) {
			return nil, MachRcvTimedOut
		}
		var tag int
		if deadline > 0 {
			tag, _ = p.recvWait.WaitTimeout(t.Proc(), deadline-t.Now())
		} else {
			tag = p.recvWait.Wait(t.Proc())
		}
		if tag == sim.WakeInterrupted {
			return nil, MachRcvInterrupted
		}
	}
	msg, _ := p.msgs.Dequeue()
	p.sendWait.WakeOne(t.Proc(), sim.WakeNormal)
	t.Charge(ipc.msgBase + time.Duration(msg.Size())*ipc.msgPerByte)
	ipc.received++
	ipc.moveRights(t, msg)
	return msg, KernSuccess
}

// moveRights installs a received message's carried rights into the
// receiver's space.
func (ipc *IPC) moveRights(t *kernel.Thread, msg *Message) {
	s := ipc.SpaceFor(t.Task())
	if msg.Reply != nil {
		msg.ReplyName = s.insert(msg.Reply.Port, msg.Reply.Type)
	}
	msg.RightNames = msg.RightNames[:0]
	for _, cr := range msg.Rights {
		msg.RightNames = append(msg.RightNames, s.insert(cr.Port, cr.Type))
	}
}

// MapOOL maps a received out-of-line memory descriptor into the caller's
// address space (vm_map of the OOL pages) — the zero-copy path IOSurface
// rides on.
func (ipc *IPC) MapOOL(t *kernel.Thread, backing *mem.Backing, name string) (uint64, KernReturn) {
	r, err := t.Task().Mem().MapBacking(0, backing.Size(), mem.ProtRead|mem.ProtWrite, name, true, backing, 0)
	if err != nil {
		return 0, KernNoSpace
	}
	return r.Base, KernSuccess
}

// PortSet is a Mach port set: receive from any member.
type PortSet struct {
	members []*Port
	wait    *sim.WaitQueue
}

// PortSetAllocate creates a port set (mach_port_allocate PORT_SET).
func (ipc *IPC) PortSetAllocate(t *kernel.Thread) *PortSet {
	t.Charge(ipc.portAlloc)
	return &PortSet{wait: sim.NewWaitQueue("mach_pset")}
}

// PortSetAdd moves a receive right into the set (mach_port_move_member).
func (ipc *IPC) PortSetAdd(t *kernel.Thread, set *PortSet, name PortName) KernReturn {
	r, kr := ipc.resolve(t, name)
	if kr != KernSuccess {
		return kr
	}
	if r.typ != RightReceive {
		return KernInvalidRight
	}
	r.port.set = set
	set.members = append(set.members, r.port)
	return KernSuccess
}

// ReceiveSet receives from any member port of a set.
func (ipc *IPC) ReceiveSet(t *kernel.Thread, set *PortSet, timeout time.Duration) (*Message, KernReturn) {
	if in := ipc.k.FaultInjector(); in != nil {
		if out, ok := in.Check(fault.OpMachRecv, "recv", t.Now()); ok {
			if out.Delay > 0 {
				t.Charge(out.Delay)
			}
			if out.Errno != 0 {
				return nil, MachRcvInterrupted
			}
		}
	}
	deadline := time.Duration(-1)
	if timeout >= 0 {
		deadline = t.Now() + timeout
	}
	for {
		for _, p := range set.members {
			if p.msgs.Len() > 0 {
				msg, _ := p.msgs.Dequeue()
				p.sendWait.WakeOne(t.Proc(), sim.WakeNormal)
				t.Charge(ipc.msgBase + time.Duration(msg.Size())*ipc.msgPerByte)
				ipc.received++
				ipc.moveRights(t, msg)
				return msg, KernSuccess
			}
		}
		if deadline == 0 || (deadline > 0 && t.Now() >= deadline) {
			return nil, MachRcvTimedOut
		}
		var tag int
		if deadline > 0 {
			tag, _ = set.wait.WaitTimeout(t.Proc(), deadline-t.Now())
		} else {
			tag = set.wait.Wait(t.Proc())
		}
		if tag == sim.WakeInterrupted {
			return nil, MachRcvInterrupted
		}
	}
}
