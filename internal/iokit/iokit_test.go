package iokit

import (
	"testing"

	"repro/internal/ducttape"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func boot(t *testing.T) (*sim.Sim, *kernel.Kernel, *Registry) {
	t.Helper()
	s := sim.New()
	k, err := kernel.New(s, kernel.Config{
		Profile: kernel.ProfileCider, Device: hw.Nexus7(),
		Root: vfs.New(), Registry: prog.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})
	r, err := Install(k, ducttape.NewEnv(k))
	if err != nil {
		t.Fatal(err)
	}
	return s, k, r
}

func runThread(t *testing.T, s *sim.Sim, k *kernel.Kernel, body func(*kernel.Thread)) {
	t.Helper()
	key := "iokit-body-" + t.Name()
	k.Registry().MustRegister(key, func(c *prog.Call) uint64 {
		body(c.Ctx.(*kernel.Thread))
		return 0
	})
	bin, err := prog.StaticELF(key)
	if err != nil {
		t.Fatal(err)
	}
	k.Root().(*vfs.FS).WriteFile("/bin/t", bin)
	if _, err := k.StartProcess("/bin/t", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnitsLink(t *testing.T) {
	img, err := ducttape.Link(Units())
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Unresolved()) != 0 {
		t.Fatalf("unresolved: %v", img.Unresolved())
	}
}

func TestDeviceAddCreatesRegistryEntry(t *testing.T) {
	s, k, r := boot(t)
	before := r.Entries()
	if err := k.AddDevice(kernel.NullDevice{}); err != nil {
		t.Fatal(err)
	}
	if r.Entries() != before+1 {
		t.Fatalf("entries = %d, want %d", r.Entries(), before+1)
	}
	runThread(t, s, k, func(th *kernel.Thread) {
		e, ok := r.ServiceNamed(th, "null")
		if !ok {
			t.Error("no registry entry for null device")
			return
		}
		if e.Properties["LinuxDeviceNode"] != "/dev/null" {
			t.Errorf("props = %v", e.Properties)
		}
	})
}

func TestDriverMatchingOnExistingDevice(t *testing.T) {
	s, k, r := boot(t)
	fb := NewFBDevice(hw.Nexus7().Display)
	if err := k.AddDevice(fb); err != nil {
		t.Fatal(err)
	}
	// Driver registered after the device: must match retroactively.
	if err := r.RegisterDriver(NewAppleM2CLCD(fb)); err != nil {
		t.Fatal(err)
	}
	runThread(t, s, k, func(th *kernel.Thread) {
		matches := r.ServiceMatching(th, "AppleM2CLCD")
		if len(matches) != 1 {
			t.Errorf("matches = %d, want 1", len(matches))
			return
		}
		if matches[0].Properties["IOFBWidth"] != "1280" {
			t.Errorf("props = %v", matches[0].Properties)
		}
	})
}

func TestDriverMatchingOnLaterDevice(t *testing.T) {
	s, k, r := boot(t)
	fb := NewFBDevice(hw.Nexus7().Display)
	// Driver registered before the device: must match on device_add.
	if err := r.RegisterDriver(NewAppleM2CLCD(fb)); err != nil {
		t.Fatal(err)
	}
	if err := k.AddDevice(fb); err != nil {
		t.Fatal(err)
	}
	runThread(t, s, k, func(th *kernel.Thread) {
		if len(r.ServiceMatching(th, "AppleM2CLCD")) != 1 {
			t.Error("driver did not match device added later")
		}
	})
}

func TestIOMobileFramebufferCalls(t *testing.T) {
	s, k, r := boot(t)
	fb := NewFBDevice(hw.Nexus7().Display)
	k.AddDevice(fb)
	r.RegisterDriver(NewAppleM2CLCD(fb))
	runThread(t, s, k, func(th *kernel.Thread) {
		e, _ := r.ServiceNamed(th, "fb0")
		out, err := r.Call(th, e.ID, SelGetDisplaySize, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if out[0] != 1280 || out[1] != 800 {
			t.Errorf("display size = %v", out)
		}
		if _, err := r.Call(th, e.ID, SelSwapEnd, nil); err != nil {
			t.Error(err)
		}
		if fb.Flips() != 1 {
			t.Errorf("flips = %d", fb.Flips())
		}
		if _, err := r.Call(th, e.ID, 999, nil); err == nil {
			t.Error("bad selector should fail")
		}
	})
}

func TestCallUnmatchedEntryFails(t *testing.T) {
	s, k, r := boot(t)
	k.AddDevice(kernel.ZeroDevice{})
	runThread(t, s, k, func(th *kernel.Thread) {
		e, _ := r.ServiceNamed(th, "zero")
		if _, err := r.Call(th, e.ID, 1, nil); err == nil {
			t.Error("call on driverless entry should fail")
		}
		if _, err := r.Call(th, 9999, 1, nil); err == nil {
			t.Error("call on missing entry should fail")
		}
	})
}

func TestFramebufferDeviceIoctl(t *testing.T) {
	s, k, _ := boot(t)
	fb := NewFBDevice(hw.Nexus7().Display)
	k.AddDevice(fb)
	runThread(t, s, k, func(th *kernel.Thread) {
		ret := th.Syscall(kernel.SysOpen, &kernel.SyscallArgs{Path: "/dev/fb0"})
		if ret.Errno != kernel.OK {
			t.Errorf("open: %v", ret.Errno)
			return
		}
		info := th.Syscall(kernel.SysIoctl, &kernel.SyscallArgs{I: [6]uint64{ret.R0, FBIOGetVScreenInfo}})
		if info.R0 != 1280<<16|800 {
			t.Errorf("vscreeninfo = %#x", info.R0)
		}
		th.Syscall(kernel.SysIoctl, &kernel.SyscallArgs{I: [6]uint64{ret.R0, FBIOPanDisplay}})
		if fb.Flips() != 1 {
			t.Errorf("flips = %d", fb.Flips())
		}
	})
}
