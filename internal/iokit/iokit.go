// Package iokit is the duct-taped I/O Kit subsystem (Section 5.1): Apple's
// C++ driver framework, compiled into the domestic kernel so iOS apps and
// libraries can discover and use Android hardware exactly as they would
// Apple hardware.
//
// The real Cider adds a C++ runtime to the Linux kernel and compiles the
// XNU iokit/ sources directly (minus hardware-facing pieces like
// IODMAController); this simulation reproduces the framework's object
// model — the registry, IOService matching, device/driver class instances
// — and the Linux bridge: a hook on the kernel's device_add path creates an
// I/O Kit registry entry for every Linux device, and per-device driver
// classes (e.g. AppleM2CLCD wrapping the Nexus 7 framebuffer) are matched
// to those entries so user space can find them via Mach IPC.
package iokit

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ducttape"
	"repro/internal/kernel"
)

// ExtensionName keys the registry instance in the kernel extension table.
const ExtensionName = "iokit"

// RegistryEntry is one node in the I/O Kit registry plane.
type RegistryEntry struct {
	// ID is the registry entry id.
	ID uint64
	// Class is the entry's C++ class name (e.g. "IOService",
	// "AppleM2CLCD").
	Class string
	// Name is the instance name.
	Name string
	// Properties is the entry's property table (OSDictionary).
	Properties map[string]string
	// Provider is the parent entry in the service plane.
	Provider *RegistryEntry
	// driver is the matched driver instance, if any.
	driver Driver
	// linuxDev is the bridged Linux device, if this entry represents one.
	linuxDev kernel.Device
}

// Driver is a driver class instance: the C++ object wrapping a Linux
// device driver (Section 5.1's AppleM2CLCD example).
type Driver interface {
	// ClassName is the C++ class ("AppleM2CLCD").
	ClassName() string
	// Matches reports whether this driver drives the given device class
	// instance (IOService::probe score, reduced to a predicate).
	Matches(entry *RegistryEntry) bool
	// Start attaches the driver (IOService::start).
	Start(entry *RegistryEntry) error
	// Call handles a user-space method invocation (IOConnectCallMethod).
	Call(t *kernel.Thread, selector uint32, args []uint64) ([]uint64, error)
}

// Registry is the duct-taped I/O Kit instance in the kernel.
type Registry struct {
	env     *ducttape.Env
	k       *kernel.Kernel
	nextID  uint64
	root    *RegistryEntry
	entries map[uint64]*RegistryEntry
	// pendingDrivers are registered driver classes awaiting a match.
	pendingDrivers []Driver
	// matchCost models IOService matching work.
	matchCost time.Duration
	callCost  time.Duration
}

// Install duct-tapes I/O Kit into the kernel: validates the unit graph,
// hooks the Linux device-add path, and returns the registry.
func Install(k *kernel.Kernel, env *ducttape.Env) (*Registry, error) {
	if _, err := ducttape.Link(Units()); err != nil {
		return nil, err
	}
	cpu := k.Device().CPU
	r := &Registry{
		env:       env,
		k:         k,
		nextID:    1,
		entries:   make(map[uint64]*RegistryEntry),
		matchCost: cpu.Cycles(6500),
		callCost:  cpu.Cycles(2600),
	}
	r.root = r.newEntry("IORegistryEntry", "Root", nil)
	r.root.Properties["IOKitBuildVersion"] = "xnu-2050.18.24 (ducttaped)"
	k.SetExtension(ExtensionName, r)

	// "Using a small hook in the Linux device_add function, Cider creates
	// a Linux device node I/O Kit registry entry (a device class instance)
	// for every registered Linux device."
	k.OnDeviceAdd(func(dev kernel.Device) {
		entry := r.newEntry("IOService", dev.DevName(), r.root)
		entry.Properties["LinuxDeviceNode"] = "/dev/" + dev.DevName()
		entry.linuxDev = dev
		r.match(entry)
	})
	return r, nil
}

// FromKernel fetches the installed I/O Kit registry.
func FromKernel(k *kernel.Kernel) (*Registry, bool) {
	v, ok := k.Extension(ExtensionName)
	if !ok {
		return nil, false
	}
	r, ok := v.(*Registry)
	return r, ok
}

func (r *Registry) newEntry(class, name string, provider *RegistryEntry) *RegistryEntry {
	e := &RegistryEntry{
		ID:         r.nextID,
		Class:      class,
		Name:       name,
		Properties: make(map[string]string),
		Provider:   provider,
	}
	r.nextID++
	r.entries[e.ID] = e
	return e
}

// RegisterDriver adds a driver class instance and matches it against
// existing device entries — the flow of Section 5.1: "the class is
// instantiated and registered as a driver class instance with I/O Kit
// through a small interface function called on Linux kernel boot. The duct
// taped I/O Kit code matches the C++ driver class instance with the Linux
// device node."
func (r *Registry) RegisterDriver(d Driver) error {
	r.pendingDrivers = append(r.pendingDrivers, d)
	for _, e := range r.sortedEntries() {
		if e.driver == nil && d.Matches(e) {
			if err := d.Start(e); err != nil {
				return err
			}
			e.driver = d
			e.Properties["IOClass"] = d.ClassName()
		}
	}
	return nil
}

// match tries every pending driver against a new entry.
func (r *Registry) match(e *RegistryEntry) {
	for _, d := range r.pendingDrivers {
		if e.driver == nil && d.Matches(e) {
			if err := d.Start(e); err != nil {
				continue
			}
			e.driver = d
			e.Properties["IOClass"] = d.ClassName()
			return
		}
	}
}

func (r *Registry) sortedEntries() []*RegistryEntry {
	out := make([]*RegistryEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ServiceMatching finds registry entries by class name — the kernel half
// of IOServiceGetMatchingServices, which iOS user space reaches over Mach
// IPC.
func (r *Registry) ServiceMatching(t *kernel.Thread, class string) []*RegistryEntry {
	t.Charge(r.matchCost)
	var out []*RegistryEntry
	for _, e := range r.sortedEntries() {
		if e.Class == class || (e.driver != nil && e.driver.ClassName() == class) {
			out = append(out, e)
		}
	}
	return out
}

// ServiceNamed finds a registry entry by instance name.
func (r *Registry) ServiceNamed(t *kernel.Thread, name string) (*RegistryEntry, bool) {
	t.Charge(r.matchCost)
	for _, e := range r.sortedEntries() {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// Call invokes a matched driver method from user space
// (IOConnectCallMethod over Mach IPC).
func (r *Registry) Call(t *kernel.Thread, entryID uint64, selector uint32, args []uint64) ([]uint64, error) {
	t.Charge(r.callCost)
	e, ok := r.entries[entryID]
	if !ok {
		return nil, fmt.Errorf("iokit: no registry entry %d", entryID)
	}
	if e.driver == nil {
		return nil, fmt.Errorf("iokit: entry %s has no matched driver", e.Name)
	}
	return e.driver.Call(t, selector, args)
}

// Entries returns the number of registry entries.
func (r *Registry) Entries() int { return len(r.entries) }

// Units declares the duct-tape compilation-unit graph for the I/O Kit
// sources: XNU's iokit/ tree (minus the hardware-facing controllers the
// paper notes were unnecessary) plus the C++ runtime shims Cider adds to
// the Linux kernel.
func Units() []ducttape.Unit {
	return []ducttape.Unit{
		{
			Name: "linux/drivers/base/core.c", Zone: ducttape.Domestic,
			Defines: []string{"device_add", "device_del", "dev_set_name"},
		},
		{
			Name: "linux/mm/slab_iokit_view.c", Zone: ducttape.Domestic,
			Defines: []string{"kmalloc_iokit", "kfree_iokit"},
		},
		{
			// "Cider added a basic C++ runtime to the Linux kernel based
			// on Android's Bionic."
			Name: "cider/ducttape/cxx_runtime.c", Zone: ducttape.Tape,
			Defines:    []string{"__cxa_pure_virtual", "operator_new", "operator_delete", "__cxa_guard_acquire"},
			References: []string{"kmalloc_iokit", "kfree_iokit"},
		},
		{
			Name: "cider/ducttape/iokit_device_hook.c", Zone: ducttape.Tape,
			Defines:    []string{"cider_device_add_hook", "iokit_publish_linux_device"},
			References: []string{"device_add", "dev_set_name", "IORegistryEntry_init", "IOService_publish"},
		},
		{
			Name: "xnu/iokit/Kernel/IORegistryEntry.cpp", Zone: ducttape.Foreign,
			Defines:    []string{"IORegistryEntry_init", "IORegistryEntry_setProperty", "IORegistryEntry_getProperty"},
			References: []string{"operator_new", "operator_delete", "__cxa_guard_acquire"},
		},
		{
			Name: "xnu/iokit/Kernel/IOService.cpp", Zone: ducttape.Foreign,
			Defines:    []string{"IOService_publish", "IOService_probe", "IOService_start", "IOService_matching"},
			References: []string{"IORegistryEntry_init", "IORegistryEntry_setProperty", "operator_new", "__cxa_pure_virtual"},
		},
		{
			Name: "xnu/iokit/Kernel/IOUserClient.cpp", Zone: ducttape.Foreign,
			Defines:    []string{"IOUserClient_externalMethod", "is_io_service_get_matching_services"},
			References: []string{"IOService_matching", "IOService_probe", "operator_new"},
		},
	}
}
