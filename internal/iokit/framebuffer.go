package iokit

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

// FBDevice is the Linux framebuffer device (/dev/fb0) of the tablet's
// display controller — the domestic half of Section 5.1's example.
type FBDevice struct {
	display *hw.DisplayModel
	// front is the scan-out buffer.
	front *mem.Backing
	// flips counts page flips (diagnostics).
	flips uint64
}

// NewFBDevice creates the framebuffer device for a display.
func NewFBDevice(d *hw.DisplayModel) *FBDevice {
	return &FBDevice{
		display: d,
		front:   mem.NewBacking(uint64(d.Pixels() * 4)),
	}
}

// DevName implements kernel.Device.
func (f *FBDevice) DevName() string { return "fb0" }

// Open implements kernel.Device.
func (f *FBDevice) Open(*kernel.Thread) (kernel.File, kernel.Errno) {
	return &fbFile{dev: f}, kernel.OK
}

// Front returns the scan-out buffer.
func (f *FBDevice) Front() *mem.Backing { return f.front }

// Flips reports completed page flips.
func (f *FBDevice) Flips() uint64 { return f.flips }

// Flip performs a page flip (the compositor's scan-out handoff).
func (f *FBDevice) Flip() { f.flips++ }

// Display returns the panel description.
func (f *FBDevice) Display() *hw.DisplayModel { return f.display }

// Framebuffer ioctl request codes (FBIO* style).
const (
	// FBIOGetVScreenInfo returns packed width<<16|height.
	FBIOGetVScreenInfo = 0x4600
	// FBIOPanDisplay performs a page flip.
	FBIOPanDisplay = 0x4606
)

// fbFile is an open framebuffer descriptor.
type fbFile struct {
	dev *FBDevice
}

func (f *fbFile) Read(t *kernel.Thread, buf []byte) (int, kernel.Errno) {
	n := copy(buf, f.dev.front.Bytes())
	return n, kernel.OK
}

func (f *fbFile) Write(t *kernel.Thread, buf []byte) (int, kernel.Errno) {
	n := copy(f.dev.front.Bytes(), buf)
	return n, kernel.OK
}

func (f *fbFile) Close(*kernel.Thread) kernel.Errno           { return kernel.OK }
func (f *fbFile) Poll() kernel.PollMask                       { return kernel.PollIn | kernel.PollOut }
func (f *fbFile) PollQueues(kernel.PollMask) []*sim.WaitQueue { return nil }

func (f *fbFile) Ioctl(t *kernel.Thread, req, arg uint64) (uint64, kernel.Errno) {
	switch req {
	case FBIOGetVScreenInfo:
		return uint64(f.dev.display.Width)<<16 | uint64(f.dev.display.Height), kernel.OK
	case FBIOPanDisplay:
		f.dev.flips++
		return 0, kernel.OK
	}
	return 0, kernel.ENOTTY
}

// AppleM2CLCD is the C++ driver class Cider adds to the Nexus 7 display
// driver's source tree: a thin wrapper deriving from the
// IOMobileFramebuffer class interface that forwards to the Linux
// framebuffer driver (Section 5.1). iOS user space finds it by class name
// and talks to it through I/O Kit method calls.
type AppleM2CLCD struct {
	fb *FBDevice
}

// NewAppleM2CLCD wraps a Linux framebuffer device.
func NewAppleM2CLCD(fb *FBDevice) *AppleM2CLCD {
	return &AppleM2CLCD{fb: fb}
}

// IOMobileFramebuffer method selectors (the opaque interface iOS graphics
// libraries invoke).
const (
	// SelGetDisplaySize returns (width, height).
	SelGetDisplaySize uint32 = 1
	// SelSwapBegin/SelSwapEnd bracket a surface swap.
	SelSwapBegin uint32 = 4
	SelSwapEnd   uint32 = 5
)

// ClassName implements Driver.
func (d *AppleM2CLCD) ClassName() string { return "AppleM2CLCD" }

// Matches implements Driver: bind to the Linux fb0 device node entry.
func (d *AppleM2CLCD) Matches(e *RegistryEntry) bool {
	return e.Properties["LinuxDeviceNode"] == "/dev/fb0"
}

// Start implements Driver.
func (d *AppleM2CLCD) Start(e *RegistryEntry) error {
	if d.fb == nil {
		return fmt.Errorf("iokit: AppleM2CLCD has no framebuffer")
	}
	e.Properties["IOMobileFramebuffer"] = "yes"
	e.Properties["IOFBWidth"] = fmt.Sprint(d.fb.display.Width)
	e.Properties["IOFBHeight"] = fmt.Sprint(d.fb.display.Height)
	return nil
}

// Call implements Driver: the IOMobileFramebuffer method table.
func (d *AppleM2CLCD) Call(t *kernel.Thread, selector uint32, args []uint64) ([]uint64, error) {
	switch selector {
	case SelGetDisplaySize:
		return []uint64{uint64(d.fb.display.Width), uint64(d.fb.display.Height)}, nil
	case SelSwapBegin:
		return nil, nil
	case SelSwapEnd:
		d.fb.flips++
		return nil, nil
	}
	return nil, fmt.Errorf("iokit: AppleM2CLCD: bad selector %d", selector)
}
