package kernel

import (
	"testing"

	"repro/internal/prog"
	"repro/internal/replay"
)

// Schedule-exploration stress for the kernel's multi-waiter wake paths:
// pipe readers contending on one buffer and selectors contending on one
// readiness event (the ISSUE's "select rescan ordering" candidate).
// Round 0 is the canonical schedule; later rounds perturb every
// ambiguous scheduler decision (equal-time next-pick, wake order,
// preemption ties) with a seeded Explorer. The invariants must hold
// under every legal order: no byte lost or duplicated, no reader or
// selector wedged, no leak.

const exploreRounds = 12

// TestExploreMultiReaderPipe blocks three forked readers on one empty
// pipe while the parent dribbles bytes in and then closes. Whatever
// wake order the explorer picks, the byte count must balance and every
// reader must terminate via EOF.
func TestExploreMultiReaderPipe(t *testing.T) {
	const readers = 3
	const payload = 24
	for round := 0; round <= exploreRounds; round++ {
		var rec *replay.Recorder
		if round > 0 {
			rec = replay.NewRecorder(&replay.Explorer{Seed: uint64(round)})
		} else {
			rec = replay.NewRecorder(nil)
		}
		e := newEnv(t, ProfileLinuxVanilla)
		e.sim.SetDecider(rec)

		total := 0
		eofs := 0
		e.install(t, "/bin/mrp", "mrp", func(c *prog.Call) uint64 {
			th := c.Ctx.(*Thread)
			p := th.Syscall(SysPipe, nil)
			rfd, wfd := p.R0, p.R1
			var pids []uint64
			for r := 0; r < readers; r++ {
				ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
					ct.Syscall(SysClose, &SyscallArgs{I: [6]uint64{wfd}})
					buf := make([]byte, 4)
					for {
						n := ct.Syscall(SysRead, &SyscallArgs{I: [6]uint64{rfd}, Buf: buf})
						if n.Errno != 0 {
							t.Errorf("round %d: read errno %v", round, n.Errno)
							break
						}
						if n.R0 == 0 {
							eofs++
							break
						}
						total += int(n.R0)
					}
					ct.Syscall(SysExit, nil)
				}})
				pids = append(pids, ret.R0)
			}
			for i := 0; i < payload; i++ {
				w := th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{wfd}, Buf: []byte{byte(i)}})
				if w.Errno != 0 || w.R0 != 1 {
					t.Errorf("round %d: write %d: n=%d errno=%v", round, i, w.R0, w.Errno)
				}
			}
			th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{wfd}})
			th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{rfd}})
			for _, pid := range pids {
				th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{pid}})
			}
			return 0
		})
		e.run(t, "/bin/mrp", nil)
		if total != payload || eofs != readers {
			t.Fatalf("round %d: read %d/%d bytes, %d/%d EOFs (lost wakeup or lost byte)",
				round, total, payload, eofs, readers)
		}
		if err := e.k.LeakCheck(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestExploreSelectRescanOrdering parks three forked selectors in
// blocking select on the same pipe read end. Each write wakes the herd;
// the rescan-and-read race is resolved in whatever order the explorer
// picks, and losers must re-park cleanly. The writer's close is the
// final readiness event: every selector must observe EOF and exit.
func TestExploreSelectRescanOrdering(t *testing.T) {
	const selectors = 3
	const payload = 9
	for round := 0; round <= exploreRounds; round++ {
		var rec *replay.Recorder
		if round > 0 {
			rec = replay.NewRecorder(&replay.Explorer{Seed: uint64(round)})
		} else {
			rec = replay.NewRecorder(nil)
		}
		e := newEnv(t, ProfileLinuxVanilla)
		e.sim.SetDecider(rec)

		total := 0
		eofs := 0
		e.install(t, "/bin/msel", "msel", func(c *prog.Call) uint64 {
			th := c.Ctx.(*Thread)
			p := th.Syscall(SysPipe, nil)
			rfd, wfd := p.R0, p.R1
			var pids []uint64
			for s := 0; s < selectors; s++ {
				ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
					ct.Syscall(SysClose, &SyscallArgs{I: [6]uint64{wfd}})
					buf := make([]byte, 2)
					for {
						sel := ct.Syscall(SysSelect, &SyscallArgs{Select: &SelectRequest{
							ReadFDs: []int{int(rfd)}, Timeout: -1,
						}})
						if sel.Errno != 0 {
							t.Errorf("round %d: select errno %v", round, sel.Errno)
							break
						}
						// The herd raced here: another selector may have
						// consumed the byte already. Poll before committing
						// to a blocking read; a loser re-parks in select.
						poll := ct.Syscall(SysSelect, &SyscallArgs{Select: &SelectRequest{
							ReadFDs: []int{int(rfd)}, Timeout: 0,
						}})
						if poll.R0 == 0 {
							continue
						}
						n := ct.Syscall(SysRead, &SyscallArgs{I: [6]uint64{rfd}, Buf: buf})
						if n.Errno != 0 {
							t.Errorf("round %d: read errno %v", round, n.Errno)
							break
						}
						if n.R0 == 0 {
							eofs++
							break
						}
						total += int(n.R0)
					}
					ct.Syscall(SysExit, nil)
				}})
				pids = append(pids, ret.R0)
			}
			for i := 0; i < payload; i++ {
				th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{wfd}, Buf: []byte{byte(i)}})
			}
			th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{wfd}})
			th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{rfd}})
			for _, pid := range pids {
				th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{pid}})
			}
			return 0
		})
		e.run(t, "/bin/msel", nil)
		if total != payload || eofs != selectors {
			t.Fatalf("round %d: read %d/%d bytes, %d/%d EOFs (rescan lost a wakeup)",
				round, total, payload, eofs, selectors)
		}
		if err := e.k.LeakCheck(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestExploreWait4SiblingOrder forks four children that exit at the
// same virtual instant and reaps them in pid order; which zombie the
// parent's wait4 wakeup pairs with is schedule-ambiguous. Every explored
// order must reap all four with their own exit statuses.
func TestExploreWait4SiblingOrder(t *testing.T) {
	const kids = 4
	for round := 0; round <= exploreRounds; round++ {
		var rec *replay.Recorder
		if round > 0 {
			rec = replay.NewRecorder(&replay.Explorer{Seed: uint64(round)})
		} else {
			rec = replay.NewRecorder(nil)
		}
		e := newEnv(t, ProfileLinuxVanilla)
		e.sim.SetDecider(rec)

		var statuses []int
		e.install(t, "/bin/mwait", "mwait", func(c *prog.Call) uint64 {
			th := c.Ctx.(*Thread)
			var pids []uint64
			for k := 0; k < kids; k++ {
				status := 10 + k
				ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
					ct.Syscall(SysExit, &SyscallArgs{I: [6]uint64{uint64(status)}})
				}})
				pids = append(pids, ret.R0)
			}
			for _, pid := range pids {
				w := th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{pid}})
				if w.Errno != 0 {
					t.Errorf("round %d: wait4(%d): %v", round, pid, w.Errno)
					continue
				}
				statuses = append(statuses, int(w.R1))
			}
			return 0
		})
		e.run(t, "/bin/mwait", nil)
		if len(statuses) != kids {
			t.Fatalf("round %d: reaped %d/%d children", round, len(statuses), kids)
		}
		for k, st := range statuses {
			if st != 10+k {
				t.Fatalf("round %d: child %d status %d, want %d", round, k, st, 10+k)
			}
		}
		if err := e.k.LeakCheck(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
