package kernel

import (
	"fmt"
	"sort"
	"strings"
)

// LeakChecker is implemented by kernel extensions (Mach IPC, psynch, …)
// that can audit their own tables for resources outliving their owners.
// Findings are human-readable descriptions; an empty slice means clean.
type LeakChecker interface {
	LeakCheck(k *Kernel) []string
}

// LeakCheck audits the kernel for leaked resources after a run: every
// exited (zombie) task must have released its descriptors, mappings,
// threads, and wait queues, and every extension implementing LeakChecker
// must report clean tables. Error paths are exactly where such leaks hide
// — a failed exec that forgets to unmap, a killed receiver whose port
// space survives — so the soak harness calls this after every battery,
// faulted or not.
//
// Live tasks (daemons like launchd or init that never exit) legitimately
// hold resources and are skipped; the check targets what should be gone.
func (k *Kernel) LeakCheck() error {
	var findings []string

	pids := make([]int, 0, len(k.tasks))
	for pid := range k.tasks {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		tk := k.tasks[pid]
		if tk.state == taskRunning && len(tk.threads) > 0 {
			continue // live task: resources legitimately in use
		}
		if n := tk.fds.Count(); n != 0 {
			findings = append(findings, fmt.Sprintf("pid %d (%s): %d file descriptors still open", pid, tk.path, n))
		}
		if rs := tk.mem.Regions(); len(rs) != 0 {
			findings = append(findings, fmt.Sprintf("pid %d (%s): %d mappings still mapped:\n%s", pid, tk.path, len(rs), tk.mem.Maps()))
		}
		// The footprint ledger must return to exactly zero with the last
		// unmap: a residue here means the per-backing attribution windows
		// leaked (double-charge or missed detach), which would silently
		// skew every jetsam decision after this task died.
		if fp := tk.mem.Footprint(); fp != 0 {
			findings = append(findings, fmt.Sprintf("pid %d (%s): %d resident bytes still attributed to a dead task", pid, tk.path, fp))
		}
		if len(tk.threads) != 0 && tk.state != taskRunning {
			findings = append(findings, fmt.Sprintf("pid %d (%s): %d threads on a dead task", pid, tk.path, len(tk.threads)))
		}
		if n := tk.childEvents.Len(); n != 0 {
			findings = append(findings, fmt.Sprintf("pid %d (%s): %d waiters parked on wait4 queue of a dead task", pid, tk.path, n))
		}
		// A zombie whose parent is gone (or itself dead) can never be
		// reaped: exitTask should have reaped or reparented it. Zombies
		// with a live parent are normal transient state — the parent may
		// simply not have waited yet.
		if tk.state == taskZombie && (tk.parent == nil || tk.parent.state != taskRunning) {
			findings = append(findings, fmt.Sprintf("pid %d (%s): unreaped zombie with no live parent", pid, tk.path))
		}
	}

	names := make([]string, 0, len(k.extensions))
	for name := range k.extensions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if lc, ok := k.extensions[name].(LeakChecker); ok {
			for _, f := range lc.LeakCheck(k) {
				findings = append(findings, f)
			}
		}
	}

	if len(findings) == 0 {
		return nil
	}
	return fmt.Errorf("kernel: leak check failed:\n  %s", strings.Join(findings, "\n  "))
}
