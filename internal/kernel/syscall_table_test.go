package kernel

import (
	"testing"

	"repro/internal/prog"
)

// TestSyscallTableSparse exercises the dense-array/outlier-map split
// directly: registered numbers hit, holes and out-of-range numbers miss,
// and the set_persona outlier never grows the dense array.
func TestSyscallTableSparse(t *testing.T) {
	tb := NewSyscallTable("test")
	h := func(*Thread, *SyscallArgs) SyscallRet { return SyscallRet{} }
	tb.Register(0, "zero", h)
	tb.Register(20, "getpid", h)
	tb.Register(maxDense-1, "edge", h)
	tb.Register(SysSetPersona, "set_persona", h)

	for _, num := range []int{0, 20, maxDense - 1, SysSetPersona} {
		if _, ok := tb.Lookup(num); !ok {
			t.Errorf("Lookup(%d) missed a registered syscall", num)
		}
	}
	// Holes inside the dense range, numbers past it, and negatives all
	// miss — the dense path must not read a stale or out-of-bounds slot.
	for _, num := range []int{1, 19, 21, maxDense, maxDense + 7, SysSetPersona - 1, SysSetPersona + 1, 1 << 30, -1, -maxDense} {
		if _, ok := tb.Lookup(num); ok {
			t.Errorf("Lookup(%d) hit an unregistered syscall", num)
		}
	}
	if len(tb.dense) != maxDense {
		t.Errorf("dense length = %d, want %d (outlier must not grow it)", len(tb.dense), maxDense)
	}
	if got := tb.Len(); got != 4 {
		t.Errorf("Len() = %d, want 4", got)
	}
	if got := tb.NameOf(20); got != "getpid" {
		t.Errorf("NameOf(20) = %q", got)
	}
	if got := tb.NameOf(SysSetPersona); got != "set_persona" {
		t.Errorf("NameOf(set_persona) = %q", got)
	}
	// Unregistered numbers fall back to the numeric form, including dense
	// holes (a nil slot must not yield the neighbouring name).
	for _, tc := range []struct {
		num  int
		want string
	}{{19, "sys_19"}, {maxDense, "sys_4096"}, {-3, "sys_-3"}} {
		if got := tb.NameOf(tc.num); got != tc.want {
			t.Errorf("NameOf(%d) = %q, want %q", tc.num, got, tc.want)
		}
	}
}

// TestSyscallDispatchENOSYS drives sparse and out-of-range numbers through
// the real trap path: every miss must come back ENOSYS — identically for
// dense-range holes, beyond-dense numbers, and negatives — and the thread
// must keep running afterwards.
func TestSyscallDispatchENOSYS(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	errnos := map[int]Errno{}
	var after uint64
	e.install(t, "/bin/enosys", "enosys", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		for _, num := range []int{3999, maxDense - 1, maxDense, maxDense + 100, 999999, -5} {
			errnos[num] = th.Syscall(num, nil).Errno
		}
		after = th.Syscall(SysGetpid, nil).R0
		return 0
	})
	e.run(t, "/bin/enosys", nil)
	for num, errno := range errnos {
		if errno != ENOSYS {
			t.Errorf("Syscall(%d) errno = %v, want ENOSYS", num, errno)
		}
	}
	if after == 0 {
		t.Error("getpid after ENOSYS storm failed; thread state corrupted")
	}
}
