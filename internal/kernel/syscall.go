package kernel

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/persona"
	"repro/internal/vfs"
)

// Linux ARM EABI syscall numbers for the calls the simulation implements.
const (
	SysExit        = 1
	SysFork        = 2
	SysRead        = 3
	SysWrite       = 4
	SysOpen        = 5
	SysClose       = 6
	SysCreat       = 8
	SysUnlink      = 10
	SysExecve      = 11
	SysGetpid      = 20
	SysKill        = 37
	SysPipe        = 42
	SysIoctl       = 54
	SysDup         = 41
	SysGetppid     = 64
	SysSelect      = 142 // _newselect
	SysRtSigaction = 174
	SysWait4       = 114
	SysSocketpair  = 288 // ARM EABI socketpair
	SysSetrlimit   = 75
	SysGetrlimit   = 191 // ugetrlimit, the variant modern libcs call
	// SysSetPersona is the new syscall Cider adds, "available from all
	// personas" (Section 4.3). It occupies an unused slot.
	SysSetPersona = 983045
)

// SyscallArgs carries a syscall's arguments across the dispatch boundary.
// Raw integer registers ride in I; pointer-typed payloads that a real
// kernel would copy in from user memory ride in the typed fields (the
// simulation's stand-in for copy_from_user).
type SyscallArgs struct {
	// I holds up to six register arguments.
	I [6]uint64
	// Path is a pathname argument.
	Path string
	// Path2 is a second pathname (rename).
	Path2 string
	// Buf is a data buffer (read target / write source).
	Buf []byte
	// Argv is an argument vector (execve).
	Argv []string
	// Act is a signal disposition (sigaction).
	Act *SigAction
	// ChildFn is the child body for fork-family calls (the simulation's
	// stand-in for "returns twice"; see Thread.forkInternal).
	ChildFn func(*Thread)
	// Select is the descriptor-set payload for select(2).
	Select *SelectRequest
}

// SyscallRet carries a syscall's results.
type SyscallRet struct {
	// R0 is the primary return value.
	R0 uint64
	// R1 is the secondary return value (pipe, socketpair).
	R1 uint64
	// Errno is OK on success.
	Errno Errno
	// Select is select's result payload.
	Select *SelectResult
}

// SyscallHandler implements one syscall.
type SyscallHandler func(t *Thread, a *SyscallArgs) SyscallRet

// SyscallTable is one persona's dispatch table. Cider "maintains one or
// more syscall dispatch tables for each persona, and switches among them
// based on the persona of the calling thread and the syscall number"
// (Section 4.1).
type SyscallTable struct {
	// Name identifies the table ("linux", "xnu-bsd").
	Name string
	// EntryExtra and ExitExtra are charged around every call through this
	// table — the XNU table carries the trap-demux/translation costs.
	EntryExtra time.Duration
	ExitExtra  time.Duration
	// dense is the dispatch array for the contiguous low syscall-number
	// range: dispatch is an index and a nil check, no hashing. ABI numbers
	// cluster near zero; the only outlier is Cider's set_persona
	// (983045), which lives in the fallback maps.
	dense        []SyscallHandler
	denseNames   []string
	outliers     map[int]SyscallHandler
	outlierNames map[int]string
}

// maxDense bounds the dense array: numbers at or above this (set_persona's
// unused-slot encoding) go to the outlier maps rather than growing a
// megabyte of nil handler slots.
const maxDense = 4096

// NewSyscallTable creates an empty table.
func NewSyscallTable(name string) *SyscallTable {
	return &SyscallTable{
		Name:         name,
		outliers:     make(map[int]SyscallHandler),
		outlierNames: make(map[int]string),
	}
}

// Register installs a handler for a syscall number.
func (tb *SyscallTable) Register(num int, name string, h SyscallHandler) {
	if num >= 0 && num < maxDense {
		if num >= len(tb.dense) {
			dense := make([]SyscallHandler, num+1)
			copy(dense, tb.dense)
			tb.dense = dense
			names := make([]string, num+1)
			copy(names, tb.denseNames)
			tb.denseNames = names
		}
		tb.dense[num] = h
		tb.denseNames[num] = name
		return
	}
	tb.outliers[num] = h
	tb.outlierNames[num] = name
}

// Lookup returns the handler for num.
//
//hot:noalloc
func (tb *SyscallTable) Lookup(num int) (SyscallHandler, bool) {
	if uint(num) < uint(len(tb.dense)) {
		h := tb.dense[num]
		return h, h != nil
	}
	h, ok := tb.outliers[num]
	return h, ok
}

// NameOf returns the registered name of a syscall number.
func (tb *SyscallTable) NameOf(num int) string {
	if uint(num) < uint(len(tb.denseNames)) && tb.dense[num] != nil {
		return tb.denseNames[num]
	}
	if n, ok := tb.outlierNames[num]; ok {
		return n
	}
	return fmt.Sprintf("sys_%d", num)
}

// Len returns the number of registered handlers.
func (tb *SyscallTable) Len() int {
	n := len(tb.outliers)
	for _, h := range tb.dense {
		if h != nil {
			n++
		}
	}
	return n
}

// Syscall is the kernel trap entry: every simulated user-space trap funnels
// through here. It charges entry/exit costs, performs Cider's per-entry
// persona check, dispatches through the calling thread's persona table, and
// delivers pending signals on the return path.
// emptySyscallArgs normalizes nil args without a per-call allocation.
// Handlers treat their args as read-only (they are the copied-in user
// registers), so sharing one zero value across all argless traps is safe.
var emptySyscallArgs = &SyscallArgs{}

func (t *Thread) Syscall(num int, a *SyscallArgs) SyscallRet {
	k := t.k
	if a == nil {
		a = emptySyscallArgs
	}
	// The persona table is fetched once and reused for trace naming,
	// dispatch, and fault keying; persona cannot change between here and
	// dispatch (only the handler itself — set_persona — switches it).
	table := k.tables[t.Persona.Current()]
	// Trace bookkeeping observes virtual time but never charges it. The
	// persona and name are captured at entry: set_persona switches the
	// thread's persona mid-call, and attribution belongs to the table that
	// served the trap. exit/execve unwind the Proc instead of returning, so
	// they leave an enter record with no matching exit — as real ktrace does.
	tr := k.tracer
	var trStart time.Duration
	var trPersona persona.Kind
	var trName string
	if tr != nil {
		trStart = t.proc.Now()
		trPersona = t.Persona.Current()
		if table != nil {
			trName = table.NameOf(num)
		} else {
			trName = fmt.Sprintf("sys_%d", num)
		}
		tr.SyscallEnter(t.proc.Name(), t.proc.ID(), trPersona, num, trName, trStart)
	}
	// Entry costs are summed into one charge. The per-hop amounts are
	// unchanged — "extra persona checking and handling code run on every
	// syscall entry" (the 8.5% null-syscall overhead of Section 6.2) and the
	// table's trap-demux extra still accrue — but the scheduler sees one
	// Advance instead of three, one preemption checkpoint per trap side.
	// No state changes or trace emissions ever sat between these charges,
	// so every Proc's virtual clock (and every figure) is bit-identical.
	entryCost := k.costs.SyscallEntry
	if k.PersonaAware() {
		entryCost += k.costs.PersonaCheck
	}
	if table == nil {
		// No ABI provisioned for this persona on this kernel (e.g. an iOS
		// binary trapping into vanilla Linux).
		t.charge(entryCost + k.costs.SyscallExit)
		if tr != nil {
			tr.SyscallExit(t.proc.Name(), t.proc.ID(), trPersona, num, trName,
				int(ENOSYS), trStart, t.proc.Now())
		}
		return SyscallRet{R0: ^uint64(0), Errno: ENOSYS}
	}
	t.charge(entryCost + table.EntryExtra)
	h, ok := table.Lookup(num)
	var ret SyscallRet
	injected := false
	if in := k.fault; in != nil && ok {
		// Crash injection first: an OpCrash rule keyed by the task's
		// executable path queues a fatal signal instead of running the
		// handler; the signal is delivered on this trap's return path
		// (checkSignals below), where the exception bridge and default
		// disposition apply as for any organic fault.
		if in.Has(fault.OpCrash) {
			if out, fire := in.Crash(t.proc.Now(), t.task.path); fire {
				if out.Delay > 0 {
					t.charge(out.Delay)
				}
				sig := out.Errno
				if sig <= 0 || sig >= nsig {
					sig = sigSEGV
				}
				t.sigPending = append(t.sigPending, sig)
				ret = SyscallRet{R0: ^uint64(0), Errno: EINTR}
				injected = true
			}
		}
		// Fault injection happens at dispatch, after entry costs: an
		// injected errno still pays the full trap cost (plus any modeled
		// latency spike), exactly like a real early-EINTR return would.
		// The "persona/name" decision key is only materialized when the
		// plan actually carries syscall rules; the common uninjected run
		// never concatenates strings here.
		if !injected && in.Has(fault.OpSyscall) {
			key := t.Persona.Current().String() + "/" + table.NameOf(num)
			if out, fire := in.Syscall(t.proc.Now(), key); fire {
				if out.Delay > 0 {
					t.charge(out.Delay)
				}
				if out.Errno != 0 {
					ret = SyscallRet{R0: ^uint64(0), Errno: Errno(out.Errno)}
					injected = true
				}
			}
		}
	}
	switch {
	case injected:
	case !ok:
		ret = SyscallRet{R0: ^uint64(0), Errno: ENOSYS}
	default:
		t.inSyscall = true
		ret = h(t, a)
		t.inSyscall = false
	}
	// Exit costs batched the same way as entry costs.
	t.charge(table.ExitExtra + k.costs.SyscallExit)
	if ret.Errno != OK {
		// Post errno to the current persona's TLS area, in that persona's
		// own numbering.
		e := int(ret.Errno)
		if t.Persona.Current() == persona.IOS {
			e = int(ErrnoToXNU(ret.Errno))
		}
		t.Persona.CurrentTLS().Errno = e
	}
	// Signal delivery happens on the syscall return path, so its cost is
	// part of the trap the histogram attributes it to (lmbench's lat_sig
	// measures exactly this: kill + delivery in one round trip).
	t.checkSignals()
	if tr != nil {
		tr.SyscallExit(t.proc.Name(), t.proc.ID(), trPersona, num, trName,
			int(ret.Errno), trStart, t.proc.Now())
	}
	return ret
}

// InstallLinuxTable builds and installs the native Linux syscall table for
// the Android persona. Vanilla kernels install only this table.
func (k *Kernel) InstallLinuxTable() *SyscallTable {
	tb := NewSyscallTable("linux")
	tb.Register(SysExit, "exit", func(t *Thread, a *SyscallArgs) SyscallRet {
		t.exitTask(int(a.I[0]))
		return SyscallRet{}
	})
	tb.Register(SysFork, "fork", func(t *Thread, a *SyscallArgs) SyscallRet {
		if a.ChildFn == nil {
			return SyscallRet{Errno: EINVAL}
		}
		pid, errno := t.forkInternal(a.ChildFn)
		return SyscallRet{R0: uint64(pid), Errno: errno}
	})
	tb.Register(SysRead, "read", func(t *Thread, a *SyscallArgs) SyscallRet {
		f, errno := t.task.fds.Get(int(a.I[0]))
		if errno != OK {
			return SyscallRet{Errno: errno}
		}
		t.charge(t.k.costs.ReadBase)
		n, errno := f.Read(t, a.Buf)
		return SyscallRet{R0: uint64(n), Errno: errno}
	})
	tb.Register(SysWrite, "write", func(t *Thread, a *SyscallArgs) SyscallRet {
		f, errno := t.task.fds.Get(int(a.I[0]))
		if errno != OK {
			return SyscallRet{Errno: errno}
		}
		t.charge(t.k.costs.WriteBase)
		n, errno := f.Write(t, a.Buf)
		return SyscallRet{R0: uint64(n), Errno: errno}
	})
	tb.Register(SysOpen, "open", func(t *Thread, a *SyscallArgs) SyscallRet {
		fd, errno := t.openInternal(a.Path, int(a.I[1]))
		return SyscallRet{R0: uint64(fd), Errno: errno}
	})
	tb.Register(SysClose, "close", func(t *Thread, a *SyscallArgs) SyscallRet {
		t.charge(t.k.costs.CloseBase)
		return SyscallRet{Errno: t.task.fds.Close(t, int(a.I[0]))}
	})
	tb.Register(SysCreat, "creat", func(t *Thread, a *SyscallArgs) SyscallRet {
		fd, errno := t.creatInternal(a.Path)
		return SyscallRet{R0: uint64(fd), Errno: errno}
	})
	tb.Register(SysUnlink, "unlink", func(t *Thread, a *SyscallArgs) SyscallRet {
		return SyscallRet{Errno: t.unlinkInternal(a.Path)}
	})
	tb.Register(SysExecve, "execve", func(t *Thread, a *SyscallArgs) SyscallRet {
		errno := t.execInternal(a.Path, a.Argv)
		return SyscallRet{Errno: errno} // reached only on failure
	})
	tb.Register(SysGetpid, "getpid", func(t *Thread, a *SyscallArgs) SyscallRet {
		//lint:allow chargecheck: getpid is the null syscall: its cost is exactly the dispatcher entry/exit charges (Fig. 5)
		return SyscallRet{R0: uint64(t.task.pid)}
	})
	tb.Register(SysGetppid, "getppid", func(t *Thread, a *SyscallArgs) SyscallRet {
		//lint:allow chargecheck: getppid is a null syscall like getpid: dispatcher entry/exit charges only
		return SyscallRet{R0: uint64(t.task.PPID())}
	})
	tb.Register(SysKill, "kill", func(t *Thread, a *SyscallArgs) SyscallRet {
		return SyscallRet{Errno: t.killInternal(int(a.I[0]), int(a.I[1]))}
	})
	tb.Register(SysPipe, "pipe", func(t *Thread, a *SyscallArgs) SyscallRet {
		r, w, errno := t.pipeInternal()
		return SyscallRet{R0: uint64(r), R1: uint64(w), Errno: errno}
	})
	tb.Register(SysDup, "dup", func(t *Thread, a *SyscallArgs) SyscallRet {
		fd, errno := t.task.fds.Dup(int(a.I[0]))
		return SyscallRet{R0: uint64(fd), Errno: errno}
	})
	tb.Register(SysIoctl, "ioctl", func(t *Thread, a *SyscallArgs) SyscallRet {
		f, errno := t.task.fds.Get(int(a.I[0]))
		if errno != OK {
			return SyscallRet{Errno: errno}
		}
		t.charge(t.k.costs.IoctlBase)
		r, errno := f.Ioctl(t, a.I[1], a.I[2])
		return SyscallRet{R0: r, Errno: errno}
	})
	tb.Register(SysSelect, "select", func(t *Thread, a *SyscallArgs) SyscallRet {
		if a.Select == nil {
			return SyscallRet{Errno: EINVAL}
		}
		res, errno := t.selectInternal(a.Select)
		ret := SyscallRet{Errno: errno, Select: res}
		if res != nil {
			ret.R0 = uint64(res.N())
		}
		return ret
	})
	tb.Register(SysRtSigaction, "rt_sigaction", func(t *Thread, a *SyscallArgs) SyscallRet {
		return SyscallRet{Errno: t.sigactionInternal(int(a.I[0]), a.Act)}
	})
	tb.Register(SysWait4, "wait4", func(t *Thread, a *SyscallArgs) SyscallRet {
		pid, status, errno := t.waitInternal(int(int64(a.I[0])))
		return SyscallRet{R0: uint64(pid), R1: uint64(status), Errno: errno}
	})
	tb.Register(SysSocketpair, "socketpair", func(t *Thread, a *SyscallArgs) SyscallRet {
		f1, f2, errno := t.socketpairInternal()
		return SyscallRet{R0: uint64(f1), R1: uint64(f2), Errno: errno}
	})
	tb.Register(SysGetrlimit, "getrlimit", func(t *Thread, a *SyscallArgs) SyscallRet {
		lim, errno := t.getrlimitInternal(int(a.I[0]))
		if errno != OK {
			return SyscallRet{Errno: errno}
		}
		return SyscallRet{R0: lim.Cur, R1: lim.Max}
	})
	tb.Register(SysSetrlimit, "setrlimit", func(t *Thread, a *SyscallArgs) SyscallRet {
		return SyscallRet{Errno: t.setrlimitInternal(int(a.I[0]), RLimit{Cur: a.I[1], Max: a.I[2]})}
	})
	if k.PersonaAware() {
		tb.Register(SysSetPersona, "set_persona", sysSetPersona)
	}
	k.SetSyscallTable(persona.Android, tb)
	return tb
}

// sysSetPersona implements Cider's new set_persona syscall: switch the
// calling thread's kernel ABI personality and TLS area pointer
// (Section 4.3, component 2). Registered in every persona's table.
func sysSetPersona(t *Thread, a *SyscallArgs) SyscallRet {
	to := persona.Kind(a.I[0])
	if to < 0 || int(to) >= persona.NumKinds {
		return SyscallRet{Errno: EINVAL}
	}
	t.charge(t.k.costs.SetPersonaCost)
	prev := t.Persona.Switch(to)
	return SyscallRet{R0: uint64(prev)}
}

// openInternal resolves a path and produces a descriptor: regular files
// get an fsFile; device nodes dispatch to the device framework.
func (t *Thread) openInternal(path string, flags int) (int, Errno) {
	k := t.k
	t.charge(k.costs.OpenBase)
	node, err := k.root.Lookup(path)
	if err != nil {
		if _, missing := err.(*vfs.ErrNotFound); missing && flags&OCreat != 0 {
			return t.creatInternal(path)
		}
		return -1, ErrnoFromVFS(err)
	}
	if node.IsDir() {
		return -1, EISDIR
	}
	if node.Kind() == vfs.KindDevice {
		dev, ok := node.Dev().(Device)
		if !ok {
			return -1, EIO
		}
		f, errno := dev.Open(t)
		if errno != OK {
			return -1, errno
		}
		return t.task.fds.Alloc(f)
	}
	return t.task.fds.Alloc(&fsFile{node: node, k: k})
}

// OCreat is the open flag requesting creation.
const OCreat = 0x40 // Linux O_CREAT

// creatInternal creates a file (truncating an existing one) and opens it.
func (t *Thread) creatInternal(path string) (int, Errno) {
	k := t.k
	t.charge(k.costs.CreateBase)
	t.charge(k.device.Storage.CreateLatency)
	node, err := k.root.Create(path)
	if err != nil {
		if _, exists := err.(*vfs.ErrExists); !exists {
			return -1, ErrnoFromVFS(err)
		}
		n2, lerr := k.root.Lookup(path)
		if lerr != nil {
			return -1, ErrnoFromVFS(lerr)
		}
		if n2.IsDir() {
			return -1, EISDIR
		}
		n2.SetData(nil) // truncate
		return t.task.fds.Alloc(&fsFile{node: n2, k: k})
	}
	return t.task.fds.Alloc(&fsFile{node: node, k: k})
}

// unlinkInternal removes a file.
func (t *Thread) unlinkInternal(path string) Errno {
	k := t.k
	t.charge(k.costs.UnlinkBase)
	t.charge(k.device.Storage.DeleteLatency)
	if err := k.root.Remove(path); err != nil {
		return ErrnoFromVFS(err)
	}
	return OK
}
