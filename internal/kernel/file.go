package kernel

import (
	"repro/internal/sim"
	"repro/internal/vfs"
)

// PollMask reports descriptor readiness for select/poll.
type PollMask uint8

const (
	// PollIn means a read would not block.
	PollIn PollMask = 1 << iota
	// PollOut means a write would not block.
	PollOut
	// PollHup means the peer closed.
	PollHup
)

// File is an open file description. Read and Write may block (park the
// calling thread); Poll must not.
type File interface {
	// Read transfers up to len(buf) bytes into buf.
	Read(t *Thread, buf []byte) (int, Errno)
	// Write transfers buf.
	Write(t *Thread, buf []byte) (int, Errno)
	// Close releases the description (called once, when the last fd drops).
	Close(t *Thread) Errno
	// Poll reports current readiness.
	Poll() PollMask
	// PollQueues returns the wait queues broadcast when readiness could
	// change for the given interest set (PollIn, PollOut, or both), or nil
	// for always-ready files. Files with direction-split buffering (UNIX
	// sockets) return different queues for read and write interest; a
	// selector must enqueue on every returned queue.
	PollQueues(interest PollMask) []*sim.WaitQueue
	// Ioctl performs a device-specific operation.
	Ioctl(t *Thread, req, arg uint64) (uint64, Errno)
}

// FDTable maps small integers to open files, with POSIX lowest-free
// allocation semantics. The limit is the owning task's RLIMIT_NOFILE soft
// value: no descriptor number at or above it is ever handed out, so
// lowering the limit below already-open descriptors affects only new
// allocations — Linux semantics.
type FDTable struct {
	files []*openFile
	limit int
	// onLimit, when non-nil, observes every EMFILE rejection (the kernel
	// wires it to the rlimit-enforcement counter).
	onLimit func()
}

// openFile is one table slot; refs supports dup and fork sharing.
type openFile struct {
	f    File
	refs int
}

// DefaultFDLimit matches a typical mobile RLIMIT_NOFILE soft limit.
const DefaultFDLimit = 1024

// NewFDTable creates an empty descriptor table.
func NewFDTable() *FDTable {
	return &FDTable{limit: DefaultFDLimit}
}

// Limit returns the descriptor limit (RLIMIT_NOFILE soft value).
func (ft *FDTable) Limit() int { return ft.limit }

// SetLimit applies a new RLIMIT_NOFILE soft value. Descriptors already
// open above the new limit stay open.
func (ft *FDTable) SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	ft.limit = n
}

// emfile rejects an allocation that would violate the limit.
func (ft *FDTable) emfile() (int, Errno) {
	if ft.onLimit != nil {
		ft.onLimit()
	}
	return -1, EMFILE
}

// Alloc installs f at the lowest free descriptor.
func (ft *FDTable) Alloc(f File) (int, Errno) {
	for i, slot := range ft.files {
		if slot == nil {
			if i >= ft.limit {
				// Free slots above a lowered limit are out of bounds.
				return ft.emfile()
			}
			ft.files[i] = &openFile{f: f, refs: 1}
			return i, OK
		}
	}
	if len(ft.files) >= ft.limit {
		return ft.emfile()
	}
	ft.files = append(ft.files, &openFile{f: f, refs: 1})
	return len(ft.files) - 1, OK
}

// Get returns the file at fd.
func (ft *FDTable) Get(fd int) (File, Errno) {
	if fd < 0 || fd >= len(ft.files) || ft.files[fd] == nil {
		return nil, EBADF
	}
	return ft.files[fd].f, OK
}

// Close drops descriptor fd, closing the file when the last reference goes.
func (ft *FDTable) Close(t *Thread, fd int) Errno {
	if fd < 0 || fd >= len(ft.files) || ft.files[fd] == nil {
		return EBADF
	}
	slot := ft.files[fd]
	ft.files[fd] = nil
	slot.refs--
	if slot.refs == 0 {
		return slot.f.Close(t)
	}
	return OK
}

// Dup duplicates fd to a new descriptor sharing the description.
func (ft *FDTable) Dup(fd int) (int, Errno) {
	if fd < 0 || fd >= len(ft.files) || ft.files[fd] == nil {
		return -1, EBADF
	}
	slot := ft.files[fd]
	for i, s := range ft.files {
		if s == nil {
			if i >= ft.limit {
				return ft.emfile()
			}
			ft.files[i] = slot
			slot.refs++
			return i, OK
		}
	}
	if len(ft.files) >= ft.limit {
		return ft.emfile()
	}
	ft.files = append(ft.files, slot)
	slot.refs++
	return len(ft.files) - 1, OK
}

// Fork clones the table for a child process: descriptors share the
// underlying open file descriptions, as POSIX fork requires, and the
// limit is inherited alongside the task's RLIMIT_NOFILE.
func (ft *FDTable) Fork() *FDTable {
	nt := &FDTable{limit: ft.limit, onLimit: ft.onLimit, files: make([]*openFile, len(ft.files))}
	for i, slot := range ft.files {
		if slot != nil {
			nt.files[i] = slot
			slot.refs++
		}
	}
	return nt
}

// CloseAll releases every descriptor (exit).
func (ft *FDTable) CloseAll(t *Thread) {
	for fd := range ft.files {
		if ft.files[fd] != nil {
			ft.Close(t, fd)
		}
	}
}

// Count returns the number of open descriptors.
func (ft *FDTable) Count() int {
	n := 0
	for _, s := range ft.files {
		if s != nil {
			n++
		}
	}
	return n
}

// fsFile is a regular file backed by a vfs node, charging storage-device
// time for data transfer.
type fsFile struct {
	node *vfs.Node
	pos  int64
	k    *Kernel
}

func (f *fsFile) Read(t *Thread, buf []byte) (int, Errno) {
	data := f.node.Data()
	if f.pos >= int64(len(data)) {
		return 0, OK // EOF
	}
	n := copy(buf, data[f.pos:])
	f.pos += int64(n)
	t.charge(f.k.device.Storage.ReadTime(int64(n)))
	return n, OK
}

func (f *fsFile) Write(t *Thread, buf []byte) (int, Errno) {
	f.pos = f.node.WriteData(f.pos, buf)
	t.charge(f.k.device.Storage.WriteTime(int64(len(buf))))
	return len(buf), OK
}

func (f *fsFile) Close(*Thread) Errno                  { return OK }
func (f *fsFile) Poll() PollMask                       { return PollIn | PollOut }
func (f *fsFile) PollQueues(PollMask) []*sim.WaitQueue { return nil }
func (f *fsFile) Ioctl(*Thread, uint64, uint64) (uint64, Errno) {
	return 0, ENOTTY
}

// nullFile is /dev/null: reads EOF, writes discard.
type nullFile struct{}

func (nullFile) Read(*Thread, []byte) (int, Errno) { return 0, OK }
func (nullFile) Write(t *Thread, b []byte) (int, Errno) {
	return len(b), OK
}
func (nullFile) Close(*Thread) Errno                  { return OK }
func (nullFile) Poll() PollMask                       { return PollIn | PollOut }
func (nullFile) PollQueues(PollMask) []*sim.WaitQueue { return nil }
func (nullFile) Ioctl(*Thread, uint64, uint64) (uint64, Errno) {
	return 0, ENOTTY
}

// zeroFile is /dev/zero: reads zeros, writes discard.
type zeroFile struct{}

func (zeroFile) Read(t *Thread, b []byte) (int, Errno) {
	for i := range b {
		b[i] = 0
	}
	return len(b), OK
}
func (zeroFile) Write(t *Thread, b []byte) (int, Errno) { return len(b), OK }
func (zeroFile) Close(*Thread) Errno                    { return OK }
func (zeroFile) Poll() PollMask                         { return PollIn | PollOut }
func (zeroFile) PollQueues(PollMask) []*sim.WaitQueue   { return nil }
func (zeroFile) Ioctl(*Thread, uint64, uint64) (uint64, Errno) {
	return 0, ENOTTY
}

// NullDevice is /dev/null as a kernel device.
type NullDevice struct{}

// DevName implements Device.
func (NullDevice) DevName() string { return "null" }

// Open implements Device.
func (NullDevice) Open(*Thread) (File, Errno) { return nullFile{}, OK }

// ZeroDevice is /dev/zero as a kernel device.
type ZeroDevice struct{}

// DevName implements Device.
func (ZeroDevice) DevName() string { return "zero" }

// Open implements Device.
func (ZeroDevice) Open(*Thread) (File, Errno) { return zeroFile{}, OK }
